package analysis

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/smtlib"
)

// divGuardPass flags divisions and modulos whose divisor may be zero
// without a syntactic nonzero guard in scope. This is exactly the shape
// class where the simulated solvers' division defects live, and where
// the paper's fixed x/0 = 0 interpretation diverges from SMT-LIB's
// underspecified division — an unguarded (= x (div (* x y) y)) fusion
// constraint is only equisatisfiability-preserving together with a
// y ≠ 0 guard.
//
// Guard facts are collected context-sensitively: every top-level assert
// contributes facts globally (asserts are conjoined), conjunction arms
// guard their siblings, each disjunct of an or only sees its own facts,
// and an ite's then-branch sees the condition's facts while the
// else-branch sees the negation's. Recognized guard shapes, for a
// divisor term d (matched by printed form):
//
//	(distinct d 0)   (not (= d 0))   (= d c) with c a nonzero literal
//	(> d 0) (< d 0)  and literal-bound comparisons implying d ≠ 0
//
// Findings are warnings: hand-written seeds may carry semantically
// implied guards the syntactic matcher cannot see (the paper's φ4
// guards w/v through 0 < y < v), so the severity stays below the
// runtime gate while generator and fusion outputs are held to zero
// warnings by tests.
type divGuardPass struct{}

func (divGuardPass) Name() string { return "divguard" }

func (divGuardPass) Analyze(s *smtlib.Script, _ *FusionMeta) []Diagnostic {
	var out []Diagnostic
	asserts := s.Asserts()

	// Top-level asserts are conjoined: their facts hold everywhere.
	global := factSet{}
	for _, a := range asserts {
		collectGuardFacts(a, global)
	}
	for i, a := range asserts {
		checkDivisors(a, fmt.Sprintf("assert[%d]", i), global, &out)
	}
	return out
}

// factSet is a set of terms (by printed form) known nonzero in context.
type factSet map[string]bool

func (f factSet) extend(more factSet) factSet {
	if len(more) == 0 {
		return f
	}
	out := make(factSet, len(f)+len(more))
	for k := range f {
		out[k] = true
	}
	for k := range more {
		out[k] = true
	}
	return out
}

// collectGuardFacts adds to facts every term t proves nonzero when t
// holds.
func collectGuardFacts(t ast.Term, facts factSet) {
	n, ok := t.(*ast.App)
	if !ok {
		return
	}
	switch n.Op {
	case ast.OpAnd:
		for _, a := range n.Args {
			collectGuardFacts(a, facts)
		}
	case ast.OpNot:
		if eq, ok := n.Args[0].(*ast.App); ok && eq.Op == ast.OpEq && len(eq.Args) == 2 {
			markDistinctPair(eq.Args[0], eq.Args[1], facts)
		}
	case ast.OpDistinct:
		if len(n.Args) == 2 {
			markDistinctPair(n.Args[0], n.Args[1], facts)
		}
	case ast.OpEq:
		if len(n.Args) == 2 {
			// d = c with c a nonzero literal.
			if isNonzeroLiteral(n.Args[1]) {
				facts[ast.Print(n.Args[0])] = true
			}
			if isNonzeroLiteral(n.Args[0]) {
				facts[ast.Print(n.Args[1])] = true
			}
		}
	case ast.OpGt, ast.OpGe, ast.OpLt, ast.OpLe:
		if len(n.Args) == 2 {
			markComparisonFacts(n.Op, n.Args[0], n.Args[1], facts)
		}
	}
}

// markDistinctPair handles (distinct a b): when one side is the zero
// literal, the other is nonzero.
func markDistinctPair(a, b ast.Term, facts factSet) {
	if isZeroLiteral(b) {
		facts[ast.Print(a)] = true
	}
	if isZeroLiteral(a) {
		facts[ast.Print(b)] = true
	}
}

// markComparisonFacts derives nonzero facts from a comparison against a
// literal bound: d > c with c ≥ 0, d ≥ c with c > 0, d < c with c ≤ 0,
// d ≤ c with c < 0 (and the mirrored literal-first forms).
func markComparisonFacts(op ast.Op, a, b ast.Term, facts factSet) {
	if sign, ok := literalSign(b); ok {
		nz := false
		switch op {
		case ast.OpGt:
			nz = sign >= 0
		case ast.OpGe:
			nz = sign > 0
		case ast.OpLt:
			nz = sign <= 0
		case ast.OpLe:
			nz = sign < 0
		}
		if nz {
			facts[ast.Print(a)] = true
		}
	}
	if sign, ok := literalSign(a); ok {
		// c OP d reads as d inverse-OP c.
		nz := false
		switch op {
		case ast.OpLt: // c < d  ⇒  d > c
			nz = sign >= 0
		case ast.OpLe: // c ≤ d  ⇒  d ≥ c
			nz = sign > 0
		case ast.OpGt: // c > d  ⇒  d < c
			nz = sign <= 0
		case ast.OpGe: // c ≥ d  ⇒  d ≤ c
			nz = sign < 0
		}
		if nz {
			facts[ast.Print(b)] = true
		}
	}
}

// negatedGuardFacts adds the facts implied by ¬cond (for ite else
// branches): ¬(d = 0) and ¬(not φ) via φ's positive facts.
func negatedGuardFacts(cond ast.Term, facts factSet) {
	n, ok := cond.(*ast.App)
	if !ok {
		return
	}
	switch n.Op {
	case ast.OpEq:
		if len(n.Args) == 2 {
			markDistinctPair(n.Args[0], n.Args[1], facts)
		}
	case ast.OpNot:
		collectGuardFacts(n.Args[0], facts)
	case ast.OpOr:
		// ¬(a ∨ b) ⇒ ¬a ∧ ¬b.
		for _, a := range n.Args {
			negatedGuardFacts(a, facts)
		}
	}
}

// checkDivisors walks t reporting unguarded possibly-zero divisors.
func checkDivisors(t ast.Term, path string, facts factSet, out *[]Diagnostic) {
	switch n := t.(type) {
	case *ast.App:
		switch n.Op {
		case ast.OpAnd:
			// Conjunct siblings guard each other.
			local := factSet{}
			for _, a := range n.Args {
				collectGuardFacts(a, local)
			}
			inner := facts.extend(local)
			for i, a := range n.Args {
				checkDivisors(a, fmt.Sprintf("%s.arg[%d]", path, i), inner, out)
			}
			return
		case ast.OpOr:
			// Each disjunct sees only its own facts.
			for i, a := range n.Args {
				local := factSet{}
				collectGuardFacts(a, local)
				checkDivisors(a, fmt.Sprintf("%s.arg[%d]", path, i), facts.extend(local), out)
			}
			return
		case ast.OpIte:
			checkDivisors(n.Args[0], path+".arg[0]", facts, out)
			thenFacts := factSet{}
			collectGuardFacts(n.Args[0], thenFacts)
			checkDivisors(n.Args[1], path+".arg[1]", facts.extend(thenFacts), out)
			elseFacts := factSet{}
			negatedGuardFacts(n.Args[0], elseFacts)
			checkDivisors(n.Args[2], path+".arg[2]", facts.extend(elseFacts), out)
			return
		case ast.OpIntDiv, ast.OpRealDiv:
			for i := 1; i < len(n.Args); i++ {
				reportUnguarded(n, n.Args[i], fmt.Sprintf("%s.arg[%d]", path, i), facts, out)
			}
		case ast.OpMod:
			if len(n.Args) == 2 {
				reportUnguarded(n, n.Args[1], path+".arg[1]", facts, out)
			}
		}
		for i, a := range n.Args {
			checkDivisors(a, fmt.Sprintf("%s.arg[%d]", path, i), facts, out)
		}
	case *ast.Quant:
		// Facts over the bound names would be unsound under capture;
		// binders are fresh throughout this system, so facts persist.
		checkDivisors(n.Body, path+".body", facts, out)
	}
}

func reportUnguarded(div *ast.App, d ast.Term, path string, facts factSet, out *[]Diagnostic) {
	if isNonzeroLiteral(d) {
		return
	}
	if isZeroLiteral(d) {
		*out = append(*out, Diagnostic{
			Pass: "divguard", Severity: SeverityWarning,
			Path:    path,
			Message: fmt.Sprintf("(%s ...) divides by the literal zero", div.Op),
		})
		return
	}
	if facts[ast.Print(d)] {
		return
	}
	*out = append(*out, Diagnostic{
		Pass: "divguard", Severity: SeverityWarning,
		Path:    path,
		Message: fmt.Sprintf("(%s ...) has possibly-zero divisor %s with no nonzero guard in scope", div.Op, ast.Print(d)),
	})
}

func isZeroLiteral(t ast.Term) bool {
	sign, ok := literalSign(t)
	return ok && sign == 0
}

func isNonzeroLiteral(t ast.Term) bool {
	sign, ok := literalSign(t)
	return ok && sign != 0
}

// literalSign returns the sign of a numeric literal, with ok=false
// for non-literals. SMT-LIB text has no negative or non-integer
// numerals — -3 prints as (- 3) and 2/3 as (/ 2.0 3.0) — so after a
// print/reparse round trip a rational literal is a tree of those two
// applications over positive numerals; literalSign folds both.
func literalSign(t ast.Term) (int, bool) {
	switch n := t.(type) {
	case *ast.IntLit:
		return n.V.Sign(), true
	case *ast.RealLit:
		return n.V.Sign(), true
	case *ast.App:
		if n.Op == ast.OpNeg && len(n.Args) == 1 {
			if s, ok := literalSign(n.Args[0]); ok {
				return -s, true
			}
		}
		if n.Op == ast.OpRealDiv && len(n.Args) == 2 {
			num, okN := literalSign(n.Args[0])
			den, okD := literalSign(n.Args[1])
			if okN && okD && den != 0 {
				return num * den, true
			}
		}
	}
	return 0, false
}
