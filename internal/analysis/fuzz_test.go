package analysis

import (
	"testing"

	"repro/internal/smtlib"
)

// FuzzAnalyze drives every registered pass over arbitrary input: any
// script the parser accepts must flow through the full registry without
// a panic or runtime termination. The passes walk attacker-shaped trees
// (arity-0 applications, deeply nested ites, quantifiers over reused
// names, degenerate literals such as (- 0) and (/ 1.0 0.0)), so this is
// where malformed-shape assumptions in a pass surface first — the gate
// in internal/core runs these same passes on every fused script.
func FuzzAnalyze(f *testing.F) {
	seeds := []string{
		"(set-logic QF_LIA)\n(declare-fun x () Int)\n(assert (> x 1))\n(check-sat)\n",
		"(set-logic QF_LIA)\n(declare-fun x () Int)\n(declare-fun y () Int)\n(assert (distinct y 0))\n(assert (> (div x y) (mod x y)))\n(check-sat)\n",
		"(set-logic QF_LIA)\n(declare-fun x () Int)\n(assert (and (> x 3) (< x 2)))\n(check-sat)\n",
		"(set-logic QF_LIA)\n(declare-fun x () Int)\n(assert (<= 0 (abs x)))\n(check-sat)\n",
		"(set-logic QF_LRA)\n(declare-fun a () Real)\n(declare-fun b () Real)\n(assert (> (/ a (ite (= b 0.0) 1.0 b)) 0.5))\n(check-sat)\n",
		"(set-logic QF_NIA)\n(declare-fun x () Int)\n(assert (< (* 0 x) (- 4)))\n(check-sat)\n",
		"(set-logic QF_S)\n(declare-fun s () String)\n(assert (> (str.len s) 2))\n(assert (str.in_re s (re.* (str.to_re \"ab\"))))\n(check-sat)\n",
		"(set-logic LIA)\n(declare-fun n () Int)\n(assert (forall ((h Int)) (<= (div h n) n)))\n(check-sat)\n",
		"(set-logic QF_LIA)\n(assert true)\n(check-sat)\n",
		"(set-logic QF_LRA)\n(declare-fun r () Real)\n(assert (= (to_int r) (- (/ 1.0 3.0))))\n(check-sat)\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		sc, err := smtlib.ParseScript(src)
		if err != nil {
			return // rejecting garbage is fine; panicking is not
		}
		diags := AnalyzeScript(sc, nil, Passes()...)
		for _, d := range diags {
			if d.Pass == "" {
				t.Fatalf("diagnostic with empty pass name: %v", d)
			}
			_ = d.String()
		}
		// The same passes must also hold on the printed round trip — the
		// gate sees scripts both fresh from fusion and after reduction
		// re-parses them.
		sc2, err := smtlib.ParseScript(smtlib.Print(sc))
		if err != nil {
			return
		}
		AnalyzeScript(sc2, nil, Passes()...)
	})
}
