package analysis

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/smtlib"
)

// trivialPass notes asserts (and atoms inside them) that are constant
// regardless of any model: literal true/false asserts, reflexive
// comparisons such as (= t t) or (< t t), and comparisons whose
// arguments are all literals. These are info-level only — generators
// legitimately emit constant atoms (a literal leaf oriented against its
// own value yields (= 3 3), and evaluation fallbacks assert true) — but
// a fuzzing service wants to know when a formula's solver work is
// vacuous.
type trivialPass struct{}

func (trivialPass) Name() string { return "trivial" }

func (trivialPass) Analyze(s *smtlib.Script, _ *FusionMeta) []Diagnostic {
	var out []Diagnostic
	note := func(path, format string, args ...interface{}) {
		out = append(out, Diagnostic{
			Pass: "trivial", Severity: SeverityInfo,
			Path:    path,
			Message: fmt.Sprintf(format, args...),
		})
	}

	for i, a := range s.Asserts() {
		root := fmt.Sprintf("assert[%d]", i)
		if b, ok := a.(*ast.BoolLit); ok {
			note(root, "assert of the constant %v", b.V)
			continue
		}
		walkWithPath(a, root, func(t ast.Term, path string) {
			app, ok := t.(*ast.App)
			if !ok {
				return
			}
			switch app.Op {
			case ast.OpEq, ast.OpLe, ast.OpGe:
				if len(app.Args) == 2 && ast.Equal(app.Args[0], app.Args[1]) {
					note(path, "(%s t t) is trivially true", app.Op)
					return
				}
			case ast.OpLt, ast.OpGt, ast.OpDistinct:
				if len(app.Args) == 2 && ast.Equal(app.Args[0], app.Args[1]) {
					note(path, "(%s t t) is trivially false", app.Op)
					return
				}
			default:
				return
			}
			if allLiteralArgs(app) {
				note(path, "constant atom: %s", ast.Print(app))
			}
		})
	}
	return out
}

func allLiteralArgs(app *ast.App) bool {
	for _, a := range app.Args {
		if !isLiteral(a) {
			return false
		}
	}
	return len(app.Args) > 0
}

// walkWithPath is ast.Walk with the diagnostic path threaded through.
func walkWithPath(t ast.Term, path string, fn func(ast.Term, string)) {
	fn(t, path)
	switch n := t.(type) {
	case *ast.App:
		for i, a := range n.Args {
			walkWithPath(a, fmt.Sprintf("%s.arg[%d]", path, i), fn)
		}
	case *ast.Quant:
		walkWithPath(n.Body, path+".body", fn)
	}
}
