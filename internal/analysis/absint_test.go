package analysis

import (
	"strings"
	"testing"
)

// runAbsint parses src and runs only the absint pass.
func runAbsint(t *testing.T, src string) []Diagnostic {
	t.Helper()
	return (absintPass{}).Analyze(mustParse(t, src), nil)
}

// TestAbsintNegativeSuite is the known-bad script table: each entry
// must produce exactly one absint finding, anchored where expected.
func TestAbsintNegativeSuite(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		severity Severity
		path     string
		contains string
	}{
		{
			name: "interval-trivial conjunction",
			src: `
(set-logic QF_LIA)
(declare-fun x () Int)
(assert (and (> x 3) (< x 2)))
(check-sat)
`,
			severity: SeverityInfo,
			path:     "assert[0]",
			contains: "empty interval",
		},
		{
			name: "interval-trivial abs bound",
			src: `
(set-logic QF_LIA)
(declare-fun x () Int)
(assert (< (abs x) 0))
(check-sat)
`,
			severity: SeverityInfo,
			path:     "assert[0]",
			contains: "trivially unsatisfiable",
		},
		{
			name: "trivially satisfiable script",
			src: `
(set-logic QF_LIA)
(declare-fun x () Int)
(assert (<= 0 (abs x)))
(assert (< 1 2))
(check-sat)
`,
			severity: SeverityInfo,
			path:     "",
			contains: "trivially satisfiable",
		},
		{
			name: "reachable zero divisor",
			src: `
(set-logic QF_LIA)
(declare-fun x () Int)
(declare-fun y () Int)
(assert (and (>= y 0) (<= y 0)))
(assert (> (div x y) 1))
(check-sat)
`,
			severity: SeverityWarning,
			path:     "assert[1].arg[0].arg[1]",
			contains: "contains zero",
		},
		{
			name: "unconstrained divisor",
			src: `
(set-logic QF_LIA)
(declare-fun x () Int)
(declare-fun y () Int)
(assert (distinct x (div x y)))
(check-sat)
`,
			severity: SeverityWarning,
			path:     "assert[0].arg[1].arg[1]",
			contains: "contains zero",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := runAbsint(t, c.src)
			if len(got) != 1 {
				t.Fatalf("got %d findings, want exactly 1: %v", len(got), got)
			}
			d := got[0]
			if d.Severity != c.severity || d.Path != c.path || !strings.Contains(d.Message, c.contains) {
				t.Fatalf("finding %v, want severity=%v path=%q message containing %q", d, c.severity, c.path, c.contains)
			}
		})
	}
}

// TestAbsintCleanScripts is the known-good table: scripts the pass must
// stay silent on, including the shapes only interval reasoning (not
// divguard's syntactic guards) can prove safe.
func TestAbsintCleanScripts(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{
			name: "ordinary constraint",
			src: `
(set-logic QF_LIA)
(declare-fun x () Int)
(declare-fun y () Int)
(assert (> (+ x y) 3))
(assert (< (- x y) 2))
(check-sat)
`,
		},
		{
			name: "guarded divisor",
			src: `
(set-logic QF_LIA)
(declare-fun x () Int)
(declare-fun y () Int)
(assert (distinct y 0))
(assert (> (div x y) 1))
(check-sat)
`,
		},
		{
			name: "interval-proven divisor without syntactic guard",
			src: `
(set-logic QF_LIA)
(declare-fun x () Int)
(declare-fun y () Int)
(assert (> (div x (+ 1 (abs y))) 1))
(check-sat)
`,
		},
		{
			name: "assert-range-proven divisor",
			src: `
(set-logic QF_LIA)
(declare-fun x () Int)
(declare-fun y () Int)
(assert (> y 5))
(assert (> (div x y) 1))
(check-sat)
`,
		},
		{
			name: "ite-selected nonzero divisor",
			src: `
(set-logic QF_LIA)
(declare-fun x () Int)
(declare-fun y () Int)
(assert (> (div x (ite (= y 0) 1 y)) 1))
(check-sat)
`,
		},
		{
			name: "strict real bound stays satisfiable",
			src: `
(set-logic QF_LRA)
(declare-fun x () Real)
(assert (and (< x 2.0) (> x 1.0)))
(check-sat)
`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := runAbsint(t, c.src); len(got) != 0 {
				t.Fatalf("want no findings, got %v", got)
			}
		})
	}
}

// TestAbsintDivisionSubsetOfDivguard checks the containment that keeps
// the generator corpus absint-clean: wherever absint reports a division
// warning, divguard reports one at the same path.
func TestAbsintDivisionSubsetOfDivguard(t *testing.T) {
	srcs := []string{
		`
(set-logic QF_LIA)
(declare-fun x () Int)
(declare-fun y () Int)
(assert (> (div x y) (mod x y)))
(check-sat)
`,
		`
(set-logic QF_LIA)
(declare-fun x () Int)
(declare-fun y () Int)
(assert (or (distinct y 0) (> (div x y) 1)))
(assert (ite (= y 0) (> (div x y) 0) (< (div x y) 0)))
(check-sat)
`,
		`
(set-logic QF_LRA)
(declare-fun a () Real)
(declare-fun b () Real)
(assert (> (/ a b) 0.5))
(check-sat)
`,
	}
	for _, src := range srcs {
		s := mustParse(t, src)
		guard := map[string]bool{}
		for _, d := range (divGuardPass{}).Analyze(s, nil) {
			guard[d.Path] = true
		}
		for _, d := range (absintPass{}).Analyze(s, nil) {
			if !strings.Contains(d.Message, "divisor") {
				continue
			}
			if !guard[d.Path] {
				t.Errorf("absint division finding at %q has no divguard counterpart:\n%s", d.Path, src)
			}
		}
	}
}

// TestAbsintIntTightening checks strict-bound tightening at Int sort:
// x < 3 and x > 1 pins an integer x to [2,2], so (= x 2) is proven.
func TestAbsintIntTightening(t *testing.T) {
	got := runAbsint(t, `
(set-logic QF_LIA)
(declare-fun x () Int)
(assert (and (< x 3) (> x 1) (distinct x 2)))
(check-sat)
`)
	if len(got) != 1 || !strings.Contains(got[0].Message, "trivially unsatisfiable") {
		t.Fatalf("integer tightening should refute the assert, got %v", got)
	}
}

// TestAbsintEmptyScript: no asserts, no findings (in particular no
// vacuous trivially-satisfiable report).
func TestAbsintEmptyScript(t *testing.T) {
	got := runAbsint(t, `
(set-logic QF_LIA)
(declare-fun x () Int)
(check-sat)
`)
	if len(got) != 0 {
		t.Fatalf("want no findings on assert-free script, got %v", got)
	}
}
