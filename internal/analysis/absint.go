package analysis

import (
	"fmt"
	"math/big"

	"repro/internal/ast"
	"repro/internal/smtlib"
)

// absintPass is an abstract interpretation of the script over a
// sort-and-interval domain: every Int/Real term is approximated by a
// closed interval [lo, hi] (with a nonzero refinement bit), every Bool
// term by a three-valued truth value. The pass reports three shapes:
//
//   - trivially-unsat asserts (info): an assert that evaluates to
//     definitely false, or whose own conjunctive skeleton refines some
//     variable to an empty interval ((and (> x 3) (< x 2))). These are
//     info-level for the same reason trivialPass's constant-atom notes
//     are: the unsat seed generator *intentionally* manufactures
//     unsatisfiability from constant atoms — including variable-carrying
//     ones such as (< (* 0 u88) (- 4)) — so triviality is legitimate
//     generator output, while still worth surfacing to a fuzzing
//     service whose solver budget it wastes.
//   - trivially-sat scripts (info): every assert evaluates to
//     definitely true under the unconstrained environment (each assert
//     is an interval tautology, e.g. (<= 0 (abs x))). The script
//     exercises nothing.
//   - unguarded division ranges (warning): a divisor whose interval
//     contains zero and that no guard fact in scope proves nonzero.
//     This strictly refines the divguard pass: the same
//     context-sensitive guard facts are consulted, and additionally a
//     divisor whose *interval* already excludes zero (e.g.
//     (+ 1 (abs y))) needs no syntactic guard. Every absint division
//     finding is therefore also a divguard finding, which keeps
//     generator and fusion outputs — held to zero warnings by the
//     self-check tests — absint-clean by construction.
//
// Soundness notes. Truth and falsity are only reported when they hold
// for every assignment within the abstraction: asserts are *evaluated*
// under the unconstrained environment (every variable ⊤), and the
// refinement used for the contradiction check only ever consumes the
// assert's own conjuncts, so an empty interval really is a proof of
// unsatisfiability. Strict bounds are tightened by one only at Int sort;
// at Real sort (< x 2) refines to the sound closed approximation
// x ∈ (-∞, 2].
type absintPass struct{}

func (absintPass) Name() string { return "absint" }

func (absintPass) Analyze(s *smtlib.Script, _ *FusionMeta) []Diagnostic {
	var out []Diagnostic
	asserts := s.Asserts()
	if len(asserts) == 0 {
		return nil
	}

	// Per-assert triviality, under the unconstrained environment.
	allTrue := true
	for i, a := range asserts {
		path := fmt.Sprintf("assert[%d]", i)
		switch evalBool(a, env{}) {
		case triFalse:
			allTrue = false
			out = append(out, Diagnostic{
				Pass: "absint", Severity: SeverityInfo, Path: path,
				Message: "assert is trivially unsatisfiable: it evaluates to false for every assignment under interval analysis",
			})
			continue
		case triUnknown:
			allTrue = false
		}
		// Contradiction by self-refinement: assume the assert, narrow the
		// variables it constrains, and look for an empty interval (or a
		// now-definite falsehood, e.g. (and (> x 3) (< x 2))).
		e := env{}
		for round := 0; round < 3; round++ {
			refineTerm(a, e, true)
		}
		if v, ok := e.contradiction(); ok {
			out = append(out, Diagnostic{
				Pass: "absint", Severity: SeverityInfo, Path: path,
				Message: fmt.Sprintf("assert is trivially unsatisfiable: its own conjuncts refine %q to the empty interval", v),
			})
		} else if evalBool(a, e) == triFalse {
			out = append(out, Diagnostic{
				Pass: "absint", Severity: SeverityInfo, Path: path,
				Message: "assert is trivially unsatisfiable: it evaluates to false under its own refinement",
			})
		}
	}
	if allTrue {
		out = append(out, Diagnostic{
			Pass: "absint", Severity: SeverityInfo, Path: "",
			Message: "script is trivially satisfiable: every assert is an interval tautology",
		})
	}

	// Division ranges, under the same context-sensitive guard facts as
	// divguard plus a global environment refined by all asserts (they
	// are conjoined, so their refinements hold at every division site).
	global := factSet{}
	ge := env{}
	for _, a := range asserts {
		collectGuardFacts(a, global)
	}
	for round := 0; round < 3; round++ {
		for _, a := range asserts {
			refineTerm(a, ge, true)
		}
	}
	for i, a := range asserts {
		checkDivisorIntervals(a, fmt.Sprintf("assert[%d]", i), global, ge, &out)
	}
	return out
}

// checkDivisorIntervals mirrors divguard's context walk (conjunct
// siblings guard each other, disjuncts see only their own facts, ite
// branches see the condition or its negation) and reports divisors
// whose interval still contains zero.
func checkDivisorIntervals(t ast.Term, path string, facts factSet, e env, out *[]Diagnostic) {
	switch n := t.(type) {
	case *ast.App:
		switch n.Op {
		case ast.OpAnd:
			local := factSet{}
			for _, a := range n.Args {
				collectGuardFacts(a, local)
			}
			inner := facts.extend(local)
			for i, a := range n.Args {
				checkDivisorIntervals(a, fmt.Sprintf("%s.arg[%d]", path, i), inner, e, out)
			}
			return
		case ast.OpOr:
			for i, a := range n.Args {
				local := factSet{}
				collectGuardFacts(a, local)
				checkDivisorIntervals(a, fmt.Sprintf("%s.arg[%d]", path, i), facts.extend(local), e, out)
			}
			return
		case ast.OpIte:
			checkDivisorIntervals(n.Args[0], path+".arg[0]", facts, e, out)
			thenFacts := factSet{}
			collectGuardFacts(n.Args[0], thenFacts)
			checkDivisorIntervals(n.Args[1], path+".arg[1]", facts.extend(thenFacts), refinedBy(e, n.Args[0], true), out)
			elseFacts := factSet{}
			negatedGuardFacts(n.Args[0], elseFacts)
			checkDivisorIntervals(n.Args[2], path+".arg[2]", facts.extend(elseFacts), refinedBy(e, n.Args[0], false), out)
			return
		case ast.OpIntDiv, ast.OpRealDiv:
			for i := 1; i < len(n.Args); i++ {
				reportDivisorInterval(n, n.Args[i], fmt.Sprintf("%s.arg[%d]", path, i), facts, e, out)
			}
		case ast.OpMod:
			if len(n.Args) == 2 {
				reportDivisorInterval(n, n.Args[1], path+".arg[1]", facts, e, out)
			}
		}
		for i, a := range n.Args {
			checkDivisorIntervals(a, fmt.Sprintf("%s.arg[%d]", path, i), facts, e, out)
		}
	case *ast.Quant:
		checkDivisorIntervals(n.Body, path+".body", facts, e, out)
	}
}

func reportDivisorInterval(div *ast.App, d ast.Term, path string, facts factSet, e env, out *[]Diagnostic) {
	// Everything divguard accepts is accepted here, so absint's division
	// findings are a subset of divguard's.
	if isNonzeroLiteral(d) || facts[ast.Print(d)] {
		return
	}
	v := evalNum(d, e)
	if v.excludesZero() {
		return
	}
	*out = append(*out, Diagnostic{
		Pass: "absint", Severity: SeverityWarning, Path: path,
		Message: fmt.Sprintf("(%s ...) divisor %s has interval %s, which contains zero, and no guard in scope proves it nonzero",
			div.Op, ast.Print(d), v),
	})
}

// --- three-valued booleans ---

type tri int8

const (
	triUnknown tri = iota
	triTrue
	triFalse
)

func triOf(b bool) tri {
	if b {
		return triTrue
	}
	return triFalse
}

func (t tri) not() tri {
	switch t {
	case triTrue:
		return triFalse
	case triFalse:
		return triTrue
	}
	return triUnknown
}

// --- intervals ---

// ival is a closed interval over the extended rationals: a nil bound is
// -∞ (lo) or +∞ (hi). nz records that the value is additionally known
// nonzero (which an interval containing zero cannot express).
type ival struct {
	lo, hi *big.Rat
	nz     bool
}

func top() ival             { return ival{} }
func point(r *big.Rat) ival { return ival{lo: r, hi: r} }
func pointInt(v *big.Int) ival {
	r := new(big.Rat).SetInt(v)
	return ival{lo: r, hi: r}
}

func (v ival) isEmpty() bool {
	return v.lo != nil && v.hi != nil && v.lo.Cmp(v.hi) > 0
}

func (v ival) isPoint() bool {
	return v.lo != nil && v.hi != nil && v.lo.Cmp(v.hi) == 0
}

func (v ival) excludesZero() bool {
	if v.nz || v.isEmpty() {
		return true
	}
	if v.lo != nil && v.lo.Sign() > 0 {
		return true
	}
	return v.hi != nil && v.hi.Sign() < 0
}

func (v ival) String() string {
	lo, hi := "-inf", "+inf"
	if v.lo != nil {
		lo = v.lo.RatString()
	}
	if v.hi != nil {
		hi = v.hi.RatString()
	}
	s := "[" + lo + ", " + hi + "]"
	if v.nz {
		s += "\\{0}"
	}
	return s
}

func ivalNeg(v ival) ival {
	out := ival{nz: v.nz}
	if v.hi != nil {
		out.lo = new(big.Rat).Neg(v.hi)
	}
	if v.lo != nil {
		out.hi = new(big.Rat).Neg(v.lo)
	}
	return out
}

func ivalAdd(a, b ival) ival {
	var out ival
	if a.lo != nil && b.lo != nil {
		out.lo = new(big.Rat).Add(a.lo, b.lo)
	}
	if a.hi != nil && b.hi != nil {
		out.hi = new(big.Rat).Add(a.hi, b.hi)
	}
	return out
}

func ivalSub(a, b ival) ival { return ivalAdd(a, ivalNeg(b)) }

// bnd is one interval endpoint for multiplication: inf is -1/0/+1.
type bnd struct {
	r   *big.Rat
	inf int
}

func (b bnd) sign() int {
	if b.inf != 0 {
		return b.inf
	}
	return b.r.Sign()
}

func mulBnd(a, b bnd) bnd {
	if a.inf != 0 || b.inf != 0 {
		s := a.sign() * b.sign()
		if s == 0 {
			// 0 × ∞: endpoint of an unbounded interval times zero —
			// actual values are finite, so the product endpoint is 0.
			return bnd{r: new(big.Rat)}
		}
		return bnd{inf: s}
	}
	return bnd{r: new(big.Rat).Mul(a.r, b.r)}
}

func lessBnd(a, b bnd) bool {
	if a.inf != b.inf {
		return a.inf < b.inf
	}
	if a.inf != 0 {
		return false
	}
	return a.r.Cmp(b.r) < 0
}

func ivalMul(a, b ival) ival {
	aLo, aHi := bnd{r: a.lo, inf: -1}, bnd{r: a.hi, inf: 1}
	if a.lo != nil {
		aLo = bnd{r: a.lo}
	}
	if a.hi != nil {
		aHi = bnd{r: a.hi}
	}
	bLo, bHi := bnd{r: b.lo, inf: -1}, bnd{r: b.hi, inf: 1}
	if b.lo != nil {
		bLo = bnd{r: b.lo}
	}
	if b.hi != nil {
		bHi = bnd{r: b.hi}
	}
	cands := []bnd{mulBnd(aLo, bLo), mulBnd(aLo, bHi), mulBnd(aHi, bLo), mulBnd(aHi, bHi)}
	min, max := cands[0], cands[0]
	for _, c := range cands[1:] {
		if lessBnd(c, min) {
			min = c
		}
		if lessBnd(max, c) {
			max = c
		}
	}
	var out ival
	if min.inf == 0 {
		out.lo = min.r
	}
	if max.inf == 0 {
		out.hi = max.r
	}
	out.nz = a.nz && b.nz || a.excludesZero() && b.excludesZero()
	return out
}

func ivalAbs(v ival) ival {
	switch {
	case v.lo != nil && v.lo.Sign() >= 0:
		return v
	case v.hi != nil && v.hi.Sign() <= 0:
		return ivalNeg(v)
	}
	out := ival{lo: new(big.Rat), nz: v.nz}
	if v.lo != nil && v.hi != nil {
		a := new(big.Rat).Neg(v.lo)
		if a.Cmp(v.hi) < 0 {
			a = v.hi
		}
		out.hi = a
	}
	return out
}

func ivalJoin(a, b ival) ival {
	var out ival
	if a.lo != nil && b.lo != nil {
		out.lo = a.lo
		if b.lo.Cmp(a.lo) < 0 {
			out.lo = b.lo
		}
	}
	if a.hi != nil && b.hi != nil {
		out.hi = a.hi
		if b.hi.Cmp(a.hi) > 0 {
			out.hi = b.hi
		}
	}
	out.nz = a.excludesZero() && b.excludesZero()
	return out
}

func ivalMeet(a, b ival) ival {
	out := ival{lo: a.lo, hi: a.hi, nz: a.nz || b.nz}
	if b.lo != nil && (out.lo == nil || b.lo.Cmp(out.lo) > 0) {
		out.lo = b.lo
	}
	if b.hi != nil && (out.hi == nil || b.hi.Cmp(out.hi) < 0) {
		out.hi = b.hi
	}
	return out
}

// ivalFloor is to_int: the floor of every value in the interval.
func ivalFloor(v ival) ival {
	out := ival{}
	if v.lo != nil {
		out.lo = ratFloor(v.lo)
	}
	if v.hi != nil {
		out.hi = ratFloor(v.hi)
	}
	return out
}

func ratFloor(r *big.Rat) *big.Rat {
	q := new(big.Int).Div(r.Num(), r.Denom()) // Euclidean: floors for positive denom
	return new(big.Rat).SetInt(q)
}

// --- evaluation ---

// env maps Int/Real variable names to their interval approximation;
// absent means ⊤.
type env map[string]ival

func (e env) get(name string) ival {
	if v, ok := e[name]; ok {
		return v
	}
	return top()
}

// contradiction returns a variable refined to the empty interval.
func (e env) contradiction() (string, bool) {
	for name, v := range e {
		if v.isEmpty() {
			return name, true
		}
	}
	return "", false
}

func (e env) clone() env {
	out := make(env, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// refinedBy returns e narrowed by cond (or its negation).
func refinedBy(e env, cond ast.Term, positive bool) env {
	out := e.clone()
	refineTerm(cond, out, positive)
	return out
}

// evalNum returns the interval approximation of a numeric term.
func evalNum(t ast.Term, e env) ival {
	switch n := t.(type) {
	case *ast.IntLit:
		return pointInt(n.V)
	case *ast.RealLit:
		return point(n.V)
	case *ast.Var:
		return e.get(n.Name)
	case *ast.App:
		switch n.Op {
		case ast.OpAdd:
			out := evalNum(n.Args[0], e)
			for _, a := range n.Args[1:] {
				out = ivalAdd(out, evalNum(a, e))
			}
			return out
		case ast.OpSub:
			out := evalNum(n.Args[0], e)
			for _, a := range n.Args[1:] {
				out = ivalSub(out, evalNum(a, e))
			}
			return out
		case ast.OpNeg:
			return ivalNeg(evalNum(n.Args[0], e))
		case ast.OpMul:
			out := evalNum(n.Args[0], e)
			for _, a := range n.Args[1:] {
				out = ivalMul(out, evalNum(a, e))
			}
			return out
		case ast.OpAbs:
			return ivalAbs(evalNum(n.Args[0], e))
		case ast.OpToReal:
			return evalNum(n.Args[0], e)
		case ast.OpToInt:
			return ivalFloor(evalNum(n.Args[0], e))
		case ast.OpIte:
			switch evalBool(n.Args[0], e) {
			case triTrue:
				return evalNum(n.Args[1], e)
			case triFalse:
				return evalNum(n.Args[2], e)
			}
			// Each branch may assume the condition's truth: this is what
			// proves (ite (= y 0) 1 y) nonzero.
			return ivalJoin(
				evalNum(n.Args[1], refinedBy(e, n.Args[0], true)),
				evalNum(n.Args[2], refinedBy(e, n.Args[0], false)),
			)
		case ast.OpStrLen, ast.OpStrIndexOf:
			// Lengths are nonnegative; str.indexof is ≥ -1, widened.
			lo := big.NewRat(0, 1)
			if n.Op == ast.OpStrIndexOf {
				lo = big.NewRat(-1, 1)
			}
			return ival{lo: lo}
		}
	}
	return top()
}

// evalBool returns the three-valued truth of a boolean term.
func evalBool(t ast.Term, e env) tri {
	switch n := t.(type) {
	case *ast.BoolLit:
		return triOf(n.V)
	case *ast.App:
		switch n.Op {
		case ast.OpNot:
			return evalBool(n.Args[0], e).not()
		case ast.OpAnd:
			out := triTrue
			for _, a := range n.Args {
				switch evalBool(a, e) {
				case triFalse:
					return triFalse
				case triUnknown:
					out = triUnknown
				}
			}
			return out
		case ast.OpOr:
			out := triFalse
			for _, a := range n.Args {
				switch evalBool(a, e) {
				case triTrue:
					return triTrue
				case triUnknown:
					out = triUnknown
				}
			}
			return out
		case ast.OpIte:
			switch evalBool(n.Args[0], e) {
			case triTrue:
				return evalBool(n.Args[1], e)
			case triFalse:
				return evalBool(n.Args[2], e)
			}
			a := evalBool(n.Args[1], refinedBy(e, n.Args[0], true))
			b := evalBool(n.Args[2], refinedBy(e, n.Args[0], false))
			if a == b {
				return a
			}
			return triUnknown
		case ast.OpEq:
			return evalEq(n.Args, e)
		case ast.OpDistinct:
			if len(n.Args) == 2 {
				return evalEq(n.Args, e).not()
			}
		case ast.OpLt, ast.OpLe, ast.OpGt, ast.OpGe:
			if len(n.Args) == 2 && n.Args[0].Sort().IsArith() {
				return evalCmp(n.Op, evalNum(n.Args[0], e), evalNum(n.Args[1], e))
			}
		}
	}
	return triUnknown
}

// evalEq decides (= a b ...) pairwise: definitely true only when every
// pair is definitely equal, definitely false when some pair is
// definitely unequal.
func evalEq(args []ast.Term, e env) tri {
	out := triTrue
	for i := 0; i < len(args); i++ {
		for j := i + 1; j < len(args); j++ {
			switch evalEqPair(args[i], args[j], e) {
			case triFalse:
				return triFalse
			case triUnknown:
				out = triUnknown
			}
		}
	}
	return out
}

func evalEqPair(a, b ast.Term, e env) tri {
	if a.Sort() == ast.SortBool {
		va, vb := evalBool(a, e), evalBool(b, e)
		if va == triUnknown || vb == triUnknown {
			return triUnknown
		}
		return triOf(va == vb)
	}
	if !a.Sort().IsArith() {
		return triUnknown
	}
	va, vb := evalNum(a, e), evalNum(b, e)
	if va.isPoint() && vb.isPoint() && va.lo.Cmp(vb.lo) == 0 {
		return triTrue
	}
	// Disjoint intervals, or a nonzero value against the zero point.
	if va.hi != nil && vb.lo != nil && va.hi.Cmp(vb.lo) < 0 {
		return triFalse
	}
	if va.lo != nil && vb.hi != nil && va.lo.Cmp(vb.hi) > 0 {
		return triFalse
	}
	if va.nz && vb.isPoint() && vb.lo.Sign() == 0 {
		return triFalse
	}
	if vb.nz && va.isPoint() && va.lo.Sign() == 0 {
		return triFalse
	}
	return triUnknown
}

func evalCmp(op ast.Op, a, b ival) tri {
	switch op {
	case ast.OpGt:
		return evalCmp(ast.OpLt, b, a)
	case ast.OpGe:
		return evalCmp(ast.OpLe, b, a)
	case ast.OpLt:
		if a.hi != nil && b.lo != nil && a.hi.Cmp(b.lo) < 0 {
			return triTrue
		}
		if a.lo != nil && b.hi != nil && a.lo.Cmp(b.hi) >= 0 {
			return triFalse
		}
	case ast.OpLe:
		if a.hi != nil && b.lo != nil && a.hi.Cmp(b.lo) <= 0 {
			return triTrue
		}
		if a.lo != nil && b.hi != nil && a.lo.Cmp(b.hi) > 0 {
			return triFalse
		}
	}
	return triUnknown
}

// --- refinement ---

// refineTerm narrows e under the assumption that t holds (positive) or
// fails (negative). Only conjunctive structure is consumed — (or ...)
// under a positive assumption refines nothing — so the refinement is
// sound for the contradiction check.
func refineTerm(t ast.Term, e env, positive bool) {
	n, ok := t.(*ast.App)
	if !ok {
		return
	}
	switch n.Op {
	case ast.OpNot:
		refineTerm(n.Args[0], e, !positive)
	case ast.OpAnd:
		if positive {
			for _, a := range n.Args {
				refineTerm(a, e, true)
			}
		}
	case ast.OpOr:
		if !positive {
			// ¬(a ∨ b) ⇒ ¬a ∧ ¬b.
			for _, a := range n.Args {
				refineTerm(a, e, false)
			}
		}
	case ast.OpEq:
		if len(n.Args) != 2 || !n.Args[0].Sort().IsArith() {
			return
		}
		if positive {
			refineEq(n.Args[0], n.Args[1], e)
			refineEq(n.Args[1], n.Args[0], e)
		} else {
			refineDistinct(n.Args[0], n.Args[1], e)
		}
	case ast.OpDistinct:
		if len(n.Args) == 2 && n.Args[0].Sort().IsArith() {
			if positive {
				refineDistinct(n.Args[0], n.Args[1], e)
			} else {
				refineEq(n.Args[0], n.Args[1], e)
				refineEq(n.Args[1], n.Args[0], e)
			}
		}
	case ast.OpLt, ast.OpLe, ast.OpGt, ast.OpGe:
		if len(n.Args) != 2 || !n.Args[0].Sort().IsArith() {
			return
		}
		op := n.Op
		if !positive {
			op = negateCmp(op)
		}
		refineCmp(op, n.Args[0], n.Args[1], e)
		refineCmp(flipCmp(op), n.Args[1], n.Args[0], e)
	}
}

func negateCmp(op ast.Op) ast.Op {
	switch op {
	case ast.OpLt:
		return ast.OpGe
	case ast.OpLe:
		return ast.OpGt
	case ast.OpGt:
		return ast.OpLe
	default:
		return ast.OpLt
	}
}

// flipCmp mirrors the comparison so the refined term is on the left.
func flipCmp(op ast.Op) ast.Op {
	switch op {
	case ast.OpLt:
		return ast.OpGt
	case ast.OpLe:
		return ast.OpGe
	case ast.OpGt:
		return ast.OpLt
	default:
		return ast.OpLe
	}
}

// refineEq narrows a variable on the left to the interval of the right.
func refineEq(a, b ast.Term, e env) {
	v, ok := a.(*ast.Var)
	if !ok {
		return
	}
	e[v.Name] = ivalMeet(e.get(v.Name), evalNum(b, e))
}

// refineDistinct records the nonzero bit when one side is literally 0.
func refineDistinct(a, b ast.Term, e env) {
	mark := func(x, zero ast.Term) {
		v, ok := x.(*ast.Var)
		if !ok || !isZeroLiteral(zero) {
			return
		}
		iv := e.get(v.Name)
		iv.nz = true
		e[v.Name] = iv
	}
	mark(a, b)
	mark(b, a)
}

// refineCmp narrows a variable on the left by `v op b`.
func refineCmp(op ast.Op, a, b ast.Term, e env) {
	v, ok := a.(*ast.Var)
	if !ok {
		return
	}
	bv := evalNum(b, e)
	cur := e.get(v.Name)
	one := big.NewRat(1, 1)
	switch op {
	case ast.OpLt:
		if bv.hi != nil {
			hi := bv.hi
			// At Int sort, v < n with integral n tightens to v ≤ n-1;
			// at Real sort the closed bound v ≤ n is the sound widening.
			if v.VSort == ast.SortInt && hi.IsInt() {
				hi = new(big.Rat).Sub(hi, one)
			}
			cur = ivalMeet(cur, ival{hi: hi})
		}
	case ast.OpLe:
		if bv.hi != nil {
			cur = ivalMeet(cur, ival{hi: bv.hi})
		}
	case ast.OpGt:
		if bv.lo != nil {
			lo := bv.lo
			if v.VSort == ast.SortInt && lo.IsInt() {
				lo = new(big.Rat).Add(lo, one)
			}
			cur = ivalMeet(cur, ival{lo: lo})
		}
	case ast.OpGe:
		if bv.lo != nil {
			cur = ivalMeet(cur, ival{lo: bv.lo})
		}
	}
	e[v.Name] = cur
}
