package analysis

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/smtlib"
)

func mustParse(t *testing.T, src string) *smtlib.Script {
	t.Helper()
	s, err := smtlib.ParseScript(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return s
}

func diagnosticsOf(t *testing.T, s *smtlib.Script, meta *FusionMeta, pass string) []Diagnostic {
	t.Helper()
	p, ok := Lookup(pass)
	if !ok {
		t.Fatalf("pass %q not registered", pass)
	}
	return p.Analyze(s, meta)
}

func wantFinding(t *testing.T, diags []Diagnostic, sev Severity, substr string) {
	t.Helper()
	for _, d := range diags {
		if d.Severity == sev && strings.Contains(d.Message, substr) {
			return
		}
	}
	t.Fatalf("no %v diagnostic containing %q in %v", sev, substr, diags)
}

// --- seeded negative: a deliberately ill-sorted term ---

func TestWellSortedCatchesIllSortedTerm(t *testing.T) {
	x := ast.NewVar("x", ast.SortInt)
	// (+ x true) forged with a claimed Int sort.
	bad := ast.UncheckedApp(ast.OpAdd, ast.SortInt, x, ast.True)
	s := smtlib.NewScript("QF_LIA",
		[]*smtlib.DeclareFun{{Name: "x", Sort: ast.SortInt}},
		[]ast.Term{ast.UncheckedApp(ast.OpGt, ast.SortBool, bad, ast.Int(0))})
	diags := diagnosticsOf(t, s, nil, "wellsorted")
	wantFinding(t, diags, SeverityError, "ill-sorted application")
}

func TestWellSortedCatchesStoredSortMismatch(t *testing.T) {
	// (+ 1 2) forged with a claimed Bool sort: the typing rule accepts
	// the arguments but derives Int.
	forged := ast.UncheckedApp(ast.OpAdd, ast.SortBool, ast.Int(1), ast.Int(2))
	s := smtlib.NewScript("QF_LIA", nil, []ast.Term{forged})
	diags := diagnosticsOf(t, s, nil, "wellsorted")
	wantFinding(t, diags, SeverityError, "typing rule derives")
}

func TestWellSortedCatchesUndeclaredAndMismatchedVars(t *testing.T) {
	ghost := ast.NewVar("ghost", ast.SortInt)
	s := smtlib.NewScript("QF_LIA",
		[]*smtlib.DeclareFun{{Name: "x", Sort: ast.SortReal}},
		[]ast.Term{
			ast.Gt(ghost, ast.Int(0)),
			ast.Gt(ast.NewVar("x", ast.SortInt), ast.Int(0)), // declared Real, used Int
		})
	diags := diagnosticsOf(t, s, nil, "wellsorted")
	wantFinding(t, diags, SeverityError, `undeclared variable "ghost"`)
	wantFinding(t, diags, SeverityError, "declared as Real")
}

func TestWellSortedCatchesDuplicateDeclarations(t *testing.T) {
	s := smtlib.NewScript("QF_LIA",
		[]*smtlib.DeclareFun{
			{Name: "x", Sort: ast.SortInt},
			{Name: "x", Sort: ast.SortReal},
		}, nil)
	diags := diagnosticsOf(t, s, nil, "wellsorted")
	wantFinding(t, diags, SeverityError, "conflicting declarations")
}

func TestWellSortedAcceptsValidScript(t *testing.T) {
	s := mustParse(t, `
(set-logic QF_SLIA)
(declare-fun a () String)
(declare-fun n () Int)
(assert (= (str.len a) n))
(assert (forall ((h Int)) (>= h h)))
(check-sat)
`)
	if diags := diagnosticsOf(t, s, nil, "wellsorted"); len(diags) != 0 {
		t.Fatalf("unexpected diagnostics: %v", diags)
	}
}

// --- seeded negative: a nonlinear atom under a QF_LIA declaration ---

func TestLogicCatchesNonlinearUnderLinearLogic(t *testing.T) {
	s := mustParse(t, `
(set-logic QF_LIA)
(declare-fun x () Int)
(declare-fun y () Int)
(assert (> (* x y) 0))
(check-sat)
`)
	diags := diagnosticsOf(t, s, nil, "logic")
	wantFinding(t, diags, SeverityWarning, "nonlinear term under linear logic QF_LIA")
}

func TestLogicCatchesQuantifierUnderQF(t *testing.T) {
	s := mustParse(t, `
(set-logic QF_LIA)
(declare-fun x () Int)
(assert (exists ((h Int)) (> h x)))
(check-sat)
`)
	diags := diagnosticsOf(t, s, nil, "logic")
	wantFinding(t, diags, SeverityWarning, "quantifier under quantifier-free logic")
}

func TestLogicCatchesTheoryEscape(t *testing.T) {
	s := mustParse(t, `
(set-logic QF_LIA)
(declare-fun s () String)
(assert (= s "q"))
(check-sat)
`)
	diags := diagnosticsOf(t, s, nil, "logic")
	wantFinding(t, diags, SeverityWarning, "String terms outside logic QF_LIA")
}

func TestLogicAcceptsConformingScripts(t *testing.T) {
	for _, src := range []string{
		`(set-logic QF_NIA)
(declare-fun x () Int)
(assert (> (* x x) 0))
(check-sat)`,
		`(set-logic LIA)
(declare-fun x () Int)
(assert (forall ((h Int)) (>= h h)))
(check-sat)`,
		`(set-logic QF_S)
(declare-fun a () String)
(assert (= (str.len a) 2))
(check-sat)`,
	} {
		s := mustParse(t, src)
		if diags := Filter(diagnosticsOf(t, s, nil, "logic"), SeverityWarning); len(diags) != 0 {
			t.Fatalf("unexpected diagnostics for %s: %v", src, diags)
		}
	}
}

func TestParseLogicNameLattice(t *testing.T) {
	qfnia, ok := ParseLogicName("QF_NIA")
	if !ok || !qfnia.Nonlinear || !qfnia.Ints || qfnia.Quantified || qfnia.Reals {
		t.Fatalf("QF_NIA = %+v ok=%v", qfnia, ok)
	}
	lia, _ := ParseLogicName("LIA")
	qflia, _ := ParseLogicName("QF_LIA")
	if !lia.Covers(qflia) || qflia.Covers(lia) {
		t.Fatal("LIA must strictly cover QF_LIA")
	}
	slia, _ := ParseLogicName("QF_SLIA")
	qfs, _ := ParseLogicName("QF_S")
	if !slia.Covers(qfs) {
		t.Fatal("QF_SLIA must cover QF_S")
	}
	if _, ok := ParseLogicName("StringFuzz"); ok {
		t.Fatal("non-standard names must not parse")
	}
}

// --- seeded negative: an unguarded division fusion constraint ---

func TestDivGuardCatchesUnguardedFusionConstraint(t *testing.T) {
	// x = (x*y) div y without a y ≠ 0 guard: the exact shape from the
	// paper's fusion table.
	s := mustParse(t, `
(set-logic QF_NIA)
(declare-fun x () Int)
(declare-fun y () Int)
(declare-fun z () Int)
(assert (= z (* x y)))
(assert (= x (div z y)))
(check-sat)
`)
	diags := diagnosticsOf(t, s, nil, "divguard")
	wantFinding(t, diags, SeverityWarning, "possibly-zero divisor y")
}

func TestDivGuardAcceptsGuardedForms(t *testing.T) {
	for _, src := range []string{
		// Sibling top-level guard.
		`(set-logic QF_NIA)
(declare-fun x () Int)
(declare-fun y () Int)
(assert (distinct y 0))
(assert (= x (div (* x y) y)))
(check-sat)`,
		// Guard folded into the same conjunction.
		`(set-logic QF_NIA)
(declare-fun x () Int)
(declare-fun y () Int)
(assert (and (= x (div (* x y) y)) (not (= y 0))))
(check-sat)`,
		// Comparison guard.
		`(set-logic QF_NRA)
(declare-fun w () Real)
(declare-fun v () Real)
(assert (> v 0.0))
(assert (< (/ w v) 0.0))
(check-sat)`,
		// ite guard: then-branch sees the condition.
		`(set-logic QF_NIA)
(declare-fun a () Int)
(declare-fun b () Int)
(assert (> (ite (distinct b 0) (div a b) a) 0))
(check-sat)`,
		// Constant divisor needs no guard.
		`(set-logic QF_LIA)
(declare-fun a () Int)
(assert (= (div a 3) 1))
(check-sat)`,
	} {
		s := mustParse(t, src)
		if diags := diagnosticsOf(t, s, nil, "divguard"); len(diags) != 0 {
			t.Fatalf("unexpected diagnostics for:\n%s\n%v", src, diags)
		}
	}
}

func TestDivGuardScopesDisjunctsAndElseBranches(t *testing.T) {
	// A guard inside one disjunct must not leak into the other.
	s := mustParse(t, `
(set-logic QF_NIA)
(declare-fun a () Int)
(declare-fun b () Int)
(assert (or (and (distinct b 0) (> (div a b) 0)) (> (div a b) 1)))
(check-sat)
`)
	diags := diagnosticsOf(t, s, nil, "divguard")
	if len(diags) != 1 {
		t.Fatalf("want exactly the unguarded disjunct flagged, got %v", diags)
	}
	// The else-branch of (ite (= b 0) _ _) knows b ≠ 0.
	s = mustParse(t, `
(set-logic QF_NIA)
(declare-fun a () Int)
(declare-fun b () Int)
(assert (> (ite (= b 0) a (div a b)) 0))
(check-sat)
`)
	if diags := diagnosticsOf(t, s, nil, "divguard"); len(diags) != 0 {
		t.Fatalf("else-branch guard not recognized: %v", diags)
	}
}

// --- seeded negative: a non-disjoint variable renaming ---

func TestFusionCatchesNonDisjointRenaming(t *testing.T) {
	s := mustParse(t, `
(set-logic QF_LIA)
(declare-fun x () Int)
(declare-fun y () Int)
(assert (> x 0))
(assert (< y 0))
(check-sat)
`)
	meta := &FusionMeta{
		Mode:      "sat-conjunction",
		Seed1Vars: []string{"x", "y"},
		Seed2Vars: []string{"y"}, // renaming failed to separate y
	}
	diags := diagnosticsOf(t, s, meta, "fusion")
	wantFinding(t, diags, SeverityError, "not disjoint")
}

func TestFusionCatchesMissingConstraints(t *testing.T) {
	s := mustParse(t, `
(set-logic QF_LIA)
(declare-fun x () Int)
(declare-fun y () Int)
(declare-fun z () Int)
(assert (or (> x 0) (< y 0)))
(assert (= z (+ x y)))
(assert (= x (- z y)))
(check-sat)
`)
	meta := &FusionMeta{
		Mode:            "unsat-disjunction",
		Seed1Vars:       []string{"x"},
		Seed2Vars:       []string{"y"},
		Triplets:        []FusionTriplet{{Z: "z", X: "x", Y: "y", Sort: ast.SortInt}},
		WantConstraints: true,
	}
	diags := diagnosticsOf(t, s, meta, "fusion")
	wantFinding(t, diags, SeverityError, "missing fusion constraint (= y ...)")
}

func TestFusionCatchesUndeclaredAndMissortedTripletVars(t *testing.T) {
	s := mustParse(t, `
(set-logic QF_LIA)
(declare-fun x () Int)
(declare-fun z () Real)
(assert (> x 0))
(check-sat)
`)
	meta := &FusionMeta{
		Mode:      "sat-conjunction",
		Seed1Vars: []string{"x"},
		Seed2Vars: []string{"y"},
		Triplets:  []FusionTriplet{{Z: "z", X: "x", Y: "y", Sort: ast.SortInt}},
	}
	diags := diagnosticsOf(t, s, meta, "fusion")
	wantFinding(t, diags, SeverityError, `y variable "y" is not declared`)
	wantFinding(t, diags, SeverityError, `z variable "z" declared Real`)
}

func TestFusionAcceptsValidMeta(t *testing.T) {
	s := mustParse(t, `
(set-logic QF_LIA)
(declare-fun x () Int)
(declare-fun y () Int)
(declare-fun z () Int)
(assert (or (> x 0) (< y 0)))
(assert (= z (+ x y)))
(assert (= x (- z y)))
(assert (and (= y (- z x)) (distinct x 0)))
(check-sat)
`)
	meta := &FusionMeta{
		Mode:            "unsat-disjunction",
		Seed1Vars:       []string{"x"},
		Seed2Vars:       []string{"y"},
		Triplets:        []FusionTriplet{{Z: "z", X: "x", Y: "y", Sort: ast.SortInt}},
		WantConstraints: true,
	}
	if diags := diagnosticsOf(t, s, meta, "fusion"); len(diags) != 0 {
		t.Fatalf("unexpected diagnostics: %v", diags)
	}
}

// --- trivial-constant detection ---

func TestTrivialNotesConstantAsserts(t *testing.T) {
	x := ast.NewVar("x", ast.SortInt)
	s := smtlib.NewScript("QF_LIA",
		[]*smtlib.DeclareFun{{Name: "x", Sort: ast.SortInt}},
		[]ast.Term{
			ast.True,
			ast.Eq(ast.Int(3), ast.Int(3)),
			ast.Lt(ast.Int(1), ast.Int(2)),
			ast.Lt(x, x),
			ast.Gt(x, ast.Int(0)),
		})
	diags := diagnosticsOf(t, s, nil, "trivial")
	wantFinding(t, diags, SeverityInfo, "assert of the constant true")
	wantFinding(t, diags, SeverityInfo, "(= t t) is trivially true")
	wantFinding(t, diags, SeverityInfo, "constant atom")
	wantFinding(t, diags, SeverityInfo, "(< t t) is trivially false")
	if len(diags) != 4 {
		t.Fatalf("want exactly 4 notes, got %v", diags)
	}
	if got, _ := MaxSeverity(diags); got != SeverityInfo {
		t.Fatalf("trivial findings must stay info-level, got %v", got)
	}
}

// --- framework ---

func TestAnalyzeScriptOrdersAndFilters(t *testing.T) {
	forged := ast.UncheckedApp(ast.OpAdd, ast.SortBool, ast.Int(1), ast.Int(2))
	s := smtlib.NewScript("QF_LIA", nil, []ast.Term{forged, ast.True})
	diags := AnalyzeScript(s, nil)
	if len(diags) == 0 || diags[0].Severity != SeverityError {
		t.Fatalf("errors must sort first: %v", diags)
	}
	warnsUp := Filter(diags, SeverityWarning)
	for _, d := range warnsUp {
		if d.Severity < SeverityWarning {
			t.Fatalf("filter leaked %v", d)
		}
	}
	if len(Filter(diags, SeverityInfo)) != len(diags) {
		t.Fatal("info filter must keep everything")
	}
}

func TestGateReturnsTypedError(t *testing.T) {
	forged := ast.UncheckedApp(ast.OpAdd, ast.SortBool, ast.Int(1), ast.Int(2))
	s := smtlib.NewScript("QF_LIA", nil, []ast.Term{forged})
	err := Gate(s, nil)
	ge, ok := err.(*GateError)
	if !ok || len(ge.Diagnostics) == 0 {
		t.Fatalf("err = %v", err)
	}
	// Warnings must not trip the gate.
	nl := mustParse(t, `
(set-logic QF_LIA)
(declare-fun x () Int)
(assert (> (* x x) 0))
(check-sat)
`)
	if err := Gate(nl, nil); err != nil {
		t.Fatalf("gate must ignore warnings: %v", err)
	}
}

func TestRegistryLookup(t *testing.T) {
	names := []string{"wellsorted", "fusion", "logic", "divguard", "absint", "trivial"}
	if got := len(Passes()); got != len(names) {
		t.Fatalf("registered passes = %d, want %d", got, len(names))
	}
	for _, n := range names {
		if _, ok := Lookup(n); !ok {
			t.Fatalf("pass %q not registered", n)
		}
	}
}
