package analysis

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/smtlib"
)

// fusionPass verifies the fusion engine's structural postconditions
// against the metadata the engine reports (it does nothing for scripts
// without FusionMeta):
//
//   - the two renamed ancestors' variable sets are disjoint;
//   - every triplet's z is a fresh declared variable of the fused sort,
//     and x, y are declared ancestor variables of the same sort;
//   - in the UNSAT and mixed-unsat modes, every triplet has its three
//     fusion constraints z = f(x,y), x = rx(y,z), y = ry(x,z) asserted
//     (possibly conjoined with divisor guards).
//
// Every finding is an error: a violated postcondition means the fused
// formula's oracle cannot be trusted, so the finding points at the
// fusion engine, not the solver under test.
type fusionPass struct{}

func (fusionPass) Name() string { return "fusion" }

func (fusionPass) Analyze(s *smtlib.Script, meta *FusionMeta) []Diagnostic {
	if meta == nil {
		return nil
	}
	var out []Diagnostic
	report := func(format string, args ...interface{}) {
		out = append(out, Diagnostic{
			Pass: "fusion", Severity: SeverityError,
			Message: fmt.Sprintf(format, args...),
		})
	}

	seed1 := map[string]bool{}
	for _, n := range meta.Seed1Vars {
		seed1[n] = true
	}
	for _, n := range meta.Seed2Vars {
		if seed1[n] {
			report("ancestor variable sets are not disjoint: %q occurs in both seeds", n)
		}
	}

	decls := s.DeclarationSorts()
	zSeen := map[string]bool{}
	for i, tr := range meta.Triplets {
		if zSeen[tr.Z] {
			report("triplet %d reuses fusion variable %q", i, tr.Z)
		}
		zSeen[tr.Z] = true
		if seed1[tr.Z] {
			report("fusion variable %q collides with an ancestor variable", tr.Z)
		}
		for _, n := range meta.Seed2Vars {
			if n == tr.Z {
				report("fusion variable %q collides with an ancestor variable", tr.Z)
			}
		}
		for _, v := range []struct {
			role, name string
		}{{"z", tr.Z}, {"x", tr.X}, {"y", tr.Y}} {
			got, ok := decls[v.name]
			if !ok {
				report("triplet %d: %s variable %q is not declared", i, v.role, v.name)
				continue
			}
			if got != tr.Sort {
				report("triplet %d: %s variable %q declared %v, fused sort is %v", i, v.role, v.name, got, tr.Sort)
			}
		}
	}

	if meta.WantConstraints {
		asserts := s.Asserts()
		for i, tr := range meta.Triplets {
			for _, name := range []string{tr.Z, tr.X, tr.Y} {
				if !hasConstraintFor(asserts, name) {
					report("triplet %d: missing fusion constraint (= %s ...) in %s mode", i, name, meta.Mode)
				}
			}
		}
	}
	return out
}

// hasConstraintFor reports whether some top-level assert pins name with
// an equality (= name rhs) — either directly or as a conjunct of an
// (and ...) that also carries divisor guards.
func hasConstraintFor(asserts []ast.Term, name string) bool {
	for _, a := range asserts {
		if constraintIn(a, name) {
			return true
		}
	}
	return false
}

func constraintIn(t ast.Term, name string) bool {
	app, ok := t.(*ast.App)
	if !ok {
		return false
	}
	switch app.Op {
	case ast.OpEq:
		if len(app.Args) >= 2 {
			if v, ok := app.Args[0].(*ast.Var); ok && v.Name == name {
				return true
			}
		}
	case ast.OpAnd:
		for _, a := range app.Args {
			if constraintIn(a, name) {
				return true
			}
		}
	}
	return false
}
