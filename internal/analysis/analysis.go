// Package analysis is a multi-pass static analyzer over SMT-LIB
// scripts. It independently re-verifies properties the rest of the
// pipeline assumes by construction: well-sortedness against the
// internal/ast operator table, conformance of the formula to its
// declared logic, guarding of possibly-zero divisors, the fusion
// engine's structural postconditions, and trivially-constant asserts.
//
// The analyzer is wired in three places: internal/core runs the
// error-level passes as a hard gate after every fusion (a diagnostic
// there is a fusion-engine bug, not a solver bug), internal/harness
// counts gate rejections as invalid inputs in campaign statistics, and
// cmd/yylint lints arbitrary SMT-LIB files.
package analysis

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/ast"
	"repro/internal/smtlib"
)

// Severity classifies a diagnostic.
//
//   - SeverityError: the script is structurally invalid (ill-sorted,
//     undeclared variables, broken fusion postconditions). Errors gate
//     the fusion pipeline.
//   - SeverityWarning: the script is suspicious but well-formed
//     (logic non-conformance, unguarded possibly-zero divisors).
//     Warnings are enforced on generator and fusion outputs by tests,
//     not by the runtime gate.
//   - SeverityInfo: stylistic or redundancy notes (trivially constant
//     asserts). Never gated: generators legitimately emit constant
//     atoms such as (= 3 3) from literal leaves.
type Severity int8

const (
	SeverityInfo Severity = iota
	SeverityWarning
	SeverityError
)

func (s Severity) String() string {
	switch s {
	case SeverityError:
		return "error"
	case SeverityWarning:
		return "warning"
	default:
		return "info"
	}
}

// SeverityByName parses a severity name.
func SeverityByName(name string) (Severity, bool) {
	switch strings.ToLower(name) {
	case "error":
		return SeverityError, true
	case "warning", "warn":
		return SeverityWarning, true
	case "info":
		return SeverityInfo, true
	}
	return SeverityInfo, false
}

// Diagnostic is one finding: which pass produced it, how severe it is,
// where in the script it anchors (a term path such as
// "assert[2].arg[0].arg[1]", or "" for script-level findings), and a
// human-readable message.
type Diagnostic struct {
	Pass     string
	Severity Severity
	Path     string
	Message  string
}

func (d Diagnostic) String() string {
	if d.Path == "" {
		return fmt.Sprintf("[%s] %s: %s", d.Severity, d.Pass, d.Message)
	}
	return fmt.Sprintf("[%s] %s: %s: %s", d.Severity, d.Pass, d.Path, d.Message)
}

// Pass is one analysis over a script. Analyze receives the optional
// fusion metadata (nil for non-fused scripts) and returns its findings.
type Pass interface {
	Name() string
	Analyze(s *smtlib.Script, meta *FusionMeta) []Diagnostic
}

// FusionTriplet names one (z, x, y) variable fusion.
type FusionTriplet struct {
	Z, X, Y string
	Sort    ast.Sort
}

// FusionMeta describes the postconditions a fused script must satisfy.
// It is constructed by internal/core (which imports this package, not
// the other way around) and consumed by the fusion-postcondition pass.
type FusionMeta struct {
	// Mode is the fusion mode's string form (informational).
	Mode string
	// Seed1Vars and Seed2Vars are the declared variable names of the
	// two ancestors after renaming apart; they must be disjoint.
	Seed1Vars, Seed2Vars []string
	// Triplets are the fusion triplets introduced.
	Triplets []FusionTriplet
	// WantConstraints reports whether the mode requires fusion
	// constraints z = f(x,y), x = rx(y,z), y = ry(x,z) to be asserted
	// (the UNSAT and mixed-unsat modes).
	WantConstraints bool
}

// --- registry ---

var registry struct {
	mu     sync.Mutex
	order  []string
	byName map[string]Pass
}

// Register adds a pass to the registry. Registering a name twice
// replaces the earlier pass (keeping its position).
func Register(p Pass) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.byName == nil {
		registry.byName = map[string]Pass{}
	}
	if _, ok := registry.byName[p.Name()]; !ok {
		registry.order = append(registry.order, p.Name())
	}
	registry.byName[p.Name()] = p
}

// Passes returns every registered pass in registration order.
func Passes() []Pass {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make([]Pass, 0, len(registry.order))
	for _, n := range registry.order {
		out = append(out, registry.byName[n])
	}
	return out
}

// Lookup resolves a pass by name.
func Lookup(name string) (Pass, bool) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	p, ok := registry.byName[name]
	return p, ok
}

func init() {
	Register(wellSortedPass{})
	Register(fusionPass{})
	Register(logicPass{})
	Register(divGuardPass{})
	Register(absintPass{})
	Register(trivialPass{})
}

// GatePasses returns the error-level passes run as the post-fusion
// hard gate: well-sortedness and the fusion postconditions.
func GatePasses() []Pass {
	return []Pass{wellSortedPass{}, fusionPass{}}
}

// AnalyzeScript runs the given passes (all registered passes when none
// are given) and returns the combined findings ordered by descending
// severity, then pass name, then path.
func AnalyzeScript(s *smtlib.Script, meta *FusionMeta, passes ...Pass) []Diagnostic {
	if len(passes) == 0 {
		passes = Passes()
	}
	var out []Diagnostic
	for _, p := range passes {
		out = append(out, p.Analyze(s, meta)...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Severity != out[j].Severity {
			return out[i].Severity > out[j].Severity
		}
		if out[i].Pass != out[j].Pass {
			return out[i].Pass < out[j].Pass
		}
		return out[i].Path < out[j].Path
	})
	return out
}

// Filter returns the diagnostics at or above the minimum severity.
func Filter(diags []Diagnostic, min Severity) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Severity >= min {
			out = append(out, d)
		}
	}
	return out
}

// MaxSeverity returns the highest severity present; ok is false when
// there are no diagnostics.
func MaxSeverity(diags []Diagnostic) (Severity, bool) {
	if len(diags) == 0 {
		return SeverityInfo, false
	}
	max := SeverityInfo
	for _, d := range diags {
		if d.Severity > max {
			max = d.Severity
		}
	}
	return max, true
}

// GateError is returned by Gate when a script fails the error-level
// passes. internal/harness matches it with errors.As to count invalid
// inputs separately from solver verdicts.
type GateError struct {
	Diagnostics []Diagnostic
}

func (e *GateError) Error() string {
	if len(e.Diagnostics) == 1 {
		return "analysis: " + e.Diagnostics[0].String()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "analysis: %d findings:", len(e.Diagnostics))
	for _, d := range e.Diagnostics {
		b.WriteString("\n\t")
		b.WriteString(d.String())
	}
	return b.String()
}

// Gate runs the error-level passes and returns a *GateError when any
// error-severity diagnostic is produced.
func Gate(s *smtlib.Script, meta *FusionMeta) error {
	diags := Filter(AnalyzeScript(s, meta, GatePasses()...), SeverityError)
	if len(diags) > 0 {
		return &GateError{Diagnostics: diags}
	}
	return nil
}
