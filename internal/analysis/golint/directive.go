package golint

import (
	"fmt"
	"regexp"
	"strings"

	"repro/internal/analysis/golint/load"
)

// Allow directives.
//
// A finding can be suppressed in source with
//
//	//golint:allow <rule> — <reason>
//
// placed on the offending line or on the line directly above it. The
// em-dash separator may be written "--" instead. The reason is
// mandatory: a directive without one does not suppress anything and is
// itself reported, as is a stale directive that no longer matches any
// finding — allowlists must not outlive the code they excuse. This
// replaces the old hard-coded wall-clock path allowlist: the exemption
// now lives next to the call it excuses, carrying its justification.
type directive struct {
	File   string
	Line   int
	Rule   string
	Reason string
	used   bool
}

var directiveRe = regexp.MustCompile(`^//\s*golint:allow\s+([A-Za-z0-9_-]+)\s*(?:—|--)?\s*(.*)$`)

// collectDirectives parses every //golint:allow comment in the package.
func collectDirectives(prog *load.Program, pkg *load.Package) []*directive {
	var out []*directive
	for _, file := range pkg.Files {
		for _, cg := range file.AST.Comments {
			for _, c := range cg.List {
				if !strings.Contains(c.Text, "golint:allow") {
					continue
				}
				m := directiveRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				out = append(out, &directive{
					File:   file.Name,
					Line:   prog.Position(c.Pos()).Line,
					Rule:   m[1],
					Reason: strings.TrimSpace(m[2]),
				})
			}
		}
	}
	return out
}

// applyDirectives filters findings through the package directives and
// appends the directive findings themselves (unknown rule, missing
// reason, stale). A directive suppresses findings of its rule on its
// own line or the line below.
func applyDirectives(findings []Finding, directives []*directive) []Finding {
	known := map[string]bool{
		RuleGlobalRand: true, RuleWallClock: true,
		RuleMapRangeRender: true, RuleFuel: true,
	}
	var kept []Finding
	for _, f := range findings {
		suppressed := false
		for _, d := range directives {
			if d.Rule != f.Rule || d.File != f.File || d.Reason == "" {
				continue
			}
			if d.Line == f.Line || d.Line == f.Line-1 {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	for _, d := range directives {
		switch {
		case !known[d.Rule]:
			kept = append(kept, Finding{File: d.File, Line: d.Line, Rule: RuleAllowDirective,
				Message: fmt.Sprintf("allow directive names unknown rule %q", d.Rule)})
		case d.Reason == "":
			kept = append(kept, Finding{File: d.File, Line: d.Line, Rule: RuleAllowDirective,
				Message: "allow directive for " + d.Rule + " has no reason; write '//golint:allow " + d.Rule + " — <reason>'"})
		case !d.used:
			kept = append(kept, Finding{File: d.File, Line: d.Line, Rule: RuleAllowDirective,
				Message: "stale allow directive: no " + d.Rule + " finding here to suppress"})
		}
	}
	return kept
}
