package golint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis/golint/load"
)

// statefulRandFuncs are the top-level math/rand functions that read the
// package-global, impossible-to-reseed-per-campaign source.
var statefulRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true,
	"Seed": true, "Read": true,
	// math/rand/v2 additions (the global source there is auto-seeded,
	// which is just as unreproducible).
	"N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "UintN": true, "Uint64N": true,
}

// wallClockFuncs are the package time functions that read or schedule
// against the real clock. Pure value constructors and conversions
// (time.Duration arithmetic, time.Parse, time.Unix) stay allowed.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// writeMethodNames are the method names whose call constitutes an
// order-sensitive write into a writer/builder.
var writeMethodNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Printf": true, "Println": true,
}

// fmt package print families.
var fmtStdoutFuncs = map[string]bool{"Print": true, "Printf": true, "Println": true}
var fmtWriterFuncs = map[string]bool{"Fprint": true, "Fprintf": true, "Fprintln": true}

// lintCallRules reports the two call-site rules, global-rand and
// wall-clock, resolved through go/types (import aliasing and dot
// imports are irrelevant to a typed check).
func lintCallRules(prog *load.Program, pkgs []*load.Package) []Finding {
	var out []Finding
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file.AST, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := load.Callee(pkg, call)
				if callee == nil || callee.Pkg() == nil {
					return true
				}
				sig, _ := callee.Type().(*types.Signature)
				topLevel := sig != nil && sig.Recv() == nil
				switch callee.Pkg().Path() {
				case "math/rand", "math/rand/v2":
					if topLevel && statefulRandFuncs[callee.Name()] {
						out = append(out, Finding{
							File: file.Name, Line: prog.Position(call.Pos()).Line,
							Rule:    RuleGlobalRand,
							Message: "call to global " + callee.Pkg().Name() + "." + callee.Name() + "; use an explicitly seeded *rand.Rand",
						})
					}
				case "time":
					if topLevel && wallClockFuncs[callee.Name()] {
						out = append(out, Finding{
							File: file.Name, Line: prog.Position(call.Pos()).Line,
							Rule:    RuleWallClock,
							Message: "time." + callee.Name() + " reads the wall clock; deadlines must use the fuel meter (//golint:allow wall-clock — <reason> for the watchdog/bench exemptions)",
						})
					}
				}
				return true
			})
		}
	}
	return out
}

// --- map-order determinism ---

// lintMapOrder reports order-sensitive accumulation inside ranges over
// maps. The interprocedural half classifies every declared function as
// rendering or not:
//
//   - a function is a stdout-renderer if it (transitively) calls
//     fmt.Print/Printf/Println or writes to a package-level writer
//     (os.Stdout and friends);
//   - a function is a writer-renderer if it writes into a writer it was
//     handed (parameter or receiver), directly or by passing one of its
//     own parameters on to another writer-renderer. A function that
//     only writes into its own local buffer and returns the string is
//     pure (Sprint-like) and is not flagged.
//
// At a map-range site, a call leaks iteration order if it reaches a
// stdout-renderer, or hands anything that outlives the loop iteration
// to a writer-renderer or write method.
func lintMapOrder(prog *load.Program, cg *load.CallGraph, pkgs []*load.Package) []Finding {
	stdout := cg.Closure(func(fn *types.Func, decl *load.FuncDecl) bool {
		return rendersToStdout(decl)
	})
	writerEmit := writerRenderers(cg, stdout)
	sorters := sorterFuncs(cg)

	var out []Finding
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				rt := newRooter(pkg, fd)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					rng, ok := n.(*ast.RangeStmt)
					if !ok || !isMapType(pkg, rng.X) {
						return true
					}
					out = append(out, checkMapRange(prog, cg, pkg, file, fd, rng, rt, stdout, writerEmit, sorters)...)
					return true
				})
			}
		}
	}
	return out
}

// isMapType reports whether the expression's type is a map.
func isMapType(pkg *load.Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, ok = tv.Type.Underlying().(*types.Map)
	return ok
}

// checkMapRange reports every order leak inside one map range.
func checkMapRange(prog *load.Program, cg *load.CallGraph, pkg *load.Package, file load.File,
	fn *ast.FuncDecl, rng *ast.RangeStmt, rt *rooter,
	stdout, writerEmit, sorters map[*types.Func]bool) []Finding {

	var out []Finding
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, Finding{
			File: file.Name, Line: prog.Position(pos).Line,
			Rule:    RuleMapRangeRender,
			Message: fmt.Sprintf(format, args...),
		})
	}
	// outlives reports whether the expression's root is declared outside
	// the loop body, i.e. whether writes through it accumulate across
	// iterations.
	outlives := func(e ast.Expr) bool {
		pos := rt.rootPos(e)
		return pos != token.NoPos && (pos < rng.Pos() || pos >= rng.End())
	}

	appendTargets := map[types.Object]token.Pos{}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			callee := load.Callee(pkg, s)
			if callee == nil {
				// Method call on a writer through a func value etc.; fall
				// back to the selector name for direct write detection.
				if sel, ok := ast.Unparen(s.Fun).(*ast.SelectorExpr); ok && writeMethodNames[sel.Sel.Name] && outlives(sel.X) {
					report(s.Pos(), "%s on a writer that outlives the iteration, inside a range over a map: iteration order leaks into output", sel.Sel.Name)
				}
				return true
			}
			if callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
				if fmtStdoutFuncs[callee.Name()] {
					report(s.Pos(), "fmt.%s inside a range over a map: iteration order leaks into output", callee.Name())
					return true
				}
				if fmtWriterFuncs[callee.Name()] && len(s.Args) > 0 && outlives(s.Args[0]) {
					report(s.Pos(), "fmt.%s into a writer that outlives the iteration, inside a range over a map: iteration order leaks into output", callee.Name())
					return true
				}
			}
			sig, _ := callee.Type().(*types.Signature)
			if sig != nil && sig.Recv() != nil && writeMethodNames[callee.Name()] {
				if sel, ok := ast.Unparen(s.Fun).(*ast.SelectorExpr); ok && outlives(sel.X) {
					report(s.Pos(), "%s on a writer that outlives the iteration, inside a range over a map: iteration order leaks into output", callee.Name())
					return true
				}
			}
			if inRenderSet(cg, callee, stdout) {
				report(s.Pos(), "call to %s, which renders output, inside a range over a map: iteration order leaks into output", callee.Name())
				return true
			}
			if inRenderSet(cg, callee, writerEmit) {
				// Leaks only if the call is handed something that outlives
				// the iteration to write into.
				handed := false
				if sel, ok := ast.Unparen(s.Fun).(*ast.SelectorExpr); ok && sig != nil && sig.Recv() != nil && outlives(sel.X) {
					handed = true
				}
				for _, arg := range s.Args {
					if outlives(arg) {
						handed = true
					}
				}
				if handed {
					report(s.Pos(), "call to %s, which writes into a writer it is handed, inside a range over a map: iteration order leaks into output", callee.Name())
					return true
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || i >= len(s.Lhs) {
					continue
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "append" {
					continue
				}
				target, ok := s.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := pkg.Info.Uses[target]
				if obj == nil {
					obj = pkg.Info.Defs[target]
				}
				if obj == nil || !outlives(target) {
					continue
				}
				if _, seen := appendTargets[obj]; !seen {
					appendTargets[obj] = s.Pos()
				}
			}
		}
		return true
	})

	// Deterministic report order for the append findings.
	objs := make([]types.Object, 0, len(appendTargets))
	for obj := range appendTargets {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return appendTargets[objs[i]] < appendTargets[objs[j]] })
	for _, obj := range objs {
		if !sortsObject(cg, pkg, fn.Body, obj, sorters) {
			report(appendTargets[obj], "append to %q inside a range over a map, and %q is never sorted in this function", obj.Name(), obj.Name())
		}
	}
	return out
}

// sortsObject reports whether the function body contains a sorting call
// whose arguments mention the object: a sort.* / slices.* call, or a
// call to a module function classified as a sorter (one that passes a
// parameter of its own on to a sort).
func sortsObject(cg *load.CallGraph, pkg *load.Package, body *ast.BlockStmt, obj types.Object, sorters map[*types.Func]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := load.Callee(pkg, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if p := callee.Pkg().Path(); p != "sort" && p != "slices" && !inRenderSet(cg, callee, sorters) {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
					found = true
					return false
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// sorterFuncs computes, to a fixpoint, the set of declared functions
// that sort one of their own parameters — directly via a sort.* /
// slices.* call, or by passing a parameter on to another sorter. Local
// helpers like `func sortStrings(ss []string)` are thereby recognized
// as establishing order, the same way writer-renderers are recognized
// as destroying it.
func sorterFuncs(cg *load.CallGraph) map[*types.Func]bool {
	sorters := map[*types.Func]bool{}
	for {
		changed := false
		for fn, decl := range cg.Decls {
			if sorters[fn] {
				continue
			}
			if sortsOwnParam(cg, fn, decl, sorters) {
				sorters[fn] = true
				changed = true
			}
		}
		if !changed {
			return sorters
		}
	}
}

// sortsOwnParam reports whether fn hands one of its own parameters (or
// receiver, or anything rooted in them) to a sorting call.
func sortsOwnParam(cg *load.CallGraph, fn *types.Func, decl *load.FuncDecl, sorters map[*types.Func]bool) bool {
	pkg := decl.Pkg
	rt := newRooter(pkg, decl.Decl)
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return false
	}
	fromParam := rootedInParams(rt, sig)
	found := false
	ast.Inspect(decl.Decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := load.Callee(pkg, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if p := callee.Pkg().Path(); p != "sort" && p != "slices" && !inRenderSet(cg, callee, sorters) {
			return true
		}
		for _, arg := range call.Args {
			if fromParam(arg) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// inRenderSet reports membership, expanding an interface method to its
// implementations.
func inRenderSet(cg *load.CallGraph, callee *types.Func, set map[*types.Func]bool) bool {
	if set[callee] {
		return true
	}
	for _, impl := range cg.Implementations(callee) {
		if set[impl] {
			return true
		}
	}
	return false
}

// rendersToStdout reports whether the function directly prints to the
// process-global streams: fmt.Print* calls, or writes into a
// package-level writer such as os.Stdout.
func rendersToStdout(decl *load.FuncDecl) bool {
	pkg := decl.Pkg
	rt := newRooter(pkg, decl.Decl)
	found := false
	ast.Inspect(decl.Decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := load.Callee(pkg, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if callee.Pkg().Path() == "fmt" && fmtStdoutFuncs[callee.Name()] {
			found = true
			return false
		}
		var writer ast.Expr
		if callee.Pkg().Path() == "fmt" && fmtWriterFuncs[callee.Name()] && len(call.Args) > 0 {
			writer = call.Args[0]
		} else if sig, _ := callee.Type().(*types.Signature); sig != nil && sig.Recv() != nil && writeMethodNames[callee.Name()] {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				writer = sel.X
			}
		}
		if writer != nil {
			if obj := rt.rootObj(writer); obj != nil && isPackageLevel(obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// writerRenderers computes, to a fixpoint, the set of declared
// functions that write into a writer handed to them (parameter or
// receiver) — directly, or by passing one of their parameters to
// another writer-renderer.
func writerRenderers(cg *load.CallGraph, stdout map[*types.Func]bool) map[*types.Func]bool {
	emit := map[*types.Func]bool{}
	for {
		changed := false
		for fn, decl := range cg.Decls {
			if emit[fn] {
				continue
			}
			if writesToOwnParams(cg, fn, decl, emit) {
				emit[fn] = true
				changed = true
			}
		}
		if !changed {
			return emit
		}
	}
}

// writesToOwnParams reports whether fn hands one of its own parameters
// (or receiver, or anything rooted in them) to a write: a direct
// fmt.Fprint*/Write* call, or a call to a function already classified
// as a writer-renderer.
func writesToOwnParams(cg *load.CallGraph, fn *types.Func, decl *load.FuncDecl, emit map[*types.Func]bool) bool {
	pkg := decl.Pkg
	rt := newRooter(pkg, decl.Decl)
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return false
	}
	fromParam := rootedInParams(rt, sig)
	found := false
	ast.Inspect(decl.Decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := load.Callee(pkg, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if callee.Pkg().Path() == "fmt" && fmtWriterFuncs[callee.Name()] && len(call.Args) > 0 && fromParam(call.Args[0]) {
			found = true
			return false
		}
		if csig, _ := callee.Type().(*types.Signature); csig != nil && csig.Recv() != nil && writeMethodNames[callee.Name()] {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && fromParam(sel.X) {
				found = true
				return false
			}
		}
		if inRenderSet(cg, callee, emit) {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if csig, _ := callee.Type().(*types.Signature); csig != nil && csig.Recv() != nil && fromParam(sel.X) {
					found = true
					return false
				}
			}
			for _, arg := range call.Args {
				if fromParam(arg) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// rootedInParams returns a predicate reporting whether an expression is
// rooted in one of the signature's parameters or its receiver.
func rootedInParams(rt *rooter, sig *types.Signature) func(ast.Expr) bool {
	return func(e ast.Expr) bool {
		obj := rt.rootObj(e)
		if obj == nil {
			return false
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return false
		}
		if recv := sig.Recv(); recv != nil && v == recv {
			return true
		}
		params := sig.Params()
		for i := 0; i < params.Len(); i++ {
			if v == params.At(i) {
				return true
			}
		}
		return false
	}
}

// --- expression rooting ---

// rooter resolves an expression to the object (or position) its storage
// is rooted in, following one level of simple aliasing (x := y).
type rooter struct {
	pkg     *load.Package
	aliases map[types.Object]ast.Expr
}

func newRooter(pkg *load.Package, fn *ast.FuncDecl) *rooter {
	rt := &rooter{pkg: pkg, aliases: map[types.Object]ast.Expr{}}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := pkg.Info.Defs[id]
			if obj == nil {
				obj = pkg.Info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if _, have := rt.aliases[obj]; !have {
				rt.aliases[obj] = as.Rhs[i]
			}
		}
		return true
	})
	return rt
}

// rootObj returns the object the expression is rooted in, or nil.
func (rt *rooter) rootObj(e ast.Expr) types.Object { return rt.root(e, 0) }

func (rt *rooter) root(e ast.Expr, depth int) types.Object {
	if depth > 8 {
		return nil
	}
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := rt.pkg.Info.Uses[v]
		if obj == nil {
			obj = rt.pkg.Info.Defs[v]
		}
		if obj == nil {
			return nil
		}
		if alias, ok := rt.aliases[obj]; ok {
			if aliased := rt.root(alias, depth+1); aliased != nil {
				return aliased
			}
		}
		return obj
	case *ast.SelectorExpr:
		if sel, ok := rt.pkg.Info.Selections[v]; ok && sel.Kind() == types.FieldVal {
			return rt.root(v.X, depth+1)
		}
		// Qualified identifier: package-level object.
		if obj := rt.pkg.Info.Uses[v.Sel]; obj != nil {
			return obj
		}
		return rt.root(v.X, depth+1)
	case *ast.StarExpr:
		return rt.root(v.X, depth+1)
	case *ast.IndexExpr:
		return rt.root(v.X, depth+1)
	case *ast.SliceExpr:
		return rt.root(v.X, depth+1)
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			return rt.root(v.X, depth+1)
		}
	}
	return nil
}

// rootPos returns the declaration position of the expression's root
// object, or the expression's own position when no object roots it
// (composite literals, call results — treated as born where written).
func (rt *rooter) rootPos(e ast.Expr) token.Pos {
	if obj := rt.rootObj(e); obj != nil {
		return obj.Pos()
	}
	return e.Pos()
}

func isPackageLevel(obj types.Object) bool {
	return obj.Parent() != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}
