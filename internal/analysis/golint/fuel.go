package golint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/golint/load"
)

// Fuel completeness.
//
// PR 3's deterministic timeouts only cover a search loop if that loop
// spends from the fuel meter; an uncharged loop can hang the solver
// with no deadline, silently reopening the class of bug the hang-defect
// catalogue exists to surface. This pass proves the charging invariant
// at lint time: in the fuel-scoped packages, every loop whose bound is
// not syntactically evident must reach (*fuel.Meter).Spend or Drain —
// in its own body, or transitively through the functions the body
// calls, resolved over the program call graph (interface calls expand
// to every declared implementation).
//
// "Syntactically evident" bounds are: a range over anything that is not
// a channel or an iterator function (slices, arrays, maps, strings,
// integers all have finite iteration), and a three-clause
// for-init-cond-post loop (the repository's counted-loop idiom).
// Everything else — `for {}`, `for cond {}`, ranges over channels or
// func iterators — is potentially unbounded and must charge.
//
// Loops that are genuinely bounded for reasons the syntax cannot show
// (draining a finite heap, walking a strictly shrinking structure)
// carry an explicit `//golint:allow fuel-charge — <reason>` directive;
// the reason is load-bearing, and a directive that stops matching a
// finding is itself reported as stale.

// fuelScopeDirs are the module-relative package prefixes the fuel rule
// applies to: everything that runs inside a solve.
var fuelScopeDirs = []string{
	"internal/solver", "internal/regex", "internal/eval",
}

// lintFuel reports potentially unbounded loops in fuel-scoped packages
// that cannot reach a fuel charge.
func lintFuel(prog *load.Program, cg *load.CallGraph, pkgs []*load.Package) []Finding {
	spenders := cg.Closure(func(fn *types.Func, decl *load.FuncDecl) bool {
		return containsFuelCharge(prog, decl)
	})

	var out []Finding
	for _, pkg := range pkgs {
		if !inFuelScope(prog.Module, pkg.Path) {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					kind, unbounded := loopUnbounded(pkg, n)
					if !unbounded {
						return true
					}
					if loopCharges(prog, cg, pkg, n, spenders) {
						return true
					}
					out = append(out, Finding{
						File: file.Name, Line: prog.Position(n.Pos()).Line,
						Rule: RuleFuel,
						Message: kind + " never reaches fuel.Meter.Spend: the deterministic timeout cannot bound it" +
							" (charge fuel in the loop, or annotate '//golint:allow fuel-charge — <reason>')",
					})
					return true
				})
			}
		}
	}
	return out
}

func inFuelScope(module, pkgPath string) bool {
	rel := strings.TrimPrefix(pkgPath, module+"/")
	for _, dir := range fuelScopeDirs {
		if rel == dir || strings.HasPrefix(rel, dir+"/") {
			return true
		}
	}
	return false
}

// loopUnbounded classifies a loop statement. It returns a description
// of the unbounded shape and whether the loop needs a fuel charge.
func loopUnbounded(pkg *load.Package, n ast.Node) (kind string, unbounded bool) {
	switch s := n.(type) {
	case *ast.ForStmt:
		if s.Cond == nil {
			return "unconditional for-loop", true
		}
		if s.Init == nil || s.Post == nil {
			return "condition-only for-loop", true
		}
		return "", false
	case *ast.RangeStmt:
		tv, ok := pkg.Info.Types[s.X]
		if !ok || tv.Type == nil {
			return "", false
		}
		switch tv.Type.Underlying().(type) {
		case *types.Chan:
			return "range over a channel", true
		case *types.Signature:
			return "range over an iterator function", true
		}
		return "", false
	}
	return "", false
}

// loopCharges reports whether the loop's condition, post statement, or
// body reaches a fuel charge: a direct Spend/Drain call, or a call to
// any function from whose body a charge is reachable.
func loopCharges(prog *load.Program, cg *load.CallGraph, pkg *load.Package, loop ast.Node, spenders map[*types.Func]bool) bool {
	var regions []ast.Node
	switch s := loop.(type) {
	case *ast.ForStmt:
		if s.Cond != nil {
			regions = append(regions, s.Cond)
		}
		if s.Post != nil {
			regions = append(regions, s.Post)
		}
		regions = append(regions, s.Body)
	case *ast.RangeStmt:
		regions = append(regions, s.Body)
	}
	charged := false
	for _, region := range regions {
		ast.Inspect(region, func(n ast.Node) bool {
			if charged {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := load.Callee(pkg, call)
			if callee == nil {
				return true
			}
			if isFuelCharge(prog, callee) || spenders[callee] {
				charged = true
				return false
			}
			for _, impl := range cg.Implementations(callee) {
				if spenders[impl] {
					charged = true
					return false
				}
			}
			return true
		})
	}
	return charged
}

// isFuelCharge reports whether the callee is (*fuel.Meter).Spend or
// (*fuel.Meter).Drain.
func isFuelCharge(prog *load.Program, callee *types.Func) bool {
	if callee.Pkg() == nil || callee.Pkg().Path() != prog.Module+"/internal/fuel" {
		return false
	}
	sig, _ := callee.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	return callee.Name() == "Spend" || callee.Name() == "Drain"
}

// containsFuelCharge reports whether a declared function's body makes a
// direct fuel charge.
func containsFuelCharge(prog *load.Program, decl *load.FuncDecl) bool {
	found := false
	ast.Inspect(decl.Decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callee := load.Callee(decl.Pkg, call); callee != nil && isFuelCharge(prog, callee) {
			found = true
			return false
		}
		return true
	})
	return found
}
