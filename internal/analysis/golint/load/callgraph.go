package load

import (
	"go/ast"
	"go/types"
	"sort"
)

// CallGraph is a static call graph over a Program. Nodes are the
// *types.Func objects of functions and methods declared in the loaded
// packages; edges are resolved call sites. Dynamic dispatch through an
// interface is handled by class-hierarchy analysis: a call to an
// interface method gets an edge to every declared concrete method that
// implements it, which over-approximates the possible callees — exactly
// the right direction for "does this loop reach a fuel charge" and
// "can this call render output" queries.
//
// Calls through plain function values are not resolved (the repository
// style passes funcs as small strategy callbacks, none of which spend
// fuel or render); a pass that needs to be conservative about them can
// inspect call sites itself.
type CallGraph struct {
	prog *Program

	// Decls maps every declared function/method to its syntax and the
	// package it lives in.
	Decls map[*types.Func]*FuncDecl

	calls map[*types.Func][]*types.Func // resolved static edges (deduplicated)
	impls map[*types.Func][]*types.Func // interface method -> declared implementations
}

// FuncDecl pairs a function's syntax with its enclosing package.
type FuncDecl struct {
	Pkg  *Package
	File File
	Decl *ast.FuncDecl
}

// BuildCallGraph constructs the call graph over every package currently
// loaded in the program (overlays included).
func BuildCallGraph(prog *Program) *CallGraph {
	g := &CallGraph{
		prog:  prog,
		Decls: map[*types.Func]*FuncDecl{},
		calls: map[*types.Func][]*types.Func{},
	}
	for _, pkg := range prog.Packages() {
		for _, file := range pkg.Files {
			for _, decl := range file.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.Decls[obj] = &FuncDecl{Pkg: pkg, File: file, Decl: fd}
			}
		}
	}
	impls := g.buildImplIndex()
	g.impls = impls
	// Synthetic edges from each interface method to its implementations
	// keep Closure queries correct when the queried callee is the
	// interface method itself.
	for m, targets := range impls {
		g.calls[m] = append(g.calls[m], targets...)
	}
	for obj, fd := range g.Decls {
		seen := map[*types.Func]bool{}
		ast.Inspect(fd.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := Callee(fd.Pkg, call)
			if callee == nil {
				return true
			}
			for _, target := range g.expand(callee, impls) {
				if !seen[target] {
					seen[target] = true
					g.calls[obj] = append(g.calls[obj], target)
				}
			}
			return true
		})
		sort.Slice(g.calls[obj], func(i, j int) bool {
			return g.calls[obj][i].FullName() < g.calls[obj][j].FullName()
		})
	}
	return g
}

// Callee resolves the static callee of a call expression: a declared
// function, a method (concrete or interface), or nil for calls through
// function values, conversions, and builtins.
func Callee(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Qualified identifier: pkg.Func.
		if f, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	case *ast.IndexExpr:
		// Generic instantiation: f[T](...).
		if id, ok := fun.X.(*ast.Ident); ok {
			if f, ok := pkg.Info.Uses[id].(*types.Func); ok {
				return f
			}
		}
	}
	return nil
}

// expand maps an interface method to its concrete implementations (plus
// the interface method itself, so callers can still match on it); a
// concrete callee expands to itself.
func (g *CallGraph) expand(callee *types.Func, impls map[*types.Func][]*types.Func) []*types.Func {
	if targets, ok := impls[callee]; ok {
		out := make([]*types.Func, 0, len(targets)+1)
		out = append(out, targets...)
		return append(out, callee)
	}
	return []*types.Func{callee}
}

// buildImplIndex maps every interface method reachable from the loaded
// packages' declared types to the concrete declared methods that
// implement it.
func (g *CallGraph) buildImplIndex() map[*types.Func][]*types.Func {
	// Collect the declared (non-interface) named types.
	var concrete []types.Type
	var ifaces []*types.Named
	for _, pkg := range g.prog.Packages() {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if types.IsInterface(named) {
				ifaces = append(ifaces, named)
			} else {
				concrete = append(concrete, named, types.NewPointer(named))
			}
		}
	}
	impls := map[*types.Func][]*types.Func{}
	for _, named := range ifaces {
		iface, ok := named.Underlying().(*types.Interface)
		if !ok {
			continue
		}
		for i := 0; i < iface.NumMethods(); i++ {
			m := iface.Method(i)
			for _, t := range concrete {
				if !types.Implements(t, iface) {
					continue
				}
				obj, _, _ := types.LookupFieldOrMethod(t, true, m.Pkg(), m.Name())
				if f, ok := obj.(*types.Func); ok {
					if _, declared := g.Decls[f]; declared {
						impls[m] = appendUnique(impls[m], f)
					}
				}
			}
		}
	}
	for m := range impls {
		sort.Slice(impls[m], func(i, j int) bool {
			return impls[m][i].FullName() < impls[m][j].FullName()
		})
	}
	return impls
}

func appendUnique(fs []*types.Func, f *types.Func) []*types.Func {
	for _, have := range fs {
		if have == f {
			return fs
		}
	}
	return append(fs, f)
}

// Closure returns the set of declared functions from which a function
// satisfying base is reachable through call edges — i.e. every function
// that either satisfies base itself or (transitively) calls one that
// does. base is consulted once per declared function.
func (g *CallGraph) Closure(base func(fn *types.Func, decl *FuncDecl) bool) map[*types.Func]bool {
	in := map[*types.Func]bool{}
	for fn, decl := range g.Decls {
		if base(fn, decl) {
			in[fn] = true
		}
	}
	// Reverse edges, then flood backwards from the base set.
	rev := map[*types.Func][]*types.Func{}
	for caller, callees := range g.calls {
		for _, callee := range callees {
			rev[callee] = append(rev[callee], caller)
		}
	}
	queue := make([]*types.Func, 0, len(in))
	for fn := range in {
		queue = append(queue, fn)
	}
	sort.Slice(queue, func(i, j int) bool { return queue[i].FullName() < queue[j].FullName() })
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, caller := range rev[fn] {
			if !in[caller] {
				in[caller] = true
				queue = append(queue, caller)
			}
		}
	}
	return in
}

// Calls returns fn's resolved callees (deduplicated, sorted by full
// name; interface calls appear as both the interface method and its
// implementations).
func (g *CallGraph) Calls(fn *types.Func) []*types.Func { return g.calls[fn] }

// Implementations returns the declared concrete methods implementing an
// interface method (empty for concrete callees).
func (g *CallGraph) Implementations(m *types.Func) []*types.Func { return g.impls[m] }
