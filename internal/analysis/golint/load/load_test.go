package load

import (
	"go/types"
	"os"
	"path/filepath"
	"testing"
)

// writeTestModule lays out a small on-disk module:
//
//	testmod
//	├── go.mod
//	├── a            (calls into b)
//	├── b            (leaf + interface with one implementation)
//	└── internal/fuel (Meter.Spend stand-in, for fuel-scope tests)
func writeTestModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module testmod\n\ngo 1.24\n",
		"a/a.go": `package a

import "testmod/b"

func Top() int { return Mid() }

func Mid() int { return b.Leaf() }

func UseIface(s b.Stepper) { s.Step() }
`,
		"b/b.go": `package b

func Leaf() int { return 1 }

type Stepper interface{ Step() }

type Walker struct{}

func (Walker) Step() {}
`,
		"internal/fuel/fuel.go": `package fuel

type Meter struct{ n int }

func (m *Meter) Spend(n int) bool { m.n += n; return true }

func (m *Meter) Drain() { m.n = 1 << 30 }
`,
	}
	for name, src := range files {
		p := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func lookupFunc(t *testing.T, prog *Program, pkgPath, name string) *types.Func {
	t.Helper()
	pkg := prog.Lookup(pkgPath)
	if pkg == nil {
		t.Fatalf("package %s not loaded", pkgPath)
	}
	obj := pkg.Types.Scope().Lookup(name)
	fn, ok := obj.(*types.Func)
	if !ok {
		t.Fatalf("%s.%s is %T, want *types.Func", pkgPath, name, obj)
	}
	return fn
}

func TestLoadModule(t *testing.T) {
	prog, err := Load(writeTestModule(t))
	if err != nil {
		t.Fatal(err)
	}
	if prog.Module != "testmod" {
		t.Fatalf("Module = %q, want testmod", prog.Module)
	}
	var paths []string
	for _, pkg := range prog.Packages() {
		paths = append(paths, pkg.Path)
	}
	want := map[string]bool{"testmod/a": true, "testmod/b": true, "testmod/internal/fuel": true}
	for _, p := range paths {
		delete(want, p)
	}
	if len(want) != 0 {
		t.Fatalf("missing packages %v in %v", want, paths)
	}
	// Dependencies come before dependents.
	pos := map[string]int{}
	for i, p := range paths {
		pos[p] = i
	}
	if pos["testmod/b"] > pos["testmod/a"] {
		t.Fatalf("topological order violated: %v", paths)
	}
}

func TestLoadRejectsMissingModule(t *testing.T) {
	if _, err := Load(t.TempDir()); err == nil {
		t.Fatal("Load of a directory without go.mod should fail")
	}
}

func TestCallGraphTransitiveEdges(t *testing.T) {
	prog, err := Load(writeTestModule(t))
	if err != nil {
		t.Fatal(err)
	}
	cg := BuildCallGraph(prog)
	top := lookupFunc(t, prog, "testmod/a", "Top")
	mid := lookupFunc(t, prog, "testmod/a", "Mid")
	leaf := lookupFunc(t, prog, "testmod/b", "Leaf")

	calls := map[*types.Func]bool{}
	for _, c := range cg.Calls(top) {
		calls[c] = true
	}
	if !calls[mid] {
		t.Fatal("Top should call Mid")
	}
	closure := cg.Closure(func(fn *types.Func, decl *FuncDecl) bool { return fn == leaf })
	for _, fn := range []*types.Func{leaf, mid, top} {
		if !closure[fn] {
			t.Fatalf("closure of Leaf should contain %s", fn.FullName())
		}
	}
}

func TestCallGraphInterfaceDispatch(t *testing.T) {
	prog, err := Load(writeTestModule(t))
	if err != nil {
		t.Fatal(err)
	}
	cg := BuildCallGraph(prog)
	use := lookupFunc(t, prog, "testmod/a", "UseIface")

	// The call through the Stepper interface must expand to Walker.Step.
	found := false
	for _, c := range cg.Calls(use) {
		if c.Name() == "Step" && c.Type().(*types.Signature).Recv() != nil &&
			!types.IsInterface(c.Type().(*types.Signature).Recv().Type()) {
			found = true
		}
	}
	if !found {
		t.Fatal("UseIface should have a CHA edge to the concrete Walker.Step")
	}
	// And the backward closure from the concrete method reaches the caller.
	closure := cg.Closure(func(fn *types.Func, decl *FuncDecl) bool {
		return fn.Name() == "Step" && decl != nil
	})
	if !closure[use] {
		t.Fatal("closure of Step implementations should contain UseIface")
	}
}

func TestAddOverlayReplaces(t *testing.T) {
	prog, err := Load(writeTestModule(t))
	if err != nil {
		t.Fatal(err)
	}
	const ip = "testmod/overlay"
	if _, err := prog.AddOverlay(ip, map[string]string{"overlay.go": "package overlay\n\nfunc V() int { return 1 }\n"}); err != nil {
		t.Fatal(err)
	}
	pkg, err := prog.AddOverlay(ip, map[string]string{"overlay.go": "package overlay\n\nfunc W() int { return 2 }\n"})
	if err != nil {
		t.Fatal(err)
	}
	if !pkg.Overlay {
		t.Fatal("overlay package not marked Overlay")
	}
	if prog.Lookup(ip) != pkg {
		t.Fatal("second AddOverlay did not replace the first")
	}
	if pkg.Types.Scope().Lookup("W") == nil || pkg.Types.Scope().Lookup("V") != nil {
		t.Fatal("replaced overlay should expose W and not V")
	}
	// The package list must not contain duplicates.
	count := 0
	for _, p := range prog.Packages() {
		if p.Path == ip {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("overlay path appears %d times in Packages", count)
	}
}

func TestOverlayTypeError(t *testing.T) {
	prog, err := Load(writeTestModule(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.AddOverlay("testmod/bad", map[string]string{"bad.go": "package bad\n\nfunc f() { undefined() }\n"}); err == nil {
		t.Fatal("type error in overlay should be reported")
	}
}
