// Package load is the typed front end of the repository's Go linter:
// it parses every package under a module root, type-checks them with
// go/types (standard-library dependencies are type-checked from source,
// so the loader needs no build cache and no external tooling), and
// exposes the result as a Program the analysis passes consume.
//
// The loader exists because the determinism and fuel rules in
// internal/analysis/golint are interprocedural: whether a loop charges
// fuel, or whether map iteration order reaches rendered output, depends
// on what the functions *called* from that code do, possibly across
// package boundaries. A purely syntactic linter cannot answer either
// question; a typed Program plus the CallGraph in this package can.
package load

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// File is one parsed source file of a loaded package.
type File struct {
	// Name is the file's slash-separated path relative to the module
	// root (for overlay packages, the synthetic name given by the
	// caller). It is the path findings report.
	Name string
	AST  *ast.File
}

// Package is one type-checked package.
type Package struct {
	// Path is the import path ("repro/internal/solver").
	Path  string
	Files []File
	Types *types.Package
	Info  *types.Info
	// Overlay marks packages added through AddOverlay (test snippets)
	// rather than discovered under the module root.
	Overlay bool
}

// Program is a set of type-checked packages sharing one FileSet.
type Program struct {
	Fset   *token.FileSet
	Module string // module path from go.mod

	pkgs  map[string]*Package // by import path
	order []string            // topological (dependencies first)
	std   types.Importer      // source importer for non-module imports
}

// Packages returns the loaded packages in deterministic (topological,
// then insertion) order.
func (p *Program) Packages() []*Package {
	out := make([]*Package, 0, len(p.order))
	for _, path := range p.order {
		out = append(out, p.pkgs[path])
	}
	return out
}

// Lookup returns the package with the given import path, or nil.
func (p *Program) Lookup(path string) *Package { return p.pkgs[path] }

// Position resolves a token position against the program's FileSet.
func (p *Program) Position(pos token.Pos) token.Position { return p.Fset.Position(pos) }

// Load parses and type-checks every non-test package under root
// (skipping .git and testdata directories). root must contain a go.mod
// naming the module.
func Load(root string) (*Program, error) {
	modData, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	module := modulePath(string(modData))
	if module == "" {
		return nil, fmt.Errorf("load: no module line in %s/go.mod", root)
	}

	fset := token.NewFileSet()
	prog := &Program{
		Fset:   fset,
		Module: module,
		pkgs:   map[string]*Package{},
		std:    importer.ForCompiler(fset, "source", nil),
	}

	// Discover directories holding non-test .go files.
	byDir := map[string][]string{} // rel dir -> sorted file names
	err = filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" || strings.HasPrefix(name, ".") && name != "." {
				if p != root {
					return filepath.SkipDir
				}
			}
			return nil
		}
		if !strings.HasSuffix(p, ".go") || strings.HasSuffix(p, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		dir := path.Dir(rel)
		byDir[dir] = append(byDir[dir], rel)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}

	// Parse every file, recording per-package import dependencies on
	// other module packages.
	type rawPkg struct {
		importPath string
		files      []File
		deps       []string
	}
	raw := map[string]*rawPkg{}
	dirs := make([]string, 0, len(byDir))
	for dir := range byDir {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		importPath := module
		if dir != "." {
			importPath = module + "/" + dir
		}
		rp := &rawPkg{importPath: importPath}
		files := byDir[dir]
		sort.Strings(files)
		for _, rel := range files {
			f, err := parser.ParseFile(fset, filepath.Join(root, filepath.FromSlash(rel)), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("load: %w", err)
			}
			rp.files = append(rp.files, File{Name: rel, AST: f})
			for _, imp := range f.Imports {
				ip, err := strconv.Unquote(imp.Path.Value)
				if err == nil && (ip == module || strings.HasPrefix(ip, module+"/")) {
					rp.deps = append(rp.deps, ip)
				}
			}
		}
		raw[importPath] = rp
	}

	// Type-check in dependency order.
	var visit func(string, map[string]int) error
	visit = func(ip string, state map[string]int) error {
		switch state[ip] {
		case 2:
			return nil
		case 1:
			return fmt.Errorf("load: import cycle through %s", ip)
		}
		state[ip] = 1
		rp := raw[ip]
		for _, dep := range rp.deps {
			if _, ok := raw[dep]; !ok {
				return fmt.Errorf("load: %s imports %s, which has no source under the root", ip, dep)
			}
			if err := visit(dep, state); err != nil {
				return err
			}
		}
		pkg, err := prog.check(ip, rp.files)
		if err != nil {
			return err
		}
		prog.pkgs[ip] = pkg
		prog.order = append(prog.order, ip)
		state[ip] = 2
		return nil
	}
	state := map[string]int{}
	paths := make([]string, 0, len(raw))
	for ip := range raw {
		paths = append(paths, ip)
	}
	sort.Strings(paths)
	for _, ip := range paths {
		if err := visit(ip, state); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// AddOverlay type-checks a synthetic package (test snippets) against
// the already-loaded program. Files maps a report name to source text.
// Re-adding an import path replaces the previous overlay.
func (p *Program) AddOverlay(importPath string, files map[string]string) (*Package, error) {
	var parsed []File
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(p.Fset, name, files[name], parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("overlay: %w", err)
		}
		parsed = append(parsed, File{Name: name, AST: f})
	}
	pkg, err := p.check(importPath, parsed)
	if err != nil {
		return nil, err
	}
	pkg.Overlay = true
	if _, ok := p.pkgs[importPath]; !ok {
		p.order = append(p.order, importPath)
	}
	p.pkgs[importPath] = pkg
	return pkg, nil
}

// check type-checks one package's files.
func (p *Program) check(importPath string, files []File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: &chainImporter{prog: p}}
	asts := make([]*ast.File, len(files))
	for i, f := range files {
		asts[i] = f.AST
	}
	tpkg, err := conf.Check(importPath, p.Fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	return &Package{Path: importPath, Files: files, Types: tpkg, Info: info}, nil
}

// chainImporter resolves module-internal imports from the program and
// everything else (standard library) through the source importer.
type chainImporter struct{ prog *Program }

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := c.prog.pkgs[path]; ok {
		return pkg.Types, nil
	}
	return c.prog.std.Import(path)
}

// modulePath extracts the module path from go.mod text.
func modulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}
