package golint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis/golint/load"
)

// The snippet tests type-check known-good and known-bad Go fragments as
// overlay packages against one small on-disk module (so the fuel stand-in
// and the standard library are loaded exactly once per test binary) and
// assert the precise finding set each fragment produces.

var (
	progOnce sync.Once
	progVal  *load.Program
	progErr  error
	snipSeq  int
)

func testProgram(t *testing.T) *load.Program {
	t.Helper()
	progOnce.Do(func() {
		root, err := os.MkdirTemp("", "golint-test-module")
		if err != nil {
			progErr = err
			return
		}
		files := map[string]string{
			"go.mod": "module testmod\n\ngo 1.24\n",
			"internal/fuel/fuel.go": `package fuel

type Meter struct{ n int }

func (m *Meter) Spend(n int) bool { m.n += n; return true }

func (m *Meter) Drain() { m.n = 1 << 30 }
`,
		}
		for name, src := range files {
			p := filepath.Join(root, filepath.FromSlash(name))
			if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
				progErr = err
				return
			}
			if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
				progErr = err
				return
			}
		}
		progVal, progErr = load.Load(root)
	})
	if progErr != nil {
		t.Fatal(progErr)
	}
	return progVal
}

// lintSnippet type-checks src as a fresh overlay package under the given
// module-relative directory (so fuel-scope rules see the right path) and
// lints just that package against the whole-program call graph.
func lintSnippet(t *testing.T, dir, src string) []Finding {
	t.Helper()
	prog := testProgram(t)
	snipSeq++
	ip := fmt.Sprintf("testmod/%s/snip%03d", dir, snipSeq)
	name := fmt.Sprintf("%s/snip%03d/snip.go", dir, snipSeq)
	pkg, err := prog.AddOverlay(ip, map[string]string{name: src})
	if err != nil {
		t.Fatalf("overlay: %v\n%s", err, src)
	}
	return LintProgram(prog, []*load.Package{pkg})
}

func assertFindings(t *testing.T, got []Finding, wantRules ...string) {
	t.Helper()
	var gotRules []string
	for _, f := range got {
		gotRules = append(gotRules, f.Rule)
	}
	if len(got) != len(wantRules) {
		t.Fatalf("got %d findings %v, want rules %v:\n%s", len(got), gotRules, wantRules, findingLines(got))
	}
	for i, f := range got {
		if f.Rule != wantRules[i] {
			t.Fatalf("finding %d has rule %s, want %s:\n%s", i, f.Rule, wantRules[i], findingLines(got))
		}
	}
}

func findingLines(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString("  " + f.String() + "\n")
	}
	return b.String()
}

func TestFindingString(t *testing.T) {
	f := Finding{File: "a/b.go", Line: 7, Rule: RuleFuel, Message: "m"}
	if got, want := f.String(), "a/b.go:7: fuel-charge: m"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// --- global-rand / wall-clock ---

func TestGlobalRandFlagged(t *testing.T) {
	got := lintSnippet(t, "internal/gen", `package snip

import "math/rand"

func Pick() int { return rand.Intn(10) }
`)
	assertFindings(t, got, RuleGlobalRand)
}

func TestSeededRandAllowed(t *testing.T) {
	got := lintSnippet(t, "internal/gen", `package snip

import "math/rand"

func Pick(r *rand.Rand) int { return r.Intn(10) }

func New() *rand.Rand { return rand.New(rand.NewSource(1)) }
`)
	assertFindings(t, got)
}

func TestWallClockFlagged(t *testing.T) {
	got := lintSnippet(t, "internal/gen", `package snip

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`)
	assertFindings(t, got, RuleWallClock)
}

func TestTimeValueConstructorsAllowed(t *testing.T) {
	got := lintSnippet(t, "internal/gen", `package snip

import "time"

func Fixed() time.Time { return time.Unix(0, 0) }

func Dur() time.Duration { return 3 * time.Second }
`)
	assertFindings(t, got)
}

// --- allow directives ---

func TestDirectiveSuppresses(t *testing.T) {
	got := lintSnippet(t, "internal/gen", `package snip

import "time"

func Stamp() int64 {
	//golint:allow wall-clock — report timestamp, nothing branches on it
	return time.Now().UnixNano()
}
`)
	assertFindings(t, got)
}

func TestDirectiveDoubleDashSeparator(t *testing.T) {
	got := lintSnippet(t, "internal/gen", `package snip

import "time"

func Stamp() int64 {
	//golint:allow wall-clock -- report timestamp, nothing branches on it
	return time.Now().UnixNano()
}
`)
	assertFindings(t, got)
}

func TestDirectiveWithoutReasonDoesNotSuppress(t *testing.T) {
	got := lintSnippet(t, "internal/gen", `package snip

import "time"

func Stamp() int64 {
	//golint:allow wall-clock
	return time.Now().UnixNano()
}
`)
	// The original finding survives AND the bare directive is a finding.
	assertFindings(t, got, RuleAllowDirective, RuleWallClock)
}

func TestStaleDirectiveIsExactlyOneFinding(t *testing.T) {
	got := lintSnippet(t, "internal/gen", `package snip

func Fine() int {
	//golint:allow wall-clock — there used to be a time.Now here
	return 42
}
`)
	assertFindings(t, got, RuleAllowDirective)
	if !strings.Contains(got[0].Message, "stale") {
		t.Fatalf("want stale-directive message, got %q", got[0].Message)
	}
}

func TestDirectiveUnknownRule(t *testing.T) {
	got := lintSnippet(t, "internal/gen", `package snip

func Fine() int {
	//golint:allow no-such-rule — misremembered name
	return 42
}
`)
	assertFindings(t, got, RuleAllowDirective)
	if !strings.Contains(got[0].Message, "unknown rule") {
		t.Fatalf("want unknown-rule message, got %q", got[0].Message)
	}
}

// --- map-range-render ---

func TestMapRangeDirectPrint(t *testing.T) {
	got := lintSnippet(t, "internal/gen", `package snip

import "fmt"

func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
`)
	assertFindings(t, got, RuleMapRangeRender)
}

func TestMapRangeUnsortedAppend(t *testing.T) {
	got := lintSnippet(t, "internal/gen", `package snip

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`)
	assertFindings(t, got, RuleMapRangeRender)
}

func TestMapRangeSortedAppendClean(t *testing.T) {
	got := lintSnippet(t, "internal/gen", `package snip

import "sort"

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
`)
	assertFindings(t, got)
}

func TestMapRangeLocalSorterHelperClean(t *testing.T) {
	// The sort happens through a module-local helper; the sorter
	// fixpoint must classify it, or every such helper would need the
	// stdlib call inlined at each use.
	got := lintSnippet(t, "internal/gen", `package snip

import "slices"

func sortStrings(ss []string) { slices.Sort(ss) }

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}
`)
	assertFindings(t, got)
}

func TestMapRangeWriterLeakThroughTwoHops(t *testing.T) {
	// Iteration order reaches the builder only through two call hops:
	// range body -> emit -> emitRaw -> w.WriteString. Both hops must be
	// classified as writer-renderers for the leak to be visible.
	got := lintSnippet(t, "internal/gen", `package snip

import "strings"

func emitRaw(w *strings.Builder, s string) { w.WriteString(s) }

func emit(w *strings.Builder, s string) { emitRaw(w, s) }

func Render(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		emit(&b, k)
	}
	return b.String()
}
`)
	assertFindings(t, got, RuleMapRangeRender)
}

func TestMapRangeSprintLikeHelperClean(t *testing.T) {
	// A helper that renders into its own local builder and returns the
	// string is pure: calling it per-key does not leak iteration order
	// (the results still have to land somewhere order-sensitive, which
	// is what the append rule watches).
	got := lintSnippet(t, "internal/gen", `package snip

import (
	"sort"
	"strings"
)

func quote(s string) string {
	var b strings.Builder
	b.WriteString("'")
	b.WriteString(s)
	b.WriteString("'")
	return b.String()
}

func Quoted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, quote(k))
	}
	sort.Strings(out)
	return out
}
`)
	assertFindings(t, got)
}

func TestMapRangeWriteIntoLoopLocalClean(t *testing.T) {
	// A builder born inside the iteration cannot accumulate order
	// across iterations.
	got := lintSnippet(t, "internal/gen", `package snip

import "strings"

func Each(m map[string]int, sink func(string)) {
	for k := range m {
		var b strings.Builder
		b.WriteString(k)
		sink(b.String())
	}
}
`)
	assertFindings(t, got)
}

// --- fuel-charge ---

func TestFuelUnchargedLoopIsExactlyOneFinding(t *testing.T) {
	got := lintSnippet(t, "internal/solver", `package snip

func Search(done func() bool) int {
	steps := 0
	for {
		if done() {
			return steps
		}
		steps++
	}
}
`)
	assertFindings(t, got, RuleFuel)
}

func TestFuelDirectChargeClean(t *testing.T) {
	got := lintSnippet(t, "internal/solver", `package snip

import "testmod/internal/fuel"

func Search(m *fuel.Meter, done func() bool) int {
	steps := 0
	for {
		if !m.Spend(1) || done() {
			return steps
		}
		steps++
	}
}
`)
	assertFindings(t, got)
}

func TestFuelTransitiveChargeClean(t *testing.T) {
	// The charge is two call hops away from the loop.
	got := lintSnippet(t, "internal/solver", `package snip

import "testmod/internal/fuel"

func charge(m *fuel.Meter) bool { return m.Spend(1) }

func step(m *fuel.Meter) bool { return charge(m) }

func Search(m *fuel.Meter, done func() bool) int {
	steps := 0
	for {
		if !step(m) || done() {
			return steps
		}
		steps++
	}
}
`)
	assertFindings(t, got)
}

func TestFuelInterfaceChargeClean(t *testing.T) {
	// The loop charges through an interface method; CHA expansion must
	// find the spending implementation.
	got := lintSnippet(t, "internal/solver", `package snip

import "testmod/internal/fuel"

type Stepper interface{ Step() bool }

type metered struct{ m *fuel.Meter }

func (s metered) Step() bool { return s.m.Spend(1) }

func Search(it Stepper, done func() bool) int {
	steps := 0
	for {
		if !it.Step() || done() {
			return steps
		}
		steps++
	}
}
`)
	assertFindings(t, got)
}

func TestFuelRangeOverChannelFlagged(t *testing.T) {
	got := lintSnippet(t, "internal/regex", `package snip

func Drain(ch chan int) int {
	total := 0
	for v := range ch {
		total += v
	}
	return total
}
`)
	assertFindings(t, got, RuleFuel)
}

func TestFuelCountedLoopsClean(t *testing.T) {
	got := lintSnippet(t, "internal/solver", `package snip

func Sum(xs []int, m map[string]int) int {
	total := 0
	for i := 0; i < 10; i++ {
		total += i
	}
	for _, x := range xs {
		total += x
	}
	for _, v := range m {
		total += v
	}
	return total
}
`)
	assertFindings(t, got)
}

func TestFuelOutOfScopePackageClean(t *testing.T) {
	// The same uncharged loop outside the solver/regex/eval scope is
	// not a fuel finding (generator code does not run inside a solve).
	got := lintSnippet(t, "internal/gen", `package snip

func Spin(done func() bool) {
	for {
		if done() {
			return
		}
	}
}
`)
	assertFindings(t, got)
}

func TestFuelDirectiveWithReasonClean(t *testing.T) {
	got := lintSnippet(t, "internal/solver", `package snip

func SiftDown(heap []int, i int) {
	//golint:allow fuel-charge — the index at least doubles every iteration, bounded by the heap size
	for {
		if 2*i+1 >= len(heap) {
			return
		}
		i = 2*i + 1
	}
}
`)
	assertFindings(t, got)
}

// --- whole-repository gate ---

// TestRepositoryClean is the enforcement point for the invariant the
// linter exists to prove: the real module has no uncharged solver
// loops, no ambient nondeterminism, and no stale or unexplained allow
// directives.
func TestRepositoryClean(t *testing.T) {
	findings, err := LintDir("../../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("repository has %d lint findings:\n%s", len(findings), findingLines(findings))
	}
}
