package golint

import (
	"strings"
	"testing"
)

// TestRepoIsDeterministic is the enforcement point: the whole
// repository must lint clean. A finding here means someone introduced
// ambient nondeterminism into a reproducibility-critical path.
func TestRepoIsDeterministic(t *testing.T) {
	findings, err := LintDir("../../..")
	if err != nil {
		t.Fatalf("LintDir: %v", err)
	}
	for _, f := range findings {
		t.Errorf("determinism violation: %s", f)
	}
}

func lint(t *testing.T, filename, src string) []Finding {
	t.Helper()
	fs, err := LintSource(filename, []byte(src))
	if err != nil {
		t.Fatalf("LintSource(%s): %v", filename, err)
	}
	return fs
}

func wantRule(t *testing.T, fs []Finding, rule string, n int) {
	t.Helper()
	got := 0
	for _, f := range fs {
		if f.Rule == rule {
			got++
		}
	}
	if got != n {
		t.Errorf("want %d %s findings, got %d: %v", n, rule, got, fs)
	}
}

func TestGlobalRandRejected(t *testing.T) {
	fs := lint(t, "internal/gen/x.go", `package gen
import "math/rand"
func f() int { return rand.Intn(3) }
func g() { rand.Shuffle(2, func(i, j int) {}) }
`)
	wantRule(t, fs, RuleGlobalRand, 2)
}

func TestGlobalRandAliasResolved(t *testing.T) {
	fs := lint(t, "internal/harness/x.go", `package harness
import mr "math/rand"
func f() float64 { return mr.Float64() }
`)
	wantRule(t, fs, RuleGlobalRand, 1)
}

func TestSeededRandAllowed(t *testing.T) {
	fs := lint(t, "internal/gen/x.go", `package gen
import "math/rand"
func f() int {
	rng := rand.New(rand.NewSource(42))
	return rng.Intn(3)
}
`)
	wantRule(t, fs, RuleGlobalRand, 0)
}

func TestOtherRandPackageIgnored(t *testing.T) {
	fs := lint(t, "internal/gen/x.go", `package gen
import "crypto/rand"
func f() { var b [4]byte; rand.Read(b[:]) }
`)
	wantRule(t, fs, RuleGlobalRand, 0)
}

func TestWallClockRejectedInSolverPath(t *testing.T) {
	fs := lint(t, "internal/core/x.go", `package core
import "time"
func f() time.Time { return time.Now() }
`)
	wantRule(t, fs, RuleWallClock, 1)
}

// TestWallClockRejectedEverywhereOutsideAllowlist pins the rule's
// repo-wide scope: a new time.Now (or timer/sleep) anywhere but the
// watchdog and bench allowlist must fail the lint, including paths that
// were historically exempt (harness, cmd, reduce, coverage).
func TestWallClockRejectedEverywhereOutsideAllowlist(t *testing.T) {
	for _, file := range []string{
		"internal/harness/x.go",
		"internal/reduce/x.go",
		"internal/coverage/x.go",
		"internal/analysis/x.go",
		"cmd/yinyang/main.go",
	} {
		fs := lint(t, file, `package p
import "time"
func f() time.Time { return time.Now() }
`)
		wantRule(t, fs, RuleWallClock, 1)
	}
}

func TestWallClockTimerAndSleepRejected(t *testing.T) {
	fs := lint(t, "internal/harness/x.go", `package harness
import "time"
func f() {
	time.Sleep(time.Millisecond)
	t := time.NewTimer(time.Second)
	_ = t
	<-time.After(time.Second)
	time.AfterFunc(time.Second, func() {})
	tk := time.NewTicker(time.Second)
	_ = tk
	_ = time.Since(time.Time{})
	_ = time.Until(time.Time{})
}
`)
	wantRule(t, fs, RuleWallClock, 7)
}

func TestWallClockAllowedInWatchdogAndBench(t *testing.T) {
	for _, file := range []string{
		"internal/watchdog/watchdog.go",
		"cmd/bench/main.go",
	} {
		fs := lint(t, file, `package p
import "time"
func f() bool {
	t := time.NewTimer(time.Second)
	defer t.Stop()
	_ = time.Now()
	return true
}
`)
		wantRule(t, fs, RuleWallClock, 0)
	}
}

// TestWallClockPureTimeUsesAllowed: types and constructors that do not
// read the clock (Duration arithmetic, ParseDuration) stay legal
// everywhere — the harness needs time.Duration for the watchdog knob.
func TestWallClockPureTimeUsesAllowed(t *testing.T) {
	fs := lint(t, "internal/harness/x.go", `package harness
import "time"
func f(d time.Duration) time.Duration {
	p, _ := time.ParseDuration("5s")
	return d + p*time.Millisecond
}
`)
	wantRule(t, fs, RuleWallClock, 0)
}

func TestMapRangeEmittingOutputRejected(t *testing.T) {
	fs := lint(t, "internal/harness/x.go", `package harness
import "fmt"
func f() {
	m := map[string]int{"a": 1}
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v)
	}
}
`)
	wantRule(t, fs, RuleMapRangeRender, 1)
}

func TestMapRangeWriteStringRejected(t *testing.T) {
	fs := lint(t, "cmd/tool/main.go", `package main
import "strings"
func f(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k)
	}
	return b.String()
}
`)
	wantRule(t, fs, RuleMapRangeRender, 1)
}

func TestMapRangeAppendWithoutSortRejected(t *testing.T) {
	fs := lint(t, "internal/reduce/x.go", `package reduce
func f() []string {
	m := make(map[string]bool)
	var names []string
	for k := range m {
		names = append(names, k)
	}
	return names
}
`)
	wantRule(t, fs, RuleMapRangeRender, 1)
}

func TestMapRangeAccumulateThenSortAllowed(t *testing.T) {
	fs := lint(t, "internal/harness/x.go", `package harness
import "sort"
func f(m map[string]int) []string {
	var names []string
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
`)
	wantRule(t, fs, RuleMapRangeRender, 0)
}

func TestMapRangeSortSliceClosureAllowed(t *testing.T) {
	fs := lint(t, "internal/harness/x.go", `package harness
import "sort"
type row struct{ year, n int }
func f(m map[int]int) []row {
	var rows []row
	for y, n := range m {
		rows = append(rows, row{y, n})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].year < rows[j].year })
	return rows
}
`)
	wantRule(t, fs, RuleMapRangeRender, 0)
}

func TestMapRangeOutsideRenderPathsIgnored(t *testing.T) {
	fs := lint(t, "internal/eval/x.go", `package eval
import "fmt"
func f(m map[string]int) {
	for k := range m {
		fmt.Println(k)
	}
}
`)
	wantRule(t, fs, RuleMapRangeRender, 0)
}

func TestMapHeuristicsDetectPackageLevelAndFields(t *testing.T) {
	src := `package harness
import "fmt"
var table = map[string]int{}
type stats struct{ counts map[string]int }
func mkMap() map[string]bool { return nil }
func a() {
	for k := range table {
		fmt.Println(k)
	}
}
func b(s stats) {
	for k := range s.counts {
		fmt.Println(k)
	}
}
func c() {
	for k := range mkMap() {
		fmt.Println(k)
	}
}
`
	fs := lint(t, "internal/harness/x.go", src)
	wantRule(t, fs, RuleMapRangeRender, 3)
}

func TestNestedMapIndexDetected(t *testing.T) {
	fs := lint(t, "internal/harness/x.go", `package harness
import "fmt"
var perSUT = map[string]map[int]int{}
func f() {
	for y := range perSUT["z3"] {
		fmt.Println(y)
	}
}
`)
	wantRule(t, fs, RuleMapRangeRender, 1)
}

func TestFindingString(t *testing.T) {
	f := Finding{File: "a/b.go", Line: 3, Rule: RuleGlobalRand, Message: "m"}
	if got := f.String(); !strings.Contains(got, "a/b.go:3") || !strings.Contains(got, RuleGlobalRand) {
		t.Errorf("Finding.String() = %q", got)
	}
}
