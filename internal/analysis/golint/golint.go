// Package golint is the repository's own determinism and
// fuel-completeness linter. The reproduction's core guarantee — same
// seed, same campaign, same bug list, for any thread count — only holds
// if (a) no code path consults ambient nondeterminism and (b) every
// search loop in the solver spends from the deterministic fuel meter,
// so timeouts are step-counted rather than clock-measured. Four rules
// enforce that, over a typed, call-graph-aware view of the whole module
// (package load):
//
//   - global-rand: calls to the stateful top-level math/rand functions
//     (rand.Intn, rand.Float64, ...) are rejected everywhere; all
//     randomness must flow through an explicitly seeded *rand.Rand.
//   - wall-clock: calls to the time functions that read or schedule
//     against the real clock (time.Now, Since, Until, Sleep, After,
//     AfterFunc, Tick, NewTimer, NewTicker) are rejected everywhere.
//     The two legitimate consumers — the opt-in watchdog backstop and
//     the benchmark harness — carry in-source //golint:allow
//     directives; there is no path allowlist.
//   - map-range-render: inside a range over a map, nothing
//     order-sensitive may accumulate across iterations: no direct
//     output calls, no writes into a writer that outlives the
//     iteration, no append into a slice that is never sorted, and no
//     call to a function that (transitively, through the call graph)
//     renders output. Map iteration order must never reach rendered
//     results, trace records, or metrics.
//   - fuel-charge: in the solver packages (internal/solver/...,
//     internal/regex, internal/eval), every loop whose bound is not
//     syntactically evident must reach a fuel.Meter.Spend call,
//     directly or through the functions it calls. A loop that is
//     legitimately bounded for a non-obvious reason carries an explicit
//     //golint:allow fuel-charge — <reason> directive.
//
// Findings are suppressed only by in-source directives (see
// directive.go); a directive without a reason, with an unknown rule, or
// matching no finding is itself a finding.
package golint

import (
	"fmt"
	"sort"

	"repro/internal/analysis/golint/load"
)

// Finding is one linter violation.
type Finding struct {
	File    string // slash path relative to the module root
	Line    int
	Rule    string
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.File, f.Line, f.Rule, f.Message)
}

// Rule names.
const (
	RuleGlobalRand     = "global-rand"
	RuleWallClock      = "wall-clock"
	RuleMapRangeRender = "map-range-render"
	RuleFuel           = "fuel-charge"
	RuleAllowDirective = "allow-directive"
)

// LintDir loads, type-checks, and lints every non-test package under
// root (which must contain go.mod).
func LintDir(root string) ([]Finding, error) {
	prog, err := load.Load(root)
	if err != nil {
		return nil, err
	}
	return LintProgram(prog, prog.Packages()), nil
}

// LintProgram lints the given packages of an already-loaded program.
// The call graph spans the whole program, so interprocedural facts
// (fuel charges, rendering) are resolved across package boundaries even
// when only a subset of packages is being reported on.
func LintProgram(prog *load.Program, pkgs []*load.Package) []Finding {
	cg := load.BuildCallGraph(prog)
	var findings []Finding
	findings = append(findings, lintCallRules(prog, pkgs)...)
	findings = append(findings, lintMapOrder(prog, cg, pkgs)...)
	findings = append(findings, lintFuel(prog, cg, pkgs)...)

	var directives []*directive
	for _, pkg := range pkgs {
		directives = append(directives, collectDirectives(prog, pkg)...)
	}
	findings = applyDirectives(findings, directives)

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return findings
}
