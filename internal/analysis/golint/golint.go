// Package golint is a determinism linter for this repository's own Go
// source. The reproduction's core guarantee — same seed, same campaign,
// same bug list — only holds if no code path consults ambient
// nondeterminism. Three rules enforce that:
//
//   - global-rand (everywhere): calls to the stateful top-level
//     math/rand functions (rand.Intn, rand.Float64, ...) are rejected;
//     all randomness must flow through an explicitly seeded *rand.Rand
//     (rand.New / rand.NewSource remain allowed).
//   - wall-clock (repo-wide): calls to the time functions that read or
//     schedule against the real clock (time.Now, Since, Until, Sleep,
//     After, AfterFunc, Tick, NewTimer, NewTicker) are rejected
//     everywhere except an explicit allowlist: internal/watchdog (the
//     opt-in wall-clock backstop, whose cut-offs are quarantined rather
//     than classified) and cmd/bench (throughput measurement). The fuel
//     meter (internal/fuel) is the deterministic deadline; nothing that
//     classifies results may consult the clock.
//   - map-range-render (output-rendering paths): a range over a
//     map-typed value may not emit output directly nor append to a
//     slice that is never sorted in the same function, since Go map
//     iteration order would leak into rendered results.
//
// The linter is purely syntactic (go/parser + go/ast, no go/types), so
// map detection is heuristic: composite literals, make(map[...]),
// identifiers assigned from those, map-typed parameters and package
// variables, package-local functions returning maps, and struct fields
// declared with map types. That is deliberate — it needs no build
// context, runs in a plain test, and the repo's rendering code is
// simple enough for the heuristics to be exact in practice.
package golint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Finding is one determinism violation.
type Finding struct {
	File    string // path as given to the linter
	Line    int
	Rule    string // "global-rand", "wall-clock", or "map-range-render"
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.File, f.Line, f.Rule, f.Message)
}

// Rule names.
const (
	RuleGlobalRand     = "global-rand"
	RuleWallClock      = "wall-clock"
	RuleMapRangeRender = "map-range-render"
)

// statefulRandFuncs are the top-level math/rand functions that read the
// package-global, impossible-to-reseed-per-campaign source.
var statefulRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true,
	"Seed": true, "Read": true,
}

// wallClockAllowlist are the only path prefixes permitted to call the
// wall-clock functions: the watchdog backstop (quarantine-only, never
// classification) and the benchmark harness (throughput measurement is
// inherently about real time). Everything else must use the fuel meter.
var wallClockAllowlist = []string{
	"internal/watchdog/", "cmd/bench/",
}

// wallClockFuncs are the package time functions that read or schedule
// against the real clock. Pure value constructors and conversions
// (time.Duration arithmetic, time.Parse, time.Unix) stay allowed.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// renderDirs are the path prefixes holding output-rendering or
// report-assembly code, where map iteration order must never reach the
// rendered text.
var renderDirs = []string{
	"internal/harness/", "internal/coverage/", "internal/reduce/", "cmd/",
}

// outputFuncs are method/function selectors whose call inside a map
// range constitutes direct output emission.
var outputFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"WriteString": true, "WriteByte": true, "WriteRune": true, "Write": true,
}

// LintDir lints every non-test .go file under root, skipping .git and
// testdata directories. File paths in findings are relative to root.
func LintDir(root string) ([]Finding, error) {
	var findings []Finding
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		fs, err := LintSource(filepath.ToSlash(rel), src)
		if err != nil {
			return err
		}
		findings = append(findings, fs...)
		return nil
	})
	return findings, err
}

// LintSource lints one file. The filename selects which rules apply
// (paths are interpreted relative to the repository root, e.g.
// "internal/core/core.go") and appears in findings verbatim.
func LintSource(filename string, src []byte) ([]Finding, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, filename, src, 0)
	if err != nil {
		return nil, err
	}
	l := &linter{
		fset:      fset,
		filename:  filepath.ToSlash(filename),
		randName:  importName(file, "math/rand"),
		timeName:  importName(file, "time"),
		wallClock: !underAny(filepath.ToSlash(filename), wallClockAllowlist),
		render:    underAny(filepath.ToSlash(filename), renderDirs),
	}
	l.collectPackageMaps(file)
	for _, decl := range file.Decls {
		if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
			l.lintFunc(fn)
		}
	}
	l.lintCalls(file)
	return l.findings, nil
}

func underAny(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(path, p) {
			return true
		}
	}
	return false
}

// importName resolves the local identifier an import path is bound to,
// or "" if the file does not import it.
func importName(file *ast.File, path string) string {
	for _, imp := range file.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		return path[strings.LastIndex(path, "/")+1:]
	}
	return ""
}

type linter struct {
	fset      *token.FileSet
	filename  string
	randName  string
	timeName  string
	wallClock bool
	render    bool

	pkgMapVars   map[string]bool // package-level vars with map type
	pkgMapFuncs  map[string]bool // package funcs whose first result is a map
	mapFieldSet  map[string]bool // struct field names declared with map types
	nestedMapSet map[string]bool // names whose map *value* type is again a map

	findings []Finding
}

func (l *linter) report(pos token.Pos, rule, format string, args ...any) {
	l.findings = append(l.findings, Finding{
		File:    l.filename,
		Line:    l.fset.Position(pos).Line,
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// lintCalls applies the call-site rules (global-rand, wall-clock) to
// the whole file.
func (l *linter) lintCalls(file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if l.randName != "" && pkg.Name == l.randName && statefulRandFuncs[sel.Sel.Name] {
			l.report(call.Pos(), RuleGlobalRand,
				"call to global %s.%s; use an explicitly seeded *rand.Rand", pkg.Name, sel.Sel.Name)
		}
		if l.wallClock && l.timeName != "" && pkg.Name == l.timeName &&
			wallClockFuncs[sel.Sel.Name] {
			l.report(call.Pos(), RuleWallClock,
				"%s.%s outside the watchdog/bench allowlist; deadlines must use the fuel meter", pkg.Name, sel.Sel.Name)
		}
		return true
	})
}

// collectPackageMaps gathers the file-level map heuristics: package
// vars, struct fields, and functions returning maps.
func (l *linter) collectPackageMaps(file *ast.File) {
	l.pkgMapVars = map[string]bool{}
	l.pkgMapFuncs = map[string]bool{}
	l.mapFieldSet = map[string]bool{}
	l.nestedMapSet = map[string]bool{}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.ValueSpec:
					for i, name := range s.Names {
						if mt := mapTypeOfSpec(s, i); mt != nil {
							l.pkgMapVars[name.Name] = true
							if isMapType(mt.Value) {
								l.nestedMapSet[name.Name] = true
							}
						}
					}
				case *ast.TypeSpec:
					if st, ok := s.Type.(*ast.StructType); ok {
						for _, f := range st.Fields.List {
							if mt, ok := f.Type.(*ast.MapType); ok {
								for _, name := range f.Names {
									l.mapFieldSet[name.Name] = true
									if isMapType(mt.Value) {
										l.nestedMapSet[name.Name] = true
									}
								}
							}
						}
					}
				}
			}
		case *ast.FuncDecl:
			if d.Recv == nil && d.Type.Results != nil && len(d.Type.Results.List) > 0 {
				if _, ok := d.Type.Results.List[0].Type.(*ast.MapType); ok {
					l.pkgMapFuncs[d.Name.Name] = true
				}
			}
		}
	}
}

func isMapType(e ast.Expr) bool {
	_, ok := e.(*ast.MapType)
	return ok
}

// mapTypeOfSpec returns the map type of the i-th name in a ValueSpec,
// from either the declared type or the initializer.
func mapTypeOfSpec(s *ast.ValueSpec, i int) *ast.MapType {
	if mt, ok := s.Type.(*ast.MapType); ok {
		return mt
	}
	if i < len(s.Values) {
		return mapTypeOfExpr(s.Values[i])
	}
	return nil
}

// mapTypeOfExpr syntactically extracts a map type from an initializer
// expression, or nil.
func mapTypeOfExpr(e ast.Expr) *ast.MapType {
	switch v := e.(type) {
	case *ast.CompositeLit:
		if mt, ok := v.Type.(*ast.MapType); ok {
			return mt
		}
	case *ast.CallExpr:
		if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "make" && len(v.Args) > 0 {
			if mt, ok := v.Args[0].(*ast.MapType); ok {
				return mt
			}
		}
	}
	return nil
}

// lintFunc applies map-range-render inside one function declaration.
func (l *linter) lintFunc(fn *ast.FuncDecl) {
	if !l.render {
		return
	}
	localMaps := map[string]bool{}
	if fn.Type.Params != nil {
		for _, f := range fn.Type.Params.List {
			if isMapType(f.Type) {
				for _, name := range f.Names {
					localMaps[name.Name] = true
				}
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(s.Rhs) {
					continue
				}
				if l.isMapExpr(s.Rhs[i], localMaps) {
					localMaps[id.Name] = true
				}
			}
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for i, name := range vs.Names {
							if mapTypeOfSpec(vs, i) != nil {
								localMaps[name.Name] = true
							}
						}
					}
				}
			}
		case *ast.RangeStmt:
			if l.isMapExpr(s.X, localMaps) {
				l.checkMapRange(fn, s)
			}
		}
		return true
	})
}

// isMapExpr reports whether an expression is, by the syntactic
// heuristics, map-typed.
func (l *linter) isMapExpr(e ast.Expr, localMaps map[string]bool) bool {
	switch v := e.(type) {
	case *ast.Ident:
		return localMaps[v.Name] || l.pkgMapVars[v.Name]
	case *ast.CompositeLit:
		return isMapType(v.Type)
	case *ast.CallExpr:
		if mapTypeOfExpr(v) != nil {
			return true
		}
		if id, ok := v.Fun.(*ast.Ident); ok {
			return l.pkgMapFuncs[id.Name]
		}
	case *ast.SelectorExpr:
		return l.mapFieldSet[v.Sel.Name]
	case *ast.IndexExpr:
		// Indexing a nested map (map[K]map[K2]V) yields a map.
		switch base := v.X.(type) {
		case *ast.Ident:
			return l.nestedMapSet[base.Name]
		case *ast.SelectorExpr:
			return l.nestedMapSet[base.Sel.Name]
		}
	}
	return false
}

// checkMapRange verifies one map-range body: no direct output, and any
// appended-to slice must be sorted somewhere in the same function.
func (l *linter) checkMapRange(fn *ast.FuncDecl, rng *ast.RangeStmt) {
	appended := map[string]token.Pos{}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			if sel, ok := s.Fun.(*ast.SelectorExpr); ok && outputFuncs[sel.Sel.Name] {
				l.report(s.Pos(), RuleMapRangeRender,
					"%s inside a range over a map: iteration order leaks into output", sel.Sel.Name)
			}
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || i >= len(s.Lhs) {
					continue
				}
				if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
					continue
				}
				if target, ok := s.Lhs[i].(*ast.Ident); ok {
					if _, seen := appended[target.Name]; !seen {
						appended[target.Name] = s.Pos()
					}
				}
			}
		}
		return true
	})
	for name, pos := range appended {
		if !sortsName(fn.Body, name) {
			l.report(pos, RuleMapRangeRender,
				"append to %q inside a range over a map, and %q is never sorted in this function", name, name)
		}
	}
}

// sortsName reports whether the function body contains a sort.* or
// slices.Sort* call whose arguments mention the identifier.
func sortsName(body *ast.BlockStmt, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if mentionsIdent(arg, name) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func mentionsIdent(e ast.Expr, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
			return false
		}
		return !found
	})
	return found
}
