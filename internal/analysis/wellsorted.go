package analysis

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/smtlib"
)

// wellSortedPass re-verifies well-sortedness of every term against the
// internal/ast operator table, independent of the elaborator: every
// application is re-typed through ast.NewApp and its stored sort
// compared with the recomputed one, every variable occurrence is
// checked against the script's declarations (or the enclosing binders),
// every assert must be boolean, and declarations must be unique. All
// findings are errors: an ill-sorted script upstream of a solver run
// invalidates the oracle.
type wellSortedPass struct{}

func (wellSortedPass) Name() string { return "wellsorted" }

func (wellSortedPass) Analyze(s *smtlib.Script, _ *FusionMeta) []Diagnostic {
	var out []Diagnostic
	report := func(path, format string, args ...interface{}) {
		out = append(out, Diagnostic{
			Pass:     "wellsorted",
			Severity: SeverityError,
			Path:     path,
			Message:  fmt.Sprintf(format, args...),
		})
	}

	decls := map[string]ast.Sort{}
	for _, d := range s.Declarations() {
		if prev, ok := decls[d.Name]; ok {
			if prev == d.Sort {
				report("", "duplicate declaration of %q", d.Name)
			} else {
				report("", "conflicting declarations of %q: %v and %v", d.Name, prev, d.Sort)
			}
			continue
		}
		decls[d.Name] = d.Sort
	}

	for _, c := range s.Commands {
		df, ok := c.(*smtlib.DefineFun)
		if !ok {
			continue
		}
		bound := map[string]ast.Sort{}
		for _, p := range df.Params {
			bound[p.Name] = p.Sort
		}
		if df.Body.Sort() == df.Result && termSortsClean(df.Body, decls, bound) {
			continue
		}
		path := fmt.Sprintf("define-fun %s", df.Name)
		if df.Body.Sort() != df.Result {
			report(path, "body has sort %v, declared result is %v", df.Body.Sort(), df.Result)
		}
		checkTermSorts(df.Body, path+".body", decls, bound, report)
	}

	for i, a := range s.Asserts() {
		// Fast pre-check: a clean term (the overwhelmingly common case)
		// is verified without building any per-node path strings; only
		// a failing term takes the message-producing walk.
		if a.Sort() == ast.SortBool && termSortsClean(a, decls, nil) {
			continue
		}
		path := fmt.Sprintf("assert[%d]", i)
		if a.Sort() != ast.SortBool {
			report(path, "asserted term has sort %v, want Bool", a.Sort())
		}
		checkTermSorts(a, path, decls, nil, report)
	}
	return out
}

// termSortsClean reports whether checkTermSorts would produce no
// diagnostics for t, without allocating diagnostic context.
func termSortsClean(t ast.Term, decls, bound map[string]ast.Sort) bool {
	switch n := t.(type) {
	case *ast.Var:
		if bs, ok := bound[n.Name]; ok {
			return bs == n.VSort
		}
		ds, ok := decls[n.Name]
		return ok && ds == n.VSort
	case *ast.App:
		recomputed, err := ast.NewApp(n.Op, n.Args...)
		if err != nil || recomputed.Sort() != n.Sort() {
			return false
		}
		for _, a := range n.Args {
			if !termSortsClean(a, decls, bound) {
				return false
			}
		}
	case *ast.Quant:
		if len(n.Bound) == 0 || n.Body.Sort() != ast.SortBool {
			return false
		}
		inner := make(map[string]ast.Sort, len(bound)+len(n.Bound))
		for k, v := range bound {
			inner[k] = v
		}
		for _, sv := range n.Bound {
			inner[sv.Name] = sv.Sort
		}
		return termSortsClean(n.Body, decls, inner)
	}
	return true
}

// checkTermSorts walks t, re-deriving every application's sort and
// validating variable occurrences against declarations and binders.
func checkTermSorts(t ast.Term, path string, decls, bound map[string]ast.Sort, report func(string, string, ...interface{})) {
	switch n := t.(type) {
	case *ast.Var:
		if bs, ok := bound[n.Name]; ok {
			if bs != n.VSort {
				report(path, "bound variable %q occurs with sort %v, bound as %v", n.Name, n.VSort, bs)
			}
			return
		}
		ds, ok := decls[n.Name]
		if !ok {
			report(path, "undeclared variable %q", n.Name)
			return
		}
		if ds != n.VSort {
			report(path, "variable %q occurs with sort %v, declared as %v", n.Name, n.VSort, ds)
		}
	case *ast.App:
		recomputed, err := ast.NewApp(n.Op, n.Args...)
		if err != nil {
			report(path, "ill-sorted application: %v", err)
		} else if recomputed.Sort() != n.Sort() {
			report(path, "(%s ...) carries sort %v, typing rule derives %v", n.Op, n.Sort(), recomputed.Sort())
		}
		for i, a := range n.Args {
			checkTermSorts(a, fmt.Sprintf("%s.arg[%d]", path, i), decls, bound, report)
		}
	case *ast.Quant:
		if len(n.Bound) == 0 {
			report(path, "quantifier with empty binder list")
		}
		if n.Body.Sort() != ast.SortBool {
			report(path, "quantifier body has sort %v, want Bool", n.Body.Sort())
		}
		inner := make(map[string]ast.Sort, len(bound)+len(n.Bound))
		for k, v := range bound {
			inner[k] = v
		}
		for _, sv := range n.Bound {
			inner[sv.Name] = sv.Sort
		}
		checkTermSorts(n.Body, path+".body", decls, inner, report)
	}
}
