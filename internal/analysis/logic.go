package analysis

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/smtlib"
)

// LogicFeatures is the feature lattice behind SMT-LIB logic names:
// whether quantifiers, nonlinear arithmetic, and each theory are
// admitted. A logic L conforms to a declaration D when D's features
// cover L's.
type LogicFeatures struct {
	Quantified bool
	Nonlinear  bool
	Ints       bool
	Reals      bool
	Strings    bool
}

// Covers reports whether f admits everything g requires.
func (f LogicFeatures) Covers(g LogicFeatures) bool {
	if g.Quantified && !f.Quantified {
		return false
	}
	if g.Nonlinear && !f.Nonlinear {
		return false
	}
	if g.Ints && !f.Ints {
		return false
	}
	if g.Reals && !f.Reals {
		return false
	}
	if g.Strings && !f.Strings {
		return false
	}
	return true
}

// ParseLogicName maps a standard SMT-LIB logic name to its features.
// The second result is false for names outside the fragment this
// system generates (the nine logics of the paper's Figure 7 plus their
// quantified variants). String logics admit linear Int arithmetic:
// even QF_S scripts contain Int atoms through str.len and str.to_int.
func ParseLogicName(name string) (LogicFeatures, bool) {
	f := LogicFeatures{Quantified: true}
	rest := name
	if strings.HasPrefix(rest, "QF_") {
		f.Quantified = false
		rest = rest[len("QF_"):]
	}
	switch rest {
	case "S":
		f.Strings, f.Ints = true, true
		return f, true
	case "SLIA":
		f.Strings, f.Ints = true, true
		return f, true
	case "SNIA":
		f.Strings, f.Ints, f.Nonlinear = true, true, true
		return f, true
	}
	switch {
	case strings.HasPrefix(rest, "N"):
		f.Nonlinear = true
		rest = rest[1:]
	case strings.HasPrefix(rest, "L"):
		rest = rest[1:]
	default:
		return LogicFeatures{}, false
	}
	switch rest {
	case "IA":
		f.Ints = true
	case "RA":
		f.Reals = true
	case "IRA":
		f.Ints, f.Reals = true, true
	default:
		return LogicFeatures{}, false
	}
	return f, true
}

// RequiredFeatures computes the features a script actually uses,
// mirroring smtlib.InferLogic's classification exactly (multiplication
// is nonlinear with two or more non-literal factors; division and mod
// are nonlinear with a non-literal divisor).
func RequiredFeatures(s *smtlib.Script) LogicFeatures {
	f, _ := requiredFeatures(s)
	return f
}

// requiredFeatures additionally returns the path of the first term
// establishing each feature, for diagnostics.
func requiredFeatures(s *smtlib.Script) (LogicFeatures, map[string]string) {
	var f LogicFeatures
	where := map[string]string{}
	mark := func(set *bool, key, path string) {
		if !*set {
			*set = true
			where[key] = path
		}
	}

	for _, d := range s.Declarations() {
		switch d.Sort {
		case ast.SortInt:
			mark(&f.Ints, "ints", "")
		case ast.SortReal:
			mark(&f.Reals, "reals", "")
		case ast.SortString:
			mark(&f.Strings, "strings", "")
		}
	}

	var scan func(t ast.Term, path string)
	scan = func(t ast.Term, path string) {
		switch n := t.(type) {
		case *ast.Quant:
			mark(&f.Quantified, "quant", path)
			scan(n.Body, path+".body")
		case *ast.App:
			switch n.Sort() {
			case ast.SortInt:
				mark(&f.Ints, "ints", path)
			case ast.SortReal:
				mark(&f.Reals, "reals", path)
			case ast.SortString:
				mark(&f.Strings, "strings", path)
			}
			switch n.Op {
			case ast.OpMul:
				nonConst := 0
				for _, a := range n.Args {
					if !isLiteral(a) {
						nonConst++
					}
				}
				if nonConst > 1 {
					mark(&f.Nonlinear, "nonlinear", path)
				}
			case ast.OpRealDiv, ast.OpIntDiv, ast.OpMod:
				if len(n.Args) > 1 && !isLiteral(n.Args[1]) {
					mark(&f.Nonlinear, "nonlinear", path)
				}
			}
			for i, a := range n.Args {
				scan(a, fmt.Sprintf("%s.arg[%d]", path, i))
			}
		case *ast.IntLit:
			mark(&f.Ints, "ints", path)
		case *ast.RealLit:
			mark(&f.Reals, "reals", path)
		case *ast.StrLit:
			mark(&f.Strings, "strings", path)
		}
	}
	for i, a := range s.Asserts() {
		scan(a, fmt.Sprintf("assert[%d]", i))
	}
	return f, where
}

func isLiteral(t ast.Term) bool {
	switch n := t.(type) {
	case *ast.IntLit, *ast.RealLit, *ast.StrLit, *ast.BoolLit:
		return true
	case *ast.App:
		// (- 3) and (/ 2.0 3.0) are how negative and non-integer
		// numerals round-trip through SMT-LIB text; both denote
		// constants (mirrors smtlib.isConstTerm).
		if n.Op == ast.OpNeg && len(n.Args) == 1 {
			return isLiteral(n.Args[0])
		}
		if n.Op == ast.OpRealDiv && len(n.Args) == 2 {
			return isLiteral(n.Args[0]) && isLiteral(n.Args[1])
		}
	}
	return false
}

// logicPass checks the script against its declared logic: quantifiers
// under a QF_ logic, nonlinear terms under a linear logic, and theory
// sorts outside the declared theory each produce a warning. Scripts
// without a set-logic command get a single info note.
type logicPass struct{}

func (logicPass) Name() string { return "logic" }

func (logicPass) Analyze(s *smtlib.Script, _ *FusionMeta) []Diagnostic {
	declared := s.Logic()
	if declared == "" {
		return []Diagnostic{{
			Pass: "logic", Severity: SeverityInfo,
			Message: "script declares no logic (missing set-logic)",
		}}
	}
	df, ok := ParseLogicName(declared)
	if !ok {
		return []Diagnostic{{
			Pass: "logic", Severity: SeverityWarning,
			Message: fmt.Sprintf("unrecognized logic name %q", declared),
		}}
	}
	req, where := requiredFeatures(s)
	if df.Covers(req) {
		return nil
	}

	var out []Diagnostic
	warn := func(key, format string, args ...interface{}) {
		out = append(out, Diagnostic{
			Pass: "logic", Severity: SeverityWarning,
			Path:    where[key],
			Message: fmt.Sprintf(format, args...),
		})
	}
	if req.Quantified && !df.Quantified {
		warn("quant", "quantifier under quantifier-free logic %s", declared)
	}
	if req.Nonlinear && !df.Nonlinear {
		warn("nonlinear", "nonlinear term under linear logic %s (inferred %s)", declared, smtlib.InferLogic(s))
	}
	if req.Ints && !df.Ints {
		warn("ints", "Int terms outside logic %s", declared)
	}
	if req.Reals && !df.Reals {
		warn("reals", "Real terms outside logic %s", declared)
	}
	if req.Strings && !df.Strings {
		warn("strings", "String terms outside logic %s", declared)
	}
	return out
}
