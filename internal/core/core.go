// Package core implements Semantic Fusion, the paper's contribution:
// fusing two formulas of known, equal satisfiability into a new formula
// that is equisatisfiable by construction (PLDI 2020, "Validating SMT
// Solvers via Semantic Fusion").
//
// SAT fusion (Proposition 1) conjoins two satisfiable formulas after
// replacing random occurrences of a variable pair (x, y) by inversion
// terms over a fresh fusion variable z. UNSAT fusion (Proposition 2)
// disjoins two unsatisfiable formulas and adds the fusion constraints
// z = f(x,y), x = rx(y,z), y = ry(x,z). Mixed fusion handles one
// satisfiable and one unsatisfiable ancestor.
//
// One divergence from the paper is required for oracle exactness: the
// paper relies on SMT-LIB's underspecified division by zero, while this
// system fixes x/0 = 0 (see internal/eval). Under a fixed
// interpretation, inversion functions like rx(y,z) = z div y only
// recover x when they are exact under the ancestors' witness models, so
// SAT fusion validates each candidate fusion-function instance against
// the witnesses (generically, by evaluation) and discards instances
// that do not invert exactly. UNSAT fusion needs no witnesses: the
// added fusion constraints force the inversions, making Proposition 2
// semantics-robust.
package core

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/smtlib"
)

// Status is a formula's known satisfiability (the fuzzing oracle).
type Status int8

const (
	StatusSat Status = iota
	StatusUnsat
	// StatusUnknown marks an input whose ground truth no generator
	// constructed (wild mutations). Such tasks cannot be judged against
	// a known-status oracle; they flow to the consensus policies in
	// internal/harness instead.
	StatusUnknown
)

func (s Status) String() string {
	switch s {
	case StatusSat:
		return "sat"
	case StatusUnsat:
		return "unsat"
	default:
		return "unknown"
	}
}

// Seed is a formula with its ground-truth status. Sat seeds carry a
// witness model (used to select exactly-inverting fusion instances).
type Seed struct {
	Script  *smtlib.Script
	Status  Status
	Witness eval.Model
}

// Mode is the concatenation shape used by a fusion.
type Mode int8

const (
	// ModeSatConj: both ancestors sat, conjunction (Proposition 1).
	ModeSatConj Mode = iota
	// ModeUnsatDisj: both ancestors unsat, disjunction plus fusion
	// constraints (Proposition 2).
	ModeUnsatDisj
	// ModeMixedSatDisj: sat ∨ unsat ancestor, disjunction (sat oracle).
	ModeMixedSatDisj
	// ModeMixedUnsatConj: sat ∧ unsat ancestor, conjunction plus fusion
	// constraints (unsat oracle).
	ModeMixedUnsatConj
)

func (m Mode) String() string {
	switch m {
	case ModeSatConj:
		return "sat-conjunction"
	case ModeUnsatDisj:
		return "unsat-disjunction"
	case ModeMixedSatDisj:
		return "mixed-sat-disjunction"
	default:
		return "mixed-unsat-conjunction"
	}
}

// Triplet records one variable fusion (z, x, y) with the chosen
// functions.
type Triplet struct {
	Z, X, Y  string
	Sort     ast.Sort
	Function string // description of the fusion function row
}

// Fused is the result of a fusion.
type Fused struct {
	Script   *smtlib.Script
	Oracle   Status
	Mode     Mode
	Triplets []Triplet
	// Witness is a model of the fused formula when Oracle == StatusSat.
	Witness eval.Model
}

// Options tunes the fusion.
type Options struct {
	// MaxPairs bounds the number of fusion triplets (default 1; the
	// actual count is 1..MaxPairs chosen at random).
	MaxPairs int
	// ReplaceProb is the probability of replacing each replaceable
	// occurrence by an inversion term (default 0.5).
	ReplaceProb float64
	// Table overrides the fusion-function table (default DefaultTable).
	Table []FusionFn
}

func (o Options) withDefaults() Options {
	if o.MaxPairs == 0 {
		o.MaxPairs = 2
	}
	if o.ReplaceProb == 0 {
		o.ReplaceProb = 0.5
	}
	if o.Table == nil {
		o.Table = DefaultTable
	}
	return o
}

// ErrNoFusablePair is returned when the ancestors share no variable
// pair of a fusable sort (Int, Real, or String).
var ErrNoFusablePair = errors.New("core: no fusable variable pair")

// Fuse fuses two seeds per the paper's Algorithm 2. The mode follows
// from the ancestors' statuses; for mixed ancestors the mode is chosen
// at random between the sat-disjunction and unsat-conjunction variants.
func Fuse(phi1, phi2 *Seed, rng *rand.Rand, opts Options) (*Fused, error) {
	opts = opts.withDefaults()

	var mode Mode
	switch {
	case phi1.Status == StatusSat && phi2.Status == StatusSat:
		mode = ModeSatConj
	case phi1.Status == StatusUnsat && phi2.Status == StatusUnsat:
		mode = ModeUnsatDisj
	default:
		// Normalize: sat ancestor first.
		if phi1.Status == StatusUnsat {
			phi1, phi2 = phi2, phi1
		}
		if rng.Intn(2) == 0 {
			mode = ModeMixedSatDisj
		} else {
			mode = ModeMixedUnsatConj
		}
	}
	return FuseMode(phi1, phi2, mode, rng, opts)
}

// FuseMode fuses with an explicit mode. For modes involving a sat
// ancestor, that ancestor must carry a witness.
func FuseMode(phi1, phi2 *Seed, mode Mode, rng *rand.Rand, opts Options) (*Fused, error) {
	opts = opts.withDefaults()

	f := &fuser{rng: rng, opts: opts, mode: mode}
	return f.run(phi1, phi2)
}

type fuser struct {
	rng  *rand.Rand
	opts Options
	mode Mode

	used map[string]bool // all variable names in play
	// zCounter numbers fusion variables. Per-fuser (not package-global)
	// so concurrent campaigns neither race on it nor let goroutine
	// interleaving leak into fused-variable names; f.used already
	// guarantees uniqueness within the script.
	zCounter int
}

func (f *fuser) run(phi1, phi2 *Seed) (*Fused, error) {
	decls1 := phi1.Script.Declarations()
	asserts1 := phi1.Script.Asserts()

	// Step 0: rename φ2's variables apart from φ1's.
	f.used = map[string]bool{}
	for _, d := range decls1 {
		f.used[d.Name] = true
	}
	decls2, asserts2, witness2 := f.renameApart(phi2)

	witness1 := phi1.Witness

	// Build the candidate pair pool: same-sort fusable pairs.
	type pair struct {
		x, y *smtlib.DeclareFun
	}
	var pool []pair
	for _, dx := range decls1 {
		if !fusableSort(dx.Sort) {
			continue
		}
		for _, dy := range decls2 {
			if dy.Sort == dx.Sort {
				pool = append(pool, pair{x: dx, y: dy})
			}
		}
	}
	if len(pool) == 0 {
		return nil, ErrNoFusablePair
	}

	nPairs := 1 + f.rng.Intn(f.opts.MaxPairs)
	if nPairs > len(pool) {
		nPairs = len(pool)
	}
	f.rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	// Distinct variables across triplets (the paper's random_map).
	var chosen []pair
	usedVar := map[string]bool{}
	for _, p := range pool {
		if usedVar[p.x.Name] || usedVar[p.y.Name] {
			continue
		}
		usedVar[p.x.Name] = true
		usedVar[p.y.Name] = true
		chosen = append(chosen, p)
		if len(chosen) == nPairs {
			break
		}
	}

	needWitness := f.mode != ModeUnsatDisj
	combined := eval.Model{}
	if needWitness {
		if witness1 == nil {
			return nil, fmt.Errorf("core: %v fusion requires a witness for the sat ancestor", f.mode)
		}
		for k, v := range witness1 {
			combined[k] = v
		}
		if f.mode == ModeSatConj {
			if witness2 == nil {
				return nil, fmt.Errorf("core: sat fusion requires witnesses for both ancestors")
			}
			for k, v := range witness2 {
				combined[k] = v
			}
		} else {
			// Mixed: the unsat side's variables take arbitrary values.
			for _, d := range decls2 {
				if _, ok := combined[d.Name]; !ok {
					combined[d.Name] = eval.DefaultValue(d.Sort)
				}
			}
		}
		// Default-complete (seeds may not constrain every declared var).
		for _, d := range decls1 {
			if _, ok := combined[d.Name]; !ok {
				combined[d.Name] = eval.DefaultValue(d.Sort)
			}
		}
	}

	var (
		triplets     []Triplet
		constraints  []ast.Term
		guardAsserts []ast.Term
		zDecls       []*smtlib.DeclareFun
	)
	for _, p := range chosen {
		x := ast.NewVar(p.x.Name, p.x.Sort)
		y := ast.NewVar(p.y.Name, p.y.Sort)
		zName := f.freshZ()
		z := ast.NewVar(zName, p.x.Sort)

		inst, desc, ok := f.pickInstance(p.x.Sort, x, y, z, combined, needWitness)
		if !ok {
			continue // no exactly-inverting instance for these witnesses
		}
		if needWitness {
			zv, err := eval.Term(inst.apply, combined)
			if err != nil {
				continue
			}
			combined[zName] = zv
		}
		zDecls = append(zDecls, &smtlib.DeclareFun{Name: zName, Sort: p.x.Sort})
		triplets = append(triplets, Triplet{Z: zName, X: p.x.Name, Y: p.y.Name, Sort: p.x.Sort, Function: desc})

		// Variable inversion: replace random free occurrences of x in
		// φ1's asserts and y in φ2's asserts.
		asserts1 = f.substRandom(asserts1, p.x.Name, inst.invertX)
		asserts2 = f.substRandom(asserts2, p.y.Name, inst.invertY)

		if f.mode == ModeUnsatDisj || f.mode == ModeMixedUnsatConj {
			// Divisor guards are folded into each constraint (keeping
			// one assert per constraint): conjoining d ≠ 0 to an unsat
			// formula preserves unsatisfiability, and it makes the
			// inversion's division well-guarded under the fixed
			// x/0 = 0 interpretation.
			constraints = append(constraints,
				withDivisorGuards(ast.Eq(z, inst.apply), inst.apply),
				withDivisorGuards(ast.Eq(x, inst.invertX), inst.invertX),
				withDivisorGuards(ast.Eq(y, inst.invertY), inst.invertY))
		} else {
			// Sat modes assert divisor guards standalone. They hold
			// under the combined witness: pickInstance rejects rows
			// whose divisors evaluate to zero.
			guardAsserts = append(guardAsserts, divisorGuards(inst.invertX, inst.invertY)...)
		}
	}
	if len(triplets) == 0 {
		return nil, ErrNoFusablePair
	}

	// Formula concatenation.
	decls := append(append([]*smtlib.DeclareFun{}, decls1...), decls2...)
	decls = append(decls, zDecls...)
	var asserts []ast.Term
	var oracle Status
	switch f.mode {
	case ModeSatConj:
		asserts = append(append([]ast.Term{}, asserts1...), asserts2...)
		asserts = append(asserts, guardAsserts...)
		oracle = StatusSat
	case ModeMixedSatDisj:
		asserts = []ast.Term{ast.Or(conj(asserts1), conj(asserts2))}
		asserts = append(asserts, guardAsserts...)
		oracle = StatusSat
	case ModeUnsatDisj:
		asserts = []ast.Term{ast.Or(conj(asserts1), conj(asserts2))}
		asserts = append(asserts, constraints...)
		oracle = StatusUnsat
	case ModeMixedUnsatConj:
		asserts = append(append([]ast.Term{}, asserts1...), asserts2...)
		asserts = append(asserts, constraints...)
		oracle = StatusUnsat
	}

	script := smtlib.NewScript("", decls, asserts)
	script.Commands = append([]smtlib.Command{&smtlib.SetLogic{Logic: smtlib.InferLogic(script)}}, script.Commands...)

	// Post-fusion verification gate: the error-level analysis passes
	// re-check well-sortedness and the fusion postconditions. A finding
	// here is a fusion-engine bug and must never reach a solver run.
	meta := &analysis.FusionMeta{
		Mode:            f.mode.String(),
		Seed1Vars:       declNames(decls1),
		Seed2Vars:       declNames(decls2),
		WantConstraints: f.mode == ModeUnsatDisj || f.mode == ModeMixedUnsatConj,
	}
	for _, tr := range triplets {
		meta.Triplets = append(meta.Triplets, analysis.FusionTriplet{Z: tr.Z, X: tr.X, Y: tr.Y, Sort: tr.Sort})
	}
	if err := analysis.Gate(script, meta); err != nil {
		return nil, fmt.Errorf("core: fused script failed static verification: %w", err)
	}

	out := &Fused{Script: script, Oracle: oracle, Mode: f.mode, Triplets: triplets}
	if oracle == StatusSat {
		out.Witness = combined
	}
	return out, nil
}

func declNames(decls []*smtlib.DeclareFun) []string {
	out := make([]string, len(decls))
	for i, d := range decls {
		out[i] = d.Name
	}
	return out
}

// variableDivisors collects the non-literal divisor subterms of the
// given terms, deduplicated by interned term identity (structurally
// equal divisors are one node).
func variableDivisors(terms ...ast.Term) []ast.Term {
	var out []ast.Term
	seen := map[ast.Term]bool{}
	add := func(d ast.Term) {
		switch d.(type) {
		case *ast.IntLit, *ast.RealLit:
			return
		}
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	for _, t := range terms {
		ast.Walk(t, func(n ast.Term) bool {
			app, ok := n.(*ast.App)
			if !ok {
				return true
			}
			switch app.Op {
			case ast.OpIntDiv, ast.OpRealDiv:
				for _, d := range app.Args[1:] {
					add(d)
				}
			case ast.OpMod:
				add(app.Args[1])
			}
			return true
		})
	}
	return out
}

// divisorGuards returns one (distinct d 0) assert per non-literal
// divisor occurring in the terms.
func divisorGuards(terms ...ast.Term) []ast.Term {
	var out []ast.Term
	for _, d := range variableDivisors(terms...) {
		out = append(out, ast.MustApp(ast.OpDistinct, d, zeroOf(d.Sort())))
	}
	return out
}

// withDivisorGuards conjoins eq with nonzero guards for inv's divisors,
// keeping a single assert.
func withDivisorGuards(eq ast.Term, inv ast.Term) ast.Term {
	guards := divisorGuards(inv)
	if len(guards) == 0 {
		return eq
	}
	return ast.And(append([]ast.Term{eq}, guards...)...)
}

func zeroOf(s ast.Sort) ast.Term {
	if s == ast.SortReal {
		return ast.Real(0, 1)
	}
	return ast.Int(0)
}

// renameApart renames φ2's variables that clash with names already in
// use, rewriting its asserts and witness accordingly.
func (f *fuser) renameApart(phi *Seed) ([]*smtlib.DeclareFun, []ast.Term, eval.Model) {
	renames := map[string]string{}
	var decls []*smtlib.DeclareFun
	for _, d := range phi.Script.Declarations() {
		name := d.Name
		for f.used[name] {
			name = name + "_2"
		}
		if name != d.Name {
			renames[d.Name] = name
		}
		f.used[name] = true
		decls = append(decls, &smtlib.DeclareFun{Name: name, Sort: d.Sort})
	}
	asserts := phi.Script.Asserts()
	if len(renames) > 0 {
		renamed := make([]ast.Term, len(asserts))
		for i, a := range asserts {
			renamed[i] = ast.RenameFreeVars(a, renames)
		}
		asserts = renamed
	} else {
		asserts = append([]ast.Term{}, asserts...)
	}
	var witness eval.Model
	if phi.Witness != nil {
		witness = eval.Model{}
		for k, v := range phi.Witness {
			if nn, ok := renames[k]; ok {
				witness[nn] = v
			} else {
				witness[k] = v
			}
		}
	}
	return decls, asserts, witness
}

func (f *fuser) freshZ() string {
	for {
		f.zCounter++
		name := fmt.Sprintf("z_fuse_%d", f.zCounter)
		if !f.used[name] {
			f.used[name] = true
			return name
		}
	}
}

// instance is an instantiated fusion-function row applied to concrete
// x, y, z variables.
type instance struct {
	apply   ast.Term // f(x, y)
	invertX ast.Term // rx(y, z)
	invertY ast.Term // ry(x, z)
}

// pickInstance chooses a fusion-function row for the sort, instantiated
// with random coefficients. When a witness is required, rows whose
// inversions are not exact under the witness are rejected (checked
// generically by evaluation).
func (f *fuser) pickInstance(sort ast.Sort, x, y, z *ast.Var, witness eval.Model, needExact bool) (instance, string, bool) {
	var rows []FusionFn
	for _, fn := range f.opts.Table {
		if fn.Sort == sort {
			rows = append(rows, fn)
		}
	}
	if len(rows) == 0 {
		return instance{}, "", false
	}
	order := f.rng.Perm(len(rows))
	for _, i := range order {
		fn := rows[i]
		inst, desc := fn.Make(f.rng, x, y, z)
		if !needExact {
			return inst, desc, true
		}
		if f.exactUnder(inst, x, y, z, witness) {
			return inst, desc, true
		}
	}
	return instance{}, "", false
}

// exactUnder checks, by evaluation, that z := f(x,y) makes both
// inversions recover x and y under the witness, and that every
// non-literal divisor inside the instance evaluates to a nonzero value
// (so the emitted divisor guards hold under the witness and the
// inversion never silently relies on the fixed x/0 = 0 semantics).
func (f *fuser) exactUnder(inst instance, x, y, z *ast.Var, witness eval.Model) bool {
	zv, err := eval.Term(inst.apply, witness)
	if err != nil {
		return false
	}
	probe := witness.Clone()
	probe[z.Name] = zv
	rx, err := eval.Term(inst.invertX, probe)
	if err != nil || !eval.Equal(rx, probe[x.Name]) {
		return false
	}
	ry, err := eval.Term(inst.invertY, probe)
	if err != nil || !eval.Equal(ry, probe[y.Name]) {
		return false
	}
	for _, d := range variableDivisors(inst.apply, inst.invertX, inst.invertY) {
		dv, err := eval.Term(d, probe)
		if err != nil || eval.Equal(dv, eval.DefaultValue(d.Sort())) {
			return false
		}
	}
	return true
}

// substRandom replaces each free occurrence of name in each assert with
// probability ReplaceProb. When the assert list contains division or
// modulo, all occurrences are replaced together on a single coin flip:
// a seed's divisor and its syntactic nonzero guard (a sibling atom or
// an ite condition) must rewrite consistently, or the fused formula
// would carry a division whose guard no longer matches it.
func (f *fuser) substRandom(asserts []ast.Term, name string, repl ast.Term) []ast.Term {
	pick := func(int) bool { return f.rng.Float64() < f.opts.ReplaceProb }
	if divisionInvolved(asserts, name) {
		all := f.rng.Float64() < f.opts.ReplaceProb
		pick = func(int) bool { return all }
	}
	out := make([]ast.Term, len(asserts))
	for i, a := range asserts {
		res, _, err := ast.SubstituteOccurrences(a, name, repl, pick)
		if err != nil {
			out[i] = a
			continue
		}
		out[i] = res
	}
	return out
}

// divisionInvolved reports whether name occurs free in a list that also
// contains a division or modulo operator.
func divisionInvolved(asserts []ast.Term, name string) bool {
	hasDiv, occurs := false, false
	for _, a := range asserts {
		if !hasDiv {
			ast.Walk(a, func(t ast.Term) bool {
				if app, ok := t.(*ast.App); ok {
					switch app.Op {
					case ast.OpIntDiv, ast.OpRealDiv, ast.OpMod:
						hasDiv = true
						return false
					}
				}
				return true
			})
		}
		if !occurs && ast.CountFreeOccurrences(a, name) > 0 {
			occurs = true
		}
		if hasDiv && occurs {
			return true
		}
	}
	return false
}

func conj(ts []ast.Term) ast.Term {
	if len(ts) == 0 {
		return ast.True
	}
	return ast.And(ts...)
}

func fusableSort(s ast.Sort) bool {
	return s == ast.SortInt || s == ast.SortReal || s == ast.SortString
}
