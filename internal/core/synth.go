package core

import (
	"fmt"
	"math/rand"

	"repro/internal/ast"
)

// This file implements the paper's principal future-work item: the
// automatic construction of fusion and inversion functions ("it would
// be interesting to explore the automatic generation of fusion and
// inversion functions", Section 6). Functions are synthesized from a
// small shape grammar whose inversions are derived symbolically; the
// generic witness-exactness check in pickInstance (exactUnder) then
// serves as the verification step, so synthesized rows can never
// corrupt the oracle — an inexact candidate is simply discarded for
// that seed pair.

// SynthesizeTable generates `perSort` fusion-function rows for each of
// Int, Real, and String from the shape grammar, to be used alongside or
// instead of the hand-written Figure 6 table (Options.Table).
func SynthesizeTable(rng *rand.Rand, perSort int) []FusionFn {
	var out []FusionFn
	for i := 0; i < perSort; i++ {
		out = append(out, synthArith(rng, ast.SortInt, i))
		out = append(out, synthArith(rng, ast.SortReal, i))
		out = append(out, synthString(rng, i))
	}
	return out
}

// synthArith picks a random invertible affine shape:
//
//	shape 0: z = c1·(x + a) + y        rx = ((z − y) div c1) − a,  ry = z − c1·(x + a)
//	shape 1: z = x + c2·(y + b)        rx = z − c2·(y + b),        ry = ((z − x) div c2) − b
//	shape 2: z = c1·x + c2·y + c3      rx = ((z − c2·y − c3) div c1), ry = ((z − c1·x − c3) div c2)
//
// with nonzero c1, c2 (div is exact division for Real).
func synthArith(rng *rand.Rand, sort ast.Sort, serial int) FusionFn {
	name := fmt.Sprintf("synth-%s-%d", sort, serial)
	return FusionFn{
		Name: name,
		Sort: sort,
		Make: func(rng *rand.Rand, x, y, z *ast.Var) (instance, string) {
			lit := func(v int64) ast.Term {
				if sort == ast.SortReal {
					return ast.Real(v, 1)
				}
				return ast.Int(v)
			}
			nz := func() ast.Term { return lit(int64(1 + rng.Intn(7))) }
			anyc := func() ast.Term { return lit(int64(rng.Intn(19) - 9)) }
			divOp := ast.OpIntDiv
			if sort == ast.SortReal {
				divOp = ast.OpRealDiv
			}
			div := func(a, b ast.Term) ast.Term { return ast.MustApp(divOp, a, b) }

			switch rng.Intn(3) {
			case 0:
				c1, a := nz(), anyc()
				apply := ast.Add(ast.Mul(c1, ast.Add(x, a)), y)
				rx := ast.Sub(div(ast.Sub(z, y), c1), a)
				ry := ast.Sub(z, ast.Mul(c1, ast.Add(x, a)))
				return instance{apply: apply, invertX: rx, invertY: ry},
					fmt.Sprintf("z = %s*(x + %s) + y", ast.Print(c1), ast.Print(a))
			case 1:
				c2, b := nz(), anyc()
				apply := ast.Add(x, ast.Mul(c2, ast.Add(y, b)))
				rx := ast.Sub(z, ast.Mul(c2, ast.Add(y, b)))
				ry := ast.Sub(div(ast.Sub(z, x), c2), b)
				return instance{apply: apply, invertX: rx, invertY: ry},
					fmt.Sprintf("z = x + %s*(y + %s)", ast.Print(c2), ast.Print(b))
			default:
				c1, c2, c3 := nz(), nz(), anyc()
				apply := ast.Add(ast.Mul(c1, x), ast.Mul(c2, y), c3)
				rx := div(ast.Sub(z, ast.Mul(c2, y), c3), c1)
				ry := div(ast.Sub(z, ast.Mul(c1, x), c3), c2)
				return instance{apply: apply, invertX: rx, invertY: ry},
					fmt.Sprintf("z = %s*x + %s*y + %s", ast.Print(c1), ast.Print(c2), ast.Print(c3))
			}
		},
	}
}

// synthString builds z = p ++ x ++ m ++ y ++ s with random literal
// padding, inverted by substring extraction at symbolically computed
// offsets.
func synthString(rng *rand.Rand, serial int) FusionFn {
	name := fmt.Sprintf("synth-String-%d", serial)
	return FusionFn{
		Name: name,
		Sort: ast.SortString,
		Make: func(rng *rand.Rand, x, y, z *ast.Var) (instance, string) {
			const alphabet = "abcxy01#"
			pad := func(max int) string {
				n := rng.Intn(max + 1)
				buf := make([]byte, n)
				for i := range buf {
					buf[i] = alphabet[rng.Intn(len(alphabet))]
				}
				return string(buf)
			}
			p, m, sfx := pad(2), pad(3), pad(2)
			strLen := func(t ast.Term) ast.Term { return ast.MustApp(ast.OpStrLen, t) }

			parts := []ast.Term{}
			if p != "" {
				parts = append(parts, ast.Str(p))
			}
			parts = append(parts, x)
			if m != "" {
				parts = append(parts, ast.Str(m))
			}
			parts = append(parts, y)
			if sfx != "" {
				parts = append(parts, ast.Str(sfx))
			}
			var apply ast.Term
			if len(parts) == 1 {
				apply = parts[0]
			} else {
				apply = ast.MustApp(ast.OpStrConcat, parts...)
			}

			// rx = substr(z, |p|, len x)
			rx := ast.MustApp(ast.OpStrSubstr, z, ast.Int(int64(len(p))), strLen(x))
			// ry = substr(z, |p| + len x + |m|, len y)
			off := ast.Add(ast.Int(int64(len(p))), strLen(x), ast.Int(int64(len(m))))
			ry := ast.MustApp(ast.OpStrSubstr, z, off, strLen(y))
			return instance{apply: apply, invertX: rx, invertY: ry},
				fmt.Sprintf("z = %q ++ x ++ %q ++ y ++ %q", p, m, sfx)
		},
	}
}
