package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/smtlib"
)

// Property (Proposition 1, concrete form): for arbitrary integer
// witnesses, SAT fusion of two satisfiable interval formulas produces a
// formula whose constructed witness evaluates every assert to true.
func TestQuickProposition1(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(a, b int64, seed int64) bool {
		a %= 1000
		b %= 1000
		x := ast.NewVar("x", ast.SortInt)
		y := ast.NewVar("y", ast.SortInt)
		phi1 := &Seed{
			Script: smtlib.NewScript("QF_LIA",
				[]*smtlib.DeclareFun{{Name: "x", Sort: ast.SortInt}},
				[]ast.Term{ast.Ge(x, ast.Int(a)), ast.Le(x, ast.Int(a+5))}),
			Status:  StatusSat,
			Witness: eval.Model{"x": eval.Int(a + 2)},
		}
		phi2 := &Seed{
			Script: smtlib.NewScript("QF_LIA",
				[]*smtlib.DeclareFun{{Name: "y", Sort: ast.SortInt}},
				[]ast.Term{ast.Ge(y, ast.Int(b)), ast.Le(y, ast.Int(b+9))}),
			Status:  StatusSat,
			Witness: eval.Model{"y": eval.Int(b + 4)},
		}
		fused, err := Fuse(phi1, phi2, rng, Options{})
		if err != nil {
			return false
		}
		for _, assert := range fused.Script.Asserts() {
			ok, err := eval.Bool(assert, fused.Witness)
			if err != nil || !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: fusion never loses or duplicates declarations — the fused
// script declares exactly the union of (renamed) ancestor variables
// plus the fresh fusion variables.
func TestQuickDeclarationAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(a int64) bool {
		a %= 50
		x := ast.NewVar("x", ast.SortReal)
		mk := func(name string, w int64) *Seed {
			v := ast.NewVar(name, ast.SortReal)
			return &Seed{
				Script: smtlib.NewScript("QF_LRA",
					[]*smtlib.DeclareFun{{Name: name, Sort: ast.SortReal}},
					[]ast.Term{ast.Lt(v, ast.Real(w+1, 1))}),
				Status:  StatusSat,
				Witness: eval.Model{name: eval.Real(w, 1)},
			}
		}
		_ = x
		phi1, phi2 := mk("x", a), mk("x", a+1) // same name: forces renaming
		fused, err := Fuse(phi1, phi2, rng, Options{MaxPairs: 1})
		if err != nil {
			return false
		}
		names := map[string]int{}
		for _, d := range fused.Script.Declarations() {
			names[d.Name]++
		}
		for n, c := range names {
			if c != 1 {
				return false
			}
			_ = n
		}
		// x, x_2, and one fusion variable.
		return len(names) == 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: every fused script reparses to an equal print (printer and
// parser stay in sync under fusion-generated terms).
func TestQuickFusedReparse(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	u1 := seedFromSrcQuick(`
(declare-fun p () Real)
(assert (> p (+ p 1.0)))
`)
	u2 := seedFromSrcQuick(`
(declare-fun q () Real)
(assert (and (< q 0.0) (> q 1.0)))
`)
	f := func(n uint8) bool {
		fused, err := Fuse(u1, u2, rng, Options{MaxPairs: 1 + int(n%2)})
		if err != nil {
			return false
		}
		txt := smtlib.Print(fused.Script)
		back, err := smtlib.ParseScript(txt)
		if err != nil {
			return false
		}
		return smtlib.Print(back) == txt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func seedFromSrcQuick(src string) *Seed {
	sc, err := smtlib.ParseScript(src)
	if err != nil {
		panic(err)
	}
	return &Seed{Script: sc, Status: StatusUnsat}
}
