package core

import (
	"fmt"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/smtlib"
)

// Concat implements the RQ4 baseline ConcatFuzz: step 1 of Semantic
// Fusion only. Two satisfiable formulas are conjoined; two
// unsatisfiable formulas are disjoined. No fusion variables, no
// inversion substitution. The result's status is known by the same
// argument as the full method (a conjunction of sat formulas over
// disjoint variables is sat; a disjunction of unsat formulas is unsat).
func Concat(phi1, phi2 *Seed, rng *rand.Rand) (*Fused, error) {
	if phi1.Status != phi2.Status {
		// Mixed concatenation: disjunction is sat, conjunction unsat.
		if phi1.Status == StatusUnsat {
			phi1, phi2 = phi2, phi1
		}
		if rng.Intn(2) == 0 {
			return concatWith(phi1, phi2, ModeMixedSatDisj)
		}
		return concatWith(phi1, phi2, ModeMixedUnsatConj)
	}
	if phi1.Status == StatusSat {
		return concatWith(phi1, phi2, ModeSatConj)
	}
	return concatWith(phi1, phi2, ModeUnsatDisj)
}

func concatWith(phi1, phi2 *Seed, mode Mode) (*Fused, error) {
	f := &fuser{mode: mode, used: map[string]bool{}}
	decls1 := phi1.Script.Declarations()
	for _, d := range decls1 {
		f.used[d.Name] = true
	}
	decls2, asserts2, witness2 := f.renameApart(phi2)
	asserts1 := append([]ast.Term{}, phi1.Script.Asserts()...)

	decls := append(append([]*smtlib.DeclareFun{}, decls1...), decls2...)
	var asserts []ast.Term
	var oracle Status
	switch mode {
	case ModeSatConj:
		asserts = append(append([]ast.Term{}, asserts1...), asserts2...)
		oracle = StatusSat
	case ModeUnsatDisj:
		asserts = []ast.Term{ast.Or(conj(asserts1), conj(asserts2))}
		oracle = StatusUnsat
	case ModeMixedSatDisj:
		asserts = []ast.Term{ast.Or(conj(asserts1), conj(asserts2))}
		oracle = StatusSat
	case ModeMixedUnsatConj:
		asserts = append(append([]ast.Term{}, asserts1...), asserts2...)
		oracle = StatusUnsat
	}

	script := smtlib.NewScript("", decls, asserts)
	script.Commands = append([]smtlib.Command{&smtlib.SetLogic{Logic: smtlib.InferLogic(script)}}, script.Commands...)

	// Same verification gate as full fusion: concatenation must still
	// produce a well-sorted script over disjoint ancestor variables.
	meta := &analysis.FusionMeta{
		Mode:      mode.String(),
		Seed1Vars: declNames(decls1),
		Seed2Vars: declNames(decls2),
	}
	if err := analysis.Gate(script, meta); err != nil {
		return nil, fmt.Errorf("core: concatenated script failed static verification: %w", err)
	}

	out := &Fused{Script: script, Oracle: oracle, Mode: mode}
	if oracle == StatusSat && phi1.Witness != nil {
		w := eval.Model{}
		for k, v := range phi1.Witness {
			w[k] = v
		}
		if mode == ModeSatConj && witness2 != nil {
			for k, v := range witness2 {
				w[k] = v
			}
		}
		out.Witness = w
	}
	return out, nil
}
