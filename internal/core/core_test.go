package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/smtlib"
	"repro/internal/solver"
)

func seedFromSrc(t *testing.T, src string, status Status, witness eval.Model) *Seed {
	t.Helper()
	sc, err := smtlib.ParseScript(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if status == StatusSat {
		// Sanity: the declared witness must satisfy the seed.
		for _, a := range sc.Asserts() {
			ok, err := eval.Bool(a, witness)
			if err != nil || !ok {
				t.Fatalf("bad witness for %s: %v", ast.Print(a), err)
			}
		}
	}
	return &Seed{Script: sc, Status: status, Witness: witness}
}

func paperPhi1(t *testing.T) *Seed {
	// Figure 1: φ1 = x > 0 ∧ x > 1, witness x = 2.
	return seedFromSrc(t, `
(declare-fun x () Int)
(assert (> x 0))
(assert (> x 1))
`, StatusSat, eval.Model{"x": eval.Int(2)})
}

func paperPhi2(t *testing.T) *Seed {
	// Figure 1: φ2 = y < 0 ∧ y < 1, witness y = −1.
	return seedFromSrc(t, `
(declare-fun y () Int)
(assert (< y 0))
(assert (< y 1))
`, StatusSat, eval.Model{"y": eval.Int(-1)})
}

func unsatSeed1(t *testing.T) *Seed {
	// Figure 4's φ3-alike: trivially unsat real formula.
	return seedFromSrc(t, `
(declare-fun x () Real)
(assert (not (= (+ (+ 1.0 x) 6.0) (+ 7.0 x))))
`, StatusUnsat, nil)
}

func unsatSeed2(t *testing.T) *Seed {
	// Figure 4's φ4: 0 < y < v ≤ w ∧ w/v < 0.
	return seedFromSrc(t, `
(declare-fun y () Real)
(declare-fun w () Real)
(declare-fun v () Real)
(assert (and (< y v) (>= w v) (< (/ w v) 0.0) (> y 0.0)))
`, StatusUnsat, nil)
}

func TestSatFusionWitnessValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 300; iter++ {
		fused, err := Fuse(paperPhi1(t), paperPhi2(t), rng, Options{})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if fused.Oracle != StatusSat || fused.Mode != ModeSatConj {
			t.Fatalf("iter %d: oracle %v mode %v", iter, fused.Oracle, fused.Mode)
		}
		if fused.Witness == nil {
			t.Fatal("sat fusion must produce a witness")
		}
		// The paper's Proposition 1, checked concretely: the
		// constructed model satisfies the fused formula.
		for _, a := range fused.Script.Asserts() {
			ok, err := eval.Bool(a, fused.Witness)
			if err != nil {
				t.Fatalf("iter %d: eval: %v\n%s", iter, err, smtlib.Print(fused.Script))
			}
			if !ok {
				t.Fatalf("iter %d: witness violates fused assert %s\nscript:\n%s",
					iter, ast.Print(a), smtlib.Print(fused.Script))
			}
		}
	}
}

func TestSatFusionIntroducesFreshVariable(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	fused, err := Fuse(paperPhi1(t), paperPhi2(t), rng, Options{MaxPairs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(fused.Triplets) != 1 {
		t.Fatalf("triplets = %d", len(fused.Triplets))
	}
	tri := fused.Triplets[0]
	if tri.X != "x" || tri.Y != "y" || tri.Sort != ast.SortInt {
		t.Errorf("triplet = %+v", tri)
	}
	found := false
	for _, d := range fused.Script.Declarations() {
		if d.Name == tri.Z {
			found = true
			if d.Sort != ast.SortInt {
				t.Errorf("z sort = %v", d.Sort)
			}
		}
	}
	if !found {
		t.Error("fusion variable not declared")
	}
}

func TestUnsatFusionStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 100; iter++ {
		fused, err := Fuse(unsatSeed1(t), unsatSeed2(t), rng, Options{MaxPairs: 1})
		if err != nil {
			t.Fatal(err)
		}
		if fused.Oracle != StatusUnsat || fused.Mode != ModeUnsatDisj {
			t.Fatalf("oracle %v mode %v", fused.Oracle, fused.Mode)
		}
		asserts := fused.Script.Asserts()
		// Disjunction plus 3 fusion constraints per triplet.
		want := 1 + 3*len(fused.Triplets)
		if len(asserts) != want {
			t.Fatalf("asserts = %d want %d\n%s", len(asserts), want, smtlib.Print(fused.Script))
		}
		if top, ok := asserts[0].(*ast.App); !ok || top.Op != ast.OpOr {
			t.Fatalf("first assert is not a disjunction: %s", ast.Print(asserts[0]))
		}
	}
}

// TestUnsatFusionNeverSat checks Proposition 2 empirically: the
// reference solver must never find a model for an UNSAT-fused formula.
func TestUnsatFusionNeverSat(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := solver.NewReference()
	for iter := 0; iter < 60; iter++ {
		fused, err := Fuse(unsatSeed1(t), unsatSeed2(t), rng, Options{MaxPairs: 2})
		if err != nil {
			t.Fatal(err)
		}
		out := s.SolveScript(fused.Script)
		if out.Result == solver.ResSat {
			t.Fatalf("iter %d: unsat-fused formula decided sat:\n%s",
				iter, smtlib.Print(fused.Script))
		}
	}
}

// TestSatFusionSolvable: additive fusions should usually be decided sat
// by the reference solver (the inliner collapses them).
func TestSatFusionSolvableAdditive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := solver.NewReference()
	solved := 0
	const n = 50
	for iter := 0; iter < n; iter++ {
		fused, err := Fuse(paperPhi1(t), paperPhi2(t), rng, Options{Table: AdditiveTable})
		if err != nil {
			t.Fatal(err)
		}
		out := s.SolveScript(fused.Script)
		if out.Result == solver.ResUnsat {
			t.Fatalf("iter %d: sat-fused formula decided unsat:\n%s",
				iter, smtlib.Print(fused.Script))
		}
		if out.Result == solver.ResSat {
			solved++
		}
	}
	if solved < n*3/4 {
		t.Errorf("only %d/%d additive sat fusions decided", solved, n)
	}
}

func TestMixedFusion(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	satSide := seedFromSrc(t, `
(declare-fun a () Real)
(assert (> a 1.0))
`, StatusSat, eval.Model{"a": eval.Real(2, 1)})
	sawSat, sawUnsat := false, false
	for iter := 0; iter < 50; iter++ {
		fused, err := Fuse(satSide, unsatSeed2(t), rng, Options{})
		if err != nil {
			t.Fatal(err)
		}
		switch fused.Mode {
		case ModeMixedSatDisj:
			sawSat = true
			if fused.Oracle != StatusSat {
				t.Fatal("mixed disjunction must be sat")
			}
			for _, a := range fused.Script.Asserts() {
				ok, err := eval.Bool(a, fused.Witness)
				if err != nil || !ok {
					t.Fatalf("mixed witness fails: %v on %s", err, ast.Print(a))
				}
			}
		case ModeMixedUnsatConj:
			sawUnsat = true
			if fused.Oracle != StatusUnsat {
				t.Fatal("mixed conjunction must be unsat")
			}
		default:
			t.Fatalf("unexpected mode %v", fused.Mode)
		}
	}
	if !sawSat || !sawUnsat {
		t.Error("both mixed modes should occur over 50 runs")
	}
}

func TestStringFusion(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s1 := seedFromSrc(t, `
(declare-fun a () String)
(assert (= (str.len a) 2))
`, StatusSat, eval.Model{"a": eval.StrV("ab")})
	s2 := seedFromSrc(t, `
(declare-fun b () String)
(assert (str.prefixof "x" b))
`, StatusSat, eval.Model{"b": eval.StrV("xy")})
	for iter := 0; iter < 200; iter++ {
		fused, err := Fuse(s1, s2, rng, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range fused.Script.Asserts() {
			ok, err := eval.Bool(a, fused.Witness)
			if err != nil || !ok {
				t.Fatalf("iter %d: string fusion witness fails on %s\n%s",
					iter, ast.Print(a), smtlib.Print(fused.Script))
			}
		}
		if !strings.Contains(fused.Script.Logic(), "S") {
			t.Errorf("logic = %q", fused.Script.Logic())
		}
	}
}

func TestRenameApart(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// Both seeds use the name "x": φ2's must be renamed.
	s1 := paperPhi1(t)
	s2 := seedFromSrc(t, `
(declare-fun x () Int)
(assert (< x 0))
`, StatusSat, eval.Model{"x": eval.Int(-5)})
	fused, err := Fuse(s1, s2, rng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]int{}
	for _, d := range fused.Script.Declarations() {
		names[d.Name]++
	}
	for n, c := range names {
		if c > 1 {
			t.Errorf("duplicate declaration %q", n)
		}
	}
	if _, ok := names["x_2"]; !ok {
		t.Errorf("renamed variable missing: %v", names)
	}
	// Witness still valid.
	for _, a := range fused.Script.Asserts() {
		ok, err := eval.Bool(a, fused.Witness)
		if err != nil || !ok {
			t.Fatalf("witness after rename fails on %s", ast.Print(a))
		}
	}
}

func TestNoFusablePair(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	boolOnly := seedFromSrc(t, `
(declare-fun p () Bool)
(assert p)
`, StatusSat, eval.Model{"p": eval.BoolV(true)})
	if _, err := Fuse(boolOnly, boolOnly, rng, Options{}); err != ErrNoFusablePair {
		t.Fatalf("err = %v", err)
	}
	// Sort mismatch: Int vs String.
	intSeed := paperPhi1(t)
	strSeed := seedFromSrc(t, `
(declare-fun s () String)
(assert (= s "q"))
`, StatusSat, eval.Model{"s": eval.StrV("q")})
	if _, err := Fuse(intSeed, strSeed, rng, Options{}); err != ErrNoFusablePair {
		t.Fatalf("err = %v", err)
	}
}

func TestMultiplicativeGuardAgainstZeroWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	// y's witness is 0: the multiplicative row cannot invert exactly
	// (z div y with y = 0), so fusion must fall back or reject — and
	// any produced witness must still be valid.
	s1 := seedFromSrc(t, `
(declare-fun x () Int)
(assert (> x 1))
`, StatusSat, eval.Model{"x": eval.Int(5)})
	s2 := seedFromSrc(t, `
(declare-fun y () Int)
(assert (< y 1))
`, StatusSat, eval.Model{"y": eval.Int(0)})
	for iter := 0; iter < 100; iter++ {
		fused, err := Fuse(s1, s2, rng, Options{Table: MultiplicativeTable})
		if err != nil {
			// Rejecting is acceptable when no row inverts exactly.
			continue
		}
		for _, a := range fused.Script.Asserts() {
			ok, evalErr := eval.Bool(a, fused.Witness)
			if evalErr != nil || !ok {
				t.Fatalf("iter %d: inexact multiplicative fusion slipped through:\n%s",
					iter, smtlib.Print(fused.Script))
			}
		}
	}
}

func TestFuseModeRequiresWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	noWitness := &Seed{Script: paperPhi1(t).Script, Status: StatusSat}
	if _, err := FuseMode(noWitness, paperPhi2(t), ModeSatConj, rng, Options{}); err == nil {
		t.Error("sat fusion without witness should fail")
	}
}

func TestReplaceProbExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	// ReplaceProb ~0: occurrences never replaced; formula still gains
	// the z declaration but asserts equal the concatenation.
	fused, err := Fuse(paperPhi1(t), paperPhi2(t), rng, Options{ReplaceProb: 1e-12, MaxPairs: 1})
	if err != nil {
		t.Fatal(err)
	}
	txt := smtlib.Print(fused.Script)
	if strings.Contains(txt, "z_fuse") && strings.Contains(txt, "(- z_fuse") {
		t.Errorf("unexpected inversion term with prob≈0:\n%s", txt)
	}
	// ReplaceProb ~1: every occurrence replaced.
	fused, err = Fuse(paperPhi1(t), paperPhi2(t), rng, Options{ReplaceProb: 0.999999, MaxPairs: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range fused.Script.Asserts() {
		for _, v := range ast.FreeVars(a) {
			if v.Name == "x" && ast.CountFreeOccurrences(a, "x") > 0 {
				// x may legitimately appear inside inversion terms of y's
				// substitution (ry references x), so only check φ1-side
				// comparison asserts that contain no z.
				_ = v
			}
		}
	}
	// Witness still valid in both extremes (checked for the second).
	for _, a := range fused.Script.Asserts() {
		ok, err := eval.Bool(a, fused.Witness)
		if err != nil || !ok {
			t.Fatalf("witness fails at prob≈1 on %s", ast.Print(a))
		}
	}
}

func TestTableAblationSubsets(t *testing.T) {
	if len(DefaultTable) != 11 {
		t.Errorf("DefaultTable rows = %d, want 11 (4 Int + 4 Real + 3 String)", len(DefaultTable))
	}
	if len(AdditiveTable) != 4 || len(MultiplicativeTable) != 4 || len(StringTable) != 3 {
		t.Errorf("ablation tables: add=%d mul=%d str=%d",
			len(AdditiveTable), len(MultiplicativeTable), len(StringTable))
	}
}

func TestFusedScriptParsesBack(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 50; iter++ {
		fused, err := Fuse(unsatSeed1(t), unsatSeed2(t), rng, Options{MaxPairs: 2})
		if err != nil {
			t.Fatal(err)
		}
		txt := smtlib.Print(fused.Script)
		if _, err := smtlib.ParseScript(txt); err != nil {
			t.Fatalf("fused script does not reparse: %v\n%s", err, txt)
		}
	}
}
