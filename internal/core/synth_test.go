package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ast"
	"repro/internal/eval"
)

func TestSynthesizeTableShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	table := SynthesizeTable(rng, 4)
	if len(table) != 12 {
		t.Fatalf("rows = %d want 12", len(table))
	}
	counts := map[ast.Sort]int{}
	for _, fn := range table {
		counts[fn.Sort]++
		if fn.Name == "" || fn.Make == nil {
			t.Errorf("malformed row %+v", fn)
		}
	}
	if counts[ast.SortInt] != 4 || counts[ast.SortReal] != 4 || counts[ast.SortString] != 4 {
		t.Errorf("per-sort counts: %v", counts)
	}
}

// Property: every synthesized instance inverts exactly under random
// witnesses (the verification contract the fusion engine relies on).
func TestQuickSynthesizedInversionExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	table := SynthesizeTable(rng, 6)
	f := func(xv, yv int64, pick uint8) bool {
		xv %= 100
		yv %= 100
		// Arithmetic rows.
		var intRows []FusionFn
		for _, fn := range table {
			if fn.Sort == ast.SortInt {
				intRows = append(intRows, fn)
			}
		}
		fn := intRows[int(pick)%len(intRows)]
		x := ast.NewVar("x", ast.SortInt)
		y := ast.NewVar("y", ast.SortInt)
		z := ast.NewVar("z", ast.SortInt)
		inst, _ := fn.Make(rng, x, y, z)
		witness := eval.Model{"x": eval.Int(xv), "y": eval.Int(yv)}
		zv, err := eval.Term(inst.apply, witness)
		if err != nil {
			return false
		}
		witness["z"] = zv
		rx, err := eval.Term(inst.invertX, witness)
		if err != nil || !eval.Equal(rx, eval.Int(xv)) {
			return false
		}
		ry, err := eval.Term(inst.invertY, witness)
		if err != nil || !eval.Equal(ry, eval.Int(yv)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickSynthesizedStringInversion(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	table := SynthesizeTable(rng, 6)
	var strRows []FusionFn
	for _, fn := range table {
		if fn.Sort == ast.SortString {
			strRows = append(strRows, fn)
		}
	}
	f := func(xRaw, yRaw string, pick uint8) bool {
		clampStr := func(s string) string {
			out := []byte{}
			for i := 0; i < len(s) && i < 5; i++ {
				out = append(out, "abc01"[int(s[i])%5])
			}
			return string(out)
		}
		xv, yv := clampStr(xRaw), clampStr(yRaw)
		fn := strRows[int(pick)%len(strRows)]
		x := ast.NewVar("x", ast.SortString)
		y := ast.NewVar("y", ast.SortString)
		z := ast.NewVar("z", ast.SortString)
		inst, _ := fn.Make(rng, x, y, z)
		witness := eval.Model{"x": eval.StrV(xv), "y": eval.StrV(yv)}
		zv, err := eval.Term(inst.apply, witness)
		if err != nil {
			return false
		}
		witness["z"] = zv
		rx, err := eval.Term(inst.invertX, witness)
		if err != nil || !eval.Equal(rx, eval.StrV(xv)) {
			return false
		}
		ry, err := eval.Term(inst.invertY, witness)
		if err != nil || !eval.Equal(ry, eval.StrV(yv)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Fusions using only synthesized tables keep the oracle: sat witnesses
// stay valid.
func TestSynthesizedTableFusion(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	table := SynthesizeTable(rng, 3)
	for iter := 0; iter < 100; iter++ {
		fused, err := Fuse(paperPhi1(t), paperPhi2(t), rng, Options{Table: table})
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range fused.Script.Asserts() {
			ok, err := eval.Bool(a, fused.Witness)
			if err != nil || !ok {
				t.Fatalf("iter %d: synthesized fusion witness fails on %s", iter, ast.Print(a))
			}
		}
	}
}
