package core

import (
	"fmt"
	"math/rand"

	"repro/internal/ast"
)

// FusionFn is one row of the paper's Figure 6: a fusion function
// together with its two variable inversion functions, parameterized by
// random coefficients. Make instantiates the row for concrete x, y, z.
type FusionFn struct {
	Name string
	Sort ast.Sort
	Make func(rng *rand.Rand, x, y, z *ast.Var) (instance, string)
}

// DefaultTable is the full Figure 6 table: four Int rows, four Real
// rows, and three String rows.
var DefaultTable = buildDefaultTable()

// AdditiveTable restricts the table to addition-based rows (used by the
// fusion-function ablation experiment).
var AdditiveTable = filterTable(func(name string) bool {
	switch name {
	case "int-add", "int-add-const", "real-add", "real-add-const":
		return true
	}
	return false
})

// MultiplicativeTable restricts the table to multiplication-based rows.
var MultiplicativeTable = filterTable(func(name string) bool {
	switch name {
	case "int-mul", "real-mul", "int-affine", "real-affine":
		return true
	}
	return false
})

// StringTable restricts the table to the String rows.
var StringTable = filterTable(func(name string) bool {
	switch name {
	case "str-concat-substr", "str-concat-replace", "str-concat-infix":
		return true
	}
	return false
})

func filterTable(keep func(string) bool) []FusionFn {
	var out []FusionFn
	for _, fn := range buildDefaultTable() {
		if keep(fn.Name) {
			out = append(out, fn)
		}
	}
	return out
}

func buildDefaultTable() []FusionFn {
	var table []FusionFn

	// --- Int rows ---
	table = append(table, FusionFn{
		Name: "int-add", Sort: ast.SortInt,
		Make: func(rng *rand.Rand, x, y, z *ast.Var) (instance, string) {
			// z = x + y; rx = z − y; ry = z − x.
			return instance{
				apply:   ast.Add(x, y),
				invertX: ast.Sub(z, y),
				invertY: ast.Sub(z, x),
			}, "z = x + y"
		},
	})
	table = append(table, FusionFn{
		Name: "int-add-const", Sort: ast.SortInt,
		Make: func(rng *rand.Rand, x, y, z *ast.Var) (instance, string) {
			c := ast.Int(int64(rng.Intn(199) - 99))
			// z = x + c + y; rx = z − c − y; ry = z − c − x.
			return instance{
				apply:   ast.Add(x, c, y),
				invertX: ast.Sub(z, c, y),
				invertY: ast.Sub(z, c, x),
			}, fmt.Sprintf("z = x + %s + y", ast.Print(c))
		},
	})
	table = append(table, FusionFn{
		Name: "int-mul", Sort: ast.SortInt,
		Make: func(rng *rand.Rand, x, y, z *ast.Var) (instance, string) {
			// z = x·y; rx = z div y; ry = z div x.
			return instance{
				apply:   ast.Mul(x, y),
				invertX: ast.MustApp(ast.OpIntDiv, z, y),
				invertY: ast.MustApp(ast.OpIntDiv, z, x),
			}, "z = x * y"
		},
	})
	table = append(table, FusionFn{
		Name: "int-affine", Sort: ast.SortInt,
		Make: func(rng *rand.Rand, x, y, z *ast.Var) (instance, string) {
			c1 := ast.Int(int64(1 + rng.Intn(9)))
			c2 := ast.Int(int64(1 + rng.Intn(9)))
			c3 := ast.Int(int64(rng.Intn(99) - 49))
			// z = c1·x + c2·y + c3;
			// rx = (z − c2·y − c3) div c1; ry = (z − c1·x − c3) div c2.
			return instance{
				apply:   ast.Add(ast.Mul(c1, x), ast.Mul(c2, y), c3),
				invertX: ast.MustApp(ast.OpIntDiv, ast.Sub(z, ast.Mul(c2, y), c3), c1),
				invertY: ast.MustApp(ast.OpIntDiv, ast.Sub(z, ast.Mul(c1, x), c3), c2),
			}, fmt.Sprintf("z = %s*x + %s*y + %s", ast.Print(c1), ast.Print(c2), ast.Print(c3))
		},
	})

	// --- Real rows ---
	table = append(table, FusionFn{
		Name: "real-add", Sort: ast.SortReal,
		Make: func(rng *rand.Rand, x, y, z *ast.Var) (instance, string) {
			return instance{
				apply:   ast.Add(x, y),
				invertX: ast.Sub(z, y),
				invertY: ast.Sub(z, x),
			}, "z = x + y"
		},
	})
	table = append(table, FusionFn{
		Name: "real-add-const", Sort: ast.SortReal,
		Make: func(rng *rand.Rand, x, y, z *ast.Var) (instance, string) {
			c := ast.Real(int64(rng.Intn(199)-99), int64(1+rng.Intn(4)))
			return instance{
				apply:   ast.Add(x, c, y),
				invertX: ast.Sub(z, c, y),
				invertY: ast.Sub(z, c, x),
			}, fmt.Sprintf("z = x + %s + y", ast.Print(c))
		},
	})
	table = append(table, FusionFn{
		Name: "real-mul", Sort: ast.SortReal,
		Make: func(rng *rand.Rand, x, y, z *ast.Var) (instance, string) {
			// z = x·y; rx = z/y; ry = z/x.
			return instance{
				apply:   ast.Mul(x, y),
				invertX: ast.MustApp(ast.OpRealDiv, z, y),
				invertY: ast.MustApp(ast.OpRealDiv, z, x),
			}, "z = x * y"
		},
	})
	table = append(table, FusionFn{
		Name: "real-affine", Sort: ast.SortReal,
		Make: func(rng *rand.Rand, x, y, z *ast.Var) (instance, string) {
			c1 := ast.Real(int64(1+rng.Intn(9)), 1)
			c2 := ast.Real(int64(1+rng.Intn(9)), 1)
			c3 := ast.Real(int64(rng.Intn(99)-49), 1)
			return instance{
				apply:   ast.Add(ast.Mul(c1, x), ast.Mul(c2, y), c3),
				invertX: ast.MustApp(ast.OpRealDiv, ast.Sub(z, ast.Mul(c2, y), c3), c1),
				invertY: ast.MustApp(ast.OpRealDiv, ast.Sub(z, ast.Mul(c1, x), c3), c2),
			}, fmt.Sprintf("z = %s*x + %s*y + %s", ast.Print(c1), ast.Print(c2), ast.Print(c3))
		},
	})

	// --- String rows ---
	strLen := func(t ast.Term) ast.Term { return ast.MustApp(ast.OpStrLen, t) }
	substr := func(s, i, n ast.Term) ast.Term { return ast.MustApp(ast.OpStrSubstr, s, i, n) }
	replace := func(s, t, u ast.Term) ast.Term { return ast.MustApp(ast.OpStrReplace, s, t, u) }

	table = append(table, FusionFn{
		Name: "str-concat-substr", Sort: ast.SortString,
		Make: func(rng *rand.Rand, x, y, z *ast.Var) (instance, string) {
			// z = x ++ y; rx = substr z 0 |x|; ry = substr z |x| |y|.
			return instance{
				apply:   ast.MustApp(ast.OpStrConcat, x, y),
				invertX: substr(z, ast.Int(0), strLen(x)),
				invertY: substr(z, strLen(x), strLen(y)),
			}, "z = x ++ y (substr inversion)"
		},
	})
	table = append(table, FusionFn{
		Name: "str-concat-replace", Sort: ast.SortString,
		Make: func(rng *rand.Rand, x, y, z *ast.Var) (instance, string) {
			// z = x ++ y; rx = substr z 0 |x|; ry = replace z x "".
			return instance{
				apply:   ast.MustApp(ast.OpStrConcat, x, y),
				invertX: substr(z, ast.Int(0), strLen(x)),
				invertY: replace(z, x, ast.Str("")),
			}, "z = x ++ y (replace inversion)"
		},
	})
	table = append(table, FusionFn{
		Name: "str-concat-infix", Sort: ast.SortString,
		Make: func(rng *rand.Rand, x, y, z *ast.Var) (instance, string) {
			const alphabet = "abcxyz01"
			n := 1 + rng.Intn(3)
			buf := make([]byte, n)
			for i := range buf {
				buf[i] = alphabet[rng.Intn(len(alphabet))]
			}
			c := ast.Str(string(buf))
			// z = x ++ c ++ y; rx = substr z 0 |x|;
			// ry = replace (replace z x "") c "".
			return instance{
				apply:   ast.MustApp(ast.OpStrConcat, x, c, y),
				invertX: substr(z, ast.Int(0), strLen(x)),
				invertY: replace(replace(z, x, ast.Str("")), c, ast.Str("")),
			}, fmt.Sprintf("z = x ++ %s ++ y", ast.Print(c))
		},
	})

	return table
}
