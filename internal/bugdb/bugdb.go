// Package bugdb is the defect catalogue for the two simulated solvers
// under test. It substitutes for the Z3 and CVC4 binaries (plus their
// GitHub issue trackers) in the paper's evaluation: each catalogue
// entry ties an injected defect site (implemented in internal/solver)
// to the metadata the paper's figures aggregate over — solver, bug
// type, logic, year introduced, and affected releases — and versioned
// solver-under-test configurations enable exactly the defects present
// in a given release.
package bugdb

import (
	"fmt"

	"repro/internal/coverage"
	"repro/internal/solver"
)

// SUT identifies a simulated solver under test.
type SUT string

const (
	// Z3Sim plays the role of Z3 (the buggier, feature-rich solver).
	Z3Sim SUT = "z3sim"
	// CVC4Sim plays the role of CVC4 (fewer but "major" defects).
	CVC4Sim SUT = "cvc4sim"
)

// SUTs lists both solvers under test.
var SUTs = []SUT{Z3Sim, CVC4Sim}

// BugType classifies a defect per the paper's Figure 8b.
type BugType string

const (
	Soundness   BugType = "soundness"
	Crash       BugType = "crash"
	Performance BugType = "performance"
	UnknownType BugType = "unknown"
	// InvalidModel marks defects whose sat verdict is right but whose
	// reported model does not satisfy the input formula. Invisible to
	// the paper's equisatisfiability oracle; found only by the
	// harness's model-validation oracle.
	InvalidModel BugType = "invalid-model"
	// Disagreement marks a cross-check finding: a backend's definite
	// verdict contradicts the known-status oracle. Backend findings are
	// never catalogued defects — the type exists for triage labels.
	Disagreement BugType = "disagreement"
	// Garbled marks a backend that completed but produced no parseable
	// verdict (truncated, nonsense, or persistently empty output).
	Garbled BugType = "garbled"
	// MajorityDisagreement marks a consensus-oracle finding: a voter's
	// definite verdict was outvoted by the quorum of the other voters on
	// an unknown-status input.
	MajorityDisagreement BugType = "majority-disagreement"
	// MetamorphicViolation marks a consensus-oracle finding: one
	// solver's verdicts on a metamorphic pair (original plus a variant
	// with a known sat/unsat-preserving relation) contradict the pair
	// relation — a self-inconsistency that needs no ground truth.
	MetamorphicViolation BugType = "metamorphic-violation"
)

// Entry is one catalogue row.
type Entry struct {
	ID    solver.Defect
	SUT   SUT
	Type  BugType
	Logic string // primary logic the defect surfaces in (Figure 8c)
	Year  int    // year introduced (Figures 9–10)
	// IntroducedIn is the index into Releases(SUT) of the first release
	// containing the defect; the defect affects every release from
	// there through trunk.
	IntroducedIn int
	Label        string // issue-tracker label ("major" for cvc4sim soundness)
	Description  string
}

// releases per SUT, oldest first, ending in "trunk" (the paper's
// Figure 10 x-axes).
var releases = map[SUT][]string{
	Z3Sim:   {"4.5.0", "4.6.0", "4.7.1", "4.8.1", "4.8.3", "4.8.4", "4.8.5", "trunk"},
	CVC4Sim: {"1.5", "1.6", "1.7", "trunk"},
}

// releaseYear maps each release to its (simulated) release year.
var releaseYear = map[SUT]map[string]int{
	Z3Sim: {
		"4.5.0": 2016, "4.6.0": 2017, "4.7.1": 2018, "4.8.1": 2018,
		"4.8.3": 2019, "4.8.4": 2019, "4.8.5": 2019, "trunk": 2019,
	},
	CVC4Sim: {"1.5": 2017, "1.6": 2018, "1.7": 2019, "trunk": 2019},
}

// Releases returns the SUT's release train, oldest first.
func Releases(s SUT) []string { return releases[s] }

// ReleaseYear returns the year of a release.
func ReleaseYear(s SUT, release string) int { return releaseYear[s][release] }

// Catalog is the full defect catalogue.
var Catalog = []Entry{
	// --- z3sim soundness ---
	{solver.DefStrReplaceEmptyPat, Z3Sim, Soundness, "QF_S", 2018, 2, "", "str.replace with empty pattern drops the prepended replacement"},
	{solver.DefStrAtOutOfRange, Z3Sim, Soundness, "QF_S", 2019, 5, "", "str.at at index = length returns the last character instead of \"\""},
	{solver.DefStrSuffixEmpty, Z3Sim, Soundness, "QF_S", 2017, 1, "", "suffixof with empty prefix folds to false (prefixof/suffixof confusion)"},
	{solver.DefStrContainsSelf, Z3Sim, Soundness, "QF_S", 2019, 6, "", "contains(x, x) folds to false"},
	{solver.DefIndexOfEmptyNeedle, Z3Sim, Soundness, "QF_S", 2018, 3, "", "indexof with empty needle ignores offset and range checks"},
	{solver.DefConcatAssocDrop, Z3Sim, Soundness, "QF_SLIA", 2019, 6, "", "concat flattening drops an operand on deep nests"},
	{solver.DefRegexMinLenStrict, Z3Sim, Soundness, "QF_S", 2019, 4, "", "regex length lower bound emitted strictly (off by one)"},
	{solver.DefRealDivCancel, Z3Sim, Soundness, "QF_NRA", 2016, 0, "", "(* (/ a b) b) cancelled without a b≠0 guard"},
	{solver.DefDivMulThrough, Z3Sim, Soundness, "NRA", 2017, 1, "", "comparison over a division multiplied through without sign analysis"},
	{solver.DefSubstrConcatPrefix, Z3Sim, Soundness, "QF_S", 2018, 3, "", "substr prefix extraction ignores whose length bounds the slice"},
	{solver.DefMulSignFold, Z3Sim, Soundness, "NRA", 2016, 0, "", "square-sign reasoning applied to arbitrary products"},
	{solver.DefIteLiftSwap, Z3Sim, Soundness, "QF_NRA", 2017, 1, "", "ite lifting swaps branches when the condition divides"},
	{solver.DefQuantNegPush, Z3Sim, Soundness, "NRA", 2016, 0, "", "negation pushed over exists keeps the quantifier kind"},
	{solver.DefGeZeroStrengthen, Z3Sim, Soundness, "QF_NRA", 2019, 5, "", "bound normalizer strengthens ≥ 0 to > 0 after division rewriting"},
	{solver.DefAbsNegFold, Z3Sim, Soundness, "NIA", 2018, 3, "", "abs of a negative literal keeps its sign"},
	{solver.DefIntDivNegRound, Z3Sim, Soundness, "NIA", 2017, 1, "", "constant folding of div with negative divisor truncates instead of Euclidean rounding"},
	{solver.DefLeGuardCollapse, Z3Sim, Soundness, "QF_NRA", 2019, 5, "", "conjunction simplifier drops a distinct guard sitting next to a non-strict bound"},
	// --- z3sim invalid-model ---
	{solver.DefModelStrLenTruncate, Z3Sim, InvalidModel, "QF_S", 2019, 6, "", "string witness truncated at the length-abstraction boundary in the reported model"},
	// --- z3sim crash ---
	{solver.DefCrashDeepNonlinear, Z3Sim, Crash, "NRA", 2018, 3, "", "rewriter stack overflow on deeply nested nonlinear terms"},
	{solver.DefCrashSelfDivision, Z3Sim, Crash, "QF_NRA", 2019, 5, "", "assertion failure rewriting self-division of compound terms"},
	{solver.DefCrashRangeBounds, Z3Sim, Crash, "QF_S", 2019, 6, "", "assertion failure on multi-character re.range bounds"},
	// --- z3sim performance ---
	{solver.DefPerfBnBBlowup, Z3Sim, Performance, "QF_NIA", 2019, 6, "", "branch-and-bound blowup on wide nonlinear integer problems"},
	{solver.DefHangStringsDFS, Z3Sim, Performance, "QF_S", 2019, 5, "", "string-search DFS hangs on wide fused variable frontiers"},

	// --- cvc4sim soundness (all labelled major, as in the paper) ---
	{solver.DefStrToIntEmpty, CVC4Sim, Soundness, "QF_S", 2019, 2, "major", "missed corner case in the str.to_int reduction for the empty string"},
	{solver.DefReplaceConcatDrop, CVC4Sim, Soundness, "QF_S", 2019, 2, "major", "replace-in-concat simplification drops the leading operand for any pattern"},
	{solver.DefReplaceVarNoop, CVC4Sim, Soundness, "QF_S", 2018, 1, "major", "replace with variable pattern in a variable subject assumed to be a no-op"},
	{solver.DefStrSubstrNegLen, CVC4Sim, Soundness, "QF_SLIA", 2018, 1, "major", "substr with negative length treated as rest-of-string"},
	{solver.DefStrLenConcatDrop, CVC4Sim, Soundness, "QF_SLIA", 2017, 0, "major", "length of n-ary concat drops the last operand"},
	{solver.DefModZero, CVC4Sim, Soundness, "QF_NIA", 2019, 2, "major", "mod-by-zero folded inconsistently with the model evaluator"},
	{solver.DefIntDivMulCancel, CVC4Sim, Soundness, "QF_NIA", 2019, 2, "major", "(div (* a b) b) cancelled without a b≠0 guard (the Figure 3 bug class)"},
	{solver.DefDistinctPairDrop, CVC4Sim, Soundness, "QF_LIA", 2019, 3, "major", "pairwise distinct expansion drops the final pair"},
	{solver.DefLenAbsPrefixFlip, CVC4Sim, Soundness, "QF_S", 2019, 3, "major", "prefix length abstraction emitted with flipped relation"},
	{solver.DefBoundConflictEq, CVC4Sim, Soundness, "QF_LRA", 2019, 3, "major", "bogus bound-conflict detection on touching bounds (regression)"},
	// --- cvc4sim invalid-model ---
	{solver.DefModelStaleSimplex, CVC4Sim, InvalidModel, "QF_LIA", 2019, 2, "major", "stale simplex assignment leaked into the reported model"},
	{solver.DefModelRealFloor, CVC4Sim, InvalidModel, "QF_LRA", 2019, 3, "", "model printer floors rational assignments to integers"},
	// --- cvc4sim crash ---
	{solver.DefCrashBigSubstr, CVC4Sim, Crash, "QF_SLIA", 2018, 1, "", "substr index overflowing an internal length type"},
	// --- cvc4sim performance ---
	{solver.DefPerfRegexBlowup, CVC4Sim, Performance, "QF_S", 2019, 2, "", "regex derivative memoization missing on deep expressions"},
	{solver.DefHangSimplexCycle, CVC4Sim, Performance, "QF_LIA", 2018, 1, "", "simplex cycling on wide linear integer problems (pivot loop never terminates)"},
}

// Find returns the catalogue entry for a defect ID.
func Find(id solver.Defect) (Entry, bool) {
	for _, e := range Catalog {
		if e.ID == id {
			return e, true
		}
	}
	return Entry{}, false
}

// ForSUT returns the catalogue entries of one solver under test.
func ForSUT(s SUT) []Entry {
	var out []Entry
	for _, e := range Catalog {
		if e.SUT == s {
			out = append(out, e)
		}
	}
	return out
}

// releaseIndex returns the index of a release in the SUT's train.
func releaseIndex(s SUT, release string) (int, error) {
	for i, r := range releases[s] {
		if r == release {
			return i, nil
		}
	}
	return 0, fmt.Errorf("bugdb: unknown release %q of %s", release, s)
}

// DefectsIn returns the defect set present in a given release of the
// SUT (every defect introduced at or before that release).
func DefectsIn(s SUT, release string) (map[solver.Defect]bool, error) {
	idx, err := releaseIndex(s, release)
	if err != nil {
		return nil, err
	}
	out := map[solver.Defect]bool{}
	for _, e := range ForSUT(s) {
		if e.IntroducedIn <= idx {
			out[e.ID] = true
		}
	}
	return out, nil
}

// Affects reports whether a defect is present in the given release.
func Affects(id solver.Defect, release string) bool {
	e, ok := Find(id)
	if !ok {
		return false
	}
	idx, err := releaseIndex(e.SUT, release)
	if err != nil {
		return false
	}
	return e.IntroducedIn <= idx
}

// NewSolver builds the simulated solver under test for a SUT release.
func NewSolver(s SUT, release string, cov *coverage.Tracker) (*solver.Solver, error) {
	defects, err := DefectsIn(s, release)
	if err != nil {
		return nil, err
	}
	return solver.New(solver.Config{Defects: defects, Coverage: cov}), nil
}

// NewSolverWithLimits is NewSolver with explicit solver limits — the
// harness uses it to impose a campaign-wide fuel deadline.
func NewSolverWithLimits(s SUT, release string, cov *coverage.Tracker, lim solver.Limits) (*solver.Solver, error) {
	defects, err := DefectsIn(s, release)
	if err != nil {
		return nil, err
	}
	return solver.New(solver.Config{Defects: defects, Coverage: cov, Limits: lim}), nil
}

// NewTrunkSolver builds the trunk configuration (all defects).
func NewTrunkSolver(s SUT, cov *coverage.Tracker) *solver.Solver {
	sol, err := NewSolver(s, "trunk", cov)
	if err != nil {
		panic(err) // trunk always exists
	}
	return sol
}

// HistoricSoundnessPerYear is the paper's Figure 9 survey data: the
// number of soundness bugs reported on each solver's issue tracker per
// year (Z3 since its 2015 GitHub release, CVC4 since its 2010 tracker
// migration).
var HistoricSoundnessPerYear = map[SUT]map[int]int{
	Z3Sim:   {2015: 15, 2016: 18, 2017: 22, 2018: 28, 2019: 63},
	CVC4Sim: {2010: 2, 2011: 9, 2012: 1, 2013: 9, 2014: 3, 2015: 1, 2016: 0, 2017: 2, 2018: 13, 2019: 2},
}

// HistoricTotals is the paper's reported totals for RQ2: 146 Z3
// soundness bugs (2015–2019) and 42–43 CVC4 soundness bugs (2010–2019).
func HistoricTotals(s SUT) int {
	total := 0
	for _, n := range HistoricSoundnessPerYear[s] {
		total += n
	}
	return total
}
