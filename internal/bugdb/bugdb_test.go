package bugdb

import (
	"testing"

	"repro/internal/solver"
)

func TestCatalogConsistency(t *testing.T) {
	seen := map[solver.Defect]bool{}
	implemented := map[solver.Defect]bool{}
	for _, d := range solver.AllDefects {
		implemented[d] = true
	}
	for _, e := range Catalog {
		if seen[e.ID] {
			t.Errorf("duplicate catalogue entry %s", e.ID)
		}
		seen[e.ID] = true
		if !implemented[e.ID] {
			t.Errorf("catalogue entry %s has no implementation site", e.ID)
		}
		if e.SUT != Z3Sim && e.SUT != CVC4Sim {
			t.Errorf("%s: bad SUT %q", e.ID, e.SUT)
		}
		rs := Releases(e.SUT)
		if e.IntroducedIn < 0 || e.IntroducedIn >= len(rs) {
			t.Errorf("%s: IntroducedIn %d out of range", e.ID, e.IntroducedIn)
		}
		if e.Logic == "" || e.Description == "" {
			t.Errorf("%s: missing metadata", e.ID)
		}
		if ReleaseYear(e.SUT, rs[e.IntroducedIn]) < e.Year-1 {
			// A defect cannot be introduced in a release older than its
			// year (1-year slack for release trains).
			t.Errorf("%s: year %d inconsistent with release %s", e.ID, e.Year, rs[e.IntroducedIn])
		}
	}
	// Every implemented defect is catalogued.
	for _, d := range solver.AllDefects {
		if !seen[d] {
			t.Errorf("implemented defect %s missing from catalogue", d)
		}
	}
}

func TestShapeMatchesPaper(t *testing.T) {
	// The paper's headline shape: z3sim has clearly more defects than
	// cvc4sim; soundness dominates; every cvc4sim soundness defect is
	// labelled major.
	z3, cvc4 := ForSUT(Z3Sim), ForSUT(CVC4Sim)
	if len(z3) <= len(cvc4) {
		t.Errorf("z3sim (%d) should have more defects than cvc4sim (%d)", len(z3), len(cvc4))
	}
	countType := func(es []Entry, ty BugType) int {
		n := 0
		for _, e := range es {
			if e.Type == ty {
				n++
			}
		}
		return n
	}
	all := append(append([]Entry{}, z3...), cvc4...)
	if s := countType(all, Soundness); s*2 < len(all) {
		t.Errorf("soundness defects (%d) should be the majority of %d", s, len(all))
	}
	for _, e := range cvc4 {
		if e.Type == Soundness && e.Label != "major" {
			t.Errorf("cvc4sim soundness defect %s not labelled major", e.ID)
		}
	}
}

func TestDefectsInMonotone(t *testing.T) {
	for _, s := range SUTs {
		prev := -1
		for _, r := range Releases(s) {
			ds, err := DefectsIn(s, r)
			if err != nil {
				t.Fatal(err)
			}
			if len(ds) < prev {
				t.Errorf("%s %s: defect count decreased", s, r)
			}
			prev = len(ds)
		}
		trunk, _ := DefectsIn(s, "trunk")
		if len(trunk) != len(ForSUT(s)) {
			t.Errorf("%s trunk should contain all defects", s)
		}
	}
	if _, err := DefectsIn(Z3Sim, "9.9.9"); err == nil {
		t.Error("unknown release accepted")
	}
}

func TestAffects(t *testing.T) {
	// DefRealDivCancel is introduced at index 0: affects every release.
	for _, r := range Releases(Z3Sim) {
		if !Affects(solver.DefRealDivCancel, r) {
			t.Errorf("DefRealDivCancel should affect %s", r)
		}
	}
	// DefStrContainsSelf introduced at 4.8.4 (index 6).
	if Affects(solver.DefStrContainsSelf, "4.5.0") {
		t.Error("DefStrContainsSelf should not affect 4.5.0")
	}
	if !Affects(solver.DefStrContainsSelf, "trunk") {
		t.Error("DefStrContainsSelf should affect trunk")
	}
	if Affects(solver.Defect("no-such"), "trunk") {
		t.Error("unknown defect should not affect anything")
	}
}

func TestNewSolverConfigurations(t *testing.T) {
	sol, err := NewSolver(CVC4Sim, "1.5", nil)
	if err != nil || sol == nil {
		t.Fatalf("NewSolver: %v", err)
	}
	trunk := NewTrunkSolver(Z3Sim, nil)
	if trunk == nil {
		t.Fatal("trunk solver nil")
	}
	if _, err := NewSolver(Z3Sim, "1.5", nil); err == nil {
		t.Error("cross-SUT release accepted")
	}
}

func TestHistoricData(t *testing.T) {
	if got := HistoricTotals(Z3Sim); got != 146 {
		t.Errorf("Z3 historic total = %d, want 146 (paper RQ2)", got)
	}
	if got := HistoricTotals(CVC4Sim); got != 42 {
		t.Errorf("CVC4 historic total = %d, want 42 (paper RQ2)", got)
	}
	if HistoricSoundnessPerYear[Z3Sim][2019] != 63 {
		t.Error("Figure 9 Z3 2019 bar should be 63")
	}
}

func TestFind(t *testing.T) {
	e, ok := Find(solver.DefStrToIntEmpty)
	if !ok || e.SUT != CVC4Sim || e.Label != "major" {
		t.Errorf("Find(DefStrToIntEmpty) = %+v, %v", e, ok)
	}
	if _, ok := Find(solver.Defect("nope")); ok {
		t.Error("Find should fail on unknown defect")
	}
}
