// Package reduce shrinks bug-triggering SMT-LIB scripts, standing in
// for C-Reduce in the paper's workflow: delta debugging over the assert
// list, structural term shrinking, and the paper's simplifying pretty
// printer (flatten same-operator nests, drop neutral elements). The
// caller supplies the "interestingness" predicate (typically: the same
// defect still fires with the same wrong result).
package reduce

import (
	"math/big"

	"repro/internal/ast"
	"repro/internal/smtlib"
)

// Interesting reports whether a candidate script still exhibits the
// behaviour being isolated. It must be safe to call on any well-formed
// shrink of the original script.
type Interesting func(*smtlib.Script) bool

// Options bounds the reduction.
type Options struct {
	// MaxChecks bounds the number of Interesting evaluations (default
	// 2000).
	MaxChecks int
}

// Reduce shrinks the script while it stays interesting. The input
// script must itself be interesting; Reduce returns the smallest
// interesting shrink found — every returned script satisfies the
// predicate.
func Reduce(s *smtlib.Script, interesting Interesting, opts Options) *smtlib.Script {
	if opts.MaxChecks == 0 {
		opts.MaxChecks = 2000
	}
	r := &reducer{interesting: interesting, budget: opts.MaxChecks}
	cur := s.Clone()
	for {
		next, changed := r.pass(cur)
		if !changed || r.budget <= 0 {
			return r.finish(next)
		}
		cur = next
	}
}

// finish applies the pretty printer and confirms the result still
// satisfies the predicate: flattening and neutral-element dropping
// preserve semantics but not syntax, and the predicate may be
// sensitive to the exact shape (a parser defect, a text match). When
// the prettified script fails the check — or the budget is exhausted
// before it can run — the verified shrink wins.
func (r *reducer) finish(s *smtlib.Script) *smtlib.Script {
	pretty := Prettify(s)
	if smtlib.Print(pretty) == smtlib.Print(s) || r.check(pretty) {
		return pretty
	}
	return s
}

type reducer struct {
	interesting Interesting
	budget      int
}

func (r *reducer) check(s *smtlib.Script) bool {
	if r.budget <= 0 {
		return false
	}
	r.budget--
	return r.interesting(s)
}

// pass runs one round of all shrink strategies, returning the improved
// script and whether anything changed.
func (r *reducer) pass(s *smtlib.Script) (*smtlib.Script, bool) {
	changed := false
	if next, ok := r.dropAsserts(s); ok {
		s = next
		changed = true
	}
	if next, ok := r.shrinkTerms(s); ok {
		s = next
		changed = true
	}
	if next, ok := r.dropUnusedDecls(s); ok {
		s = next
		changed = true
	}
	return s, changed
}

// dropAsserts removes asserts one at a time (repeatedly) while the
// script stays interesting.
func (r *reducer) dropAsserts(s *smtlib.Script) (*smtlib.Script, bool) {
	changed := false
	for i := 0; i < len(s.Commands); i++ {
		if _, ok := s.Commands[i].(*smtlib.Assert); !ok {
			continue
		}
		cand := s.Clone()
		cand.Commands = append(cand.Commands[:i:i], cand.Commands[i+1:]...)
		if r.check(cand) {
			s = cand
			changed = true
			i--
		}
	}
	return s, changed
}

// dropUnusedDecls removes declarations of variables that no longer
// occur in any assert.
func (r *reducer) dropUnusedDecls(s *smtlib.Script) (*smtlib.Script, bool) {
	used := map[string]bool{}
	for _, a := range s.Asserts() {
		for _, v := range ast.FreeVars(a) {
			used[v.Name] = true
		}
	}
	changed := false
	for i := 0; i < len(s.Commands); i++ {
		d, ok := s.Commands[i].(*smtlib.DeclareFun)
		if !ok || used[d.Name] {
			continue
		}
		cand := s.Clone()
		cand.Commands = append(cand.Commands[:i:i], cand.Commands[i+1:]...)
		if r.check(cand) {
			s = cand
			changed = true
			i--
		}
	}
	return s, changed
}

// shrinkTerms tries structural shrinks on each assert: replacing a
// subterm by a same-sort child (hoisting), by a trivial literal, or —
// for boolean subterms — by true.
func (r *reducer) shrinkTerms(s *smtlib.Script) (*smtlib.Script, bool) {
	changed := false
	// Reserve half the remaining budget for the other strategies: each
	// accepted shrink restarts candidate enumeration, so an unbounded
	// inner loop can burn every remaining check here and starve
	// dropUnusedDecls, leaving dead declarations in the final script.
	// The outer pass loop re-enters with a fresh reservation, so
	// shrinking still converges when the budget allows.
	floor := r.budget / 2
	for idx, c := range s.Commands {
		a, ok := c.(*smtlib.Assert)
		if !ok {
			continue
		}
		term := a.Term
		improved := true
		for improved && r.budget > floor {
			improved = false
			for _, cand := range shrinkCandidates(term) {
				if r.budget <= floor {
					break
				}
				candScript := s.Clone()
				candScript.Commands[idx] = &smtlib.Assert{Term: cand}
				if r.check(candScript) {
					term = cand
					s = candScript
					changed = true
					improved = true
					break
				}
			}
		}
	}
	return s, changed
}

// shrinkCandidates enumerates one-step shrinks of a term, smallest
// first.
func shrinkCandidates(t ast.Term) []ast.Term {
	var out []ast.Term
	var walk func(path []int)
	walk = func(path []int) {
		sub := subtermAt(t, path)
		app, isApp := sub.(*ast.App)
		if isApp {
			// Hoist a same-sort argument.
			for _, arg := range app.Args {
				if arg.Sort() == app.Sort() {
					if cand, ok := replaceAt(t, path, arg); ok {
						out = append(out, cand)
					}
				}
			}
			// Replace by a trivial literal.
			if lit := trivialLiteral(app.Sort()); lit != nil && !ast.Equal(sub, lit) {
				if cand, ok := replaceAt(t, path, lit); ok {
					out = append(out, cand)
				}
			}
			for i := range app.Args {
				walk(append(append([]int{}, path...), i))
			}
			return
		}
		if q, isQ := sub.(*ast.Quant); isQ {
			_ = q
			walk(append(append([]int{}, path...), 0))
		}
	}
	walk(nil)
	return out
}

func trivialLiteral(s ast.Sort) ast.Term {
	switch s {
	case ast.SortBool:
		return ast.True
	case ast.SortInt:
		return ast.Int(0)
	case ast.SortReal:
		return ast.RealBig(new(big.Rat))
	case ast.SortString:
		return ast.Str("")
	default:
		return nil
	}
}

// subtermAt returns the subterm at a child-index path.
func subtermAt(t ast.Term, path []int) ast.Term {
	for _, i := range path {
		switch n := t.(type) {
		case *ast.App:
			t = n.Args[i]
		case *ast.Quant:
			t = n.Body
		default:
			return t
		}
	}
	return t
}

// replaceAt rebuilds the term with the subterm at path replaced. It
// reports false when the replacement would be ill-sorted.
func replaceAt(t ast.Term, path []int, repl ast.Term) (ast.Term, bool) {
	if len(path) == 0 {
		if t.Sort() != repl.Sort() {
			return nil, false
		}
		return repl, true
	}
	switch n := t.(type) {
	case *ast.App:
		i := path[0]
		sub, ok := replaceAt(n.Args[i], path[1:], repl)
		if !ok {
			return nil, false
		}
		args := make([]ast.Term, len(n.Args))
		copy(args, n.Args)
		args[i] = sub
		out, err := ast.NewApp(n.Op, args...)
		if err != nil {
			return nil, false
		}
		return out, true
	case *ast.Quant:
		sub, ok := replaceAt(n.Body, path[1:], repl)
		if !ok {
			return nil, false
		}
		q, err := ast.NewQuant(n.Forall, n.Bound, sub)
		if err != nil {
			return nil, false
		}
		return q, true
	default:
		return nil, false
	}
}

// Prettify applies the paper's pretty-printer transformations: flatten
// nests of the same associative operator and drop additions and
// multiplications with neutral elements. It preserves semantics.
func Prettify(s *smtlib.Script) *smtlib.Script {
	out := s.Clone()
	for i, c := range out.Commands {
		if a, ok := c.(*smtlib.Assert); ok {
			out.Commands[i] = &smtlib.Assert{Term: prettifyTerm(a.Term)}
		}
	}
	return out
}

func prettifyTerm(t ast.Term) ast.Term {
	return ast.Transform(t, func(n ast.Term) ast.Term {
		app, ok := n.(*ast.App)
		if !ok {
			return n
		}
		switch app.Op {
		case ast.OpAnd, ast.OpOr, ast.OpAdd, ast.OpMul, ast.OpStrConcat:
			flat := make([]ast.Term, 0, len(app.Args))
			changed := false
			for _, a := range app.Args {
				if sub, ok := a.(*ast.App); ok && sub.Op == app.Op {
					flat = append(flat, sub.Args...)
					changed = true
					continue
				}
				flat = append(flat, a)
			}
			// Drop neutral elements.
			kept := flat[:0]
			for _, a := range flat {
				if isNeutral(app.Op, a) && len(flat) > 1 {
					changed = true
					continue
				}
				kept = append(kept, a)
			}
			if !changed {
				return n
			}
			if len(kept) == 0 {
				return neutralTerm(app.Op, app.Sort())
			}
			if len(kept) == 1 {
				return kept[0]
			}
			return ast.MustApp(app.Op, kept...)
		}
		return n
	})
}

func isNeutral(op ast.Op, t ast.Term) bool {
	switch op {
	case ast.OpAnd:
		b, ok := t.(*ast.BoolLit)
		return ok && b.V
	case ast.OpOr:
		b, ok := t.(*ast.BoolLit)
		return ok && !b.V
	case ast.OpAdd:
		switch n := t.(type) {
		case *ast.IntLit:
			return n.V.Sign() == 0
		case *ast.RealLit:
			return n.V.Sign() == 0
		}
	case ast.OpMul:
		switch n := t.(type) {
		case *ast.IntLit:
			return n.V.IsInt64() && n.V.Int64() == 1
		case *ast.RealLit:
			return n.V.Cmp(big.NewRat(1, 1)) == 0
		}
	case ast.OpStrConcat:
		sl, ok := t.(*ast.StrLit)
		return ok && sl.V == ""
	}
	return false
}

func neutralTerm(op ast.Op, sort ast.Sort) ast.Term {
	switch op {
	case ast.OpAnd:
		return ast.True
	case ast.OpOr:
		return ast.False
	case ast.OpAdd:
		if sort == ast.SortReal {
			return ast.RealBig(new(big.Rat))
		}
		return ast.Int(0)
	case ast.OpMul:
		if sort == ast.SortReal {
			return ast.Real(1, 1)
		}
		return ast.Int(1)
	default:
		return ast.Str("")
	}
}
