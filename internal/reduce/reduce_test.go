package reduce

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/smtlib"
	"repro/internal/solver"
)

func parse(t *testing.T, src string) *smtlib.Script {
	t.Helper()
	s, err := smtlib.ParseScript(src)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDropIrrelevantAsserts(t *testing.T) {
	s := parse(t, `
(declare-fun x () Int)
(declare-fun y () Int)
(declare-fun z () Int)
(assert (> x 0))
(assert (< y 10))
(assert (= z (div x 0)))
(assert (> (+ x y) (- 5)))
(check-sat)
`)
	// Interesting: some assert still mentions div.
	interesting := func(c *smtlib.Script) bool {
		for _, a := range c.Asserts() {
			if ast.Ops(a)[ast.OpIntDiv] {
				return true
			}
		}
		return false
	}
	out := Reduce(s, interesting, Options{})
	if n := len(out.Asserts()); n != 1 {
		t.Fatalf("asserts after reduce = %d, want 1:\n%s", n, smtlib.Print(out))
	}
	// Unused declarations dropped too (y is gone; x or z may survive
	// inside the shrunken div term).
	for _, d := range out.Declarations() {
		if d.Name == "y" {
			t.Errorf("unused declaration y survived:\n%s", smtlib.Print(out))
		}
	}
}

func TestTermShrinking(t *testing.T) {
	s := parse(t, `
(declare-fun a () String)
(declare-fun b () String)
(assert (= (str.replace (str.++ a b "suffix") "" "pre") a))
(check-sat)
`)
	interesting := func(c *smtlib.Script) bool {
		for _, a := range c.Asserts() {
			found := false
			ast.Walk(a, func(tm ast.Term) bool {
				if app, ok := tm.(*ast.App); ok && app.Op == ast.OpStrReplace {
					if lit, ok := app.Args[1].(*ast.StrLit); ok && lit.V == "" {
						found = true
					}
				}
				return true
			})
			if found {
				return true
			}
		}
		return false
	}
	out := Reduce(s, interesting, Options{})
	if !interesting(out) {
		t.Fatal("reduction lost the property")
	}
	if ast.Size(out.Asserts()[0]) >= ast.Size(s.Asserts()[0]) {
		t.Errorf("no shrink achieved:\n%s", smtlib.Print(out))
	}
}

func TestReduceKeepsDefectTrigger(t *testing.T) {
	// End-to-end: reduce a formula that makes a defective solver give a
	// wrong sat answer, requiring the wrong answer to persist.
	src := `
(set-logic QF_SLIA)
(declare-fun n () Int)
(declare-fun m () Int)
(assert (= n (str.to_int "")))
(assert (= n 0))
(assert (< m 100))
(assert (> (+ m n) (- 50)))
(check-sat)
`
	s := parse(t, src)
	buggy := func() *solver.Solver {
		return solver.New(solver.Config{Defects: map[solver.Defect]bool{solver.DefStrToIntEmpty: true}})
	}
	interesting := func(c *smtlib.Script) bool {
		out := buggy().SolveScript(c)
		return out.Result == solver.ResSat && firedStrToInt(out)
	}
	if !interesting(s) {
		t.Fatal("seed script not interesting")
	}
	out := Reduce(s, interesting, Options{})
	if got := len(out.Asserts()); got > 2 {
		t.Errorf("reduced to %d asserts, expected ≤ 2:\n%s", got, smtlib.Print(out))
	}
	if !interesting(out) {
		t.Fatal("reduced script no longer triggers the defect")
	}
}

func firedStrToInt(out solver.Outcome) bool {
	for _, d := range out.DefectsFired {
		if d == solver.DefStrToIntEmpty {
			return true
		}
	}
	return false
}

func TestPrettify(t *testing.T) {
	s := parse(t, `
(declare-fun x () Int)
(assert (and (and (> (+ x 0) 0) true) (< (* 1 x) 10)))
(check-sat)
`)
	out := Prettify(s)
	txt := smtlib.Print(out)
	if strings.Contains(txt, "(and (and") {
		t.Errorf("nested and not flattened:\n%s", txt)
	}
	if strings.Contains(txt, "(+ x 0)") {
		t.Errorf("+0 not dropped:\n%s", txt)
	}
	if strings.Contains(txt, "(* 1 x)") {
		t.Errorf("*1 not dropped:\n%s", txt)
	}
}

func TestPrettifyPreservesSemantics(t *testing.T) {
	src := `
(declare-fun x () Int)
(assert (and (> (+ x 0 2) 0) (or false (< x 10))))
(check-sat)
`
	s := parse(t, src)
	out := Prettify(s)
	// Same satisfying assignments on a small grid.
	for v := int64(-3); v <= 12; v++ {
		model := evalModel(v)
		b1 := evalAll(t, s, model)
		b2 := evalAll(t, out, model)
		if b1 != b2 {
			t.Fatalf("semantics changed at x=%d", v)
		}
	}
}

func evalModel(v int64) eval.Model { return eval.Model{"x": eval.Int(v)} }

func evalAll(t *testing.T, s *smtlib.Script, model eval.Model) bool {
	t.Helper()
	for _, a := range s.Asserts() {
		ok, err := eval.Bool(a, model)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return false
		}
	}
	return true
}

// TestReduceResultSatisfiesPredicate: Reduce used to prettify the
// final shrink without re-checking it, so a predicate sensitive to the
// exact syntactic shape (here: the neutral-element pattern the pretty
// printer rewrites away) got back a script that no longer satisfied
// it. The contract is that every returned script passes the predicate.
func TestReduceResultSatisfiesPredicate(t *testing.T) {
	s := parse(t, `
(declare-fun x () Int)
(assert (> (+ x 0) 5))
(check-sat)
`)
	interesting := func(c *smtlib.Script) bool {
		return strings.Contains(smtlib.Print(c), "(+ x 0)")
	}
	if !interesting(s) {
		t.Fatal("seed script not interesting")
	}
	out := Reduce(s, interesting, Options{})
	if !interesting(out) {
		t.Fatalf("Reduce returned a script that fails the predicate:\n%s", smtlib.Print(out))
	}
}

// TestSmallBudgetStillDropsDecls: term shrinking used to re-enumerate
// every candidate after each accepted shrink with no per-pass bound,
// burning the whole MaxChecks budget before dropUnusedDecls ever ran —
// small-budget reductions kept dead declarations. Shrinking must leave
// room for the later strategies.
func TestSmallBudgetStillDropsDecls(t *testing.T) {
	s := parse(t, `
(declare-fun x () Int)
(declare-fun y () Int)
(assert (= (div x 2) (+ x x x x x x x x)))
(assert (> y 0))
(check-sat)
`)
	interesting := func(c *smtlib.Script) bool {
		for _, a := range c.Asserts() {
			if ast.Ops(a)[ast.OpIntDiv] {
				return true
			}
		}
		return false
	}
	out := Reduce(s, interesting, Options{MaxChecks: 10})
	for _, d := range out.Declarations() {
		if d.Name == "y" {
			t.Fatalf("term shrinking starved the declaration pass; unused y survived:\n%s", smtlib.Print(out))
		}
	}
}

func TestBudgetExhaustion(t *testing.T) {
	s := parse(t, `
(declare-fun x () Int)
(assert (> x 0))
(assert (< x 10))
(check-sat)
`)
	calls := 0
	interesting := func(c *smtlib.Script) bool {
		calls++
		return len(c.Asserts()) >= 1
	}
	out := Reduce(s, interesting, Options{MaxChecks: 3})
	if calls > 3 {
		t.Errorf("budget exceeded: %d calls", calls)
	}
	if out == nil {
		t.Fatal("nil result")
	}
}
