// Package fuel provides a deterministic step counter shared by every
// search engine in the solver: the CDCL loop, simplex pivots,
// branch-and-bound, interval refinement, the strings DFS, and regex
// derivative construction all spend from one Meter. When the meter is
// exhausted each engine gives up cleanly and the solver reports
// ResTimeout — a timeout measured in steps, not wall-clock time, so
// campaigns stay bit-identical for any thread count and the golint
// wall-clock ban holds.
package fuel

// Meter is a nil-safe step budget. A nil Meter — and a Meter built
// with a non-positive budget — is unlimited: Spend always succeeds and
// Exhausted stays false. Meters are not safe for concurrent use; every
// solve owns its own.
type Meter struct {
	remaining int64
	limited   bool
	exhausted bool
	// spent accumulates every charge, on limited and unlimited meters
	// alike, so telemetry can report per-solve effort without a second
	// set of charge points.
	spent int64
}

// NewMeter returns a meter with the given step budget. A non-positive
// budget means unlimited.
func NewMeter(budget int64) *Meter {
	if budget <= 0 {
		return &Meter{}
	}
	return &Meter{remaining: budget, limited: true}
}

// Spend consumes n steps and reports whether the budget still holds.
// Once the meter is exhausted it stays exhausted; callers should
// unwind promptly but need not check after every single step.
func (m *Meter) Spend(n int64) bool {
	if m == nil {
		return true
	}
	m.spent += n
	if !m.limited {
		return true
	}
	if m.exhausted {
		m.spent -= n // an exhausted meter performs no work
		return false
	}
	m.remaining -= n
	if m.remaining < 0 {
		m.spent += m.remaining // only the residue was actually consumed
		m.remaining = 0
		m.exhausted = true
		return false
	}
	return true
}

// Exhausted reports whether the meter has run out of fuel.
func (m *Meter) Exhausted() bool {
	return m != nil && m.exhausted
}

// Drain instantly exhausts a limited meter. Injected hang defects call
// this instead of actually looping: the observable signature (a
// deterministic timeout) is identical, with no wall-clock cost. A nil
// or unlimited meter is unaffected — there is no deadline to hit.
func (m *Meter) Drain() {
	if m == nil || !m.limited {
		return
	}
	// A drain models a search consuming its whole remaining budget, so
	// the residue counts as spent: telemetry then reports the same
	// per-solve effort a genuine blowup would.
	m.spent += m.remaining
	m.remaining = 0
	m.exhausted = true
}

// Spent returns the steps consumed so far. Unlimited (but non-nil)
// meters count too; a nil meter reports 0.
func (m *Meter) Spent() int64 {
	if m == nil {
		return 0
	}
	return m.spent
}

// Remaining returns the steps left, or -1 when unlimited.
func (m *Meter) Remaining() int64 {
	if m == nil || !m.limited {
		return -1
	}
	return m.remaining
}
