package fuel

import "testing"

func TestNilMeterIsUnlimited(t *testing.T) {
	var m *Meter
	if !m.Spend(1000) {
		t.Error("nil meter should always allow spending")
	}
	if m.Exhausted() {
		t.Error("nil meter should never be exhausted")
	}
	m.Drain() // must not panic
	if m.Remaining() != -1 {
		t.Errorf("nil meter Remaining = %d, want -1", m.Remaining())
	}
}

func TestUnlimitedMeter(t *testing.T) {
	for _, budget := range []int64{0, -1, -100} {
		m := NewMeter(budget)
		if !m.Spend(1 << 40) {
			t.Errorf("NewMeter(%d) should be unlimited", budget)
		}
		m.Drain()
		if m.Exhausted() {
			t.Errorf("NewMeter(%d) should not drain", budget)
		}
	}
}

func TestLimitedMeter(t *testing.T) {
	m := NewMeter(10)
	if m.Remaining() != 10 {
		t.Errorf("Remaining = %d, want 10", m.Remaining())
	}
	if !m.Spend(7) {
		t.Error("spend within budget should succeed")
	}
	if m.Remaining() != 3 {
		t.Errorf("Remaining = %d, want 3", m.Remaining())
	}
	if m.Spend(4) {
		t.Error("overspend should fail")
	}
	if !m.Exhausted() {
		t.Error("overspent meter should be exhausted")
	}
	// Sticky: further spends keep failing, even tiny ones.
	if m.Spend(1) {
		t.Error("exhausted meter should reject every spend")
	}
	if m.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", m.Remaining())
	}
}

func TestExactSpendIsNotExhaustion(t *testing.T) {
	m := NewMeter(5)
	if !m.Spend(5) {
		t.Error("spending exactly the budget should succeed")
	}
	if m.Exhausted() {
		t.Error("meter at zero is not exhausted until an overspend")
	}
	if m.Spend(1) {
		t.Error("the next spend must fail")
	}
}

func TestSpentAccounting(t *testing.T) {
	if (*Meter)(nil).Spent() != 0 {
		t.Error("nil meter Spent should be 0")
	}
	// Unlimited meters still count consumption.
	u := NewMeter(0)
	u.Spend(3)
	u.Spend(4)
	if u.Spent() != 7 {
		t.Errorf("unlimited Spent = %d, want 7", u.Spent())
	}
	// A limited meter never reports more spent than its budget: the
	// overdraw that flips it to exhausted only consumed the residue.
	m := NewMeter(10)
	m.Spend(7)
	if m.Spent() != 7 {
		t.Errorf("Spent = %d, want 7", m.Spent())
	}
	m.Spend(5) // fails; only 3 steps of work existed
	if m.Spent() != 10 {
		t.Errorf("Spent after overdraw = %d, want 10", m.Spent())
	}
	m.Spend(1) // exhausted: no work happens
	if m.Spent() != 10 {
		t.Errorf("Spent after exhausted spend = %d, want 10", m.Spent())
	}
	// Drain charges the whole residue.
	d := NewMeter(100)
	d.Spend(25)
	d.Drain()
	if d.Spent() != 100 {
		t.Errorf("Spent after drain = %d, want 100", d.Spent())
	}
}

func TestDrain(t *testing.T) {
	m := NewMeter(1000)
	m.Drain()
	if !m.Exhausted() {
		t.Error("drained meter should be exhausted")
	}
	if m.Spend(1) {
		t.Error("drained meter should reject spends")
	}
	if m.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", m.Remaining())
	}
}
