package ast

// Walk calls fn for t and every subterm of t, in preorder. If fn
// returns false for a term, its subterms are skipped.
func Walk(t Term, fn func(Term) bool) {
	if !fn(t) {
		return
	}
	switch n := t.(type) {
	case *App:
		for _, a := range n.Args {
			Walk(a, fn)
		}
	case *Quant:
		Walk(n.Body, fn)
	}
}

// Transform rebuilds the term bottom-up, applying fn to every node
// after its children have been transformed. fn receives a node whose
// children are already rewritten and returns its replacement. Subtrees
// that are unchanged are shared, not copied.
func Transform(t Term, fn func(Term) Term) Term {
	switch n := t.(type) {
	case *App:
		changed := false
		args := n.Args
		for i, a := range n.Args {
			na := Transform(a, fn)
			if na != a {
				if !changed {
					args = make([]Term, len(n.Args))
					copy(args, n.Args)
					changed = true
				}
				args[i] = na
			}
		}
		if changed {
			t = MustApp(n.Op, args...)
		}
	case *Quant:
		body := Transform(n.Body, fn)
		if body != n.Body {
			t = internQuant(n.Forall, n.Bound, body)
		}
	}
	return fn(t)
}

// Size returns the number of nodes in the term tree.
func Size(t Term) int {
	n := 0
	Walk(t, func(Term) bool { n++; return true })
	return n
}

// Depth returns the height of the term tree (a leaf has depth 1).
func Depth(t Term) int {
	switch n := t.(type) {
	case *App:
		d := 0
		for _, a := range n.Args {
			if ad := Depth(a); ad > d {
				d = ad
			}
		}
		return d + 1
	case *Quant:
		return Depth(n.Body) + 1
	default:
		return 1
	}
}

// Ops returns the set of operators occurring in t.
func Ops(t Term) map[Op]bool {
	out := map[Op]bool{}
	Walk(t, func(s Term) bool {
		if a, ok := s.(*App); ok {
			out[a.Op] = true
		}
		return true
	})
	return out
}

// HasQuantifier reports whether t contains a quantifier.
func HasQuantifier(t Term) bool {
	found := false
	Walk(t, func(s Term) bool {
		if _, ok := s.(*Quant); ok {
			found = true
		}
		return !found
	})
	return found
}
