package ast

import (
	"math/big"
	"strings"
	"testing"
)

func TestSortByName(t *testing.T) {
	cases := map[string]Sort{
		"Bool": SortBool, "Int": SortInt, "Real": SortReal,
		"String": SortString, "RegLan": SortRegLan,
	}
	for name, want := range cases {
		got, ok := SortByName(name)
		if !ok || got != want {
			t.Errorf("SortByName(%q) = %v,%v want %v", name, got, ok, want)
		}
	}
	if _, ok := SortByName("Array"); ok {
		t.Error("SortByName(Array) should fail")
	}
}

func TestOpByNameArity(t *testing.T) {
	// "-" resolves to unary or binary minus by arity.
	op, ok := OpByName("-", 1)
	if !ok || op != OpNeg {
		t.Fatalf("OpByName(-,1) = %v,%v want OpNeg", op, ok)
	}
	op, ok = OpByName("-", 2)
	if !ok || op != OpSub {
		t.Fatalf("OpByName(-,2) = %v,%v want OpSub", op, ok)
	}
	// Legacy aliases resolve.
	op, ok = OpByName("str.to.int", 1)
	if !ok || op != OpStrToInt {
		t.Fatalf("OpByName(str.to.int,1) = %v,%v want OpStrToInt", op, ok)
	}
	op, ok = OpByName("str.in.re", 2)
	if !ok || op != OpStrInRe {
		t.Fatalf("OpByName(str.in.re,2) = %v,%v", op, ok)
	}
	if _, ok = OpByName("nonsense", 2); ok {
		t.Error("OpByName(nonsense) should fail")
	}
	if _, ok = OpByName("not", 3); ok {
		t.Error("OpByName(not,3) should fail (arity)")
	}
}

func TestNewAppTyping(t *testing.T) {
	x := NewVar("x", SortInt)
	y := NewVar("y", SortReal)
	if _, err := NewApp(OpAdd, x, y); err == nil {
		t.Error("mixed Int+Real addition should be rejected")
	}
	sum, err := NewApp(OpAdd, x, Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Sort() != SortInt {
		t.Errorf("Int sum has sort %v", sum.Sort())
	}
	cmp, err := NewApp(OpLe, y, Real(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Sort() != SortBool {
		t.Errorf("comparison has sort %v", cmp.Sort())
	}
	if _, err := NewApp(OpStrLen, x); err == nil {
		t.Error("str.len of Int should be rejected")
	}
	if _, err := NewApp(OpIte, True, x, y); err == nil {
		t.Error("ite with mismatched branches should be rejected")
	}
	ite, err := NewApp(OpIte, True, x, Int(0))
	if err != nil {
		t.Fatal(err)
	}
	if ite.Sort() != SortInt {
		t.Errorf("ite sort %v", ite.Sort())
	}
	if _, err := NewApp(OpEq, x, Str("a")); err == nil {
		t.Error("equality across sorts should be rejected")
	}
}

func TestPrintRoundTripForms(t *testing.T) {
	x := NewVar("x", SortInt)
	cases := []struct {
		t    Term
		want string
	}{
		{Int(5), "5"},
		{Int(-5), "(- 5)"},
		{Real(1, 1), "1.0"},
		{Real(-3, 2), "(- 1.5)"},
		{Real(1, 3), "(/ 1.0 3.0)"},
		{Real(1, 4), "0.25"},
		{Str(`a"b`), `"a""b"`},
		{True, "true"},
		{MustApp(OpAdd, x, Int(1)), "(+ x 1)"},
		{MustApp(OpStrConcat, Str("a"), Str("b")), `(str.++ "a" "b")`},
		{MustApp(OpReAllChar), "re.allchar"},
	}
	for _, c := range cases {
		if got := Print(c.t); got != c.want {
			t.Errorf("Print = %q, want %q", got, c.want)
		}
	}
}

func TestPrintQuant(t *testing.T) {
	h := NewVar("h", SortReal)
	body := MustApp(OpLt, Real(0, 1), h)
	q, err := NewQuant(false, []SortedVar{{"h", SortReal}}, body)
	if err != nil {
		t.Fatal(err)
	}
	want := "(exists ((h Real)) (< 0.0 h))"
	if got := Print(q); got != want {
		t.Errorf("Print = %q want %q", got, want)
	}
}

func TestFreeVarsShadowing(t *testing.T) {
	x := NewVar("x", SortInt)
	y := NewVar("y", SortInt)
	inner := MustApp(OpLt, x, y)
	q, _ := NewQuant(true, []SortedVar{{"x", SortInt}}, inner)
	f := And(MustApp(OpGt, x, Int(0)), q)
	fv := FreeVars(f)
	names := map[string]bool{}
	for _, v := range fv {
		names[v.Name] = true
	}
	if !names["x"] || !names["y"] || len(fv) != 2 {
		t.Errorf("FreeVars = %v", names)
	}
	// x occurs free once (the occurrence under the quantifier is bound).
	if n := CountFreeOccurrences(f, "x"); n != 1 {
		t.Errorf("CountFreeOccurrences(x) = %d want 1", n)
	}
	if n := CountFreeOccurrences(f, "y"); n != 1 {
		t.Errorf("CountFreeOccurrences(y) = %d want 1", n)
	}
}

func TestSubstitute(t *testing.T) {
	x := NewVar("x", SortInt)
	y := NewVar("y", SortInt)
	f := And(MustApp(OpGt, x, Int(0)), MustApp(OpLt, x, y))
	g, err := Substitute(f, map[string]Term{"x": MustApp(OpAdd, y, Int(1))})
	if err != nil {
		t.Fatal(err)
	}
	want := "(and (> (+ y 1) 0) (< (+ y 1) y))"
	if got := Print(g); got != want {
		t.Errorf("Substitute = %q want %q", got, want)
	}
	// Original is unchanged (immutability).
	if got := Print(f); got != "(and (> x 0) (< x y))" {
		t.Errorf("original mutated: %q", got)
	}
}

func TestSubstituteSortMismatch(t *testing.T) {
	x := NewVar("x", SortInt)
	f := MustApp(OpGt, x, Int(0))
	if _, err := Substitute(f, map[string]Term{"x": Str("s")}); err == nil {
		t.Error("sort-mismatched substitution should fail")
	}
}

func TestSubstituteRespectsBinding(t *testing.T) {
	x := NewVar("x", SortInt)
	q, _ := NewQuant(true, []SortedVar{{"x", SortInt}}, MustApp(OpGt, x, Int(0)))
	f := And(MustApp(OpLt, x, Int(5)), q)
	g, err := Substitute(f, map[string]Term{"x": Int(7)})
	if err != nil {
		t.Fatal(err)
	}
	want := "(and (< 7 5) (forall ((x Int)) (> x 0)))"
	if got := Print(g); got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestSubstituteCaptureDetected(t *testing.T) {
	// Replacing free y under a binder of x with a term containing x
	// would capture; must be reported.
	x := NewVar("x", SortInt)
	y := NewVar("y", SortInt)
	q, _ := NewQuant(true, []SortedVar{{"x", SortInt}}, MustApp(OpLt, x, y))
	if _, err := Substitute(q, map[string]Term{"y": MustApp(OpAdd, x, Int(1))}); err == nil {
		t.Error("capturing substitution should fail")
	}
}

func TestSubstituteOccurrences(t *testing.T) {
	x := NewVar("x", SortInt)
	f := And(MustApp(OpGt, x, Int(0)), MustApp(OpLt, x, Int(10)), Eq(x, x))
	repl := Int(3)
	// Replace occurrences 1 and 3 only.
	g, n, err := SubstituteOccurrences(f, "x", repl, func(i int) bool { return i == 1 || i == 3 })
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("visited %d occurrences, want 4", n)
	}
	want := "(and (> x 0) (< 3 10) (= x 3))"
	if got := Print(g); got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestSubstituteOccurrencesNone(t *testing.T) {
	x := NewVar("x", SortInt)
	f := MustApp(OpGt, x, Int(0))
	g, n, err := SubstituteOccurrences(f, "x", Int(1), func(int) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || g != f {
		t.Errorf("no-op substitution should share the tree; n=%d", n)
	}
}

func TestRenameFreeVars(t *testing.T) {
	x := NewVar("x", SortInt)
	f := MustApp(OpGt, x, Int(0))
	g := RenameFreeVars(f, map[string]string{"x": "x_1"})
	if got := Print(g); got != "(> x_1 0)" {
		t.Errorf("got %q", got)
	}
}

func TestTransformSharing(t *testing.T) {
	x := NewVar("x", SortInt)
	left := MustApp(OpGt, x, Int(0))
	right := MustApp(OpLt, x, Int(5))
	f := And(left, right)
	g := Transform(f, func(t Term) Term {
		if il, ok := t.(*IntLit); ok && il.V.Sign() == 0 {
			return Int(1)
		}
		return t
	})
	if got := Print(g); got != "(and (> x 1) (< x 5))" {
		t.Errorf("got %q", got)
	}
	// Unchanged branch is shared.
	ga := g.(*App)
	if ga.Args[1] != right {
		t.Error("unchanged subtree was copied")
	}
}

func TestSizeDepthOps(t *testing.T) {
	x := NewVar("x", SortInt)
	f := And(MustApp(OpGt, MustApp(OpAdd, x, Int(1)), Int(0)), Eq(x, Int(2)))
	if got := Size(f); got != 9 {
		t.Errorf("Size = %d want 9", got)
	}
	if got := Depth(f); got != 4 {
		t.Errorf("Depth = %d want 4", got)
	}
	ops := Ops(f)
	for _, op := range []Op{OpAnd, OpGt, OpAdd, OpEq} {
		if !ops[op] {
			t.Errorf("Ops missing %v", op)
		}
	}
	if HasQuantifier(f) {
		t.Error("HasQuantifier false positive")
	}
	q, _ := NewQuant(false, []SortedVar{{"h", SortInt}}, Eq(NewVar("h", SortInt), x))
	if !HasQuantifier(And(f, q)) {
		t.Error("HasQuantifier false negative")
	}
}

func TestEqual(t *testing.T) {
	x1 := NewVar("x", SortInt)
	x2 := NewVar("x", SortInt)
	if !Equal(MustApp(OpAdd, x1, Int(1)), MustApp(OpAdd, x2, Int(1))) {
		t.Error("structurally equal terms compare unequal")
	}
	if Equal(Int(1), Real(1, 1)) {
		t.Error("Int 1 and Real 1.0 must differ")
	}
	big1 := IntBig(new(big.Int).SetInt64(1))
	if !Equal(big1, Int(1)) {
		t.Error("value-equal int literals must be Equal")
	}
	if Equal(MustApp(OpAdd, x1, Int(1)), MustApp(OpAdd, Int(1), x1)) {
		t.Error("argument order matters")
	}
}

func TestExactDecimal(t *testing.T) {
	cases := []struct {
		num, den int64
		want     string
	}{
		{1, 2, "0.5"}, {3, 4, "0.75"}, {1, 8, "0.125"},
		{7, 10, "0.7"}, {123, 100, "1.23"},
	}
	for _, c := range cases {
		got, ok := exactDecimal(big.NewRat(c.num, c.den))
		if !ok || got != c.want {
			t.Errorf("exactDecimal(%d/%d) = %q,%v want %q", c.num, c.den, got, ok, c.want)
		}
	}
	if _, ok := exactDecimal(big.NewRat(1, 3)); ok {
		t.Error("1/3 has no finite decimal")
	}
}

func TestPrintNonASCIIEscapes(t *testing.T) {
	got := Print(Str("a\nb"))
	if !strings.Contains(got, `\u{a}`) {
		t.Errorf("newline not escaped: %q", got)
	}
}

func TestSmartConstructorsSingleton(t *testing.T) {
	x := NewVar("p", SortBool)
	if And(x) != Term(x) || Or(x) != Term(x) {
		t.Error("And/Or of one term should return the term")
	}
}
