// Package ast defines the typed term representation shared by the whole
// system: sorts, the operator table with SMT-LIB typing rules, immutable
// term trees over exact big-number literals, and the structural
// operations (free variables, substitution, traversal, renaming) that
// Semantic Fusion is built from.
package ast

import "fmt"

// Sort is the type of a term. The system implements the SMT-LIB sorts
// needed for the arithmetic and string logics the paper evaluates:
// Bool, Int, Real, String, and RegLan (regular languages).
type Sort uint8

const (
	SortInvalid Sort = iota
	SortBool
	SortInt
	SortReal
	SortString
	SortRegLan
)

var sortNames = [...]string{
	SortInvalid: "<invalid>",
	SortBool:    "Bool",
	SortInt:     "Int",
	SortReal:    "Real",
	SortString:  "String",
	SortRegLan:  "RegLan",
}

// String returns the SMT-LIB spelling of the sort.
func (s Sort) String() string {
	if int(s) < len(sortNames) {
		return sortNames[s]
	}
	return fmt.Sprintf("Sort(%d)", uint8(s))
}

// SortByName resolves an SMT-LIB sort name. The second result reports
// whether the name is known.
func SortByName(name string) (Sort, bool) {
	switch name {
	case "Bool":
		return SortBool, true
	case "Int":
		return SortInt, true
	case "Real":
		return SortReal, true
	case "String":
		return SortString, true
	case "RegLan", "(RegEx String)", "RegEx":
		return SortRegLan, true
	}
	return SortInvalid, false
}

// IsArith reports whether the sort is numeric (Int or Real).
func (s Sort) IsArith() bool { return s == SortInt || s == SortReal }
