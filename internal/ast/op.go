package ast

import "fmt"

// Op identifies a builtin SMT-LIB operator. Operators carry their
// typing rule in the opInfo table; applications are constructed through
// NewApp, which enforces well-sortedness.
type Op uint16

const (
	OpInvalid Op = iota

	// Core booleans.
	OpNot
	OpAnd
	OpOr
	OpXor
	OpImplies
	OpEq
	OpDistinct
	OpIte

	// Arithmetic (Int and Real; typing rule picks the sort).
	OpAdd
	OpSub
	OpNeg // unary minus
	OpMul
	OpRealDiv // (/ Real Real) Real
	OpIntDiv  // (div Int Int) Int
	OpMod     // (mod Int Int) Int
	OpAbs     // (abs Int) Int
	OpLe
	OpLt
	OpGe
	OpGt
	OpToReal // (to_real Int) Real
	OpToInt  // (to_int Real) Int
	OpIsInt  // (is_int Real) Bool

	// Strings.
	OpStrConcat     // (str.++ String String+) String
	OpStrLen        // (str.len String) Int
	OpStrAt         // (str.at String Int) String
	OpStrSubstr     // (str.substr String Int Int) String
	OpStrIndexOf    // (str.indexof String String Int) Int
	OpStrReplace    // (str.replace String String String) String
	OpStrReplaceAll // (str.replace_all String String String) String
	OpStrPrefixOf   // (str.prefixof String String) Bool
	OpStrSuffixOf   // (str.suffixof String String) Bool
	OpStrContains   // (str.contains String String) Bool
	OpStrToInt      // (str.to_int String) Int
	OpStrFromInt    // (str.from_int Int) String
	OpStrInRe       // (str.in_re String RegLan) Bool
	OpStrToRe       // (str.to_re String) RegLan
	OpStrLtOp       // (str.< String String) Bool
	OpStrLeOp       // (str.<= String String) Bool

	// Regular languages.
	OpReStar    // (re.* RegLan) RegLan
	OpRePlus    // (re.+ RegLan) RegLan
	OpReOpt     // (re.opt RegLan) RegLan
	OpReUnion   // (re.union RegLan RegLan+) RegLan
	OpReInter   // (re.inter RegLan RegLan+) RegLan
	OpReConcat  // (re.++ RegLan RegLan+) RegLan
	OpReRange   // (re.range String String) RegLan
	OpReComp    // (re.comp RegLan) RegLan
	OpReDiff    // (re.diff RegLan RegLan) RegLan
	OpReAllChar // re.allchar : RegLan
	OpReAll     // re.all : RegLan
	OpReNone    // re.none : RegLan

	opMax
)

// arity sentinel: variadic operators accept minArity or more arguments.
const variadic = -1

type opInfo struct {
	name    string   // canonical SMT-LIB 2.6 spelling
	aliases []string // accepted legacy spellings (SMT-LIB 2.0/2.5)
	minAr   int
	maxAr   int // variadic if == variadic
	typing  func(args []Term) (Sort, error)
}

var opTable [opMax]opInfo

// typing helpers

func allSort(want Sort, result Sort) func([]Term) (Sort, error) {
	return func(args []Term) (Sort, error) {
		for i, a := range args {
			if a.Sort() != want {
				return SortInvalid, fmt.Errorf("argument %d has sort %v, want %v", i, a.Sort(), want)
			}
		}
		return result, nil
	}
}

// numeric: all args share one arithmetic sort; result is that sort (or
// given result if resultBool).
func numeric(resultBool bool) func([]Term) (Sort, error) {
	return func(args []Term) (Sort, error) {
		s := args[0].Sort()
		if !s.IsArith() {
			return SortInvalid, fmt.Errorf("argument 0 has sort %v, want Int or Real", s)
		}
		for i, a := range args {
			if a.Sort() != s {
				return SortInvalid, fmt.Errorf("argument %d has sort %v, want %v", i, a.Sort(), s)
			}
		}
		if resultBool {
			return SortBool, nil
		}
		return s, nil
	}
}

func exactSorts(result Sort, want ...Sort) func([]Term) (Sort, error) {
	return func(args []Term) (Sort, error) {
		for i, a := range args {
			if a.Sort() != want[i] {
				return SortInvalid, fmt.Errorf("argument %d has sort %v, want %v", i, a.Sort(), want[i])
			}
		}
		return result, nil
	}
}

func sameSortArgs() func([]Term) (Sort, error) {
	return func(args []Term) (Sort, error) {
		s := args[0].Sort()
		for i, a := range args {
			if a.Sort() != s {
				return SortInvalid, fmt.Errorf("argument %d has sort %v, want %v", i, a.Sort(), s)
			}
		}
		return SortBool, nil
	}
}

func iteTyping(args []Term) (Sort, error) {
	if args[0].Sort() != SortBool {
		return SortInvalid, fmt.Errorf("ite condition has sort %v, want Bool", args[0].Sort())
	}
	if args[1].Sort() != args[2].Sort() {
		return SortInvalid, fmt.Errorf("ite branches have sorts %v and %v", args[1].Sort(), args[2].Sort())
	}
	return args[1].Sort(), nil
}

func init() {
	reg := func(op Op, name string, minAr, maxAr int, typing func([]Term) (Sort, error), aliases ...string) {
		opTable[op] = opInfo{name: name, aliases: aliases, minAr: minAr, maxAr: maxAr, typing: typing}
	}

	reg(OpNot, "not", 1, 1, allSort(SortBool, SortBool))
	reg(OpAnd, "and", 1, variadic, allSort(SortBool, SortBool))
	reg(OpOr, "or", 1, variadic, allSort(SortBool, SortBool))
	reg(OpXor, "xor", 2, variadic, allSort(SortBool, SortBool))
	reg(OpImplies, "=>", 2, variadic, allSort(SortBool, SortBool))
	reg(OpEq, "=", 2, variadic, sameSortArgs())
	reg(OpDistinct, "distinct", 2, variadic, sameSortArgs())
	reg(OpIte, "ite", 3, 3, iteTyping)

	reg(OpAdd, "+", 2, variadic, numeric(false))
	reg(OpSub, "-", 2, variadic, numeric(false))
	reg(OpNeg, "-", 1, 1, numeric(false))
	reg(OpMul, "*", 2, variadic, numeric(false))
	reg(OpRealDiv, "/", 2, variadic, allSort(SortReal, SortReal))
	reg(OpIntDiv, "div", 2, variadic, allSort(SortInt, SortInt))
	reg(OpMod, "mod", 2, 2, allSort(SortInt, SortInt))
	reg(OpAbs, "abs", 1, 1, allSort(SortInt, SortInt))
	reg(OpLe, "<=", 2, variadic, numeric(true))
	reg(OpLt, "<", 2, variadic, numeric(true))
	reg(OpGe, ">=", 2, variadic, numeric(true))
	reg(OpGt, ">", 2, variadic, numeric(true))
	reg(OpToReal, "to_real", 1, 1, exactSorts(SortReal, SortInt), "to-real")
	reg(OpToInt, "to_int", 1, 1, exactSorts(SortInt, SortReal), "to-int")
	reg(OpIsInt, "is_int", 1, 1, exactSorts(SortBool, SortReal), "is-int")

	reg(OpStrConcat, "str.++", 2, variadic, allSort(SortString, SortString))
	reg(OpStrLen, "str.len", 1, 1, exactSorts(SortInt, SortString))
	reg(OpStrAt, "str.at", 2, 2, exactSorts(SortString, SortString, SortInt))
	reg(OpStrSubstr, "str.substr", 3, 3, exactSorts(SortString, SortString, SortInt, SortInt))
	reg(OpStrIndexOf, "str.indexof", 3, 3, exactSorts(SortInt, SortString, SortString, SortInt))
	reg(OpStrReplace, "str.replace", 3, 3, exactSorts(SortString, SortString, SortString, SortString))
	reg(OpStrReplaceAll, "str.replace_all", 3, 3, exactSorts(SortString, SortString, SortString, SortString))
	reg(OpStrPrefixOf, "str.prefixof", 2, 2, exactSorts(SortBool, SortString, SortString))
	reg(OpStrSuffixOf, "str.suffixof", 2, 2, exactSorts(SortBool, SortString, SortString))
	reg(OpStrContains, "str.contains", 2, 2, exactSorts(SortBool, SortString, SortString))
	reg(OpStrToInt, "str.to_int", 1, 1, exactSorts(SortInt, SortString), "str.to.int")
	reg(OpStrFromInt, "str.from_int", 1, 1, exactSorts(SortString, SortInt), "int.to.str", "str.from.int")
	reg(OpStrInRe, "str.in_re", 2, 2, exactSorts(SortBool, SortString, SortRegLan), "str.in.re")
	reg(OpStrToRe, "str.to_re", 1, 1, exactSorts(SortRegLan, SortString), "str.to.re")
	reg(OpStrLtOp, "str.<", 2, 2, exactSorts(SortBool, SortString, SortString))
	reg(OpStrLeOp, "str.<=", 2, 2, exactSorts(SortBool, SortString, SortString))

	reg(OpReStar, "re.*", 1, 1, allSort(SortRegLan, SortRegLan))
	reg(OpRePlus, "re.+", 1, 1, allSort(SortRegLan, SortRegLan))
	reg(OpReOpt, "re.opt", 1, 1, allSort(SortRegLan, SortRegLan))
	reg(OpReUnion, "re.union", 2, variadic, allSort(SortRegLan, SortRegLan))
	reg(OpReInter, "re.inter", 2, variadic, allSort(SortRegLan, SortRegLan))
	reg(OpReConcat, "re.++", 2, variadic, allSort(SortRegLan, SortRegLan))
	reg(OpReRange, "re.range", 2, 2, exactSorts(SortRegLan, SortString, SortString))
	reg(OpReComp, "re.comp", 1, 1, allSort(SortRegLan, SortRegLan))
	reg(OpReDiff, "re.diff", 2, 2, allSort(SortRegLan, SortRegLan))
	reg(OpReAllChar, "re.allchar", 0, 0, allSort(SortRegLan, SortRegLan))
	reg(OpReAll, "re.all", 0, 0, allSort(SortRegLan, SortRegLan))
	reg(OpReNone, "re.none", 0, 0, allSort(SortRegLan, SortRegLan))

	buildOpNameIndex()
}

// opNameIndex maps every accepted spelling to the operator. The unary
// and binary minus share the spelling "-" and are disambiguated by
// arity in OpByName.
var opNameIndex map[string][]Op

func buildOpNameIndex() {
	opNameIndex = make(map[string][]Op, 2*int(opMax))
	for op := Op(1); op < opMax; op++ {
		info := &opTable[op]
		opNameIndex[info.name] = append(opNameIndex[info.name], op)
		for _, a := range info.aliases {
			opNameIndex[a] = append(opNameIndex[a], op)
		}
	}
}

// String returns the canonical SMT-LIB spelling of the operator.
func (op Op) String() string {
	if op > OpInvalid && op < opMax {
		return opTable[op].name
	}
	return fmt.Sprintf("Op(%d)", uint16(op))
}

// Arity returns the minimum and maximum accepted argument counts.
// A maximum of -1 means the operator is variadic.
func (op Op) Arity() (min, max int) {
	return opTable[op].minAr, opTable[op].maxAr
}

// OpByName resolves an operator spelling and argument count to an Op.
// The second result reports whether resolution succeeded.
func OpByName(name string, nargs int) (Op, bool) {
	cands := opNameIndex[name]
	for _, op := range cands {
		info := &opTable[op]
		if nargs < info.minAr {
			continue
		}
		if info.maxAr != variadic && nargs > info.maxAr {
			continue
		}
		return op, true
	}
	return OpInvalid, false
}
