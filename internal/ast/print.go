package ast

import (
	"fmt"
	"math/big"
	"strings"
	"sync"
	"unicode/utf8"
)

var builderPool = sync.Pool{New: func() any { return new(strings.Builder) }}

// Print returns the canonical SMT-LIB rendering of the term. The output
// parses back to a structurally equal term (given matching declarations),
// which also makes it usable as a structural hash key. Builders are
// pooled: rendering in a hot loop does not grow a fresh buffer per call.
func Print(t Term) string {
	b := builderPool.Get().(*strings.Builder)
	b.Reset()
	printTerm(b, t)
	s := b.String()
	builderPool.Put(b)
	return s
}

func printTerm(b *strings.Builder, t Term) {
	switch n := t.(type) {
	case *Var:
		b.WriteString(n.Name)
	case *BoolLit:
		if n.V {
			b.WriteString("true")
		} else {
			b.WriteString("false")
		}
	case *IntLit:
		printInt(b, n.V)
	case *RealLit:
		printRat(b, n.V)
	case *StrLit:
		printStringLit(b, n.V)
	case *App:
		if len(n.Args) == 0 {
			b.WriteString(n.Op.String())
			return
		}
		b.WriteByte('(')
		b.WriteString(n.Op.String())
		for _, a := range n.Args {
			b.WriteByte(' ')
			printTerm(b, a)
		}
		b.WriteByte(')')
	case *Quant:
		if n.Forall {
			b.WriteString("(forall (")
		} else {
			b.WriteString("(exists (")
		}
		for i, sv := range n.Bound {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(b, "(%s %s)", sv.Name, sv.Sort)
		}
		b.WriteString(") ")
		printTerm(b, n.Body)
		b.WriteByte(')')
	default:
		panic(fmt.Sprintf("ast: unknown term type %T", t))
	}
}

func printInt(b *strings.Builder, v *big.Int) {
	if v.Sign() < 0 {
		b.WriteString("(- ")
		b.WriteString(new(big.Int).Neg(v).String())
		b.WriteByte(')')
		return
	}
	b.WriteString(v.String())
}

func printRat(b *strings.Builder, v *big.Rat) {
	if v.Sign() < 0 {
		b.WriteString("(- ")
		printRat(b, new(big.Rat).Neg(v))
		b.WriteByte(')')
		return
	}
	if v.IsInt() {
		b.WriteString(v.Num().String())
		b.WriteString(".0")
		return
	}
	// Exact decimal if the denominator divides a power of ten, else an
	// explicit division of decimal literals.
	if dec, ok := exactDecimal(v); ok {
		b.WriteString(dec)
		return
	}
	fmt.Fprintf(b, "(/ %s.0 %s.0)", v.Num().String(), v.Denom().String())
}

// exactDecimal renders a non-negative rational as a finite decimal if
// possible.
func exactDecimal(v *big.Rat) (string, bool) {
	den := new(big.Int).Set(v.Denom())
	two, five, ten, one := big.NewInt(2), big.NewInt(5), big.NewInt(10), big.NewInt(1)
	twos, fives := 0, 0
	tmp := new(big.Int)
	for den.Cmp(one) != 0 && twos+fives < 64 {
		if tmp.Mod(den, two).Sign() == 0 {
			den.Div(den, two)
			twos++
		} else if tmp.Mod(den, five).Sign() == 0 {
			den.Div(den, five)
			fives++
		} else {
			return "", false
		}
	}
	if den.Cmp(one) != 0 {
		return "", false
	}
	digits := twos
	if fives > digits {
		digits = fives
	}
	scaled := new(big.Int).Mul(v.Num(), new(big.Int).Exp(ten, big.NewInt(int64(digits)), nil))
	scaled.Div(scaled, v.Denom())
	s := scaled.String()
	if digits == 0 {
		return s + ".0", true
	}
	for len(s) <= digits {
		s = "0" + s
	}
	return s[:len(s)-digits] + "." + s[len(s)-digits:], true
}

func printStringLit(b *strings.Builder, s string) {
	b.WriteByte('"')
	for i := 0; i < len(s); {
		r, size := utf8.DecodeRuneInString(s[i:])
		// Invalid UTF-8 bytes and runes beyond SMT-LIB's \u{} range
		// (2.6 caps escapes at 0x2FFFF) are escaped byte by byte.
		// Re-parsing such an escape yields the rune with that value —
		// normalizing the string — and printing the result reproduces
		// the same escape, so printing stays a parse fixpoint.
		if (r == utf8.RuneError && size == 1) || r > 0x2FFFF {
			for j := 0; j < size; j++ {
				fmt.Fprintf(b, `\u{%x}`, s[i+j])
			}
			i += size
			continue
		}
		switch {
		case r == '"':
			b.WriteString(`""`)
		case r >= 0x20 && r < 0x7f:
			b.WriteByte(byte(r))
		default:
			fmt.Fprintf(b, `\u{%x}`, r)
		}
		i += size
	}
	b.WriteByte('"')
}

// Equal reports structural equality of two terms. Numeric literals
// compare by value; bound-variable names compare literally (terms are
// produced by shared constructors, so alpha-variant trees are compared
// as distinct, which is the behaviour dedup and caching want).
//
// Interned terms (everything built through this package's constructors)
// make this a pointer comparison; the structural walk below only runs
// for terms forged outside the constructors, and short-circuits on the
// cached structural hash.
func Equal(a, b Term) bool {
	if a == b {
		return true
	}
	if Hash(a) != Hash(b) {
		return false
	}
	switch x := a.(type) {
	case *Var:
		y, ok := b.(*Var)
		return ok && x.Name == y.Name && x.VSort == y.VSort
	case *BoolLit:
		y, ok := b.(*BoolLit)
		return ok && x.V == y.V
	case *IntLit:
		y, ok := b.(*IntLit)
		return ok && x.V.Cmp(y.V) == 0
	case *RealLit:
		y, ok := b.(*RealLit)
		return ok && x.V.Cmp(y.V) == 0
	case *StrLit:
		y, ok := b.(*StrLit)
		return ok && x.V == y.V
	case *App:
		y, ok := b.(*App)
		if !ok || x.Op != y.Op || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !Equal(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	case *Quant:
		y, ok := b.(*Quant)
		if !ok || x.Forall != y.Forall || len(x.Bound) != len(y.Bound) {
			return false
		}
		for i := range x.Bound {
			if x.Bound[i] != y.Bound[i] {
				return false
			}
		}
		return Equal(x.Body, y.Body)
	default:
		return false
	}
}
