package ast

import (
	"fmt"
	"math/big"
)

// Term is an immutable, well-sorted term tree. Terms are shared freely:
// no operation in this package mutates an existing term; transformations
// return new trees that may alias unchanged subtrees.
type Term interface {
	// Sort returns the sort of the term.
	Sort() Sort
	aTerm()
}

// Var is a free or bound variable occurrence.
type Var struct {
	Name  string
	VSort Sort
	hash  uint64
}

func (v *Var) Sort() Sort { return v.VSort }
func (*Var) aTerm()       {}

// NewVar returns the interned variable term for (name, sort).
func NewVar(name string, sort Sort) *Var { return internVar(name, sort) }

// BoolLit is a boolean literal (true or false).
type BoolLit struct{ V bool }

func (*BoolLit) Sort() Sort { return SortBool }
func (*BoolLit) aTerm()     {}

// Shared literal instances for the common cases.
var (
	True  = &BoolLit{V: true}
	False = &BoolLit{V: false}
)

// Bool returns the shared literal for b.
func Bool(b bool) *BoolLit {
	if b {
		return True
	}
	return False
}

// IntLit is an arbitrary-precision integer literal.
type IntLit struct {
	V    *big.Int
	hash uint64
}

func (*IntLit) Sort() Sort { return SortInt }
func (*IntLit) aTerm()     {}

// Int returns the interned Int literal for v.
func Int(v int64) *IntLit { return internInt(big.NewInt(v)) }

// IntBig returns the interned Int literal for the given big integer.
// The value is not copied and must not be mutated afterwards.
func IntBig(v *big.Int) *IntLit { return internInt(v) }

// RealLit is an exact rational literal.
type RealLit struct {
	V    *big.Rat
	hash uint64
}

func (*RealLit) Sort() Sort { return SortReal }
func (*RealLit) aTerm()     {}

// Real returns the interned Real literal for num/den.
func Real(num, den int64) *RealLit { return internRat(big.NewRat(num, den)) }

// RealBig returns the interned Real literal for the given rational.
// The value is not copied and must not be mutated afterwards.
func RealBig(v *big.Rat) *RealLit { return internRat(v) }

// StrLit is a string literal. The value is the already-unescaped Go
// string; printing re-applies SMT-LIB escaping.
type StrLit struct {
	V    string
	hash uint64
}

func (*StrLit) Sort() Sort { return SortString }
func (*StrLit) aTerm()     {}

// Str returns the interned String literal for v.
func Str(v string) *StrLit { return internStr(v) }

// App is the application of a builtin operator to arguments.
type App struct {
	Op   Op
	Args []Term
	sort Sort
	hash uint64
}

func (a *App) Sort() Sort { return a.sort }
func (*App) aTerm()       {}

// SortedVar is a sorted variable binding in a quantifier prefix.
type SortedVar struct {
	Name string
	Sort Sort
}

// Quant is a universally or existentially quantified formula.
type Quant struct {
	Forall bool
	Bound  []SortedVar
	Body   Term
	hash   uint64
}

func (*Quant) Sort() Sort { return SortBool }
func (*Quant) aTerm()     {}

// NewQuant builds an interned quantifier. The body must be boolean.
func NewQuant(forall bool, bound []SortedVar, body Term) (*Quant, error) {
	if body.Sort() != SortBool {
		return nil, fmt.Errorf("quantifier body has sort %v, want Bool", body.Sort())
	}
	if len(bound) == 0 {
		return nil, fmt.Errorf("quantifier with empty binder list")
	}
	return internQuant(forall, bound, body), nil
}

// MustQuant is NewQuant, panicking on error. It is intended for
// reconstruction of quantifiers whose pieces come from an existing
// well-formed quantifier (transformations, solver preprocessing).
func MustQuant(forall bool, bound []SortedVar, body Term) *Quant {
	q, err := NewQuant(forall, bound, body)
	if err != nil {
		panic(err)
	}
	return q
}

// NewApp builds a well-sorted application of op to args, reporting an
// error when arity or argument sorts do not match the operator's typing
// rule.
func NewApp(op Op, args ...Term) (Term, error) {
	if op <= OpInvalid || op >= opMax {
		return nil, fmt.Errorf("invalid operator %v", op)
	}
	info := &opTable[op]
	if len(args) < info.minAr || (info.maxAr != variadic && len(args) > info.maxAr) {
		return nil, fmt.Errorf("%s: got %d arguments, want %s", info.name, len(args), arityString(info))
	}
	sort, err := info.typing(args)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", info.name, err)
	}
	return internApp(op, sort, args), nil
}

// MustApp is NewApp, panicking on typing errors. It is intended for
// programmatic construction of terms whose sorts are known correct by
// construction (generators, fusion tables, tests).
func MustApp(op Op, args ...Term) Term {
	t, err := NewApp(op, args...)
	if err != nil {
		panic(err)
	}
	return t
}

// UncheckedApp constructs an application with an explicitly supplied
// result sort, bypassing the operator's typing rule. All production
// construction goes through NewApp; this exists so negative tests (and
// the static analyzer's own test suite) can forge ill-sorted terms.
// The result sort is part of the intern key, so a forged node never
// aliases a well-sorted node of the same shape.
func UncheckedApp(op Op, sort Sort, args ...Term) *App {
	return internApp(op, sort, args)
}

func arityString(info *opInfo) string {
	if info.maxAr == variadic {
		return fmt.Sprintf("at least %d", info.minAr)
	}
	if info.minAr == info.maxAr {
		return fmt.Sprintf("exactly %d", info.minAr)
	}
	return fmt.Sprintf("between %d and %d", info.minAr, info.maxAr)
}

// Convenience smart constructors used pervasively by generators, the
// fusion engine, and tests. All panic on ill-sorted input (MustApp).

// Not negates a boolean term.
func Not(t Term) Term { return MustApp(OpNot, t) }

// And conjoins boolean terms; And() of a single term returns the term.
func And(ts ...Term) Term {
	if len(ts) == 1 {
		return ts[0]
	}
	return MustApp(OpAnd, ts...)
}

// Or disjoins boolean terms; Or() of a single term returns the term.
func Or(ts ...Term) Term {
	if len(ts) == 1 {
		return ts[0]
	}
	return MustApp(OpOr, ts...)
}

// Eq builds an equality.
func Eq(a, b Term) Term { return MustApp(OpEq, a, b) }

// Ite builds an if-then-else.
func Ite(c, t, e Term) Term { return MustApp(OpIte, c, t, e) }

// Add, Sub, Mul, Neg build arithmetic terms.
func Add(ts ...Term) Term { return MustApp(OpAdd, ts...) }
func Sub(ts ...Term) Term { return MustApp(OpSub, ts...) }
func Mul(ts ...Term) Term { return MustApp(OpMul, ts...) }
func Neg(t Term) Term     { return MustApp(OpNeg, t) }

// Comparisons.
func Le(a, b Term) Term { return MustApp(OpLe, a, b) }
func Lt(a, b Term) Term { return MustApp(OpLt, a, b) }
func Ge(a, b Term) Term { return MustApp(OpGe, a, b) }
func Gt(a, b Term) Term { return MustApp(OpGt, a, b) }
