package ast

import (
	"math/big"
	"testing"
	"testing/quick"
)

// Property: integer literal printing is value-faithful — Print of
// IntBig(v) round-trips through the printed decimal (with the (- n)
// form for negatives).
func TestQuickIntLitPrint(t *testing.T) {
	f := func(v int64) bool {
		s := Print(Int(v))
		if v >= 0 {
			parsed, ok := new(big.Int).SetString(s, 10)
			return ok && parsed.Int64() == v
		}
		// (- n)
		if len(s) < 4 || s[:3] != "(- " || s[len(s)-1] != ')' {
			return false
		}
		parsed, ok := new(big.Int).SetString(s[3:len(s)-1], 10)
		return ok && -parsed.Int64() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: substitution then counting — after substituting every free
// occurrence of x by a constant, x no longer occurs free.
func TestQuickSubstituteEliminates(t *testing.T) {
	f := func(a, b int64) bool {
		x := NewVar("x", SortInt)
		term := And(
			Gt(Add(x, Int(a)), Int(b)),
			Eq(Mul(Int(2), x), Sub(x, Int(a))),
		)
		out, err := Substitute(term, map[string]Term{"x": Int(7)})
		if err != nil {
			return false
		}
		return CountFreeOccurrences(out, "x") == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SubstituteOccurrences with an always-false picker is the
// identity (pointer-equal tree), and with always-true equals full
// substitution.
func TestQuickSubstituteOccurrencesExtremes(t *testing.T) {
	f := func(a int64) bool {
		x := NewVar("x", SortInt)
		term := Or(Gt(x, Int(a)), Lt(Add(x, x), Int(a)))
		same, n, err := SubstituteOccurrences(term, "x", Int(a), func(int) bool { return false })
		if err != nil || same != term || n != 3 {
			return false
		}
		all, _, err := SubstituteOccurrences(term, "x", Int(a), func(int) bool { return true })
		if err != nil {
			return false
		}
		full, err := Substitute(term, map[string]Term{"x": Int(a)})
		if err != nil {
			return false
		}
		return Equal(all, full)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Equal is reflexive and Print-injective on generated
// arithmetic terms (equal prints imply Equal).
func TestQuickPrintEqualCoherence(t *testing.T) {
	f := func(a, b int64, pickMul bool) bool {
		x := NewVar("x", SortInt)
		var t1, t2 Term
		if pickMul {
			t1 = Mul(Int(a), x)
			t2 = Mul(Int(b), x)
		} else {
			t1 = Add(Int(a), x)
			t2 = Add(Int(b), x)
		}
		if !Equal(t1, t1) || !Equal(t2, t2) {
			return false
		}
		if (Print(t1) == Print(t2)) != Equal(t1, t2) {
			return false
		}
		return (a == b) == Equal(t1, t2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Transform with the identity function returns the identical
// tree (full sharing, no copies).
func TestQuickTransformIdentity(t *testing.T) {
	f := func(a, b int64) bool {
		x := NewVar("x", SortInt)
		term := And(Gt(x, Int(a)), Eq(Add(x, Int(b)), Int(a)))
		return Transform(term, func(t Term) Term { return t }) == term
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
