package ast

import (
	"fmt"
	"math/big"
	"sync"
	"testing"
)

// Structural equality must imply pointer equality for every constructor.
func TestInternPointerEquality(t *testing.T) {
	x1, x2 := NewVar("x", SortInt), NewVar("x", SortInt)
	if x1 != x2 {
		t.Errorf("NewVar not interned: %p vs %p", x1, x2)
	}
	if NewVar("x", SortReal) == x1 {
		t.Errorf("vars of different sorts interned together")
	}

	if Int(42) != Int(42) {
		t.Errorf("Int not interned")
	}
	if IntBig(big.NewInt(42)) != Int(42) {
		t.Errorf("IntBig and Int of same value not shared")
	}
	if Int(42) == Int(43) {
		t.Errorf("distinct ints interned together")
	}

	if Real(1, 2) != Real(2, 4) {
		t.Errorf("equal rationals (after normalization) not shared")
	}
	if Real(1, 2) == Real(1, 3) {
		t.Errorf("distinct rationals interned together")
	}

	if Str("ab") != Str("ab") {
		t.Errorf("Str not interned")
	}

	a1 := MustApp(OpAdd, x1, Int(1))
	a2 := MustApp(OpAdd, NewVar("x", SortInt), Int(1))
	if a1 != a2 {
		t.Errorf("structurally equal apps not shared")
	}
	if MustApp(OpAdd, x1, Int(2)) == a1 {
		t.Errorf("distinct apps interned together")
	}

	q1 := MustQuant(true, []SortedVar{{Name: "y", Sort: SortInt}}, Eq(NewVar("y", SortInt), Int(0)))
	q2 := MustQuant(true, []SortedVar{{Name: "y", Sort: SortInt}}, Eq(NewVar("y", SortInt), Int(0)))
	if q1 != q2 {
		t.Errorf("structurally equal quantifiers not shared")
	}
	if MustQuant(false, q1.Bound, q1.Body) == q1 {
		t.Errorf("forall and exists interned together")
	}
}

// Rebuilding a term through transformations must return the original
// node when nothing changed, and the identical interned node when the
// same structure is rebuilt from scratch.
func TestInternTransformIdentity(t *testing.T) {
	x := NewVar("x", SortInt)
	orig := And(Le(Int(0), x), Lt(x, Int(10)))
	rebuilt := And(Le(Int(0), NewVar("x", SortInt)), Lt(NewVar("x", SortInt), Int(10)))
	if orig != rebuilt {
		t.Fatalf("rebuilt term is a distinct node")
	}
	same := Transform(orig, func(t Term) Term { return t })
	if same != orig {
		t.Fatalf("identity Transform returned a distinct node")
	}
}

// UncheckedApp forgeries must not alias well-sorted nodes of the same
// shape (the result sort is part of the intern key), while equal
// forgeries still share a node.
func TestInternUncheckedAppSortIsolation(t *testing.T) {
	good := MustApp(OpAdd, Int(1), Int(2))
	forged := UncheckedApp(OpAdd, SortBool, Int(1), Int(2))
	if Term(good) == Term(forged) {
		t.Fatalf("ill-sorted forgery aliased the well-sorted node")
	}
	if forged.Sort() != SortBool {
		t.Fatalf("forged sort lost: got %v", forged.Sort())
	}
	if good.(*App).Sort() != SortInt {
		t.Fatalf("well-sorted node corrupted: got %v", good.(*App).Sort())
	}
	if UncheckedApp(OpAdd, SortBool, Int(1), Int(2)) != forged {
		t.Fatalf("equal forgeries not shared")
	}
}

// Hash must agree with Equal: equal terms hash equal, and the cached
// hash matches a fresh recomputation on an uncached clone.
func TestHashConsistentWithEqual(t *testing.T) {
	x := NewVar("x", SortInt)
	terms := []Term{
		x, True, False, Int(-7), Real(3, 4), Str("s"),
		MustApp(OpAdd, x, Int(1)),
		MustQuant(false, []SortedVar{{Name: "z", Sort: SortReal}}, Eq(NewVar("z", SortReal), Real(0, 1))),
	}
	for _, tm := range terms {
		if Hash(tm) == 0 {
			t.Errorf("zero hash for %s", Print(tm))
		}
	}
	// A forged uncached clone of an interned app must hash identically.
	a := MustApp(OpAdd, x, Int(1)).(*App)
	clone := &App{Op: a.Op, Args: a.Args, sort: a.sort}
	if Hash(clone) != Hash(a) {
		t.Errorf("uncached clone hash differs from interned hash")
	}
	if !Equal(clone, a) {
		t.Errorf("Equal rejects uncached clone")
	}
	// Sort is excluded from the hash because Equal ignores App sorts.
	forged := &App{Op: a.Op, Args: a.Args, sort: SortBool}
	if Hash(forged) != Hash(a) {
		t.Errorf("hash separates terms Equal considers the same")
	}
}

// Concurrent construction of overlapping terms must converge on single
// nodes without races (run under -race).
func TestInternConcurrent(t *testing.T) {
	const goroutines = 16
	results := make([][]Term, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]Term, 0, 64)
			for i := 0; i < 64; i++ {
				v := NewVar(fmt.Sprintf("v%d", i%8), SortInt)
				out = append(out, And(Le(Int(int64(i%4)), v), Lt(v, Int(100))))
			}
			results[g] = out
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range results[0] {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d produced a distinct node for term %d", g, i)
			}
		}
	}
}
