package ast

import (
	"fmt"
	"sort"
)

// FreeVars returns the free variables of t, deduplicated by name, in
// first-occurrence order. Quantifier-bound occurrences are excluded.
func FreeVars(t Term) []*Var {
	var out []*Var
	collectFree(t, nil, &out)
	return out
}

// collectFree appends free variables to out. Deduplication scans out
// directly (free-variable sets are small), and the bound map is only
// allocated once a quantifier is reached, so the dominant
// quantifier-free case allocates nothing beyond the result slice.
func collectFree(t Term, bound map[string]int, out *[]*Var) {
	switch n := t.(type) {
	case *Var:
		if bound[n.Name] != 0 {
			return
		}
		for _, v := range *out {
			if v.Name == n.Name {
				return
			}
		}
		*out = append(*out, n)
	case *App:
		for _, a := range n.Args {
			collectFree(a, bound, out)
		}
	case *Quant:
		if bound == nil {
			bound = map[string]int{}
		}
		for _, b := range n.Bound {
			bound[b.Name]++
		}
		collectFree(n.Body, bound, out)
		for _, b := range n.Bound {
			bound[b.Name]--
		}
	}
}

// HasFreeVars reports whether t contains at least one free variable,
// without materializing the set (and, for quantifier-free terms,
// without allocating).
func HasFreeVars(t Term) bool {
	return hasFree(t, nil)
}

func hasFree(t Term, bound map[string]int) bool {
	switch n := t.(type) {
	case *Var:
		return bound[n.Name] == 0
	case *App:
		for _, a := range n.Args {
			if hasFree(a, bound) {
				return true
			}
		}
	case *Quant:
		if bound == nil {
			bound = map[string]int{}
		}
		for _, b := range n.Bound {
			bound[b.Name]++
		}
		free := hasFree(n.Body, bound)
		for _, b := range n.Bound {
			bound[b.Name]--
		}
		return free
	}
	return false
}

// FreeVarsByName returns the free variables of t keyed by name.
func FreeVarsByName(t Term) map[string]*Var {
	out := map[string]*Var{}
	for _, v := range FreeVars(t) {
		out[v.Name] = v
	}
	return out
}

// SortedFreeVarNames returns the free-variable names of t sorted
// lexicographically — a convenience for deterministic iteration.
func SortedFreeVarNames(t Term) []string {
	vs := FreeVars(t)
	names := make([]string, len(vs))
	for i, v := range vs {
		names[i] = v.Name
	}
	sort.Strings(names)
	return names
}

// CountFreeOccurrences returns the number of free occurrences of the
// variable named name in t.
func CountFreeOccurrences(t Term, name string) int {
	n := 0
	walkFreeOccurrences(t, name, 0, func() { n++ })
	return n
}

func walkFreeOccurrences(t Term, name string, boundDepth int, hit func()) {
	switch n := t.(type) {
	case *Var:
		if n.Name == name && boundDepth == 0 {
			hit()
		}
	case *App:
		for _, a := range n.Args {
			walkFreeOccurrences(a, name, boundDepth, hit)
		}
	case *Quant:
		d := boundDepth
		for _, b := range n.Bound {
			if b.Name == name {
				d++
			}
		}
		walkFreeOccurrences(n.Body, name, d, hit)
	}
}

// Substitute replaces every free occurrence of each variable in repl by
// its mapped term. Replacement terms must not capture: callers are
// responsible for ensuring replacement terms contain no variables that
// are bound at substitution sites (fusion operates on quantifier-free
// positions of freshly named variables, so this holds by construction;
// a capture is reported as an error).
func Substitute(t Term, repl map[string]Term) (Term, error) {
	s := &substituter{repl: repl, selectAll: true}
	out := s.subst(t, map[string]int{})
	if s.err != nil {
		return nil, s.err
	}
	return out, nil
}

// MustSubstitute is Substitute, panicking on capture errors.
func MustSubstitute(t Term, repl map[string]Term) Term {
	out, err := Substitute(t, repl)
	if err != nil {
		panic(err)
	}
	return out
}

// SubstituteOccurrences implements the paper's φ[e/x]R: it replaces the
// free occurrences of the variable named name for which pick returns
// true. pick is called once per free occurrence in preorder with the
// occurrence index (0-based). The number of free occurrences visited is
// returned alongside the rewritten term.
func SubstituteOccurrences(t Term, name string, e Term, pick func(i int) bool) (Term, int, error) {
	s := &substituter{
		repl:      map[string]Term{name: e},
		selectAll: false,
		pick:      pick,
	}
	out := s.subst(t, map[string]int{})
	if s.err != nil {
		return nil, 0, s.err
	}
	return out, s.occ, nil
}

type substituter struct {
	repl      map[string]Term
	selectAll bool
	pick      func(i int) bool
	occ       int
	err       error
}

func (s *substituter) subst(t Term, bound map[string]int) Term {
	if s.err != nil {
		return t
	}
	switch n := t.(type) {
	case *Var:
		e, ok := s.repl[n.Name]
		if !ok || bound[n.Name] > 0 {
			return t
		}
		if !s.selectAll {
			i := s.occ
			s.occ++
			if !s.pick(i) {
				return t
			}
		}
		// Capture check: no free variable of e may be bound here.
		if len(bound) > 0 {
			for _, fv := range FreeVars(e) {
				if bound[fv.Name] > 0 {
					s.err = fmt.Errorf("substitution of %s captures %s", n.Name, fv.Name)
					return t
				}
			}
		}
		if e.Sort() != n.VSort {
			s.err = fmt.Errorf("substitution of %s: replacement has sort %v, want %v", n.Name, e.Sort(), n.VSort)
			return t
		}
		return e
	case *App:
		changed := false
		args := n.Args
		for i, a := range n.Args {
			na := s.subst(a, bound)
			if na != a {
				if !changed {
					args = make([]Term, len(n.Args))
					copy(args, n.Args)
					changed = true
				}
				args[i] = na
			}
		}
		if !changed {
			return t
		}
		return MustApp(n.Op, args...)
	case *Quant:
		for _, b := range n.Bound {
			bound[b.Name]++
		}
		body := s.subst(n.Body, bound)
		for _, b := range n.Bound {
			bound[b.Name]--
		}
		if body == n.Body {
			return t
		}
		return internQuant(n.Forall, n.Bound, body)
	default:
		return t
	}
}

// RenameFreeVars renames free variables according to the name map,
// preserving sorts. Names absent from the map are unchanged.
func RenameFreeVars(t Term, names map[string]string) Term {
	repl := map[string]Term{}
	for _, v := range FreeVars(t) {
		if nn, ok := names[v.Name]; ok {
			repl[v.Name] = NewVar(nn, v.VSort)
		}
	}
	if len(repl) == 0 {
		return t
	}
	return MustSubstitute(t, repl)
}
