package ast

import (
	"math/big"
	"sync"
	"weak"
)

// Hash-consing / term interning.
//
// Every constructor in this package routes through the intern tables
// below, so structurally equal terms are represented by one shared
// node: structural equality implies pointer equality for all
// simultaneously-live terms built through the public constructors.
// Each interned node caches its structural hash (and App nodes already
// cache their sort), so the hot paths — generator, fusion engine,
// solver preprocessing, printing — never re-walk a subtree to compare,
// hash, or key it: a live term IS its identity and can be used directly
// as a map key.
//
// The tables hold weak pointers. A fuzzing campaign churns through
// fresh variable names (rename-apart, skolemization) by the million, so
// a strong table would grow the live heap without bound and drown the
// run in GC mark work. Weak entries let dead terms be collected; dead
// entries are swept out amortized (each shard sweeps after doubling),
// keeping table memory proportional to the live term set. The guarantee
// that matters for determinism is unaffected: while a term is
// reachable, every structurally equal construction returns that same
// node, because a reachable term's entry never reports nil.
//
// The tables are sharded and mutex-protected, so concurrent campaign
// workers intern safely; a lookup that races an insert of the same
// structure returns the single winning node.

const internShardCount = 64

// internShard is one lock's worth of a per-kind intern table.
type internShard[T any] struct {
	mu      sync.Mutex
	buckets map[uint64][]weak.Pointer[T]
	size    int // entries stored, live or dead
	sweepAt int
}

func (sh *internShard[T]) bucket(h uint64) []weak.Pointer[T] {
	return sh.buckets[h]
}

// compact drops the dead entries discovered during a bucket scan, so a
// bucket is cleaned on the first lookup after its terms die instead of
// waiting for the next shard-wide sweep. keep is the scanned bucket
// with live entries compacted to the front.
func (sh *internShard[T]) compact(h uint64, keep []weak.Pointer[T], scanned int) {
	if len(keep) == scanned {
		return
	}
	sh.size -= scanned - len(keep)
	if len(keep) == 0 {
		delete(sh.buckets, h)
	} else {
		sh.buckets[h] = keep
	}
}

// insert adds a freshly built node under h, sweeping dead entries when
// the shard has doubled since the last sweep.
func (sh *internShard[T]) insert(h uint64, p *T) {
	if sh.buckets == nil {
		sh.buckets = make(map[uint64][]weak.Pointer[T])
	}
	sh.buckets[h] = append(sh.buckets[h], weak.Make(p))
	sh.size++
	if sh.size > sh.sweepAt {
		sh.sweep()
	}
}

func (sh *internShard[T]) sweep() {
	live := 0
	for h, bucket := range sh.buckets {
		out := bucket[:0]
		for _, wp := range bucket {
			if wp.Value() != nil {
				out = append(out, wp)
			}
		}
		if len(out) == 0 {
			delete(sh.buckets, h)
		} else {
			sh.buckets[h] = out
			live += len(out)
		}
	}
	sh.size = live
	sh.sweepAt = 2 * live
	if sh.sweepAt < 512 {
		sh.sweepAt = 512
	}
}

var (
	varTable   [internShardCount]internShard[Var]
	intTable   [internShardCount]internShard[IntLit]
	realTable  [internShardCount]internShard[RealLit]
	strTable   [internShardCount]internShard[StrLit]
	appTable   [internShardCount]internShard[App]
	quantTable [internShardCount]internShard[Quant]
)

// FNV-1a, with a per-kind seed byte so leaves of different kinds with
// equal payloads (e.g. the variable "a" and the string literal "a")
// hash apart.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

const (
	kindVar byte = iota + 1
	kindBool
	kindInt
	kindReal
	kindStr
	kindApp
	kindQuant
)

func hashKind(k byte) uint64 { return (fnvOffset ^ uint64(k)) * fnvPrime }

func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}

func hashUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime
		v >>= 8
	}
	return h
}

// nonzero reserves 0 as the "hash not yet computed" sentinel stored in
// node hash fields.
func nonzero(h uint64) uint64 {
	if h == 0 {
		return 1
	}
	return h
}

func hashVar(name string, sort Sort) uint64 {
	return nonzero(hashUint64(hashString(hashKind(kindVar), name), uint64(sort)))
}

func hashBigInt(h uint64, v *big.Int) uint64 {
	h = hashUint64(h, uint64(int64(v.Sign())))
	for _, w := range v.Bits() {
		h = hashUint64(h, uint64(w))
	}
	return h
}

func hashInt(v *big.Int) uint64 {
	return nonzero(hashBigInt(hashKind(kindInt), v))
}

func hashRat(v *big.Rat) uint64 {
	h := hashBigInt(hashKind(kindReal), v.Num())
	return nonzero(hashBigInt(h, v.Denom()))
}

func hashStr(v string) uint64 {
	return nonzero(hashString(hashKind(kindStr), v))
}

// hashApp deliberately excludes the result sort: Equal ignores App
// sorts, and the hash must never separate terms Equal considers the
// same. internApp compares sorts explicitly instead.
func hashApp(op Op, args []Term) uint64 {
	h := hashUint64(hashKind(kindApp), uint64(op))
	for _, a := range args {
		h = hashUint64(h, Hash(a))
	}
	return nonzero(h)
}

func hashQuant(forall bool, bound []SortedVar, body Term) uint64 {
	h := hashKind(kindQuant)
	if forall {
		h = hashUint64(h, 1)
	} else {
		h = hashUint64(h, 2)
	}
	for _, b := range bound {
		h = hashString(h, b.Name)
		h = hashUint64(h, uint64(b.Sort))
	}
	return nonzero(hashUint64(h, Hash(body)))
}

// Hash returns the term's structural hash. Interned nodes carry it
// precomputed; terms forged outside the constructors are hashed on the
// fly (and never cached, so concurrent use stays race-free).
func Hash(t Term) uint64 {
	switch n := t.(type) {
	case *Var:
		if n.hash != 0 {
			return n.hash
		}
		return hashVar(n.Name, n.VSort)
	case *BoolLit:
		if n.V {
			return nonzero(hashUint64(hashKind(kindBool), 1))
		}
		return nonzero(hashUint64(hashKind(kindBool), 2))
	case *IntLit:
		if n.hash != 0 {
			return n.hash
		}
		return hashInt(n.V)
	case *RealLit:
		if n.hash != 0 {
			return n.hash
		}
		return hashRat(n.V)
	case *StrLit:
		if n.hash != 0 {
			return n.hash
		}
		return hashStr(n.V)
	case *App:
		if n.hash != 0 {
			return n.hash
		}
		return hashApp(n.Op, n.Args)
	case *Quant:
		if n.hash != 0 {
			return n.hash
		}
		return hashQuant(n.Forall, n.Bound, n.Body)
	default:
		return nonzero(hashKind(0))
	}
}

func internVar(name string, sort Sort) *Var {
	h := hashVar(name, sort)
	sh := &varTable[h&(internShardCount-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	bucket := sh.bucket(h)
	keep := bucket[:0]
	var found *Var
	for _, wp := range bucket {
		v := wp.Value()
		if v == nil {
			continue
		}
		keep = append(keep, wp)
		if found == nil && v.Name == name && v.VSort == sort {
			found = v
		}
	}
	sh.compact(h, keep, len(bucket))
	if found != nil {
		return found
	}
	v := &Var{Name: name, VSort: sort, hash: h}
	sh.insert(h, v)
	return v
}

func internInt(val *big.Int) *IntLit {
	h := hashInt(val)
	sh := &intTable[h&(internShardCount-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	bucket := sh.bucket(h)
	keep := bucket[:0]
	var found *IntLit
	for _, wp := range bucket {
		l := wp.Value()
		if l == nil {
			continue
		}
		keep = append(keep, wp)
		if found == nil && l.V.Cmp(val) == 0 {
			found = l
		}
	}
	sh.compact(h, keep, len(bucket))
	if found != nil {
		return found
	}
	l := &IntLit{V: val, hash: h}
	sh.insert(h, l)
	return l
}

func internRat(val *big.Rat) *RealLit {
	h := hashRat(val)
	sh := &realTable[h&(internShardCount-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	bucket := sh.bucket(h)
	keep := bucket[:0]
	var found *RealLit
	for _, wp := range bucket {
		l := wp.Value()
		if l == nil {
			continue
		}
		keep = append(keep, wp)
		if found == nil && l.V.Cmp(val) == 0 {
			found = l
		}
	}
	sh.compact(h, keep, len(bucket))
	if found != nil {
		return found
	}
	l := &RealLit{V: val, hash: h}
	sh.insert(h, l)
	return l
}

func internStr(val string) *StrLit {
	h := hashStr(val)
	sh := &strTable[h&(internShardCount-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	bucket := sh.bucket(h)
	keep := bucket[:0]
	var found *StrLit
	for _, wp := range bucket {
		l := wp.Value()
		if l == nil {
			continue
		}
		keep = append(keep, wp)
		if found == nil && l.V == val {
			found = l
		}
	}
	sh.compact(h, keep, len(bucket))
	if found != nil {
		return found
	}
	l := &StrLit{V: val, hash: h}
	sh.insert(h, l)
	return l
}

// internApp hash-conses an application. Children built through this
// package are themselves interned, so the structural comparison is one
// pointer comparison per argument. The sort is part of the match (but
// not the hash), which keeps UncheckedApp forgeries (negative tests)
// from colliding with well-sorted nodes of the same shape.
func internApp(op Op, sort Sort, args []Term) *App {
	h := hashApp(op, args)
	sh := &appTable[h&(internShardCount-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	bucket := sh.bucket(h)
	keep := bucket[:0]
	var found *App
scan:
	for _, wp := range bucket {
		a := wp.Value()
		if a == nil {
			continue
		}
		keep = append(keep, wp)
		if found != nil || a.Op != op || a.sort != sort || len(a.Args) != len(args) {
			continue
		}
		for i := range args {
			if a.Args[i] != args[i] {
				continue scan
			}
		}
		found = a
	}
	sh.compact(h, keep, len(bucket))
	if found != nil {
		return found
	}
	a := &App{Op: op, Args: args, sort: sort, hash: h}
	sh.insert(h, a)
	return a
}

func internQuant(forall bool, bound []SortedVar, body Term) *Quant {
	h := hashQuant(forall, bound, body)
	sh := &quantTable[h&(internShardCount-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	bucket := sh.bucket(h)
	keep := bucket[:0]
	var found *Quant
scan:
	for _, wp := range bucket {
		q := wp.Value()
		if q == nil {
			continue
		}
		keep = append(keep, wp)
		if found != nil || q.Forall != forall || len(q.Bound) != len(bound) || q.Body != body {
			continue
		}
		for i := range bound {
			if q.Bound[i] != bound[i] {
				continue scan
			}
		}
		found = q
	}
	sh.compact(h, keep, len(bucket))
	if found != nil {
		return found
	}
	q := &Quant{Forall: forall, Bound: bound, Body: body, hash: h}
	sh.insert(h, q)
	return q
}
