package solver

import (
	"testing"

	"repro/internal/eval"
)

// Tests for cross-theory behaviour: QF_SLIA formulas mixing string and
// integer reasoning, boolean structure over both, and the fixed
// division-by-zero interpretation interacting with theory dispatch.

func TestCombinedStringIntSat(t *testing.T) {
	out := wantResult(t, `
(set-logic QF_SLIA)
(declare-fun a () String)
(declare-fun b () String)
(declare-fun n () Int)
(assert (= a (str.++ b "xy")))
(assert (= n (+ (str.len b) 1)))
(assert (= (str.len a) 4))
(assert (> n 2))
`, ResSat)
	n := out.Model["n"].(eval.IntV)
	if n.V.Int64() != 3 {
		t.Errorf("n = %v want 3 (len b = 2)", n)
	}
}

func TestCombinedStringIntUnsat(t *testing.T) {
	wantResult(t, `
(set-logic QF_SLIA)
(declare-fun a () String)
(declare-fun b () String)
(assert (= a (str.++ b b)))
(assert (= (str.len a) 3))
`, ResUnsat) // |a| = 2|b| cannot be odd
}

func TestCombinedBooleanGuards(t *testing.T) {
	wantResult(t, `
(set-logic QF_SLIA)
(declare-fun a () String)
(declare-fun p () Bool)
(assert (= p (str.prefixof "ab" a)))
(assert (ite p (= (str.len a) 3) false))
`, ResSat)
	wantResult(t, `
(set-logic QF_SLIA)
(declare-fun a () String)
(declare-fun p () Bool)
(assert (= p (str.prefixof "ab" a)))
(assert p)
(assert (< (str.len a) 2))
`, ResUnsat)
}

func TestCombinedToIntArithmetic(t *testing.T) {
	out := wantResult(t, `
(set-logic QF_SLIA)
(declare-fun a () String)
(declare-fun n () Int)
(assert (= a "17"))
(assert (= n (+ (str.to_int a) 5)))
`, ResSat)
	n := out.Model["n"].(eval.IntV)
	if n.V.Int64() != 22 {
		t.Errorf("n = %v want 22", n)
	}
}

func TestDisjointTheoriesInOneFormula(t *testing.T) {
	// Arithmetic-only and string-only conjuncts in one script: the
	// string checker handles the combined conjunction.
	wantResult(t, `
(set-logic QF_SLIA)
(declare-fun x () Int)
(declare-fun s () String)
(assert (> (* 2 x) 7))
(assert (= s "ok"))
`, ResSat)
	wantResult(t, `
(set-logic QF_SLIA)
(declare-fun x () Int)
(declare-fun s () String)
(assert (> x 0))
(assert (< x 0))
(assert (= s "ok"))
`, ResUnsat)
}

func TestDivZeroAcrossTheories(t *testing.T) {
	// str.to_int feeding a division: (div 7 (str.to_int "")) =
	// (div 7 -1) = -7.
	out := wantResult(t, `
(set-logic QF_SLIA)
(declare-fun n () Int)
(assert (= n (div 7 (str.to_int ""))))
`, ResSat)
	n := out.Model["n"].(eval.IntV)
	if n.V.Int64() != -7 {
		t.Errorf("n = %v want -7", n)
	}
}

func TestIndexOfReasoning(t *testing.T) {
	wantResult(t, `
(set-logic QF_SLIA)
(declare-fun a () String)
(declare-fun i () Int)
(assert (= a "abcabc"))
(assert (= i (str.indexof a "bc" 2)))
(assert (= i 4))
`, ResSat)
	wantResult(t, `
(set-logic QF_SLIA)
(declare-fun a () String)
(assert (= a "abc"))
(assert (= (str.indexof a "zz" 0) 1))
`, ResUnsat)
}

func TestLargeConjunctionStaysDecided(t *testing.T) {
	// A wider formula with many independent facts must still be decided
	// within default budgets.
	src := `(set-logic QF_SLIA)
(declare-fun a () String)
(declare-fun b () String)
(declare-fun n () Int)
(declare-fun m () Int)
(assert (= a "hello"))
(assert (str.prefixof "he" a))
(assert (str.suffixof "lo" a))
(assert (str.contains a "ell"))
(assert (= b (str.substr a 1 3)))
(assert (= n (str.len b)))
(assert (= m (* n 2)))
(assert (> m 5))
(assert (= (str.at a 0) "h"))
(check-sat)
`
	out := wantResult(t, src, ResSat)
	if string(out.Model["b"].(eval.StrV)) != "ell" {
		t.Errorf("b = %v", out.Model["b"])
	}
}
