package sat

import (
	"repro/internal/telemetry"
)

// Incremental counters. Push/Pop totals count frame operations;
// learned-reuse counts the learned clauses that survive a Pop because
// their derivations touched only retained frames. All three increment
// at deterministic points of the assert/solve sequence, so they are
// step-based like every other counter.
var (
	cPushes        = telemetry.NewCounter("yy_solver_push_total", "assertion frames pushed")
	cPops          = telemetry.NewCounter("yy_solver_pop_total", "assertion frames popped")
	cLearnedReused = telemetry.NewCounter("yy_learned_reused_total", "learned clauses retained across a Pop")
)

// frameMark snapshots the solver's root state at a Push: everything
// above these highwater marks belongs to the pushed frame and is
// retracted on the matching Pop. Learned clauses are the exception —
// they are evicted by dependency tag, not position, so lemmas whose
// derivations only used retained frames survive.
type frameMark struct {
	nVars    int
	nClauses int
	nLearned int
	trailLen int
	ok       bool
}

// Frame returns the current assertion-frame depth (0 = base).
func (s *Solver) Frame() int { return s.frame }

// NumLearned reports how many learned clauses are currently attached —
// the pool a later frame's Solve starts from.
func (s *Solver) NumLearned() int { return len(s.learned) }

// Push opens a new assertion frame. Clauses and variables added after
// a Push are retracted by the matching Pop; the solver instance — its
// trail prefix, learned clauses from earlier frames, variable
// activities, and saved phases — stays alive across the boundary.
func (s *Solver) Push() {
	s.backtrackTo(0)
	s.frame++
	s.frames = append(s.frames, frameMark{
		nVars:    s.nVars,
		nClauses: len(s.clauses),
		nLearned: len(s.learned),
		trailLen: len(s.trail),
		ok:       s.ok,
	})
	s.Telem.Inc(cPushes)
}

// Pop closes the top assertion frame: the trail is rewound to the
// frame boundary, clauses and variables added inside the frame are
// detached and deallocated, and learned clauses are evicted exactly
// when their dependency tag exceeds the restored frame — lemmas
// derived purely from retained assertions keep working for the next
// Solve. Panics when no frame is open.
func (s *Solver) Pop() {
	if len(s.frames) == 0 {
		panic("sat: Pop without matching Push")
	}
	f := s.frames[len(s.frames)-1]
	s.frames = s.frames[:len(s.frames)-1]
	s.frame--
	s.Telem.Inc(cPops)

	// Rewind the trail to the frame boundary. Decision levels first
	// (backtrackTo), then the root segment the frame appended. Root
	// assignments implied only by retained clauses are re-derivable by
	// the next Solve, so positional rewind is sound; assignments
	// implied by popped clauses MUST go, so it is also necessary.
	s.backtrackTo(0)
	for i := len(s.trail) - 1; i >= f.trailLen; i-- {
		v := s.trail[i].Var()
		s.phase[v] = s.assign[v]
		s.assign[v] = lUndef
		s.reason[v] = nil
		if v <= f.nVars {
			s.order.push(v)
		}
	}
	s.trail = s.trail[:f.trailLen]
	s.qhead = f.trailLen

	// Detach and drop the frame's problem clauses.
	for _, c := range s.clauses[f.nClauses:] {
		s.detach(c)
	}
	s.clauses = s.clauses[:f.nClauses]

	// Evict learned clauses by dependency tag. A clause tagged above
	// the restored frame was derived (transitively, through reason
	// clauses and skipped root assignments) from at least one popped
	// assertion and would be unsound to keep; everything else is a
	// theory-free consequence of the retained frames and is reused.
	reused := int64(0)
	kept := s.learned[:0]
	for i, c := range s.learned {
		if c.tag <= s.frame {
			kept = append(kept, c)
			if i >= f.nLearned {
				reused++
			}
		} else {
			s.detach(c)
		}
	}
	// Nil the evicted tail so dropped clauses are collectable.
	for i := len(kept); i < len(s.learned); i++ {
		s.learned[i] = nil
	}
	s.learned = kept
	s.Telem.Add(cLearnedReused, reused)

	// Deallocate the frame's variables. Clauses referencing them are
	// exactly the ones just detached (a clause referencing a frame-f
	// variable cannot have been added, or derived, before frame f).
	s.order.dropAbove(f.nVars)
	s.assign = s.assign[:f.nVars+1]
	s.level = s.level[:f.nVars+1]
	s.reason = s.reason[:f.nVars+1]
	s.activity = s.activity[:f.nVars+1]
	s.phase = s.phase[:f.nVars+1]
	s.rootTag = s.rootTag[:f.nVars+1]
	s.watches = s.watches[:(f.nVars+1)*2]
	s.nVars = f.nVars

	// A root-level contradiction discovered inside the frame may have
	// depended on popped clauses, so ok is restored to its Push-time
	// value. If the contradiction was in fact implied by retained
	// frames alone, CDCL completeness rediscovers it on the next Solve.
	s.ok = f.ok
}

// detach removes a clause from its two watch lists. Watched positions
// are always lits[0] and lits[1] (propagate maintains this invariant
// when it moves a watch).
func (s *Solver) detach(c *clause) {
	for _, l := range [2]Lit{c.lits[0], c.lits[1]} {
		ws := s.watches[l.Neg().index()]
		for i, w := range ws {
			if w == c {
				ws[i] = ws[len(ws)-1]
				ws[len(ws)-1] = nil
				s.watches[l.Neg().index()] = ws[:len(ws)-1]
				break
			}
		}
	}
}

// dropAbove removes every variable above limit from the heap and
// restores the heap property over the survivors.
func (h *varHeap) dropAbove(limit int) {
	kept := h.heap[:0]
	for _, v := range h.heap {
		if v <= limit {
			kept = append(kept, v)
		} else {
			delete(h.pos, v)
		}
	}
	h.heap = kept
	for i, v := range h.heap {
		h.pos[v] = i
	}
	for i := len(h.heap)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}
