package sat

import (
	"math/rand"
	"testing"
)

func TestPushPopBasic(t *testing.T) {
	s := New()
	a, b := Lit(s.NewVar()), Lit(s.NewVar())
	s.AddClause(a, b)
	if got := s.Solve(); got != Sat {
		t.Fatalf("base Solve = %v", got)
	}
	s.Push()
	s.AddClause(-a)
	s.AddClause(-b)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("frame-1 Solve = %v", got)
	}
	s.Pop()
	if got := s.Solve(); got != Sat {
		t.Fatalf("post-Pop Solve = %v", got)
	}
	if s.Frame() != 0 {
		t.Errorf("Frame = %d, want 0", s.Frame())
	}
}

func TestPopWithoutPushPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pop on frame 0 should panic")
		}
	}()
	New().Pop()
}

// TestPopRetractsFrameVars checks that variables allocated inside a
// frame are deallocated on Pop and can be re-allocated afterwards.
func TestPopRetractsFrameVars(t *testing.T) {
	s := New()
	a := Lit(s.NewVar())
	s.AddClause(a)
	s.Push()
	x := Lit(s.NewVar())
	s.AddClause(-a, x)
	if got := s.Solve(); got != Sat {
		t.Fatalf("frame-1 Solve = %v", got)
	}
	s.Pop()
	if s.NumVars() != 1 {
		t.Fatalf("NumVars after Pop = %d, want 1", s.NumVars())
	}
	y := Lit(s.NewVar()) // reuses the index
	s.AddClause(-y)
	if got := s.Solve(); got != Sat {
		t.Fatalf("post-Pop Solve = %v", got)
	}
	if s.Value(y.Var()) {
		t.Error("y should be false")
	}
}

// TestLearnedEviction forces a lemma derived from frame-local clauses
// and checks the lemma dies with its frame: after the Pop, the popped
// constraint must be gone entirely.
func TestLearnedEviction(t *testing.T) {
	s := New()
	x, y := Lit(s.NewVar()), Lit(s.NewVar())
	s.Push()
	// Together these force -x; solving learns that as a unit or
	// backtracks through it.
	s.AddClause(-x, y)
	s.AddClause(-x, -y)
	if got := s.Solve(); got != Sat {
		t.Fatalf("frame-1 Solve = %v", got)
	}
	if s.Value(x.Var()) {
		t.Fatal("frame-1 model should set x false")
	}
	s.Pop()
	// Everything learned above depended on frame 1; x must be free again.
	s.AddClause(x)
	if got := s.Solve(); got != Sat {
		t.Fatalf("post-Pop Solve = %v, want Sat", got)
	}
	if !s.Value(x.Var()) {
		t.Error("x should be true")
	}
}

// TestLemmaRetention checks AddLemma's contract: a lemma over base
// variables added inside a frame survives the frame's Pop.
func TestLemmaRetention(t *testing.T) {
	s := New()
	x, y := Lit(s.NewVar()), Lit(s.NewVar())
	s.AddClause(x, y)
	s.Push()
	s.AddLemma(-x, -y) // tagged frame 0: both vars are base vars
	if got := s.Solve(); got != Sat {
		t.Fatalf("frame-1 Solve = %v", got)
	}
	s.Pop()
	s.AddClause(x)
	s.AddClause(y)
	// The retained lemma contradicts x∧y.
	if got := s.Solve(); got != Unsat {
		t.Fatalf("post-Pop Solve = %v, want Unsat from retained lemma", got)
	}
}

// randomClauses builds a random 3-CNF over n vars.
func randomClauses(rng *rand.Rand, n, m int) [][]Lit {
	out := make([][]Lit, m)
	for i := range out {
		c := make([]Lit, 3)
		for j := range c {
			l := Lit(rng.Intn(n) + 1)
			if rng.Intn(2) == 1 {
				l = -l
			}
			c[j] = l
		}
		out[i] = c
	}
	return out
}

func solveFresh(n int, groups ...[][]Lit) Status {
	s := New()
	for i := 0; i < n; i++ {
		s.NewVar()
	}
	for _, g := range groups {
		for _, c := range g {
			s.AddClause(c...)
		}
	}
	return s.Solve()
}

// TestIncrementalMatchesMonolithic drives random push/pop sequences and
// checks every Solve verdict against a fresh solver holding exactly the
// live assertions. This is the soundness test for frame-tagged learned
// retention: a stale lemma surviving a Pop, or a lost assertion, shows
// up as a verdict mismatch.
func TestIncrementalMatchesMonolithic(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(8)
		base := randomClauses(rng, n, 2+rng.Intn(10))
		inc := New()
		for i := 0; i < n; i++ {
			inc.NewVar()
		}
		for _, c := range base {
			inc.AddClause(c...)
		}
		if got, want := inc.Solve(), solveFresh(n, base); got != want {
			t.Fatalf("seed %d: base verdict %v, fresh %v", seed, got, want)
		}
		// A few rounds of push extra / solve / pop / solve.
		for round := 0; round < 4; round++ {
			extra := randomClauses(rng, n, 1+rng.Intn(8))
			inc.Push()
			for _, c := range extra {
				inc.AddClause(c...)
			}
			if got, want := inc.Solve(), solveFresh(n, base, extra); got != want {
				t.Fatalf("seed %d round %d: framed verdict %v, fresh %v", seed, round, got, want)
			}
			inc.Pop()
			if got, want := inc.Solve(), solveFresh(n, base); got != want {
				t.Fatalf("seed %d round %d: post-Pop verdict %v, fresh %v", seed, round, got, want)
			}
		}
	}
}

// TestNestedFrames exercises two frames deep with fresh variables per
// frame and checks verdicts after each transition.
func TestNestedFrames(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		n := 5 + rng.Intn(5)
		base := randomClauses(rng, n, 3+rng.Intn(6))
		inc := New()
		for i := 0; i < n; i++ {
			inc.NewVar()
		}
		for _, c := range base {
			inc.AddClause(c...)
		}
		inc.Push()
		inc.NewVar() // frame-1 variable
		f1 := randomClauses(rng, n+1, 2+rng.Intn(5))
		for _, c := range f1 {
			inc.AddClause(c...)
		}
		if got, want := inc.Solve(), solveFresh(n+1, base, f1); got != want {
			t.Fatalf("seed %d: depth-1 verdict %v, fresh %v", seed, got, want)
		}
		inc.Push()
		f2 := randomClauses(rng, n+1, 2+rng.Intn(5))
		for _, c := range f2 {
			inc.AddClause(c...)
		}
		if got, want := inc.Solve(), solveFresh(n+1, base, f1, f2); got != want {
			t.Fatalf("seed %d: depth-2 verdict %v, fresh %v", seed, got, want)
		}
		inc.Pop()
		if got, want := inc.Solve(), solveFresh(n+1, base, f1); got != want {
			t.Fatalf("seed %d: back to depth-1 verdict %v, fresh %v", seed, got, want)
		}
		inc.Pop()
		if got, want := inc.Solve(), solveFresh(n, base); got != want {
			t.Fatalf("seed %d: back to base verdict %v, fresh %v", seed, got, want)
		}
	}
}
