package sat

import (
	"math/rand"
	"testing"
)

func TestTrivial(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(Lit(a))
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v", got)
	}
	if !s.Value(a) {
		t.Error("a should be true")
	}
}

func TestContradictionUnit(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(Lit(a))
	if ok := s.AddClause(-Lit(a)); ok {
		t.Error("adding -a after a should report root conflict")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v", got)
	}
}

func TestEmptyClause(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(Lit(a), -Lit(a)) // tautology: no-op
	if got := s.Solve(); got != Sat {
		t.Fatalf("tautology-only: %v", got)
	}
}

func TestSimpleImplicationChain(t *testing.T) {
	s := New()
	vars := make([]Lit, 10)
	for i := range vars {
		vars[i] = Lit(s.NewVar())
	}
	for i := 0; i+1 < len(vars); i++ {
		s.AddClause(-vars[i], vars[i+1]) // v_i -> v_{i+1}
	}
	s.AddClause(vars[0])
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v", got)
	}
	for i, v := range vars {
		if !s.Value(v.Var()) {
			t.Errorf("var %d should be true", i)
		}
	}
	// Now force the last one false: unsat.
	s.AddClause(-vars[len(vars)-1])
	if got := s.Solve(); got != Unsat {
		t.Fatalf("after forcing: %v", got)
	}
}

// pigeonhole(n): n+1 pigeons, n holes — classically unsat and requires
// real search.
func pigeonhole(t *testing.T, n int) {
	t.Helper()
	s := New()
	p := make([][]Lit, n+1)
	for i := range p {
		p[i] = make([]Lit, n)
		for j := range p[i] {
			p[i][j] = Lit(s.NewVar())
		}
	}
	for i := range p {
		s.AddClause(p[i]...) // each pigeon somewhere
	}
	for j := 0; j < n; j++ {
		for i1 := 0; i1 <= n; i1++ {
			for i2 := i1 + 1; i2 <= n; i2++ {
				s.AddClause(-p[i1][j], -p[i2][j])
			}
		}
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("PHP(%d) = %v, want unsat", n, got)
	}
}

func TestPigeonhole(t *testing.T) {
	for n := 2; n <= 6; n++ {
		pigeonhole(t, n)
	}
}

// bruteForce checks satisfiability of a small CNF by enumeration.
func bruteForce(nVars int, cnf [][]Lit) bool {
	for mask := 0; mask < 1<<nVars; mask++ {
		ok := true
		for _, cl := range cnf {
			cok := false
			for _, l := range cl {
				v := l.Var() - 1
				val := mask&(1<<v) != 0
				if (l > 0) == val {
					cok = true
					break
				}
			}
			if !cok {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for iter := 0; iter < 400; iter++ {
		nVars := 3 + rng.Intn(8) // 3..10
		nClauses := 1 + rng.Intn(45)
		cnf := make([][]Lit, nClauses)
		for i := range cnf {
			k := 1 + rng.Intn(3)
			cl := make([]Lit, k)
			for j := range cl {
				v := Lit(1 + rng.Intn(nVars))
				if rng.Intn(2) == 0 {
					v = -v
				}
				cl[j] = v
			}
			cnf[i] = cl
		}
		s := New()
		for v := 0; v < nVars; v++ {
			s.NewVar()
		}
		rootConflict := false
		for _, cl := range cnf {
			if !s.AddClause(cl...) {
				rootConflict = true
				break
			}
		}
		want := bruteForce(nVars, cnf)
		var got Status
		if rootConflict {
			got = Unsat
		} else {
			got = s.Solve()
		}
		if (got == Sat) != want {
			t.Fatalf("iter %d: solver=%v brute=%v cnf=%v", iter, got, want, cnf)
		}
		if got == Sat {
			// The reported model must satisfy every clause.
			for _, cl := range cnf {
				ok := false
				for _, l := range cl {
					if (l > 0) == s.Value(l.Var()) {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("iter %d: model does not satisfy %v", iter, cl)
				}
			}
		}
	}
}

func TestModelEnumerationViaBlocking(t *testing.T) {
	// Enumerate all 8 models of 3 unconstrained variables by blocking.
	s := New()
	vars := []int{s.NewVar(), s.NewVar(), s.NewVar()}
	s.AddClause(Lit(vars[0]), -Lit(vars[0])) // touch solver
	count := 0
	for s.Solve() == Sat {
		count++
		if count > 8 {
			t.Fatal("too many models")
		}
		block := make([]Lit, len(vars))
		for i, v := range vars {
			if s.Value(v) {
				block[i] = -Lit(v)
			} else {
				block[i] = Lit(v)
			}
		}
		if !s.AddClause(block...) {
			break
		}
	}
	if count != 8 {
		t.Fatalf("enumerated %d models, want 8", count)
	}
}

func TestConflictBudget(t *testing.T) {
	s := New()
	s.MaxConflicts = 1
	n := 7
	p := make([][]Lit, n+1)
	for i := range p {
		p[i] = make([]Lit, n)
		for j := range p[i] {
			p[i][j] = Lit(s.NewVar())
		}
	}
	for i := range p {
		s.AddClause(p[i]...)
	}
	for j := 0; j < n; j++ {
		for i1 := 0; i1 <= n; i1++ {
			for i2 := i1 + 1; i2 <= n; i2++ {
				s.AddClause(-p[i1][j], -p[i2][j])
			}
		}
	}
	if got := s.Solve(); got != Unknown {
		t.Fatalf("budgeted solve = %v, want unknown", got)
	}
}

func TestLitHelpers(t *testing.T) {
	l := Lit(5)
	if l.Var() != 5 || l.Neg() != -5 || l.Neg().Var() != 5 {
		t.Error("Lit helpers broken")
	}
	if litFromIndex(Lit(5).index()) != 5 || litFromIndex(Lit(-5).index()) != -5 {
		t.Error("index round trip broken")
	}
}
