// Package sat implements a CDCL SAT solver: two-watched-literal
// propagation, first-UIP conflict analysis with clause learning,
// VSIDS-style variable activities with phase saving, and geometric
// restarts. It is the propositional engine under the DPLL(T) loop in
// internal/solver.
package sat

import (
	"fmt"

	"repro/internal/fuel"
	"repro/internal/telemetry"
)

// Telemetry counters, registered once: each increments exactly where
// the corresponding fuel unit is charged (conflicts, decisions) or the
// restart policy fires, so instrumentation is step-based and the
// totals are deterministic for a given clause set.
var (
	cConflicts = telemetry.NewCounter("yy_cdcl_conflicts_total", "CDCL conflicts analyzed")
	cDecisions = telemetry.NewCounter("yy_cdcl_decisions_total", "CDCL branching decisions")
	cRestarts  = telemetry.NewCounter("yy_cdcl_restarts_total", "CDCL geometric restarts")
)

// Status is the result of a Solve call.
type Status int8

const (
	// Unknown means the solver was interrupted by its budget.
	Unknown Status = iota
	// Sat means a satisfying assignment was found.
	Sat
	// Unsat means the clause set is unsatisfiable.
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

// Lit is a literal: +v or -v for variable v ≥ 1.
type Lit int32

// Var returns the literal's variable.
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Neg returns the complementary literal.
func (l Lit) Neg() Lit { return -l }

// internal literal index: var<<1 | sign (sign 1 = negative).
func (l Lit) index() int {
	if l < 0 {
		return int(-l)<<1 | 1
	}
	return int(l) << 1
}

func litFromIndex(i int) Lit {
	v := Lit(i >> 1)
	if i&1 == 1 {
		return -v
	}
	return v
}

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

func (b lbool) neg() lbool {
	switch b {
	case lTrue:
		return lFalse
	case lFalse:
		return lTrue
	}
	return lUndef
}

type clause struct {
	lits    []Lit
	learned bool
	act     float64
	// tag is the deepest assertion frame this clause depends on:
	// problem clauses get the frame they were added in; learned clauses
	// get the maximum over every clause and root assignment their
	// derivation touched. Pop evicts exactly the clauses tagged above
	// the restored frame.
	tag int
}

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	nVars    int
	clauses  []*clause
	learned  []*clause
	watches  [][]*clause // indexed by literal index
	assign   []lbool     // indexed by var
	level    []int       // indexed by var
	reason   []*clause   // indexed by var
	trail    []Lit
	trailLim []int
	qhead    int

	activity []float64
	varInc   float64
	order    *varHeap
	phase    []lbool // saved phases

	ok        bool // false once an empty clause is added
	conflicts int64

	// Incremental state (see incremental.go): the open frame stack,
	// the current frame number, and — for root-level assignments — the
	// deepest frame each assignment depends on, folded into learned
	// clause tags when conflict analysis skips level-0 variables.
	frame   int
	frames  []frameMark
	rootTag []int // indexed by var; meaningful only at level 0

	// MaxConflicts bounds the total conflicts per Solve call; exceeded
	// budget yields Unknown. Zero means no bound.
	MaxConflicts int64

	// Fuel is the unified deadline shared with the theory engines: one
	// unit is spent per conflict and per decision, and an exhausted
	// meter makes Solve return Unknown. Nil means unlimited.
	Fuel *fuel.Meter

	// Telem records per-phase counters at the fuel charge points. Nil
	// records nothing.
	Telem *telemetry.Tracker
}

// New returns an empty solver.
func New() *Solver {
	s := &Solver{ok: true, varInc: 1.0}
	s.order = &varHeap{s: s}
	// Index 0 unused; literal indexes start at 2.
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, lUndef)
	s.rootTag = append(s.rootTag, 0)
	s.watches = append(s.watches, nil, nil)
	return s
}

// NewVar allocates a fresh variable and returns its (positive) index.
func (s *Solver) NewVar() int {
	s.nVars++
	v := s.nVars
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, lFalse)
	s.rootTag = append(s.rootTag, 0)
	s.watches = append(s.watches, nil, nil)
	s.order.push(v)
	return v
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return s.nVars }

func (s *Solver) litValue(l Lit) lbool {
	v := s.assign[l.Var()]
	if l < 0 {
		return v.neg()
	}
	return v
}

// AddClause adds a clause over existing variables. It may be called
// between Solve calls; the solver backtracks to the root level first.
// Returns false if the solver is already in an unsatisfiable root state.
// The clause is tagged with the current assertion frame: a Pop of that
// frame retracts it.
func (s *Solver) AddClause(lits ...Lit) bool {
	return s.addTagged(lits, s.frame, false)
}

// AddLemma adds a clause the caller asserts is logically valid
// independent of any open frame's assertions — a theory lemma over
// existing atoms. It is tagged with the deepest frame that allocated
// one of its variables (the clause is meaningless below that), stored
// with the learned set, and so survives Pops that would retract a
// regular AddClause, letting later Checks reuse theory work.
func (s *Solver) AddLemma(lits ...Lit) bool {
	tag := 0
	for _, l := range lits {
		if f := s.varFrame(l.Var()); f > tag {
			tag = f
		}
	}
	return s.addTagged(lits, tag, true)
}

// varFrame returns the assertion frame that allocated variable v: the
// number of frame marks recorded before v existed.
func (s *Solver) varFrame(v int) int {
	lo, hi := 0, len(s.frames)
	//golint:allow fuel-charge — binary search over the frame stack
	for lo < hi {
		mid := (lo + hi) / 2
		if s.frames[mid].nVars < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (s *Solver) addTagged(lits []Lit, tag int, asLemma bool) bool {
	if !s.ok {
		return false
	}
	s.backtrackTo(0)
	// Normalize: drop duplicate and false literals, detect tautologies
	// and already-satisfied clauses.
	seen := map[Lit]bool{}
	out := lits[:0:0]
	for _, l := range lits {
		if l == 0 || l.Var() > s.nVars {
			panic(fmt.Sprintf("sat: bad literal %d", l))
		}
		if seen[l] {
			continue
		}
		if seen[l.Neg()] {
			return true // tautology
		}
		switch s.litValue(l) {
		case lTrue:
			return true // satisfied at root
		case lFalse:
			// Dropping the literal bakes the root assignment into the
			// clause, so the clause now depends on that assignment's
			// frame too — fold its tag (matters for lemmas, whose tag
			// may sit below the current frame).
			if rt := s.rootTag[l.Var()]; rt > tag {
				tag = rt
			}
			continue
		}
		seen[l] = true
		out = append(out, l)
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		s.rootTag[out[0].Var()] = tag
		if s.propagate() != nil {
			s.ok = false
			return false
		}
		return true
	}
	c := &clause{lits: out, tag: tag, learned: asLemma}
	if asLemma {
		s.learned = append(s.learned, c)
	} else {
		s.clauses = append(s.clauses, c)
	}
	s.attach(c)
	return true
}

func (s *Solver) attach(c *clause) {
	w0, w1 := c.lits[0].Neg().index(), c.lits[1].Neg().index()
	s.watches[w0] = append(s.watches[w0], c)
	s.watches[w1] = append(s.watches[w1], c)
}

func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	if l < 0 {
		s.assign[v] = lFalse
	} else {
		s.assign[v] = lTrue
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
	// Root-level assignments record the deepest frame they depend on:
	// the reason clause's tag folded with the tags of the other root
	// assignments the reason rests on. Conflict analysis folds these
	// into learned-clause tags when it skips level-0 variables.
	if s.decisionLevel() == 0 {
		t := s.frame
		if from != nil {
			t = from.tag
			for _, q := range from.lits {
				if qv := q.Var(); qv != v && s.rootTag[qv] > t {
					t = s.rootTag[qv]
				}
			}
		}
		s.rootTag[v] = t
	}
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) backtrackTo(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= bound; i-- {
		l := s.trail[i]
		v := l.Var()
		s.phase[v] = s.assign[v]
		s.assign[v] = lUndef
		s.reason[v] = nil
		s.order.push(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

// propagate performs unit propagation; returns a conflicting clause or
// nil.
func (s *Solver) propagate() *clause {
	//golint:allow fuel-charge — the trail holds each variable at most once, so the queue drains in ≤ nVars steps; Solve charges per decision
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		idx := p.index()
		ws := s.watches[idx]
		kept := ws[:0]
		var conflict *clause
		for wi := 0; wi < len(ws); wi++ {
			c := ws[wi]
			if conflict != nil {
				kept = append(kept, c)
				continue
			}
			// Ensure the falsified literal is at position 1.
			if c.lits[0].Neg() == p {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if s.litValue(c.lits[0]) == lTrue {
				kept = append(kept, c)
				continue
			}
			// Find a new watch.
			moved := false
			for k := 2; k < len(c.lits); k++ {
				if s.litValue(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					ni := c.lits[1].Neg().index()
					s.watches[ni] = append(s.watches[ni], c)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, c)
			if s.litValue(c.lits[0]) == lFalse {
				conflict = c
			} else {
				s.uncheckedEnqueue(c.lits[0], c)
			}
		}
		s.watches[idx] = kept
		if conflict != nil {
			s.qhead = len(s.trail)
			return conflict
		}
	}
	return nil
}

// analyze performs first-UIP conflict analysis, returning the learned
// clause (asserting literal first), the backtrack level, and the
// clause's frame tag: the maximum tag over every clause the derivation
// traversed and every root assignment it skipped — the deepest frame
// the lemma depends on, governing its eviction on Pop.
func (s *Solver) analyze(conflict *clause) ([]Lit, int, int) {
	learnt := []Lit{0} // placeholder for the asserting literal
	seen := make([]bool, s.nVars+1)
	counter := 0
	var p Lit
	idx := len(s.trail) - 1
	c := conflict
	tag := conflict.tag

	//golint:allow fuel-charge — conflict analysis consumes one marked trail literal per iteration, bounded by the finite trail
	for {
		if c.tag > tag {
			tag = c.tag
		}
		start := 0
		if p != 0 {
			start = 1 // skip the asserting literal of the reason clause
		}
		for _, q := range c.lits[start:] {
			v := q.Var()
			if seen[v] || s.level[v] == 0 {
				// A skipped root assignment is an implicit premise of
				// the learned clause; fold the frame it depends on.
				if s.level[v] == 0 && s.rootTag[v] > tag {
					tag = s.rootTag[v]
				}
				continue
			}
			seen[v] = true
			s.bumpVar(v)
			if s.level[v] == s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Find the next marked literal on the trail.
		//golint:allow fuel-charge — scans backward over the finite trail; idx strictly decreases
		for !seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		seen[v] = false
		counter--
		if counter == 0 {
			learnt[0] = p.Neg()
			break
		}
		c = s.reason[v]
	}

	// Backtrack level: second-highest level in the learned clause.
	bt := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		bt = s.level[learnt[1].Var()]
	}
	return learnt, bt, tag
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := 1; i <= s.nVars; i++ {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *Solver) decayActivities() { s.varInc /= 0.95 }

// pickBranch returns the next decision literal, or 0 if all variables
// are assigned.
func (s *Solver) pickBranch() Lit {
	//golint:allow fuel-charge — each iteration pops the finite order heap; returns when the heap empties
	for {
		v, ok := s.order.pop()
		if !ok {
			return 0
		}
		if s.assign[v] == lUndef {
			if s.phase[v] == lTrue {
				return Lit(v)
			}
			return -Lit(v)
		}
	}
}

// Solve searches for a satisfying assignment of the current clause set.
func (s *Solver) Solve() Status {
	if !s.ok {
		return Unsat
	}
	s.backtrackTo(0)
	if s.propagate() != nil {
		s.ok = false
		return Unsat
	}
	restartLimit := int64(100)
	conflictsAtStart := s.conflicts
	for {
		conflict := s.propagate()
		if conflict != nil {
			s.conflicts++
			s.Telem.Inc(cConflicts)
			if !s.Fuel.Spend(1) {
				s.backtrackTo(0)
				return Unknown
			}
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			learnt, bt, tag := s.analyze(conflict)
			s.backtrackTo(bt)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], nil)
				// Override the conservative current-frame default with
				// the precise derivation tag, so later lemmas built on
				// this unit inherit the tightest dependency.
				s.rootTag[learnt[0].Var()] = tag
			} else {
				c := &clause{lits: learnt, learned: true, tag: tag}
				s.learned = append(s.learned, c)
				s.attach(c)
				s.uncheckedEnqueue(learnt[0], c)
			}
			s.decayActivities()
			if s.MaxConflicts > 0 && s.conflicts-conflictsAtStart >= s.MaxConflicts {
				s.backtrackTo(0)
				return Unknown
			}
			if s.conflicts-conflictsAtStart >= restartLimit {
				restartLimit += restartLimit / 2
				s.Telem.Inc(cRestarts)
				s.backtrackTo(0)
			}
			continue
		}
		l := s.pickBranch()
		if l == 0 {
			return Sat
		}
		if !s.Fuel.Spend(1) {
			// Undo the pop of l's variable so a later call can redecide it.
			s.order.push(l.Var())
			s.backtrackTo(0)
			return Unknown
		}
		s.Telem.Inc(cDecisions)
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(l, nil)
	}
}

// Value returns the assignment of variable v after a Sat result.
func (s *Solver) Value(v int) bool { return s.assign[v] == lTrue }

// varHeap is a max-heap over variable activities.
type varHeap struct {
	s    *Solver
	heap []int
	pos  map[int]int
}

func (h *varHeap) less(a, b int) bool { return h.s.activity[a] > h.s.activity[b] }

func (h *varHeap) push(v int) {
	if h.pos == nil {
		h.pos = map[int]int{}
	}
	if _, in := h.pos[v]; in {
		return
	}
	h.heap = append(h.heap, v)
	h.pos[v] = len(h.heap) - 1
	h.up(len(h.heap) - 1)
}

func (h *varHeap) pop() (int, bool) {
	if len(h.heap) == 0 {
		return 0, false
	}
	v := h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.pos[h.heap[0]] = 0
	h.heap = h.heap[:last]
	delete(h.pos, v)
	if len(h.heap) > 0 {
		h.down(0)
	}
	return v, true
}

func (h *varHeap) update(v int) {
	if i, in := h.pos[v]; in {
		h.up(i)
		h.down(h.pos[v])
	}
}

func (h *varHeap) up(i int) {
	//golint:allow fuel-charge — heap sift-up: the index at least halves every iteration
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(h.heap[i], h.heap[p]) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *varHeap) down(i int) {
	//golint:allow fuel-charge — heap sift-down: the index at least doubles every iteration, bounded by the heap size
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(h.heap) && h.less(h.heap[l], h.heap[best]) {
			best = l
		}
		if r < len(h.heap) && h.less(h.heap[r], h.heap[best]) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

func (h *varHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = i
	h.pos[h.heap[j]] = j
}
