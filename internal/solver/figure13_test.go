package solver

import (
	"testing"

	"repro/internal/smtlib"
)

// The six reduced bug-triggering formulas of the paper's Figure 13.
// All of 13a–13e are unsatisfiable; the solvers under test in the paper
// wrongly answered sat. The reference solver here must never answer
// sat on them (unknown is acceptable for fragments beyond its
// completeness).
var figure13 = map[string]string{
	"13a-z3-qfs": `
(declare-fun a () String)
(declare-fun b () String)
(declare-fun c () String)
(assert
  (and
    (str.in.re c (re.* (str.to.re "aa")))
    (= 0 (str.to.int (str.replace a b (str.at a (str.len a)))))))
(assert (= a (str.++ b c)))
(check-sat)
`,
	"13b-cvc4-qfs": `
(declare-const a String)
(declare-const b String)
(declare-const c String)
(declare-const d String)
(declare-const e String)
(declare-const f String)
(assert (or
  (and (= c (str.++ e d))
       (str.in.re e (re.* (str.to.re "aaa")))
       (> 0 (str.to.int d))
       (= 1 (str.len e))
       (= 2 (str.len c)))
  (and (str.in.re f (re.* (str.to.re "aa")))
       (= 0 (str.to.int (str.replace (str.replace a b "") "a" ""))))))
(assert (= a (str.++ (str.++ b "a") f)))
(check-sat)
`,
	"13c-z3-qfnra": `
(declare-fun a () Real)
(declare-fun b () Real)
(declare-fun c () Real)
(declare-fun d () Real)
(declare-fun e () Real)
(declare-fun f () Real)
(assert
  (and
    (> 0 (- d f))
    (= d (ite (>= (/ a c) f) (+ b f) f))
    (> 0 (/ a (/ c e)))
    (or (= e 1.0) (= e 2.0))
    (> d 0) (= c 0)))
(check-sat)
`,
	"13d-cvc4-qfslia": `
(declare-fun a () String)
(declare-fun b () String)
(declare-fun d () String)
(declare-fun e () String)
(declare-fun f () Int)
(declare-fun g () String)
(declare-fun h () String)
(assert (or
  (not (= (str.replace "B" (str.at "A" f) "") "B"))
  (not (= (str.replace "B" (str.replace "B" g "") "")
          (str.at (str.replace (str.replace a d "") "C" "")
                  (str.indexof "B" (str.replace (str.replace a d "") "C" "") 0))))))
(assert (= a (str.++ (str.++ d "C") g)))
(assert (= b (str.++ e g)))
(check-sat)
`,
	"13e-z3-qfs": `
(declare-fun a () String)
(declare-fun b () String)
(declare-fun c () String)
(declare-fun d () String)
(assert (= a (str.++ b d)))
(assert (or (and
  (= (str.indexof (str.substr a 0 (str.len b)) "=" 0) 0)
  (= (str.indexof b "=" 0) 1))
 (not (= (str.suffixof "A" d)
         (str.suffixof "A" (str.replace c c d))))))
(check-sat)
`,
}

// figure13f is the NRA crash formula (quantified); the reference must
// not crash, and z3sim with the deep-nonlinear crash defect may.
const figure13f = `
(declare-fun a () Real)
(declare-fun b () Real)
(declare-fun c () Real)
(declare-fun d () Real)
(declare-fun i () Real)
(declare-fun e () Real)
(declare-fun ep () Real)
(declare-fun f () Real)
(declare-fun j () Real)
(declare-fun g () Real)
(assert (or
  (not (exists ((h Real))
    (=> (and (= 0.0 (/ b j)) (< 0.0 e))
        (=> (= 0.0 i)
            (= (= (<= 0.0 h) (<= h ep)) (= 1.0 2.0))))))
  (not (exists ((h Real))
    (=> (<= 0.0 (/ a h)) (= 0 (/ c e)))))))
(assert (= ep (/ d f)))
(check-sat)
`

func TestFigure13Samples(t *testing.T) {
	for name, src := range figure13 {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			sc, err := smtlib.ParseScript(src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			out := NewReference().SolveScript(sc)
			if out.Result == ResSat {
				t.Fatalf("reference answered sat on the unsat Figure %s formula", name)
			}
			t.Logf("%s: %v (%s)", name, out.Result, out.Reason)
		})
	}
}

func TestFigure13fParsesAndDoesNotCrashReference(t *testing.T) {
	sc, err := smtlib.ParseScript(figure13f)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("reference crashed on Figure 13f: %v", r)
		}
	}()
	out := NewReference().SolveScript(sc)
	// Quantified NRA beyond the skolemizable fragment: unknown is the
	// honest answer; sat would need certification (which skips
	// quantified asserts), unsat is impossible to certify here.
	t.Logf("13f: %v (%s)", out.Result, out.Reason)
}
