package simplex

import (
	"math/big"
	"testing"
	"testing/quick"
)

// Property: δ-rational ordering is a total order consistent with the
// limit semantics — a + bδ < c + dδ iff a < c, or a = c and b < d.
func TestQuickNumOrdering(t *testing.T) {
	f := func(a, b, c, d int32) bool {
		x := Num{A: big.NewRat(int64(a), 1), B: big.NewRat(int64(b), 1)}
		y := Num{A: big.NewRat(int64(c), 1), B: big.NewRat(int64(d), 1)}
		want := 0
		switch {
		case a < c || (a == c && b < d):
			want = -1
		case a > c || (a == c && b > d):
			want = 1
		}
		return x.Cmp(y) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Num arithmetic is componentwise — (x+y)−y = x.
func TestQuickNumAddSubInverse(t *testing.T) {
	f := func(a, b, c, d int32) bool {
		x := Num{A: big.NewRat(int64(a), 1), B: big.NewRat(int64(b), 1)}
		y := Num{A: big.NewRat(int64(c), 1), B: big.NewRat(int64(d), 1)}
		return x.Add(y).Sub(y).Cmp(x) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a single-variable box a ≤ x ≤ b is satisfiable iff a ≤ b,
// and the witness lies in the box.
func TestQuickBoxFeasibility(t *testing.T) {
	f := func(aRaw, bRaw int16) bool {
		a := big.NewRat(int64(aRaw), 1)
		b := big.NewRat(int64(bRaw), 1)
		s := New()
		x := s.NewVar()
		okLower := s.AssertVarBound(x, Ge, a)
		okUpper := s.AssertVarBound(x, Le, b)
		feasible := a.Cmp(b) <= 0
		if !okLower || !okUpper {
			// Conflict detected at assert time: must be infeasible.
			return !feasible
		}
		got, err := s.Check()
		if err != nil {
			return false
		}
		if got != feasible {
			return false
		}
		if got {
			v := s.Values([]int{x})[x]
			return v.Cmp(a) >= 0 && v.Cmp(b) <= 0
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the witness returned after Check satisfies every asserted
// two-variable constraint (sum and difference bounds oriented to be
// jointly satisfiable by construction).
func TestQuickWitnessSatisfiesConstraints(t *testing.T) {
	f := func(p, q int16, slackRaw uint8) bool {
		slack := int64(slackRaw%16) + 1
		s := New()
		x, y := s.NewVar(), s.NewVar()
		one := big.NewRat(1, 1)
		sum := big.NewRat(int64(p)+int64(q), 1)
		diff := big.NewRat(int64(p)-int64(q), 1)
		upper := new(big.Rat).Add(sum, big.NewRat(slack, 1))
		lower := new(big.Rat).Sub(diff, big.NewRat(slack, 1))
		if !s.AssertAtom(map[int]*big.Rat{x: one, y: one}, Le, upper) {
			return false
		}
		if !s.AssertAtom(map[int]*big.Rat{x: one, y: new(big.Rat).Neg(one)}, Ge, lower) {
			return false
		}
		ok, err := s.Check()
		if err != nil || !ok {
			return false
		}
		vals := s.Values([]int{x, y})
		sumV := new(big.Rat).Add(vals[x], vals[y])
		diffV := new(big.Rat).Sub(vals[x], vals[y])
		return sumV.Cmp(upper) <= 0 && diffV.Cmp(lower) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
