package simplex

import "repro/internal/telemetry"

// Tableau warm-start counters: a hit means an asserted linear
// combination found its slack variable — and that variable's row in
// the tableau — already in place from an earlier assertion, so the row
// construction and substitution work is skipped entirely. The ratio of
// hits to misses is the tableau warm-start hit rate reported by
// `-stats`. Both increment inside slackFor, which runs at
// deterministic points of the assertion sequence.
var (
	cTableauHits   = telemetry.NewCounter("yy_tableau_warm_hits_total", "simplex atom assertions that reused an existing tableau row")
	cTableauMisses = telemetry.NewCounter("yy_tableau_warm_misses_total", "simplex atom assertions that built a fresh tableau row")
)

// boundUndo records one bound tightening so PopToMark can restore the
// previous state exactly.
type boundUndo struct {
	v            int
	hadLo, hadHi bool
	lo, hi       Num
}

// Mark returns a restore point capturing the current bound state. The
// tableau itself — rows, basis, slack-variable identities, and the
// current assignment — is deliberately NOT part of the mark: rows are
// definitional (slack = combination), so keeping them across a
// PopToMark is sound, and it is exactly what makes re-asserting a
// shared atom set warm.
func (s *Solver) Mark() int { return len(s.undos) }

// PopToMark retracts every bound asserted since the matching Mark, in
// reverse order. Bounds only ever loosen here (assertions only
// tighten), so the simplex invariant — every nonbasic variable within
// its own bounds — is preserved and the instance is immediately ready
// for further assertions or another Check. Slack variables introduced
// above the mark stay allocated but unbounded; an unbounded slack
// constrains nothing, and its row is reused if the same combination is
// ever asserted again.
func (s *Solver) PopToMark(mark int) {
	for i := len(s.undos) - 1; i >= mark; i-- {
		u := s.undos[i]
		s.lower[u.v] = u.lo
		s.upper[u.v] = u.hi
		s.hasLo[u.v] = u.hadLo
		s.hasHi[u.v] = u.hadHi
	}
	s.undos = s.undos[:mark]
}

// recordBound pushes the pre-tightening bound state of v onto the undo
// trail.
func (s *Solver) recordBound(v int) {
	s.undos = append(s.undos, boundUndo{
		v:     v,
		hadLo: s.hasLo[v],
		hadHi: s.hasHi[v],
		lo:    s.lower[v],
		hi:    s.upper[v],
	})
}
