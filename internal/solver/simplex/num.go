// Package simplex implements an exact general simplex procedure for
// linear real arithmetic in the style of Dutertre and de Moura's
// "A Fast Linear-Arithmetic Solver for DPLL(T)": problem variables and
// slack variables carry lower/upper bounds over δ-rationals (so strict
// inequalities are exact), and a Bland's-rule pivoting loop either
// repairs all bound violations or reports unsatisfiability.
package simplex

import (
	"fmt"
	"math/big"
)

// Num is a δ-rational a + b·δ, where δ is a positive infinitesimal.
// Strict bounds x > c are represented as x ≥ c + δ.
type Num struct {
	A *big.Rat // standard part
	B *big.Rat // δ coefficient
}

// Rat returns the δ-rational for a plain rational.
func Rat(a *big.Rat) Num { return Num{A: new(big.Rat).Set(a), B: new(big.Rat)} }

// RatDelta returns a + b·δ.
func RatDelta(a *big.Rat, b int64) Num {
	return Num{A: new(big.Rat).Set(a), B: big.NewRat(b, 1)}
}

// Zero returns the δ-rational 0.
func Zero() Num { return Num{A: new(big.Rat), B: new(big.Rat)} }

// Clone returns a deep copy.
func (n Num) Clone() Num {
	return Num{A: new(big.Rat).Set(n.A), B: new(big.Rat).Set(n.B)}
}

// Cmp compares two δ-rationals lexicographically.
func (n Num) Cmp(o Num) int {
	if c := n.A.Cmp(o.A); c != 0 {
		return c
	}
	return n.B.Cmp(o.B)
}

// Add returns n + o.
func (n Num) Add(o Num) Num {
	return Num{A: new(big.Rat).Add(n.A, o.A), B: new(big.Rat).Add(n.B, o.B)}
}

// Sub returns n − o.
func (n Num) Sub(o Num) Num {
	return Num{A: new(big.Rat).Sub(n.A, o.A), B: new(big.Rat).Sub(n.B, o.B)}
}

// ScaleRat returns n · r for a plain rational r.
func (n Num) ScaleRat(r *big.Rat) Num {
	return Num{A: new(big.Rat).Mul(n.A, r), B: new(big.Rat).Mul(n.B, r)}
}

func (n Num) String() string {
	if n.B.Sign() == 0 {
		return n.A.RatString()
	}
	return fmt.Sprintf("%s+%sδ", n.A.RatString(), n.B.RatString())
}
