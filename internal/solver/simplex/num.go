// Package simplex implements an exact general simplex procedure for
// linear real arithmetic in the style of Dutertre and de Moura's
// "A Fast Linear-Arithmetic Solver for DPLL(T)": problem variables and
// slack variables carry lower/upper bounds over δ-rationals (so strict
// inequalities are exact), and a Bland's-rule pivoting loop either
// repairs all bound violations or reports unsatisfiability.
package simplex

import (
	"fmt"
	"math/big"
)

// Num is a δ-rational a + b·δ, where δ is a positive infinitesimal.
// Strict bounds x > c are represented as x ≥ c + δ.
//
// Num values are immutable: every operation returns a fresh Num and
// nothing writes through A or B. That lets zero components share one
// read-only rational instead of allocating one per value — the solver
// creates δ-rationals constantly and the vast majority have B = 0.
type Num struct {
	A *big.Rat // standard part
	B *big.Rat // δ coefficient
}

// Shared read-only rationals for Num components. Never mutated.
var (
	ratZero   = new(big.Rat)
	ratPosOne = big.NewRat(1, 1)
	ratNegOne = big.NewRat(-1, 1)
)

func ratInt(b int64) *big.Rat {
	switch b {
	case 0:
		return ratZero
	case 1:
		return ratPosOne
	case -1:
		return ratNegOne
	}
	return big.NewRat(b, 1)
}

// Rat returns the δ-rational for a plain rational.
func Rat(a *big.Rat) Num { return Num{A: new(big.Rat).Set(a), B: ratZero} }

// RatDelta returns a + b·δ.
func RatDelta(a *big.Rat, b int64) Num {
	return Num{A: new(big.Rat).Set(a), B: ratInt(b)}
}

// Zero returns the δ-rational 0.
func Zero() Num { return Num{A: ratZero, B: ratZero} }

// Clone returns a deep copy.
func (n Num) Clone() Num {
	return Num{A: new(big.Rat).Set(n.A), B: new(big.Rat).Set(n.B)}
}

// Cmp compares two δ-rationals lexicographically.
func (n Num) Cmp(o Num) int {
	if c := n.A.Cmp(o.A); c != 0 {
		return c
	}
	return n.B.Cmp(o.B)
}

// addPart combines one component, sharing the zero rational when both
// inputs are zero (the common case for δ coefficients).
func addPart(a, b *big.Rat, sub bool) *big.Rat {
	if a.Sign() == 0 && b.Sign() == 0 {
		return ratZero
	}
	if sub {
		return new(big.Rat).Sub(a, b)
	}
	return new(big.Rat).Add(a, b)
}

// Add returns n + o.
func (n Num) Add(o Num) Num {
	return Num{A: addPart(n.A, o.A, false), B: addPart(n.B, o.B, false)}
}

// Sub returns n − o.
func (n Num) Sub(o Num) Num {
	return Num{A: addPart(n.A, o.A, true), B: addPart(n.B, o.B, true)}
}

// ScaleRat returns n · r for a plain rational r.
func (n Num) ScaleRat(r *big.Rat) Num {
	out := Num{A: ratZero, B: ratZero}
	if n.A.Sign() != 0 && r.Sign() != 0 {
		out.A = new(big.Rat).Mul(n.A, r)
	}
	if n.B.Sign() != 0 && r.Sign() != 0 {
		out.B = new(big.Rat).Mul(n.B, r)
	}
	return out
}

func (n Num) String() string {
	if n.B.Sign() == 0 {
		return n.A.RatString()
	}
	return fmt.Sprintf("%s+%sδ", n.A.RatString(), n.B.RatString())
}
