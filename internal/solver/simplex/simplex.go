package simplex

import (
	"fmt"
	"math/big"
	"sort"
	"strconv"

	"repro/internal/fuel"
	"repro/internal/telemetry"
)

// cPivots counts simplex pivot iterations — one increment per fuel
// unit spent in the Check loop.
var cPivots = telemetry.NewCounter("yy_simplex_pivots_total", "simplex pivot iterations")

// Solver is an exact simplex instance. Build one per theory check:
// allocate problem variables, assert bounds on variables or on linear
// combinations, then call Check.
type Solver struct {
	n      int   // total variables (problem + slack)
	lower  []Num // per var; hasLower[i] guards
	upper  []Num
	hasLo  []bool
	hasHi  []bool
	value  []Num
	rows   map[int]map[int]*big.Rat // basic var -> (nonbasic var -> coeff)
	basic  map[int]bool
	slacks map[string]int // normalized combo key -> slack var
	undos  []boundUndo    // bound-tightening trail for Mark/PopToMark

	// MaxPivots bounds the pivoting loop; exceeding it reports an
	// (extremely unlikely with Bland's rule) resource error.
	MaxPivots int

	// Fuel is the unified deadline shared with the other engines: one
	// unit is spent per pivot-loop iteration, and exhaustion surfaces
	// as the same resource error as MaxPivots. Nil means unlimited.
	Fuel *fuel.Meter

	// Telem records pivot iterations into the owner's tracker. Nil
	// records nothing.
	Telem *telemetry.Tracker
}

// New returns an empty solver.
func New() *Solver {
	return &Solver{
		rows:      map[int]map[int]*big.Rat{},
		basic:     map[int]bool{},
		slacks:    map[string]int{},
		MaxPivots: 100000,
	}
}

// NewVar allocates a problem variable and returns its index.
func (s *Solver) NewVar() int {
	i := s.n
	s.n++
	s.lower = append(s.lower, Zero())
	s.upper = append(s.upper, Zero())
	s.hasLo = append(s.hasLo, false)
	s.hasHi = append(s.hasHi, false)
	s.value = append(s.value, Zero())
	return i
}

// comboKey builds a canonical key for a linear combination.
func comboKey(coeffs map[int]*big.Rat) string {
	idxs := make([]int, 0, len(coeffs))
	for v, c := range coeffs {
		if c.Sign() != 0 {
			idxs = append(idxs, v)
		}
	}
	sort.Ints(idxs)
	buf := make([]byte, 0, 16*len(idxs))
	for _, v := range idxs {
		c := coeffs[v]
		buf = strconv.AppendInt(buf, int64(v), 10)
		buf = append(buf, ':')
		buf = c.Num().Append(buf, 10)
		buf = append(buf, '/')
		buf = c.Denom().Append(buf, 10)
		buf = append(buf, ';')
	}
	return string(buf)
}

// slackFor returns (creating if needed) the slack variable constrained
// to equal the given linear combination of problem variables.
func (s *Solver) slackFor(coeffs map[int]*big.Rat) int {
	key := comboKey(coeffs)
	if v, ok := s.slacks[key]; ok {
		s.Telem.Inc(cTableauHits)
		return v
	}
	s.Telem.Inc(cTableauMisses)
	sl := s.NewVar()
	row := map[int]*big.Rat{}
	val := Zero()
	for v, c := range coeffs {
		if c.Sign() == 0 {
			continue
		}
		cc := new(big.Rat).Set(c)
		if s.basic[v] {
			// Substitute the basic variable's row.
			for w, wc := range s.rows[v] {
				addCoeff(row, w, new(big.Rat).Mul(cc, wc))
			}
		} else {
			addCoeff(row, v, cc)
		}
		val = val.Add(s.value[v].ScaleRat(cc))
	}
	s.rows[sl] = row
	s.basic[sl] = true
	s.value[sl] = val
	s.slacks[key] = sl
	return sl
}

func addCoeff(row map[int]*big.Rat, v int, c *big.Rat) {
	if prev, ok := row[v]; ok {
		prev.Add(prev, c)
		if prev.Sign() == 0 {
			delete(row, v)
		}
	} else if c.Sign() != 0 {
		row[v] = c
	}
}

// Op is a bound relation for AssertAtom.
type Op int8

const (
	Le Op = iota // ≤
	Lt           // <
	Ge           // ≥
	Gt           // >
	Eq           // =
)

// AssertAtom asserts coeffs·x ⋈ c. It returns false on an immediately
// detected bound conflict (the conjunction is unsatisfiable).
func (s *Solver) AssertAtom(coeffs map[int]*big.Rat, op Op, c *big.Rat) bool {
	// Constant combination: decide immediately.
	nonzero := false
	for _, co := range coeffs {
		if co.Sign() != 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		z := new(big.Rat)
		ok := false
		switch op {
		case Le:
			ok = z.Cmp(c) <= 0
		case Lt:
			ok = z.Cmp(c) < 0
		case Ge:
			ok = z.Cmp(c) >= 0
		case Gt:
			ok = z.Cmp(c) > 0
		case Eq:
			ok = z.Cmp(c) == 0
		}
		return ok
	}
	v := s.slackFor(coeffs)
	switch op {
	case Le:
		return s.assertUpper(v, Rat(c))
	case Lt:
		return s.assertUpper(v, RatDelta(c, -1))
	case Ge:
		return s.assertLower(v, Rat(c))
	case Gt:
		return s.assertLower(v, RatDelta(c, 1))
	case Eq:
		return s.assertLower(v, Rat(c)) && s.assertUpper(v, Rat(c))
	}
	return false
}

// AssertVarBound asserts a bound directly on a problem variable.
func (s *Solver) AssertVarBound(v int, op Op, c *big.Rat) bool {
	return s.AssertAtom(map[int]*big.Rat{v: big.NewRat(1, 1)}, op, c)
}

func (s *Solver) assertUpper(v int, b Num) bool {
	if s.hasHi[v] && s.upper[v].Cmp(b) <= 0 {
		return true // no tightening
	}
	if s.hasLo[v] && s.lower[v].Cmp(b) > 0 {
		return false // conflict with lower bound
	}
	s.recordBound(v)
	s.upper[v] = b
	s.hasHi[v] = true
	if !s.basic[v] && s.value[v].Cmp(b) > 0 {
		s.update(v, b)
	}
	return true
}

func (s *Solver) assertLower(v int, b Num) bool {
	if s.hasLo[v] && s.lower[v].Cmp(b) >= 0 {
		return true
	}
	if s.hasHi[v] && s.upper[v].Cmp(b) < 0 {
		return false
	}
	s.recordBound(v)
	s.lower[v] = b
	s.hasLo[v] = true
	if !s.basic[v] && s.value[v].Cmp(b) < 0 {
		s.update(v, b)
	}
	return true
}

// update sets nonbasic variable v to val and adjusts all basic values.
func (s *Solver) update(v int, val Num) {
	delta := val.Sub(s.value[v])
	for b, row := range s.rows {
		if c, ok := row[v]; ok {
			s.value[b] = s.value[b].Add(delta.ScaleRat(c))
		}
	}
	s.value[v] = val
}

// pivotAndUpdate pivots basic bi with nonbasic nj and sets bi to val.
func (s *Solver) pivotAndUpdate(bi, nj int, val Num) {
	row := s.rows[bi]
	aij := row[nj]
	theta := val.Sub(s.value[bi]).ScaleRat(new(big.Rat).Inv(aij))
	s.value[bi] = val
	s.value[nj] = s.value[nj].Add(theta)
	for b, r := range s.rows {
		if b == bi {
			continue
		}
		if c, ok := r[nj]; ok {
			s.value[b] = s.value[b].Add(theta.ScaleRat(c))
		}
	}
	s.pivot(bi, nj)
}

// pivot makes nj basic in place of bi.
func (s *Solver) pivot(bi, nj int) {
	row := s.rows[bi]
	aij := row[nj]
	delete(s.rows, bi)
	delete(s.basic, bi)

	// nj = (bi - sum_{k≠j} a_ik x_k) / a_ij
	newRow := map[int]*big.Rat{}
	inv := new(big.Rat).Inv(aij)
	newRow[bi] = new(big.Rat).Set(inv)
	for k, c := range row {
		if k == nj {
			continue
		}
		newRow[k] = new(big.Rat).Neg(new(big.Rat).Mul(c, inv))
	}
	s.rows[nj] = newRow
	s.basic[nj] = true

	// Substitute nj in all other rows.
	for b, r := range s.rows {
		if b == nj {
			continue
		}
		if c, ok := r[nj]; ok {
			delete(r, nj)
			for k, nc := range newRow {
				addCoeff(r, k, new(big.Rat).Mul(c, nc))
			}
		}
	}
}

// Check runs the simplex main loop. It returns true if the asserted
// bounds are satisfiable (and leaves a satisfying assignment in place),
// false if unsatisfiable. An error is returned only on pivot-budget
// exhaustion.
func (s *Solver) Check() (bool, error) {
	for pivots := 0; ; pivots++ {
		if pivots > s.MaxPivots {
			return false, fmt.Errorf("simplex: pivot budget exhausted")
		}
		if !s.Fuel.Spend(1) {
			return false, fmt.Errorf("simplex: fuel exhausted")
		}
		s.Telem.Inc(cPivots)
		// Bland's rule: smallest violating basic variable.
		bi := -1
		below := false
		for v := 0; v < s.n; v++ {
			if !s.basic[v] {
				continue
			}
			if s.hasLo[v] && s.value[v].Cmp(s.lower[v]) < 0 {
				bi = v
				below = true
				break
			}
			if s.hasHi[v] && s.value[v].Cmp(s.upper[v]) > 0 {
				bi = v
				below = false
				break
			}
		}
		if bi == -1 {
			return true, nil
		}
		row := s.rows[bi]
		// Smallest suitable nonbasic variable.
		nj := -1
		cols := make([]int, 0, len(row))
		for v := range row {
			cols = append(cols, v)
		}
		sort.Ints(cols)
		for _, v := range cols {
			c := row[v]
			if below {
				// Need to increase bi: increase v if c>0 and v below
				// upper; decrease v if c<0 and v above lower.
				if c.Sign() > 0 && (!s.hasHi[v] || s.value[v].Cmp(s.upper[v]) < 0) {
					nj = v
					break
				}
				if c.Sign() < 0 && (!s.hasLo[v] || s.value[v].Cmp(s.lower[v]) > 0) {
					nj = v
					break
				}
			} else {
				if c.Sign() > 0 && (!s.hasLo[v] || s.value[v].Cmp(s.lower[v]) > 0) {
					nj = v
					break
				}
				if c.Sign() < 0 && (!s.hasHi[v] || s.value[v].Cmp(s.upper[v]) < 0) {
					nj = v
					break
				}
			}
		}
		if nj == -1 {
			return false, nil
		}
		if below {
			s.pivotAndUpdate(bi, nj, s.lower[bi])
		} else {
			s.pivotAndUpdate(bi, nj, s.upper[bi])
		}
	}
}

// Values materializes the current assignment as plain rationals by
// substituting a concrete positive δ small enough to respect every
// bound. Only call after a successful Check.
func (s *Solver) Values(vars []int) map[int]*big.Rat {
	delta := s.concreteDelta()
	out := make(map[int]*big.Rat, len(vars))
	for _, v := range vars {
		val := new(big.Rat).Mul(s.value[v].B, delta)
		val.Add(val, s.value[v].A)
		out[v] = val
	}
	return out
}

// concreteDelta picks δ ∈ (0, 1] such that substituting it preserves
// every satisfied bound.
func (s *Solver) concreteDelta() *big.Rat {
	delta := big.NewRat(1, 1)
	tighten := func(num, den *big.Rat) {
		// Requires num + δ·den ≥ 0 with den < 0: δ ≤ num / (-den).
		if den.Sign() >= 0 {
			return
		}
		lim := new(big.Rat).Quo(num, new(big.Rat).Neg(den))
		if lim.Sign() > 0 && delta.Cmp(lim) > 0 {
			delta.Set(lim)
		}
	}
	for v := 0; v < s.n; v++ {
		if s.hasLo[v] {
			d := s.value[v].Sub(s.lower[v])
			tighten(d.A, d.B)
		}
		if s.hasHi[v] {
			d := s.upper[v].Sub(s.value[v])
			tighten(d.A, d.B)
		}
	}
	// Stay strictly inside: halve.
	return delta.Mul(delta, big.NewRat(1, 2))
}
