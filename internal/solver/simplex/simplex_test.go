package simplex

import (
	"math/big"
	"math/rand"
	"testing"
)

func rat(n, d int64) *big.Rat { return big.NewRat(n, d) }

func TestNumOrdering(t *testing.T) {
	a := Rat(rat(1, 1))
	b := RatDelta(rat(1, 1), 1)  // 1 + δ
	c := RatDelta(rat(1, 1), -1) // 1 - δ
	if !(c.Cmp(a) < 0 && a.Cmp(b) < 0) {
		t.Error("δ ordering broken")
	}
	if a.Add(b).Cmp(RatDelta(rat(2, 1), 1)) != 0 {
		t.Error("Add broken")
	}
	if b.Sub(c).Cmp(RatDelta(rat(0, 1), 2)) != 0 {
		t.Error("Sub broken")
	}
	if b.ScaleRat(rat(3, 1)).Cmp(RatDelta(rat(3, 1), 3)) != 0 {
		t.Error("ScaleRat broken")
	}
}

func TestFeasibleSystem(t *testing.T) {
	// x + y <= 10, x - y >= 2, x >= 0, y >= 0
	s := New()
	x, y := s.NewVar(), s.NewVar()
	one := rat(1, 1)
	if !s.AssertAtom(map[int]*big.Rat{x: one, y: one}, Le, rat(10, 1)) {
		t.Fatal("assert 1")
	}
	if !s.AssertAtom(map[int]*big.Rat{x: one, y: rat(-1, 1)}, Ge, rat(2, 1)) {
		t.Fatal("assert 2")
	}
	s.AssertVarBound(x, Ge, rat(0, 1))
	s.AssertVarBound(y, Ge, rat(0, 1))
	ok, err := s.Check()
	if err != nil || !ok {
		t.Fatalf("Check = %v, %v", ok, err)
	}
	vals := s.Values([]int{x, y})
	xv, yv := vals[x], vals[y]
	if new(big.Rat).Add(xv, yv).Cmp(rat(10, 1)) > 0 {
		t.Errorf("x+y = %v violates <=10", new(big.Rat).Add(xv, yv))
	}
	if new(big.Rat).Sub(xv, yv).Cmp(rat(2, 1)) < 0 {
		t.Errorf("x-y violates >=2")
	}
	if xv.Sign() < 0 || yv.Sign() < 0 {
		t.Error("nonnegativity violated")
	}
}

func TestInfeasibleSystem(t *testing.T) {
	// x > 0 ∧ x < 0
	s := New()
	x := s.NewVar()
	s.AssertVarBound(x, Gt, rat(0, 1))
	if s.AssertVarBound(x, Lt, rat(0, 1)) {
		// Immediate conflict is allowed to be detected at assert time
		// or at Check time.
		ok, err := s.Check()
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Error("x>0 ∧ x<0 should be unsat")
		}
	}
}

func TestStrictBoundsSeparation(t *testing.T) {
	// x > 1 ∧ x < 2 is satisfiable with a concrete witness strictly
	// inside the interval.
	s := New()
	x := s.NewVar()
	s.AssertVarBound(x, Gt, rat(1, 1))
	s.AssertVarBound(x, Lt, rat(2, 1))
	ok, err := s.Check()
	if err != nil || !ok {
		t.Fatalf("Check = %v, %v", ok, err)
	}
	v := s.Values([]int{x})[x]
	if v.Cmp(rat(1, 1)) <= 0 || v.Cmp(rat(2, 1)) >= 0 {
		t.Errorf("witness %v not strictly inside (1,2)", v)
	}
}

func TestStrictInfeasible(t *testing.T) {
	// x > 1 ∧ x < 1
	s := New()
	x := s.NewVar()
	s.AssertVarBound(x, Gt, rat(1, 1))
	conflict := !s.AssertVarBound(x, Lt, rat(1, 1))
	if !conflict {
		ok, err := s.Check()
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Error("x>1 ∧ x<1 should be unsat")
		}
	}
	// x >= 1 ∧ x <= 1 is satisfiable with x = 1.
	s2 := New()
	y := s2.NewVar()
	s2.AssertVarBound(y, Ge, rat(1, 1))
	s2.AssertVarBound(y, Le, rat(1, 1))
	ok, err := s2.Check()
	if err != nil || !ok {
		t.Fatalf("Check = %v, %v", ok, err)
	}
	if s2.Values([]int{y})[y].Cmp(rat(1, 1)) != 0 {
		t.Error("y should be exactly 1")
	}
}

func TestEqualityChain(t *testing.T) {
	// x = y, y = z, x = 5 → z = 5.
	s := New()
	x, y, z := s.NewVar(), s.NewVar(), s.NewVar()
	one, mone := rat(1, 1), rat(-1, 1)
	s.AssertAtom(map[int]*big.Rat{x: one, y: mone}, Eq, rat(0, 1))
	s.AssertAtom(map[int]*big.Rat{y: one, z: mone}, Eq, rat(0, 1))
	s.AssertVarBound(x, Eq, rat(5, 1))
	ok, err := s.Check()
	if err != nil || !ok {
		t.Fatalf("Check = %v %v", ok, err)
	}
	if s.Values([]int{z})[z].Cmp(rat(5, 1)) != 0 {
		t.Errorf("z = %v want 5", s.Values([]int{z})[z])
	}
}

func TestConstantAtom(t *testing.T) {
	s := New()
	if s.AssertAtom(map[int]*big.Rat{}, Gt, rat(1, 1)) {
		t.Error("0 > 1 should be false")
	}
	if !s.AssertAtom(map[int]*big.Rat{}, Le, rat(0, 1)) {
		t.Error("0 <= 0 should be true")
	}
	// Zero-coefficient map is a constant too.
	if s.AssertAtom(map[int]*big.Rat{0: rat(0, 1)}, Eq, rat(1, 1)) {
		t.Error("0 = 1 should be false")
	}
}

func TestSlackReuse(t *testing.T) {
	s := New()
	x, y := s.NewVar(), s.NewVar()
	one := rat(1, 1)
	combo := map[int]*big.Rat{x: one, y: one}
	s.AssertAtom(combo, Ge, rat(3, 1))
	nBefore := s.n
	s.AssertAtom(map[int]*big.Rat{x: rat(1, 1), y: rat(1, 1)}, Le, rat(7, 1))
	if s.n != nBefore {
		t.Error("identical combination should reuse its slack variable")
	}
	ok, err := s.Check()
	if err != nil || !ok {
		t.Fatalf("Check = %v %v", ok, err)
	}
}

// TestRandomSystemsAgainstWitness generates random satisfiable systems
// by construction (pick a witness point, emit only constraints it
// satisfies) and checks the solver agrees and returns a valid witness.
func TestRandomSystemsAgainstWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 120; iter++ {
		nv := 2 + rng.Intn(4)
		s := New()
		vars := make([]int, nv)
		witness := make([]*big.Rat, nv)
		for i := range vars {
			vars[i] = s.NewVar()
			witness[i] = rat(int64(rng.Intn(21)-10), int64(1+rng.Intn(4)))
		}
		nc := 1 + rng.Intn(8)
		for c := 0; c < nc; c++ {
			coeffs := map[int]*big.Rat{}
			lhs := new(big.Rat)
			for i := range vars {
				if rng.Intn(2) == 0 {
					co := rat(int64(rng.Intn(9)-4), 1)
					if co.Sign() == 0 {
						continue
					}
					coeffs[vars[i]] = co
					lhs.Add(lhs, new(big.Rat).Mul(co, witness[i]))
				}
			}
			// Orient the constraint so the witness satisfies it.
			slack := rat(int64(rng.Intn(5)), 1)
			switch rng.Intn(3) {
			case 0: // lhs <= lhs + slack
				if !s.AssertAtom(coeffs, Le, new(big.Rat).Add(lhs, slack)) {
					t.Fatalf("iter %d: satisfiable-by-construction assert failed", iter)
				}
			case 1: // lhs >= lhs - slack
				if !s.AssertAtom(coeffs, Ge, new(big.Rat).Sub(lhs, slack)) {
					t.Fatalf("iter %d: assert failed", iter)
				}
			case 2: // strict: lhs < lhs + slack + 1
				bound := new(big.Rat).Add(lhs, slack)
				bound.Add(bound, rat(1, 1))
				if !s.AssertAtom(coeffs, Lt, bound) {
					t.Fatalf("iter %d: assert failed", iter)
				}
			}
		}
		ok, err := s.Check()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("iter %d: satisfiable system reported unsat", iter)
		}
	}
}

// TestRandomInfeasible embeds x ≤ c ∧ x ≥ c+1 among noise constraints.
func TestRandomInfeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 60; iter++ {
		s := New()
		nv := 2 + rng.Intn(3)
		vars := make([]int, nv)
		for i := range vars {
			vars[i] = s.NewVar()
		}
		conflict := false
		add := func(ok bool) {
			if !ok {
				conflict = true
			}
		}
		// Noise.
		for c := 0; c < rng.Intn(5); c++ {
			coeffs := map[int]*big.Rat{vars[rng.Intn(nv)]: rat(int64(1+rng.Intn(3)), 1)}
			add(s.AssertAtom(coeffs, Le, rat(int64(rng.Intn(50)), 1)))
		}
		// Core contradiction on a random combination.
		coeffs := map[int]*big.Rat{vars[0]: rat(1, 1), vars[rng.Intn(nv)]: rat(2, 1)}
		c0 := rat(int64(rng.Intn(10)), 1)
		add(s.AssertAtom(coeffs, Le, c0))
		add(s.AssertAtom(coeffs, Ge, new(big.Rat).Add(c0, rat(1, 1))))
		if conflict {
			continue // detected at assert time
		}
		ok, err := s.Check()
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("iter %d: infeasible system reported sat", iter)
		}
	}
}
