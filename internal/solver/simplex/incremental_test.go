package simplex

import (
	"math/big"
	"math/rand"
	"testing"
)

func TestMarkPopRestoresBounds(t *testing.T) {
	s := New()
	x := s.NewVar()
	if !s.AssertVarBound(x, Ge, big.NewRat(0, 1)) {
		t.Fatal("x >= 0 rejected")
	}
	m := s.Mark()
	if !s.AssertVarBound(x, Le, big.NewRat(-1, 1)) {
		// Conflict detected eagerly — still covered by the pop below.
		t.Log("x <= -1 rejected eagerly")
	}
	s.PopToMark(m)
	if ok, err := s.Check(); err != nil || !ok {
		t.Fatalf("Check after pop = %v, %v; want sat", ok, err)
	}
	vals := s.Values([]int{x})
	if vals[x].Sign() < 0 {
		t.Errorf("x = %v violates retained bound x >= 0", vals[x])
	}
}

func TestMarkPopReusesSlackRows(t *testing.T) {
	s := New()
	x, y := s.NewVar(), s.NewVar()
	combo := func() map[int]*big.Rat {
		return map[int]*big.Rat{x: big.NewRat(1, 1), y: big.NewRat(1, 1)}
	}
	if !s.AssertAtom(combo(), Ge, big.NewRat(2, 1)) {
		t.Fatal("x+y >= 2 rejected")
	}
	nBefore := s.n
	m := s.Mark()
	if !s.AssertAtom(combo(), Le, big.NewRat(10, 1)) {
		t.Fatal("x+y <= 10 rejected")
	}
	if s.n != nBefore {
		t.Fatalf("re-asserting the same combination allocated a new slack (n %d -> %d)", nBefore, s.n)
	}
	s.PopToMark(m)
	// The row survives the pop: asserting over it again is still warm.
	if !s.AssertAtom(combo(), Le, big.NewRat(3, 1)) {
		t.Fatal("x+y <= 3 rejected after pop")
	}
	if s.n != nBefore {
		t.Fatalf("slack row not reused after pop (n %d -> %d)", nBefore, s.n)
	}
	if ok, err := s.Check(); err != nil || !ok {
		t.Fatalf("Check = %v, %v; want sat", ok, err)
	}
}

// randomAtom draws a small random atom over vars.
func randomAtom(rng *rand.Rand, vars []int) (map[int]*big.Rat, Op, *big.Rat) {
	coeffs := map[int]*big.Rat{}
	for _, v := range vars {
		if rng.Intn(2) == 0 {
			coeffs[v] = big.NewRat(int64(rng.Intn(5)-2), 1)
		}
	}
	ops := []Op{Le, Lt, Ge, Gt, Eq}
	return coeffs, ops[rng.Intn(len(ops))], big.NewRat(int64(rng.Intn(9)-4), 1)
}

type atom struct {
	coeffs map[int]*big.Rat
	op     Op
	c      *big.Rat
}

func checkAll(nVars int, groups ...[]atom) bool {
	s := New()
	vars := make([]int, nVars)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	for _, g := range groups {
		for _, a := range g {
			if !s.AssertAtom(a.coeffs, a.op, a.c) {
				return false
			}
		}
	}
	ok, err := s.Check()
	return err == nil && ok
}

// TestMarkPopMatchesFresh drives random assert/mark/assert/pop rounds
// and compares every Check verdict against a fresh instance holding
// exactly the live atoms — the soundness test for bound retraction
// over a retained tableau.
func TestMarkPopMatchesFresh(t *testing.T) {
	for seed := int64(0); seed < 80; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nVars := 2 + rng.Intn(3)
		s := New()
		vars := make([]int, nVars)
		for i := range vars {
			vars[i] = s.NewVar()
		}
		var base []atom
		baseOK := true
		for i := 0; i < 1+rng.Intn(4); i++ {
			co, op, c := randomAtom(rng, vars)
			base = append(base, atom{co, op, c})
			baseOK = baseOK && s.AssertAtom(co, op, c)
		}
		if baseOK {
			ok, err := s.Check()
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if ok != checkAll(nVars, base) {
				t.Fatalf("seed %d: base verdict %v, fresh %v", seed, ok, !ok)
			}
			if !ok {
				continue // conflicting base: retraction rounds start elsewhere
			}
		} else {
			continue
		}
		for round := 0; round < 3; round++ {
			m := s.Mark()
			var extra []atom
			extraOK := true
			for i := 0; i < 1+rng.Intn(3); i++ {
				co, op, c := randomAtom(rng, vars)
				extra = append(extra, atom{co, op, c})
				extraOK = extraOK && s.AssertAtom(co, op, c)
			}
			if extraOK {
				ok, err := s.Check()
				if err != nil {
					t.Fatalf("seed %d round %d: %v", seed, round, err)
				}
				if want := checkAll(nVars, base, extra); ok != want {
					t.Fatalf("seed %d round %d: framed verdict %v, fresh %v", seed, round, ok, want)
				}
			}
			s.PopToMark(m)
			ok, err := s.Check()
			if err != nil {
				t.Fatalf("seed %d round %d: %v", seed, round, err)
			}
			if !ok {
				t.Fatalf("seed %d round %d: sat base became unsat after PopToMark", seed, round)
			}
		}
	}
}
