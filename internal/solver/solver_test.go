package solver

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/coverage"
	"repro/internal/eval"
	"repro/internal/smtlib"
)

func solveSrc(t *testing.T, s *Solver, src string) Outcome {
	t.Helper()
	sc, err := smtlib.ParseScript(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return s.SolveScript(sc)
}

func wantResult(t *testing.T, src string, want Result) Outcome {
	t.Helper()
	out := solveSrc(t, NewReference(), src)
	if out.Result != want {
		t.Fatalf("got %v (reason %q), want %v\nscript:\n%s", out.Result, out.Reason, want, src)
	}
	if out.Result == ResSat {
		certifyOriginal(t, src, out.Model)
	}
	return out
}

// certifyOriginal checks a model against the original (unrewritten)
// script — the reference solver must be model-sound end to end.
func certifyOriginal(t *testing.T, src string, m eval.Model) {
	t.Helper()
	sc, _ := smtlib.ParseScript(src)
	for _, a := range sc.Asserts() {
		if ast.HasQuantifier(a) {
			continue // not decidable by evaluation
		}
		ok, err := eval.Bool(a, m)
		if err != nil {
			t.Fatalf("certify: %v (assert %s)", err, ast.Print(a))
		}
		if !ok {
			t.Fatalf("model violates original assert %s\nmodel: %v", ast.Print(a), m)
		}
	}
}

func TestTrivial(t *testing.T) {
	wantResult(t, `(assert true)(check-sat)`, ResSat)
	wantResult(t, `(assert false)(check-sat)`, ResUnsat)
	wantResult(t, `(declare-fun p () Bool)(assert p)(assert (not p))`, ResUnsat)
	wantResult(t, `(declare-fun p () Bool)(declare-fun q () Bool)(assert (or p q))(assert (not p))`, ResSat)
}

func TestLIA(t *testing.T) {
	wantResult(t, `
(set-logic QF_LIA)
(declare-fun x () Int)(declare-fun y () Int)
(assert (> x 0))(assert (< x 3))(assert (= y (+ x x)))
`, ResSat)
	wantResult(t, `
(set-logic QF_LIA)
(declare-fun x () Int)
(assert (> x 0))(assert (< x 1))
`, ResUnsat)
	wantResult(t, `
(set-logic QF_LIA)
(declare-fun x () Int)(declare-fun y () Int)
(assert (= (* 2 x) (+ (* 2 y) 1)))
`, ResUnsat)
}

func TestLRA(t *testing.T) {
	wantResult(t, `
(set-logic QF_LRA)
(declare-fun a () Real)(declare-fun b () Real)
(assert (< a b))(assert (> a 0.0))(assert (< b 0.5))
`, ResSat)
	wantResult(t, `
(set-logic QF_LRA)
(declare-fun a () Real)
(assert (< a 1.0))(assert (> a 1.0))
`, ResUnsat)
	// Strict boundary: x ≥ 0 ∧ x ≤ 0 is sat (x = 0).
	wantResult(t, `
(set-logic QF_LRA)
(declare-fun a () Real)
(assert (>= a 0.0))(assert (<= a 0.0))
`, ResSat)
}

func TestBooleanStructure(t *testing.T) {
	wantResult(t, `
(declare-fun x () Int)(declare-fun w () Bool)
(assert (= x (- 1)))
(assert (= w (= x (- 1))))
(assert w)
`, ResSat)
	wantResult(t, `
(declare-fun y () Int)(declare-fun v () Bool)
(assert (= v (not (= y (- 1)))))
(assert (ite v false (= y (- 1))))
`, ResSat)
	wantResult(t, `
(declare-fun p () Bool)(declare-fun q () Bool)
(assert (xor p q))(assert (= p q))
`, ResUnsat)
	wantResult(t, `
(declare-fun p () Bool)(declare-fun q () Bool)(declare-fun r () Bool)
(assert (=> p q r))(assert p)(assert q)(assert (not r))
`, ResUnsat)
}

func TestPaperFigure3SatFusion(t *testing.T) {
	// The fused formula from the paper's Figure 3 (satisfiable; CVC4
	// wrongly answered unsat). Our reference solver must say sat.
	src := `
(declare-fun v () Bool)
(declare-fun w () Bool)
(declare-fun x () Int)
(declare-fun y () Int)
(declare-fun z () Int)
(assert (= (div z y) (- 1)))
(assert (= w (= x (- 1)))) (assert w)
(assert (= v (not (= y (- 1)))))
(assert (ite v false (= (div z x) (- 1))))
(check-sat)
`
	out := solveSrc(t, NewReference(), src)
	if out.Result == ResUnsat {
		t.Fatalf("reference solver is unsound on Figure 3: %v", out.Result)
	}
	if out.Result == ResSat {
		certifyOriginal(t, src, out.Model)
	}
}

func TestPaperFigure5UnsatFusion(t *testing.T) {
	// The fused formula from the paper's Figure 5 (unsatisfiable; Z3
	// wrongly answered sat). Unsat or unknown are acceptable; sat is a
	// soundness bug.
	src := `
(declare-fun v () Real)
(declare-fun w () Real)
(declare-fun x () Real)
(declare-fun y () Real)
(declare-fun z () Real)
(assert (or
  (not (= (+ (+ 1.0 (/ z y)) 6.0) (+ 7.0 x)))
  (and (< (/ z x) v) (>= w v)
       (< (/ w v) 0) (> (/ z x) 0))))
(assert (= z (* x y)))
(assert (= x (/ z y)))
(assert (= y (/ z x)))
(check-sat)
`
	out := solveSrc(t, NewReference(), src)
	if out.Result == ResSat {
		t.Fatalf("reference solver claims sat on the unsat Figure 5 formula")
	}
}

func TestNRASat(t *testing.T) {
	wantResult(t, `
(set-logic QF_NRA)
(declare-fun a () Real)(declare-fun b () Real)
(assert (= (* a b) 2.0))(assert (> a 0.0))
`, ResSat)
}

func TestNRAUnsatViaIntervals(t *testing.T) {
	src := `
(set-logic QF_NRA)
(declare-fun a () Real)(declare-fun b () Real)
(assert (> a 0.0))(assert (> b 0.0))(assert (< (* a b) 0.0))
`
	out := solveSrc(t, NewReference(), src)
	if out.Result == ResSat {
		t.Fatalf("sign conflict reported sat")
	}
	if out.Result != ResUnsat {
		t.Logf("interval refutation missed (got %v) — acceptable but weak", out.Result)
	}
}

func TestSquareSignRewrite(t *testing.T) {
	wantResult(t, `
(set-logic QF_NRA)
(declare-fun a () Real)
(assert (< (* a a) 0.0))
`, ResUnsat)
	wantResult(t, `
(set-logic QF_NRA)
(declare-fun a () Real)
(assert (>= (* a a) 0.0))
`, ResSat)
}

func TestStringsIntegration(t *testing.T) {
	wantResult(t, `
(set-logic QF_S)
(declare-fun a () String)(declare-fun b () String)
(assert (= a (str.++ b "x")))(assert (= (str.len a) 3))
`, ResSat)
	wantResult(t, `
(set-logic QF_S)
(declare-fun a () String)
(assert (= a (str.++ a "x")))
`, ResUnsat)
	wantResult(t, `
(set-logic QF_SLIA)
(declare-fun a () String)(declare-fun n () Int)
(assert (= n (str.len a)))(assert (< n 0))
`, ResUnsat)
}

func TestQuantifiers(t *testing.T) {
	// Positive existential: skolemized.
	wantResult(t, `
(set-logic LRA)
(declare-fun a () Real)
(assert (exists ((h Real)) (> h a)))
`, ResSat)
	// Negated universal becomes positive existential.
	wantResult(t, `
(set-logic LRA)
(declare-fun a () Real)
(assert (not (forall ((h Real)) (<= h a))))
`, ResSat)
	// Positive universal: honest unknown.
	out := solveSrc(t, NewReference(), `
(set-logic LRA)
(declare-fun a () Real)
(assert (forall ((h Real)) (> h a)))
`)
	if out.Result != ResUnknown {
		t.Fatalf("positive forall should be unknown, got %v", out.Result)
	}
}

func TestInliningCollapsesAdditiveFusion(t *testing.T) {
	// z := x + y introduced by fusion; occurrences of x replaced by
	// z - y. Inlining + linear normalization must recover x > 0 ∧ x < 3.
	wantResult(t, `
(set-logic QF_LIA)
(declare-fun x () Int)(declare-fun y () Int)(declare-fun z () Int)
(assert (= z (+ x y)))
(assert (> (- z y) 0))
(assert (< x 3))
(assert (< y 100))
`, ResSat)
}

func TestDivisionByZeroSemantics(t *testing.T) {
	// (/ 1.0 0.0) = 0 under the fixed interpretation.
	wantResult(t, `
(set-logic QF_NRA)
(declare-fun c () Real)
(assert (= c 0.0))
(assert (= (/ 1.0 c) 0.0))
`, ResSat)
}

// --- Defect behaviour ---

func defective(d Defect) *Solver {
	return New(Config{Defects: map[Defect]bool{d: true}})
}

func TestDefectStrToIntEmpty(t *testing.T) {
	// str.to_int "" = -1; the defect folds it to 0.
	src := `
(set-logic QF_SLIA)
(declare-fun n () Int)
(assert (= n (str.to_int "")))
(assert (= n 0))
`
	if out := solveSrc(t, NewReference(), src); out.Result != ResUnsat {
		t.Fatalf("reference: got %v want unsat", out.Result)
	}
	out := solveSrc(t, defective(DefStrToIntEmpty), src)
	if out.Result != ResSat {
		t.Fatalf("defective solver should (wrongly) answer sat, got %v", out.Result)
	}
	if len(out.DefectsFired) != 1 || out.DefectsFired[0] != DefStrToIntEmpty {
		t.Errorf("DefectsFired = %v", out.DefectsFired)
	}
}

func TestDefectStrReplaceEmpty(t *testing.T) {
	// (str.replace "bc" "" "a") = "abc"; defect says "bc".
	src := `
(set-logic QF_S)
(declare-fun s () String)
(assert (= s (str.replace "bc" "" "a")))
(assert (= s "bc"))
`
	if out := solveSrc(t, NewReference(), src); out.Result != ResUnsat {
		t.Fatalf("reference: %v", out.Result)
	}
	if out := solveSrc(t, defective(DefStrReplaceEmptyPat), src); out.Result != ResSat {
		t.Fatalf("defective: %v", out.Result)
	}
}

func TestDefectIntDivNegRound(t *testing.T) {
	// (div 7 -2) = -3 Euclidean; truncation gives -3 too... use -7/2:
	// Euclidean (div -7 2) = -4, truncated = -3.
	src := `
(set-logic QF_NIA)
(declare-fun q () Int)
(assert (= q (div (- 7) (- 2))))
(assert (= q 3))
`
	// Euclidean: -7 = -2·4 + 1 → div = 4. Truncated: 3.
	if out := solveSrc(t, NewReference(), src); out.Result != ResUnsat {
		t.Fatalf("reference: %v", out.Result)
	}
	if out := solveSrc(t, defective(DefIntDivNegRound), src); out.Result != ResSat {
		t.Fatalf("defective: %v", out.Result)
	}
}

func TestDefectBoundConflict(t *testing.T) {
	src := `
(set-logic QF_LRA)
(declare-fun a () Real)
(assert (>= a 1.0))
(assert (<= a 1.0))
`
	if out := solveSrc(t, NewReference(), src); out.Result != ResSat {
		t.Fatalf("reference: %v", out.Result)
	}
	if out := solveSrc(t, defective(DefBoundConflictEq), src); out.Result != ResUnsat {
		t.Fatalf("defective: got %v want wrong unsat", out.Result)
	}
}

func TestDefectRegexMinLenStrict(t *testing.T) {
	src := `
(set-logic QF_S)
(declare-fun c () String)
(assert (str.in_re c (re.+ (str.to_re "ab"))))
(assert (= (str.len c) 2))
`
	if out := solveSrc(t, NewReference(), src); out.Result != ResSat {
		t.Fatalf("reference: %v", out.Result)
	}
	if out := solveSrc(t, defective(DefRegexMinLenStrict), src); out.Result != ResUnsat {
		t.Fatalf("defective: %v", out.Result)
	}
}

func TestDefectCrash(t *testing.T) {
	src := `
(set-logic QF_NRA)
(declare-fun a () Real)
(assert (> (/ (+ a 1.0) (+ a 1.0)) 0.0))
`
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("crash defect did not panic")
		}
		ce, ok := r.(*CrashError)
		if !ok || ce.Site != DefCrashSelfDivision {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	solveSrc(t, defective(DefCrashSelfDivision), src)
}

func TestDefectQuantNegPush(t *testing.T) {
	// ¬∃h (h > a ∧ h < a) is valid (inner is unsat): reference
	// answers sat (as ∀-free after correct push it becomes a positive
	// forall... it becomes ∀h ¬(...) which is not eliminable) — the
	// reference gives unknown here; the defect turns it into an
	// existential and (wrongly) decides.
	src := `
(set-logic NRA)
(declare-fun a () Real)
(assert (not (exists ((h Real)) (and (> h a) (< h a)))))
`
	ref := solveSrc(t, NewReference(), src)
	if ref.Result == ResUnsat {
		t.Fatalf("reference must not be unsound: %v", ref.Result)
	}
	out := solveSrc(t, defective(DefQuantNegPush), src)
	// Defect: ¬∃ pushed as ∃¬ → skolemized → (h>a ∧ h<a) negated →
	// or(h≤a, h≥a) → sat. The formula is actually valid (sat), so the
	// wrong path may coincidentally agree; what matters is the defect
	// fired and changed the pipeline.
	fired := false
	for _, d := range out.DefectsFired {
		if d == DefQuantNegPush {
			fired = true
		}
	}
	if !fired {
		t.Fatal("defect did not fire")
	}
}

func TestCoverageTracking(t *testing.T) {
	tr := coverage.NewTracker()
	s := New(Config{Coverage: tr})
	solveSrc(t, s, `
(set-logic QF_S)
(declare-fun a () String)
(assert (= (str.len a) 2))
(assert (str.in_re a (re.* (str.to_re "ab"))))
`)
	rep := tr.Report()
	if rep.Functions().Hit == 0 || rep.Lines().Hit == 0 || rep.Branches().Hit == 0 {
		t.Errorf("coverage empty: %+v", rep)
	}
	if rep.Functions().Total == 0 {
		t.Error("no registered probes")
	}
	// A second, richer run strictly increases (or keeps) coverage.
	solveSrc(t, s, `
(set-logic QF_NRA)
(declare-fun x () Real)
(assert (> (* x x) 1.0))
`)
	rep2 := tr.Report()
	if rep2.Branches().Hit < rep.Branches().Hit {
		t.Error("coverage decreased")
	}
}

func TestDefectsFiredOnlyWhenEnabled(t *testing.T) {
	src := `
(set-logic QF_SLIA)
(declare-fun n () Int)
(assert (= n (str.to_int "")))
`
	out := solveSrc(t, NewReference(), src)
	if len(out.DefectsFired) != 0 {
		t.Errorf("reference fired defects: %v", out.DefectsFired)
	}
}

func TestModelRecoversInlinedVars(t *testing.T) {
	src := `
(set-logic QF_LIA)
(declare-fun x () Int)(declare-fun z () Int)
(assert (= z (+ x 5)))
(assert (> x 0))
`
	out := wantResult(t, src, ResSat)
	zv, ok := out.Model["z"].(eval.IntV)
	if !ok {
		t.Fatalf("z missing from model: %v", out.Model)
	}
	xv := out.Model["x"].(eval.IntV)
	if zv.V.Int64() != xv.V.Int64()+5 {
		t.Errorf("z = %v, x = %v", zv, xv)
	}
}
