package arith

import (
	"math/big"
)

// Endpoint is one side of an interval: a rational value or ±∞, with an
// openness flag (Open means the value itself is excluded).
type Endpoint struct {
	V    *big.Rat
	Inf  bool // true: this endpoint is infinite (sign given by side)
	Open bool
}

func finite(v *big.Rat, open bool) Endpoint { return Endpoint{V: v, Open: open} }

// Interval is a (possibly unbounded, possibly open) rational interval.
type Interval struct {
	Lo, Hi Endpoint
}

// Whole returns (−∞, ∞).
func Whole() Interval {
	return Interval{Lo: Endpoint{Inf: true}, Hi: Endpoint{Inf: true}}
}

// Point returns the degenerate interval [v, v].
func Point(v *big.Rat) Interval {
	return Interval{Lo: finite(v, false), Hi: finite(v, false)}
}

// IsEmpty reports whether the interval contains no rational.
func (i Interval) IsEmpty() bool {
	if i.Lo.Inf || i.Hi.Inf {
		return false
	}
	c := i.Lo.V.Cmp(i.Hi.V)
	if c > 0 {
		return true
	}
	return c == 0 && (i.Lo.Open || i.Hi.Open)
}

// Contains reports whether v lies in the interval.
func (i Interval) Contains(v *big.Rat) bool {
	if !i.Lo.Inf {
		c := v.Cmp(i.Lo.V)
		if c < 0 || (c == 0 && i.Lo.Open) {
			return false
		}
	}
	if !i.Hi.Inf {
		c := v.Cmp(i.Hi.V)
		if c > 0 || (c == 0 && i.Hi.Open) {
			return false
		}
	}
	return true
}

// ContainsZero reports whether 0 lies in the interval.
func (i Interval) ContainsZero() bool { return i.Contains(new(big.Rat)) }

// Intersect returns the intersection of two intervals.
func (i Interval) Intersect(o Interval) Interval {
	lo := i.Lo
	if !o.Lo.Inf {
		if lo.Inf {
			lo = o.Lo
		} else {
			c := o.Lo.V.Cmp(lo.V)
			if c > 0 || (c == 0 && o.Lo.Open) {
				lo = o.Lo
			}
		}
	}
	hi := i.Hi
	if !o.Hi.Inf {
		if hi.Inf {
			hi = o.Hi
		} else {
			c := o.Hi.V.Cmp(hi.V)
			if c < 0 || (c == 0 && o.Hi.Open) {
				hi = o.Hi
			}
		}
	}
	return Interval{Lo: lo, Hi: hi}
}

// Hull returns the smallest interval containing both (interval union
// hull).
func (i Interval) Hull(o Interval) Interval {
	lo := i.Lo
	if lo.Inf || o.Lo.Inf {
		lo = Endpoint{Inf: true}
	} else {
		c := o.Lo.V.Cmp(lo.V)
		if c < 0 || (c == 0 && !o.Lo.Open) {
			lo = o.Lo
		}
	}
	hi := i.Hi
	if hi.Inf || o.Hi.Inf {
		hi = Endpoint{Inf: true}
	} else {
		c := o.Hi.V.Cmp(hi.V)
		if c > 0 || (c == 0 && !o.Hi.Open) {
			hi = o.Hi
		}
	}
	return Interval{Lo: lo, Hi: hi}
}

// Neg returns −i.
func (i Interval) Neg() Interval {
	lo, hi := i.Hi, i.Lo
	if !lo.Inf {
		lo = Endpoint{V: new(big.Rat).Neg(lo.V), Open: lo.Open}
	}
	if !hi.Inf {
		hi = Endpoint{V: new(big.Rat).Neg(hi.V), Open: hi.Open}
	}
	return Interval{Lo: lo, Hi: hi}
}

// Add returns i + o.
func (i Interval) Add(o Interval) Interval {
	var lo, hi Endpoint
	if i.Lo.Inf || o.Lo.Inf {
		lo = Endpoint{Inf: true}
	} else {
		lo = finite(new(big.Rat).Add(i.Lo.V, o.Lo.V), i.Lo.Open || o.Lo.Open)
	}
	if i.Hi.Inf || o.Hi.Inf {
		hi = Endpoint{Inf: true}
	} else {
		hi = finite(new(big.Rat).Add(i.Hi.V, o.Hi.V), i.Hi.Open || o.Hi.Open)
	}
	return Interval{Lo: lo, Hi: hi}
}

// Sub returns i − o.
func (i Interval) Sub(o Interval) Interval { return i.Add(o.Neg()) }

// corner is a signed extended rational used in product/quotient bounds.
type corner struct {
	v    *big.Rat
	inf  int8 // -1, 0, +1
	open bool
}

func (i Interval) loCorner() corner {
	if i.Lo.Inf {
		return corner{inf: -1}
	}
	return corner{v: i.Lo.V, open: i.Lo.Open}
}

func (i Interval) hiCorner() corner {
	if i.Hi.Inf {
		return corner{inf: 1}
	}
	return corner{v: i.Hi.V, open: i.Hi.Open}
}

func (c corner) sign() int {
	if c.inf != 0 {
		return int(c.inf)
	}
	return c.v.Sign()
}

func mulCorner(a, b corner) corner {
	open := a.open || b.open
	if a.inf != 0 || b.inf != 0 {
		// 0 × ∞ = 0 (corner rule: an attained zero annihilates).
		if a.sign() == 0 || b.sign() == 0 {
			return corner{v: new(big.Rat), open: open}
		}
		s := int8(a.sign() * b.sign())
		return corner{inf: s, open: open}
	}
	return corner{v: new(big.Rat).Mul(a.v, b.v), open: open}
}

func divCorner(a, b corner) corner {
	open := a.open || b.open
	if b.inf != 0 {
		return corner{v: new(big.Rat), open: true} // limit toward 0
	}
	if b.v.Sign() == 0 {
		// Callers exclude divisor intervals containing 0.
		return corner{v: new(big.Rat), open: open}
	}
	if a.inf != 0 {
		s := int8(int(a.inf) * b.v.Sign())
		return corner{inf: s, open: open}
	}
	return corner{v: new(big.Rat).Quo(a.v, b.v), open: open}
}

func cornerLess(a, b corner) bool {
	if a.inf != b.inf {
		return a.inf < b.inf
	}
	if a.inf != 0 {
		return false
	}
	return a.v.Cmp(b.v) < 0
}

func cornerEq(a, b corner) bool { return !cornerLess(a, b) && !cornerLess(b, a) }

func cornersToInterval(cs []corner) Interval {
	lo, hi := cs[0], cs[0]
	for _, c := range cs[1:] {
		switch {
		case cornerLess(c, lo):
			lo = c
		case cornerEq(c, lo) && !c.open:
			lo.open = false
		}
		switch {
		case cornerLess(hi, c):
			hi = c
		case cornerEq(c, hi) && !c.open:
			hi.open = false
		}
	}
	out := Interval{}
	if lo.inf < 0 {
		out.Lo = Endpoint{Inf: true}
	} else if lo.inf > 0 {
		// Degenerate (+∞ lower bound): treat as whole for safety.
		return Whole()
	} else {
		out.Lo = finite(lo.v, lo.open)
	}
	if hi.inf > 0 {
		out.Hi = Endpoint{Inf: true}
	} else if hi.inf < 0 {
		return Whole()
	} else {
		out.Hi = finite(hi.v, hi.open)
	}
	return out
}

// Mul returns an enclosure of i × o.
func (i Interval) Mul(o Interval) Interval {
	cs := []corner{
		mulCorner(i.loCorner(), o.loCorner()),
		mulCorner(i.loCorner(), o.hiCorner()),
		mulCorner(i.hiCorner(), o.loCorner()),
		mulCorner(i.hiCorner(), o.hiCorner()),
	}
	return cornersToInterval(cs)
}

// Div returns an enclosure of i ÷ o under this system's fixed
// interpretation x/0 = 0. If the divisor interval contains zero the
// result is the whole line (conservative).
func (i Interval) Div(o Interval) Interval {
	if o.ContainsZero() {
		return Whole()
	}
	cs := []corner{
		divCorner(i.loCorner(), o.loCorner()),
		divCorner(i.loCorner(), o.hiCorner()),
		divCorner(i.hiCorner(), o.loCorner()),
		divCorner(i.hiCorner(), o.hiCorner()),
	}
	return cornersToInterval(cs)
}

// Abs returns an enclosure of |i|.
func (i Interval) Abs() Interval {
	neg := i.Neg()
	nonneg := Interval{Lo: finite(new(big.Rat), false), Hi: Endpoint{Inf: true}}
	return i.Hull(neg).Intersect(nonneg)
}

// TightenInt shrinks the interval to integer-attainable bounds for an
// integer-sorted variable.
func (i Interval) TightenInt() Interval {
	out := i
	if !out.Lo.Inf {
		v := out.Lo.V
		if v.IsInt() {
			if out.Lo.Open {
				out.Lo = finite(new(big.Rat).Add(v, big.NewRat(1, 1)), false)
			}
		} else {
			ceil := new(big.Int).Add(floorRat(v), big.NewInt(1))
			out.Lo = finite(new(big.Rat).SetInt(ceil), false)
		}
	}
	if !out.Hi.Inf {
		v := out.Hi.V
		if v.IsInt() {
			if out.Hi.Open {
				out.Hi = finite(new(big.Rat).Sub(v, big.NewRat(1, 1)), false)
			}
		} else {
			out.Hi = finite(new(big.Rat).SetInt(floorRat(v)), false)
		}
	}
	return out
}
