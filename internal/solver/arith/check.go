package arith

import (
	"math/big"
	"sort"

	"repro/internal/fuel"
	"repro/internal/solver/simplex"
	"repro/internal/telemetry"
)

// cBnBNodes counts branch-and-bound / disequality-split tree nodes —
// one increment per fuel unit spent at a node entry.
var cBnBNodes = telemetry.NewCounter("yy_arith_bnb_nodes_total", "arithmetic branch-and-bound tree nodes")

// Rel is the relation of an atom Expr ⋈ 0.
type Rel int8

const (
	RelLe Rel = iota // ≤ 0
	RelLt            // < 0
	RelGe            // ≥ 0
	RelGt            // > 0
	RelEq            // = 0
	RelNe            // ≠ 0
)

// Negate returns the complementary relation.
func (r Rel) Negate() Rel {
	switch r {
	case RelLe:
		return RelGt
	case RelLt:
		return RelGe
	case RelGe:
		return RelLt
	case RelGt:
		return RelLe
	case RelEq:
		return RelNe
	default:
		return RelEq
	}
}

// HoldsOn reports whether value v (an evaluated expression) satisfies
// the relation against zero.
func (r Rel) HoldsOn(v *big.Rat) bool {
	s := v.Sign()
	switch r {
	case RelLe:
		return s <= 0
	case RelLt:
		return s < 0
	case RelGe:
		return s >= 0
	case RelGt:
		return s > 0
	case RelEq:
		return s == 0
	default:
		return s != 0
	}
}

// Atom is a linear atom Expr ⋈ 0.
type Atom struct {
	Expr *LinExpr
	Rel  Rel
}

// Status is the outcome of a conjunction check.
type Status int8

const (
	Unknown Status = iota
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

// Problem is a conjunction of linear atoms with integrality side
// conditions.
type Problem struct {
	Atoms   []Atom
	IntVars map[string]bool
	// NodeBudget bounds the branch-and-bound / disequality-split tree;
	// exhausting it yields Unknown. Zero selects a default.
	NodeBudget int
	// Fuel is the unified deadline shared across the solver's engines:
	// one unit is spent per tree node, and the meter is handed down to
	// the simplex core. Exhaustion yields Unknown. Nil means unlimited.
	Fuel *fuel.Meter
	// Telem records tree-node and pivot counts into the owner's
	// tracker (handed down to the simplex core). Nil records nothing.
	Telem *telemetry.Tracker
}

// Check decides the conjunction. On Sat, the returned assignment maps
// every variable occurring in the atoms to a rational (integral for
// IntVars).
func Check(p *Problem) (Status, map[string]*big.Rat) {
	budget := p.NodeBudget
	if budget == 0 {
		budget = 400
	}
	c := &checker{intVars: p.IntVars, budget: budget, fuel: p.Fuel, telem: p.Telem}
	return c.solve(p.Atoms)
}

type checker struct {
	intVars map[string]bool
	budget  int
	fuel    *fuel.Meter
	telem   *telemetry.Tracker
}

func (c *checker) solve(atoms []Atom) (Status, map[string]*big.Rat) {
	if c.budget <= 0 || !c.fuel.Spend(1) {
		return Unknown, nil
	}
	c.telem.Inc(cBnBNodes)
	c.budget--

	// Integer strengthening: over all-integer variables with integer
	// coefficients, a strict inequality tightens to a non-strict one
	// (x > c ⇒ x ≥ c+1), which keeps simplex witnesses on integer
	// points instead of δ-fractional ones.
	atoms = c.strengthenInts(atoms)

	// GCD cut: an integer equality Σ cᵢxᵢ + c = 0 (integer xᵢ) is
	// unsatisfiable when gcd(cᵢ) does not divide c. This decides cases
	// branch-and-bound cannot (unbounded parity conflicts).
	for _, a := range atoms {
		if a.Rel == RelEq && c.gcdCutInfeasible(a.Expr) {
			return Unsat, nil
		}
	}

	// Collect variables deterministically.
	varSet := map[string]bool{}
	for _, a := range atoms {
		for v := range a.Expr.Coeffs {
			varSet[v] = true
		}
	}
	names := make([]string, 0, len(varSet))
	for v := range varSet {
		names = append(names, v)
	}
	sort.Strings(names)

	sx := simplex.New()
	sx.Fuel = c.fuel
	sx.Telem = c.telem
	idx := map[string]int{}
	for _, v := range names {
		idx[v] = sx.NewVar()
	}

	var diseqs []Atom
	for _, a := range atoms {
		if a.Rel == RelNe {
			diseqs = append(diseqs, a)
			continue
		}
		coeffs := map[int]*big.Rat{}
		for v, co := range a.Expr.Coeffs {
			coeffs[idx[v]] = co
		}
		bound := new(big.Rat).Neg(a.Expr.Const)
		var op simplex.Op
		switch a.Rel {
		case RelLe:
			op = simplex.Le
		case RelLt:
			op = simplex.Lt
		case RelGe:
			op = simplex.Ge
		case RelGt:
			op = simplex.Gt
		case RelEq:
			op = simplex.Eq
		}
		if !sx.AssertAtom(coeffs, op, bound) {
			return Unsat, nil
		}
	}
	ok, err := sx.Check()
	if err != nil {
		return Unknown, nil
	}
	if !ok {
		return Unsat, nil
	}

	ids := make([]int, len(names))
	for i, v := range names {
		ids[i] = idx[v]
	}
	raw := sx.Values(ids)
	model := map[string]*big.Rat{}
	for i, v := range names {
		model[v] = raw[ids[i]]
	}

	// Disequality handling: if some ≠ atom is violated by the model,
	// split into < and > branches.
	for _, d := range diseqs {
		val, err := d.Expr.Eval(model)
		if err != nil {
			return Unknown, nil
		}
		if val.Sign() == 0 {
			lt := append(cloneAtoms(atoms, d), Atom{Expr: d.Expr, Rel: RelLt})
			if st, m := c.solve(lt); st == Sat {
				return Sat, m
			} else if st == Unknown {
				return Unknown, nil
			}
			gt := append(cloneAtoms(atoms, d), Atom{Expr: d.Expr, Rel: RelGt})
			return c.solve(gt)
		}
	}

	// Integrality: branch and bound on the first fractional integer
	// variable.
	for _, v := range names {
		if !c.intVars[v] {
			continue
		}
		val := model[v]
		if val.IsInt() {
			continue
		}
		fl := floorRat(val)
		le := NewLinExpr()
		le.AddVar(v, big.NewRat(1, 1))
		le.Const.Sub(le.Const, new(big.Rat).SetInt(fl)) // v - floor ≤ 0
		down := append(cloneAtoms(atoms, Atom{}), Atom{Expr: le, Rel: RelLe})
		if st, m := c.solve(down); st == Sat {
			return Sat, m
		} else if st == Unknown {
			return Unknown, nil
		}
		ge := NewLinExpr()
		ge.AddVar(v, big.NewRat(1, 1))
		ceil := new(big.Int).Add(fl, big.NewInt(1))
		ge.Const.Sub(ge.Const, new(big.Rat).SetInt(ceil)) // v - ceil ≥ 0
		up := append(cloneAtoms(atoms, Atom{}), Atom{Expr: ge, Rel: RelGe})
		return c.solve(up)
	}

	return Sat, model
}

// cloneAtoms copies the atom slice, dropping the (by-pointer) excluded
// atom if present.
func cloneAtoms(atoms []Atom, exclude Atom) []Atom {
	out := make([]Atom, 0, len(atoms)+1)
	for _, a := range atoms {
		if exclude.Expr != nil && a.Expr == exclude.Expr && a.Rel == exclude.Rel {
			continue
		}
		out = append(out, a)
	}
	return out
}

// strengthenInts rewrites strict atoms over all-integer variables with
// integer coefficients into equivalent non-strict atoms.
func (c *checker) strengthenInts(atoms []Atom) []Atom {
	out := make([]Atom, len(atoms))
	one := big.NewRat(1, 1)
	for i, a := range atoms {
		out[i] = a
		if a.Rel != RelLt && a.Rel != RelGt {
			continue
		}
		allInt := len(a.Expr.Coeffs) > 0
		for v, co := range a.Expr.Coeffs {
			if !c.intVars[v] || !co.IsInt() {
				allInt = false
				break
			}
		}
		if !allInt || !a.Expr.Const.IsInt() {
			continue
		}
		e := a.Expr.Clone()
		if a.Rel == RelLt { // e < 0 ⇒ e ≤ −1 ⇒ e + 1 ≤ 0
			e.Const.Add(e.Const, one)
			out[i] = Atom{Expr: e, Rel: RelLe}
		} else { // e > 0 ⇒ e ≥ 1 ⇒ e − 1 ≥ 0
			e.Const.Sub(e.Const, one)
			out[i] = Atom{Expr: e, Rel: RelGe}
		}
	}
	return out
}

// gcdCutInfeasible reports whether the equality e = 0 over all-integer
// variables has no integer solution by the gcd divisibility criterion.
func (c *checker) gcdCutInfeasible(e *LinExpr) bool {
	if len(e.Coeffs) == 0 {
		return false // constant equalities are handled by simplex
	}
	for v := range e.Coeffs {
		if !c.intVars[v] {
			return false
		}
	}
	// Scale by the lcm of denominators to integer form.
	lcm := new(big.Int).Set(e.Const.Denom())
	for _, co := range e.Coeffs {
		g := new(big.Int).GCD(nil, nil, lcm, co.Denom())
		lcm.Div(new(big.Int).Mul(lcm, co.Denom()), g)
	}
	scale := new(big.Rat).SetInt(lcm)
	var g *big.Int
	for _, co := range e.Coeffs {
		ci := new(big.Rat).Mul(co, scale)
		if g == nil {
			g = new(big.Int).Abs(ci.Num())
		} else {
			g.GCD(nil, nil, g, new(big.Int).Abs(ci.Num()))
		}
	}
	konst := new(big.Rat).Mul(e.Const, scale)
	rem := new(big.Int).Mod(konst.Num(), g)
	return rem.Sign() != 0
}

func floorRat(v *big.Rat) *big.Int {
	q := new(big.Int)
	r := new(big.Int)
	q.QuoRem(v.Num(), v.Denom(), r)
	if r.Sign() < 0 {
		q.Sub(q, big.NewInt(1))
	}
	return q
}
