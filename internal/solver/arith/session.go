package arith

import (
	"math/big"

	"repro/internal/fuel"
	"repro/internal/solver/simplex"
	"repro/internal/telemetry"
)

// Session is a persistent linear-arithmetic context for the
// incremental solving layer. Unlike Check — which builds a fresh
// tableau per branch-and-bound node — a Session keeps one simplex
// instance alive across Assert/Feasible calls: slack variables and
// their tableau rows persist, so atoms shared between assertion frames
// are asserted once and re-checks start from a warm basis. Mark and
// PopToMark bracket an assertion frame: popping retracts exactly the
// bounds asserted above the mark while rows and basis stay in place.
//
// A Session is a sound relaxation of the full theory: disequalities
// are skipped and nonlinear terms arrive pre-abstracted as fresh
// variables, so an infeasible Session proves the underlying
// conjunction unsatisfiable, while a feasible one proves nothing.
type Session struct {
	sx   *simplex.Solver
	vars map[string]int
	// infeasibleAt records the mark depth at which an Assert returned
	// false; until that frame is popped the session is trivially
	// infeasible and further Asserts are ignored.
	conflict bool
	confMark int
}

// NewSession returns an empty session.
func NewSession() *Session {
	return &Session{sx: simplex.New(), vars: map[string]int{}}
}

// SetBudget wires the fuel meter and telemetry tracker used by
// subsequent Feasible calls (the session outlives any single solve, so
// the owner re-points these each check).
func (se *Session) SetBudget(f *fuel.Meter, t *telemetry.Tracker) {
	se.sx.Fuel = f
	se.sx.Telem = t
}

// Mark opens an assertion frame and returns its restore point.
func (se *Session) Mark() int { return se.sx.Mark() }

// PopToMark retracts every atom asserted since the mark. The tableau
// stays warm: re-asserting a retracted atom later reuses its row.
func (se *Session) PopToMark(mark int) {
	se.sx.PopToMark(mark)
	if se.conflict && se.confMark >= mark {
		se.conflict = false
	}
}

// Assert adds one atom to the session. It returns false when the atom
// makes the asserted bounds immediately infeasible; the conflict
// clears when the current frame is popped. Disequalities are ignored
// (the session is a relaxation).
func (se *Session) Assert(a Atom) bool {
	if se.conflict {
		return false
	}
	if a.Rel == RelNe {
		return true
	}
	coeffs := map[int]*big.Rat{}
	for v, co := range a.Expr.Coeffs {
		iv, ok := se.vars[v]
		if !ok {
			iv = se.sx.NewVar()
			se.vars[v] = iv
		}
		coeffs[iv] = co
	}
	bound := new(big.Rat).Neg(a.Expr.Const)
	var op simplex.Op
	switch a.Rel {
	case RelLe:
		op = simplex.Le
	case RelLt:
		op = simplex.Lt
	case RelGe:
		op = simplex.Ge
	case RelGt:
		op = simplex.Gt
	case RelEq:
		op = simplex.Eq
	}
	if !se.sx.AssertAtom(coeffs, op, bound) {
		se.conflict = true
		se.confMark = se.sx.Mark()
		return false
	}
	return true
}

// NumVars reports how many named variables the warm tableau holds.
func (se *Session) NumVars() int { return len(se.vars) }

// Feasible runs the simplex check over the currently asserted bounds.
// False with a nil error is a proof that the asserted atoms — and
// therefore any conjunction containing them — are unsatisfiable. The
// error reports budget exhaustion only.
func (se *Session) Feasible() (bool, error) {
	if se.conflict {
		return false, nil
	}
	return se.sx.Check()
}
