package arith

import (
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/ast"
)

func TestStrengthenInts(t *testing.T) {
	c := &checker{intVars: map[string]bool{"x": true, "y": true}}
	mk := func(coeff int64, konst int64, rel Rel) Atom {
		e := NewLinExpr()
		e.AddVar("x", big.NewRat(coeff, 1))
		e.Const.SetInt64(konst)
		return Atom{Expr: e, Rel: rel}
	}
	// x − 3 > 0 strengthens to x − 4 ≥ 0.
	out := c.strengthenInts([]Atom{mk(1, -3, RelGt)})
	if out[0].Rel != RelGe || out[0].Expr.Const.Cmp(big.NewRat(-4, 1)) != 0 {
		t.Errorf("Gt strengthening: %+v", out[0])
	}
	// x + 1 < 0 strengthens to x + 2 ≤ 0.
	out = c.strengthenInts([]Atom{mk(1, 1, RelLt)})
	if out[0].Rel != RelLe || out[0].Expr.Const.Cmp(big.NewRat(2, 1)) != 0 {
		t.Errorf("Lt strengthening: %+v", out[0])
	}
	// Non-strict relations and real variables stay untouched.
	out = c.strengthenInts([]Atom{mk(1, 0, RelLe)})
	if out[0].Rel != RelLe {
		t.Error("Le modified")
	}
	e := NewLinExpr()
	e.AddVar("r", big.NewRat(1, 1)) // r is not an int var
	out = c.strengthenInts([]Atom{{Expr: e, Rel: RelLt}})
	if out[0].Rel != RelLt {
		t.Error("real atom strengthened")
	}
	// Fractional coefficients stay untouched.
	ef := NewLinExpr()
	ef.AddVar("x", big.NewRat(1, 2))
	out = c.strengthenInts([]Atom{{Expr: ef, Rel: RelGt}})
	if out[0].Rel != RelGt {
		t.Error("fractional-coefficient atom strengthened")
	}
}

func TestGcdCut(t *testing.T) {
	c := &checker{intVars: map[string]bool{"x": true, "y": true}}
	mk := func(cx, cy, konst int64) *LinExpr {
		e := NewLinExpr()
		e.AddVar("x", big.NewRat(cx, 1))
		e.AddVar("y", big.NewRat(cy, 1))
		e.Const.SetInt64(konst)
		return e
	}
	// 2x + 4y + 1 = 0: gcd 2 does not divide 1 → infeasible.
	if !c.gcdCutInfeasible(mk(2, 4, 1)) {
		t.Error("2x+4y+1=0 should be cut")
	}
	// 2x + 4y + 6 = 0: divisible → feasible by the cut.
	if c.gcdCutInfeasible(mk(2, 4, 6)) {
		t.Error("2x+4y+6=0 wrongly cut")
	}
	// Real variable present → no cut.
	e := mk(2, 0, 1)
	e.AddVar("r", big.NewRat(2, 1))
	if c.gcdCutInfeasible(e) {
		t.Error("mixed-sort equality wrongly cut")
	}
}

// Property: Check on a single-variable integer interval [lo, hi] is sat
// iff the interval contains an integer, with an integral witness.
func TestQuickIntegerIntervals(t *testing.T) {
	f := func(loNum, hiNum int16, denRaw uint8) bool {
		den := int64(denRaw%4) + 1
		lo := big.NewRat(int64(loNum), den)
		hi := big.NewRat(int64(hiNum), den)
		if lo.Cmp(hi) > 0 {
			lo, hi = hi, lo
		}
		eLo := NewLinExpr()
		eLo.AddVar("x", big.NewRat(1, 1))
		eLo.Const.Neg(lo) // x − lo ≥ 0
		eHi := NewLinExpr()
		eHi.AddVar("x", big.NewRat(1, 1))
		eHi.Const.Neg(hi) // x − hi ≤ 0
		st, m := Check(&Problem{
			Atoms:   []Atom{{Expr: eLo, Rel: RelGe}, {Expr: eHi, Rel: RelLe}},
			IntVars: map[string]bool{"x": true},
		})
		// Ground truth: does [lo, hi] contain an integer?
		floorHi := new(big.Int).Quo(hi.Num(), hi.Denom())
		if hi.Sign() < 0 && !hi.IsInt() {
			floorHi.Sub(floorHi, big.NewInt(1))
		}
		contains := new(big.Rat).SetInt(floorHi).Cmp(lo) >= 0
		if (st == Sat) != contains {
			return false
		}
		if st == Sat {
			x := m["x"]
			return x.IsInt() && x.Cmp(lo) >= 0 && x.Cmp(hi) <= 0
		}
		return st == Unsat
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAbstractorStability(t *testing.T) {
	abs := NewAbstractor("$t")
	x := ast.NewVar("x", ast.SortInt)
	y := ast.NewVar("y", ast.SortInt)
	prod := ast.Mul(x, y)
	v1 := abs.VarFor(prod)
	v2 := abs.VarFor(ast.Mul(x, y)) // structurally equal, fresh tree
	if v1 != v2 {
		t.Errorf("structurally equal terms got different abstraction vars: %s %s", v1, v2)
	}
	v3 := abs.VarFor(ast.Mul(y, x)) // different order → different term
	if v3 == v1 {
		t.Error("order-distinct products merged")
	}
	if abs.Len() != 2 {
		t.Errorf("Len = %d", abs.Len())
	}
	if got := abs.Terms()[v1]; !ast.Equal(got, prod) {
		t.Error("Terms mapping lost")
	}
}
