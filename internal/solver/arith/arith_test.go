package arith

import (
	"math/big"
	"testing"

	"repro/internal/ast"
	"repro/internal/smtlib"
)

func rat(n, d int64) *big.Rat { return big.NewRat(n, d) }

func linearizeStr(t *testing.T, src string, decls map[string]ast.Sort) *LinExpr {
	t.Helper()
	term, err := smtlib.ParseTerm(src, decls)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Linearize(term, nil)
	if err != nil {
		t.Fatalf("Linearize(%q): %v", src, err)
	}
	return e
}

func TestLinearizeBasics(t *testing.T) {
	decls := map[string]ast.Sort{"x": ast.SortInt, "y": ast.SortInt}
	e := linearizeStr(t, "(+ (* 2 x) y 3)", decls)
	if e.Const.Cmp(rat(3, 1)) != 0 || e.Coeffs["x"].Cmp(rat(2, 1)) != 0 || e.Coeffs["y"].Cmp(rat(1, 1)) != 0 {
		t.Errorf("got %v", e)
	}
	// (x + y) - y normalizes to x: the property that makes additive
	// fusion solvable.
	e = linearizeStr(t, "(- (+ x y) y)", decls)
	if len(e.Coeffs) != 1 || e.Coeffs["x"].Cmp(rat(1, 1)) != 0 || e.Const.Sign() != 0 {
		t.Errorf("cancellation failed: %v", e)
	}
	// Constant folding through multiplication and negation.
	e = linearizeStr(t, "(* 2 (- x) 3)", decls)
	if e.Coeffs["x"].Cmp(rat(-6, 1)) != 0 {
		t.Errorf("got %v", e)
	}
}

func TestLinearizeRealDivision(t *testing.T) {
	decls := map[string]ast.Sort{"a": ast.SortReal}
	e := linearizeStr(t, "(/ a 4.0)", decls)
	if e.Coeffs["a"].Cmp(rat(1, 4)) != 0 {
		t.Errorf("got %v", e)
	}
	// Division by zero constant is not linear (fixed interpretation 0).
	term, _ := smtlib.ParseTerm("(/ a 0.0)", decls)
	if _, err := Linearize(term, nil); err == nil {
		t.Error("division by zero constant should not linearize")
	}
}

func TestLinearizeNonlinearRejected(t *testing.T) {
	decls := map[string]ast.Sort{"x": ast.SortInt, "y": ast.SortInt}
	for _, src := range []string{"(* x y)", "(div x y)", "(mod x 2)", "(abs x)"} {
		term, err := smtlib.ParseTerm(src, decls)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Linearize(term, nil); err == nil {
			t.Errorf("%q should be rejected without an abstractor", src)
		}
	}
}

func TestLinearizeAbstraction(t *testing.T) {
	decls := map[string]ast.Sort{"x": ast.SortInt, "y": ast.SortInt}
	term, _ := smtlib.ParseTerm("(+ (* x y) (* x y) (div x y))", decls)
	abs := NewAbstractor("$n")
	e, err := Linearize(term, abs)
	if err != nil {
		t.Fatal(err)
	}
	// (* x y) occurs twice and must share one abstraction variable.
	if abs.Len() != 2 {
		t.Errorf("abstraction count = %d, want 2", abs.Len())
	}
	if len(e.Coeffs) != 2 {
		t.Errorf("expr = %v", e)
	}
	var prodVar string
	for v, c := range e.Coeffs {
		if c.Cmp(rat(2, 1)) == 0 {
			prodVar = v
		}
	}
	if prodVar == "" {
		t.Errorf("no coefficient-2 abstraction var in %v", e)
	}
	if s, ok := abs.Sort(prodVar); !ok || s != ast.SortInt {
		t.Error("abstraction sort lost")
	}
}

func atomsOf(t *testing.T, decls map[string]ast.Sort, srcs ...string) []Atom {
	t.Helper()
	var out []Atom
	for _, src := range srcs {
		term, err := smtlib.ParseTerm(src, decls)
		if err != nil {
			t.Fatal(err)
		}
		app := term.(*ast.App)
		rel, ok := relOfOp(app.Op)
		if !ok {
			t.Fatalf("not a relation: %s", src)
		}
		lhs, err := Linearize(app.Args[0], nil)
		if err != nil {
			t.Fatal(err)
		}
		rhs, err := Linearize(app.Args[1], nil)
		if err != nil {
			t.Fatal(err)
		}
		lhs.AddExpr(rhs, rat(-1, 1))
		out = append(out, Atom{Expr: lhs, Rel: rel})
	}
	return out
}

func TestCheckLRA(t *testing.T) {
	decls := map[string]ast.Sort{"a": ast.SortReal, "b": ast.SortReal}
	st, m := Check(&Problem{Atoms: atomsOf(t, decls, "(< a b)", "(> a 0.0)", "(< b 1.0)")})
	if st != Sat {
		t.Fatalf("status %v", st)
	}
	if !(m["a"].Sign() > 0 && m["a"].Cmp(m["b"]) < 0 && m["b"].Cmp(rat(1, 1)) < 0) {
		t.Errorf("bad model %v", m)
	}
	st, _ = Check(&Problem{Atoms: atomsOf(t, decls, "(< a b)", "(< b a)")})
	if st != Unsat {
		t.Fatalf("status %v", st)
	}
}

func TestCheckLIA(t *testing.T) {
	decls := map[string]ast.Sort{"x": ast.SortInt, "y": ast.SortInt}
	ints := map[string]bool{"x": true, "y": true}
	// 2x = 2y + 1 has no integer solutions.
	st, _ := Check(&Problem{
		Atoms:   atomsOf(t, decls, "(= (* 2 x) (+ (* 2 y) 1))"),
		IntVars: ints,
	})
	if st != Unsat {
		t.Fatalf("parity: %v", st)
	}
	// 0 < x < 2 forces x = 1 over the integers.
	st, m := Check(&Problem{
		Atoms:   atomsOf(t, decls, "(> x 0)", "(< x 2)"),
		IntVars: ints,
	})
	if st != Sat {
		t.Fatalf("status %v", st)
	}
	if !m["x"].IsInt() || m["x"].Num().Int64() != 1 {
		t.Errorf("x = %v, want 1", m["x"])
	}
	// 0 < x < 1 is unsat over integers, sat over reals.
	st, _ = Check(&Problem{
		Atoms:   atomsOf(t, decls, "(> x 0)", "(< x 1)"),
		IntVars: ints,
	})
	if st != Unsat {
		t.Fatalf("status %v", st)
	}
	st, _ = Check(&Problem{Atoms: atomsOf(t, decls, "(> x 0)", "(< x 1)")})
	if st != Sat {
		t.Fatalf("relaxation should be sat: %v", st)
	}
}

func TestCheckDisequalities(t *testing.T) {
	decls := map[string]ast.Sort{"x": ast.SortInt}
	ints := map[string]bool{"x": true}
	// 0 ≤ x ≤ 2 ∧ x ≠ 0 ∧ x ≠ 1 ∧ x ≠ 2 is unsat over integers.
	st, _ := Check(&Problem{
		Atoms: atomsOf(t, decls,
			"(>= x 0)", "(<= x 2)",
			"(distinct x 0)", "(distinct x 1)", "(distinct x 2)"),
		IntVars: ints,
	})
	if st != Unsat {
		t.Fatalf("status %v", st)
	}
	// Same without the x ≠ 1: sat with x = 1.
	st, m := Check(&Problem{
		Atoms: atomsOf(t, decls,
			"(>= x 0)", "(<= x 2)",
			"(distinct x 0)", "(distinct x 2)"),
		IntVars: ints,
	})
	if st != Sat || m["x"].Num().Int64() != 1 {
		t.Fatalf("status %v model %v", st, m)
	}
}

func TestCheckModelSatisfiesAtoms(t *testing.T) {
	decls := map[string]ast.Sort{"x": ast.SortInt, "y": ast.SortInt, "z": ast.SortInt}
	ints := map[string]bool{"x": true, "y": true, "z": true}
	atoms := atomsOf(t, decls,
		"(= z (+ x y))", "(> x 2)", "(< y (- 3))", "(distinct z 0)")
	st, m := Check(&Problem{Atoms: atoms, IntVars: ints})
	if st != Sat {
		t.Fatalf("status %v", st)
	}
	for _, a := range atoms {
		v, err := a.Expr.Eval(m)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Rel.HoldsOn(v) {
			t.Errorf("model violates atom %v (value %v)", a.Expr, v)
		}
	}
}

func TestCheckBudget(t *testing.T) {
	decls := map[string]ast.Sort{"x": ast.SortReal}
	p := &Problem{Atoms: atomsOf(t, decls, "(> x 0.0)"), NodeBudget: -1}
	// Budget forced negative: must give Unknown, not hang or lie.
	p.NodeBudget = 0 // 0 selects default; set explicit tiny budget below
	c := &checker{intVars: nil, budget: 0}
	st, _ := c.solve(p.Atoms)
	if st != Unknown {
		t.Fatalf("exhausted budget should be Unknown, got %v", st)
	}
}

func TestIntervalArithmetic(t *testing.T) {
	i12 := Interval{Lo: finite(rat(1, 1), false), Hi: finite(rat(2, 1), false)}
	i34 := Interval{Lo: finite(rat(3, 1), false), Hi: finite(rat(4, 1), false)}
	sum := i12.Add(i34)
	if sum.Lo.V.Cmp(rat(4, 1)) != 0 || sum.Hi.V.Cmp(rat(6, 1)) != 0 {
		t.Errorf("sum = %v", sum)
	}
	prod := i12.Mul(i34)
	if prod.Lo.V.Cmp(rat(3, 1)) != 0 || prod.Hi.V.Cmp(rat(8, 1)) != 0 {
		t.Errorf("prod = %v", prod)
	}
	negProd := i12.Neg().Mul(i34)
	if negProd.Lo.V.Cmp(rat(-8, 1)) != 0 || negProd.Hi.V.Cmp(rat(-3, 1)) != 0 {
		t.Errorf("negProd = %v", negProd)
	}
	q := i34.Div(i12)
	if q.Lo.V.Cmp(rat(3, 2)) != 0 || q.Hi.V.Cmp(rat(4, 1)) != 0 {
		t.Errorf("quot = %v", q)
	}
	// Division by an interval containing zero is the whole line.
	z := Interval{Lo: finite(rat(-1, 1), false), Hi: finite(rat(1, 1), false)}
	if w := i12.Div(z); !w.Lo.Inf || !w.Hi.Inf {
		t.Errorf("div by zero-containing: %v", w)
	}
	// Openness: (0, 2] × [1, 1] keeps the open lower bound.
	op := Interval{Lo: Endpoint{V: rat(0, 1), Open: true}, Hi: finite(rat(2, 1), false)}
	one := Point(rat(1, 1))
	res := op.Mul(one)
	if !res.Lo.Open || res.Lo.V.Sign() != 0 {
		t.Errorf("openness lost: %v", res)
	}
	// Abs.
	ab := Interval{Lo: finite(rat(-3, 1), false), Hi: finite(rat(2, 1), false)}.Abs()
	if ab.Lo.V.Sign() != 0 || ab.Hi.V.Cmp(rat(3, 1)) != 0 {
		t.Errorf("abs = %v", ab)
	}
}

func TestIntervalEmptyAndTightenInt(t *testing.T) {
	e := Interval{Lo: Endpoint{V: rat(1, 1), Open: true}, Hi: Endpoint{V: rat(1, 1)}}
	if !e.IsEmpty() {
		t.Error("(1,1] should be empty")
	}
	i := Interval{Lo: Endpoint{V: rat(1, 2)}, Hi: Endpoint{V: rat(5, 2)}}.TightenInt()
	if i.Lo.V.Cmp(rat(1, 1)) != 0 || i.Hi.V.Cmp(rat(2, 1)) != 0 {
		t.Errorf("tightened = %v", i)
	}
	j := Interval{Lo: Endpoint{V: rat(1, 1), Open: true}, Hi: Endpoint{V: rat(2, 1), Open: true}}.TightenInt()
	if j.Lo.V.Cmp(rat(2, 1)) != 0 || j.Hi.V.Cmp(rat(1, 1)) != 0 || !j.IsEmpty() {
		t.Errorf("open (1,2) over ints should tighten to empty, got %v", j)
	}
}

func refuteStrs(t *testing.T, decls map[string]ast.Sort, intVars map[string]bool, srcs ...string) bool {
	t.Helper()
	var lits []ast.Term
	for _, src := range srcs {
		term, err := smtlib.ParseTerm(src, decls)
		if err != nil {
			t.Fatal(err)
		}
		lits = append(lits, term)
	}
	return RefuteIntervals(lits, intVars, 8, nil, nil)
}

func TestRefuteIntervals(t *testing.T) {
	declsR := map[string]ast.Sort{
		"x": ast.SortReal, "y": ast.SortReal, "v": ast.SortReal, "w": ast.SortReal,
	}
	// x > 0 ∧ y > 0 ∧ x·y < 0 : refutable.
	if !refuteStrs(t, declsR, nil, "(> x 0.0)", "(> y 0.0)", "(< (* x y) 0.0)") {
		t.Error("product sign conflict not refuted")
	}
	// The paper's φ4 core: 0 < y < v ≤ w ∧ w/v < 0.
	if !refuteStrs(t, declsR, nil,
		"(> y 0.0)", "(< y v)", "(>= w v)", "(< (/ w v) 0.0)") {
		t.Error("φ4 (division sign conflict) not refuted")
	}
	// Satisfiable variant must NOT be refuted.
	if refuteStrs(t, declsR, nil, "(> x 0.0)", "(> y 0.0)", "(> (* x y) 0.0)") {
		t.Error("satisfiable conjunction wrongly refuted")
	}
	// Unsatisfiable only over integers.
	declsI := map[string]ast.Sort{"n": ast.SortInt}
	ints := map[string]bool{"n": true}
	if !refuteStrs(t, declsI, ints, "(> n 0)", "(< n 1)") {
		t.Error("integer gap not refuted")
	}
	if refuteStrs(t, declsI, nil, "(> n 0)", "(< n 1)") {
		t.Error("real-relaxed gap wrongly refuted")
	}
}

func TestRefuteEqualityChains(t *testing.T) {
	decls := map[string]ast.Sort{"a": ast.SortReal, "b": ast.SortReal}
	// a = 1 ∧ b = a·a ∧ b < 0.
	if !refuteStrs(t, decls, nil, "(= a 1.0)", "(= b (* a a))", "(< b 0.0)") {
		t.Error("squared-value conflict not refuted")
	}
	// a = 1 ∧ b = a·a ∧ b > 0 is satisfiable.
	if refuteStrs(t, decls, nil, "(= a 1.0)", "(= b (* a a))", "(> b 0.0)") {
		t.Error("satisfiable wrongly refuted")
	}
}

func TestEvalIntervalForeign(t *testing.T) {
	decls := map[string]ast.Sort{"s": ast.SortString}
	term, err := smtlib.ParseTerm("(str.len s)", decls)
	if err != nil {
		t.Fatal(err)
	}
	iv := EvalInterval(term, Env{}, nil)
	if iv.Lo.Inf || iv.Lo.V.Sign() != 0 || !iv.Hi.Inf {
		t.Errorf("str.len enclosure = %v", iv)
	}
	term, _ = smtlib.ParseTerm("(str.to_int s)", decls)
	iv = EvalInterval(term, Env{}, nil)
	if iv.Lo.Inf || iv.Lo.V.Cmp(rat(-1, 1)) != 0 {
		t.Errorf("str.to_int enclosure = %v", iv)
	}
}

func TestRelHelpers(t *testing.T) {
	if RelLe.Negate() != RelGt || RelEq.Negate() != RelNe || RelNe.Negate() != RelEq {
		t.Error("Negate broken")
	}
	if !RelLt.HoldsOn(rat(-1, 1)) || RelLt.HoldsOn(rat(0, 1)) {
		t.Error("HoldsOn broken")
	}
	if flipRel(RelLt) != RelGt || flipRel(RelEq) != RelEq {
		t.Error("flipRel broken")
	}
}
