// Package arith implements the arithmetic theory layer of the reference
// solver: normalization of terms into linear expressions (with
// abstraction of nonlinear subterms), a decision procedure for
// conjunctions of linear atoms over reals and integers (exact simplex
// plus branch-and-bound), and interval evaluation used to refute
// nonlinear conjunctions.
package arith

import (
	"fmt"
	"math/big"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ast"
)

// LinExpr is a linear expression: a rational constant plus a rational
// combination of named variables.
type LinExpr struct {
	Coeffs map[string]*big.Rat
	Const  *big.Rat
}

// NewLinExpr returns the zero expression.
func NewLinExpr() *LinExpr {
	return &LinExpr{Coeffs: map[string]*big.Rat{}, Const: new(big.Rat)}
}

// Clone returns a deep copy.
func (e *LinExpr) Clone() *LinExpr {
	out := &LinExpr{Coeffs: make(map[string]*big.Rat, len(e.Coeffs)), Const: new(big.Rat).Set(e.Const)}
	for v, c := range e.Coeffs {
		out.Coeffs[v] = new(big.Rat).Set(c)
	}
	return out
}

// Shared read-only rational constants for the hot ±1 scaling paths.
// Never mutated: AddVar copies coefficients before storing them.
var (
	ratOne      = big.NewRat(1, 1)
	ratMinusOne = big.NewRat(-1, 1)
)

func isIntRat(k *big.Rat, v int64) bool {
	return k.IsInt() && k.Num().IsInt64() && k.Num().Int64() == v
}

// AddExpr adds o scaled by k into e (in place). The ±1 cases — the vast
// majority of calls from linearization — skip the per-coefficient
// rational multiply.
func (e *LinExpr) AddExpr(o *LinExpr, k *big.Rat) {
	switch {
	case isIntRat(k, 1):
		e.Const.Add(e.Const, o.Const)
		for v, c := range o.Coeffs {
			e.AddVar(v, c)
		}
	case isIntRat(k, -1):
		e.Const.Sub(e.Const, o.Const)
		var tmp big.Rat
		for v, c := range o.Coeffs {
			e.AddVar(v, tmp.Neg(c))
		}
	default:
		var tmp big.Rat
		e.Const.Add(e.Const, tmp.Mul(o.Const, k))
		for v, c := range o.Coeffs {
			e.AddVar(v, tmp.Mul(c, k))
		}
	}
}

// AddVar adds c·v into e (in place).
func (e *LinExpr) AddVar(v string, c *big.Rat) {
	if prev, ok := e.Coeffs[v]; ok {
		prev.Add(prev, c)
		if prev.Sign() == 0 {
			delete(e.Coeffs, v)
		}
	} else if c.Sign() != 0 {
		e.Coeffs[v] = new(big.Rat).Set(c)
	}
}

// Scale multiplies e by k (in place).
func (e *LinExpr) Scale(k *big.Rat) {
	e.Const.Mul(e.Const, k)
	for v := range e.Coeffs {
		e.Coeffs[v].Mul(e.Coeffs[v], k)
		if e.Coeffs[v].Sign() == 0 {
			delete(e.Coeffs, v)
		}
	}
}

// IsConst reports whether e has no variables.
func (e *LinExpr) IsConst() bool { return len(e.Coeffs) == 0 }

// SingleVar returns (name, coeff, true) if e is c·v + const with one
// variable.
func (e *LinExpr) SingleVar() (string, *big.Rat, bool) {
	if len(e.Coeffs) != 1 {
		return "", nil, false
	}
	for v, c := range e.Coeffs {
		return v, c, true
	}
	return "", nil, false
}

// Eval evaluates e under a rational assignment; missing variables are
// an error.
func (e *LinExpr) Eval(vals map[string]*big.Rat) (*big.Rat, error) {
	out := new(big.Rat).Set(e.Const)
	for v, c := range e.Coeffs {
		val, ok := vals[v]
		if !ok {
			return nil, fmt.Errorf("arith: no value for %s", v)
		}
		out.Add(out, new(big.Rat).Mul(c, val))
	}
	return out, nil
}

// String renders the expression deterministically (sorted variables).
func (e *LinExpr) String() string {
	vars := make([]string, 0, len(e.Coeffs))
	for v := range e.Coeffs {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	var b strings.Builder
	for _, v := range vars {
		fmt.Fprintf(&b, "%s·%s + ", e.Coeffs[v].RatString(), v)
	}
	b.WriteString(e.Const.RatString())
	return b.String()
}

// Abstractor allocates fresh variables for nonlinear or foreign
// subterms during linearization, memoizing by structural term identity
// so equal subterms share an abstraction variable (a congruence-lite
// that is essential for fused formulas).
type Abstractor struct {
	prefix string
	byTerm map[ast.Term]string
	terms  map[string]ast.Term
	sorts  map[string]ast.Sort
	n      int
}

// NewAbstractor returns an abstractor generating names with the given
// prefix (the prefix must not collide with formula variables; the
// solver uses an illegal-character prefix).
func NewAbstractor(prefix string) *Abstractor {
	return &Abstractor{
		prefix: prefix,
		byTerm: map[ast.Term]string{},
		terms:  map[string]ast.Term{},
		sorts:  map[string]ast.Sort{},
	}
}

// VarFor returns the abstraction variable name for term t. Terms are
// interned, so structural memoization is a pointer-keyed lookup.
func (a *Abstractor) VarFor(t ast.Term) string {
	if v, ok := a.byTerm[t]; ok {
		return v
	}
	v := a.prefix + strconv.Itoa(a.n)
	a.n++
	a.byTerm[t] = v
	a.terms[v] = t
	a.sorts[v] = t.Sort()
	return v
}

// Terms returns the abstracted terms keyed by abstraction variable.
func (a *Abstractor) Terms() map[string]ast.Term { return a.terms }

// Sort returns the sort of an abstraction variable.
func (a *Abstractor) Sort(v string) (ast.Sort, bool) {
	s, ok := a.sorts[v]
	return s, ok
}

// Len reports how many abstraction variables were created.
func (a *Abstractor) Len() int { return a.n }

// Linearize converts an Int- or Real-sorted term into a linear
// expression. Nonlinear subterms (variable products, divisions by
// non-constants, div/mod/abs, to_int) and foreign terms (str.len,
// str.to_int, str.indexof, ite) are abstracted into fresh variables via
// abs; if abs is nil, such terms are an error.
func Linearize(t ast.Term, abs *Abstractor) (*LinExpr, error) {
	out := NewLinExpr()
	if err := LinearizeInto(out, t, ratOne, abs); err != nil {
		return nil, err
	}
	return out, nil
}

// LinearizeDiff linearizes l − r, the normal form of a binary
// arithmetic atom, into a single fresh expression.
func LinearizeDiff(l, r ast.Term, abs *Abstractor) (*LinExpr, error) {
	out := NewLinExpr()
	if err := LinearizeInto(out, l, ratOne, abs); err != nil {
		return nil, err
	}
	if err := LinearizeInto(out, r, ratMinusOne, abs); err != nil {
		return nil, err
	}
	return out, nil
}

// LinearizeInto accumulates k·t into out, so an entire sum tree shares
// one coefficient map instead of allocating an intermediate LinExpr per
// node. k is read-only and must not be mutated.
func LinearizeInto(out *LinExpr, t ast.Term, k *big.Rat, abs *Abstractor) error {
	switch n := t.(type) {
	case *ast.Var:
		out.AddVar(n.Name, k)
		return nil
	case *ast.IntLit:
		var tmp big.Rat
		tmp.SetInt(n.V)
		if !isIntRat(k, 1) {
			tmp.Mul(&tmp, k)
		}
		out.Const.Add(out.Const, &tmp)
		return nil
	case *ast.RealLit:
		if isIntRat(k, 1) {
			out.Const.Add(out.Const, n.V)
		} else {
			var tmp big.Rat
			out.Const.Add(out.Const, tmp.Mul(n.V, k))
		}
		return nil
	case *ast.App:
		return linearizeApp(out, n, k, abs)
	default:
		return fmt.Errorf("arith: cannot linearize %T", t)
	}
}

// negOf returns −k without mutating k, sharing the ±1 constants.
func negOf(k *big.Rat) *big.Rat {
	if isIntRat(k, 1) {
		return ratMinusOne
	}
	if isIntRat(k, -1) {
		return ratOne
	}
	return new(big.Rat).Neg(k)
}

func linearizeApp(out *LinExpr, n *ast.App, k *big.Rat, abs *Abstractor) error {
	switch n.Op {
	case ast.OpAdd:
		for _, a := range n.Args {
			if err := LinearizeInto(out, a, k, abs); err != nil {
				return err
			}
		}
		return nil
	case ast.OpSub:
		if err := LinearizeInto(out, n.Args[0], k, abs); err != nil {
			return err
		}
		nk := negOf(k)
		for _, a := range n.Args[1:] {
			if err := LinearizeInto(out, a, nk, abs); err != nil {
				return err
			}
		}
		return nil
	case ast.OpNeg:
		return LinearizeInto(out, n.Args[0], negOf(k), abs)
	case ast.OpMul:
		// Fold constants; a product with more than one non-constant
		// factor is nonlinear.
		prod := NewLinExpr()
		prod.Const.SetInt64(1)
		for _, a := range n.Args {
			e, err := Linearize(a, abs)
			if err != nil {
				return err
			}
			switch {
			case e.IsConst():
				prod.Scale(e.Const)
			case prod.IsConst():
				// e is freshly built and owned here: scale in place.
				c := new(big.Rat).Set(prod.Const)
				e.Scale(c)
				prod = e
			default:
				return abstractInto(out, n, k, abs)
			}
		}
		out.AddExpr(prod, k)
		return nil
	case ast.OpRealDiv:
		quot, err := Linearize(n.Args[0], abs)
		if err != nil {
			return err
		}
		for _, a := range n.Args[1:] {
			e, err := Linearize(a, abs)
			if err != nil {
				return err
			}
			if !e.IsConst() || e.Const.Sign() == 0 {
				// Division by a non-constant (or by the fixed zero
				// interpretation) is not linear.
				return abstractInto(out, n, k, abs)
			}
			var inv big.Rat
			quot.Scale(inv.Inv(e.Const))
		}
		out.AddExpr(quot, k)
		return nil
	case ast.OpToReal:
		return LinearizeInto(out, n.Args[0], k, abs)
	default:
		// div, mod, abs, to_int, ite, str.len, str.to_int,
		// str.indexof: foreign/nonlinear — abstract.
		return abstractInto(out, n, k, abs)
	}
}

func abstractInto(out *LinExpr, t ast.Term, k *big.Rat, abs *Abstractor) error {
	if abs == nil {
		return fmt.Errorf("arith: nonlinear or foreign term %s", ast.Print(t))
	}
	out.AddVar(abs.VarFor(t), k)
	return nil
}
