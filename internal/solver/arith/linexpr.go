// Package arith implements the arithmetic theory layer of the reference
// solver: normalization of terms into linear expressions (with
// abstraction of nonlinear subterms), a decision procedure for
// conjunctions of linear atoms over reals and integers (exact simplex
// plus branch-and-bound), and interval evaluation used to refute
// nonlinear conjunctions.
package arith

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"repro/internal/ast"
)

// LinExpr is a linear expression: a rational constant plus a rational
// combination of named variables.
type LinExpr struct {
	Coeffs map[string]*big.Rat
	Const  *big.Rat
}

// NewLinExpr returns the zero expression.
func NewLinExpr() *LinExpr {
	return &LinExpr{Coeffs: map[string]*big.Rat{}, Const: new(big.Rat)}
}

// Clone returns a deep copy.
func (e *LinExpr) Clone() *LinExpr {
	out := &LinExpr{Coeffs: make(map[string]*big.Rat, len(e.Coeffs)), Const: new(big.Rat).Set(e.Const)}
	for v, c := range e.Coeffs {
		out.Coeffs[v] = new(big.Rat).Set(c)
	}
	return out
}

// AddExpr adds o scaled by k into e (in place).
func (e *LinExpr) AddExpr(o *LinExpr, k *big.Rat) {
	e.Const.Add(e.Const, new(big.Rat).Mul(o.Const, k))
	for v, c := range o.Coeffs {
		e.AddVar(v, new(big.Rat).Mul(c, k))
	}
}

// AddVar adds c·v into e (in place).
func (e *LinExpr) AddVar(v string, c *big.Rat) {
	if prev, ok := e.Coeffs[v]; ok {
		prev.Add(prev, c)
		if prev.Sign() == 0 {
			delete(e.Coeffs, v)
		}
	} else if c.Sign() != 0 {
		e.Coeffs[v] = new(big.Rat).Set(c)
	}
}

// Scale multiplies e by k (in place).
func (e *LinExpr) Scale(k *big.Rat) {
	e.Const.Mul(e.Const, k)
	for v := range e.Coeffs {
		e.Coeffs[v].Mul(e.Coeffs[v], k)
		if e.Coeffs[v].Sign() == 0 {
			delete(e.Coeffs, v)
		}
	}
}

// IsConst reports whether e has no variables.
func (e *LinExpr) IsConst() bool { return len(e.Coeffs) == 0 }

// SingleVar returns (name, coeff, true) if e is c·v + const with one
// variable.
func (e *LinExpr) SingleVar() (string, *big.Rat, bool) {
	if len(e.Coeffs) != 1 {
		return "", nil, false
	}
	for v, c := range e.Coeffs {
		return v, c, true
	}
	return "", nil, false
}

// Eval evaluates e under a rational assignment; missing variables are
// an error.
func (e *LinExpr) Eval(vals map[string]*big.Rat) (*big.Rat, error) {
	out := new(big.Rat).Set(e.Const)
	for v, c := range e.Coeffs {
		val, ok := vals[v]
		if !ok {
			return nil, fmt.Errorf("arith: no value for %s", v)
		}
		out.Add(out, new(big.Rat).Mul(c, val))
	}
	return out, nil
}

// String renders the expression deterministically (sorted variables).
func (e *LinExpr) String() string {
	vars := make([]string, 0, len(e.Coeffs))
	for v := range e.Coeffs {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	var b strings.Builder
	for _, v := range vars {
		fmt.Fprintf(&b, "%s·%s + ", e.Coeffs[v].RatString(), v)
	}
	b.WriteString(e.Const.RatString())
	return b.String()
}

// Abstractor allocates fresh variables for nonlinear or foreign
// subterms during linearization, memoizing by structural term identity
// so equal subterms share an abstraction variable (a congruence-lite
// that is essential for fused formulas).
type Abstractor struct {
	prefix string
	byKey  map[string]string
	terms  map[string]ast.Term
	sorts  map[string]ast.Sort
	n      int
}

// NewAbstractor returns an abstractor generating names with the given
// prefix (the prefix must not collide with formula variables; the
// solver uses an illegal-character prefix).
func NewAbstractor(prefix string) *Abstractor {
	return &Abstractor{
		prefix: prefix,
		byKey:  map[string]string{},
		terms:  map[string]ast.Term{},
		sorts:  map[string]ast.Sort{},
	}
}

// VarFor returns the abstraction variable name for term t.
func (a *Abstractor) VarFor(t ast.Term) string {
	key := ast.Print(t)
	if v, ok := a.byKey[key]; ok {
		return v
	}
	v := fmt.Sprintf("%s%d", a.prefix, a.n)
	a.n++
	a.byKey[key] = v
	a.terms[v] = t
	a.sorts[v] = t.Sort()
	return v
}

// Terms returns the abstracted terms keyed by abstraction variable.
func (a *Abstractor) Terms() map[string]ast.Term { return a.terms }

// Sort returns the sort of an abstraction variable.
func (a *Abstractor) Sort(v string) (ast.Sort, bool) {
	s, ok := a.sorts[v]
	return s, ok
}

// Len reports how many abstraction variables were created.
func (a *Abstractor) Len() int { return a.n }

// Linearize converts an Int- or Real-sorted term into a linear
// expression. Nonlinear subterms (variable products, divisions by
// non-constants, div/mod/abs, to_int) and foreign terms (str.len,
// str.to_int, str.indexof, ite) are abstracted into fresh variables via
// abs; if abs is nil, such terms are an error.
func Linearize(t ast.Term, abs *Abstractor) (*LinExpr, error) {
	switch n := t.(type) {
	case *ast.Var:
		e := NewLinExpr()
		e.AddVar(n.Name, big.NewRat(1, 1))
		return e, nil
	case *ast.IntLit:
		e := NewLinExpr()
		e.Const.SetInt(n.V)
		return e, nil
	case *ast.RealLit:
		e := NewLinExpr()
		e.Const.Set(n.V)
		return e, nil
	case *ast.App:
		return linearizeApp(n, abs)
	default:
		return nil, fmt.Errorf("arith: cannot linearize %T", t)
	}
}

func linearizeApp(n *ast.App, abs *Abstractor) (*LinExpr, error) {
	one := big.NewRat(1, 1)
	switch n.Op {
	case ast.OpAdd:
		out := NewLinExpr()
		for _, a := range n.Args {
			e, err := Linearize(a, abs)
			if err != nil {
				return nil, err
			}
			out.AddExpr(e, one)
		}
		return out, nil
	case ast.OpSub:
		out, err := Linearize(n.Args[0], abs)
		if err != nil {
			return nil, err
		}
		mone := big.NewRat(-1, 1)
		for _, a := range n.Args[1:] {
			e, err := Linearize(a, abs)
			if err != nil {
				return nil, err
			}
			out.AddExpr(e, mone)
		}
		return out, nil
	case ast.OpNeg:
		e, err := Linearize(n.Args[0], abs)
		if err != nil {
			return nil, err
		}
		e.Scale(big.NewRat(-1, 1))
		return e, nil
	case ast.OpMul:
		// Fold constants; a product with more than one non-constant
		// factor is nonlinear.
		out := NewLinExpr()
		out.Const.SetInt64(1)
		for _, a := range n.Args {
			e, err := Linearize(a, abs)
			if err != nil {
				return nil, err
			}
			switch {
			case e.IsConst():
				out.Scale(e.Const)
			case out.IsConst():
				c := new(big.Rat).Set(out.Const)
				out = e.Clone()
				out.Scale(c)
			default:
				return abstract(n, abs)
			}
		}
		return out, nil
	case ast.OpRealDiv:
		out, err := Linearize(n.Args[0], abs)
		if err != nil {
			return nil, err
		}
		for _, a := range n.Args[1:] {
			e, err := Linearize(a, abs)
			if err != nil {
				return nil, err
			}
			if !e.IsConst() || e.Const.Sign() == 0 {
				// Division by a non-constant (or by the fixed zero
				// interpretation) is not linear.
				return abstract(n, abs)
			}
			out.Scale(new(big.Rat).Inv(e.Const))
		}
		return out, nil
	case ast.OpToReal:
		return Linearize(n.Args[0], abs)
	default:
		// div, mod, abs, to_int, ite, str.len, str.to_int,
		// str.indexof: foreign/nonlinear — abstract.
		return abstract(n, abs)
	}
}

func abstract(t ast.Term, abs *Abstractor) (*LinExpr, error) {
	if abs == nil {
		return nil, fmt.Errorf("arith: nonlinear or foreign term %s", ast.Print(t))
	}
	e := NewLinExpr()
	e.AddVar(abs.VarFor(t), big.NewRat(1, 1))
	return e, nil
}
