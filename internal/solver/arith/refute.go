package arith

import (
	"math/big"

	"repro/internal/ast"
	"repro/internal/fuel"
	"repro/internal/telemetry"
)

// cIntervalSteps counts interval-refinement literal visits — one
// increment per fuel unit spent in the propagation rounds.
var cIntervalSteps = telemetry.NewCounter("yy_arith_interval_steps_total", "interval-refinement literal visits")

// Env maps variable names to interval enclosures.
type Env map[string]Interval

// EvalInterval computes an interval enclosure of an Int- or Real-sorted
// term under env. Variables absent from env are unbounded. The
// enclosure is sound: every value the term can take under assignments
// consistent with env lies in the result.
func EvalInterval(t ast.Term, env Env, intVars map[string]bool) Interval {
	switch n := t.(type) {
	case *ast.Var:
		if iv, ok := env[n.Name]; ok {
			return iv
		}
		return Whole()
	case *ast.IntLit:
		return Point(new(big.Rat).SetInt(n.V))
	case *ast.RealLit:
		return Point(n.V)
	case *ast.App:
		return evalIntervalApp(n, env, intVars)
	default:
		return Whole()
	}
}

func evalIntervalApp(n *ast.App, env Env, intVars map[string]bool) Interval {
	sub := func(i int) Interval { return EvalInterval(n.Args[i], env, intVars) }
	switch n.Op {
	case ast.OpAdd:
		out := sub(0)
		for i := 1; i < len(n.Args); i++ {
			out = out.Add(sub(i))
		}
		return out
	case ast.OpSub:
		out := sub(0)
		for i := 1; i < len(n.Args); i++ {
			out = out.Sub(sub(i))
		}
		return out
	case ast.OpNeg:
		return sub(0).Neg()
	case ast.OpMul:
		out := sub(0)
		for i := 1; i < len(n.Args); i++ {
			out = out.Mul(sub(i))
		}
		return out
	case ast.OpRealDiv:
		out := sub(0)
		for i := 1; i < len(n.Args); i++ {
			out = out.Div(sub(i))
		}
		return out
	case ast.OpAbs:
		return sub(0).Abs()
	case ast.OpToReal:
		return sub(0)
	case ast.OpToInt:
		// floor: shift the enclosure down by at most 1.
		in := sub(0)
		out := in
		if !out.Lo.Inf {
			out.Lo = finite(new(big.Rat).Sub(out.Lo.V, big.NewRat(1, 1)), false)
		}
		if !out.Hi.Inf {
			out.Hi = finite(out.Hi.V, false)
		}
		return out
	case ast.OpIte:
		return sub(1).Hull(sub(2))
	case ast.OpIntDiv:
		// Conservative: Euclidean quotient of bounded operands with a
		// nonzero divisor lies within the real quotient hull ±1.
		a, b := sub(0), sub(1)
		if b.ContainsZero() {
			// x div 0 = 0 under the fixed interpretation: hull with 0.
			return Whole()
		}
		q := a.Div(b)
		one := Point(big.NewRat(1, 1))
		return q.Add(Interval{Lo: one.Neg().Lo, Hi: one.Hi})
	case ast.OpMod:
		// 0 ≤ mod < |divisor| when the divisor is nonzero; mod x 0 = x.
		b := sub(1)
		nonneg := Interval{Lo: finite(new(big.Rat), false), Hi: Endpoint{Inf: true}}
		if b.ContainsZero() {
			return nonneg.Hull(sub(0))
		}
		out := nonneg
		mag := b.Abs()
		if !mag.Hi.Inf {
			out.Hi = Endpoint{V: mag.Hi.V, Open: true}
		}
		return out
	case ast.OpStrLen:
		return Interval{Lo: finite(new(big.Rat), false), Hi: Endpoint{Inf: true}}
	case ast.OpStrToInt:
		return Interval{Lo: finite(big.NewRat(-1, 1), false), Hi: Endpoint{Inf: true}}
	case ast.OpStrIndexOf:
		return Interval{Lo: finite(big.NewRat(-1, 1), false), Hi: Endpoint{Inf: true}}
	default:
		return Whole()
	}
}

// RefuteIntervals attempts to prove a conjunction of arithmetic
// literals unsatisfiable by bound propagation and interval evaluation.
// Each literal must be a comparison (possibly under a single not, which
// callers are expected to have eliminated by flipping the relation) or
// an equality over Int/Real terms. It returns true only if the
// conjunction is definitely unsatisfiable. One fuel unit is spent per
// literal per round; exhaustion abandons the refinement (no proof).
// Each visit is recorded into tr (nil records nothing).
func RefuteIntervals(lits []ast.Term, intVars map[string]bool, rounds int, m *fuel.Meter, tr *telemetry.Tracker) bool {
	env := Env{}
	for round := 0; round < rounds; round++ {
		changed := false
		for _, lit := range lits {
			if !m.Spend(1) {
				return false
			}
			tr.Inc(cIntervalSteps)
			app, ok := lit.(*ast.App)
			if !ok {
				continue
			}
			rel, ok := relOfOp(app.Op)
			if !ok || len(app.Args) != 2 {
				continue
			}
			if !app.Args[0].Sort().IsArith() {
				continue
			}
			a, b := app.Args[0], app.Args[1]
			ia := EvalInterval(a, env, intVars)
			ib := EvalInterval(b, env, intVars)
			if !feasible(rel, ia.Sub(ib)) {
				return true
			}
			// Tighten variable endpoints.
			if v, ok := a.(*ast.Var); ok {
				if tightenVar(env, v.Name, rel, ib, intVars) {
					changed = true
				}
				if iv, ok := env[v.Name]; ok && iv.IsEmpty() {
					return true
				}
			}
			if v, ok := b.(*ast.Var); ok {
				if tightenVar(env, v.Name, flipRel(rel), ia, intVars) {
					changed = true
				}
				if iv, ok := env[v.Name]; ok && iv.IsEmpty() {
					return true
				}
			}
		}
		if !changed {
			break
		}
	}
	return false
}

func relOfOp(op ast.Op) (Rel, bool) {
	switch op {
	case ast.OpLe:
		return RelLe, true
	case ast.OpLt:
		return RelLt, true
	case ast.OpGe:
		return RelGe, true
	case ast.OpGt:
		return RelGt, true
	case ast.OpEq:
		return RelEq, true
	case ast.OpDistinct:
		return RelNe, true
	}
	return 0, false
}

// flipRel mirrors the relation for swapped operands: a ⋈ b ≡ b ⋈' a.
func flipRel(r Rel) Rel {
	switch r {
	case RelLe:
		return RelGe
	case RelLt:
		return RelGt
	case RelGe:
		return RelLe
	case RelGt:
		return RelLt
	default:
		return r
	}
}

// feasible reports whether d ⋈ 0 can hold for some d in the interval.
func feasible(rel Rel, d Interval) bool {
	if d.IsEmpty() {
		return false
	}
	switch rel {
	case RelLe: // need some d ≤ 0
		if d.Lo.Inf {
			return true
		}
		c := d.Lo.V.Sign()
		return c < 0 || (c == 0 && !d.Lo.Open)
	case RelLt: // need some d < 0
		if d.Lo.Inf {
			return true
		}
		return d.Lo.V.Sign() < 0
	case RelGe:
		if d.Hi.Inf {
			return true
		}
		c := d.Hi.V.Sign()
		return c > 0 || (c == 0 && !d.Hi.Open)
	case RelGt:
		if d.Hi.Inf {
			return true
		}
		return d.Hi.V.Sign() > 0
	case RelEq:
		return d.ContainsZero()
	case RelNe:
		// Infeasible only if d is exactly {0}.
		point := !d.Lo.Inf && !d.Hi.Inf &&
			d.Lo.V.Sign() == 0 && d.Hi.V.Sign() == 0 && !d.Lo.Open && !d.Hi.Open
		return !point
	}
	return true
}

// tightenVar intersects env[name] with the constraint name ⋈ other.
// It reports whether the interval changed.
func tightenVar(env Env, name string, rel Rel, other Interval, intVars map[string]bool) bool {
	cur, ok := env[name]
	if !ok {
		cur = Whole()
	}
	var constraint Interval
	switch rel {
	case RelLe:
		constraint = Interval{Lo: Endpoint{Inf: true}, Hi: other.Hi}
	case RelLt:
		hi := other.Hi
		if !hi.Inf {
			hi.Open = true
		}
		constraint = Interval{Lo: Endpoint{Inf: true}, Hi: hi}
	case RelGe:
		constraint = Interval{Lo: other.Lo, Hi: Endpoint{Inf: true}}
	case RelGt:
		lo := other.Lo
		if !lo.Inf {
			lo.Open = true
		}
		constraint = Interval{Lo: lo, Hi: Endpoint{Inf: true}}
	case RelEq:
		constraint = other
	default:
		return false // ≠ does not tighten an interval
	}
	next := cur.Intersect(constraint)
	if intVars[name] {
		next = next.TightenInt()
	}
	if intervalEq(cur, next) {
		return false
	}
	env[name] = next
	return true
}

func intervalEq(a, b Interval) bool {
	return endpointEq(a.Lo, b.Lo) && endpointEq(a.Hi, b.Hi)
}

func endpointEq(a, b Endpoint) bool {
	if a.Inf != b.Inf {
		return false
	}
	if a.Inf {
		return true
	}
	return a.Open == b.Open && a.V.Cmp(b.V) == 0
}
