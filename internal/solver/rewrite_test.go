package solver

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/smtlib"
)

// rw rewrites a parsed term with the given solver configuration.
func rw(t *testing.T, s *Solver, src string, decls map[string]ast.Sort) string {
	t.Helper()
	term, err := smtlib.ParseTerm(src, decls)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return ast.Print(s.rewrite(term))
}

var rwDecls = map[string]ast.Sort{
	"x": ast.SortInt, "y": ast.SortInt,
	"a": ast.SortReal, "b": ast.SortReal,
	"s": ast.SortString, "u": ast.SortString,
	"p": ast.SortBool,
}

func TestRewriteCorrectRules(t *testing.T) {
	ref := NewReference()
	cases := []struct{ in, want string }{
		// Boolean structure.
		{"(and p true)", "p"},
		{"(and p false)", "false"},
		{"(or p false p)", "(or p p)"},
		{"(not (not p))", "p"},
		{"(= p true)", "p"},
		{"(= false p)", "(not p)"},
		{"(ite true (+ x 1) x)", "(+ x 1)"},
		{"(ite p x x)", "x"},
		{"(ite (not p) x y)", "(ite p y x)"},
		// Arithmetic.
		{"(+ x 0)", "x"},
		{"(* x 1)", "x"},
		{"(* x 0)", "0"},
		{"(+ (+ x 1) 2)", "(+ x 1 2)"},
		{"(div x 1)", "x"},
		{"(mod x 1)", "0"},
		{"(div (- 7) (- 2))", "4"}, // Euclidean
		{"(abs (- 5))", "5"},
		{"(<= x x)", "true"},
		{"(< x x)", "false"},
		{"(= x x)", "true"},
		{"(/ a 1.0)", "a"},
		{"(< (* a a) 0.0)", "false"},
		{"(>= (* a a) 0.0)", "true"},
		{"(* (/ a 2.0) 2.0)", "a"},
		// Strings.
		{`(str.++ s "")`, "s"},
		{`(str.++ "ab" "cd")`, `"abcd"`},
		{`(str.++ (str.++ s "a") (str.++ "b" u))`, `(str.++ s "ab" u)`},
		{`(str.len (str.++ s u))`, "(+ (str.len s) (str.len u))"},
		{`(str.replace s "" u)`, "(str.++ u s)"},
		{`(str.replace s u u)`, "s"},
		{`(str.prefixof "" s)`, "true"},
		{`(str.suffixof "" s)`, "true"},
		{`(str.contains s s)`, "true"},
		{`(str.contains s "")`, "true"},
		{`(str.to_int "")`, "(- 1)"},
		{`(str.to_int "42")`, "42"},
		{`(str.at "abc" 3)`, `""`},
		{`(str.substr "abcdef" 1 (- 2))`, `""`},
		// n-ary chains.
		{"(= x y x)", "(and (= x y) (= y x))"},
		{"(distinct x y 0)", "(and (not (= x y)) (not (= x 0)) (not (= y 0)))"},
	}
	for _, c := range cases {
		if got := rw(t, ref, c.in, rwDecls); got != c.want {
			t.Errorf("rewrite(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestRewriteDefectiveVariants(t *testing.T) {
	cases := []struct {
		defect     Defect
		in         string
		refWant    string
		defectWant string
	}{
		{DefStrToIntEmpty, `(str.to_int "")`, "(- 1)", "0"},
		{DefStrReplaceEmptyPat, `(str.replace s "" u)`, "(str.++ u s)", "s"},
		{DefStrAtOutOfRange, `(str.at "abc" 3)`, `""`, `"c"`},
		{DefStrSubstrNegLen, `(str.substr "abcdef" 1 (- 2))`, `""`, `"bcdef"`},
		{DefStrSuffixEmpty, `(str.suffixof "" s)`, "true", "false"},
		{DefStrContainsSelf, "(str.contains s s)", "true", "false"},
		{DefIntDivNegRound, "(div (- 7) (- 2))", "4", "3"},
		{DefModZero, "(mod 5 0)", "5", "0"},
		{DefAbsNegFold, "(abs (- 5))", "5", "(- 5)"},
		{DefIndexOfEmptyNeedle, `(str.indexof "abc" "" 2)`, "2", "0"},
		{DefGeZeroStrengthen, "(>= (/ a b) 0.0)", "(>= (/ a b) 0.0)", "(> (/ a b) 0.0)"},
	}
	for _, c := range cases {
		ref := NewReference()
		if got := rw(t, ref, c.in, rwDecls); got != c.refWant {
			t.Errorf("reference rewrite(%s) = %s, want %s", c.in, got, c.refWant)
		}
		buggy := New(Config{Defects: map[Defect]bool{c.defect: true}})
		if got := rw(t, buggy, c.in, rwDecls); got != c.defectWant {
			t.Errorf("%s rewrite(%s) = %s, want %s", c.defect, c.in, got, c.defectWant)
		}
		// And the defect must be recorded as fired.
		if len(buggy.fired) == 0 {
			t.Errorf("%s did not record firing", c.defect)
		}
	}
}

func TestRewriteDivCancelGuard(t *testing.T) {
	ref := NewReference()
	// Non-literal divisor: the sound rewriter must NOT cancel.
	if got := rw(t, ref, "(* (/ a b) b)", rwDecls); got != "(* (/ a b) b)" {
		t.Errorf("unguarded cancellation in reference: %s", got)
	}
	buggy := New(Config{Defects: map[Defect]bool{DefRealDivCancel: true}})
	if got := rw(t, buggy, "(* (/ a b) b)", rwDecls); got != "a" {
		t.Errorf("defective cancellation missing: %s", got)
	}
}

func TestRewriteMulSignDefect(t *testing.T) {
	// (< (* a b) 0.0) with distinct a, b must survive in the reference
	// and fold to false under the defect.
	ref := NewReference()
	if got := rw(t, ref, "(< (* a b) 0.0)", rwDecls); got != "(< (* a b) 0.0)" {
		t.Errorf("reference folded a general product: %s", got)
	}
	buggy := New(Config{Defects: map[Defect]bool{DefMulSignFold: true}})
	if got := rw(t, buggy, "(< (* a b) 0.0)", rwDecls); got != "false" {
		t.Errorf("defect did not fold: %s", got)
	}
}

func TestRewriteDistinctPairDropDefect(t *testing.T) {
	buggy := New(Config{Defects: map[Defect]bool{DefDistinctPairDrop: true}})
	got := rw(t, buggy, "(distinct x y 0)", rwDecls)
	want := "(and (not (= x y)) (not (= x 0)))"
	if got != want {
		t.Errorf("got %s want %s", got, want)
	}
}

func TestRewriteConcatAssocDropDefect(t *testing.T) {
	buggy := New(Config{Defects: map[Defect]bool{DefConcatAssocDrop: true}})
	// Two nested concats: the defect drops the last operand of the
	// second nest during flattening.
	got := rw(t, buggy, `(str.++ (str.++ s "a") (str.++ u "b"))`, rwDecls)
	if got != `(str.++ s "a" u)` {
		t.Errorf("got %s", got)
	}
	// Reference keeps everything.
	ref := NewReference()
	if got := rw(t, ref, `(str.++ (str.++ s "a") (str.++ u "b"))`, rwDecls); got != `(str.++ s "a" u "b")` {
		t.Errorf("reference got %s", got)
	}
}

func TestRewriteStrLenConcatDropDefect(t *testing.T) {
	buggy := New(Config{Defects: map[Defect]bool{DefStrLenConcatDrop: true}})
	got := rw(t, buggy, `(str.len (str.++ s u "tail"))`, rwDecls)
	if got != "(+ (str.len s) (str.len u))" {
		t.Errorf("got %s", got)
	}
}

func TestRewriteGroundFoldEverything(t *testing.T) {
	ref := NewReference()
	cases := []struct{ in, want string }{
		{"(+ 1 2 3)", "6"},
		{"(< 1.0 2.0)", "true"},
		{`(str.replace "foobar" "foo" "baz")`, `"bazbar"`},
		{`(str.in_re "aaaa" (re.* (str.to_re "aa")))`, "true"},
		{`(str.in_re "aaa" (re.* (str.to_re "aa")))`, "false"},
		{"(ite (< 1 2) (+ 1 1) 0)", "2"},
		{"(to_real 3)", "3.0"},
		{"(to_int 2.5)", "2"},
	}
	for _, c := range cases {
		if got := rw(t, ref, c.in, rwDecls); got != c.want {
			t.Errorf("fold(%s) = %s want %s", c.in, got, c.want)
		}
	}
}

func TestCrashDefectsPanicOnTrigger(t *testing.T) {
	cases := []struct {
		defect Defect
		src    string
	}{
		{DefCrashSelfDivision, "(assert (> (/ (+ a 1.0) (+ a 1.0)) 1.0))"},
		{DefCrashRangeBounds, `(assert (str.in_re s (re.range "ab" "c")))`},
		{DefCrashBigSubstr, "(assert (= s (str.substr u 4294967296 2)))"},
	}
	for _, c := range cases {
		src := `
(declare-fun a () Real)
(declare-fun s () String)
(declare-fun u () String)
` + c.src + "\n(check-sat)"
		sc, err := smtlib.ParseScript(src)
		if err != nil {
			t.Fatalf("%s: parse: %v", c.defect, err)
		}
		// Reference must not panic.
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("reference panicked on %s: %v", c.defect, r)
				}
			}()
			NewReference().SolveScript(sc)
		}()
		// Defective build panics with a CrashError carrying the site.
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("%s did not panic", c.defect)
					return
				}
				ce, ok := r.(*CrashError)
				if !ok || ce.Site != c.defect {
					t.Errorf("%s: bad panic value %v", c.defect, r)
				}
			}()
			New(Config{Defects: map[Defect]bool{c.defect: true}}).SolveScript(sc)
		}()
	}
}

func TestPerfDefectsGoUnknown(t *testing.T) {
	// Regex blowup: deep regex term.
	src := `
(declare-fun s () String)
(assert (str.in_re s (re.++ (re.* (re.union (str.to_re "a") (str.to_re "bb"))) (re.opt (str.to_re "c")))))
(check-sat)
`
	sc, err := smtlib.ParseScript(src)
	if err != nil {
		t.Fatal(err)
	}
	buggy := New(Config{Defects: map[Defect]bool{DefPerfRegexBlowup: true}})
	out := buggy.SolveScript(sc)
	// Under the unified fuel deadline a performance defect drains the
	// meter, so its signature is a deterministic timeout.
	if out.Result != ResTimeout {
		t.Errorf("perf defect: got %v, want timeout", out.Result)
	}
	fired := false
	for _, d := range out.DefectsFired {
		if d == DefPerfRegexBlowup {
			fired = true
		}
	}
	if !fired {
		t.Error("perf defect did not fire")
	}
	// Reference decides it.
	if ref := NewReference().SolveScript(sc); ref.Result != ResSat {
		t.Errorf("reference: %v", ref.Result)
	}
}
