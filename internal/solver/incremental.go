package solver

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/fuel"
	"repro/internal/solver/arith"
	"repro/internal/solver/sat"
	"repro/internal/telemetry"
)

// This file implements the live incremental mode: a push/pop assertion
// stack on Solver whose Check calls share one CDCL instance, one warm
// simplex tableau, and the solver's warm caches across frames.
//
// The architecture (DESIGN §4.11):
//
//   - Frames hold preprocessed asserts. Per-frame preprocessing runs
//     the rewriter (memoized), quantifier normalization, and ite
//     lifting — but NOT definitional inlining: inlining substitutes
//     across assert boundaries, and a definition from a popped frame
//     baked into a retained frame's asserts would be unsound.
//   - The boolean abstraction is encoded frame by frame into a single
//     sat.Solver. Push opens a sat frame; Pop retracts the frame's
//     clauses and variables, keeps learned clauses whose dependency
//     tags show they rest only on retained frames, and rolls back the
//     atom table and fresh-name counter to the frame boundary.
//   - Unit arithmetic atoms are additionally asserted into a warm
//     arith.Session (one simplex tableau for the whole session).
//     Infeasibility of that unit layer is a sound unsat fast path;
//     its Mark/PopToMark follows the frame stack, so popped atoms are
//     retracted while shared tableau rows stay warm.
//   - Each Check runs the same DPLL(T) loop as Solve under a fresh
//     fuel meter. Theory-refuted boolean models are blocked with
//     sat.AddLemma (theory-valid: retained across Pops down to the
//     deepest frame mentioned). Certification failures and theory
//     unknowns are blocked inside a scratch sat frame that Check pops
//     before returning, so heuristic blockings never outlive the call.
//
// Verdicts agree with the cold path: Check and a monolithic Solve over
// the live asserts run the same preprocessing pipeline modulo
// inlining, the same theory procedures, and the same certification,
// and every cross-Check artifact (learned lemmas, warm tableau, warm
// caches) is either logically implied by the live asserts or
// observationally invisible.

// cLiveFallbacks counts Checks that could not be answered by the
// incremental path and restarted through the monolithic pipeline.
var cLiveFallbacks = telemetry.NewCounter("yy_live_fallback_total", "incremental Checks answered by the monolithic fallback")

// incFrame is one assertion frame of a live session.
type incFrame struct {
	orig []ast.Term // asserts as given (completeness-fallback input)
	pre  []ast.Term // preprocessed asserts of this frame
	// vars are the free variables of the frame's ORIGINAL asserts —
	// preprocessing can rewrite a variable away entirely, but models
	// must still bind it (mirroring the cold path's origVars).
	vars map[string]ast.Sort
	// Rollback marks recorded when the frame opened:
	fresh  int // freshCounter (skolem/ite-lift names)
	nAtoms int // length of the abstraction's atom table
	sxMark int // arith session undo mark
}

// incState is the live-session state hung off a Solver.
type incState struct {
	ab     *abstraction
	frames []incFrame
	sess   *arith.Session
	broken error // encoding failed: the session is poisoned
}

// incremental lazily opens the live session with its base frame.
func (s *Solver) incremental() *incState {
	if s.inc == nil {
		ab := &abstraction{sat: sat.New(), atomOf: map[ast.Term]int{}}
		ab.atomTerm = append(ab.atomTerm, nil)
		ab.trueVar = ab.newAux()
		ab.sat.AddClause(sat.Lit(ab.trueVar))
		ab.sat.MaxConflicts = 200000
		ab.sat.Telem = s.cfg.Telemetry
		s.inc = &incState{ab: ab, sess: arith.NewSession()}
		s.inc.frames = []incFrame{{fresh: s.freshCounter, nAtoms: len(ab.atomTerm), sxMark: s.inc.sess.Mark()}}
	}
	return s.inc
}

// Push opens a new assertion frame.
func (s *Solver) Push() {
	st := s.incremental()
	st.ab.sat.Push()
	st.frames = append(st.frames, incFrame{
		fresh:  s.freshCounter,
		nAtoms: len(st.ab.atomTerm),
		sxMark: st.sess.Mark(),
	})
}

// Pop retracts the top assertion frame: its clauses, atoms, simplex
// bounds, and fresh-name allocations. Learned clauses and tableau rows
// that rest only on retained frames stay warm. Panics when only the
// base frame is open.
func (s *Solver) Pop() {
	st := s.incremental()
	if len(st.frames) <= 1 {
		panic("solver: Pop without matching Push")
	}
	f := st.frames[len(st.frames)-1]
	st.frames = st.frames[:len(st.frames)-1]
	st.ab.sat.Pop()
	// Roll the atom table back to the frame boundary.
	for _, t := range st.ab.atomTerm[f.nAtoms:] {
		if t != nil {
			delete(st.ab.atomOf, t)
		}
	}
	st.ab.atomTerm = st.ab.atomTerm[:f.nAtoms]
	st.sess.PopToMark(f.sxMark)
	s.freshCounter = f.fresh
	// A poisoned session heals when the offending frame pops; the error
	// is conservative (re-set on the next failing Assert).
	st.broken = nil
}

// Assert adds asserts to the current frame, preprocessing and encoding
// them immediately so Check starts from a ready boolean skeleton.
func (s *Solver) Assert(asserts ...ast.Term) error {
	st := s.incremental()
	if st.broken != nil {
		return st.broken
	}
	for _, a := range asserts {
		pre, err := s.preprocessLive(a)
		if err != nil {
			st.broken = err
			return err
		}
		top := &st.frames[len(st.frames)-1]
		if top.vars == nil {
			top.vars = map[string]ast.Sort{}
		}
		for _, v := range ast.FreeVars(a) {
			top.vars[v.Name] = v.VSort
		}
		top.orig = append(top.orig, a)
		for _, p := range pre {
			top.pre = append(top.pre, p)
			l, err := st.ab.encode(p, s)
			if err != nil {
				st.broken = err
				return err
			}
			st.ab.sat.AddClause(l)
			// Unit arithmetic atoms feed the warm tableau. An immediate
			// conflict is recorded by the session itself (and cleared
			// when this frame pops); Check consults Feasible.
			s.assertUnitAtom(st, p)
		}
	}
	return nil
}

// preprocessLive preprocesses one assert for the live session: the
// full cold pipeline minus definitional inlining (see the file
// comment). Ite lifting may return guard asserts alongside the
// rewritten term.
func (s *Solver) preprocessLive(a ast.Term) ([]ast.Term, error) {
	t := s.rewriteCached(a)
	if ast.HasQuantifier(t) {
		t = s.rewriteCached(s.normalizeQuant(t))
		if ast.HasQuantifier(t) {
			s.hit(pQuantGiveUp)
			return nil, fmt.Errorf("quantifier not eliminated: %s", ast.Print(t))
		}
	}
	lifted := s.liftIte([]ast.Term{t})
	out := lifted[:0]
	for _, l := range lifted {
		r := s.rewriteCached(l)
		if bl, ok := r.(*ast.BoolLit); ok && bl.V {
			continue
		}
		out = append(out, r)
	}
	return out, nil
}

// assertUnitAtom feeds a top-level arithmetic atom into the session's
// warm tableau. Non-atoms, string atoms, and unconvertible shapes are
// skipped — the tableau is a relaxation, not a decision procedure.
func (s *Solver) assertUnitAtom(st *incState, p ast.Term) {
	if !isAtom(p) || hasStringSubterm(p) {
		return
	}
	abs := arith.NewAbstractor("\x00nl!")
	expr, rel, ok := s.litToAtom(p, abs)
	if !ok || abs.Len() > 0 {
		// Nonlinear abstraction variables are fresh per Abstractor, so
		// their bounds would not be shared across asserts; skip rather
		// than pollute the tableau with unconstrained variables.
		return
	}
	st.sess.Assert(arith.Atom{Expr: expr, Rel: rel})
}

func hasStringSubterm(t ast.Term) bool {
	has := false
	ast.Walk(t, func(n ast.Term) bool {
		if n.Sort() == ast.SortString || n.Sort() == ast.SortRegLan {
			has = true
		}
		return !has
	})
	return has
}

// liveAsserts collects the preprocessed asserts of every open frame.
func (st *incState) liveAsserts() []ast.Term {
	var out []ast.Term
	for _, f := range st.frames {
		out = append(out, f.pre...)
	}
	return out
}

// Check decides the conjunction of all live asserts, reusing the
// session's CDCL instance, learned lemmas, warm tableau, and warm
// caches. Each call runs under a fresh fuel meter, exactly like Solve.
func (s *Solver) Check() Outcome {
	st := s.incremental()
	s.fired = map[Defect]bool{}
	s.meter = fuel.NewMeter(s.cfg.Limits.Fuel)
	s.cfg.Telemetry.Inc(cSolves)
	defer func() { s.cfg.Telemetry.Add(cFuelSpent, s.meter.Spent()) }()
	out := s.checkLive(st)
	if out.Result == ResUnknown && st.broken == nil && !s.meter.Exhausted() {
		// Completeness fallback: the incremental path answered unknown
		// with fuel to spare — typically because the inline-free live
		// preprocessing left shapes the certifier keeps rejecting.
		// Restart as a monolithic solve over the original asserts (the
		// full cold pipeline, including inlining), under the same meter.
		// The live skeleton, learned lemmas, and warm tableau are
		// untouched; only the answer comes from the cold pipeline. This
		// is the standard incremental-solver escape hatch, and it is what
		// makes live verdicts match cold verdicts even where the DPLL(T)
		// loop's enumeration order diverges.
		s.cfg.Telemetry.Inc(cLiveFallbacks)
		saved := s.freshCounter
		s.freshCounter = 0
		var orig []ast.Term
		for _, f := range st.frames {
			orig = append(orig, f.orig...)
		}
		out = s.solve(orig)
		s.freshCounter = saved
	}
	out.FuelSpent = s.meter.Spent()
	if out.Result == ResUnknown && s.meter.Exhausted() {
		out.Result = ResTimeout
		out.Reason = "fuel exhausted"
	}
	if out.Result == ResSat {
		s.corruptModel(out.Model)
	}
	for d := range s.fired {
		out.DefectsFired = append(out.DefectsFired, d)
	}
	sortDefects(out.DefectsFired)
	return out
}

func (s *Solver) checkLive(st *incState) Outcome {
	if st.broken != nil {
		return Outcome{Result: ResUnknown, Reason: st.broken.Error()}
	}
	pre := st.liveAsserts()

	// Original variables from every frame, plus variables preprocessing
	// introduced into the live asserts (skolem/ite-lift names).
	origVars := map[string]ast.Sort{}
	for _, f := range st.frames {
		for name, srt := range f.vars {
			origVars[name] = srt
		}
	}
	for _, a := range pre {
		for _, v := range ast.FreeVars(a) {
			origVars[v.Name] = v.VSort
		}
	}

	// Trivial outcomes, mirroring solve.
	allTrue := true
	for _, a := range pre {
		if bl, ok := a.(*ast.BoolLit); ok {
			if !bl.V {
				return Outcome{Result: ResUnsat}
			}
			continue
		}
		allTrue = false
	}
	if allTrue {
		return Outcome{Result: ResSat, Model: s.assembleModel(eval.Model{}, nil, nil, origVars)}
	}

	// Warm-tableau fast path: the unit arithmetic atoms alone are
	// infeasible, so the whole conjunction is unsat. The session is a
	// relaxation, so only the negative answer is usable.
	st.sess.SetBudget(s.meter, s.cfg.Telemetry)
	if feasible, err := st.sess.Feasible(); err == nil && !feasible {
		return Outcome{Result: ResUnsat}
	}

	ab := st.ab
	ab.sat.Fuel = s.meter

	// Scratch frame for heuristic blocking clauses: certification
	// failures and theory unknowns block a specific boolean model for
	// THIS Check only — retaining them could flip a later Check's
	// verdict. Theory-valid lemmas are added with AddLemma and survive.
	ab.sat.Push()
	defer ab.sat.Pop()

	sawUnknown := false
	unknownStreak := 0
	totalUnknowns := 0
	for iter := 0; iter < s.cfg.Limits.MaxBoolModels; iter++ {
		if s.meter.Exhausted() {
			return Outcome{Result: ResUnknown, Reason: "fuel exhausted"}
		}
		switch ab.sat.Solve() {
		case sat.Unsat:
			if sawUnknown {
				return Outcome{Result: ResUnknown, Reason: "incomplete theory reasoning"}
			}
			return Outcome{Result: ResUnsat}
		case sat.Unknown:
			return Outcome{Result: ResUnknown, Reason: "sat core budget exhausted"}
		}
		s.hit(pSolveSatCore)

		var lits []ast.Term
		boolModel := eval.Model{}
		var blocking []sat.Lit
		for v := 1; v < len(ab.atomTerm); v++ {
			atom := ab.atomTerm[v]
			if atom == nil {
				continue
			}
			val := ab.sat.Value(v)
			if val {
				blocking = append(blocking, -sat.Lit(v))
			} else {
				blocking = append(blocking, sat.Lit(v))
			}
			if bv, ok := atom.(*ast.Var); ok {
				boolModel[bv.Name] = eval.BoolV(val)
				continue
			}
			if val {
				lits = append(lits, atom)
			} else {
				lits = append(lits, ast.Not(atom))
			}
		}

		st2, thModel := s.theoryCheck(lits)
		theoryValid := false
		switch st2 {
		case arith.Sat:
			model := s.assembleModel(boolModel, thModel, nil, origVars)
			if s.certify(pre, model, boolModel, thModel) {
				return Outcome{Result: ResSat, Model: model}
			}
			s.hit(pSolveCertifyFail)
			sawUnknown = true
			unknownStreak++
			totalUnknowns++
		case arith.Unsat:
			// Theory-valid lemma: retained across Pops.
			theoryValid = true
			unknownStreak = 0
		case arith.Unknown:
			sawUnknown = true
			unknownStreak++
			totalUnknowns++
		}
		if unknownStreak >= 8 || totalUnknowns >= 20 {
			return Outcome{Result: ResUnknown, Reason: "persistent theory incompleteness"}
		}
		s.hit(pSolveBlocked)
		if len(blocking) == 0 {
			model := s.assembleModel(boolModel, thModel, nil, origVars)
			if s.certify(pre, model, boolModel, thModel) {
				return Outcome{Result: ResSat, Model: model}
			}
			return Outcome{Result: ResUnknown, Reason: "certification failed"}
		}
		added := false
		if theoryValid {
			added = ab.sat.AddLemma(blocking...)
		} else {
			added = ab.sat.AddClause(blocking...)
		}
		if !added {
			if sawUnknown {
				return Outcome{Result: ResUnknown, Reason: "incomplete theory reasoning"}
			}
			return Outcome{Result: ResUnsat}
		}
	}
	return Outcome{Result: ResUnknown, Reason: "boolean model budget exhausted"}
}

// ReuseStats reports the session's warm-reuse counters for -stats
// output: cache totals live in the telemetry tracker; this adds the
// structural numbers only the session knows.
type ReuseStats struct {
	Frames       int // open assertion frames (including base)
	LiveAsserts  int // preprocessed asserts across all frames
	LearnedLive  int // learned clauses currently attached
	AtomsLive    int // interned theory atoms
	StringsWarm  bool
	TableauAtoms int // simplex variables in the warm tableau
}

// Reuse returns the live session's structural statistics. Zero values
// when no session is open.
func (s *Solver) Reuse() ReuseStats {
	if s.inc == nil {
		return ReuseStats{}
	}
	return ReuseStats{
		Frames:       len(s.inc.frames),
		LiveAsserts:  len(s.inc.liveAsserts()),
		LearnedLive:  s.inc.ab.sat.NumLearned(),
		AtomsLive:    len(s.inc.ab.atomOf),
		StringsWarm:  s.warm != nil,
		TableauAtoms: s.inc.sess.NumVars(),
	}
}
