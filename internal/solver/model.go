package solver

import (
	"math/big"
	"sort"

	"repro/internal/eval"
)

// corruptModel applies the model-corruption defect family (the md-
// sites) to a certified sat model, in place. It runs after certify has
// accepted the model, so the corruption models bugs in the final
// model-output stage of a solver: the verdict is right, the certificate
// was right, and only an external consumer evaluating the reported
// model against the input formula can observe the damage.
//
// Each site picks its victim variable by sorted name, so the corrupted
// model is a pure function of the clean model — campaigns stay
// bit-identical across thread counts.
func (s *Solver) corruptModel(m eval.Model) {
	if len(m) == 0 {
		return
	}
	stale := s.cfg.Has(DefModelStaleSimplex)
	trunc := s.cfg.Has(DefModelStrLenTruncate)
	floor := s.cfg.Has(DefModelRealFloor)
	if !stale && !trunc && !floor {
		return
	}
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	if stale {
		for _, k := range names {
			v, ok := m[k].(eval.IntV)
			if !ok {
				continue
			}
			if s.defect(DefModelStaleSimplex) {
				// A row value from an earlier pivot state leaks through:
				// far outside any generated bound, so the damage is
				// observable whenever the variable is constrained at all.
				m[k] = eval.IntV{V: new(big.Int).Add(v.V, big.NewInt(424242))}
			}
			break
		}
	}
	if trunc {
		for _, k := range names {
			v, ok := m[k].(eval.StrV)
			if !ok || len(v) < 2 {
				continue
			}
			if s.defect(DefModelStrLenTruncate) {
				// The witness is cut at the length-abstraction boundary:
				// only its first character survives into the model.
				m[k] = v[:1]
			}
			break
		}
	}
	if floor {
		for _, k := range names {
			v, ok := m[k].(eval.RealV)
			if !ok || v.V.IsInt() {
				continue
			}
			if s.defect(DefModelRealFloor) {
				m[k] = eval.RealV{V: new(big.Rat).SetInt(eval.RealFloor(v).V)}
			}
			break
		}
	}
}
