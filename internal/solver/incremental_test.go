package solver

import (
	"reflect"
	"testing"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/gen"
)

// corpusAsserts generates the differential corpus: for every logic and
// seed, one sat and one unsat script's assert list.
func corpusAsserts(t *testing.T, seeds int) [][]ast.Term {
	t.Helper()
	var out [][]ast.Term
	for _, logic := range gen.AllLogics {
		for seed := int64(0); seed < int64(seeds); seed++ {
			for _, status := range []core.Status{core.StatusSat, core.StatusUnsat} {
				g, err := gen.New(logic, seed)
				if err != nil {
					t.Fatalf("gen.New(%s): %v", logic, err)
				}
				out = append(out, g.Generate(status).Script.Asserts())
			}
		}
	}
	return out
}

// TestWarmMatchesCold is the tier-1 differential: a solver reusing its
// warm caches (rewrite memo, strings eval memo) across many scripts
// must produce outcomes bit-identical to a cold solver per script —
// same verdict, same model, same fired defects. This is the
// transparency claim the campaign fast path rests on.
func TestWarmMatchesCold(t *testing.T) {
	warm := NewReference() // never reset: caches accumulate across scripts
	for i, asserts := range corpusAsserts(t, 3) {
		cold := NewReference().Solve(asserts)
		got := warm.Solve(asserts)
		if got.Result != cold.Result || got.Reason != cold.Reason {
			t.Fatalf("script %d: warm verdict %v (%q), cold %v (%q)",
				i, got.Result, got.Reason, cold.Result, cold.Reason)
		}
		if !reflect.DeepEqual(got.Model, cold.Model) {
			t.Fatalf("script %d: warm model %v, cold model %v", i, got.Model, cold.Model)
		}
		if !reflect.DeepEqual(got.DefectsFired, cold.DefectsFired) {
			t.Fatalf("script %d: warm defects %v, cold %v", i, got.DefectsFired, cold.DefectsFired)
		}
	}
}

// checkLiveModel verifies a live-mode sat model against the original
// (unpreprocessed) asserts.
func checkLiveModel(t *testing.T, i int, asserts []ast.Term, m eval.Model) {
	t.Helper()
	for _, a := range asserts {
		if ast.HasQuantifier(a) {
			continue // quantified conjuncts hold by generator template
		}
		ok, err := eval.Bool(a, m)
		if err != nil || !ok {
			t.Fatalf("script %d: live model fails assert %s (ok=%v err=%v)", i, ast.Print(a), ok, err)
		}
	}
}

// TestIncrementalMatchesCold is the tier-2 differential: a live
// Push/Assert/Check/Pop session over the generator corpus must agree
// with a cold Solve on every verdict, and every sat model it returns
// must satisfy the original asserts. Scripts run through one shared
// session so learned-lemma retention, the warm tableau, and atom-table
// rollback are all exercised across script boundaries.
func TestIncrementalMatchesCold(t *testing.T) {
	live := NewReference()
	for i, asserts := range corpusAsserts(t, 3) {
		cold := NewReference().Solve(asserts)

		live.Push()
		err := live.Assert(asserts...)
		var got Outcome
		if err != nil {
			got = Outcome{Result: ResUnknown, Reason: err.Error()}
		} else {
			got = live.Check()
		}
		if got.Result != cold.Result {
			t.Fatalf("script %d: live verdict %v (%q), cold %v (%q)",
				i, got.Result, got.Reason, cold.Result, cold.Reason)
		}
		if got.Result == ResSat {
			checkLiveModel(t, i, asserts, got.Model)
		}
		live.Pop()
	}
}

// TestIncrementalFrameSplit drives nested frames: the assert list is
// split across two frames, checked, the inner frame popped, and the
// prefix re-checked — each verdict compared against a cold solve of
// exactly the live asserts. This is the retraction soundness test at
// the solver level.
func TestIncrementalFrameSplit(t *testing.T) {
	live := NewReference()
	for i, asserts := range corpusAsserts(t, 2) {
		if len(asserts) < 2 {
			continue
		}
		half := len(asserts) / 2
		prefix, rest := asserts[:half], asserts[half:]
		coldFull := NewReference().Solve(asserts)
		coldPrefix := NewReference().Solve(prefix)

		live.Push()
		if err := live.Assert(prefix...); err != nil {
			live.Pop()
			continue // quantifier give-up: covered by the flat test
		}
		live.Push()
		if err := live.Assert(rest...); err != nil {
			live.Pop()
			live.Pop()
			continue
		}
		if got := live.Check(); got.Result != coldFull.Result {
			t.Fatalf("script %d (both frames): live %v (%q), cold %v (%q)",
				i, got.Result, got.Reason, coldFull.Result, coldFull.Reason)
		}
		live.Pop()
		got := live.Check()
		if got.Result != coldPrefix.Result {
			t.Fatalf("script %d (prefix after pop): live %v (%q), cold %v (%q)",
				i, got.Result, got.Reason, coldPrefix.Result, coldPrefix.Reason)
		}
		if got.Result == ResSat {
			checkLiveModel(t, i, prefix, got.Model)
		}
		live.Pop()
	}
}

// TestIncrementalPopPanics pins the underflow contract.
func TestIncrementalPopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on base frame did not panic")
		}
	}()
	NewReference().Pop()
}

// TestIncrementalReuseStats sanity-checks the -stats surface.
func TestIncrementalReuseStats(t *testing.T) {
	s := NewReference()
	if got := s.Reuse(); got != (ReuseStats{}) {
		t.Fatalf("Reuse before session = %+v, want zero", got)
	}
	s.Push()
	x := ast.NewVar("x", ast.SortInt)
	if err := s.Assert(ast.Le(x, ast.Int(3)), ast.Ge(x, ast.Int(1))); err != nil {
		t.Fatalf("Assert: %v", err)
	}
	if out := s.Check(); out.Result != ResSat {
		t.Fatalf("Check = %v, want sat", out.Result)
	}
	st := s.Reuse()
	if st.Frames != 2 || st.LiveAsserts != 2 || st.AtomsLive == 0 || st.TableauAtoms == 0 {
		t.Fatalf("ReuseStats after assert = %+v", st)
	}
	s.Pop()
	if got := s.Reuse().LiveAsserts; got != 0 {
		t.Fatalf("LiveAsserts after pop = %d, want 0", got)
	}
}
