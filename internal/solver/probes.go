package solver

import "repro/internal/coverage"

// Coverage probes over the solver pipeline. Function-class probes mark
// procedure entries, branch-class probes mark rule firings and
// decisions, line-class probes mark straight-line milestones — the
// probe universe that internal/coverage reports against for the
// paper's RQ3/RQ4 experiments.
var (
	// Front end.
	pRewriteEntry    = coverage.NewProbe("rewrite.entry", coverage.Function)
	pRwNot           = coverage.NewProbe("rewrite.not", coverage.Branch)
	pRwBoolConn      = coverage.NewProbe("rewrite.bool-connective", coverage.Branch)
	pRwEq            = coverage.NewProbe("rewrite.eq", coverage.Branch)
	pRwEqChain       = coverage.NewProbe("rewrite.eq-chain", coverage.Branch)
	pRwDistinct      = coverage.NewProbe("rewrite.distinct", coverage.Branch)
	pRwIte           = coverage.NewProbe("rewrite.ite", coverage.Branch)
	pRwAddMul        = coverage.NewProbe("rewrite.add-mul", coverage.Branch)
	pRwDivCancel     = coverage.NewProbe("rewrite.div-cancel", coverage.Branch)
	pRwRealDiv       = coverage.NewProbe("rewrite.real-div", coverage.Branch)
	pRwIntDiv        = coverage.NewProbe("rewrite.int-div", coverage.Branch)
	pRwIntDivNeg     = coverage.NewProbe("rewrite.int-div-negative", coverage.Branch)
	pRwAbs           = coverage.NewProbe("rewrite.abs", coverage.Branch)
	pRwCompare       = coverage.NewProbe("rewrite.compare", coverage.Branch)
	pRwSquareSign    = coverage.NewProbe("rewrite.square-sign", coverage.Branch)
	pRwConcat        = coverage.NewProbe("rewrite.str-concat", coverage.Branch)
	pRwStrLen        = coverage.NewProbe("rewrite.str-len", coverage.Branch)
	pRwStrAt         = coverage.NewProbe("rewrite.str-at", coverage.Branch)
	pRwSubstr        = coverage.NewProbe("rewrite.str-substr", coverage.Branch)
	pRwReplace       = coverage.NewProbe("rewrite.str-replace", coverage.Branch)
	pRwReplaceEmpty  = coverage.NewProbe("rewrite.str-replace-empty", coverage.Branch)
	pRwReplaceConcat = coverage.NewProbe("rewrite.str-replace-concat", coverage.Branch)
	pRwSubstrConcat  = coverage.NewProbe("rewrite.str-substr-concat", coverage.Branch)
	pRwAffix         = coverage.NewProbe("rewrite.str-affix", coverage.Branch)
	pRwContains      = coverage.NewProbe("rewrite.str-contains", coverage.Branch)
	pRwIndexOf       = coverage.NewProbe("rewrite.str-indexof", coverage.Branch)
	pRwStrToInt      = coverage.NewProbe("rewrite.str-to-int", coverage.Branch)
	pRwStrToIntEmpty = coverage.NewProbe("rewrite.str-to-int-empty", coverage.Branch)
	pRwFold          = coverage.NewProbe("rewrite.ground-fold", coverage.Line)

	// Preprocessing.
	pInlineEntry   = coverage.NewProbe("preprocess.inline.entry", coverage.Function)
	pInlineApplied = coverage.NewProbe("preprocess.inline.applied", coverage.Line)
	pIteLiftEntry  = coverage.NewProbe("preprocess.ite-lift.entry", coverage.Function)
	pIteLifted     = coverage.NewProbe("preprocess.ite-lift.lifted", coverage.Line)
	pQuantNegPush  = coverage.NewProbe("preprocess.quant.neg-push", coverage.Branch)
	pQuantSkolem   = coverage.NewProbe("preprocess.quant.skolemize", coverage.Line)
	pQuantGiveUp   = coverage.NewProbe("preprocess.quant.give-up", coverage.Branch)

	// Abstraction and DPLL(T) core.
	pAbstractEntry    = coverage.NewProbe("abstract.entry", coverage.Function)
	pAbstractAtom     = coverage.NewProbe("abstract.atom", coverage.Line)
	pAbstractTseitin  = coverage.NewProbe("abstract.tseitin-aux", coverage.Line)
	pSolveEntry       = coverage.NewProbe("solve.entry", coverage.Function)
	pSolveSatCore     = coverage.NewProbe("solve.sat-core-model", coverage.Line)
	pSolveBlocked     = coverage.NewProbe("solve.blocking-clause", coverage.Line)
	pSolveCertify     = coverage.NewProbe("solve.certify", coverage.Function)
	pSolveCertifyFail = coverage.NewProbe("solve.certify-fail", coverage.Branch)

	// Theory dispatch.
	pTheoryArithLinear   = coverage.NewProbe("theory.arith.linear", coverage.Function)
	pTheoryArithNonlin   = coverage.NewProbe("theory.arith.nonlinear", coverage.Branch)
	pTheoryArithRefute   = coverage.NewProbe("theory.arith.interval-refute", coverage.Branch)
	pTheoryArithSample   = coverage.NewProbe("theory.arith.model-check", coverage.Line)
	pTheoryStrings       = coverage.NewProbe("theory.strings.check", coverage.Function)
	pTheoryStringsLen    = coverage.NewProbe("theory.strings.length-abstraction", coverage.Line)
	pTheoryStringsSearch = coverage.NewProbe("theory.strings.search", coverage.Line)
	pTheoryPerfRegex     = coverage.NewProbe("theory.strings.regex-deep", coverage.Branch)
	pTheoryPerfBnB       = coverage.NewProbe("theory.arith.bnb-wide", coverage.Branch)

	// Theory and solve outcomes (one branch probe per verdict).
	pArithSat     = coverage.NewProbe("theory.arith.result-sat", coverage.Branch)
	pArithUnsat   = coverage.NewProbe("theory.arith.result-unsat", coverage.Branch)
	pArithUnknown = coverage.NewProbe("theory.arith.result-unknown", coverage.Branch)
	pStrSat       = coverage.NewProbe("theory.strings.result-sat", coverage.Branch)
	pStrUnsat     = coverage.NewProbe("theory.strings.result-unsat", coverage.Branch)
	pStrUnknown   = coverage.NewProbe("theory.strings.result-unknown", coverage.Branch)
	pSolveSat     = coverage.NewProbe("solve.result-sat", coverage.Line)
	pSolveUnsat   = coverage.NewProbe("solve.result-unsat", coverage.Line)
	pSolveUnknown = coverage.NewProbe("solve.result-unknown", coverage.Line)
	pArithGrid    = coverage.NewProbe("theory.arith.sample-grid", coverage.Line)
	pArithForeign = coverage.NewProbe("theory.arith.unconverted-literal", coverage.Branch)

	// Rule sites added for the fusion-shape defect family.
	pRwEqDivCancel   = coverage.NewProbe("rewrite.eq-div-cancel", coverage.Branch)
	pRwReplaceVar    = coverage.NewProbe("rewrite.str-replace-var", coverage.Branch)
	pRwDivMulThrough = coverage.NewProbe("rewrite.div-mul-through", coverage.Branch)
)
