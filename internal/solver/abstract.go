package solver

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/solver/sat"
)

// abstraction is the boolean skeleton of a formula: atoms (theory
// predicates and boolean variables) mapped to SAT variables, with
// Tseitin auxiliaries for the connectives.
type abstraction struct {
	sat *sat.Solver
	// atomOf keys atoms by interned term identity: structurally equal
	// atoms share one node, so no print-key is needed.
	atomOf   map[ast.Term]int
	atomTerm []ast.Term // SAT var (1-based) → atom term; nil for aux vars
	trueVar  int
}

func (s *Solver) abstract(asserts []ast.Term) (*abstraction, error) {
	s.hit(pAbstractEntry)
	ab := &abstraction{
		sat:    sat.New(),
		atomOf: map[ast.Term]int{},
	}
	ab.atomTerm = append(ab.atomTerm, nil) // index 0 unused
	ab.trueVar = ab.newAux()
	ab.sat.AddClause(sat.Lit(ab.trueVar))
	for _, a := range asserts {
		l, err := ab.encode(a, s)
		if err != nil {
			return nil, err
		}
		ab.sat.AddClause(l)
	}
	return ab, nil
}

func (ab *abstraction) newAux() int {
	v := ab.sat.NewVar()
	ab.atomTerm = append(ab.atomTerm, nil)
	return v
}

func (ab *abstraction) atomLit(t ast.Term, s *Solver) sat.Lit {
	if v, ok := ab.atomOf[t]; ok {
		return sat.Lit(v)
	}
	s.hit(pAbstractAtom)
	v := ab.sat.NewVar()
	ab.atomTerm = append(ab.atomTerm, t)
	ab.atomOf[t] = v
	return sat.Lit(v)
}

// isAtom reports whether t is a theory atom or boolean variable (a
// boolean leaf for the abstraction).
func isAtom(t ast.Term) bool {
	switch n := t.(type) {
	case *ast.Var:
		return n.VSort == ast.SortBool
	case *ast.App:
		switch n.Op {
		case ast.OpLe, ast.OpLt, ast.OpGe, ast.OpGt, ast.OpIsInt,
			ast.OpStrInRe, ast.OpStrPrefixOf, ast.OpStrSuffixOf,
			ast.OpStrContains, ast.OpStrLtOp, ast.OpStrLeOp:
			return true
		case ast.OpEq, ast.OpDistinct:
			return n.Args[0].Sort() != ast.SortBool
		}
	}
	return false
}

// encode returns a literal equivalent to t, adding Tseitin clauses.
func (ab *abstraction) encode(t ast.Term, s *Solver) (sat.Lit, error) {
	switch n := t.(type) {
	case *ast.BoolLit:
		if n.V {
			return sat.Lit(ab.trueVar), nil
		}
		return -sat.Lit(ab.trueVar), nil
	case *ast.Var:
		if n.VSort != ast.SortBool {
			return 0, fmt.Errorf("abstract: non-boolean variable %s in boolean position", n.Name)
		}
		return ab.atomLit(n, s), nil
	case *ast.Quant:
		return 0, fmt.Errorf("abstract: residual quantifier")
	case *ast.App:
		if isAtom(n) {
			return ab.atomLit(n, s), nil
		}
		return ab.encodeApp(n, s)
	default:
		return 0, fmt.Errorf("abstract: unexpected term %T", t)
	}
}

func (ab *abstraction) encodeApp(n *ast.App, s *Solver) (sat.Lit, error) {
	switch n.Op {
	case ast.OpNot:
		l, err := ab.encode(n.Args[0], s)
		if err != nil {
			return 0, err
		}
		return -l, nil
	case ast.OpAnd, ast.OpOr:
		lits := make([]sat.Lit, len(n.Args))
		for i, a := range n.Args {
			l, err := ab.encode(a, s)
			if err != nil {
				return 0, err
			}
			lits[i] = l
		}
		s.hit(pAbstractTseitin)
		aux := sat.Lit(ab.newAux())
		if n.Op == ast.OpAnd {
			// aux ↔ ∧ lits
			all := make([]sat.Lit, 0, len(lits)+1)
			for _, l := range lits {
				ab.sat.AddClause(-aux, l)
				all = append(all, -l)
			}
			ab.sat.AddClause(append(all, aux)...)
		} else {
			clause := make([]sat.Lit, 0, len(lits)+1)
			for _, l := range lits {
				ab.sat.AddClause(aux, -l)
				clause = append(clause, l)
			}
			ab.sat.AddClause(append(clause, -aux)...)
		}
		return aux, nil
	case ast.OpImplies:
		// Right-associative fold: (=> a b c) = a → (b → c).
		cur, err := ab.encode(n.Args[len(n.Args)-1], s)
		if err != nil {
			return 0, err
		}
		for i := len(n.Args) - 2; i >= 0; i-- {
			ant, err := ab.encode(n.Args[i], s)
			if err != nil {
				return 0, err
			}
			cur = ab.orPair(-ant, cur, s)
		}
		return cur, nil
	case ast.OpXor:
		cur, err := ab.encode(n.Args[0], s)
		if err != nil {
			return 0, err
		}
		for _, a := range n.Args[1:] {
			l, err := ab.encode(a, s)
			if err != nil {
				return 0, err
			}
			cur = ab.xorPair(cur, l, s)
		}
		return cur, nil
	case ast.OpEq:
		// Boolean iff (non-boolean equality is an atom).
		if len(n.Args) != 2 {
			return 0, fmt.Errorf("abstract: n-ary boolean equality should have been chained")
		}
		a, err := ab.encode(n.Args[0], s)
		if err != nil {
			return 0, err
		}
		b, err := ab.encode(n.Args[1], s)
		if err != nil {
			return 0, err
		}
		return -ab.xorPair(a, b, s), nil
	case ast.OpDistinct:
		if len(n.Args) != 2 {
			return 0, fmt.Errorf("abstract: n-ary boolean distinct should have been expanded")
		}
		a, err := ab.encode(n.Args[0], s)
		if err != nil {
			return 0, err
		}
		b, err := ab.encode(n.Args[1], s)
		if err != nil {
			return 0, err
		}
		return ab.xorPair(a, b, s), nil
	case ast.OpIte:
		c, err := ab.encode(n.Args[0], s)
		if err != nil {
			return 0, err
		}
		th, err := ab.encode(n.Args[1], s)
		if err != nil {
			return 0, err
		}
		el, err := ab.encode(n.Args[2], s)
		if err != nil {
			return 0, err
		}
		s.hit(pAbstractTseitin)
		aux := sat.Lit(ab.newAux())
		ab.sat.AddClause(-aux, -c, th)
		ab.sat.AddClause(-aux, c, el)
		ab.sat.AddClause(aux, -c, -th)
		ab.sat.AddClause(aux, c, -el)
		return aux, nil
	default:
		return 0, fmt.Errorf("abstract: operator %v in boolean position", n.Op)
	}
}

func (ab *abstraction) orPair(a, b sat.Lit, s *Solver) sat.Lit {
	s.hit(pAbstractTseitin)
	aux := sat.Lit(ab.newAux())
	ab.sat.AddClause(aux, -a)
	ab.sat.AddClause(aux, -b)
	ab.sat.AddClause(-aux, a, b)
	return aux
}

func (ab *abstraction) xorPair(a, b sat.Lit, s *Solver) sat.Lit {
	s.hit(pAbstractTseitin)
	aux := sat.Lit(ab.newAux())
	ab.sat.AddClause(-aux, a, b)
	ab.sat.AddClause(-aux, -a, -b)
	ab.sat.AddClause(aux, -a, b)
	ab.sat.AddClause(aux, a, -b)
	return aux
}
