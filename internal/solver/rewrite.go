package solver

import (
	"math/big"

	"repro/internal/ast"
	"repro/internal/eval"
)

// rewrite simplifies a boolean assert: operator-specific rules (the
// defect sites live here), then ground-term constant folding, applied
// bottom-up to a fixpoint per node.
func (s *Solver) rewrite(t ast.Term) ast.Term {
	s.hit(pRewriteEntry)
	// Deep nonlinear terms only arise after fusion stacks inversion
	// terms inside seed terms; plain seeds stay shallower.
	if s.cfg.Has(DefCrashDeepNonlinear) && ast.Depth(t) > 9 {
		ops := ast.Ops(t)
		if ops[ast.OpMul] && ops[ast.OpRealDiv] && s.defect(DefCrashDeepNonlinear) {
			s.crash(DefCrashDeepNonlinear, "rewriter stack overflow on deep nonlinear term")
		}
	}
	return ast.Transform(t, func(n ast.Term) ast.Term {
		out := s.rewriteNode(n)
		// A rule may expose a new redex at this node; iterate locally.
		for i := 0; i < 4; i++ {
			next := s.rewriteNode(out)
			if next == out {
				break
			}
			out = next
		}
		return out
	})
}

func (s *Solver) rewriteNode(t ast.Term) ast.Term {
	app, ok := t.(*ast.App)
	if !ok {
		return t
	}
	switch app.Op {
	case ast.OpNot:
		s.hit(pRwNot)
		if bl, ok := app.Args[0].(*ast.BoolLit); ok {
			return ast.Bool(!bl.V)
		}
		if inner, ok := app.Args[0].(*ast.App); ok && inner.Op == ast.OpNot {
			return inner.Args[0]
		}
		return t
	case ast.OpAnd, ast.OpOr:
		return s.rwAndOr(app)
	case ast.OpEq:
		return s.rwEq(app)
	case ast.OpDistinct:
		return s.rwDistinct(app)
	case ast.OpIte:
		return s.rwIte(app)
	case ast.OpAdd, ast.OpMul:
		return s.rwAddMul(app)
	case ast.OpRealDiv:
		return s.rwRealDiv(app)
	case ast.OpIntDiv, ast.OpMod:
		return s.rwIntDiv(app)
	case ast.OpAbs:
		return s.rwAbs(app)
	case ast.OpLe, ast.OpLt, ast.OpGe, ast.OpGt:
		return s.rwCompare(app)
	case ast.OpStrConcat:
		return s.rwConcat(app)
	case ast.OpStrLen:
		return s.rwStrLen(app)
	case ast.OpStrAt:
		return s.rwStrAt(app)
	case ast.OpStrSubstr:
		return s.rwSubstr(app)
	case ast.OpStrReplace:
		return s.rwReplace(app)
	case ast.OpStrPrefixOf, ast.OpStrSuffixOf:
		return s.rwAffix(app)
	case ast.OpStrContains:
		return s.rwContains(app)
	case ast.OpStrIndexOf:
		return s.rwIndexOf(app)
	case ast.OpStrToInt:
		return s.rwStrToInt(app)
	case ast.OpReRange:
		if s.cfg.Has(DefCrashRangeBounds) {
			lo, ok1 := app.Args[0].(*ast.StrLit)
			hi, ok2 := app.Args[1].(*ast.StrLit)
			if ok1 && ok2 && (len(lo.V) != 1 || len(hi.V) != 1) && s.defect(DefCrashRangeBounds) {
				s.crash(DefCrashRangeBounds, "assertion failed: single-character range bounds")
			}
		}
		return t
	default:
		return s.foldGround(t)
	}
}

func (s *Solver) rwAndOr(app *ast.App) ast.Term {
	s.hit(pRwBoolConn)
	isAnd := app.Op == ast.OpAnd
	var flat []ast.Term
	for _, a := range app.Args {
		if bl, ok := a.(*ast.BoolLit); ok {
			if bl.V == isAnd {
				continue // neutral element
			}
			return ast.Bool(!isAnd) // absorbing element
		}
		if sub, ok := a.(*ast.App); ok && sub.Op == app.Op {
			flat = append(flat, sub.Args...)
			continue
		}
		flat = append(flat, a)
	}
	if isAnd && s.cfg.Has(DefLeGuardCollapse) {
		flat = s.collapseLeGuard(flat)
	}
	switch len(flat) {
	case 0:
		return ast.Bool(isAnd)
	case 1:
		return flat[0]
	}
	if len(flat) == len(app.Args) {
		same := true
		for i := range flat {
			if flat[i] != app.Args[i] {
				same = false
				break
			}
		}
		if same {
			return app
		}
	}
	return ast.MustApp(app.Op, flat...)
}

// collapseLeGuard implements the rw-le-guard-collapse defect: inside a
// conjunction, a (distinct a b) conjunct whose pair also appears under
// a non-strict bound — (<= a b) or (>= a b), either orientation — is
// "simplified" away, as if the bound subsumed it. Formulas whose
// unsatisfiability hinges on the strictness (x² < 0 expressed as
// x² ≤ 0 ∧ x² ≠ 0) flip to sat. Terms are interned, so the pair match
// is pointer comparison.
func (s *Solver) collapseLeGuard(flat []ast.Term) []ast.Term {
	samePair := func(b, d *ast.App) bool {
		return (b.Args[0] == d.Args[0] && b.Args[1] == d.Args[1]) ||
			(b.Args[0] == d.Args[1] && b.Args[1] == d.Args[0])
	}
	guarded := func(d *ast.App) bool {
		for _, t := range flat {
			b, ok := t.(*ast.App)
			if ok && (b.Op == ast.OpLe || b.Op == ast.OpGe) && len(b.Args) == 2 && samePair(b, d) {
				return true
			}
		}
		return false
	}
	out := make([]ast.Term, 0, len(flat))
	for _, t := range flat {
		d, ok := t.(*ast.App)
		if ok && d.Op == ast.OpDistinct && len(d.Args) == 2 && guarded(d) && s.defect(DefLeGuardCollapse) {
			continue
		}
		out = append(out, t)
	}
	return out
}

func (s *Solver) rwEq(app *ast.App) ast.Term {
	s.hit(pRwEq)
	allEqual := true
	for i := 1; i < len(app.Args); i++ {
		if !ast.Equal(app.Args[0], app.Args[i]) {
			allEqual = false
			break
		}
	}
	if allEqual {
		return ast.True
	}
	// Chain n-ary equalities into binary conjunctions.
	if len(app.Args) > 2 {
		s.hit(pRwEqChain)
		var conj []ast.Term
		for i := 0; i+1 < len(app.Args); i++ {
			conj = append(conj, ast.Eq(app.Args[i], app.Args[i+1]))
		}
		return ast.And(conj...)
	}
	// Defective equality cancellation (see eqDivCancelDefect).
	if len(app.Args) == 2 && app.Args[0].Sort().IsArith() &&
		s.eqDivCancelDefect(app.Args[0], app.Args[1]) {
		return ast.True
	}
	// Boolean equality against a constant is the operand (or its
	// negation) — the rule that makes inlined boolean definitions
	// collapse.
	if len(app.Args) == 2 && app.Args[0].Sort() == ast.SortBool {
		if bl, ok := app.Args[0].(*ast.BoolLit); ok {
			if bl.V {
				return app.Args[1]
			}
			return ast.Not(app.Args[1])
		}
		if bl, ok := app.Args[1].(*ast.BoolLit); ok {
			if bl.V {
				return app.Args[0]
			}
			return ast.Not(app.Args[0])
		}
	}
	// Ground equality folds.
	return s.foldGround(app)
}

func (s *Solver) rwDistinct(app *ast.App) ast.Term {
	s.hit(pRwDistinct)
	if len(app.Args) == 2 {
		return s.foldGround(app)
	}
	// Pairwise expansion; the defect drops the final pair.
	var conj []ast.Term
	n := len(app.Args)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if i == n-2 && j == n-1 && s.defect(DefDistinctPairDrop) {
				continue
			}
			conj = append(conj, ast.Not(ast.Eq(app.Args[i], app.Args[j])))
		}
	}
	return ast.And(conj...)
}

func (s *Solver) rwIte(app *ast.App) ast.Term {
	s.hit(pRwIte)
	if bl, ok := app.Args[0].(*ast.BoolLit); ok {
		if bl.V {
			return app.Args[1]
		}
		return app.Args[2]
	}
	if ast.Equal(app.Args[1], app.Args[2]) {
		return app.Args[1]
	}
	if neg, ok := app.Args[0].(*ast.App); ok && neg.Op == ast.OpNot {
		return ast.Ite(neg.Args[0], app.Args[2], app.Args[1])
	}
	return app
}

func (s *Solver) rwAddMul(app *ast.App) ast.Term {
	s.hit(pRwAddMul)
	isAdd := app.Op == ast.OpAdd
	// Pre-scan: most applications have nothing to flatten and no
	// identity/absorbing literals, so the slice rebuilds below would
	// reproduce app.Args verbatim. Skip them for that common case.
	rebuild := false
	for _, a := range app.Args {
		if sub, ok := a.(*ast.App); ok && sub.Op == app.Op {
			rebuild = true
			break
		}
		if isNumLit(a, 0) || (!isAdd && isNumLit(a, 1)) {
			rebuild = true
			break
		}
	}
	kept := app.Args
	if rebuild {
		var flat []ast.Term
		for _, a := range app.Args {
			if sub, ok := a.(*ast.App); ok && sub.Op == app.Op {
				flat = append(flat, sub.Args...)
				continue
			}
			flat = append(flat, a)
		}
		// Identity/absorbing literal handling.
		kept = nil
		for _, a := range flat {
			if isNumLit(a, 0) && isAdd {
				continue
			}
			if isNumLit(a, 1) && !isAdd {
				continue
			}
			if isNumLit(a, 0) && !isAdd {
				return zeroOfSort(app.Sort())
			}
			kept = append(kept, a)
		}
		if len(kept) == 0 {
			if isAdd {
				return zeroOfSort(app.Sort())
			}
			return oneOfSort(app.Sort())
		}
		if len(kept) == 1 {
			return kept[0]
		}
	}
	// (* (/ a b) b) → a. Sound only for a literal nonzero divisor; the
	// defect applies the cancellation unconditionally — the unguarded
	// rewrite behind bugs like the paper's Figure 13c.
	if !isAdd && len(kept) == 2 {
		if out, ok := s.tryDivCancel(kept[0], kept[1]); ok {
			return out
		}
		if out, ok := s.tryDivCancel(kept[1], kept[0]); ok {
			return out
		}
	}
	var out ast.Term = app
	if rebuild {
		// Flattening or literal removal always changed the argument
		// list, so reconstruct (interning dedups any coincidences).
		out = ast.MustApp(app.Op, kept...)
	}
	return s.foldGround(out)
}

func (s *Solver) tryDivCancel(a, b ast.Term) (ast.Term, bool) {
	div, ok := a.(*ast.App)
	if !ok || div.Op != ast.OpRealDiv || len(div.Args) != 2 {
		return nil, false
	}
	if !ast.Equal(div.Args[1], b) {
		return nil, false
	}
	s.hit(pRwDivCancel)
	if lit, ok := b.(*ast.RealLit); ok && lit.V.Sign() != 0 {
		return div.Args[0], true
	}
	if s.defect(DefRealDivCancel) {
		// Unguarded cancellation: wrong when b can be 0 (x/0 = 0 here).
		return div.Args[0], true
	}
	return nil, false
}

func (s *Solver) rwRealDiv(app *ast.App) ast.Term {
	s.hit(pRwRealDiv)
	if len(app.Args) == 2 {
		// The numeral-check assertion only trips on COMPOUND equal
		// operands (a variable self-division short-circuits earlier in
		// the real solver's pipeline) — the shape fusion builds by
		// substituting the same inversion term into both positions.
		if _, isVar := app.Args[0].(*ast.Var); !isVar &&
			ast.Equal(app.Args[0], app.Args[1]) && s.defect(DefCrashSelfDivision) {
			s.crash(DefCrashSelfDivision, "Failed to verify: m_util.is_numeral(rhs, _k)")
		}
		if isNumLit(app.Args[1], 1) {
			return app.Args[0]
		}
		// (/ (* a b) b) → a. Sound only for a literal nonzero divisor
		// (under x/0 = 0, (a·0)/0 = 0 ≠ a); the defect cancels
		// unconditionally. Fused formulas hit this through the inlined
		// fusion constraint x = (x·y)/y.
		if out, ok := s.tryMulDivCancel(app.Args[0], app.Args[1], DefRealDivCancel); ok {
			return out
		}
	}
	return s.foldGround(app)
}

// tryMulDivCancel handles (op (* a b) b) → a for the real and integer
// division operators, guarded by a literal nonzero divisor; the given
// defect site removes the guard.
func (s *Solver) tryMulDivCancel(num, den ast.Term, d Defect) (ast.Term, bool) {
	mul, ok := num.(*ast.App)
	if !ok || mul.Op != ast.OpMul || len(mul.Args) != 2 {
		return nil, false
	}
	var other ast.Term
	switch {
	case ast.Equal(mul.Args[1], den):
		other = mul.Args[0]
	case ast.Equal(mul.Args[0], den):
		other = mul.Args[1]
	default:
		return nil, false
	}
	s.hit(pRwDivCancel)
	if litNonzero(den) {
		return other, true
	}
	return nil, false
}

// eqDivCancelDefect implements the asymmetric cancellation bug: an
// EQUALITY of the form a = (a·b)/b (or a = (a/b)·b, or the integer div
// form) is "simplified" to true, silently dropping the b = 0 case —
// while the same division terms elsewhere in the formula are left
// alone. Fused formulas assert exactly these equalities as fusion
// constraints, so the defect erases the constraint without restoring
// the substituted occurrences: the paper's Figure 5 bug dynamic.
func (s *Solver) eqDivCancelDefect(lhs, rhs ast.Term) bool {
	return s.eqDivCancelOne(lhs, rhs) || s.eqDivCancelOne(rhs, lhs)
}

// eqDivCancelOne checks the oriented pattern v = e with e one of
// (a·b)/b, (a·b) div b, or (a/b)·b where a is v.
func (s *Solver) eqDivCancelOne(v, e ast.Term) bool {
	div, ok := e.(*ast.App)
	if !ok {
		return false
	}
	switch div.Op {
	case ast.OpIntDiv:
		if len(div.Args) != 2 {
			return false
		}
		mul, ok := div.Args[0].(*ast.App)
		if !ok || mul.Op != ast.OpMul || len(mul.Args) != 2 {
			return false
		}
		den := div.Args[1]
		if (ast.Equal(mul.Args[0], v) && ast.Equal(mul.Args[1], den)) ||
			(ast.Equal(mul.Args[1], v) && ast.Equal(mul.Args[0], den)) {
			s.hit(pRwEqDivCancel)
			return s.defect(DefIntDivMulCancel)
		}
	case ast.OpRealDiv:
		if len(div.Args) != 2 {
			return false
		}
		mul, ok := div.Args[0].(*ast.App)
		if !ok || mul.Op != ast.OpMul || len(mul.Args) != 2 {
			return false
		}
		den := div.Args[1]
		if (ast.Equal(mul.Args[0], v) && ast.Equal(mul.Args[1], den)) ||
			(ast.Equal(mul.Args[1], v) && ast.Equal(mul.Args[0], den)) {
			s.hit(pRwEqDivCancel)
			return s.defect(DefRealDivCancel)
		}
	case ast.OpMul:
		// a = (a/b)·b
		if len(div.Args) != 2 {
			return false
		}
		for i := 0; i < 2; i++ {
			inner, ok := div.Args[i].(*ast.App)
			if !ok || inner.Op != ast.OpRealDiv || len(inner.Args) != 2 {
				continue
			}
			if ast.Equal(inner.Args[0], v) && ast.Equal(inner.Args[1], div.Args[1-i]) {
				return s.defect(DefRealDivCancel)
			}
		}
	}
	return false
}

func litNonzero(t ast.Term) bool {
	switch n := t.(type) {
	case *ast.IntLit:
		return n.V.Sign() != 0
	case *ast.RealLit:
		return n.V.Sign() != 0
	}
	return false
}

func (s *Solver) rwIntDiv(app *ast.App) ast.Term {
	s.hit(pRwIntDiv)
	a0, ok0 := app.Args[0].(*ast.IntLit)
	a1, ok1 := app.Args[1].(*ast.IntLit)
	if ok0 && ok1 && len(app.Args) == 2 {
		if app.Op == ast.OpIntDiv && a1.V.Sign() < 0 && s.defect(DefIntDivNegRound) {
			// Truncated instead of Euclidean division.
			s.hit(pRwIntDivNeg)
			q := new(big.Int).Quo(a0.V, a1.V)
			return ast.IntBig(q)
		}
		if app.Op == ast.OpMod && a1.V.Sign() == 0 && s.defect(DefModZero) {
			// Fixed interpretation is (mod x 0) = x; the defect folds 0.
			return ast.Int(0)
		}
		return s.foldGround(app)
	}
	if app.Op == ast.OpIntDiv && len(app.Args) == 2 && isNumLit(app.Args[1], 1) {
		return app.Args[0]
	}
	// (div (* a b) b) → a, guarded like the real case; the unguarded
	// defect corrupts the inlined fusion constraint x = (x·y) div y.
	if app.Op == ast.OpIntDiv && len(app.Args) == 2 {
		if out, ok := s.tryMulDivCancel(app.Args[0], app.Args[1], DefIntDivMulCancel); ok {
			return out
		}
	}
	if app.Op == ast.OpMod && isNumLit(app.Args[1], 1) {
		return ast.Int(0)
	}
	return app
}

func (s *Solver) rwAbs(app *ast.App) ast.Term {
	s.hit(pRwAbs)
	if lit, ok := app.Args[0].(*ast.IntLit); ok {
		if lit.V.Sign() < 0 && s.defect(DefAbsNegFold) {
			return lit // keeps the sign: wrong
		}
		return ast.IntBig(new(big.Int).Abs(lit.V))
	}
	return app
}

func (s *Solver) rwCompare(app *ast.App) ast.Term {
	s.hit(pRwCompare)
	if len(app.Args) == 2 {
		a, b := app.Args[0], app.Args[1]
		if ast.Equal(a, b) {
			switch app.Op {
			case ast.OpLe, ast.OpGe:
				return ast.True
			case ast.OpLt, ast.OpGt:
				return ast.False
			}
		}
		// Sign reasoning for squares: a² ≥ 0 always.
		if sq, isSquare := squareOf(a); isSquare || (s.cfg.Has(DefMulSignFold) && isProduct(a)) {
			_ = sq
			if isProduct(a) && !isSquare {
				// Defect: treats any product like a square.
				s.defect(DefMulSignFold)
			}
			s.hit(pRwSquareSign)
			if lit, ok := b.(*ast.RealLit); ok {
				if (app.Op == ast.OpLt && lit.V.Sign() <= 0) || (app.Op == ast.OpLe && lit.V.Sign() < 0) {
					return ast.False
				}
				if (app.Op == ast.OpGe && lit.V.Sign() <= 0) || (app.Op == ast.OpGt && lit.V.Sign() < 0) {
					return ast.True
				}
			}
			if lit, ok := b.(*ast.IntLit); ok {
				if (app.Op == ast.OpLt && lit.V.Sign() <= 0) || (app.Op == ast.OpLe && lit.V.Sign() < 0) {
					return ast.False
				}
				if (app.Op == ast.OpGe && lit.V.Sign() <= 0) || (app.Op == ast.OpGt && lit.V.Sign() < 0) {
					return ast.True
				}
			}
		}
		// Defect: the bound normalizer strengthens a ≥ 0 to a > 0 when
		// the left side went through division rewriting.
		if app.Op == ast.OpGe && isNumLit(b, 0) && containsOp(a, ast.OpRealDiv) && s.defect(DefGeZeroStrengthen) {
			return ast.Gt(a, b)
		}
		// Defect: multiply-through normalization of (op (div p q) b) to
		// (op p (* b q)) without sign or zero analysis — wrong whenever
		// q can be non-positive. Fires on the (div z y) inversion terms
		// fusion substitutes into comparisons.
		if div, ok := a.(*ast.App); ok && len(div.Args) == 2 &&
			(div.Op == ast.OpIntDiv || div.Op == ast.OpRealDiv) &&
			!litNonzero(div.Args[1]) {
			s.hit(pRwDivMulThrough)
			if s.defect(DefDivMulThrough) {
				return ast.MustApp(app.Op, div.Args[0], ast.Mul(b, div.Args[1]))
			}
		}
	}
	return s.foldGround(app)
}

func squareOf(t ast.Term) (ast.Term, bool) {
	app, ok := t.(*ast.App)
	if !ok || app.Op != ast.OpMul || len(app.Args) != 2 {
		return nil, false
	}
	if ast.Equal(app.Args[0], app.Args[1]) {
		return app.Args[0], true
	}
	return nil, false
}

func isProduct(t ast.Term) bool {
	app, ok := t.(*ast.App)
	return ok && app.Op == ast.OpMul
}

func (s *Solver) rwConcat(app *ast.App) ast.Term {
	s.hit(pRwConcat)
	var flat []ast.Term
	nestedSeen := 0
	for _, a := range app.Args {
		if sub, ok := a.(*ast.App); ok && sub.Op == ast.OpStrConcat {
			nestedSeen++
			args := sub.Args
			if nestedSeen >= 2 && len(args) > 1 && s.defect(DefConcatAssocDrop) {
				args = args[:len(args)-1] // drops an operand while flattening
			}
			flat = append(flat, args...)
			continue
		}
		flat = append(flat, a)
	}
	// Drop empty literals, merge adjacent literals.
	var merged []ast.Term
	for _, a := range flat {
		if lit, ok := a.(*ast.StrLit); ok {
			if lit.V == "" {
				continue
			}
			if len(merged) > 0 {
				if prev, ok := merged[len(merged)-1].(*ast.StrLit); ok {
					merged[len(merged)-1] = ast.Str(prev.V + lit.V)
					continue
				}
			}
		}
		merged = append(merged, a)
	}
	switch len(merged) {
	case 0:
		return ast.Str("")
	case 1:
		return merged[0]
	}
	if len(merged) == len(app.Args) {
		same := true
		for i := range merged {
			if merged[i] != app.Args[i] {
				same = false
				break
			}
		}
		if same {
			return app
		}
	}
	return ast.MustApp(ast.OpStrConcat, merged...)
}

func (s *Solver) rwStrLen(app *ast.App) ast.Term {
	s.hit(pRwStrLen)
	if cc, ok := app.Args[0].(*ast.App); ok && cc.Op == ast.OpStrConcat {
		args := cc.Args
		if len(args) >= 3 && s.defect(DefStrLenConcatDrop) {
			args = args[:len(args)-1]
		}
		terms := make([]ast.Term, len(args))
		for i, a := range args {
			terms[i] = ast.MustApp(ast.OpStrLen, a)
		}
		return ast.Add(terms...)
	}
	return s.foldGround(app)
}

func (s *Solver) rwStrAt(app *ast.App) ast.Term {
	s.hit(pRwStrAt)
	lit, ok0 := app.Args[0].(*ast.StrLit)
	idx, ok1 := app.Args[1].(*ast.IntLit)
	if ok0 && ok1 {
		if idx.V.IsInt64() && idx.V.Int64() == int64(len(lit.V)) && len(lit.V) > 0 && s.defect(DefStrAtOutOfRange) {
			// Off-by-one: returns the last character instead of "".
			return ast.Str(lit.V[len(lit.V)-1:])
		}
	}
	return s.foldGround(app)
}

func (s *Solver) rwSubstr(app *ast.App) ast.Term {
	s.hit(pRwSubstr)
	if idx, ok := app.Args[1].(*ast.IntLit); ok {
		if idx.V.BitLen() > 31 && s.defect(DefCrashBigSubstr) {
			s.crash(DefCrashBigSubstr, "substr index overflows internal length type")
		}
	}
	// (str.substr (str.++ a rest…) 0 (str.len a)) → a: prefix
	// extraction of the leading concat operand. The defect extracts the
	// leading operand whatever term the length argument measures — the
	// corruption behind wrong answers on x = substr(x ++ y, 0, |x|)
	// fusion constraints.
	if zero, ok := app.Args[1].(*ast.IntLit); ok && zero.V.Sign() == 0 {
		if ln, ok := app.Args[2].(*ast.App); ok && ln.Op == ast.OpStrLen {
			if cc, ok := app.Args[0].(*ast.App); ok && cc.Op == ast.OpStrConcat {
				s.hit(pRwSubstrConcat)
				if ast.Equal(cc.Args[0], ln.Args[0]) {
					return cc.Args[0]
				}
				if s.defect(DefSubstrConcatPrefix) {
					return cc.Args[0]
				}
			}
		}
	}
	lit, ok0 := app.Args[0].(*ast.StrLit)
	idx, ok1 := app.Args[1].(*ast.IntLit)
	n, ok2 := app.Args[2].(*ast.IntLit)
	if ok0 && ok1 && ok2 && n.V.Sign() < 0 && s.defect(DefStrSubstrNegLen) {
		// Wrong: negative length treated as "rest of string".
		if idx.V.IsInt64() && idx.V.Sign() >= 0 && idx.V.Int64() <= int64(len(lit.V)) {
			return ast.Str(lit.V[idx.V.Int64():])
		}
	}
	return s.foldGround(app)
}

func (s *Solver) rwReplace(app *ast.App) ast.Term {
	s.hit(pRwReplace)
	if pat, ok := app.Args[1].(*ast.StrLit); ok && pat.V == "" {
		s.hit(pRwReplaceEmpty)
		if s.defect(DefStrReplaceEmptyPat) {
			// Wrong: drops the prepended replacement.
			return app.Args[0]
		}
		return ast.MustApp(ast.OpStrConcat, app.Args[2], app.Args[0])
	}
	if ast.Equal(app.Args[1], app.Args[2]) {
		// Replacing t by t is the identity.
		return app.Args[0]
	}
	// Defect: replace of a variable pattern inside a variable subject
	// is "assumed not to occur" and dropped — wrong whenever the
	// pattern's value does occur. SAT fusion's inversion terms
	// replace(z, x, "") are exactly this shape (and x ALWAYS occurs:
	// z's intended value is x ++ y), so the defect over-constrains
	// satisfiable fused formulas into wrong unsat answers.
	if _, subjVar := app.Args[0].(*ast.Var); subjVar {
		if _, patVar := app.Args[1].(*ast.Var); patVar {
			if empty, ok := app.Args[2].(*ast.StrLit); ok && empty.V == "" {
				s.hit(pRwReplaceVar)
				if s.defect(DefReplaceVarNoop) {
					return app.Args[0]
				}
			}
		}
	}
	// (str.replace (str.++ a rest…) a "") → (str.++ rest…): the first
	// occurrence of the leading operand is its own prefix position, so
	// dropping it is sound. The defect drops the leading operand for
	// ANY pattern — the corruption fused formulas expose through
	// y = replace(x ++ y, x, "") shapes.
	if empty, ok := app.Args[2].(*ast.StrLit); ok && empty.V == "" {
		if cc, ok := app.Args[0].(*ast.App); ok && cc.Op == ast.OpStrConcat {
			s.hit(pRwReplaceConcat)
			restTerm := func() ast.Term {
				if len(cc.Args) == 2 {
					return cc.Args[1]
				}
				return ast.MustApp(ast.OpStrConcat, cc.Args[1:]...)
			}
			if ast.Equal(cc.Args[0], app.Args[1]) {
				// Overzealous-removal defect: when the next operand is a
				// literal separator, it is dropped along with the
				// pattern — corrupting exactly the infix fusion shape
				// replace(x ++ c ++ y, x, "").
				if len(cc.Args) >= 3 {
					if _, isLit := cc.Args[1].(*ast.StrLit); isLit && s.defect(DefReplaceConcatDrop) {
						if len(cc.Args) == 3 {
							return cc.Args[2]
						}
						return ast.MustApp(ast.OpStrConcat, cc.Args[2:]...)
					}
				}
				return restTerm()
			}
			if s.defect(DefReplaceConcatDrop) {
				return restTerm()
			}
		}
	}
	return s.foldGround(app)
}

func (s *Solver) rwAffix(app *ast.App) ast.Term {
	s.hit(pRwAffix)
	if lit, ok := app.Args[0].(*ast.StrLit); ok && lit.V == "" {
		if app.Op == ast.OpStrSuffixOf && s.defect(DefStrSuffixEmpty) {
			return ast.False
		}
		return ast.True
	}
	if ast.Equal(app.Args[0], app.Args[1]) {
		return ast.True
	}
	return s.foldGround(app)
}

func (s *Solver) rwContains(app *ast.App) ast.Term {
	s.hit(pRwContains)
	if ast.Equal(app.Args[0], app.Args[1]) {
		if s.defect(DefStrContainsSelf) {
			return ast.False
		}
		return ast.True
	}
	if lit, ok := app.Args[1].(*ast.StrLit); ok && lit.V == "" {
		return ast.True
	}
	return s.foldGround(app)
}

func (s *Solver) rwIndexOf(app *ast.App) ast.Term {
	s.hit(pRwIndexOf)
	if needle, ok := app.Args[1].(*ast.StrLit); ok && needle.V == "" && s.defect(DefIndexOfEmptyNeedle) {
		// Wrong: ignores the from-offset and range check.
		return ast.Int(0)
	}
	return s.foldGround(app)
}

func (s *Solver) rwStrToInt(app *ast.App) ast.Term {
	s.hit(pRwStrToInt)
	if lit, ok := app.Args[0].(*ast.StrLit); ok && lit.V == "" {
		s.hit(pRwStrToIntEmpty)
		if s.defect(DefStrToIntEmpty) {
			// The paper's CVC4 bug class: missed corner case in the
			// str.to_int reduction for the empty string.
			return ast.Int(0)
		}
		return ast.Int(-1)
	}
	return s.foldGround(app)
}

// foldGround evaluates a fully ground non-RegLan term to its literal.
func (s *Solver) foldGround(t ast.Term) ast.Term {
	app, ok := t.(*ast.App)
	if !ok || app.Sort() == ast.SortRegLan {
		return t
	}
	if ast.HasFreeVars(app) || ast.HasQuantifier(app) {
		return t
	}
	v, err := eval.Term(app, nil)
	if err != nil {
		return t
	}
	s.hit(pRwFold)
	return eval.ToTerm(v)
}

func containsOp(t ast.Term, op ast.Op) bool {
	return ast.Ops(t)[op]
}

func isNumLit(t ast.Term, v int64) bool {
	switch n := t.(type) {
	case *ast.IntLit:
		return n.V.IsInt64() && n.V.Int64() == v
	case *ast.RealLit:
		return n.V.Cmp(big.NewRat(v, 1)) == 0
	}
	return false
}

func zeroOfSort(s ast.Sort) ast.Term {
	if s == ast.SortReal {
		return ast.Real(0, 1)
	}
	return ast.Int(0)
}

func oneOfSort(s ast.Sort) ast.Term {
	if s == ast.SortReal {
		return ast.Real(1, 1)
	}
	return ast.Int(1)
}
