package solver

import (
	"repro/internal/ast"
	"repro/internal/solver/strings"
	"repro/internal/telemetry"
)

// Rewrite-memo counters, step-based like every other counter: one
// increment per top-level preprocess rewrite, hit or miss. They are a
// deterministic function of the solve sequence since the last
// ResetWarm, so the harness keeps them thread-invariant by resetting
// warm state at deterministic points (family starts).
var (
	cRewriteMemoHits   = telemetry.NewCounter("yy_rewrite_memo_hits_total", "preprocess rewrites served from the warm memo")
	cRewriteMemoMisses = telemetry.NewCounter("yy_rewrite_memo_misses_total", "preprocess rewrites computed and cached")
)

// rewriteMemoMax caps the rewrite memo; on overflow the memo is cleared
// wholesale (size-based, never time-based, so eviction is deterministic).
const rewriteMemoMax = 1 << 16

// warmState is the per-solver cache layer reused across Solve calls.
// Everything in it is semantically transparent: a warm solver returns
// bit-identical verdicts, models, defect firings, and fuel accounting
// to a cold one. What warm state buys is wall-clock time when
// consecutive solves share structure — exactly the shape semantic
// fusion produces, where every variant of a seed pair shares almost
// all of its assertions (and, because terms are hash-consed, shares
// the term pointers too).
type warmState struct {
	// str is the string theory's literal-evaluation cache (see
	// strings.Warm); the DFS hot path accounts for ~90% of campaign CPU.
	str *strings.Warm
	// rw memoizes top-level preprocess rewrites: input term → output
	// term plus the defect sites that fired while rewriting it, so a
	// hit replays the firings. Gated off while coverage tracking is on
	// — probe hit counts must reflect the paths actually executed.
	rw map[ast.Term]rwEntry
}

type rwEntry struct {
	out   ast.Term
	fired []Defect
}

func newWarmState() *warmState {
	return &warmState{str: strings.NewWarm(), rw: map[ast.Term]rwEntry{}}
}

// ResetWarm drops all warm caches. The harness calls this at the start
// of every seed family (and every corpus-vetting slot) so cache-hit
// telemetry is a function of the task sequence alone, never of worker
// scheduling — the invariant behind bit-identical campaigns at any
// thread count.
func (s *Solver) ResetWarm() {
	if s.warm == nil {
		return
	}
	s.warm.str.Reset()
	s.warm.rw = map[ast.Term]rwEntry{}
}

// rewriteCached is the memoizing wrapper preprocess uses for its
// top-level rewrite passes. Correctness relies on rewrite being a pure
// function of (term, enabled defect set): it spends no fuel, mints no
// fresh names, and records no telemetry — verified by rewrite_test's
// defect table and the differential warm-vs-cold corpus test. Defect
// firings are captured on a miss and replayed on a hit, so
// Outcome.DefectsFired is identical either way.
func (s *Solver) rewriteCached(t ast.Term) ast.Term {
	w := s.warm
	if w == nil || s.cfg.Coverage != nil {
		return s.rewrite(t)
	}
	if e, ok := w.rw[t]; ok {
		s.cfg.Telemetry.Inc(cRewriteMemoHits)
		for _, d := range e.fired {
			s.fired[d] = true
		}
		return e.out
	}
	// Run the rewrite against a scratch fired-set so the entry records
	// exactly the sites this term fires, independent of what earlier
	// rewrites in this solve already fired. The deferred merge keeps
	// s.fired correct even when a crash-defect site panics mid-rewrite
	// (the entry is then never stored, so replay never skips a crash).
	saved := s.fired
	s.fired = map[Defect]bool{}
	defer func() {
		for d := range s.fired {
			saved[d] = true
		}
		s.fired = saved
	}()
	out := s.rewrite(t)
	fired := make([]Defect, 0, len(s.fired))
	for d := range s.fired {
		//golint:allow map-range-render — fired is sorted by sortDefects immediately below (an in-module insertion sort the linter does not classify as a sorter)
		fired = append(fired, d)
	}
	sortDefects(fired)
	if len(w.rw) >= rewriteMemoMax {
		w.rw = map[ast.Term]rwEntry{}
	}
	w.rw[t] = rwEntry{out: out, fired: fired}
	s.cfg.Telemetry.Inc(cRewriteMemoMisses)
	return out
}
