package solver

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/smtlib"
)

func preprocessSrc(t *testing.T, s *Solver, src string) []ast.Term {
	t.Helper()
	sc, err := smtlib.ParseScript(src)
	if err != nil {
		t.Fatal(err)
	}
	pre, _, err := s.preprocessWithDefs(sc.Asserts())
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	return pre
}

func printAll(ts []ast.Term) string {
	var b strings.Builder
	for _, t := range ts {
		b.WriteString(ast.Print(t))
		b.WriteByte('\n')
	}
	return b.String()
}

func TestInlineSimpleDefinition(t *testing.T) {
	pre := preprocessSrc(t, NewReference(), `
(declare-fun x () Int)
(declare-fun z () Int)
(assert (= z (+ x 1)))
(assert (> z 5))
`)
	out := printAll(pre)
	if strings.Contains(out, "z") {
		t.Errorf("z not inlined:\n%s", out)
	}
	if !strings.Contains(out, "(> (+ x 1) 5)") {
		t.Errorf("definition not substituted:\n%s", out)
	}
}

func TestInlineChain(t *testing.T) {
	// z := x + y, w := z + 1: both inline; the final assert mentions
	// only x and y.
	pre := preprocessSrc(t, NewReference(), `
(declare-fun x () Int)
(declare-fun y () Int)
(declare-fun z () Int)
(declare-fun w () Int)
(assert (= z (+ x y)))
(assert (= w (+ z 1)))
(assert (> w 0))
`)
	out := printAll(pre)
	if strings.Contains(out, "w") || strings.Contains(out, "z") {
		t.Errorf("chain not fully inlined:\n%s", out)
	}
}

func TestInlineCycleKeptAsConstraint(t *testing.T) {
	// The UNSAT-fusion shape: z := x·y accepted, x = z div y rejected
	// (cycle through z) and kept as an assert with z substituted.
	pre := preprocessSrc(t, NewReference(), `
(declare-fun x () Int)
(declare-fun y () Int)
(declare-fun z () Int)
(assert (= z (* x y)))
(assert (= x (div z y)))
(assert (> y 3))
`)
	out := printAll(pre)
	if !strings.Contains(out, "(= x (div (* x y) y))") {
		t.Errorf("cyclic definition not kept as substituted constraint:\n%s", out)
	}
}

func TestInlineBooleanUnits(t *testing.T) {
	pre := preprocessSrc(t, NewReference(), `
(declare-fun p () Bool)
(declare-fun x () Int)
(assert p)
(assert (ite p (> x 0) (< x 0)))
`)
	out := printAll(pre)
	if strings.Contains(out, "p") && !strings.Contains(out, "(> x 0)") {
		t.Errorf("boolean unit not propagated:\n%s", out)
	}
}

func TestInlineModelRecovery(t *testing.T) {
	s := NewReference()
	sc, _ := smtlib.ParseScript(`
(declare-fun x () Int)
(declare-fun z () Int)
(declare-fun w () Int)
(assert (= z (+ x 2)))
(assert (= w (* z 3)))
(assert (= x 1))
`)
	out := s.SolveScript(sc)
	if out.Result != ResSat {
		t.Fatalf("result %v", out.Result)
	}
	zv := out.Model["z"]
	wv := out.Model["w"]
	if zv == nil || wv == nil {
		t.Fatalf("inlined variables missing from model: %v", out.Model)
	}
	if zv.String() != "3" || wv.String() != "9" {
		t.Errorf("z=%v w=%v want 3, 9", zv, wv)
	}
}

func TestIteLifting(t *testing.T) {
	pre := preprocessSrc(t, NewReference(), `
(declare-fun a () Real)
(declare-fun d () Real)
(assert (> d (ite (> a 0.0) (+ a 1.0) a)))
`)
	out := printAll(pre)
	if strings.Contains(out, "(> d (ite") {
		t.Errorf("term ite not lifted:\n%s", out)
	}
	// The lifted form introduces guarded equalities.
	if !strings.Contains(out, "(or (not (> a 0.0))") {
		t.Errorf("guard constraints missing:\n%s", out)
	}
}

func TestSkolemizePositiveExists(t *testing.T) {
	pre := preprocessSrc(t, NewReference(), `
(declare-fun a () Real)
(assert (exists ((h Real)) (> h a)))
`)
	out := printAll(pre)
	if strings.Contains(out, "exists") {
		t.Errorf("existential not skolemized:\n%s", out)
	}
	if !strings.Contains(out, "sk!h") {
		t.Errorf("skolem constant missing:\n%s", out)
	}
}

func TestNegatedForallSkolemizes(t *testing.T) {
	pre := preprocessSrc(t, NewReference(), `
(declare-fun a () Real)
(assert (not (forall ((h Real)) (<= h a))))
`)
	out := printAll(pre)
	if strings.Contains(out, "forall") || strings.Contains(out, "exists") {
		t.Errorf("negated universal not eliminated:\n%s", out)
	}
}

func TestResidualQuantifierErrors(t *testing.T) {
	s := NewReference()
	sc, _ := smtlib.ParseScript(`
(declare-fun a () Real)
(assert (forall ((h Real)) (> h a)))
`)
	_, _, err := s.preprocessWithDefs(sc.Asserts())
	if err == nil {
		t.Fatal("positive universal should not preprocess")
	}
}

func TestPushNegThroughConnectives(t *testing.T) {
	s := NewReference()
	term, _ := smtlib.ParseTerm(
		"(not (and (<= x 1) (or (> x 5) (exists ((h Int)) (= h x)))))",
		map[string]ast.Sort{"x": ast.SortInt})
	out := s.pushNeg(term, false)
	txt := ast.Print(out)
	// ¬(a ∧ (b ∨ c)) = ¬a ∨ (¬b ∧ ¬c); comparisons flip; the ∃ becomes ∀.
	for _, want := range []string{"(> x 1)", "(<= x 5)", "forall"} {
		if !strings.Contains(txt, want) {
			t.Errorf("pushNeg missing %q in %s", want, txt)
		}
	}
	if strings.Contains(txt, "(not (and") {
		t.Errorf("negation not pushed: %s", txt)
	}
}

func TestPushNegDefectKeepsQuantifierKind(t *testing.T) {
	buggy := New(Config{Defects: map[Defect]bool{DefQuantNegPush: true}})
	term, _ := smtlib.ParseTerm(
		"(not (exists ((h Int)) (= h x)))",
		map[string]ast.Sort{"x": ast.SortInt})
	out := buggy.pushNeg(term, false)
	txt := ast.Print(out)
	if !strings.Contains(txt, "exists") {
		t.Errorf("defect should keep the existential: %s", txt)
	}
	ref := NewReference()
	out = ref.pushNeg(term, false)
	if !strings.Contains(ast.Print(out), "forall") {
		t.Errorf("reference should flip to forall: %s", ast.Print(out))
	}
}

func TestTrivialAfterPreprocess(t *testing.T) {
	// Everything folds to true: solve must return sat with a default
	// model covering the declared variables.
	s := NewReference()
	sc, _ := smtlib.ParseScript(`
(declare-fun x () Int)
(assert (= x x))
(assert (or (> 2 1) (< x 0)))
`)
	out := s.SolveScript(sc)
	if out.Result != ResSat {
		t.Fatalf("result %v", out.Result)
	}
	if _, ok := out.Model["x"]; !ok {
		t.Error("default model missing declared variable")
	}
}
