package strings

import (
	"math/big"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/solver/arith"
)

// completeArith runs after every string and boolean variable is
// assigned: it grounds all string subterms to literals, reduces the
// remaining literals to linear integer/real atoms, solves them, and
// certifies the combined model by full evaluation.
func (c *checker) completeArith(m eval.Model) (bool, eval.Model) {
	var pending []ast.Term
	for _, l := range c.lits {
		if allAssigned(l, m) {
			ok, err := eval.Bool(l, m)
			if err != nil || !ok {
				return false, nil
			}
			continue
		}
		simplified := simplifyBool(c.ground(l, m))
		if bl, ok := simplified.(*ast.BoolLit); ok {
			if !bl.V {
				return false, nil
			}
			continue
		}
		// Split ground conjunctions into separate atoms.
		if app, ok := simplified.(*ast.App); ok && app.Op == ast.OpAnd {
			pending = append(pending, app.Args...)
			continue
		}
		pending = append(pending, simplified)
	}

	model := m.Clone()
	if len(pending) > 0 {
		var atoms []arith.Atom
		intVars := map[string]bool{}
		for _, l := range pending {
			atom, polarity := stripNot(l)
			app, ok := atom.(*ast.App)
			if !ok {
				return false, nil
			}
			rel, ok := relOf(app.Op)
			if !ok || len(app.Args) != 2 || !app.Args[0].Sort().IsArith() {
				return false, nil
			}
			if !polarity {
				rel = rel.Negate()
			}
			lhs, err := arith.Linearize(app.Args[0], nil)
			if err != nil {
				return false, nil
			}
			rhs, err := arith.Linearize(app.Args[1], nil)
			if err != nil {
				return false, nil
			}
			lhs.AddExpr(rhs, big.NewRat(-1, 1))
			atoms = append(atoms, arith.Atom{Expr: lhs, Rel: rel})
			for _, v := range ast.FreeVars(atom) {
				if v.VSort == ast.SortInt {
					intVars[v.Name] = true
				}
			}
		}
		st, am := arith.Check(&arith.Problem{Atoms: atoms, IntVars: intVars, NodeBudget: 60, Telem: c.telem})
		if st != arith.Sat {
			return false, nil
		}
		for name, val := range am {
			if c.varSorts[name] == ast.SortReal {
				model[name] = eval.RealV{V: val}
			} else {
				model[name] = eval.IntV{V: val.Num()}
			}
		}
	}

	// Default-complete and certify.
	for name, s := range c.varSorts {
		if _, ok := model[name]; !ok {
			model[name] = eval.DefaultValue(s)
		}
	}
	for _, l := range c.lits {
		ok, err := eval.Bool(l, model)
		if err != nil || !ok {
			return false, nil
		}
	}
	return true, model
}

// ground replaces every subterm whose free variables are all assigned
// in m by its literal value.
func (c *checker) ground(t ast.Term, m eval.Model) ast.Term {
	return ast.Transform(t, func(s ast.Term) ast.Term {
		switch n := s.(type) {
		case *ast.Var:
			if v, ok := m[n.Name]; ok {
				return eval.ToTerm(v)
			}
			return s
		case *ast.BoolLit, *ast.IntLit, *ast.RealLit, *ast.StrLit:
			return s
		}
		if s.Sort() == ast.SortRegLan || !allAssigned(s, m) {
			return s
		}
		v, err := eval.Term(s, m)
		if err != nil {
			return s
		}
		return eval.ToTerm(v)
	})
}

// simplifyBool folds ground boolean structure: negations of literals,
// equalities and ites with a literal boolean side, and conjunctions or
// disjunctions containing literal members. It leaves theory atoms
// untouched.
func simplifyBool(t ast.Term) ast.Term {
	return ast.Transform(t, func(s ast.Term) ast.Term {
		app, ok := s.(*ast.App)
		if !ok {
			return s
		}
		switch app.Op {
		case ast.OpNot:
			if bl, ok := app.Args[0].(*ast.BoolLit); ok {
				return ast.Bool(!bl.V)
			}
			if inner, ok := app.Args[0].(*ast.App); ok && inner.Op == ast.OpNot {
				return inner.Args[0]
			}
		case ast.OpEq:
			if len(app.Args) == 2 && app.Args[0].Sort() == ast.SortBool {
				if bl, ok := app.Args[0].(*ast.BoolLit); ok {
					if bl.V {
						return app.Args[1]
					}
					return simplifyBool(ast.Not(app.Args[1]))
				}
				if bl, ok := app.Args[1].(*ast.BoolLit); ok {
					if bl.V {
						return app.Args[0]
					}
					return simplifyBool(ast.Not(app.Args[0]))
				}
			}
		case ast.OpIte:
			if bl, ok := app.Args[0].(*ast.BoolLit); ok {
				if bl.V {
					return app.Args[1]
				}
				return app.Args[2]
			}
		case ast.OpAnd:
			var kept []ast.Term
			for _, a := range app.Args {
				if bl, ok := a.(*ast.BoolLit); ok {
					if !bl.V {
						return ast.False
					}
					continue
				}
				kept = append(kept, a)
			}
			if len(kept) == 0 {
				return ast.True
			}
			return ast.And(kept...)
		case ast.OpOr:
			var kept []ast.Term
			for _, a := range app.Args {
				if bl, ok := a.(*ast.BoolLit); ok {
					if bl.V {
						return ast.True
					}
					continue
				}
				kept = append(kept, a)
			}
			if len(kept) == 0 {
				return ast.False
			}
			return ast.Or(kept...)
		case ast.OpImplies:
			if len(app.Args) == 2 {
				if bl, ok := app.Args[0].(*ast.BoolLit); ok {
					if !bl.V {
						return ast.True
					}
					return app.Args[1]
				}
			}
		}
		return s
	})
}

func relOf(op ast.Op) (arith.Rel, bool) {
	switch op {
	case ast.OpLe:
		return arith.RelLe, true
	case ast.OpLt:
		return arith.RelLt, true
	case ast.OpGe:
		return arith.RelGe, true
	case ast.OpGt:
		return arith.RelGt, true
	case ast.OpEq:
		return arith.RelEq, true
	case ast.OpDistinct:
		return arith.RelNe, true
	}
	return 0, false
}
