// Package strings implements the string theory solver: a length
// abstraction into linear integer arithmetic (the classic Norn-style
// reduction), syntactic equality propagation, regex-guided candidate
// enumeration, and a pruned bounded search for witness models. The
// procedure is sound and incomplete: Sat answers carry a model checked
// by exact evaluation, Unsat answers come only from the abstractions,
// and everything else is Unknown.
package strings

import (
	"math/big"
	"sort"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/fuel"
	"repro/internal/regex"
	"repro/internal/solver/arith"
	"repro/internal/telemetry"
)

// cDFSSteps counts string-search DFS nodes — one increment per fuel
// unit spent at a node entry.
var cDFSSteps = telemetry.NewCounter("yy_strings_dfs_steps_total", "string-search DFS nodes")

// Status mirrors arith.Status for string conjunctions.
type Status = arith.Status

const (
	Unknown = arith.Unknown
	Sat     = arith.Sat
	Unsat   = arith.Unsat
)

// Limits bounds the search effort.
type Limits struct {
	// MaxLen is the maximum candidate string length explored.
	MaxLen int
	// MaxCandidates bounds candidates per variable.
	MaxCandidates int
	// MaxNodes bounds DFS nodes.
	MaxNodes int
}

// DefaultLimits returns the limits used by the reference solver. The
// products matter: every DFS node may evaluate all ground literals, and
// leaves invoke an arithmetic completion, so the node budget is kept
// small and the DPLL(T) loop above bounds repetitions.
func DefaultLimits() Limits {
	return Limits{MaxLen: 5, MaxCandidates: 160, MaxNodes: 1500}
}

// Problem is a conjunction of literals. Lits must be boolean terms
// whose polarity is already applied (a negated atom arrives as
// (not atom)). String-sorted and integer-sorted literals may be mixed;
// integer literals participate in the length abstraction.
type Problem struct {
	Lits   []ast.Term
	Limits Limits
	// Defect is the injected-defect hook: when non-nil it is consulted
	// (and the firing recorded by the caller) at each defect site in
	// this theory. Site IDs are defined in internal/solver.
	Defect func(id string) bool
	// Fuel is the unified deadline shared across the solver's engines:
	// the DFS spends one unit per node, candidate enumeration and
	// negative-membership matching spend per derivative, and the meter
	// is handed down to the length abstraction's arithmetic check.
	// Nil means unlimited.
	Fuel *fuel.Meter
	// Telem records DFS-node and regex-derivative counts into the
	// owner's tracker. Nil records nothing.
	Telem *telemetry.Tracker
	// Warm is the reusable evaluation cache shared across Check calls
	// by the incremental layer. Nil disables caching; results are
	// identical either way (see Warm).
	Warm *Warm
}

// Check decides the conjunction. On Sat the model assigns every free
// variable of the literals (strings, ints, bools, reals).
func Check(p *Problem) (Status, eval.Model) {
	lim := p.Limits
	if lim.MaxLen == 0 {
		lim = DefaultLimits()
	}
	c := &checker{lits: p.Lits, lim: lim, defect: p.Defect, fuel: p.Fuel, telem: p.Telem, warm: p.Warm}
	if c.defect == nil {
		c.defect = func(string) bool { return false }
	}
	return c.run()
}

type checker struct {
	lits    []ast.Term
	litVars [][]string // free-variable names per literal (precomputed)
	lim     Limits
	defect  func(id string) bool
	fuel    *fuel.Meter
	telem   *telemetry.Tracker
	warm    *Warm

	strVars []string
	intVars []string
	// varSorts of all free variables.
	varSorts map[string]ast.Sort

	// memberships: positive ground regex constraints per string var.
	pos map[string][]regex.Regex
	neg map[string][]regex.Regex

	// eqDefs: defining equations v = rhs usable for propagation.
	eqDefs map[string][]ast.Term

	// litsByVar indexes literals by free-variable name, so the DFS can
	// check only the literals completed by each assignment.
	litsByVar map[string][]int

	alphabet []byte
	lenHint  map[string]int
}

func (c *checker) run() (Status, eval.Model) {
	c.varSorts = map[string]ast.Sort{}
	c.litVars = make([][]string, len(c.lits))
	c.litsByVar = map[string][]int{}
	for i, l := range c.lits {
		for _, v := range ast.FreeVars(l) {
			c.varSorts[v.Name] = v.VSort
			c.litVars[i] = append(c.litVars[i], v.Name)
			c.litsByVar[v.Name] = append(c.litsByVar[v.Name], i)
		}
	}
	for name, s := range c.varSorts {
		switch s {
		case ast.SortString:
			c.strVars = append(c.strVars, name)
		case ast.SortInt:
			c.intVars = append(c.intVars, name)
		}
	}
	sort.Strings(c.strVars)
	sort.Strings(c.intVars)

	// Syntactic conflicts and regex constraints.
	if c.collectRegexConstraints() == Unsat {
		return Unsat, nil
	}

	// Congruence over simple positive equalities: union-find on
	// var = var and var = literal; merging two distinct literals is an
	// immediate conflict (x = "ab" ∧ x = "cd").
	if c.congruenceConflict() {
		return Unsat, nil
	}

	// Length abstraction.
	st, lenModel := c.lengthAbstraction()
	if st == Unsat {
		return Unsat, nil
	}
	c.lenHint = lenModel

	// Bounded model search.
	return c.search()
}

// collectRegexConstraints gathers ground regex memberships and checks
// immediate infeasibility (positive membership in an empty language, or
// an empty positive intersection).
func (c *checker) collectRegexConstraints() Status {
	c.pos = map[string][]regex.Regex{}
	c.neg = map[string][]regex.Regex{}
	c.eqDefs = map[string][]ast.Term{}
	for _, l := range c.lits {
		atom, polarity := stripNot(l)
		app, ok := atom.(*ast.App)
		if !ok {
			continue
		}
		switch app.Op {
		case ast.OpStrInRe:
			v, isVar := app.Args[0].(*ast.Var)
			r, err := regex.FromTerm(app.Args[1])
			if err != nil {
				continue // non-ground regex: handled only by search
			}
			if isVar {
				if polarity {
					c.pos[v.Name] = append(c.pos[v.Name], r)
				} else {
					c.neg[v.Name] = append(c.neg[v.Name], r)
				}
			}
			if polarity && regex.IsEmpty(r) {
				return Unsat
			}
		case ast.OpEq:
			if !polarity || app.Args[0].Sort() != ast.SortString {
				continue
			}
			if v, ok := app.Args[0].(*ast.Var); ok {
				c.eqDefs[v.Name] = append(c.eqDefs[v.Name], app.Args[1])
			}
			if v, ok := app.Args[1].(*ast.Var); ok {
				c.eqDefs[v.Name] = append(c.eqDefs[v.Name], app.Args[0])
			}
		}
	}
	// Positive membership intersections must be non-empty.
	for v, rs := range c.pos {
		if len(rs) > 1 {
			if regex.IsEmpty(regex.Inter(rs...)) {
				return Unsat
			}
		}
		_ = v
	}
	return Unknown
}

// congruenceConflict runs union-find over the positive equalities whose
// sides are variables or literals (of any sort), reporting a conflict
// when two distinct literals land in one class.
func (c *checker) congruenceConflict() bool {
	parent := map[string]string{}
	var find func(x string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	// Class representative literal (by key) per root.
	litOf := map[string]ast.Term{}
	union := func(a, b string, aLit, bLit ast.Term) bool {
		ra, rb := find(a), find(b)
		la, lb := litOf[ra], litOf[rb]
		if aLit != nil {
			la = aLit
		}
		if bLit != nil {
			lb = bLit
		}
		if ra != rb {
			parent[ra] = rb
		}
		switch {
		case la != nil && lb != nil && !ast.Equal(la, lb):
			return false // two distinct literals merged
		case la != nil:
			litOf[find(rb)] = la
		case lb != nil:
			litOf[find(rb)] = lb
		}
		return true
	}
	keyOf := func(t ast.Term) (name string, lit ast.Term, ok bool) {
		switch n := t.(type) {
		case *ast.Var:
			return "v:" + n.Name, nil, true
		case *ast.StrLit, *ast.IntLit, *ast.RealLit, *ast.BoolLit:
			return "l:" + ast.Print(t), t, true
		}
		return "", nil, false
	}
	for _, l := range c.lits {
		atom, polarity := stripNot(l)
		app, isApp := atom.(*ast.App)
		if !isApp || !polarity || app.Op != ast.OpEq || len(app.Args) != 2 {
			continue
		}
		ka, la, oka := keyOf(app.Args[0])
		kb, lb, okb := keyOf(app.Args[1])
		if !oka || !okb {
			continue
		}
		if !union(ka, kb, la, lb) {
			return true
		}
	}
	return false
}

// lengthAbstraction derives integer constraints entailed by the string
// literals, merges them with the conjunction's pure integer literals,
// and checks them with the linear arithmetic solver.
func (c *checker) lengthAbstraction() (Status, map[string]int) {
	abs := arith.NewAbstractor("\x00len!")
	var atoms []arith.Atom
	intVars := map[string]bool{}

	lenVar := func(v string) string { return "\x00len$" + v }
	for _, v := range c.strVars {
		intVars[lenVar(v)] = true
		// len ≥ 0
		e := arith.NewLinExpr()
		e.AddVar(lenVar(v), big.NewRat(1, 1))
		atoms = append(atoms, arith.Atom{Expr: e, Rel: arith.RelGe})
	}
	for _, v := range c.intVars {
		intVars[v] = true
	}

	addAtom := func(e *arith.LinExpr, rel arith.Rel) {
		atoms = append(atoms, arith.Atom{Expr: e, Rel: rel})
	}

	// lenExpr builds a linear length expression for a string term, or
	// nil if the term's length is not linearly expressible.
	var lenExpr func(t ast.Term) *arith.LinExpr
	lenExpr = func(t ast.Term) *arith.LinExpr {
		switch n := t.(type) {
		case *ast.Var:
			e := arith.NewLinExpr()
			e.AddVar(lenVar(n.Name), big.NewRat(1, 1))
			return e
		case *ast.StrLit:
			e := arith.NewLinExpr()
			e.Const.SetInt64(int64(len(n.V)))
			return e
		case *ast.App:
			if n.Op == ast.OpStrConcat {
				out := arith.NewLinExpr()
				for _, a := range n.Args {
					sub := lenExpr(a)
					if sub == nil {
						return nil
					}
					out.AddExpr(sub, big.NewRat(1, 1))
				}
				return out
			}
			return nil
		default:
			return nil
		}
	}

	for _, l := range c.lits {
		atom, polarity := stripNot(l)
		app, ok := atom.(*ast.App)
		if !ok {
			continue
		}
		switch app.Op {
		case ast.OpEq:
			if app.Args[0].Sort() == ast.SortString && polarity {
				a, b := lenExpr(app.Args[0]), lenExpr(app.Args[1])
				if a != nil && b != nil {
					a.AddExpr(b, big.NewRat(-1, 1))
					addAtom(a, arith.RelEq)
				}
			} else if app.Args[0].Sort() == ast.SortInt {
				c.intLit(app, polarity, abs, addAtom)
			}
		case ast.OpLe, ast.OpLt, ast.OpGe, ast.OpGt:
			if app.Args[0].Sort() == ast.SortInt {
				c.intLit(app, polarity, abs, addAtom)
			}
		case ast.OpStrPrefixOf, ast.OpStrSuffixOf:
			if polarity {
				a, b := lenExpr(app.Args[0]), lenExpr(app.Args[1])
				if a != nil && b != nil {
					a.AddExpr(b, big.NewRat(-1, 1))
					rel := arith.RelLe // |prefix| ≤ |whole|
					if c.defect("th-len-abs-prefix-flip") {
						rel = arith.RelGe // flipped: bogus length conflicts
					}
					addAtom(a, rel)
				}
			}
		case ast.OpStrContains:
			if polarity {
				a, b := lenExpr(app.Args[0]), lenExpr(app.Args[1])
				if a != nil && b != nil {
					b.AddExpr(a, big.NewRat(-1, 1))
					addAtom(b, arith.RelLe) // |needle| ≤ |haystack|
				}
			}
		case ast.OpStrInRe:
			v, isVar := app.Args[0].(*ast.Var)
			if !isVar || !polarity {
				continue
			}
			r, err := regex.FromTerm(app.Args[1])
			if err != nil {
				continue
			}
			if min, ok := regex.MinLenFuel(r, c.fuel, c.telem); ok && min > 0 {
				e := arith.NewLinExpr()
				e.AddVar(lenVar(v.Name), big.NewRat(1, 1))
				e.Const.SetInt64(int64(-min))
				rel := arith.RelGe
				if c.defect("th-regex-min-len-strict") {
					rel = arith.RelGt // off-by-one: len == min wrongly refuted
				}
				addAtom(e, rel)
			}
			if max, ok := regex.MaxLen(r); ok {
				e := arith.NewLinExpr()
				e.AddVar(lenVar(v.Name), big.NewRat(1, 1))
				e.Const.SetInt64(int64(-max))
				addAtom(e, arith.RelLe)
			}
		}
	}

	// Abstraction variables from integer literals (str.len x becomes
	// the length variable; other foreign terms stay free). Iterate in
	// sorted order: atom order steers the simplex pivot sequence, and
	// step counts must be reproducible run to run.
	absVars := make([]string, 0, len(abs.Terms()))
	for v := range abs.Terms() {
		absVars = append(absVars, v)
	}
	sort.Strings(absVars)
	for _, v := range absVars {
		if app, ok := abs.Terms()[v].(*ast.App); ok && app.Op == ast.OpStrLen {
			if sv, ok := app.Args[0].(*ast.Var); ok {
				// Tie the abstraction var to the length var.
				e := arith.NewLinExpr()
				e.AddVar(v, big.NewRat(1, 1))
				e.AddVar(lenVar(sv.Name), big.NewRat(-1, 1))
				atoms = append(atoms, arith.Atom{Expr: e, Rel: arith.RelEq})
			}
		}
		intVars[v] = true
	}

	st, model := arith.Check(&arith.Problem{Atoms: atoms, IntVars: intVars, Fuel: c.fuel, Telem: c.telem})
	if st == Unsat {
		return Unsat, nil
	}
	hints := map[string]int{}
	if st == Sat {
		for _, v := range c.strVars {
			if lv, ok := model[lenVar(v)]; ok && lv.IsInt() && lv.Num().IsInt64() {
				hints[v] = int(lv.Num().Int64())
			}
		}
	}
	return Unknown, hints
}

// intLit linearizes an integer comparison literal into the abstraction.
func (c *checker) intLit(app *ast.App, polarity bool, abs *arith.Abstractor, add func(*arith.LinExpr, arith.Rel)) {
	var rel arith.Rel
	switch app.Op {
	case ast.OpEq:
		rel = arith.RelEq
	case ast.OpLe:
		rel = arith.RelLe
	case ast.OpLt:
		rel = arith.RelLt
	case ast.OpGe:
		rel = arith.RelGe
	case ast.OpGt:
		rel = arith.RelGt
	default:
		return
	}
	if !polarity {
		rel = rel.Negate()
	}
	if len(app.Args) != 2 {
		return
	}
	lhs, err := arith.Linearize(app.Args[0], abs)
	if err != nil {
		return
	}
	rhs, err := arith.Linearize(app.Args[1], abs)
	if err != nil {
		return
	}
	lhs.AddExpr(rhs, big.NewRat(-1, 1))
	add(lhs, rel)
}

func stripNot(t ast.Term) (ast.Term, bool) {
	polarity := true
	//golint:allow fuel-charge — strips a finite chain of not-wrappers; the term strictly shrinks every iteration
	for {
		app, ok := t.(*ast.App)
		if !ok || app.Op != ast.OpNot {
			return t, polarity
		}
		t = app.Args[0]
		polarity = !polarity
	}
}
