package strings

import (
	"strconv"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/telemetry"
)

// Warm-cache counters: every memo probe on the DFS hot path records a
// hit or a miss, so `-stats`/`-metrics` expose the reuse rate the
// incremental layer achieves. Both are step-based (one increment per
// memoized evaluation), so campaign totals stay thread-invariant as
// long as the harness resets warm state at deterministic points.
var (
	cWarmEvalHits   = telemetry.NewCounter("yy_warm_eval_hits_total", "string-search literal evaluations served from the warm cache")
	cWarmEvalMisses = telemetry.NewCounter("yy_warm_eval_misses_total", "string-search literal evaluations computed and cached")
)

// warmMaxEntries caps the total number of cached evaluations. When the
// cap is exceeded the cache is cleared wholesale — a size-based (never
// time-based) policy, so eviction is a deterministic function of the
// solve sequence alone.
const warmMaxEntries = 1 << 18

// Warm is the string theory's reusable evaluation cache. The bounded
// witness search re-evaluates the same literal under the same partial
// assignment exponentially often: across sibling DFS branches, across
// the DPLL(T) loop's successive boolean models (the literal sets
// overlap heavily), and — because terms are hash-consed — across the
// fused/mutated variants of one seed family. Every cached result is a
// pure function of (literal term, values of its free variables):
// eval.Bool/eval.Term spend no fuel, fire no defects, and hit no
// coverage probes, so serving them from the cache is observationally
// invisible — verdicts, models, defect firings, and fuel accounting
// are bit-identical to a cold solve by construction.
//
// A Warm is single-owner like fuel.Meter and telemetry.Tracker: one
// per solver instance, never shared across goroutines.
type Warm struct {
	// lits memoizes litsConsistent's pass/fail per literal: term →
	// (encoded free-variable values → literal holds).
	lits map[ast.Term]map[string]bool
	// props memoizes defining-equation propagation: rhs term →
	// (encoded free-variable values → evaluated value). The entry holds
	// the rhs's free-variable list so the key encoder never re-derives
	// it on the hot path.
	props map[ast.Term]*propMemo
	// entries counts cached values across both maps for the cap.
	entries int
	// scratch is the reusable key-encoding buffer (the per-solver
	// scratch arena: key construction allocates nothing on a hit).
	scratch []byte
}

type propMemo struct {
	vars []string // free-variable names of the rhs, in ast.FreeVars order
	vals map[string]propEntry
}

type propEntry struct {
	val eval.Value
	ok  bool // false: evaluation errored
}

// NewWarm returns an empty warm cache.
func NewWarm() *Warm {
	return &Warm{lits: map[ast.Term]map[string]bool{}, props: map[ast.Term]*propMemo{}}
}

// Reset drops every cached evaluation. The harness calls this at the
// start of each seed family so per-task cache-hit telemetry is a
// function of the family alone, never of worker scheduling.
func (w *Warm) Reset() {
	if w == nil {
		return
	}
	w.lits = map[ast.Term]map[string]bool{}
	w.props = map[ast.Term]*propMemo{}
	w.entries = 0
}

// full reports whether the cap is hit; the caller clears wholesale.
func (w *Warm) full() bool { return w.entries >= warmMaxEntries }

// encodeKey appends an unambiguous encoding of the named variables'
// values (in the given order) to the scratch buffer and returns it.
// Only call with every name assigned in m. String values are length-
// prefixed so no two assignments collide.
func (w *Warm) encodeKey(names []string, m eval.Model) []byte {
	buf := w.scratch[:0]
	for _, name := range names {
		switch v := m[name].(type) {
		case eval.BoolV:
			if v {
				buf = append(buf, 'T')
			} else {
				buf = append(buf, 'F')
			}
		case eval.StrV:
			buf = strconv.AppendInt(buf, int64(len(v)), 10)
			buf = append(buf, ':')
			buf = append(buf, v...)
		default:
			// Arithmetic values never appear during the DFS (integer and
			// real variables are assigned by completeArith, after the
			// search), but stay total: render through the value's string
			// form, length-prefixed like the common case.
			s := v.String()
			buf = append(buf, '#')
			buf = strconv.AppendInt(buf, int64(len(s)), 10)
			buf = append(buf, ':')
			buf = append(buf, s...)
		}
		buf = append(buf, ';')
	}
	w.scratch = buf
	return buf
}

// litPasses evaluates literal i under m — through the warm cache when
// one is attached — returning whether it holds (evaluation errors
// count as failures, matching the search's pruning rule). The caller
// guarantees every free variable of the literal is assigned.
func (c *checker) litPasses(i int, m eval.Model) bool {
	w := c.warm
	if w == nil {
		ok, err := eval.Bool(c.lits[i], m)
		return err == nil && ok
	}
	l := c.lits[i]
	lm := w.lits[l]
	if lm == nil {
		lm = map[string]bool{}
		w.lits[l] = lm
	}
	key := w.encodeKey(c.litVars[i], m)
	if v, ok := lm[string(key)]; ok {
		c.telem.Inc(cWarmEvalHits)
		return v
	}
	ok, err := eval.Bool(l, m)
	v := err == nil && ok
	if w.full() {
		w.Reset()
		lm = map[string]bool{}
		w.lits[l] = lm
	}
	lm[string(key)] = v
	w.entries++
	c.telem.Inc(cWarmEvalMisses)
	return v
}

// propValue evaluates a defining-equation rhs under m through the warm
// cache. The boolean reports evaluation success (not satisfiability).
func (c *checker) propValue(rhs ast.Term, m eval.Model) (eval.Value, bool) {
	w := c.warm
	if w == nil {
		val, err := eval.Term(rhs, m)
		return val, err == nil
	}
	pm := w.props[rhs]
	if pm == nil {
		fvs := ast.FreeVars(rhs)
		names := make([]string, len(fvs))
		for i, v := range fvs {
			names[i] = v.Name
		}
		pm = &propMemo{vars: names, vals: map[string]propEntry{}}
		w.props[rhs] = pm
	}
	key := w.encodeKey(pm.vars, m)
	if e, ok := pm.vals[string(key)]; ok {
		c.telem.Inc(cWarmEvalHits)
		return e.val, e.ok
	}
	val, err := eval.Term(rhs, m)
	e := propEntry{val: val, ok: err == nil}
	if w.full() {
		w.Reset()
		fvsNames := pm.vars
		pm = &propMemo{vars: fvsNames, vals: map[string]propEntry{}}
		w.props[rhs] = pm
	}
	pm.vals[string(key)] = e
	w.entries++
	c.telem.Inc(cWarmEvalMisses)
	return e.val, e.ok
}
