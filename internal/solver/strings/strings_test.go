package strings

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/smtlib"
)

// checkScript parses a script and checks the conjunction of its asserts.
func checkScript(t *testing.T, src string) (Status, eval.Model) {
	t.Helper()
	s, err := smtlib.ParseScript(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(&Problem{Lits: s.Asserts()})
}

// certify asserts that a Sat result's model satisfies every assert.
func certify(t *testing.T, src string, m eval.Model) {
	t.Helper()
	s, _ := smtlib.ParseScript(src)
	for _, a := range s.Asserts() {
		ok, err := eval.Bool(a, m)
		if err != nil {
			t.Fatalf("certify eval: %v", err)
		}
		if !ok {
			t.Fatalf("model %v violates %s", m, ast.Print(a))
		}
	}
}

func TestSimpleEquality(t *testing.T) {
	src := `
(declare-fun a () String)
(declare-fun b () String)
(assert (= a (str.++ b "x")))
(assert (= b "ab"))
`
	st, m := checkScript(t, src)
	if st != Sat {
		t.Fatalf("status %v", st)
	}
	certify(t, src, m)
	if string(m["a"].(eval.StrV)) != "abx" {
		t.Errorf("a = %v", m["a"])
	}
}

func TestLiteralConflict(t *testing.T) {
	// a = "x" ∧ a = "y": same lengths, so the length abstraction cannot
	// see it — the congruence check must.
	st, _ := checkScript(t, `
(declare-fun a () String)
(assert (= a "x"))
(assert (= a "y"))
`)
	if st != Unsat {
		t.Fatalf("conflicting literals: %v, want unsat", st)
	}
}

func TestCongruenceChains(t *testing.T) {
	// a = b ∧ b = "ab" ∧ a = "cd" conflicts through the chain.
	st, _ := checkScript(t, `
(declare-fun a () String)
(declare-fun b () String)
(assert (= a b))
(assert (= b "ab"))
(assert (= a "cd"))
`)
	if st != Unsat {
		t.Fatalf("chained conflict: %v", st)
	}
	// Consistent chain stays satisfiable.
	src := `
(declare-fun a () String)
(declare-fun b () String)
(assert (= a b))
(assert (= b "ab"))
(assert (= a "ab"))
`
	st, m := checkScript(t, src)
	if st != Sat {
		t.Fatalf("consistent chain: %v", st)
	}
	certify(t, src, m)
	// Negated equalities do not participate.
	st, m = checkScript(t, `
(declare-fun a () String)
(assert (not (= a "x")))
(assert (= a "y"))
`)
	if st != Sat {
		t.Fatalf("negated equality wrongly merged: %v", st)
	}
}

func TestLengthAbstractionUnsat(t *testing.T) {
	// len(a) = len(a)+1 via concat: a = a ++ "x" is unsat by lengths.
	st, _ := checkScript(t, `
(declare-fun a () String)
(assert (= a (str.++ a "x")))
`)
	if st != Unsat {
		t.Fatalf("status %v, want unsat via length abstraction", st)
	}
}

func TestLengthVsIntConstraint(t *testing.T) {
	// len(a) < 0 is unsat.
	st, _ := checkScript(t, `
(declare-fun a () String)
(assert (< (str.len a) 0))
`)
	if st != Unsat {
		t.Fatalf("status %v", st)
	}
	// len(a) = 3 ∧ a in (aa)* : lengths 0,2,4,... conflict with 3.
	st, _ = checkScript(t, `
(declare-fun a () String)
(assert (= (str.len a) 3))
(assert (str.in_re a (re.* (str.to_re "aa"))))
`)
	// MinLen/MaxLen give only 0..∞ bounds here, so the length
	// abstraction alone cannot refute; accept Unknown but reject Sat.
	if st == Sat {
		t.Fatalf("parity-length conflict reported sat")
	}
}

func TestRegexMembershipSat(t *testing.T) {
	src := `
(declare-fun c () String)
(assert (str.in_re c (re.* (str.to_re "aa"))))
(assert (> (str.len c) 2))
`
	st, m := checkScript(t, src)
	if st != Sat {
		t.Fatalf("status %v", st)
	}
	certify(t, src, m)
}

func TestRegexEmptyIntersection(t *testing.T) {
	st, _ := checkScript(t, `
(declare-fun c () String)
(assert (str.in_re c (str.to_re "ab")))
(assert (str.in_re c (str.to_re "cd")))
`)
	if st != Unsat {
		t.Fatalf("status %v", st)
	}
}

func TestRegexMinLenUnsat(t *testing.T) {
	// c ∈ (aaa)+ forces len ≥ 3; len(c) ≤ 2 contradicts.
	st, _ := checkScript(t, `
(declare-fun c () String)
(assert (str.in_re c (re.+ (str.to_re "aaa"))))
(assert (<= (str.len c) 2))
`)
	if st != Unsat {
		t.Fatalf("status %v", st)
	}
}

func TestRegexMaxLenUnsat(t *testing.T) {
	// c ∈ opt(ab) has max length 2; len(c) > 5 contradicts.
	st, _ := checkScript(t, `
(declare-fun c () String)
(assert (str.in_re c (re.opt (str.to_re "ab"))))
(assert (> (str.len c) 5))
`)
	if st != Unsat {
		t.Fatalf("status %v", st)
	}
}

func TestNegativeMembership(t *testing.T) {
	src := `
(declare-fun c () String)
(assert (not (str.in_re c (re.* (str.to_re "a")))))
(assert (<= (str.len c) 2))
`
	st, m := checkScript(t, src)
	if st != Sat {
		t.Fatalf("status %v", st)
	}
	certify(t, src, m)
}

func TestConcatChainPropagation(t *testing.T) {
	src := `
(declare-fun a () String)
(declare-fun b () String)
(declare-fun c () String)
(declare-fun d () String)
(assert (= b "ab"))
(assert (= c (str.++ b b)))
(assert (= d (str.++ c "!")))
(assert (= a d))
`
	st, m := checkScript(t, src)
	if st != Sat {
		t.Fatalf("status %v", st)
	}
	certify(t, src, m)
	if string(m["a"].(eval.StrV)) != "abab!" {
		t.Errorf("a = %v", m["a"])
	}
}

func TestMixedIntString(t *testing.T) {
	src := `
(declare-fun a () String)
(declare-fun n () Int)
(assert (= a "hello"))
(assert (= n (str.len a)))
(assert (> n 4))
`
	st, m := checkScript(t, src)
	if st != Sat {
		t.Fatalf("status %v", st)
	}
	certify(t, src, m)
}

func TestStrToIntConstraint(t *testing.T) {
	src := `
(declare-fun a () String)
(assert (= (str.to_int a) 7))
(assert (<= (str.len a) 1))
`
	st, m := checkScript(t, src)
	if st != Sat {
		t.Fatalf("status %v", st)
	}
	certify(t, src, m)
	if string(m["a"].(eval.StrV)) != "7" {
		t.Errorf("a = %v", m["a"])
	}
}

func TestBooleanMix(t *testing.T) {
	// The paper's Figure 2 φ2 shape: boolean guards around string/int
	// facts.
	src := `
(declare-fun y () Int)
(declare-fun v () Bool)
(assert (= v (not (= y (- 1)))))
(assert (ite v false (= y (- 1))))
`
	st, m := checkScript(t, src)
	if st != Sat {
		t.Fatalf("status %v", st)
	}
	certify(t, src, m)
	if bool(m["v"].(eval.BoolV)) {
		t.Error("v must be false")
	}
}

func TestPrefixSuffixContains(t *testing.T) {
	src := `
(declare-fun a () String)
(assert (str.prefixof "ab" a))
(assert (str.suffixof "ba" a))
(assert (str.contains a "bab"))
(assert (<= (str.len a) 5))
`
	st, m := checkScript(t, src)
	if st != Sat {
		t.Fatalf("status %v", st)
	}
	certify(t, src, m)
}

func TestContainsLengthUnsat(t *testing.T) {
	st, _ := checkScript(t, `
(declare-fun a () String)
(assert (str.contains a "abcdef"))
(assert (< (str.len a) 3))
`)
	if st != Unsat {
		t.Fatalf("status %v", st)
	}
}

func TestReplaceSemanticSearch(t *testing.T) {
	src := `
(declare-fun a () String)
(declare-fun b () String)
(assert (= (str.replace a b "") "x"))
(assert (= (str.len a) 2))
(assert (= (str.len b) 1))
`
	st, m := checkScript(t, src)
	if st != Sat {
		t.Fatalf("status %v", st)
	}
	certify(t, src, m)
}

func TestUnknownOnHardInstance(t *testing.T) {
	// A satisfiable instance whose witness is longer than the search
	// bound: the solver must say Unknown (or find it), never Unsat.
	st, _ := Check(&Problem{
		Lits: mustAsserts(t, `
(declare-fun a () String)
(assert (= (str.len a) 40))
`),
		Limits: Limits{MaxLen: 3, MaxCandidates: 10, MaxNodes: 100},
	})
	if st == Unsat {
		t.Fatalf("incomplete search must not report unsat")
	}
}

func mustAsserts(t *testing.T, src string) []ast.Term {
	t.Helper()
	s, err := smtlib.ParseScript(src)
	if err != nil {
		t.Fatal(err)
	}
	return s.Asserts()
}

func TestPaperFigure13aShape(t *testing.T) {
	// The satisfiable sibling of the paper's Figure 13a: same structure
	// without the contradiction.
	src := `
(declare-fun b () String)
(declare-fun c () String)
(assert (str.in_re c (re.* (str.to_re "aa"))))
(assert (str.prefixof b (str.++ b c)))
`
	st, m := checkScript(t, src)
	if st != Sat {
		t.Fatalf("status %v", st)
	}
	certify(t, src, m)
}
