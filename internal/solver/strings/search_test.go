package strings

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/smtlib"
)

func newChecker(t *testing.T, src string) *checker {
	t.Helper()
	s, err := smtlib.ParseScript(src)
	if err != nil {
		t.Fatal(err)
	}
	c := &checker{lits: s.Asserts(), lim: DefaultLimits(), defect: func(string) bool { return false }}
	c.varSorts = map[string]ast.Sort{}
	c.litVars = make([][]string, len(c.lits))
	for i, l := range c.lits {
		for _, v := range ast.FreeVars(l) {
			c.varSorts[v.Name] = v.VSort
			c.litVars[i] = append(c.litVars[i], v.Name)
		}
	}
	return c
}

func TestBuildAlphabet(t *testing.T) {
	c2 := newChecker(t, `
(declare-fun a () String)
(assert (= a "xz"))
(assert (= (str.to_int a) 5))
`)
	c2.pos = nil
	c2.neg = nil
	c2.buildAlphabet()
	set := map[byte]bool{}
	for _, b := range c2.alphabet {
		set[b] = true
	}
	// Literal chars, digits (to_int present), and a fresh byte.
	for _, want := range []byte{'x', 'z', '0', '1'} {
		if !set[want] {
			t.Errorf("alphabet missing %c: %v", want, c2.alphabet)
		}
	}
	if len(c2.alphabet) < 5 {
		t.Errorf("no representative outside byte: %v", c2.alphabet)
	}
}

func TestShortlexOrder(t *testing.T) {
	c := newChecker(t, `(declare-fun a () String)(assert (= a "ab"))`)
	c.buildAlphabet()
	out := c.shortlex(3, 10)
	if out[0] != "" {
		t.Errorf("first is %q", out[0])
	}
	for i := 1; i < len(out); i++ {
		if len(out[i]) < len(out[i-1]) {
			t.Errorf("not shortlex at %d: %q after %q", i, out[i], out[i-1])
		}
	}
	if len(out) != 10 {
		t.Errorf("limit not respected: %d", len(out))
	}
}

func TestStringCandidatesIncludeLiteralsAndInts(t *testing.T) {
	c3 := newChecker(t, `
(declare-fun a () String)
(assert (= (str.to_int a) 37))
`)
	c3.pos = nil
	c3.neg = nil
	c3.eqDefs = map[string][]ast.Term{}
	c3.buildAlphabet()
	cands := c3.stringCandidates("a")
	found := false
	for _, v := range cands {
		if string(v.(eval.StrV)) == "37" {
			found = true
		}
	}
	if !found {
		t.Error(`"37" not among candidates despite str.to_int constraint`)
	}
}

func TestLengthAbstractionDefectHooks(t *testing.T) {
	src := `
(declare-fun a () String)
(declare-fun b () String)
(assert (str.prefixof a b))
(assert (= (str.len a) 1))
(assert (= (str.len b) 3))
`
	// Reference: |a| ≤ |b| holds (1 ≤ 3): sat expected.
	st, _ := checkScript(t, src)
	if st != Sat {
		t.Fatalf("reference: %v", st)
	}
	// Flipped abstraction (|a| ≥ |b|): 1 ≥ 3 is a bogus conflict.
	s, _ := smtlib.ParseScript(src)
	st, _ = Check(&Problem{
		Lits:   s.Asserts(),
		Defect: func(id string) bool { return id == "th-len-abs-prefix-flip" },
	})
	if st != Unsat {
		t.Fatalf("flipped abstraction should answer unsat, got %v", st)
	}
}

func TestRegexMinLenDefectHook(t *testing.T) {
	src := `
(declare-fun c () String)
(assert (str.in_re c (re.+ (str.to_re "ab"))))
(assert (= (str.len c) 2))
`
	st, _ := checkScript(t, src)
	if st != Sat {
		t.Fatalf("reference: %v", st)
	}
	s, _ := smtlib.ParseScript(src)
	st, _ = Check(&Problem{
		Lits:   s.Asserts(),
		Defect: func(id string) bool { return id == "th-regex-min-len-strict" },
	})
	if st != Unsat {
		t.Fatalf("strict min-len should answer unsat, got %v", st)
	}
}

func TestViolatesNeg(t *testing.T) {
	src := `
(declare-fun a () String)
(assert (not (str.in_re a (re.* (str.to_re "x")))))
(assert (= (str.len a) 1))
`
	st, m := checkScript(t, src)
	if st != Sat {
		t.Fatalf("status %v", st)
	}
	if got := string(m["a"].(eval.StrV)); got == "x" {
		t.Error("negative membership violated")
	}
}
