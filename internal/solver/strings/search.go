package strings

import (
	"sort"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/regex"
)

// search performs the bounded witness search: DFS over candidate
// assignments for string and boolean variables with defining-equation
// propagation and per-literal pruning, followed by arithmetic completion
// for the remaining integer/real variables. It never returns Unsat.
func (c *checker) search() (Status, eval.Model) {
	c.buildAlphabet()

	var searchVars []string
	for name, s := range c.varSorts {
		if s == ast.SortString || s == ast.SortBool {
			searchVars = append(searchVars, name)
		}
	}
	sort.Strings(searchVars)

	cands := map[string][]eval.Value{}
	for _, v := range searchVars {
		if c.varSorts[v] == ast.SortBool {
			cands[v] = []eval.Value{eval.BoolV(false), eval.BoolV(true)}
		} else {
			cands[v] = c.stringCandidates(v)
		}
	}
	// Most-constrained-first ordering.
	sort.SliceStable(searchVars, func(i, j int) bool {
		return len(cands[searchVars[i]]) < len(cands[searchVars[j]])
	})

	// Literals with no free variables never become "newly completed" by
	// an assignment below; verify them once up front.
	if !c.litsConsistent(eval.Model{}) {
		return Unknown, nil
	}

	// Injected hang defect: on wide search frontiers (the shape fused
	// formulas produce, with both ancestors' variables plus the fusion
	// variable in scope) the DFS "loops forever". Simulated by draining
	// the fuel meter: the observable signature — a deterministic
	// timeout — is the same, with no wall-clock cost.
	if len(searchVars) >= 4 && c.defect("pf-strings-dfs-hang") {
		c.fuel.Drain()
		return Unknown, nil
	}

	nodes := c.lim.MaxNodes
	ok, model := c.dfs(searchVars, cands, eval.Model{}, &nodes)
	if ok {
		return Sat, model
	}
	return Unknown, nil
}

// buildAlphabet gathers a small alphabet sufficient for candidate
// construction: every byte in the problem's string literals and ground
// regexes, digits when integer conversions occur, and a fresh byte.
func (c *checker) buildAlphabet() {
	set := map[byte]bool{}
	needDigits := false
	for _, l := range c.lits {
		ast.Walk(l, func(t ast.Term) bool {
			switch n := t.(type) {
			case *ast.StrLit:
				for i := 0; i < len(n.V); i++ {
					set[n.V[i]] = true
				}
			case *ast.App:
				if n.Op == ast.OpStrToInt || n.Op == ast.OpStrFromInt {
					needDigits = true
				}
			}
			return true
		})
	}
	for _, rs := range c.pos {
		for _, r := range rs {
			for _, ch := range regex.RelevantChars(r) {
				set[ch] = true
			}
		}
	}
	if needDigits {
		set['0'] = true
		set['1'] = true
	}
	if len(set) == 0 {
		set['a'] = true
	}
	// One representative byte outside the set.
	for _, cand := range []byte{'~', '#', '@'} {
		if !set[cand] {
			set[cand] = true
			break
		}
	}
	out := make([]byte, 0, len(set))
	for b := range set {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if len(out) > 10 {
		out = out[:10]
	}
	c.alphabet = out
}

// stringCandidates builds the ordered candidate list for a string
// variable: regex-guided members when a positive membership constrains
// the variable, otherwise shortlex strings over the alphabet, literal
// constants from the problem, and hint-length paddings. Candidates are
// filtered by negative memberships.
func (c *checker) stringCandidates(v string) []eval.Value {
	maxLen := c.lim.MaxLen
	var raw []string
	if rs := c.pos[v]; len(rs) > 0 {
		r := regex.Inter(rs...)
		raw = regex.EnumerateFuel(r, maxLen+2, c.lim.MaxCandidates, c.fuel, c.telem)
	} else {
		// Problem literals are strong candidates for equalities, and
		// decimal renderings of integer constants matter for str.to_int
		// constraints whose digits may be outside the alphabet. They go
		// first so the candidate cap never drops them.
		for _, l := range c.lits {
			ast.Walk(l, func(t ast.Term) bool {
				switch n := t.(type) {
				case *ast.StrLit:
					if len(n.V) <= maxLen+2 {
						raw = append(raw, n.V)
					}
				case *ast.IntLit:
					if n.V.Sign() >= 0 && len(n.V.String()) <= maxLen+2 {
						raw = append(raw, n.V.String())
					}
				}
				return true
			})
		}
		raw = append(raw, c.shortlex(maxLen, c.lim.MaxCandidates)...)
		// Hint-length paddings keep long-but-feasible lengths in reach.
		if h, ok := c.lenHint[v]; ok && h > 0 && h <= maxLen+2 {
			for _, ch := range c.alphabet {
				pad := make([]byte, h)
				for i := range pad {
					pad[i] = ch
				}
				raw = append(raw, string(pad))
			}
		}
	}

	seen := map[string]bool{}
	var out []eval.Value
	hint, hasHint := c.lenHint[v]
	// Prefer hint-length candidates by stable partition.
	if hasHint {
		sort.SliceStable(raw, func(i, j int) bool {
			di := abs(len(raw[i]) - hint)
			dj := abs(len(raw[j]) - hint)
			return di < dj
		})
	}
	for _, s := range raw {
		if seen[s] {
			continue
		}
		seen[s] = true
		if c.violatesNeg(v, s) {
			continue
		}
		out = append(out, eval.StrV(s))
		if len(out) >= c.lim.MaxCandidates {
			break
		}
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func (c *checker) violatesNeg(v, s string) bool {
	for _, r := range c.neg[v] {
		if regex.MatchFuel(r, s, c.fuel, c.telem) {
			return true
		}
	}
	return false
}

// shortlex enumerates strings over the alphabet in shortlex order.
func (c *checker) shortlex(maxLen, limit int) []string {
	out := []string{""}
	frontier := []string{""}
	for l := 1; l <= maxLen && len(out) < limit; l++ {
		var next []string
		for _, p := range frontier {
			for _, ch := range c.alphabet {
				s := p + string(ch)
				out = append(out, s)
				next = append(next, s)
				if len(out) >= limit {
					return out
				}
			}
		}
		frontier = next
	}
	return out
}

func (c *checker) dfs(order []string, cands map[string][]eval.Value, m eval.Model, nodes *int) (bool, eval.Model) {
	if *nodes <= 0 || !c.fuel.Spend(1) {
		return false, nil
	}
	c.telem.Inc(cDFSSteps)
	*nodes--

	// Propagation: a variable whose defining equation is ground under m
	// is forced; assign it and recurse without branching.
	for _, v := range order {
		if _, done := m[v]; done {
			continue
		}
		for _, rhs := range c.eqDefs[v] {
			if !allAssigned(rhs, m) {
				continue
			}
			val, ok := c.propValue(rhs, m)
			if !ok {
				continue
			}
			if sv, ok := val.(eval.StrV); ok && c.violatesNeg(v, string(sv)) {
				return false, nil
			}
			// Assign in place and undo on failure: the search clones the
			// model only when a full solution is certified
			// (completeArith), not at every node.
			m[v] = val
			if !c.litsConsistentAfter(m, v) {
				delete(m, v)
				return false, nil
			}
			ok, model := c.dfs(order, cands, m, nodes)
			if !ok {
				delete(m, v)
			}
			return ok, model
		}
	}

	// Branch on the next unassigned variable.
	var pick string
	for _, v := range order {
		if _, done := m[v]; !done {
			pick = v
			break
		}
	}
	if pick == "" {
		return c.completeArith(m)
	}
	for _, val := range cands[pick] {
		m[pick] = val
		if c.litsConsistentAfter(m, pick) {
			if ok, model := c.dfs(order, cands, m, nodes); ok {
				return true, model
			}
		}
		delete(m, pick)
		if *nodes <= 0 {
			return false, nil
		}
	}
	return false, nil
}

// litsConsistent evaluates every literal whose free variables are all
// assigned; any false literal prunes the branch.
func (c *checker) litsConsistent(m eval.Model) bool {
	for i := range c.lits {
		ready := true
		for _, name := range c.litVars[i] {
			if _, ok := m[name]; !ok {
				ready = false
				break
			}
		}
		if !ready {
			continue
		}
		if !c.litPasses(i, m) {
			return false
		}
	}
	return true
}

// litsConsistentAfter evaluates only the literals completed by the
// assignment of v: a literal needs checking exactly when its last free
// variable gets a value, so the DFS evaluates each literal once per
// path instead of re-evaluating every ready literal at every node.
func (c *checker) litsConsistentAfter(m eval.Model, v string) bool {
	for _, i := range c.litsByVar[v] {
		ready := true
		for _, name := range c.litVars[i] {
			if _, ok := m[name]; !ok {
				ready = false
				break
			}
		}
		if !ready {
			continue
		}
		if !c.litPasses(i, m) {
			return false
		}
	}
	return true
}

func allAssigned(t ast.Term, m eval.Model) bool {
	for _, v := range ast.FreeVars(t) {
		if _, ok := m[v.Name]; !ok {
			return false
		}
	}
	return true
}
