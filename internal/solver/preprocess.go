package solver

import (
	"fmt"

	"repro/internal/ast"
)

// preprocess runs the full front end over the assert list: rewriting,
// definitional inlining, quantifier normalization (negation pushing and
// positive-existential skolemization), if-then-else lifting, and a
// final rewriting pass. It returns the processed asserts and the sorts
// of all free variables (including introduced ones).
func (s *Solver) preprocess(asserts []ast.Term) ([]ast.Term, error) {
	out := make([]ast.Term, len(asserts))
	for i, a := range asserts {
		out[i] = s.rewriteCached(a)
	}

	out = s.inline(out)

	// Quantifier normalization.
	hadQuant := false
	for i, a := range out {
		if ast.HasQuantifier(a) {
			hadQuant = true
			out[i] = s.normalizeQuant(a)
		}
	}
	if hadQuant {
		for i, a := range out {
			if ast.HasQuantifier(a) {
				s.hit(pQuantGiveUp)
				return nil, fmt.Errorf("quantifier not eliminated: %s", ast.Print(a))
			}
			out[i] = s.rewriteCached(a)
		}
		out = s.inline(out)
	}

	out = s.liftIte(out)

	final := out[:0]
	for _, a := range out {
		r := s.rewriteCached(a)
		if bl, ok := r.(*ast.BoolLit); ok && bl.V {
			continue
		}
		final = append(final, r)
	}
	return final, nil
}

// inline performs definitional inlining: a top-level assert of the form
// (= x t) or (= t x) with x ∉ vars(t), or a bare boolean variable
// (or its negation), defines x and is substituted through the other
// asserts. This is the pass that lets additive fusion formulas collapse
// back to their ancestors' structure.
func (s *Solver) inline(asserts []ast.Term) []ast.Term {
	s.hit(pInlineEntry)
	// Greedy acyclic definition selection: a candidate x := t is
	// accepted only if no variable of t (transitively through already
	// accepted definitions) reaches x. Rejected candidates stay as
	// asserts — after substitution they expose shapes like
	// x = div (x·y) y, exactly the terms the rewriter (and its defect
	// sites) must handle on fused formulas.
	defs := map[string]ast.Term{}
	var rest []ast.Term

	var reaches func(from, target string, seen map[string]bool) bool
	reaches = func(from, target string, seen map[string]bool) bool {
		if from == target {
			return true
		}
		if seen[from] {
			return false
		}
		seen[from] = true
		rhs, ok := defs[from]
		if !ok {
			return false
		}
		for _, fv := range ast.FreeVars(rhs) {
			if reaches(fv.Name, target, seen) {
				return true
			}
		}
		return false
	}

	tryDef := func(name string, sort ast.Sort, rhs ast.Term) bool {
		if _, dup := defs[name]; dup {
			return false
		}
		if rhs.Sort() != sort {
			return false
		}
		for _, fv := range ast.FreeVars(rhs) {
			if reaches(fv.Name, name, map[string]bool{}) {
				return false
			}
		}
		defs[name] = rhs
		return true
	}

	for _, a := range asserts {
		if v, ok := a.(*ast.Var); ok && v.VSort == ast.SortBool {
			if tryDef(v.Name, ast.SortBool, ast.True) {
				continue
			}
		}
		if app, ok := a.(*ast.App); ok {
			if app.Op == ast.OpNot {
				if v, ok := app.Args[0].(*ast.Var); ok && v.VSort == ast.SortBool {
					if tryDef(v.Name, ast.SortBool, ast.False) {
						continue
					}
				}
			}
			if app.Op == ast.OpEq && len(app.Args) == 2 {
				if v, ok := app.Args[0].(*ast.Var); ok && tryDef(v.Name, v.VSort, app.Args[1]) {
					continue
				}
				if v, ok := app.Args[1].(*ast.Var); ok && tryDef(v.Name, v.VSort, app.Args[0]) {
					continue
				}
			}
		}
		rest = append(rest, a)
	}
	if len(defs) == 0 {
		return asserts
	}
	s.hit(pInlineApplied)

	// Resolve chains: the definition graph is acyclic by construction,
	// so iterated substitution reaches a fixpoint in ≤ |defs| rounds.
	for i := 0; i < len(defs)+1; i++ {
		changed := false
		for name, rhs := range defs {
			sub, err := ast.Substitute(rhs, defs)
			if err != nil {
				continue // quantified rhs capture: keep as is
			}
			if sub != rhs {
				defs[name] = sub
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Record substitutions (deterministic order) for model recovery.
	var defNames []string
	for name := range defs {
		defNames = append(defNames, name)
	}
	sortStrings(defNames)
	for _, name := range defNames {
		s.defLog = append(s.defLog, defEntry{name: name, rhs: defs[name]})
	}

	out := make([]ast.Term, 0, len(rest))
	for _, a := range rest {
		sub, err := ast.Substitute(a, defs)
		if err != nil {
			out = append(out, a)
			continue
		}
		out = append(out, s.rewriteCached(sub))
	}
	if len(out) == 0 {
		out = append(out, ast.True)
	}
	return out
}

// normalizeQuant pushes negations through the boolean structure (so
// negative universals become positive existentials) and then
// skolemizes positive existentials in place. Remaining quantifiers make
// the solver answer unknown.
func (s *Solver) normalizeQuant(t ast.Term) ast.Term {
	t = s.pushNeg(t, false)
	return s.skolemize(t, true)
}

// pushNeg pushes a pending negation down to atoms.
func (s *Solver) pushNeg(t ast.Term, neg bool) ast.Term {
	switch n := t.(type) {
	case *ast.Quant:
		s.hit(pQuantNegPush)
		forall := n.Forall
		if neg {
			if s.defect(DefQuantNegPush) {
				// Wrong: ¬(∃x φ) → ∃x ¬φ (quantifier kind kept).
				forall = n.Forall
			} else {
				forall = !n.Forall
			}
		}
		return ast.MustQuant(forall, n.Bound, s.pushNeg(n.Body, neg))
	case *ast.App:
		switch n.Op {
		case ast.OpNot:
			return s.pushNeg(n.Args[0], !neg)
		case ast.OpAnd, ast.OpOr:
			op := n.Op
			if neg {
				if op == ast.OpAnd {
					op = ast.OpOr
				} else {
					op = ast.OpAnd
				}
			}
			args := make([]ast.Term, len(n.Args))
			for i, a := range n.Args {
				args[i] = s.pushNeg(a, neg)
			}
			return ast.MustApp(op, args...)
		case ast.OpImplies:
			if len(n.Args) == 2 {
				// a ⇒ b ≡ ¬a ∨ b.
				lhs := s.pushNeg(n.Args[0], !neg)
				rhs := s.pushNeg(n.Args[1], neg)
				if neg {
					return ast.And(lhs, rhs)
				}
				return ast.Or(lhs, rhs)
			}
		case ast.OpLe, ast.OpLt, ast.OpGe, ast.OpGt:
			if neg && len(n.Args) == 2 {
				return ast.MustApp(negCompareOp(n.Op), n.Args...)
			}
		}
	}
	if neg {
		return ast.Not(t)
	}
	return t
}

func negCompareOp(op ast.Op) ast.Op {
	switch op {
	case ast.OpLe:
		return ast.OpGt
	case ast.OpLt:
		return ast.OpGe
	case ast.OpGe:
		return ast.OpLt
	default:
		return ast.OpLe
	}
}

// skolemize replaces positive existentials by fresh free variables.
// positive tracks polarity; quantifiers in negative or mixed positions
// are left untouched (and make the solve give up later).
func (s *Solver) skolemize(t ast.Term, positive bool) ast.Term {
	switch n := t.(type) {
	case *ast.Quant:
		if !n.Forall && positive {
			s.hit(pQuantSkolem)
			repl := map[string]ast.Term{}
			for _, b := range n.Bound {
				repl[b.Name] = ast.NewVar(s.freshName("sk!"+b.Name), b.Sort)
			}
			body, err := ast.Substitute(n.Body, repl)
			if err != nil {
				return t
			}
			return s.skolemize(body, positive)
		}
		return t
	case *ast.App:
		switch n.Op {
		case ast.OpNot:
			inner := s.skolemize(n.Args[0], !positive)
			if inner != n.Args[0] {
				return ast.Not(inner)
			}
			return t
		case ast.OpAnd, ast.OpOr:
			args := make([]ast.Term, len(n.Args))
			changed := false
			for i, a := range n.Args {
				args[i] = s.skolemize(a, positive)
				if args[i] != a {
					changed = true
				}
			}
			if changed {
				return ast.MustApp(n.Op, args...)
			}
			return t
		}
		return t
	default:
		return t
	}
}

func (s *Solver) freshName(base string) string {
	s.freshCounter++
	return fmt.Sprintf("%s!%d", base, s.freshCounter)
}

// liftIte hoists non-boolean if-then-else terms out of atoms: each
// (ite c a b) of sort Int/Real/String becomes a fresh variable t with
// the defining constraints (⇒ c (= t a)) and (⇒ ¬c (= t b)).
func (s *Solver) liftIte(asserts []ast.Term) []ast.Term {
	s.hit(pIteLiftEntry)
	var extra []ast.Term
	out := make([]ast.Term, len(asserts))
	for i, a := range asserts {
		out[i] = ast.Transform(a, func(t ast.Term) ast.Term {
			app, ok := t.(*ast.App)
			if !ok || app.Op != ast.OpIte || app.Sort() == ast.SortBool {
				return t
			}
			s.hit(pIteLifted)
			v := ast.NewVar(s.freshName("ite"), app.Sort())
			cond, then, els := app.Args[0], app.Args[1], app.Args[2]
			if containsOp(cond, ast.OpRealDiv) && s.defect(DefIteLiftSwap) {
				then, els = els, then // wrong: branches swapped
			}
			extra = append(extra,
				ast.Or(ast.Not(cond), ast.Eq(v, then)),
				ast.Or(cond, ast.Eq(v, els)))
			return v
		})
	}
	return append(out, extra...)
}
