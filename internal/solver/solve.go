package solver

import (
	"math/big"
	"slices"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/solver/arith"
	"repro/internal/solver/sat"
	"repro/internal/solver/strings"
)

func (s *Solver) solve(asserts []ast.Term) Outcome {
	s.hit(pSolveEntry)

	// Original variables for final model completion.
	origVars := map[string]ast.Sort{}
	for _, a := range asserts {
		for _, v := range ast.FreeVars(a) {
			origVars[v.Name] = v.VSort
		}
	}

	pre, defs, err := s.preprocessWithDefs(asserts)
	if err != nil {
		return Outcome{Result: ResUnknown, Reason: err.Error()}
	}

	// Trivial outcomes after preprocessing.
	allTrue := true
	for _, a := range pre {
		if bl, ok := a.(*ast.BoolLit); ok {
			if !bl.V {
				return Outcome{Result: ResUnsat}
			}
			continue
		}
		allTrue = false
	}
	if allTrue {
		model := s.assembleModel(eval.Model{}, nil, defs, origVars)
		return Outcome{Result: ResSat, Model: model}
	}

	ab, err := s.abstract(pre)
	if err != nil {
		return Outcome{Result: ResUnknown, Reason: err.Error()}
	}
	ab.sat.MaxConflicts = 200000
	ab.sat.Fuel = s.meter
	ab.sat.Telem = s.cfg.Telemetry

	sawUnknown := false
	unknownStreak := 0
	totalUnknowns := 0
	for iter := 0; iter < s.cfg.Limits.MaxBoolModels; iter++ {
		// The fuel deadline cuts the DPLL(T) loop even when the SAT core
		// finds its next model without spending (pure propagation).
		if s.meter.Exhausted() {
			return Outcome{Result: ResUnknown, Reason: "fuel exhausted"}
		}
		switch ab.sat.Solve() {
		case sat.Unsat:
			if sawUnknown {
				return Outcome{Result: ResUnknown, Reason: "incomplete theory reasoning"}
			}
			return Outcome{Result: ResUnsat}
		case sat.Unknown:
			return Outcome{Result: ResUnknown, Reason: "sat core budget exhausted"}
		}
		s.hit(pSolveSatCore)

		// Extract the theory literals and bool-var assignment implied by
		// the boolean model.
		var lits []ast.Term
		boolModel := eval.Model{}
		var blocking []sat.Lit
		for v := 1; v < len(ab.atomTerm); v++ {
			atom := ab.atomTerm[v]
			if atom == nil {
				continue // Tseitin auxiliary
			}
			val := ab.sat.Value(v)
			if val {
				blocking = append(blocking, -sat.Lit(v))
			} else {
				blocking = append(blocking, sat.Lit(v))
			}
			if bv, ok := atom.(*ast.Var); ok {
				boolModel[bv.Name] = eval.BoolV(val)
				continue
			}
			if val {
				lits = append(lits, atom)
			} else {
				lits = append(lits, ast.Not(atom))
			}
		}

		st, thModel := s.theoryCheck(lits)
		switch st {
		case arith.Sat:
			model := s.assembleModel(boolModel, thModel, defs, origVars)
			if s.certify(pre, model, boolModel, thModel) {
				return Outcome{Result: ResSat, Model: model}
			}
			s.hit(pSolveCertifyFail)
			sawUnknown = true
			unknownStreak++
			totalUnknowns++
		case arith.Unsat:
			// Theory-valid lemma: safe to block.
			unknownStreak = 0
		case arith.Unknown:
			sawUnknown = true
			unknownStreak++
			totalUnknowns++
		}
		// Persistent theory incompleteness: further boolean models are
		// unlikely to be decided either — cut the tail latency.
		if unknownStreak >= 8 || totalUnknowns >= 20 {
			return Outcome{Result: ResUnknown, Reason: "persistent theory incompleteness"}
		}
		s.hit(pSolveBlocked)
		if len(blocking) == 0 {
			// Purely propositional: the SAT model stands.
			model := s.assembleModel(boolModel, thModel, defs, origVars)
			if s.certify(pre, model, boolModel, thModel) {
				return Outcome{Result: ResSat, Model: model}
			}
			return Outcome{Result: ResUnknown, Reason: "certification failed"}
		}
		if !ab.sat.AddClause(blocking...) {
			if sawUnknown {
				return Outcome{Result: ResUnknown, Reason: "incomplete theory reasoning"}
			}
			return Outcome{Result: ResUnsat}
		}
	}
	return Outcome{Result: ResUnknown, Reason: "boolean model budget exhausted"}
}

// defEntry records one definitional inlining x := rhs, in creation
// order.
type defEntry struct {
	name string
	rhs  ast.Term
}

// preprocessWithDefs is preprocess plus the recorded definitional
// substitutions needed to extend models back to eliminated variables.
func (s *Solver) preprocessWithDefs(asserts []ast.Term) ([]ast.Term, []defEntry, error) {
	s.defLog = nil
	pre, err := s.preprocess(asserts)
	return pre, s.defLog, err
}

// theoryCheck decides a conjunction of theory literals.
func (s *Solver) theoryCheck(lits []ast.Term) (arith.Status, eval.Model) {
	// Synthetic internal fault for the harness's containment tests: a
	// panic that is NOT a *CrashError, i.e. our own solver failing
	// rather than a simulated SUT crash.
	if s.cfg.Has(DefFaultSyntheticPanic) && s.defect(DefFaultSyntheticPanic) {
		panic("theory dispatch: injected synthetic internal fault")
	}
	if len(lits) == 0 {
		return arith.Sat, eval.Model{}
	}
	hasString := false
	for _, l := range lits {
		ast.Walk(l, func(t ast.Term) bool {
			if t.Sort() == ast.SortString || t.Sort() == ast.SortRegLan {
				hasString = true
			}
			return !hasString
		})
		if hasString {
			break
		}
	}
	if hasString {
		return s.stringTheory(lits)
	}
	return s.arithTheory(lits)
}

func (s *Solver) stringTheory(lits []ast.Term) (arith.Status, eval.Model) {
	s.hit(pTheoryStrings)
	if s.cfg.Has(DefPerfRegexBlowup) && maxRegexDepth(lits) > 3 && s.defect(DefPerfRegexBlowup) {
		s.hit(pTheoryPerfRegex)
		s.meter.Drain() // simulated derivative blowup → deterministic timeout
		return arith.Unknown, nil
	}
	s.hit(pTheoryStringsLen)
	s.hit(pTheoryStringsSearch)
	prob := &strings.Problem{
		Lits:   lits,
		Limits: s.cfg.Limits.Strings,
		Defect: func(id string) bool { return s.defect(Defect(id)) },
		Fuel:   s.meter,
		Telem:  s.cfg.Telemetry,
	}
	if s.warm != nil {
		prob.Warm = s.warm.str
	}
	st, m := strings.Check(prob)
	switch st {
	case arith.Sat:
		s.hit(pStrSat)
	case arith.Unsat:
		s.hit(pStrUnsat)
	default:
		s.hit(pStrUnknown)
	}
	return st, m
}

func maxRegexDepth(lits []ast.Term) int {
	max := 0
	for _, l := range lits {
		ast.Walk(l, func(t ast.Term) bool {
			if t.Sort() == ast.SortRegLan {
				if d := ast.Depth(t); d > max {
					max = d
				}
				return false
			}
			return true
		})
	}
	return max
}

func (s *Solver) arithTheory(lits []ast.Term) (arith.Status, eval.Model) {
	abs := arith.NewAbstractor("\x00nl!")
	var atoms []arith.Atom
	var unconverted []ast.Term
	intVars := map[string]bool{}

	for _, l := range lits {
		atom, rel, ok := s.litToAtom(l, abs)
		if !ok {
			unconverted = append(unconverted, l)
			continue
		}
		atoms = append(atoms, arith.Atom{Expr: atom, Rel: rel})
	}
	varsOf := func() {
		for _, l := range lits {
			for _, v := range ast.FreeVars(l) {
				if v.VSort == ast.SortInt {
					intVars[v.Name] = true
				}
			}
		}
		for v := range abs.Terms() {
			if srt, ok := abs.Sort(v); ok && srt == ast.SortInt {
				intVars[v] = true
			}
		}
	}
	varsOf()

	nonlinear := abs.Len() > 0
	if nonlinear {
		s.hit(pTheoryArithNonlin)
	} else {
		s.hit(pTheoryArithLinear)
	}

	if s.cfg.Has(DefPerfBnBBlowup) && nonlinear && len(intVars) >= 4 && s.defect(DefPerfBnBBlowup) {
		s.hit(pTheoryPerfBnB)
		s.meter.Drain() // simulated branch-and-bound blowup → timeout
		return arith.Unknown, nil
	}

	// Injected hang defect: simplex cycling on wide linear integer
	// problems (the shape fusion produces by joining both ancestors'
	// variable sets). Draining the meter gives the signature of a
	// cycling pivot loop — a deterministic timeout — without the cost.
	if s.cfg.Has(DefHangSimplexCycle) && !nonlinear && len(intVars) >= 4 && s.defect(DefHangSimplexCycle) {
		s.meter.Drain()
		return arith.Unknown, nil
	}

	// Defect: bogus bound-conflict detection reports e ≤ c ∧ e ≥ c as
	// inconsistent.
	if s.cfg.Has(DefBoundConflictEq) && s.boundConflictDefect(atoms) {
		return arith.Unsat, nil
	}

	st, model := arith.Check(&arith.Problem{
		Atoms:      atoms,
		IntVars:    intVars,
		NodeBudget: s.cfg.Limits.ArithNodeBudget,
		Fuel:       s.meter,
		Telem:      s.cfg.Telemetry,
	})
	switch st {
	case arith.Unsat:
		// The abstraction treats nonlinear terms as free variables, so
		// its unsat is an over-approximation proof: valid either way.
		s.hit(pArithUnsat)
		return arith.Unsat, nil
	case arith.Unknown:
		s.hit(pArithUnknown)
		return arith.Unknown, nil
	}

	// Candidate model: check it against the real (nonlinear) semantics.
	s.hit(pTheoryArithSample)
	em := s.toEvalModel(model, lits)
	if s.litsHold(lits, em) {
		s.hit(pArithSat)
		return arith.Sat, em
	}
	if len(unconverted) > 0 {
		s.hit(pArithForeign)
	}
	if !nonlinear && len(unconverted) == 0 {
		// A purely linear model that fails evaluation indicates an
		// internal inconsistency; report unknown rather than guess.
		return arith.Unknown, nil
	}
	// Nonlinear refinement: try interval refutation, then a small
	// deterministic sample grid for unvalued variables.
	if arith.RefuteIntervals(lits, intVarsOf(lits), 8, s.meter, s.cfg.Telemetry) {
		s.hit(pTheoryArithRefute)
		return arith.Unsat, nil
	}
	if em2, ok := s.sampleGrid(lits, em); ok {
		s.hit(pArithGrid)
		s.hit(pArithSat)
		return arith.Sat, em2
	}
	s.hit(pArithUnknown)
	return arith.Unknown, nil
}

// litToAtom converts a literal to a linear atom (with nonlinear
// abstraction).
func (s *Solver) litToAtom(l ast.Term, abs *arith.Abstractor) (*arith.LinExpr, arith.Rel, bool) {
	t := l
	polarity := true
	//golint:allow fuel-charge — strips a finite chain of not-wrappers; the term strictly shrinks every iteration
	for {
		app, ok := t.(*ast.App)
		if !ok {
			return nil, 0, false
		}
		if app.Op != ast.OpNot {
			break
		}
		t = app.Args[0]
		polarity = !polarity
	}
	app, ok := t.(*ast.App)
	if !ok {
		return nil, 0, false
	}
	var rel arith.Rel
	switch app.Op {
	case ast.OpLe:
		rel = arith.RelLe
	case ast.OpLt:
		rel = arith.RelLt
	case ast.OpGe:
		rel = arith.RelGe
	case ast.OpGt:
		rel = arith.RelGt
	case ast.OpEq:
		rel = arith.RelEq
	case ast.OpDistinct:
		rel = arith.RelNe
	default:
		return nil, 0, false
	}
	if len(app.Args) != 2 || !app.Args[0].Sort().IsArith() {
		return nil, 0, false
	}
	if !polarity {
		rel = rel.Negate()
	}
	lhs, err := arith.LinearizeDiff(app.Args[0], app.Args[1], abs)
	if err != nil {
		return nil, 0, false
	}
	return lhs, rel, true
}

func (s *Solver) boundConflictDefect(atoms []arith.Atom) bool {
	seen := map[string]arith.Rel{}
	for _, a := range atoms {
		if a.Rel != arith.RelLe && a.Rel != arith.RelGe {
			continue
		}
		k := a.Expr.String()
		if prev, ok := seen[k]; ok && prev != a.Rel {
			// e ≤ 0 together with e ≥ 0: satisfiable with e = 0, but the
			// defective conflict check calls it inconsistent.
			return true
		}
		seen[k] = a.Rel
	}
	return false
}

// toEvalModel converts an arith model (rationals by name) to an eval
// model typed by the literals' variable sorts, defaulting unvalued
// variables.
func (s *Solver) toEvalModel(m map[string]*big.Rat, lits []ast.Term) eval.Model {
	sorts := map[string]ast.Sort{}
	for _, l := range lits {
		for _, v := range ast.FreeVars(l) {
			sorts[v.Name] = v.VSort
		}
	}
	out := eval.Model{}
	for name, srt := range sorts {
		if val, ok := m[name]; ok {
			if srt == ast.SortInt {
				if !val.IsInt() {
					out[name] = eval.IntV{V: new(big.Int).Quo(val.Num(), val.Denom())}
				} else {
					out[name] = eval.IntV{V: new(big.Int).Set(val.Num())}
				}
			} else {
				out[name] = eval.RealV{V: val}
			}
		} else {
			out[name] = eval.DefaultValue(srt)
		}
	}
	return out
}

func (s *Solver) litsHold(lits []ast.Term, m eval.Model) bool {
	for _, l := range lits {
		ok, err := eval.Bool(l, m)
		if err != nil || !ok {
			return false
		}
	}
	return true
}

func intVarsOf(lits []ast.Term) map[string]bool {
	out := map[string]bool{}
	for _, l := range lits {
		for _, v := range ast.FreeVars(l) {
			if v.VSort == ast.SortInt {
				out[v.Name] = true
			}
		}
	}
	return out
}

// sampleGrid perturbs up to two variables of a failed candidate model
// over a small deterministic grid, looking for a witness of the
// nonlinear conjunction.
func (s *Solver) sampleGrid(lits []ast.Term, base eval.Model) (eval.Model, bool) {
	var names []string
	for name, v := range base {
		if v.Sort().IsArith() {
			names = append(names, name)
		}
	}
	if len(names) == 0 || len(names) > 6 {
		return nil, false
	}
	sortStrings(names)
	grid := []*big.Rat{
		big.NewRat(0, 1), big.NewRat(1, 1), big.NewRat(-1, 1),
		big.NewRat(2, 1), big.NewRat(1, 2), big.NewRat(-2, 1),
	}
	set := func(m eval.Model, name string, v *big.Rat) {
		if m[name].Sort() == ast.SortInt {
			if !v.IsInt() {
				return
			}
			m[name] = eval.IntV{V: new(big.Int).Set(v.Num())}
		} else {
			m[name] = eval.RealV{V: v}
		}
	}
	// Single-variable perturbations.
	for _, name := range names {
		for _, g := range grid {
			m := base.Clone()
			set(m, name, g)
			if s.litsHold(lits, m) {
				return m, true
			}
		}
	}
	// Pairwise perturbations for small problems.
	if len(names) <= 3 {
		for i := 0; i < len(names); i++ {
			for j := i + 1; j < len(names); j++ {
				for _, g1 := range grid {
					for _, g2 := range grid {
						m := base.Clone()
						set(m, names[i], g1)
						set(m, names[j], g2)
						if s.litsHold(lits, m) {
							return m, true
						}
					}
				}
			}
		}
	}
	return nil, false
}

func sortStrings(ss []string) { slices.Sort(ss) }

// assembleModel merges the boolean and theory models, replays the
// definitional substitutions (latest first) to recover eliminated
// variables, and default-completes every original variable.
func (s *Solver) assembleModel(boolModel, thModel eval.Model, defs []defEntry, origVars map[string]ast.Sort) eval.Model {
	model := eval.Model{}
	for k, v := range thModel {
		model[k] = v
	}
	for k, v := range boolModel {
		model[k] = v
	}
	for i := len(defs) - 1; i >= 0; i-- {
		d := defs[i]
		if _, have := model[d.name]; have {
			continue
		}
		// Default-complete the rhs's variables before evaluating.
		for _, v := range ast.FreeVars(d.rhs) {
			if _, ok := model[v.Name]; !ok {
				model[v.Name] = eval.DefaultValue(v.VSort)
			}
		}
		if val, err := eval.Term(d.rhs, model); err == nil {
			model[d.name] = val
		}
	}
	for name, srt := range origVars {
		if _, ok := model[name]; !ok {
			model[name] = eval.DefaultValue(srt)
		}
	}
	return model
}

// certify checks the assembled model against the preprocessed asserts.
// Certification runs after the rewriter, so rewriter defects — like the
// real bugs the paper found — are not caught here by design.
func (s *Solver) certify(pre []ast.Term, model eval.Model, boolModel, thModel eval.Model) bool {
	s.hit(pSolveCertify)
	full := model.Clone()
	for k, v := range thModel {
		full[k] = v
	}
	for k, v := range boolModel {
		full[k] = v
	}
	for _, a := range pre {
		// Complete any residual variables (Tseitin-free aux like lifted
		// ite variables are in thModel; anything else defaults).
		for _, v := range ast.FreeVars(a) {
			if _, ok := full[v.Name]; !ok {
				full[v.Name] = eval.DefaultValue(v.VSort)
			}
		}
		ok, err := eval.Bool(a, full)
		if err != nil || !ok {
			return false
		}
	}
	return true
}
