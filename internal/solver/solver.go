// Package solver implements the reference SMT solver: a rewriting
// front end, if-then-else lifting, quantifier normalization with
// positive-existential skolemization, boolean (Tseitin) abstraction
// over a CDCL SAT core, and lazy theory checking through the linear
// arithmetic and string procedures. The solver certifies every sat
// answer by evaluating the model against the (rewritten) formula, and
// reports unsat only from theory-valid lemmas — so the *defect-free*
// configuration is sound by construction, while configured defects
// reproduce the bug classes the paper found in Z3 and CVC4.
package solver

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/coverage"
	"repro/internal/eval"
	"repro/internal/fuel"
	"repro/internal/smtlib"
	"repro/internal/solver/strings"
	"repro/internal/telemetry"
)

// Solver-level metrics: one solves increment per Solve call, and the
// meter's total charge added when the call ends — through a defer, so
// crash-defect panics still account the work performed before the
// unwind.
var (
	cSolves    = telemetry.NewCounter("yy_solves_total", "solver Solve calls")
	cFuelSpent = telemetry.NewCounter(MetricSolveFuelSpent, "fuel steps consumed across all solves")
)

// MetricSolveFuelSpent names the fuel-consumption counter; the harness
// reads it out of per-task counter deltas for traces and histograms.
const MetricSolveFuelSpent = "yy_solve_fuel_spent_total"

// Result is the solver's answer.
type Result int8

const (
	ResUnknown Result = iota
	ResSat
	ResUnsat
	// ResTimeout means the unified fuel deadline (Limits.Fuel) expired
	// before the solver could certify an answer — the deterministic
	// analogue of the paper's wall-clock solver timeouts.
	ResTimeout
)

func (r Result) String() string {
	switch r {
	case ResSat:
		return "sat"
	case ResUnsat:
		return "unsat"
	case ResTimeout:
		return "timeout"
	default:
		return "unknown"
	}
}

// Outcome is the full result of a solve call.
type Outcome struct {
	Result Result
	Model  eval.Model // set when Result == ResSat
	Reason string     // set when Result == ResUnknown
	// DefectsFired lists the injected-defect sites whose code path ran
	// during this solve — the triage signal the harness uses to
	// deduplicate bug reports (standing in for the paper's root-cause
	// analysis on the solver's issue tracker).
	DefectsFired []Defect
	// FuelSpent is the number of fuel steps the solve consumed — the
	// step-based effort measure recorded in telemetry and traces.
	FuelSpent int64
}

// Defect identifies one injected bug site. The catalogue with metadata
// (solver under test, bug type, logic, affected releases) lives in
// internal/bugdb; this package implements the sites.
type Defect string

// Rewriter defects (wrong transformations; can corrupt either answer).
const (
	DefStrToIntEmpty      Defect = "rw-str-to-int-empty"
	DefStrReplaceEmptyPat Defect = "rw-str-replace-empty-pattern"
	DefStrAtOutOfRange    Defect = "rw-str-at-out-of-range"
	DefStrSubstrNegLen    Defect = "rw-str-substr-neg-len"
	DefStrLenConcatDrop   Defect = "rw-str-len-concat-drop"
	DefStrSuffixEmpty     Defect = "rw-str-suffix-empty"
	DefStrContainsSelf    Defect = "rw-str-contains-self"
	DefIntDivNegRound     Defect = "rw-int-div-neg-round"
	DefModZero            Defect = "rw-mod-zero"
	DefRealDivCancel      Defect = "rw-real-div-cancel"
	DefMulSignFold        Defect = "rw-mul-sign-fold"
	DefIteLiftSwap        Defect = "rw-ite-lift-swap"
	DefQuantNegPush       Defect = "rw-quant-neg-push"
	DefDistinctPairDrop   Defect = "rw-distinct-pair-drop"
	DefGeZeroStrengthen   Defect = "rw-ge-zero-strengthen"
	DefAbsNegFold         Defect = "rw-abs-neg-fold"
	DefConcatAssocDrop    Defect = "rw-concat-assoc-drop"
	DefIndexOfEmptyNeedle Defect = "rw-indexof-empty-needle"
	// The fusion-pattern cancellation family: these sites guard the
	// rewrites that fused formulas exercise through their inverted
	// fusion constraints (x = (x·y) div y, y = replace(x++y, x, ""), …).
	DefIntDivMulCancel    Defect = "rw-int-div-mul-cancel"
	DefSubstrConcatPrefix Defect = "rw-substr-concat-prefix"
	DefReplaceConcatDrop  Defect = "rw-replace-concat-drop"
	// Inversion-shape defects: fire on the term shapes SAT fusion's
	// inversion substitution introduces (replace(z, x, "") with variable
	// operands; comparisons over div terms), over-constraining the
	// formula — the wrong-unsat answers the paper saw on φsat.
	DefReplaceVarNoop Defect = "rw-replace-var-noop"
	DefDivMulThrough  Defect = "rw-div-mul-through"
	// DefLeGuardCollapse drops a (distinct a b) conjunct sitting next to
	// a non-strict bound over the same pair — the shape the mutation
	// engine's <→≤-with-guard rewrite builds and plain fusion never
	// does, so only mutation campaigns reach this site.
	DefLeGuardCollapse Defect = "rw-le-guard-collapse"
)

// Model-corruption defects (invalid models behind a correct sat
// verdict). These sites run in Solve after the model has been
// certified against the rewritten formula, simulating model
// finalization/printing bugs: the verdict stays right, so neither the
// solver's own certification nor a verdict-only equisatisfiability
// oracle can see them — only harness-side model validation catches
// them.
const (
	DefModelStaleSimplex   Defect = "md-stale-simplex-assignment"
	DefModelStrLenTruncate Defect = "md-strlen-witness-truncate"
	DefModelRealFloor      Defect = "md-real-model-floor"
)

// Theory defects (wrong inferences; corrupt unsat answers).
const (
	DefLenAbsPrefixFlip  Defect = "th-len-abs-prefix-flip"
	DefRegexMinLenStrict Defect = "th-regex-min-len-strict"
	DefBoundConflictEq   Defect = "th-bound-conflict-eq"
)

// Crash defects (panics on specific shapes).
const (
	DefCrashDeepNonlinear Defect = "cr-deep-nonlinear-rewrite"
	DefCrashSelfDivision  Defect = "cr-self-division"
	DefCrashRangeBounds   Defect = "cr-range-bounds"
	DefCrashBigSubstr     Defect = "cr-big-substr-index"
)

// Performance defects (resource exhaustion → timeout). All four sites
// simulate their blowup by draining the solve's fuel meter: the
// observable signature is identical to a genuine non-terminating
// search — a deterministic ResTimeout — without the wall-clock cost.
const (
	DefPerfRegexBlowup  Defect = "pf-regex-derivative-blowup"
	DefPerfBnBBlowup    Defect = "pf-branch-and-bound-blowup"
	DefHangStringsDFS   Defect = "pf-strings-dfs-hang"
	DefHangSimplexCycle Defect = "pf-simplex-cycle-hang"
)

// DefFaultSyntheticPanic is a fault-injection hook for the harness's
// own containment tests: when enabled, the solver panics with a plain
// error (not a *CrashError) on its first theory check, simulating a
// bug in our infrastructure rather than in a solver under test. It is
// deliberately absent from AllDefects and the bugdb catalogue — it is
// not a defect of the simulated solvers.
const DefFaultSyntheticPanic Defect = "if-synthetic-panic"

// AllDefects lists every implemented defect site.
var AllDefects = []Defect{
	DefStrToIntEmpty, DefStrReplaceEmptyPat, DefStrAtOutOfRange,
	DefStrSubstrNegLen, DefStrLenConcatDrop, DefStrSuffixEmpty,
	DefStrContainsSelf, DefIntDivNegRound, DefModZero, DefRealDivCancel,
	DefMulSignFold, DefIteLiftSwap, DefQuantNegPush, DefDistinctPairDrop,
	DefGeZeroStrengthen, DefAbsNegFold, DefConcatAssocDrop,
	DefIndexOfEmptyNeedle, DefIntDivMulCancel, DefSubstrConcatPrefix,
	DefReplaceConcatDrop, DefReplaceVarNoop, DefDivMulThrough,
	DefLeGuardCollapse,
	DefModelStaleSimplex, DefModelStrLenTruncate, DefModelRealFloor,
	DefLenAbsPrefixFlip, DefRegexMinLenStrict, DefBoundConflictEq,
	DefCrashDeepNonlinear, DefCrashSelfDivision, DefCrashRangeBounds,
	DefCrashBigSubstr,
	DefPerfRegexBlowup, DefPerfBnBBlowup,
	DefHangStringsDFS, DefHangSimplexCycle,
}

// Limits bounds solver effort (counters, not wall-clock, so runs are
// deterministic).
type Limits struct {
	// MaxBoolModels bounds DPLL(T) boolean-model iterations.
	MaxBoolModels int
	// ArithNodeBudget bounds branch-and-bound nodes per theory check.
	ArithNodeBudget int
	// Strings bounds the string search.
	Strings strings.Limits
	// Fuel is the unified step budget for one Solve call: every engine
	// — CDCL conflicts and decisions, simplex pivots, branch-and-bound
	// nodes, interval-refinement passes, strings DFS nodes, and regex
	// derivative constructions — spends from one meter, and exhaustion
	// turns an uncertified answer into ResTimeout. Zero or negative
	// means unlimited (the pre-fuel behaviour).
	Fuel int64
}

// DefaultFuel is the per-solve step budget of DefaultLimits: far above
// what any generated or fused formula needs under the per-theory
// budgets (measured in the low hundreds of thousands), yet finite, so
// every default-configured solve provably halts.
const DefaultFuel int64 = 10_000_000

// DefaultLimits returns the limits used throughout the evaluation.
func DefaultLimits() Limits {
	return Limits{
		MaxBoolModels:   150,
		ArithNodeBudget: 300,
		Strings:         strings.DefaultLimits(),
		Fuel:            DefaultFuel,
	}
}

// Config configures a solver instance.
type Config struct {
	// Defects enables injected bug sites (nil = reference behaviour).
	Defects map[Defect]bool
	// Coverage records probe hits when non-nil.
	Coverage *coverage.Tracker
	// Telemetry records step counters (CDCL conflicts, simplex pivots,
	// DFS nodes, …) when non-nil. Like the fuel meter, a tracker is not
	// safe for concurrent use: one per solver instance.
	Telemetry *telemetry.Tracker
	Limits    Limits
}

// Has reports whether a defect is enabled.
func (c *Config) Has(d Defect) bool { return c.Defects[d] }

// Solver is a configured solver instance. It is safe to reuse
// sequentially; create one per goroutine for parallel use.
type Solver struct {
	cfg    Config
	fired  map[Defect]bool
	defLog []defEntry // definitional inlinings recorded by preprocess
	// meter is the per-Solve fuel meter; fresh per call, so solver
	// reuse across tasks carries no deadline state.
	meter *fuel.Meter
	// freshCounter numbers skolem/ite-lift variables. Per-solver (not
	// package-global) so parallel campaigns neither race on it nor let
	// shard interleaving leak into generated names.
	freshCounter int
	// warm holds the semantically transparent caches reused across
	// Solve calls (see warm.go); ResetWarm drops them.
	warm *warmState
	// inc is the live incremental session (see incremental.go); nil
	// until the first Push/Assert/Check opens one.
	inc *incState
}

// New returns a solver with the given configuration. Zero limits are
// replaced by defaults.
func New(cfg Config) *Solver {
	if cfg.Limits.MaxBoolModels == 0 {
		cfg.Limits = DefaultLimits()
	}
	return &Solver{cfg: cfg, warm: newWarmState()}
}

// NewReference returns the defect-free reference solver.
func NewReference() *Solver { return New(Config{}) }

// hit records a coverage probe.
func (s *Solver) hit(p *coverage.Probe) { s.cfg.Coverage.Hit(p) }

// defect reports whether a defect site is active, recording it as fired
// when it is. Call exactly at the site's trigger point.
func (s *Solver) defect(d Defect) bool {
	if !s.cfg.Has(d) {
		return false
	}
	if s.fired == nil {
		s.fired = map[Defect]bool{}
	}
	s.fired[d] = true
	return true
}

// CrashError is the panic value raised by crash-defect sites; the
// harness recovers it and classifies the result as a crash.
type CrashError struct {
	Site Defect
	Msg  string
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("internal error at %s: %s", e.Site, e.Msg)
}

func (s *Solver) crash(d Defect, msg string) {
	panic(&CrashError{Site: d, Msg: msg})
}

// SolveScript solves the conjunction of a script's asserts.
func (s *Solver) SolveScript(sc *smtlib.Script) Outcome {
	return s.Solve(sc.Asserts())
}

// Solve decides the conjunction of the given boolean terms. Every call
// runs under a fresh fuel meter (Limits.Fuel); when the meter expires
// before an answer is certified, the outcome is ResTimeout. Sat and
// unsat answers reached before exhaustion stand — they are certified
// (or theory-valid) regardless of how much fuel remains.
func (s *Solver) Solve(asserts []ast.Term) Outcome {
	s.fired = map[Defect]bool{}
	s.meter = fuel.NewMeter(s.cfg.Limits.Fuel)
	// Reset per-solve naming state: a reused solver must produce the
	// same fresh names — and so the same per-task telemetry — whatever
	// it solved before.
	s.freshCounter = 0
	s.cfg.Telemetry.Inc(cSolves)
	// Deferred so crash-defect panics still account the steps performed
	// before the unwind.
	defer func() { s.cfg.Telemetry.Add(cFuelSpent, s.meter.Spent()) }()
	out := s.solve(asserts)
	out.FuelSpent = s.meter.Spent()
	if out.Result == ResUnknown && s.meter.Exhausted() {
		out.Result = ResTimeout
		out.Reason = "fuel exhausted"
	}
	if out.Result == ResSat {
		s.corruptModel(out.Model)
	}
	switch out.Result {
	case ResSat:
		s.hit(pSolveSat)
	case ResUnsat:
		s.hit(pSolveUnsat)
	default:
		s.hit(pSolveUnknown)
	}
	for d := range s.fired {
		out.DefectsFired = append(out.DefectsFired, d)
	}
	sortDefects(out.DefectsFired)
	return out
}

func sortDefects(ds []Defect) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j-1] > ds[j]; j-- {
			ds[j-1], ds[j] = ds[j], ds[j-1]
		}
	}
}
