// Package benchmarks holds the benchmark bodies shared between the
// repository's `go test -bench` suite (bench_test.go) and cmd/bench,
// the benchmark-regression harness. cmd/bench drives these through
// testing.Benchmark to produce BENCH_<n>.json perf-trajectory files;
// keeping one body per workload guarantees both paths measure the same
// thing.
package benchmarks

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/bugdb"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/harness"
	"repro/internal/smtlib"
	"repro/internal/solver"
	"repro/internal/telemetry"
)

// ThroughputSingleThreaded measures end-to-end fused tests per second
// in single-threaded mode — the paper reports 41.5 tests/s. ns/op here
// is the cost of ONE fused test (generate pair + fuse + solve), so
// tests/s = 1e9 / (ns/op).
func ThroughputSingleThreaded(b *testing.B) {
	b.ReportAllocs()
	g, err := gen.New(gen.QFLIA, 3)
	if err != nil {
		b.Fatal(err)
	}
	var sat, unsat []*core.Seed
	for i := 0; i < 10; i++ {
		sat = append(sat, g.Sat())
		unsat = append(unsat, g.Unsat())
	}
	sut := bugdb.NewTrunkSolver(bugdb.Z3Sim, nil)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool := sat
		if i%2 == 1 {
			pool = unsat
		}
		fused, err := core.Fuse(pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))], rng, core.Options{})
		if err != nil {
			continue
		}
		harness.RunSolver(sut, fused.Script)
	}
}

// ThroughputInstrumented is ThroughputSingleThreaded with a telemetry
// tracker attached to the solver, so every fuel charge point also
// increments a counter. cmd/bench pairs it with the plain benchmark to
// derive the instrumentation overhead and gates the difference.
func ThroughputInstrumented(b *testing.B) {
	b.ReportAllocs()
	g, err := gen.New(gen.QFLIA, 3)
	if err != nil {
		b.Fatal(err)
	}
	var sat, unsat []*core.Seed
	for i := 0; i < 10; i++ {
		sat = append(sat, g.Sat())
		unsat = append(unsat, g.Unsat())
	}
	defects, err := bugdb.DefectsIn(bugdb.Z3Sim, "trunk")
	if err != nil {
		b.Fatal(err)
	}
	tr := telemetry.NewTracker()
	sut := solver.New(solver.Config{Defects: defects, Telemetry: tr})
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool := sat
		if i%2 == 1 {
			pool = unsat
		}
		fused, err := core.Fuse(pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))], rng, core.Options{})
		if err != nil {
			continue
		}
		harness.RunSolver(sut, fused.Script)
	}
	b.StopTimer()
	if tr.Snapshot().Counter("yy_solves_total") == 0 {
		b.Fatal("tracker recorded no solves")
	}
}

// Fig8Campaign runs the (scaled) main bug-finding campaign of Figures
// 8a–8c against both trunk SUTs.
func Fig8Campaign(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f, err := harness.ExperimentFig8(harness.CampaignBudget{
			Iterations: 40, SeedPool: 10, Seed: int64(i + 1), Threads: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(f.Z3.Bugs) == 0 {
			b.Fatal("campaign found no z3sim bugs")
		}
	}
}

// FusionOnly isolates the fusion engine's cost (Algorithm 2 without the
// solver).
func FusionOnly(b *testing.B) {
	b.ReportAllocs()
	g, err := gen.New(gen.QFNRA, 5)
	if err != nil {
		b.Fatal(err)
	}
	var seeds []*core.Seed
	for i := 0; i < 10; i++ {
		seeds = append(seeds, g.Sat())
	}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Fuse(seeds[i%10], seeds[(i+3)%10], rng, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// SolverReference measures the reference solver on a fixed mix of
// generated formulas across logics.
func SolverReference(b *testing.B) {
	b.ReportAllocs()
	var scripts []*smtlib.Script
	for _, logic := range []gen.Logic{gen.QFLIA, gen.QFLRA, gen.QFNRA, gen.QFS} {
		g, err := gen.New(logic, 9)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			scripts = append(scripts, g.Sat().Script, g.Unsat().Script)
		}
	}
	s := solver.NewReference()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		harness.RunSolver(s, scripts[i%len(scripts)])
	}
}

// SolverIncremental measures the live push/pop path: a base script is
// asserted once, and each op re-checks one of a family of related
// suffixes through Push/Assert/Check/Pop on the SAME solver — the warm
// workload cold re-solving pays full price for. Compare its ns/op
// against SolverIncrementalCold, which decides the identical
// base+suffix conjunctions with a monolithic Solve per op.
func SolverIncremental(b *testing.B) {
	b.ReportAllocs()
	base, suffixes := incrementalWorkload(b)
	s := solver.NewReference()
	if err := s.Assert(base...); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Push()
		if err := s.Assert(suffixes[i%len(suffixes)]...); err != nil {
			b.Fatal(err)
		}
		if out := s.Check(); out.Result == solver.ResUnknown || out.Result == solver.ResTimeout {
			b.Fatalf("incremental check: %v (%s)", out.Result, out.Reason)
		}
		s.Pop()
	}
}

// SolverIncrementalCold is the control for SolverIncremental: the same
// base+suffix conjunctions, each decided by a from-scratch Solve on a
// fresh solver. The incremental/cold ops-per-sec ratio is the measured
// value of push/pop warm-state reuse.
func SolverIncrementalCold(b *testing.B) {
	b.ReportAllocs()
	base, suffixes := incrementalWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := solver.NewReference()
		asserts := append(append([]ast.Term{}, base...), suffixes[i%len(suffixes)]...)
		if out := s.Solve(asserts); out.Result == solver.ResUnknown || out.Result == solver.ResTimeout {
			b.Fatalf("cold solve: %v (%s)", out.Result, out.Reason)
		}
	}
}

// incrementalWorkload builds the shared base/suffix corpus both
// incremental benchmarks decide: one generated script as the common
// prefix and a family of generated scripts as per-op suffixes.
func incrementalWorkload(b *testing.B) ([]ast.Term, [][]ast.Term) {
	b.Helper()
	g, err := gen.New(gen.QFLIA, 7)
	if err != nil {
		b.Fatal(err)
	}
	base := g.Sat().Script.Asserts()
	var suffixes [][]ast.Term
	for i := 0; i < 8; i++ {
		suffixes = append(suffixes, g.Sat().Script.Asserts())
	}
	return base, suffixes
}

// ParsePrint measures the SMT-LIB front end round trip.
func ParsePrint(b *testing.B) {
	b.ReportAllocs()
	g, err := gen.New(gen.QFSLIA, 13)
	if err != nil {
		b.Fatal(err)
	}
	src := smtlib.Print(g.Sat().Script)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc, err := smtlib.ParseScript(src)
		if err != nil {
			b.Fatal(err)
		}
		if smtlib.Print(sc) == "" {
			b.Fatal("empty print")
		}
	}
}

// calibSink keeps the compiler from eliding the calibration workload.
var calibSink uint64

// Calibrate is a fixed, input-independent workload — xorshift-filled
// 1 KiB allocations plus a byte-sum pass — that exercises the CPU, the
// allocator, and memory bandwidth in rough proportion to the solver
// benchmarks. cmd/bench records its ns/op alongside every report and
// uses the baseline/current ratio to normalize throughput comparisons:
// on a shared host the machine's effective speed drifts between runs,
// and this workload drifts with it while real code regressions do not.
func Calibrate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		x := uint64(88172645463325252)
		var sum uint64
		for j := 0; j < 2048; j++ {
			buf := make([]byte, 1024)
			for k := range buf {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				buf[k] = byte(x)
			}
			for _, c := range buf {
				sum += uint64(c)
			}
		}
		calibSink = sum
	}
}

// Registry maps the stable benchmark names recorded in BENCH_<n>.json
// to their bodies. Fast reports whether the benchmark is cheap enough
// for CI short mode (seconds, not half a minute, per op).
type Entry struct {
	Name string
	Fast bool
	Fn   func(*testing.B)
}

// All lists the registry in fixed report order.
var All = []Entry{
	{Name: "ThroughputSingleThreaded", Fast: true, Fn: ThroughputSingleThreaded},
	{Name: "ThroughputInstrumented", Fast: true, Fn: ThroughputInstrumented},
	{Name: "FusionOnly", Fast: true, Fn: FusionOnly},
	{Name: "SolverReference", Fast: true, Fn: SolverReference},
	{Name: "SolverIncremental", Fast: true, Fn: SolverIncremental},
	{Name: "SolverIncrementalCold", Fast: true, Fn: SolverIncrementalCold},
	{Name: "ParsePrint", Fast: true, Fn: ParsePrint},
	{Name: "Fig8Campaign", Fast: false, Fn: Fig8Campaign},
}
