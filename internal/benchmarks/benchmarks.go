// Package benchmarks holds the benchmark bodies shared between the
// repository's `go test -bench` suite (bench_test.go) and cmd/bench,
// the benchmark-regression harness. cmd/bench drives these through
// testing.Benchmark to produce BENCH_<n>.json perf-trajectory files;
// keeping one body per workload guarantees both paths measure the same
// thing.
package benchmarks

import (
	"math/rand"
	"testing"

	"repro/internal/bugdb"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/harness"
	"repro/internal/smtlib"
	"repro/internal/solver"
	"repro/internal/telemetry"
)

// ThroughputSingleThreaded measures end-to-end fused tests per second
// in single-threaded mode — the paper reports 41.5 tests/s. ns/op here
// is the cost of ONE fused test (generate pair + fuse + solve), so
// tests/s = 1e9 / (ns/op).
func ThroughputSingleThreaded(b *testing.B) {
	b.ReportAllocs()
	g, err := gen.New(gen.QFLIA, 3)
	if err != nil {
		b.Fatal(err)
	}
	var sat, unsat []*core.Seed
	for i := 0; i < 10; i++ {
		sat = append(sat, g.Sat())
		unsat = append(unsat, g.Unsat())
	}
	sut := bugdb.NewTrunkSolver(bugdb.Z3Sim, nil)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool := sat
		if i%2 == 1 {
			pool = unsat
		}
		fused, err := core.Fuse(pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))], rng, core.Options{})
		if err != nil {
			continue
		}
		harness.RunSolver(sut, fused.Script)
	}
}

// ThroughputInstrumented is ThroughputSingleThreaded with a telemetry
// tracker attached to the solver, so every fuel charge point also
// increments a counter. cmd/bench pairs it with the plain benchmark to
// derive the instrumentation overhead and gates the difference.
func ThroughputInstrumented(b *testing.B) {
	b.ReportAllocs()
	g, err := gen.New(gen.QFLIA, 3)
	if err != nil {
		b.Fatal(err)
	}
	var sat, unsat []*core.Seed
	for i := 0; i < 10; i++ {
		sat = append(sat, g.Sat())
		unsat = append(unsat, g.Unsat())
	}
	defects, err := bugdb.DefectsIn(bugdb.Z3Sim, "trunk")
	if err != nil {
		b.Fatal(err)
	}
	tr := telemetry.NewTracker()
	sut := solver.New(solver.Config{Defects: defects, Telemetry: tr})
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool := sat
		if i%2 == 1 {
			pool = unsat
		}
		fused, err := core.Fuse(pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))], rng, core.Options{})
		if err != nil {
			continue
		}
		harness.RunSolver(sut, fused.Script)
	}
	b.StopTimer()
	if tr.Snapshot().Counter("yy_solves_total") == 0 {
		b.Fatal("tracker recorded no solves")
	}
}

// Fig8Campaign runs the (scaled) main bug-finding campaign of Figures
// 8a–8c against both trunk SUTs.
func Fig8Campaign(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f, err := harness.ExperimentFig8(harness.CampaignBudget{
			Iterations: 40, SeedPool: 10, Seed: int64(i + 1), Threads: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(f.Z3.Bugs) == 0 {
			b.Fatal("campaign found no z3sim bugs")
		}
	}
}

// FusionOnly isolates the fusion engine's cost (Algorithm 2 without the
// solver).
func FusionOnly(b *testing.B) {
	b.ReportAllocs()
	g, err := gen.New(gen.QFNRA, 5)
	if err != nil {
		b.Fatal(err)
	}
	var seeds []*core.Seed
	for i := 0; i < 10; i++ {
		seeds = append(seeds, g.Sat())
	}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Fuse(seeds[i%10], seeds[(i+3)%10], rng, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// SolverReference measures the reference solver on a fixed mix of
// generated formulas across logics.
func SolverReference(b *testing.B) {
	b.ReportAllocs()
	var scripts []*smtlib.Script
	for _, logic := range []gen.Logic{gen.QFLIA, gen.QFLRA, gen.QFNRA, gen.QFS} {
		g, err := gen.New(logic, 9)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			scripts = append(scripts, g.Sat().Script, g.Unsat().Script)
		}
	}
	s := solver.NewReference()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		harness.RunSolver(s, scripts[i%len(scripts)])
	}
}

// ParsePrint measures the SMT-LIB front end round trip.
func ParsePrint(b *testing.B) {
	b.ReportAllocs()
	g, err := gen.New(gen.QFSLIA, 13)
	if err != nil {
		b.Fatal(err)
	}
	src := smtlib.Print(g.Sat().Script)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc, err := smtlib.ParseScript(src)
		if err != nil {
			b.Fatal(err)
		}
		if smtlib.Print(sc) == "" {
			b.Fatal("empty print")
		}
	}
}

// Registry maps the stable benchmark names recorded in BENCH_<n>.json
// to their bodies. Fast reports whether the benchmark is cheap enough
// for CI short mode (seconds, not half a minute, per op).
type Entry struct {
	Name string
	Fast bool
	Fn   func(*testing.B)
}

// All lists the registry in fixed report order.
var All = []Entry{
	{Name: "ThroughputSingleThreaded", Fast: true, Fn: ThroughputSingleThreaded},
	{Name: "ThroughputInstrumented", Fast: true, Fn: ThroughputInstrumented},
	{Name: "FusionOnly", Fast: true, Fn: FusionOnly},
	{Name: "SolverReference", Fast: true, Fn: SolverReference},
	{Name: "ParsePrint", Fast: true, Fn: ParsePrint},
	{Name: "Fig8Campaign", Fast: false, Fn: Fig8Campaign},
}
