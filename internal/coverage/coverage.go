// Package coverage is the probe-based substitute for Gcov in the
// paper's RQ3/RQ4 experiments: the reference solver is instrumented
// with named probes in three classes (line-like, function-like,
// branch-like), a Tracker records which probes fire during a run, and
// reports give hit/total percentages per class — the same relative
// comparison (seed corpus vs ConcatFuzz vs YinYang) the paper performs
// with line/function/branch coverage.
package coverage

import (
	"fmt"
	"sort"
	"sync"
)

// Class is the kind of coverage a probe measures.
type Class uint8

const (
	// Line marks an interesting straight-line code point.
	Line Class = iota
	// Function marks a function or procedure entry.
	Function
	// Branch marks one direction of a conditional.
	Branch
	numClasses
)

func (c Class) String() string {
	switch c {
	case Line:
		return "line"
	case Function:
		return "function"
	case Branch:
		return "branch"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Probe is a registered coverage point. Probes are created once at
// package initialization (NewProbe) so the registry knows the total
// universe of probes, mirroring compile-time instrumentation.
type Probe struct {
	ID    string
	Class Class
	idx   int
}

var (
	regMu    sync.Mutex
	registry []*Probe
	byID     = map[string]*Probe{}
)

// NewProbe registers a probe. Duplicate IDs panic: probes model static
// code locations.
func NewProbe(id string, class Class) *Probe {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := byID[id]; dup {
		panic(fmt.Sprintf("coverage: duplicate probe %q", id))
	}
	p := &Probe{ID: id, Class: class, idx: len(registry)}
	registry = append(registry, p)
	byID[id] = p
	return p
}

// NumProbes returns the number of registered probes (all classes).
func NumProbes() int {
	regMu.Lock()
	defer regMu.Unlock()
	return len(registry)
}

// Tracker records probe hits for one measurement run. A nil Tracker is
// valid and records nothing, so instrumented code needs no guards.
type Tracker struct {
	mu   sync.Mutex
	hits map[int]uint64
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker { return &Tracker{hits: map[int]uint64{}} }

// Hit records that probe p fired.
func (t *Tracker) Hit(p *Probe) {
	if t == nil || p == nil {
		return
	}
	t.mu.Lock()
	t.hits[p.idx]++
	t.mu.Unlock()
}

// Merge adds all hits from other into t.
func (t *Tracker) Merge(other *Tracker) {
	if t == nil || other == nil {
		return
	}
	other.mu.Lock()
	snapshot := make(map[int]uint64, len(other.hits))
	for k, v := range other.hits {
		snapshot[k] = v
	}
	other.mu.Unlock()
	t.mu.Lock()
	for k, v := range snapshot {
		t.hits[k] += v
	}
	t.mu.Unlock()
}

// Counts holds hit/total for one class.
type Counts struct {
	Hit   int
	Total int
}

// Percent returns 100·Hit/Total (0 when the class has no probes).
func (c Counts) Percent() float64 {
	if c.Total == 0 {
		return 0
	}
	return 100 * float64(c.Hit) / float64(c.Total)
}

// Report is per-class coverage of a tracker against the global registry.
type Report struct {
	ByClass [numClasses]Counts
}

// Report computes the tracker's coverage report.
func (t *Tracker) Report() Report {
	var r Report
	regMu.Lock()
	probes := make([]*Probe, len(registry))
	copy(probes, registry)
	regMu.Unlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, p := range probes {
		r.ByClass[p.Class].Total++
		if t.hits[p.idx] > 0 {
			r.ByClass[p.Class].Hit++
		}
	}
	return r
}

// Lines, Functions, Branches are class accessors.
func (r Report) Lines() Counts     { return r.ByClass[Line] }
func (r Report) Functions() Counts { return r.ByClass[Function] }
func (r Report) Branches() Counts  { return r.ByClass[Branch] }

// HitProbeIDs returns the sorted IDs of probes that fired — used by the
// harness for bug triage diagnostics.
func (t *Tracker) HitProbeIDs() []string {
	regMu.Lock()
	probes := make([]*Probe, len(registry))
	copy(probes, registry)
	regMu.Unlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []string
	for _, p := range probes {
		if t.hits[p.idx] > 0 {
			out = append(out, p.ID)
		}
	}
	sort.Strings(out)
	return out
}
