package coverage

import (
	"fmt"
	"sync"
	"testing"
)

// Probes for this test file (the registry is global and append-only,
// mirroring static instrumentation).
var (
	tpLine   = NewProbe("test.line", Line)
	tpFunc   = NewProbe("test.func", Function)
	tpBranch = NewProbe("test.branch", Branch)
	tpCold   = NewProbe("test.cold", Line)
)

func TestDuplicateProbePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate probe did not panic")
		}
	}()
	NewProbe("test.line", Branch)
}

func TestTrackerCounts(t *testing.T) {
	tr := NewTracker()
	tr.Hit(tpLine)
	tr.Hit(tpLine)
	tr.Hit(tpFunc)
	rep := tr.Report()
	if rep.Lines().Hit < 1 || rep.Functions().Hit < 1 {
		t.Errorf("report: %+v", rep)
	}
	// tpCold never hit: hit < total for Line class.
	if rep.Lines().Hit >= rep.Lines().Total {
		t.Errorf("cold probe counted as hit: %+v", rep.Lines())
	}
	if rep.Branches().Hit != 0 {
		t.Errorf("branch hits = %d, want 0", rep.Branches().Hit)
	}
	ids := tr.HitProbeIDs()
	want := map[string]bool{"test.line": true, "test.func": true}
	for _, id := range ids {
		if id == "test.cold" {
			t.Error("cold probe in hit list")
		}
		delete(want, id)
	}
	if len(want) != 0 {
		t.Errorf("missing hit IDs: %v (got %v)", want, ids)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracker
	tr.Hit(tpLine) // must not panic
	tr.Merge(nil)  // must not panic
	tr2 := NewTracker()
	tr2.Hit(nil)   // nil probe must not panic
	tr2.Merge(nil) // nil other must not panic
}

func TestMerge(t *testing.T) {
	a, b := NewTracker(), NewTracker()
	a.Hit(tpLine)
	b.Hit(tpBranch)
	a.Merge(b)
	rep := a.Report()
	if rep.Branches().Hit != 1 {
		t.Errorf("merge lost branch hit: %+v", rep)
	}
}

func TestPercent(t *testing.T) {
	c := Counts{Hit: 1, Total: 4}
	if got := c.Percent(); got != 25 {
		t.Errorf("Percent = %v", got)
	}
	if (Counts{}).Percent() != 0 {
		t.Error("empty class should be 0%")
	}
}

func TestConcurrentHits(t *testing.T) {
	tr := NewTracker()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				tr.Hit(tpLine)
				tr.Hit(tpBranch)
			}
		}()
	}
	wg.Wait()
	rep := tr.Report()
	if rep.Lines().Hit == 0 || rep.Branches().Hit == 0 {
		t.Error("concurrent hits lost")
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{Line: "line", Function: "function", Branch: "branch"} {
		if c.String() != want {
			t.Errorf("Class %d = %q", c, c.String())
		}
	}
	if got := Class(9).String(); got != fmt.Sprintf("Class(%d)", 9) {
		t.Errorf("unknown class = %q", got)
	}
}

func TestNumProbes(t *testing.T) {
	if NumProbes() < 4 {
		t.Errorf("NumProbes = %d", NumProbes())
	}
}
