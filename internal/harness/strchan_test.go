package harness

import (
	"testing"

	"repro/internal/bugdb"
	"repro/internal/gen"
)

func TestStringChannelHunt(t *testing.T) {
	res, err := Run(Campaign{
		SUT:        bugdb.CVC4Sim,
		Logics:     []gen.Logic{gen.QFS, gen.QFSLIA, gen.StringFuzz},
		Iterations: shortIters(300),
		SeedPool:   15,
		Seed:       31,
		Threads:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("tests=%d bugs=%d dups=%d unknowns=%d refdis=%d", res.Tests, len(res.Bugs), res.Duplicates, res.Unknowns, res.ReferenceDisagreements)
	for _, b := range res.Bugs {
		t.Logf("  %s kind=%s logic=%s oracle=%v obs=%v", b.Defect, b.Kind, b.Logic, b.Oracle, b.Observed)
	}
}
