package harness

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// ckptConfig is the shared small campaign for the checkpoint and shard
// determinism suites: two logics, a cross-check backend, and enough
// iterations that the task space contains multi-member warm-state
// families, SUT bugs, duplicates, and backend findings.
func ckptConfig() CampaignConfig {
	return CampaignConfig{
		SUT:        "z3sim",
		Logics:     []string{"QF_LIA", "QF_S"},
		Iterations: 10,
		SeedPool:   4,
		Seed:       7,
		Backends:   []BackendConfig{{Sim: &SimBackendConfig{SUT: "cvc4sim"}}},
	}
}

// runToCompletion runs cc uninterrupted with telemetry and tracing
// attached, returning the outcome and the live trace bytes.
func runToCompletion(t *testing.T, cc CampaignConfig) (*Outcome, []byte) {
	t.Helper()
	tr := telemetry.NewTracker()
	var tb bytes.Buffer
	out, err := Start(cc, RunOptions{Telemetry: tr, Trace: &tb})
	if err != nil {
		t.Fatal(err)
	}
	if out.Paused || out.Envelope == nil {
		t.Fatal("run did not complete")
	}
	return out, tb.Bytes()
}

// TestCheckpointEveryFrontier kills the campaign at every possible
// frontier, round-trips the checkpoint through its serialized form, and
// resumes with a rotating worker count: result fingerprint, telemetry
// snapshot, concatenated leg traces, and the envelope's accumulated
// trace must all be byte-identical to the uninterrupted run, no matter
// where the cut lands — family boundaries, mid-family, before and
// after bug and backend-finding recording tasks alike.
func TestCheckpointEveryFrontier(t *testing.T) {
	cc := ckptConfig()
	ref, refTrace := runToCompletion(t, cc)
	total := cc.ShardTaskCount()
	if total < 4 {
		t.Fatalf("campaign too small to cut: %d tasks", total)
	}
	step := 1
	if testing.Short() {
		step = 5
	}
	for stop := 1; stop < total; stop += step {
		tr1 := telemetry.NewTracker()
		var tb1 bytes.Buffer
		out1, err := Start(cc, RunOptions{Telemetry: tr1, Trace: &tb1, StopAfter: stop, Threads: stop%3 + 1})
		if err != nil {
			t.Fatal(err)
		}
		if !out1.Paused {
			t.Fatalf("stop=%d did not pause", stop)
		}
		if out1.Checkpoint.Done != stop {
			t.Fatalf("stop=%d checkpoint frontier %d", stop, out1.Checkpoint.Done)
		}
		data, err := EncodeCheckpoint(out1.Checkpoint)
		if err != nil {
			t.Fatalf("stop=%d encode: %v", stop, err)
		}
		cp, err := DecodeCheckpoint(data)
		if err != nil {
			t.Fatalf("stop=%d decode: %v", stop, err)
		}
		tr2 := telemetry.NewTracker()
		var tb2 bytes.Buffer
		out2, err := Resume(cp, RunOptions{Telemetry: tr2, Trace: &tb2, Threads: (stop+1)%3 + 1})
		if err != nil {
			t.Fatalf("stop=%d resume: %v", stop, err)
		}
		if out2.Paused {
			t.Fatalf("stop=%d resumed leg paused", stop)
		}
		if !bytes.Equal(out2.Result.Fingerprint(), ref.Result.Fingerprint()) {
			t.Errorf("stop=%d result diverged:\nref %s\ngot %s",
				stop, ref.Result.Fingerprint(), out2.Result.Fingerprint())
		}
		if !reflect.DeepEqual(out2.Telemetry, ref.Telemetry) {
			t.Errorf("stop=%d telemetry diverged", stop)
		}
		legs := append(append([]byte(nil), tb1.Bytes()...), tb2.Bytes()...)
		if !bytes.Equal(legs, refTrace) {
			t.Errorf("stop=%d concatenated leg traces diverged (%d vs %d bytes)",
				stop, len(legs), len(refTrace))
		}
		if !bytes.Equal(out2.Envelope.Trace, refTrace) {
			t.Errorf("stop=%d envelope trace diverged", stop)
		}
	}
}

// TestCheckpointChainedResume pauses and resumes the same campaign
// repeatedly — a few tasks per leg, alternating worker counts, every
// hop through the serialized document — and also resumes one
// intermediate checkpoint twice, since a checkpoint is a value: nothing
// about consuming it once may change what a second consumer sees.
func TestCheckpointChainedResume(t *testing.T) {
	cc := ckptConfig()
	ref, refTrace := runToCompletion(t, cc)

	var (
		out      *Outcome
		err      error
		traceAcc bytes.Buffer
		mid      []byte // serialized checkpoint of one intermediate hop
		frontier int
		legs     int
	)
	for {
		var tb bytes.Buffer
		opt := RunOptions{
			Telemetry: telemetry.NewTracker(),
			Trace:     &tb,
			StopAfter: 3,
			Threads:   legs%4 + 1,
		}
		if out == nil {
			out, err = Start(cc, opt)
		} else {
			data, encErr := EncodeCheckpoint(out.Checkpoint)
			if encErr != nil {
				t.Fatalf("leg %d encode: %v", legs, encErr)
			}
			if mid == nil && legs == 2 {
				mid = data
			}
			cp, decErr := DecodeCheckpoint(data)
			if decErr != nil {
				t.Fatalf("leg %d decode: %v", legs, decErr)
			}
			out, err = Resume(cp, opt)
		}
		if err != nil {
			t.Fatalf("leg %d: %v", legs, err)
		}
		traceAcc.Write(tb.Bytes())
		legs++
		if !out.Paused {
			break
		}
		if out.Checkpoint.Done <= frontier {
			t.Fatalf("leg %d: frontier did not advance (%d -> %d)", legs, frontier, out.Checkpoint.Done)
		}
		frontier = out.Checkpoint.Done
		if legs > 200 {
			t.Fatal("campaign never completed")
		}
	}
	if legs < 4 {
		t.Fatalf("chain too short to be interesting: %d legs", legs)
	}
	if !bytes.Equal(out.Result.Fingerprint(), ref.Result.Fingerprint()) {
		t.Errorf("chained result diverged after %d legs:\nref %s\ngot %s",
			legs, ref.Result.Fingerprint(), out.Result.Fingerprint())
	}
	if !reflect.DeepEqual(out.Telemetry, ref.Telemetry) {
		t.Errorf("chained telemetry diverged after %d legs", legs)
	}
	if !bytes.Equal(traceAcc.Bytes(), refTrace) {
		t.Errorf("chained trace diverged after %d legs", legs)
	}

	// Second consumption of the intermediate checkpoint.
	if mid == nil {
		t.Fatal("no intermediate checkpoint captured")
	}
	cp, err := DecodeCheckpoint(mid)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Resume(cp, RunOptions{Telemetry: telemetry.NewTracker(), Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	if again.Paused {
		t.Fatal("replayed checkpoint paused without a budget")
	}
	if !bytes.Equal(again.Result.Fingerprint(), ref.Result.Fingerprint()) {
		t.Error("resuming the same checkpoint twice diverged")
	}
}

// TestCheckpointArtifactContinuity cuts a campaign right after its
// first reproducer bundle lands and checks the resumed leg completes
// the artifact directory to exactly the uninterrupted run's tree — no
// re-written, missing, or duplicate bundles.
func TestCheckpointArtifactContinuity(t *testing.T) {
	cc := ckptConfig()
	refCC := cc
	refCC.ArtifactDir = t.TempDir()
	ref, _ := runToCompletion(t, refCC)
	refs := ref.Envelope.State.Artifacts
	if len(refs) < 2 {
		t.Fatalf("campaign wrote %d bundles, need >= 2 to cut between them", len(refs))
	}

	cutCC := cc
	cutCC.ArtifactDir = t.TempDir()
	stop := refs[0].Task + 1 // first bundle written, the rest pending
	out1, err := Start(cutCC, RunOptions{StopAfter: stop})
	if err != nil {
		t.Fatal(err)
	}
	if !out1.Paused {
		t.Fatalf("stop=%d did not pause", stop)
	}
	data, err := EncodeCheckpoint(out1.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := Resume(cp, RunOptions{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out2.Result.Fingerprint(), ref.Result.Fingerprint()) {
		t.Error("resumed result diverged")
	}
	want := dirSnapshot(t, refCC.ArtifactDir)
	got := dirSnapshot(t, cutCC.ArtifactDir)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("artifact trees diverged:\nref  %v\ngot %v", keysOf(want), keysOf(got))
	}
}

// dirSnapshot maps every file under dir (by slash-separated relative
// path) to its contents.
func dirSnapshot(t *testing.T, dir string) map[string]string {
	t.Helper()
	snap := map[string]string{}
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		snap[filepath.ToSlash(rel)] = string(data)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func keysOf(m map[string]string) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

// pausedCheckpoint runs ckptConfig to an arbitrary frontier and returns
// the in-memory checkpoint plus its sealed serialization.
func pausedCheckpoint(t *testing.T) (*Checkpoint, []byte) {
	t.Helper()
	out, err := Start(ckptConfig(), RunOptions{StopAfter: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Paused {
		t.Fatal("campaign did not pause")
	}
	data, err := EncodeCheckpoint(out.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	return out.Checkpoint, data
}

// TestCheckpointFailClosed feeds the decoder every class of damage a
// checkpoint document can suffer — truncation, bit rot, trailing junk,
// kind and schema skew, unknown fields, and semantically impossible
// state behind a valid checksum — and requires a diagnostic error for
// each: a damaged checkpoint must never run as a different experiment.
func TestCheckpointFailClosed(t *testing.T) {
	cp, data := pausedCheckpoint(t)

	// Byte-level damage on the serialized document.
	byteCases := []struct {
		name string
		data []byte
		want string // substring of the expected diagnostic
	}{
		{"empty", nil, ""},
		{"not json", []byte("not a checkpoint"), ""},
		{"truncated", data[:len(data)/2], ""},
		{"trailing garbage", append(append([]byte(nil), data...), []byte("{}")...), "trailing"},
		{"bit flip", flipByte(data, len(data)/2), ""},
	}
	for _, tc := range byteCases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := DecodeCheckpoint(tc.data)
			if err == nil {
				t.Fatalf("decoded damaged document: %+v", got)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Errorf("diagnostic %q does not mention %q", err, tc.want)
			}
		})
	}

	// Document-level skew: a well-formed sealed document that is not a
	// current-schema checkpoint.
	t.Run("wrong kind", func(t *testing.T) {
		out, err := Start(ckptConfig(), RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		env, err := EncodeEnvelope(out.Envelope)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeCheckpoint(env); err == nil {
			t.Fatal("decoded an envelope as a checkpoint")
		} else if !strings.Contains(err.Error(), kindEnvelope) {
			t.Errorf("diagnostic %q does not name the offending kind", err)
		}
	})
	t.Run("schema skew", func(t *testing.T) {
		var doc map[string]json.RawMessage
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatal(err)
		}
		doc["schema"] = json.RawMessage("99")
		skewed, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeCheckpoint(skewed); err == nil {
			t.Fatal("decoded a future-schema checkpoint")
		} else if !strings.Contains(err.Error(), "schema") {
			t.Errorf("diagnostic %q does not mention the schema", err)
		}
	})
	t.Run("checksum mismatch", func(t *testing.T) {
		// Valid JSON, valid kind and schema, payload edited without
		// resealing: only the checksum can catch it.
		tampered := bytes.Replace(data, []byte(`"done": 7`), []byte(`"done": 8`), 1)
		if bytes.Equal(tampered, data) {
			t.Fatal("tamper target not found in document")
		}
		if _, err := DecodeCheckpoint(tampered); err == nil {
			t.Fatal("decoded a tampered payload")
		} else if !strings.Contains(err.Error(), "checksum") {
			t.Errorf("diagnostic %q does not mention the checksum", err)
		}
	})
	t.Run("unknown field", func(t *testing.T) {
		// Properly resealed payload with a field this version does not
		// know — a document from a newer writer must not be half-read.
		var payload map[string]json.RawMessage
		raw, err := json.Marshal(cp)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(raw, &payload); err != nil {
			t.Fatal(err)
		}
		payload["frobnicator"] = json.RawMessage("true")
		doc, err := sealDoc(kindCheckpoint, CheckpointSchema, payload)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeCheckpoint(doc); err == nil {
			t.Fatal("decoded a payload with an unknown field")
		}
	})

	// Semantic damage behind a valid seal: EncodeCheckpoint must refuse
	// to produce the document, and a hand-sealed one must not decode.
	semCases := []struct {
		name   string
		mutate func(c *Checkpoint)
	}{
		{"frontier past the end", func(c *Checkpoint) { c.Done = c.Config.withDefaults().total() + 5 }},
		{"negative frontier", func(c *Checkpoint) { c.Done = -1 }},
		{"negative count", func(c *Checkpoint) { c.State.Tests = -3 }},
		{"counts exceed frontier", func(c *Checkpoint) { c.State.Tests = c.Done + 10 }},
		{"unrunnable config", func(c *Checkpoint) { c.Config.SUT = "no-such-solver" }},
	}
	for _, tc := range semCases {
		t.Run(tc.name, func(t *testing.T) {
			bad := cloneCheckpoint(t, cp)
			tc.mutate(bad)
			if _, err := EncodeCheckpoint(bad); err == nil {
				t.Error("encoded a semantically impossible checkpoint")
			}
			doc, err := sealDoc(kindCheckpoint, CheckpointSchema, bad)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := DecodeCheckpoint(doc); err == nil {
				t.Error("decoded a semantically impossible checkpoint")
			}
		})
	}
}

// cloneCheckpoint deep-copies a checkpoint through its JSON form so
// tests can mutate the copy freely.
func cloneCheckpoint(t *testing.T, cp *Checkpoint) *Checkpoint {
	t.Helper()
	raw, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	var out Checkpoint
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	return &out
}

func flipByte(data []byte, i int) []byte {
	out := append([]byte(nil), data...)
	out[i] ^= 0x20
	return out
}

// FuzzCheckpointRoundTrip holds the decoder to its contract on
// arbitrary bytes: it either rejects with an error or yields a
// checkpoint that survives encode→decode unchanged. It must never
// panic and never accept a document it cannot faithfully re-emit.
func FuzzCheckpointRoundTrip(f *testing.F) {
	out, err := Start(ckptConfig(), RunOptions{StopAfter: 5})
	if err != nil {
		f.Fatal(err)
	}
	valid, err := EncodeCheckpoint(out.Checkpoint)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte("{}"))
	f.Add([]byte(`{"kind":"yinyang-checkpoint","schema":1,"checksum":"fnv64a:0000000000000000","payload":{}}`))
	f.Add(valid[:len(valid)/2])
	f.Add(flipByte(valid, len(valid)/3))

	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := DecodeCheckpoint(data)
		if err != nil {
			return // rejected: fail-closed is the contract
		}
		enc, err := EncodeCheckpoint(cp)
		if err != nil {
			t.Fatalf("accepted checkpoint does not re-encode: %v", err)
		}
		cp2, err := DecodeCheckpoint(enc)
		if err != nil {
			t.Fatalf("re-encoded checkpoint does not decode: %v", err)
		}
		if !reflect.DeepEqual(cp, cp2) {
			t.Fatalf("round trip changed the checkpoint:\nfirst  %+v\nsecond %+v", cp, cp2)
		}
	})
}
