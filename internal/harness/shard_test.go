package harness

import (
	"bytes"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/telemetry"
)

// TestShardSplitCoversTaskSpace checks the ownership rule underlying
// sharding: for any K, the shards' task id lists partition [0, total)
// exactly — no id unowned, none owned twice.
func TestShardSplitCoversTaskSpace(t *testing.T) {
	cc := ckptConfig()
	total := cc.withDefaults().total()
	for _, k := range []int{1, 2, 3, 7, total, total + 3} {
		owned := map[int]int{}
		for s := 0; s < k; s++ {
			sc := cc
			sc.Shards, sc.Shard = k, s
			prev := -1
			for _, id := range sc.withDefaults().includeIDs() {
				if id <= prev {
					t.Fatalf("K=%d shard %d ids not ascending at %d", k, s, id)
				}
				prev = id
				if other, dup := owned[id]; dup {
					t.Fatalf("K=%d task %d owned by shards %d and %d", k, id, other, s)
				}
				owned[id] = s
			}
		}
		if len(owned) != total {
			t.Fatalf("K=%d shards own %d of %d tasks", k, len(owned), total)
		}
	}
}

// TestShardMergeDeterminism splits the same campaign K ways for
// several K, runs every shard as its own campaign with a different
// worker count, round-trips each envelope through its serialized form,
// and merges. The merged result fingerprint, telemetry snapshot, JSONL
// trace, and reproducer-bundle tree must be byte-identical to the
// unsharded single-process run — including the cross-shard folds the
// shards cannot see locally: global bug dedup, duplicate counts,
// backend finding dedup, funnel counters, and trace finding flags.
func TestShardMergeDeterminism(t *testing.T) {
	base := ckptConfig()
	refCC := base
	refCC.ArtifactDir = t.TempDir()
	ref, refTrace := runToCompletion(t, refCC)
	refTree := dirSnapshot(t, refCC.ArtifactDir)
	if len(ref.Result.Bugs) == 0 || len(ref.Result.BackendFindings) == 0 || ref.Result.Duplicates == 0 {
		t.Fatalf("reference campaign too tame to exercise the merge folds: %+v", summaryLine(ref))
	}

	for _, k := range []int{2, 3, 7} {
		t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
			shardRoot := t.TempDir()
			envs := make([]*Envelope, k)
			for s := 0; s < k; s++ {
				sc := base
				sc.Shards, sc.Shard = k, s
				sc.ArtifactDir = filepath.Join(shardRoot, fmt.Sprintf("sh%d", s))
				tr := telemetry.NewTracker()
				var tb bytes.Buffer
				out, err := Start(sc, RunOptions{Telemetry: tr, Trace: &tb, Threads: s%3 + 1})
				if err != nil {
					t.Fatalf("shard %d: %v", s, err)
				}
				if out.Paused {
					t.Fatalf("shard %d paused", s)
				}
				data, err := EncodeEnvelope(out.Envelope)
				if err != nil {
					t.Fatalf("shard %d encode: %v", s, err)
				}
				env, err := DecodeEnvelope(data)
				if err != nil {
					t.Fatalf("shard %d decode: %v", s, err)
				}
				// Merge maps envelopes by their shard index, not their
				// position in the argument list.
				envs[k-1-s] = env
			}
			mergedDir := t.TempDir()
			m, err := Merge(envs, mergedDir)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(m.Result.Fingerprint(), ref.Result.Fingerprint()) {
				t.Errorf("merged result diverged:\nref %s\ngot %s",
					ref.Result.Fingerprint(), m.Result.Fingerprint())
			}
			if !reflect.DeepEqual(m.Telemetry, ref.Telemetry) {
				t.Errorf("merged telemetry diverged:\nref %+v\ngot %+v", ref.Telemetry, m.Telemetry)
			}
			if !bytes.Equal(m.Trace, refTrace) {
				t.Errorf("merged trace diverged (%d vs %d bytes)", len(m.Trace), len(refTrace))
			}
			if got := dirSnapshot(t, mergedDir); !reflect.DeepEqual(got, refTree) {
				t.Errorf("merged bundle tree diverged:\nref  %v\ngot %v", keysOf(refTree), keysOf(got))
			}
		})
	}
}

func summaryLine(out *Outcome) string {
	r := out.Result
	return fmt.Sprintf("bugs=%d dups=%d backend=%d", len(r.Bugs), r.Duplicates, len(r.BackendFindings))
}

// TestMergeFailClosed checks Merge refuses envelope sets that are not
// the K shards of one campaign: short sets, duplicated shards, and
// envelopes from a different experiment.
func TestMergeFailClosed(t *testing.T) {
	shardEnv := func(cc CampaignConfig, k, s int) *Envelope {
		t.Helper()
		sc := cc
		sc.Shards, sc.Shard = k, s
		out, err := Start(sc, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return out.Envelope
	}
	cc := ckptConfig()
	e0 := shardEnv(cc, 2, 0)
	e1 := shardEnv(cc, 2, 1)

	if _, err := Merge(nil, ""); err == nil {
		t.Error("merged zero envelopes")
	}
	if _, err := Merge([]*Envelope{e0}, ""); err == nil {
		t.Error("merged half of a 2-shard campaign")
	}
	if _, err := Merge([]*Envelope{e0, e0}, ""); err == nil {
		t.Error("merged the same shard twice")
	}
	if _, err := Merge([]*Envelope{e0, nil}, ""); err == nil {
		t.Error("merged a nil envelope")
	}

	foreign := cc
	foreign.Seed = 12345
	if _, err := Merge([]*Envelope{e0, shardEnv(foreign, 2, 1)}, ""); err == nil {
		t.Error("merged shards of two different campaigns")
	}

	// Thread count and artifact directory are process-local choices, not
	// campaign identity: envelopes differing only there must merge.
	varied := cc
	varied.Threads = 4
	varied.ArtifactDir = t.TempDir()
	if _, err := Merge([]*Envelope{e0, shardEnv(varied, 2, 1)}, ""); err != nil {
		t.Errorf("thread/artifact variation rejected: %v", err)
	}

	// A merged campaign must also round-trip: the merge of envelopes is
	// rejected when an envelope claims a partial shard. Simulate by
	// tampering the task count.
	bad := *e1
	bad.Tasks--
	if _, err := Merge([]*Envelope{e0, &bad}, ""); err == nil {
		t.Error("merged an envelope with a short task count")
	}
}
