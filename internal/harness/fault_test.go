package harness

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/bugdb"
	"repro/internal/gen"
	"repro/internal/smtlib"
	"repro/internal/solver"
)

// Fault-injection suite: exercises the containment machinery end to
// end — hang defects surfacing as deterministic timeouts, synthetic
// panics quarantined instead of counted, artifact bundles that round-
// trip through the parser and replay exactly.

// TestRunSolverInternalFaultCapture pins the containment contract of
// RunSolver: a panic that is not a *solver.CrashError is our own solver
// failing, reported as an internal fault with a stack trace, never as a
// crash finding.
func TestRunSolverInternalFaultCapture(t *testing.T) {
	src := `
(set-logic QF_LIA)
(declare-fun x () Int)
(assert (> x 0))
(check-sat)
`
	sc, err := smtlib.ParseScript(src)
	if err != nil {
		t.Fatal(err)
	}
	faulty := solver.New(solver.Config{
		Defects: map[solver.Defect]bool{solver.DefFaultSyntheticPanic: true},
	})
	run := RunSolver(faulty, sc)
	if run.Crashed {
		t.Error("synthetic panic misclassified as a SUT crash")
	}
	if !run.InternalFault {
		t.Fatalf("internal fault not captured: %+v", run)
	}
	if run.FaultMsg == "" {
		t.Error("internal fault has no message")
	}
	if run.FaultStack == "" {
		t.Error("internal fault has no stack trace")
	}
}

// TestHangDefectCampaignFindsPerformanceBug runs a default z3sim
// campaign on the strings logic: the injected DFS hang defect must
// exhaust the fuel meter, and the campaign must terminate with at least
// one deduplicated Performance bug whose signature is fuel exhaustion.
func TestHangDefectCampaignFindsPerformanceBug(t *testing.T) {
	res, err := Run(Campaign{
		SUT:        bugdb.Z3Sim,
		Logics:     []gen.Logic{gen.QFS},
		Iterations: shortIters(80),
		SeedPool:   8,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("tests=%d timeouts=%d bugs=%d", res.Tests, res.Timeouts, len(res.Bugs))
	if res.Timeouts == 0 {
		t.Error("hang defect produced no timeouts")
	}
	b, ok := res.BugByDefect(solver.DefHangStringsDFS)
	if !ok {
		t.Fatalf("strings-DFS hang not found; bugs: %+v", res.Bugs)
	}
	if b.Kind != bugdb.Performance {
		t.Errorf("hang classified as %v, want performance", b.Kind)
	}
	if b.Observed != solver.ResTimeout {
		t.Errorf("hang observed as %v, want timeout", b.Observed)
	}
}

// TestSimplexHangDefect does the same for the simplex cycling defect on
// linear integer arithmetic (cvc4sim's catalogue).
func TestSimplexHangDefect(t *testing.T) {
	res, err := Run(Campaign{
		SUT:        bugdb.CVC4Sim,
		Logics:     []gen.Logic{gen.QFLIA},
		Iterations: shortIters(80),
		SeedPool:   8,
		Seed:       11,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("tests=%d timeouts=%d bugs=%d", res.Tests, res.Timeouts, len(res.Bugs))
	b, ok := res.BugByDefect(solver.DefHangSimplexCycle)
	if !ok {
		t.Fatalf("simplex cycling hang not found; bugs: %+v", res.Bugs)
	}
	if b.Kind != bugdb.Performance || b.Observed != solver.ResTimeout {
		t.Errorf("hang bug = kind %v observed %v, want performance/timeout", b.Kind, b.Observed)
	}
}

// TestSyntheticPanicQuarantined injects the harness-test-only panic
// defect into an otherwise defect-free release: the campaign must run
// to completion, quarantine the faulting inputs, and record no crash
// findings for them.
func TestSyntheticPanicQuarantined(t *testing.T) {
	res, err := Run(Campaign{
		SUT:           bugdb.Z3Sim,
		Logics:        []gen.Logic{gen.QFLIA},
		Iterations:    shortIters(40),
		SeedPool:      6,
		Seed:          3,
		InjectDefects: []solver.Defect{solver.DefFaultSyntheticPanic},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Quarantined == 0 {
		t.Fatal("no runs quarantined despite a synthetic panic on every theory check")
	}
	for _, b := range res.Bugs {
		if b.Defect == solver.DefFaultSyntheticPanic {
			t.Errorf("synthetic internal fault surfaced as a %v finding", b.Kind)
		}
	}
}

// TestFaultCampaignThreadInvariance extends the engine's bit-identical
// guarantee to the containment paths: with a hang defect injected and a
// tight fuel budget, timeout and quarantine counts and the bug list
// must not depend on the thread count.
func TestFaultCampaignThreadInvariance(t *testing.T) {
	base := Campaign{
		SUT:           bugdb.Z3Sim,
		Logics:        []gen.Logic{gen.QFS, gen.QFLIA},
		Iterations:    shortIters(40),
		SeedPool:      6,
		Seed:          9,
		Fuel:          200_000,
		InjectDefects: []solver.Defect{solver.DefHangSimplexCycle},
	}
	var ref *Result
	for _, threads := range []int{1, 4} {
		cfg := base
		cfg.Threads = threads
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			if ref.Timeouts == 0 {
				t.Error("fault campaign saw no timeouts")
			}
			continue
		}
		if summary(res) != summary(ref) {
			t.Errorf("threads=%d summary %v differs from threads=1 %v",
				threads, summary(res), summary(ref))
		}
		if len(res.Bugs) != len(ref.Bugs) {
			t.Fatalf("threads=%d found %d bugs, threads=1 found %d",
				threads, len(res.Bugs), len(ref.Bugs))
		}
		for i := range res.Bugs {
			if res.Bugs[i].Defect != ref.Bugs[i].Defect ||
				res.Bugs[i].Script.Text() != ref.Bugs[i].Script.Text() {
				t.Errorf("threads=%d bug %d differs", 4, i)
			}
		}
	}
}

// TestArtifactsRoundTripAndReplay checks the reproducer pipeline in
// both campaign modes: every finding of a campaign with an artifact
// directory lands as a bundle whose .smt2 files re-parse, and whose
// manifest coordinates alone regenerate the identical test case —
// fused formula or mutant — with the identical verdict.
func TestArtifactsRoundTripAndReplay(t *testing.T) {
	cases := []struct {
		name string
		cfg  Campaign
	}{
		{"fusion", Campaign{
			SUT:        bugdb.Z3Sim,
			Logics:     []gen.Logic{gen.QFS},
			Iterations: shortIters(60),
			SeedPool:   8,
			Seed:       7,
		}},
		{"mutation", Campaign{
			SUT:        bugdb.Z3Sim,
			Logics:     []gen.Logic{gen.QFNRA},
			Iterations: shortIters(150),
			SeedPool:   8,
			Seed:       31,
			Mode:       ModeMutate,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			cfg := tc.cfg
			cfg.ArtifactDir = dir
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Artifacts) == 0 {
				t.Fatal("campaign with findings wrote no artifact bundles")
			}
			if len(res.Artifacts) < len(res.Bugs) {
				t.Errorf("%d bundles for %d bugs", len(res.Artifacts), len(res.Bugs))
			}
			replayed := false
			for _, bundle := range res.Artifacts {
				for _, f := range []string{"seed1.smt2", "seed2.smt2", "fused.smt2"} {
					data, err := os.ReadFile(filepath.Join(bundle, f))
					if err != nil {
						t.Fatalf("bundle %s missing %s: %v", bundle, f, err)
					}
					if _, err := smtlib.ParseScript(string(data)); err != nil {
						t.Errorf("%s/%s does not re-parse: %v", bundle, f, err)
					}
				}
				m, err := ReadManifest(bundle)
				if err != nil {
					t.Fatalf("manifest: %v", err)
				}
				if m.CampaignMode != string(cfg.Mode) && !(m.CampaignMode == "fusion" && cfg.Mode == "") {
					t.Errorf("bundle %s campaign mode %q, want %q", bundle, m.CampaignMode, cfg.Mode)
				}
				if cfg.Mode == ModeMutate && m.BugType != "quarantine" {
					if m.Mode != "mutation" || len(m.MutationRules) == 0 {
						t.Errorf("mutation bundle %s lacks mutation metadata: mode=%q rules=%v",
							bundle, m.Mode, m.MutationRules)
					}
				}
				if m.BugType == "quarantine" {
					continue
				}
				rep, err := Replay(bundle)
				if err != nil {
					t.Fatalf("replay %s: %v", bundle, err)
				}
				if !rep.Exact() {
					t.Errorf("bundle %s (defect %s) did not replay exactly: %+v", bundle, m.Defect, rep)
				}
				replayed = true
			}
			if !replayed {
				t.Error("no non-quarantine bundle was replayed")
			}
		})
	}
}

// TestWallTimeoutQuarantines arms an unmeetably tight watchdog: the
// campaign must still terminate, with cut-off runs quarantined rather
// than classified, and classified plus quarantined runs accounting for
// every fused test.
func TestWallTimeoutQuarantines(t *testing.T) {
	res, err := Run(Campaign{
		SUT:         bugdb.Z3Sim,
		Logics:      []gen.Logic{gen.QFLIA},
		Iterations:  20,
		SeedPool:    4,
		Seed:        5,
		WallTimeout: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Quarantined == 0 {
		t.Error("nanosecond watchdog quarantined nothing")
	}
	if got := res.Tests + res.Quarantined + res.InvalidInputs; got != 20 {
		t.Errorf("tests+quarantined+invalid = %d, want 20", got)
	}
}
