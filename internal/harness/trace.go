package harness

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/solver"
	"repro/internal/telemetry"
)

// Campaign funnel metrics. Every stage a task (or corpus slot) passes
// through is counted, so the funnel reads top to bottom: seeds are
// generated and vetted into the corpus; each task either derives a test
// (fusion or mutation), is rejected by the static gate (invalid), or
// has no applicable derivation (skipped); derived tests are either
// quarantined (watchdog cut-off, internal fault) or solved; solved
// tests with a definite verdict are oracle-checked; oracle mismatches
// and crashes become findings or duplicates. All increments happen in
// the in-order classification stage, so totals are bit-identical for
// any thread count.
var (
	cfSeedGenerated = telemetry.NewCounter("yy_funnel_seed_generated_total", "seed scripts generated while building the corpus")
	cfSeedVetted    = telemetry.NewCounter("yy_funnel_seed_vetted_total", "corpus slots filled with a vetted seed")
	cfDerived       = telemetry.NewCounter("yy_funnel_derived_total", "tasks that derived a test script (fusion or mutation)")
	cfInvalid       = telemetry.NewCounter("yy_funnel_invalid_total", "tasks whose derivation was rejected by the static gate")
	cfSkipped       = telemetry.NewCounter("yy_funnel_skipped_total", "tasks with no applicable derivation")
	cfSolved        = telemetry.NewCounter("yy_funnel_solved_total", "derived tests classified after a completed solver run")
	cfOracleChecked = telemetry.NewCounter("yy_funnel_oracle_checked_total", "solved tests whose verdict was compared against the oracle")
	cfFindings      = telemetry.NewCounter("yy_funnel_findings_total", "deduplicated bugs recorded")
	cfDuplicates    = telemetry.NewCounter("yy_funnel_duplicates_total", "additional triggers of already-found defects")
	cfTimeouts      = telemetry.NewCounter("yy_funnel_timeouts_total", "solves halted by fuel exhaustion")
	cfUnknowns      = telemetry.NewCounter("yy_funnel_unknowns_total", "solves that returned unknown")
	cfQuarantined   = telemetry.NewCounter("yy_funnel_quarantined_total", "tasks withdrawn from classification")
	cfRefDisagree   = telemetry.NewCounter("yy_funnel_reference_disagreements_total", "oracle mismatches with no defect fired")

	hTaskFuel = telemetry.NewHistogram("yy_task_fuel_spent", "fuel steps consumed per solved task",
		telemetry.ExpBuckets(1000, 10, 6))
)

// TraceSchema versions the JSONL trace record layout. Schema 2 added
// the consensus-oracle fields (oracle_policy, consensus, meta_relation,
// variant_observed, variant_backends), all omitted on known-policy
// campaigns — but any schema bump is a hard break for readers, so the
// version is bumped rather than silently extended.
const TraceSchema = 2

// TraceRecord is one line of the campaign's JSONL event trace: the
// task's RNG coordinates (the same campaign_seed/logic/iteration triple
// the reproducer manifest carries, plus the campaign shape, so any
// record can be replayed in isolation), its classification, and its
// step-based effort. Records are emitted from the in-order
// classification stage, so the byte stream is identical for any thread
// count.
type TraceRecord struct {
	Schema int `json:"schema"`

	// RNG coordinates and campaign shape, matching Manifest's fields.
	CampaignSeed int64  `json:"campaign_seed"`
	Logic        string `json:"logic"`
	Iteration    int    `json:"iteration"`
	Iterations   int    `json:"iterations"`
	SeedPool     int    `json:"seed_pool"`
	ConcatOnly   bool   `json:"concat_only,omitempty"`
	Fuel         int64  `json:"fuel"`
	CampaignMode string `json:"campaign_mode"`
	SUT          string `json:"sut"`
	Release      string `json:"release"`

	// Task is the global task index (logic-major, then iteration).
	Task int `json:"task"`

	// Status is the funnel stage the task ended in: "invalid",
	// "skipped", "quarantined", or "tested".
	Status string `json:"status"`

	// Verdicts of tested tasks. Observed is the SUT's verdict ("crash"
	// when the run panicked); Oracle is the constructed expectation;
	// Finding/Duplicate mark tasks that triggered a defect.
	Oracle       string   `json:"oracle,omitempty"`
	Mode         string   `json:"mode,omitempty"`
	Observed     string   `json:"observed,omitempty"`
	Reason       string   `json:"reason,omitempty"`
	DefectsFired []string `json:"defects_fired,omitempty"`
	Finding      bool     `json:"finding,omitempty"`
	Duplicate    bool     `json:"duplicate,omitempty"`

	// FuelSpent is the solve's step consumption; Counters carries the
	// task's per-phase counter deltas (CDCL conflicts, simplex pivots,
	// DFS nodes, …). encoding/json renders map keys sorted, so equal
	// deltas render to identical bytes.
	FuelSpent int64            `json:"fuel_spent"`
	Counters  map[string]int64 `json:"counters,omitempty"`

	// Backends maps each cross-check backend's name to its classified
	// verdict for this task (tested tasks with backends only). Map keys
	// render sorted, so the byte stream stays deterministic.
	Backends map[string]string `json:"backends,omitempty"`

	// Consensus-oracle fields (schema 2; non-known policies only).
	// OraclePolicy names the active policy; Consensus is the majority
	// vote's outcome for this task ("sat", "unsat", or "abstained");
	// MetaRelation/VariantObserved/VariantBackends describe the
	// metamorphic pair when one was derived.
	OraclePolicy    string            `json:"oracle_policy,omitempty"`
	Consensus       string            `json:"consensus,omitempty"`
	MetaRelation    string            `json:"meta_relation,omitempty"`
	VariantObserved string            `json:"variant_observed,omitempty"`
	VariantBackends map[string]string `json:"variant_backends,omitempty"`
}

// ReadTrace parses a JSONL trace file written via Campaign.Trace.
func ReadTrace(path string) ([]TraceRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeTrace(f)
}

// DecodeTrace parses JSONL trace records from a reader.
func DecodeTrace(r io.Reader) ([]TraceRecord, error) {
	var out []TraceRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec TraceRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("harness: trace line %d: %w", len(out)+1, err)
		}
		if rec.Schema != TraceSchema {
			return nil, fmt.Errorf("harness: unsupported trace schema %d", rec.Schema)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// resCounts snapshots the Result fields the funnel mirrors, so per-task
// increments can be computed as before/after differences — guaranteeing
// funnel totals always equal the Result counts.
type resCounts struct {
	tests, unknowns, timeouts, quarantined int
	invalid, duplicates, refDisagree, bugs int
	// Backend cross-check aggregates, summed over Result.Backends.
	bkChecks, bkSkipped, bkTimeouts, bkCrashes int
	bkGarbled, bkFaults, bkRetries, bkDisagree int
	bkFindings                                 int
	// Consensus-oracle aggregates. oOutvoted and oViolations fold the
	// SUT's tallies together with the per-backend ones.
	oVotes, oConsensus, oAbstained, oOutvoted int
	oPairs, oPairSkips, oViolations           int
}

func countsOf(r *Result) resCounts {
	c := resCounts{
		tests: r.Tests, unknowns: r.Unknowns, timeouts: r.Timeouts,
		quarantined: r.Quarantined, invalid: r.InvalidInputs,
		duplicates: r.Duplicates, refDisagree: r.ReferenceDisagreements,
		bugs: len(r.Bugs), bkFindings: len(r.BackendFindings),
		oVotes: r.OracleVotes, oConsensus: r.OracleConsensus,
		oAbstained: r.OracleAbstained, oOutvoted: r.SutOutvoted,
		oPairs: r.MetamorphicPairs, oPairSkips: r.MetamorphicSkips,
		oViolations: r.SutViolations,
	}
	for _, b := range r.Backends {
		c.bkChecks += b.Checks
		c.bkSkipped += b.Skipped
		c.bkTimeouts += b.Timeouts
		c.bkCrashes += b.Crashes
		c.bkGarbled += b.Garbled
		c.bkFaults += b.Faults
		c.bkRetries += b.Retries
		c.bkDisagree += b.Disagreements
		c.oOutvoted += b.Outvoted
		c.oViolations += b.Violations
	}
	return c
}

// recorder aggregates campaign telemetry and emits the JSONL trace.
// It is only ever called from the in-order classification stage; a
// recorder with a nil tracker and nil writer no-ops everywhere.
type recorder struct {
	tr *telemetry.Tracker
	jw *telemetry.JSONLWriter
	// suppressVet drops corpus-vetting telemetry: set on resume legs and
	// non-zero shards, which rebuild the corpus deterministically but
	// must not re-count seed generation (see runControls.suppressVet).
	suppressVet bool
}

// active reports whether per-task deltas need collecting at all.
func (rc *recorder) active() bool { return rc.tr != nil || rc.jw != nil }

// flush pushes buffered trace records to the underlying writer so a
// live reader (the campaign service's trace endpoint) sees every record
// up to the current classification frontier.
func (rc *recorder) flush() { rc.jw.Flush() }

// vetted folds the corpus-building telemetry in, in job order: per-slot
// generation tries and per-slot engine-counter deltas.
func (rc *recorder) vetted(tries []int, deltas []telemetry.Snapshot) {
	if rc.tr == nil || rc.suppressVet {
		return
	}
	for j := range tries {
		rc.tr.Merge(deltas[j])
		rc.tr.Add(cfSeedGenerated, int64(tries[j]))
		rc.tr.Inc(cfSeedVetted)
	}
}

// task records one classified task: the worker's engine-counter delta,
// the funnel increments implied by how applyOutcome changed the Result,
// and the trace record.
func (rc *recorder) task(cfg Campaign, out taskOutcome, prev resCounts, res *Result) {
	if !rc.active() {
		return
	}
	cur := countsOf(res)
	rc.tr.Merge(out.delta)
	fuelSpent := out.delta.Counter(solver.MetricSolveFuelSpent)

	switch {
	case out.invalid:
		rc.tr.Inc(cfInvalid)
	case !out.tested:
		rc.tr.Inc(cfSkipped)
	default:
		rc.tr.Inc(cfDerived)
	}
	crashed := 0
	if cur.tests > prev.tests && out.run.Crashed {
		crashed = 1
	}
	rc.tr.Add(cfSolved, int64(cur.tests-prev.tests))
	rc.tr.Add(cfOracleChecked, int64(cur.tests-prev.tests-(cur.timeouts-prev.timeouts)-(cur.unknowns-prev.unknowns)-crashed))
	rc.tr.Add(cfTimeouts, int64(cur.timeouts-prev.timeouts))
	rc.tr.Add(cfUnknowns, int64(cur.unknowns-prev.unknowns))
	rc.tr.Add(cfQuarantined, int64(cur.quarantined-prev.quarantined))
	rc.tr.Add(cfFindings, int64(cur.bugs-prev.bugs))
	rc.tr.Add(cfDuplicates, int64(cur.duplicates-prev.duplicates))
	rc.tr.Add(cfRefDisagree, int64(cur.refDisagree-prev.refDisagree))
	rc.tr.Add(cbChecks, int64(cur.bkChecks-prev.bkChecks))
	rc.tr.Add(cbSkipped, int64(cur.bkSkipped-prev.bkSkipped))
	rc.tr.Add(cbTimeouts, int64(cur.bkTimeouts-prev.bkTimeouts))
	rc.tr.Add(cbCrashes, int64(cur.bkCrashes-prev.bkCrashes))
	rc.tr.Add(cbGarbled, int64(cur.bkGarbled-prev.bkGarbled))
	rc.tr.Add(cbFaults, int64(cur.bkFaults-prev.bkFaults))
	rc.tr.Add(cbRetries, int64(cur.bkRetries-prev.bkRetries))
	rc.tr.Add(cbDisagree, int64(cur.bkDisagree-prev.bkDisagree))
	rc.tr.Add(cbFindings, int64(cur.bkFindings-prev.bkFindings))
	rc.tr.Add(coVotes, int64(cur.oVotes-prev.oVotes))
	rc.tr.Add(coConsensus, int64(cur.oConsensus-prev.oConsensus))
	rc.tr.Add(coAbstained, int64(cur.oAbstained-prev.oAbstained))
	rc.tr.Add(coOutvoted, int64(cur.oOutvoted-prev.oOutvoted))
	rc.tr.Add(coPairs, int64(cur.oPairs-prev.oPairs))
	rc.tr.Add(coPairSkips, int64(cur.oPairSkips-prev.oPairSkips))
	rc.tr.Add(coViolation, int64(cur.oViolations-prev.oViolations))
	if cur.tests > prev.tests {
		rc.tr.Observe(hTaskFuel, fuelSpent)
	}

	if rc.jw == nil {
		return
	}
	logicIdx, iter := out.id/cfg.Iterations, out.id%cfg.Iterations
	rec := TraceRecord{
		Schema:       TraceSchema,
		CampaignSeed: cfg.Seed,
		Logic:        string(cfg.Logics[logicIdx]),
		Iteration:    iter,
		Iterations:   cfg.Iterations,
		SeedPool:     cfg.SeedPool,
		ConcatOnly:   cfg.ConcatOnly,
		Fuel:         cfg.Fuel,
		CampaignMode: string(cfg.Mode),
		SUT:          string(cfg.SUT),
		Release:      cfg.Release,
		Task:         out.id,
		FuelSpent:    fuelSpent,
	}
	if len(out.delta.Counters) > 0 {
		rec.Counters = out.delta.Counters
	}
	switch {
	case out.invalid:
		rec.Status = "invalid"
	case !out.tested:
		rec.Status = "skipped"
	case out.quarantined():
		rec.Status = "quarantined"
		switch {
		case out.wallTimeout:
			rec.Observed = "wall-timeout"
		case out.run.InternalFault:
			rec.Observed = "internal-fault"
			rec.Reason = out.run.FaultMsg
		default:
			rec.Observed = "internal-fault"
			rec.Reason = out.variantRun.FaultMsg
		}
	default:
		rec.Status = "tested"
		rec.Observed = out.run.Result.String()
		rec.Reason = out.run.Reason
		if out.run.Crashed {
			rec.Observed = "crash"
			rec.Reason = out.run.CrashMsg
		}
	}
	if out.tested {
		rec.Oracle = out.oracle().String()
		if out.mutant != nil {
			rec.Mode = "mutation"
		} else {
			rec.Mode = out.fused.Mode.String()
		}
		for _, d := range out.run.DefectsFired {
			rec.DefectsFired = append(rec.DefectsFired, string(d))
		}
		if len(out.backendRuns) > 0 {
			rec.Backends = make(map[string]string, len(out.backendRuns))
			for i, o := range out.backendRuns {
				rec.Backends[cfg.Backends[i].Name] = o.Verdict.String()
			}
		}
		if cfg.Oracle != "" && cfg.Oracle != OracleKnown {
			rec.OraclePolicy = string(cfg.Oracle)
			rec.Consensus = out.consensus
			if out.variant != nil {
				rec.MetaRelation = out.variant.Rel.String()
				vLabel, _, _ := sutStatus(out.variantRun)
				rec.VariantObserved = vLabel
				if len(out.variantBackends) > 0 {
					rec.VariantBackends = make(map[string]string, len(out.variantBackends))
					for i, o := range out.variantBackends {
						rec.VariantBackends[cfg.Backends[i].Name] = o.Verdict.String()
					}
				}
			}
		}
	}
	rec.Finding = cur.bugs > prev.bugs
	rec.Duplicate = cur.duplicates > prev.duplicates
	rc.jw.Emit(rec)
}
