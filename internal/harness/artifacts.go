package harness

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"

	"repro/internal/bugdb"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/smtlib"
	"repro/internal/solver"
)

// ManifestSchema versions the on-disk manifest layout.
const ManifestSchema = 1

// Manifest is the JSON sidecar of one reproducer bundle. Together with
// the three .smt2 files it makes a finding independently replayable:
// the RNG coordinates (campaign seed, logic, iteration) plus the
// campaign shape (iterations, seed pool, concat flag, fusion options
// are defaults) regenerate the exact same fused test, and the SUT
// coordinates rebuild the exact same solver.
type Manifest struct {
	Schema int `json:"schema"`

	// Solver under test.
	SUT     string `json:"sut"`
	Release string `json:"release"`

	// What was observed.
	BugType      string   `json:"bug_type"` // soundness/crash/performance, or "quarantine"
	Defect       string   `json:"defect,omitempty"`
	Oracle       string   `json:"oracle"`
	Observed     string   `json:"observed"`
	Reason       string   `json:"reason,omitempty"`
	DefectsFired []string `json:"defects_fired,omitempty"`
	FaultMsg     string   `json:"fault_msg,omitempty"`
	FaultStack   string   `json:"fault_stack,omitempty"`

	// RNG coordinates for exact replay.
	CampaignSeed int64  `json:"campaign_seed"`
	Logic        string `json:"logic"`
	Iteration    int    `json:"iteration"`

	// Campaign shape needed to rebuild the corpus and task stream.
	Iterations int    `json:"iterations"`
	SeedPool   int    `json:"seed_pool"`
	ConcatOnly bool   `json:"concat_only"`
	Fuel       int64  `json:"fuel"` // 0 = solver default, <0 = unlimited
	Mode       string `json:"mode,omitempty"`
	// CampaignMode is the campaign's test-derivation strategy (fusion,
	// mutate, both); "" in older manifests means fusion.
	CampaignMode string `json:"campaign_mode,omitempty"`
	// MutationRules lists the operator-mutation rules applied to derive
	// the test case (mutation findings only).
	MutationRules []string `json:"mutation_rules,omitempty"`
	// InjectDefects mirrors Campaign.InjectDefects so fault-injection
	// findings rebuild the same augmented solver on replay.
	InjectDefects []string `json:"inject_defects,omitempty"`

	// Backend identity, set on cross-check findings (bug_type
	// "backend-*"): which backend disagreed or failed, its full command
	// line, and the process post-mortem. Recorded so Replay can state
	// which backend a bundle implicates even when the binary is no
	// longer available on the replaying machine.
	Backend        string   `json:"backend,omitempty"`
	BackendArgv    []string `json:"backend_argv,omitempty"`
	BackendExit    int      `json:"backend_exit,omitempty"`
	BackendStderr  string   `json:"backend_stderr,omitempty"`
	BackendRetries int      `json:"backend_retries,omitempty"`

	// Consensus-oracle coordinates, set on majority/metamorphic finding
	// bundles. Votes is the full vote vector ("voter=verdict", SUT
	// first, abstainers included); Consensus the majority outcome;
	// MetaRelation/MetaRules/VariantVerdicts describe the metamorphic
	// pair (the variant script itself is persisted as variant.smt2
	// alongside fused.smt2).
	OraclePolicy    string   `json:"oracle_policy,omitempty"`
	Quorum          int      `json:"quorum,omitempty"`
	Votes           []string `json:"votes,omitempty"`
	Consensus       string   `json:"consensus,omitempty"`
	MetaRelation    string   `json:"meta_relation,omitempty"`
	MetaRules       []string `json:"meta_rules,omitempty"`
	VariantVerdicts []string `json:"variant_verdicts,omitempty"`
}

// artifactRef records one written bundle for checkpointing and shard
// merging: the dedup key (also the bundle's directory name), the task
// whose classification wrote it, and the finding's identity. The
// identity lets Merge decide whether the single-process run would have
// written this bundle: a shard records its locally-first trigger of a
// defect, but globally that task may be a duplicate whose bundle the
// unsharded run never writes.
type artifactRef struct {
	Key  string `json:"key"`
	Task int    `json:"task"`
	// BugType is the manifest's bug_type: a SUT bug kind, "quarantine",
	// or "backend-<kind>".
	BugType string `json:"bug_type,omitempty"`
	// Defect is set for SUT bug bundles.
	Defect string `json:"defect,omitempty"`
	// Backend/Oracle/Observed carry a backend finding's dedup
	// coordinates.
	Backend  string `json:"backend,omitempty"`
	Oracle   string `json:"oracle,omitempty"`
	Observed string `json:"observed,omitempty"`
}

// artifactWriter persists reproducer bundles under one directory,
// deduplicated by bug hash. It is only ever called from the in-order
// classification loop, so it needs no locking and writes in a
// deterministic order.
type artifactWriter struct {
	dir     string
	written map[string]bool
	paths   []string
	refs    []artifactRef
	err     error // first write error, surfaced at campaign end
}

func newArtifactWriter(dir string) *artifactWriter {
	return &artifactWriter{dir: dir, written: map[string]bool{}}
}

// restore rehydrates the dedup state from a checkpoint's refs: bundles
// written before the pause (already on disk under the same directory)
// keep suppressing duplicates, and the cumulative path list stays in
// write order.
func (w *artifactWriter) restore(refs []artifactRef) {
	for _, r := range refs {
		w.written[r.Key] = true
		w.paths = append(w.paths, filepath.Join(w.dir, r.Key))
		w.refs = append(w.refs, r)
	}
}

// bugHash identifies a bundle: same SUT, observation kind, defect,
// backend, and fused text hash to the same directory, so duplicate
// triggers do not pile up bundles, while a SUT finding and a backend
// finding on the same fused script get distinct bundles.
func bugHash(sut, release, obs, fusedText string) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%s|%s", sut, release, obs, fusedText)
	return fmt.Sprintf("%016x", h.Sum64())
}

// write persists one bundle: seed1.smt2, seed2.smt2, fused.smt2 (the
// test case — a fused script or a mutant), and manifest.json under
// dir/<bughash>/. task is the classifying task's global id, recorded
// for checkpointing and shard merging. Returns the bundle path (""
// when skipped as a duplicate).
func (w *artifactWriter) write(m Manifest, ancestors [2]*core.Seed, script *smtlib.Script, task int) string {
	return w.writeExtra(m, ancestors, script, task, nil)
}

// writeExtra is write with additional bundle files (name → contents):
// metamorphic findings persist the variant script as variant.smt2.
func (w *artifactWriter) writeExtra(m Manifest, ancestors [2]*core.Seed, script *smtlib.Script, task int, extra map[string]string) string {
	if w == nil {
		return ""
	}
	fusedText := smtlib.Print(script)
	key := bugHash(m.SUT, m.Release, m.BugType+"|"+m.Defect+"|"+m.FaultMsg+"|"+m.Backend, fusedText)
	if w.written[key] {
		return ""
	}
	w.written[key] = true
	dir := filepath.Join(w.dir, key)
	if err := w.writeBundle(dir, m, ancestors, fusedText, extra); err != nil && w.err == nil {
		w.err = err
	}
	w.paths = append(w.paths, dir)
	w.refs = append(w.refs, artifactRef{
		Key:      key,
		Task:     task,
		BugType:  m.BugType,
		Defect:   m.Defect,
		Backend:  m.Backend,
		Oracle:   m.Oracle,
		Observed: m.Observed,
	})
	return dir
}

func (w *artifactWriter) writeBundle(dir string, m Manifest, ancestors [2]*core.Seed, fusedText string, extra map[string]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	files := map[string]string{
		"seed1.smt2": smtlib.Print(ancestors[0].Script),
		"seed2.smt2": smtlib.Print(ancestors[1].Script),
		"fused.smt2": fusedText,
	}
	for name, text := range extra {
		files[name] = text
	}
	for name, text := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(text), 0o644); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "manifest.json"), append(data, '\n'), 0o644)
}

// ReadManifest loads a bundle's manifest.json.
func ReadManifest(bundleDir string) (Manifest, error) {
	var m Manifest
	data, err := os.ReadFile(filepath.Join(bundleDir, "manifest.json"))
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, err
	}
	if m.Schema != ManifestSchema {
		return m, fmt.Errorf("artifacts: unsupported manifest schema %d", m.Schema)
	}
	return m, nil
}

// ReplayReport is the outcome of replaying one reproducer bundle.
type ReplayReport struct {
	// FusedMatches reports whether the regenerated fused script is
	// byte-identical to the persisted fused.smt2.
	FusedMatches bool
	// ResultMatches reports whether the SUT's verdict equals the
	// manifest's observed verdict.
	ResultMatches bool
	// DefectFired reports whether the manifest's primary defect fired
	// again (vacuously true for quarantine bundles with no defect).
	DefectFired bool
	// VariantMatches reports whether the regenerated metamorphic
	// variant is byte-identical to the persisted variant.smt2
	// (vacuously true for bundles without one).
	VariantMatches bool
	Observed       solver.Result
	// Backend names the cross-check backend a backend-finding bundle
	// implicates ("" for SUT findings). Replay regenerates the fused
	// test and re-runs the SUT, but never re-invokes the backend — the
	// binary may be absent on the replaying machine — so for backend
	// bundles ResultMatches is vacuously true and the manifest's
	// backend_argv/backend_exit/backend_stderr fields carry the
	// original observation.
	Backend string
}

// Exact reports a fully faithful reproduction.
func (r ReplayReport) Exact() bool {
	return r.FusedMatches && r.ResultMatches && r.DefectFired && r.VariantMatches
}

// Replay regenerates the bundle's fused test from its RNG coordinates
// alone — campaign seed, logic, iteration, plus the campaign shape —
// and re-runs the solver under test on it, verifying the finding
// reproduces exactly.
func Replay(bundleDir string) (ReplayReport, error) {
	var rep ReplayReport
	m, err := ReadManifest(bundleDir)
	if err != nil {
		return rep, err
	}
	wantFused, err := os.ReadFile(filepath.Join(bundleDir, "fused.smt2"))
	if err != nil {
		return rep, err
	}

	cfg := Campaign{
		SUT:        bugdb.SUT(m.SUT),
		Release:    m.Release,
		Logics:     []gen.Logic{gen.Logic(m.Logic)},
		Iterations: m.Iterations,
		SeedPool:   m.SeedPool,
		Seed:       m.CampaignSeed,
		Threads:    1,
		ConcatOnly: m.ConcatOnly,
		Fuel:       m.Fuel,
		Mode:       CampaignMode(m.CampaignMode),
		Oracle:     OraclePolicy(m.OraclePolicy),
		Quorum:     m.Quorum,
	}
	for _, d := range m.InjectDefects {
		cfg.InjectDefects = append(cfg.InjectDefects, solver.Defect(d))
	}
	cfg = cfg.withDefaults()
	sut, err := makeSUT(cfg, nil)
	if err != nil {
		return rep, err
	}
	pools, err := buildCorpus(cfg, []*solver.Solver{sut}, nil, nil)
	if err != nil {
		return rep, err
	}
	out := runTask(cfg, pools, sut, nil, nil, m.Iteration)
	if !out.tested {
		return rep, fmt.Errorf("artifacts: task (seed=%d logic=%s iter=%d) produced no fused test on replay", m.CampaignSeed, m.Logic, m.Iteration)
	}
	rep.Observed = out.run.Result
	rep.Backend = m.Backend
	rep.FusedMatches = smtlib.Print(out.testScript()) == string(wantFused)
	if m.Backend != "" {
		// A backend-finding bundle: the observed verdict belongs to the
		// cross-check backend, which Replay does not re-invoke. The SUT
		// replay above still verifies the fused test regenerates.
		rep.ResultMatches = true
	} else {
		rep.ResultMatches = out.run.Result.String() == m.Observed ||
			(out.run.Crashed && m.Observed == "crash") ||
			(out.run.InternalFault && m.Observed == "internal-fault")
	}
	rep.VariantMatches = true
	if wantVariant, err := os.ReadFile(filepath.Join(bundleDir, "variant.smt2")); err == nil {
		// A metamorphic bundle: the variant must regenerate byte-for-byte
		// from the same coordinates (its RNG stream is the task's
		// metaSeed domain, replayed by runTask under the manifest's
		// oracle policy).
		rep.VariantMatches = out.variant != nil && smtlib.Print(out.variant.Script) == string(wantVariant)
	}
	rep.DefectFired = m.Defect == ""
	for _, d := range out.run.DefectsFired {
		if string(d) == m.Defect {
			rep.DefectFired = true
		}
	}
	for _, d := range out.variantRun.DefectsFired {
		if string(d) == m.Defect && m.Defect != "" {
			rep.DefectFired = true
		}
	}
	return rep, nil
}
