package harness

import (
	"bytes"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/backend"
	"repro/internal/bugdb"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/solver"
	"repro/internal/telemetry"
)

// consensusCC is the shared consensus-acceptance campaign: a wild-mode
// (unknown ground truth) QF_NRA campaign whose SUT is an otherwise
// clean cvc4sim 1.5 seeded with the guard-collapse soundness defect,
// cross-checked by two clean sibling releases. The model-validation
// oracle is off, so the consensus policies are the only oracles in
// play. At this seed the SUT loses the majority vote on several tasks
// — all with the same verdict signature, so they dedup to exactly one
// finding — and violates the metamorphic relation on several variant
// pairs.
func consensusCC() CampaignConfig {
	return CampaignConfig{
		SUT:               "cvc4sim",
		Release:           "1.5",
		Logics:            []string{"QF_NRA"},
		Iterations:        150,
		SeedPool:          8,
		Seed:              31,
		Mode:              "wild",
		Oracle:            "majority",
		DisableModelCheck: true,
		InjectDefects:     []string{string(solver.DefLeGuardCollapse)},
		Backends: []BackendConfig{
			{Sim: &SimBackendConfig{SUT: "cvc4sim", Release: "1.6"}},
			{Sim: &SimBackendConfig{SUT: "cvc4sim", Release: "1.7"}},
		},
	}
}

// TestMajorityOutvotesSeededDissenter is the majority-policy
// acceptance test: the seeded dissenter (the SUT itself) is outvoted
// by the clean backends on several tasks, all deduplicating to exactly
// one majority-disagreement finding triaged to the injected defect,
// with a replayable reproducer bundle recording the full vote vector.
func TestMajorityOutvotesSeededDissenter(t *testing.T) {
	cc := consensusCC()
	cc.ArtifactDir = t.TempDir()
	out, _ := runToCompletion(t, cc)
	res := out.Result

	if res.Tests == 0 || res.Quarantined != 0 {
		t.Fatalf("campaign shape off: tests=%d quarantined=%d", res.Tests, res.Quarantined)
	}
	// Every tested task has unknown status in wild mode, so the
	// majority policy voted on all of them: each either reached a
	// consensus or abstained.
	if res.OracleConsensus+res.OracleAbstained != res.Tests {
		t.Errorf("consensus %d + abstained %d != tests %d",
			res.OracleConsensus, res.OracleAbstained, res.Tests)
	}
	if res.OracleVotes == 0 || res.OracleConsensus == 0 {
		t.Fatalf("majority policy cast no votes: votes=%d consensus=%d", res.OracleVotes, res.OracleConsensus)
	}
	if res.SutOutvoted < 2 {
		t.Fatalf("SUT outvoted %d times, want several re-triggers to exercise dedup", res.SutOutvoted)
	}
	// The known-status funnel must stay untouched: unknown ground
	// truth means no soundness classification and no legacy
	// disagreements.
	if len(res.Bugs) != 0 || res.ReferenceDisagreements != 0 {
		t.Errorf("known-status funnel fired on unknown-status tasks: bugs=%d refDisagreements=%d",
			len(res.Bugs), res.ReferenceDisagreements)
	}
	for _, rep := range res.Backends {
		if rep.Disagreements != 0 || rep.Outvoted != 0 {
			t.Errorf("clean backend %s blamed: disagreements=%d outvoted=%d",
				rep.Name, rep.Disagreements, rep.Outvoted)
		}
	}

	// All re-triggers dedup to exactly one finding, against the SUT.
	if len(res.BackendFindings) != 1 {
		t.Fatalf("want exactly one deduplicated finding, got %+v", res.BackendFindings)
	}
	f := res.BackendFindings[0]
	if f.Kind != bugdb.MajorityDisagreement || f.Backend != "sut" {
		t.Fatalf("finding misattributed: %+v", f)
	}
	if f.Oracle != "unsat" || f.Observed != "sat" {
		t.Errorf("finding verdicts: oracle=%s observed=%s, want unsat/sat", f.Oracle, f.Observed)
	}
	if f.Defect != string(solver.DefLeGuardCollapse) {
		t.Errorf("SUT finding triaged to %q, want the injected defect", f.Defect)
	}
	if !strings.Contains(f.Reason, "outvoted") || !strings.Contains(f.Reason, "quorum 2") {
		t.Errorf("finding reason %q does not describe the vote", f.Reason)
	}

	// The funnel counters mirror the Result exactly.
	for name, want := range map[string]int{
		"yy_oracle_votes_total":     res.OracleVotes,
		"yy_oracle_consensus_total": res.OracleConsensus,
		"yy_oracle_abstained_total": res.OracleAbstained,
		"yy_oracle_outvoted_total":  res.SutOutvoted,
		"yy_backend_findings_total": len(res.BackendFindings),
	} {
		if got := out.Telemetry.Counter(name); got != int64(want) {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}

	// The reproducer bundle records the full vote vector and replays
	// exactly: same derived test, same verdict, same defect firing.
	if len(res.Artifacts) != 1 {
		t.Fatalf("want one bundle, got %v", res.Artifacts)
	}
	m, err := ReadManifest(res.Artifacts[0])
	if err != nil {
		t.Fatal(err)
	}
	if m.BugType != "backend-majority-disagreement" || m.OraclePolicy != "majority" {
		t.Errorf("manifest bug_type=%q oracle_policy=%q", m.BugType, m.OraclePolicy)
	}
	if m.Quorum != 2 || m.Consensus != "unsat" {
		t.Errorf("manifest quorum=%d consensus=%q, want 2/unsat", m.Quorum, m.Consensus)
	}
	if len(m.Votes) != 3 || m.Votes[0] != "sut=sat" {
		t.Errorf("manifest votes %v do not record the full vector SUT-first", m.Votes)
	}
	rr, err := Replay(res.Artifacts[0])
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Exact() {
		t.Errorf("majority bundle replay not exact: %+v", rr)
	}
}

// TestMajorityDeterminismAcrossThreadsResumeShards pins the consensus
// oracle's determinism contract: fingerprint, telemetry, JSONL trace,
// and bundle tree are byte-identical across worker counts, across a
// kill-and-resume cut, and across a 3-way shard/merge re-fold — the
// cross-shard finding dedup included.
func TestMajorityDeterminismAcrossThreadsResumeShards(t *testing.T) {
	cc := consensusCC()
	refCC := cc
	refCC.ArtifactDir = t.TempDir()
	ref, refTrace := runToCompletion(t, refCC)
	refTree := dirSnapshot(t, refCC.ArtifactDir)
	if len(ref.Result.BackendFindings) != 1 {
		t.Fatalf("reference campaign findings: %+v", ref.Result.BackendFindings)
	}

	// The trace carries the consensus annotations (schema 2).
	recs, err := DecodeTrace(bytes.NewReader(refTrace))
	if err != nil {
		t.Fatal(err)
	}
	consensused, abstained := 0, 0
	for _, rec := range recs {
		if rec.Schema != TraceSchema {
			t.Fatalf("trace record schema %d, want %d", rec.Schema, TraceSchema)
		}
		if rec.Status != "tested" {
			continue
		}
		if rec.OraclePolicy != "majority" {
			t.Fatalf("tested record missing oracle_policy: %+v", rec)
		}
		switch rec.Consensus {
		case "abstained":
			abstained++
		case "sat", "unsat":
			consensused++
		default:
			t.Fatalf("tested record consensus %q", rec.Consensus)
		}
	}
	if consensused != ref.Result.OracleConsensus || abstained != ref.Result.OracleAbstained {
		t.Errorf("trace consensus annotations %d/%d, result says %d/%d",
			consensused, abstained, ref.Result.OracleConsensus, ref.Result.OracleAbstained)
	}

	// Worker counts are a pure speedup.
	for _, threads := range []int{2, 4} {
		tc := cc
		tc.Threads = threads
		tc.ArtifactDir = t.TempDir()
		got, gotTrace := runToCompletion(t, tc)
		if !bytes.Equal(got.Result.Fingerprint(), ref.Result.Fingerprint()) {
			t.Errorf("threads=%d fingerprint diverged", threads)
		}
		if !reflect.DeepEqual(got.Telemetry, ref.Telemetry) {
			t.Errorf("threads=%d telemetry diverged", threads)
		}
		if !bytes.Equal(gotTrace, refTrace) {
			t.Errorf("threads=%d trace diverged", threads)
		}
		if tree := dirSnapshot(t, tc.ArtifactDir); !reflect.DeepEqual(tree, refTree) {
			t.Errorf("threads=%d bundle tree diverged", threads)
		}
	}

	// Kill-and-resume across the recording frontier: the checkpoint
	// round-trips the consensus scalars and the dedup set, so the
	// resumed leg neither loses nor re-records the finding.
	t.Run("resume", func(t *testing.T) {
		rc := cc
		rc.ArtifactDir = t.TempDir()
		var tb bytes.Buffer
		paused, err := Start(rc, RunOptions{Telemetry: telemetry.NewTracker(), Trace: &tb, StopAfter: 70})
		if err != nil {
			t.Fatal(err)
		}
		if !paused.Paused {
			t.Fatal("campaign did not pause")
		}
		data, err := EncodeCheckpoint(paused.Checkpoint)
		if err != nil {
			t.Fatal(err)
		}
		cp, err := DecodeCheckpoint(data)
		if err != nil {
			t.Fatal(err)
		}
		// Each leg gets a fresh tracker: the checkpoint carries the
		// accumulated telemetry, and the final outcome reports the total.
		done, err := Resume(cp, RunOptions{Telemetry: telemetry.NewTracker(), Trace: &tb, Threads: 3})
		if err != nil {
			t.Fatal(err)
		}
		if done.Paused {
			t.Fatal("resumed campaign paused again")
		}
		if !bytes.Equal(done.Result.Fingerprint(), ref.Result.Fingerprint()) {
			t.Errorf("resumed fingerprint diverged")
		}
		if !reflect.DeepEqual(done.Telemetry, ref.Telemetry) {
			t.Errorf("resumed telemetry diverged")
		}
		if !bytes.Equal(tb.Bytes(), refTrace) {
			t.Errorf("concatenated leg traces diverged (%d vs %d bytes)", tb.Len(), len(refTrace))
		}
		if tree := dirSnapshot(t, rc.ArtifactDir); !reflect.DeepEqual(tree, refTree) {
			t.Errorf("resumed bundle tree diverged")
		}
	})

	// 3-shard split, merged: the merge re-fold dedups the finding
	// re-triggers across shards and re-sums the consensus scalars.
	t.Run("shard-merge", func(t *testing.T) {
		const k = 3
		shardRoot := t.TempDir()
		envs := make([]*Envelope, k)
		for s := 0; s < k; s++ {
			sc := cc
			sc.Shards, sc.Shard = k, s
			sc.ArtifactDir = filepath.Join(shardRoot, fmt.Sprintf("sh%d", s))
			var tb bytes.Buffer
			out, err := Start(sc, RunOptions{Telemetry: telemetry.NewTracker(), Trace: &tb, Threads: s + 1})
			if err != nil {
				t.Fatalf("shard %d: %v", s, err)
			}
			envs[s] = out.Envelope
		}
		mergedDir := t.TempDir()
		m, err := Merge(envs, mergedDir)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(m.Result.Fingerprint(), ref.Result.Fingerprint()) {
			t.Errorf("merged fingerprint diverged:\nref %s\ngot %s",
				ref.Result.Fingerprint(), m.Result.Fingerprint())
		}
		if !reflect.DeepEqual(m.Telemetry, ref.Telemetry) {
			t.Errorf("merged telemetry diverged")
		}
		if !bytes.Equal(m.Trace, refTrace) {
			t.Errorf("merged trace diverged")
		}
		if tree := dirSnapshot(t, mergedDir); !reflect.DeepEqual(tree, refTree) {
			t.Errorf("merged bundle tree diverged:\nref %v\ngot %v", keysOf(refTree), keysOf(tree))
		}
	})
}

// TestMetamorphicFindsDefectKnownControlMisses is the metamorphic
// acceptance test: on unknown-ground-truth formulas the metamorphic
// policy reproduces the injected catalogued defect through
// relation-violating verdict pairs, while the known-policy control on
// the same coordinates finds nothing at all.
func TestMetamorphicFindsDefectKnownControlMisses(t *testing.T) {
	cc := consensusCC()
	cc.Oracle = "metamorphic"
	cc.Backends = nil
	cc.ArtifactDir = t.TempDir()
	out, _ := runToCompletion(t, cc)
	res := out.Result

	if res.MetamorphicPairs+res.MetamorphicSkips != res.Tests {
		t.Errorf("pairs %d + skips %d != tests %d", res.MetamorphicPairs, res.MetamorphicSkips, res.Tests)
	}
	if res.MetamorphicPairs == 0 || res.SutViolations == 0 {
		t.Fatalf("metamorphic policy inert: pairs=%d violations=%d", res.MetamorphicPairs, res.SutViolations)
	}
	if len(res.BackendFindings) == 0 {
		t.Fatal("violations recorded no findings")
	}
	reproduced := false
	for _, f := range res.BackendFindings {
		if f.Kind != bugdb.MetamorphicViolation || f.Backend != "sut" {
			t.Fatalf("unexpected finding %+v", f)
		}
		orig, variant, ok := strings.Cut(f.Observed, "/")
		if !ok || orig == variant {
			t.Errorf("finding observed %q is not a violating verdict pair", f.Observed)
		}
		if f.Defect == string(solver.DefLeGuardCollapse) {
			reproduced = true
		}
	}
	if !reproduced {
		t.Error("no violation triaged to the injected catalogued defect")
	}
	for name, want := range map[string]int{
		"yy_oracle_pairs_total":      res.MetamorphicPairs,
		"yy_oracle_pair_skips_total": res.MetamorphicSkips,
		"yy_oracle_violations_total": res.SutViolations,
	} {
		if got := out.Telemetry.Counter(name); got != int64(want) {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}

	// Each bundle ships the variant script and replays exactly —
	// including re-deriving the same variant from the meta seed.
	if len(res.Artifacts) == 0 {
		t.Fatal("no bundles written")
	}
	for _, p := range res.Artifacts {
		m, err := ReadManifest(p)
		if err != nil {
			t.Fatal(err)
		}
		if m.OraclePolicy != "metamorphic" || m.MetaRelation == "" || len(m.VariantVerdicts) == 0 {
			t.Errorf("bundle manifest missing metamorphic fields: %+v", m)
		}
		rr, err := Replay(p)
		if err != nil {
			t.Fatal(err)
		}
		if !rr.VariantMatches {
			t.Errorf("replay did not re-derive the recorded variant: %+v", rr)
		}
		if !rr.Exact() {
			t.Errorf("metamorphic bundle replay not exact: %+v", rr)
		}
	}

	// The control arm: same campaign coordinates, known-status policy.
	ctl := consensusCC()
	ctl.Oracle = "known"
	ctl.Backends = nil
	ctlOut, _ := runToCompletion(t, ctl)
	if n := len(ctlOut.Result.Bugs) + len(ctlOut.Result.BackendFindings); n != 0 {
		t.Errorf("known-policy control found %d findings on unknown-status formulas", n)
	}
	for _, name := range []string{"yy_oracle_pairs_total", "yy_oracle_violations_total", "yy_oracle_votes_total"} {
		if got := ctlOut.Telemetry.Counter(name); got != 0 {
			t.Errorf("control run incremented %s to %d", name, got)
		}
	}
}

// TestUnknownOracleBackendAbstains is the regression test for the
// disagreement predicate: a definite backend verdict on a task with
// unknown ground truth is not a disagreement — there is nothing to
// disagree with. The buggy predicate ((verdict==sat) != (oracle==sat))
// flagged every sat verdict on an unknown-status task.
func TestUnknownOracleBackendAbstains(t *testing.T) {
	cfg := Campaign{
		SUT:        bugdb.CVC4Sim,
		Release:    "1.5",
		Logics:     []gen.Logic{gen.QFNRA},
		Iterations: 60,
		SeedPool:   8,
		Seed:       5,
		Threads:    2,
		Mode:       ModeWild,
		Backends:   []backend.Spec{SimBackendSpec(bugdb.CVC4Sim, "1.6", 0)},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Backends[0]
	if rep.Sat == 0 {
		t.Fatal("backend never answered sat; the regression is not exercised")
	}
	if rep.Disagreements != 0 {
		t.Errorf("backend charged %d disagreements against unknown ground truth", rep.Disagreements)
	}
	for _, f := range res.BackendFindings {
		if f.Kind == bugdb.Disagreement {
			t.Errorf("disagreement finding on an unknown-status task: %+v", f)
		}
	}
}

// TestContradictionPredicates pins the tri-state comparison helpers:
// contradiction requires a definite oracle and the opposite definite
// verdict; unknown on either side abstains.
func TestContradictionPredicates(t *testing.T) {
	sutCases := []struct {
		res    solver.Result
		oracle core.Status
		want   bool
	}{
		{solver.ResSat, core.StatusUnsat, true},
		{solver.ResUnsat, core.StatusSat, true},
		{solver.ResSat, core.StatusSat, false},
		{solver.ResUnsat, core.StatusUnsat, false},
		{solver.ResSat, core.StatusUnknown, false},
		{solver.ResUnsat, core.StatusUnknown, false},
		{solver.ResUnknown, core.StatusSat, false},
		{solver.ResTimeout, core.StatusUnsat, false},
	}
	for _, c := range sutCases {
		if got := verdictContradicts(c.res, c.oracle); got != c.want {
			t.Errorf("verdictContradicts(%v, %v) = %v, want %v", c.res, c.oracle, got, c.want)
		}
	}
	bkCases := []struct {
		v      backend.Verdict
		oracle core.Status
		want   bool
	}{
		{backend.Sat, core.StatusUnsat, true},
		{backend.Unsat, core.StatusSat, true},
		{backend.Sat, core.StatusSat, false},
		{backend.Unsat, core.StatusUnsat, false},
		{backend.Sat, core.StatusUnknown, false},
		{backend.Unsat, core.StatusUnknown, false},
		{backend.Unknown, core.StatusSat, false},
		{backend.Timeout, core.StatusUnsat, false},
	}
	for _, c := range bkCases {
		if got := backendContradicts(c.v, c.oracle); got != c.want {
			t.Errorf("backendContradicts(%v, %v) = %v, want %v", c.v, c.oracle, got, c.want)
		}
	}
}

// TestQuorumGatesConsensus: a quorum larger than the voter pool makes
// every vote abstain, so the majority policy reports nothing at all.
func TestQuorumGatesConsensus(t *testing.T) {
	cc := consensusCC()
	cc.Quorum = 4 // three voters can never meet it
	out, _ := runToCompletion(t, cc)
	res := out.Result
	if res.OracleConsensus != 0 || res.SutOutvoted != 0 {
		t.Errorf("consensus reached under unmeetable quorum: consensus=%d outvoted=%d",
			res.OracleConsensus, res.SutOutvoted)
	}
	if res.OracleAbstained != res.Tests {
		t.Errorf("abstained=%d, want every tested task (%d)", res.OracleAbstained, res.Tests)
	}
	if len(res.BackendFindings) != 0 {
		t.Errorf("findings under unmeetable quorum: %+v", res.BackendFindings)
	}
}

// TestConsensusValidation covers the new configuration guards at both
// config layers: unknown policies, negative quorums, and the reserved
// voter name "sut".
func TestConsensusValidation(t *testing.T) {
	bad := consensusCC()
	bad.Oracle = "plurality"
	if err := bad.Validate(); err == nil {
		t.Error("unknown oracle policy accepted")
	}
	bad = consensusCC()
	bad.Quorum = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative quorum accepted")
	}
	bad = consensusCC()
	bad.Backends = append(bad.Backends, BackendConfig{Process: &ProcessBackendConfig{Name: "sut", Path: "/bin/true"}})
	if err := bad.Validate(); err == nil {
		t.Error("reserved backend name sut accepted")
	}

	cfg := Campaign{SUT: bugdb.Z3Sim, Iterations: 2, SeedPool: 2, Seed: 1, Oracle: "plurality"}
	if _, err := Run(cfg); err == nil {
		t.Error("harness accepted unknown oracle policy")
	}
	cfg = Campaign{SUT: bugdb.Z3Sim, Iterations: 2, SeedPool: 2, Seed: 1, Quorum: -2}
	if _, err := Run(cfg); err == nil {
		t.Error("harness accepted negative quorum")
	}
	cfg = Campaign{SUT: bugdb.Z3Sim, Iterations: 2, SeedPool: 2, Seed: 1,
		Backends: []backend.Spec{{Name: "sut", Hermetic: true}}}
	if _, err := Run(cfg); err == nil {
		t.Error("harness accepted reserved backend name sut")
	}
}

// TestOracleCounterInvariants is the counter↔report invariant suite:
// for every thread count, and for a shard/merge re-fold, the
// yy_backend_* and yy_oracle_* counter totals equal the corresponding
// Result field sums exactly — the counters are derived from Result
// diffs in the in-order classification stage, so any drift means a
// counting path bypassed it.
func TestOracleCounterInvariants(t *testing.T) {
	cc := consensusCC()
	cc.Oracle = "auto" // both policies live, all counters in play

	check := func(t *testing.T, res *Result, snap telemetry.Snapshot) {
		t.Helper()
		var checks, skipped, timeouts, crashes, garbled, retries, disagreements, outvoted, violations int
		for _, rep := range res.Backends {
			checks += rep.Checks
			skipped += rep.Skipped
			timeouts += rep.Timeouts
			crashes += rep.Crashes
			garbled += rep.Garbled
			retries += rep.Retries
			disagreements += rep.Disagreements
			outvoted += rep.Outvoted
			violations += rep.Violations
		}
		for name, want := range map[string]int{
			"yy_backend_checks_total":        checks,
			"yy_backend_skipped_total":       skipped,
			"yy_backend_timeouts_total":      timeouts,
			"yy_backend_crashes_total":       crashes,
			"yy_backend_garbled_total":       garbled,
			"yy_backend_retries_total":       retries,
			"yy_backend_disagreements_total": disagreements,
			"yy_backend_findings_total":      len(res.BackendFindings),
			"yy_oracle_votes_total":          res.OracleVotes,
			"yy_oracle_consensus_total":      res.OracleConsensus,
			"yy_oracle_abstained_total":      res.OracleAbstained,
			"yy_oracle_outvoted_total":       res.SutOutvoted + outvoted,
			"yy_oracle_pairs_total":          res.MetamorphicPairs,
			"yy_oracle_pair_skips_total":     res.MetamorphicSkips,
			"yy_oracle_violations_total":     res.SutViolations + violations,
		} {
			if got := snap.Counter(name); got != int64(want) {
				t.Errorf("%s = %d, want %d", name, got, want)
			}
		}
	}

	for _, threads := range []int{1, 2, 4} {
		tc := cc
		tc.Threads = threads
		out, _ := runToCompletion(t, tc)
		t.Run(fmt.Sprintf("threads=%d", threads), func(t *testing.T) {
			if out.Result.MetamorphicPairs == 0 || out.Result.OracleVotes == 0 {
				t.Fatal("auto policy inert; the invariants are vacuous")
			}
			check(t, out.Result, out.Telemetry)
		})
	}

	t.Run("shard-merge", func(t *testing.T) {
		const k = 3
		envs := make([]*Envelope, k)
		for s := 0; s < k; s++ {
			sc := cc
			sc.Shards, sc.Shard = k, s
			out, err := Start(sc, RunOptions{Telemetry: telemetry.NewTracker()})
			if err != nil {
				t.Fatalf("shard %d: %v", s, err)
			}
			envs[s] = out.Envelope
		}
		m, err := Merge(envs, "")
		if err != nil {
			t.Fatal(err)
		}
		check(t, m.Result, m.Telemetry)
	})
}
