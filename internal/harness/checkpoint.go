// Checkpoint/resume for campaigns. A Checkpoint snapshots a campaign's
// funnel position — the classification frontier plus every piece of
// state the in-order classification stage has folded so far (dedup
// maps, backend triage, breaker streaks, artifact refs, telemetry) —
// as a versioned, checksummed JSON document. Resume rebuilds the exact
// runtime state and continues: because every RNG stream derives from
// (campaign seed, logic, iteration) and classification is strict
// task-id order, the resumed campaign's results, metrics, and JSONL
// trace are byte-identical to an uninterrupted run's.
//
// The frontier is a single integer: classification applies outcomes in
// strict global task order, so "Done = N" means exactly the first N
// included task ids are classified — there are never holes. Mid-family
// frontiers are handled by warm replay (see runLeg): the resumed leg
// re-executes a family's already-classified prefix, discarding the
// outcomes, purely to reconstruct the solver's warm-cache state that
// the next task's fuel counters depend on.
package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"path/filepath"
	"time"

	"repro/internal/backend"
	"repro/internal/bugdb"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/smtlib"
	"repro/internal/solver"
	"repro/internal/telemetry"
)

// CheckpointSchema versions the checkpoint payload layout. Decoding
// any other schema fails closed: a version-skewed checkpoint must
// never resume silently wrong.
const CheckpointSchema = 1

const (
	kindCheckpoint = "yinyang-checkpoint"
	kindEnvelope   = "yinyang-envelope"
)

// SimBackendConfig selects a hermetic in-process cross-check backend
// (a simulated solver release), the serializable mirror of
// SimBackendSpec's arguments.
type SimBackendConfig struct {
	SUT     string `json:"sut"`
	Release string `json:"release,omitempty"` // "" = trunk
	Fuel    int64  `json:"fuel,omitempty"`    // Campaign.Fuel semantics
	// InjectDefects adds defects beyond the release's catalogued set,
	// mirroring SimBackendSpec's variadic parameter (consensus suites
	// script a dissenting voter with it).
	InjectDefects []string `json:"inject_defects,omitempty"`
}

// ProcessBackendConfig selects an external SMT-LIB solver binary under
// process supervision: the serializable mirror of backend.ProcessConfig
// (which itself cannot be serialized — it carries a sleep hook).
type ProcessBackendConfig struct {
	Name string   `json:"name"`
	Path string   `json:"path"`
	Args []string `json:"args,omitempty"`
	// Timeout is the per-invocation wall-clock deadline in nanoseconds
	// (0 = default 10s).
	Timeout time.Duration `json:"timeout_ns,omitempty"`
	// Retries follows backend.ProcessConfig semantics: 0 = default (2),
	// negative = no retries.
	Retries int `json:"retries,omitempty"`
	// Breaker is the circuit breaker threshold (0 = default 5).
	Breaker int `json:"breaker,omitempty"`
}

// BackendConfig is one cross-check backend in a serializable campaign
// configuration: exactly one of Sim or Process must be set.
type BackendConfig struct {
	Sim     *SimBackendConfig     `json:"sim,omitempty"`
	Process *ProcessBackendConfig `json:"process,omitempty"`
}

// name returns the backend's report/finding label, matching what the
// built Spec will carry.
func (bc BackendConfig) name() string {
	switch {
	case bc.Sim != nil:
		release := bc.Sim.Release
		if release == "" {
			release = "trunk"
		}
		return bc.Sim.SUT + "@" + release
	case bc.Process != nil:
		return bc.Process.Name
	}
	return ""
}

func (bc BackendConfig) validate() error {
	switch {
	case bc.Sim != nil && bc.Process != nil:
		return fmt.Errorf("backend config sets both sim and process")
	case bc.Sim != nil:
		switch bugdb.SUT(bc.Sim.SUT) {
		case bugdb.Z3Sim, bugdb.CVC4Sim:
		default:
			return fmt.Errorf("backend config: unknown simulated solver %q", bc.Sim.SUT)
		}
		release := bc.Sim.Release
		if release == "" {
			release = "trunk"
		}
		if _, err := bugdb.DefectsIn(bugdb.SUT(bc.Sim.SUT), release); err != nil {
			return fmt.Errorf("backend config: %v", err)
		}
	case bc.Process != nil:
		if bc.Process.Name == "" {
			return fmt.Errorf("backend config: process backend with empty name")
		}
		if bc.Process.Path == "" {
			return fmt.Errorf("backend config: process backend %q with empty path", bc.Process.Name)
		}
		if bc.Process.Timeout < 0 {
			return fmt.Errorf("backend config: process backend %q with negative timeout", bc.Process.Name)
		}
	default:
		return fmt.Errorf("backend config sets neither sim nor process")
	}
	return nil
}

// spec builds the runtime backend.Spec. Each call creates fresh Health
// state for process backends; Resume rehydrates it from the checkpoint.
func (bc BackendConfig) spec() (backend.Spec, error) {
	if err := bc.validate(); err != nil {
		return backend.Spec{}, err
	}
	if bc.Sim != nil {
		var inject []solver.Defect
		for _, d := range bc.Sim.InjectDefects {
			inject = append(inject, solver.Defect(d))
		}
		return SimBackendSpec(bugdb.SUT(bc.Sim.SUT), bc.Sim.Release, bc.Sim.Fuel, inject...), nil
	}
	p := bc.Process
	return backend.ProcessSpec(backend.ProcessConfig{
		Name:             p.Name,
		Path:             p.Path,
		Args:             p.Args,
		Timeout:          p.Timeout,
		Retries:          p.Retries,
		BreakerThreshold: p.Breaker,
	}), nil
}

// CampaignConfig is the serializable identity of a campaign: everything
// that determines its results, metrics, and trace, plus the shard
// coordinates. It deliberately omits the runtime attachments (Telemetry,
// Trace, worker count is advisory) — those live in RunOptions and may
// differ between the legs of a paused campaign or between shards
// without affecting any output byte.
//
// Campaign.Fusion's function-table override is not representable; a
// config always uses the default fusion table.
type CampaignConfig struct {
	SUT               string   `json:"sut"`
	Release           string   `json:"release,omitempty"`
	Logics            []string `json:"logics,omitempty"`
	Iterations        int      `json:"iterations,omitempty"`
	SeedPool          int      `json:"seed_pool,omitempty"`
	Seed              int64    `json:"seed"`
	Threads           int      `json:"threads,omitempty"`
	Mode              string   `json:"mode,omitempty"`
	DisableModelCheck bool     `json:"disable_model_check,omitempty"`
	ConcatOnly        bool     `json:"concat_only,omitempty"`
	// MaxPairs and ReplaceProb mirror core.Options.
	MaxPairs    int     `json:"max_pairs,omitempty"`
	ReplaceProb float64 `json:"replace_prob,omitempty"`
	Fuel        int64   `json:"fuel,omitempty"`
	// WallTimeout (nanoseconds) arms the wall-clock watchdog; campaigns
	// using it forfeit bit-identical resume the same way they forfeit
	// thread-count invariance.
	WallTimeout   time.Duration   `json:"wall_timeout_ns,omitempty"`
	ArtifactDir   string          `json:"artifact_dir,omitempty"`
	InjectDefects []string        `json:"inject_defects,omitempty"`
	Backends      []BackendConfig `json:"backends,omitempty"`
	// Oracle and Quorum mirror Campaign.Oracle/Quorum. omitempty keeps
	// pre-consensus checkpoints decodable and known-policy documents
	// byte-identical to what older builds wrote.
	Oracle string `json:"oracle,omitempty"`
	Quorum int    `json:"quorum,omitempty"`
	// Shard/Shards split the task space across independent processes:
	// this config's process classifies exactly the global task ids with
	// id % Shards == Shard. Shards ≤ 1 means unsharded.
	Shard  int `json:"shard,omitempty"`
	Shards int `json:"shards,omitempty"`
}

// withDefaults mirrors Campaign.withDefaults so task counts, families,
// and RNG coordinates computed from a config match the running
// campaign's exactly.
func (cc CampaignConfig) withDefaults() CampaignConfig {
	if cc.Release == "" {
		cc.Release = "trunk"
	}
	if len(cc.Logics) == 0 {
		for _, l := range gen.AllLogics {
			cc.Logics = append(cc.Logics, string(l))
		}
	}
	if cc.Iterations == 0 {
		cc.Iterations = 200
	}
	if cc.SeedPool == 0 {
		cc.SeedPool = 20
	}
	if cc.Threads <= 0 {
		cc.Threads = 1
	}
	if cc.Mode == "" {
		cc.Mode = string(ModeFusion)
	}
	if cc.Shards <= 0 {
		cc.Shards = 1
	}
	if cc.Oracle == "" {
		cc.Oracle = string(OracleKnown)
	}
	if cc.Quorum == 0 {
		cc.Quorum = 2
	}
	return cc
}

// Validate rejects configurations that cannot identify a runnable
// campaign. It is called by Start, Resume, Merge, and the checkpoint
// decoder, so a corrupt or hand-edited document fails closed with a
// diagnostic instead of running a different experiment.
func (cc CampaignConfig) Validate() error {
	d := cc.withDefaults()
	if _, err := bugdb.DefectsIn(bugdb.SUT(d.SUT), d.Release); err != nil {
		return fmt.Errorf("harness: config: %v", err)
	}
	switch CampaignMode(d.Mode) {
	case ModeFusion, ModeMutate, ModeBoth, ModeWild:
	default:
		return fmt.Errorf("harness: config: unknown campaign mode %q", d.Mode)
	}
	switch OraclePolicy(d.Oracle) {
	case OracleKnown, OracleMajority, OracleMetamorphic, OracleAuto:
	default:
		return fmt.Errorf("harness: config: unknown oracle policy %q", d.Oracle)
	}
	if cc.Quorum < 0 {
		return fmt.Errorf("harness: config: negative quorum %d", cc.Quorum)
	}
	if d.ConcatOnly && CampaignMode(d.Mode) != ModeFusion {
		return fmt.Errorf("harness: config: ConcatOnly requires fusion mode, got %q", d.Mode)
	}
	if cc.Iterations < 0 {
		return fmt.Errorf("harness: config: negative iterations %d", cc.Iterations)
	}
	if cc.SeedPool < 0 {
		return fmt.Errorf("harness: config: negative seed pool %d", cc.SeedPool)
	}
	for _, l := range d.Logics {
		if _, err := gen.New(gen.Logic(l), 0); err != nil {
			return fmt.Errorf("harness: config: %v", err)
		}
	}
	if d.MaxPairs < 0 {
		return fmt.Errorf("harness: config: negative max_pairs %d", d.MaxPairs)
	}
	if d.ReplaceProb < 0 || d.ReplaceProb > 1 {
		return fmt.Errorf("harness: config: replace_prob %v outside [0,1]", d.ReplaceProb)
	}
	if d.WallTimeout < 0 {
		return fmt.Errorf("harness: config: negative wall timeout")
	}
	if cc.Shards < 0 || cc.Shard < 0 {
		return fmt.Errorf("harness: config: negative shard coordinates %d/%d", cc.Shard, cc.Shards)
	}
	if cc.Shard >= d.Shards {
		return fmt.Errorf("harness: config: shard %d out of range for %d shards", cc.Shard, d.Shards)
	}
	names := map[string]bool{}
	for i, bc := range d.Backends {
		if err := bc.validate(); err != nil {
			return fmt.Errorf("harness: config: backend %d: %v", i, err)
		}
		n := bc.name()
		if n == "sut" {
			return fmt.Errorf("harness: config: backend name %q is reserved", n)
		}
		if names[n] {
			return fmt.Errorf("harness: config: duplicate backend name %q", n)
		}
		names[n] = true
	}
	return nil
}

// campaign builds the runtime Campaign (without telemetry/trace
// attachments). Call on a defaulted, validated config.
func (cc CampaignConfig) campaign() (Campaign, error) {
	cfg := Campaign{
		SUT:               bugdb.SUT(cc.SUT),
		Release:           cc.Release,
		Iterations:        cc.Iterations,
		SeedPool:          cc.SeedPool,
		Seed:              cc.Seed,
		Threads:           cc.Threads,
		Mode:              CampaignMode(cc.Mode),
		DisableModelCheck: cc.DisableModelCheck,
		ConcatOnly:        cc.ConcatOnly,
		Fusion:            core.Options{MaxPairs: cc.MaxPairs, ReplaceProb: cc.ReplaceProb},
		Fuel:              cc.Fuel,
		WallTimeout:       cc.WallTimeout,
		ArtifactDir:       cc.ArtifactDir,
		Oracle:            OraclePolicy(cc.Oracle),
		Quorum:            cc.Quorum,
	}
	for _, l := range cc.Logics {
		cfg.Logics = append(cfg.Logics, gen.Logic(l))
	}
	for _, d := range cc.InjectDefects {
		cfg.InjectDefects = append(cfg.InjectDefects, solver.Defect(d))
	}
	for _, bc := range cc.Backends {
		spec, err := bc.spec()
		if err != nil {
			return Campaign{}, fmt.Errorf("harness: config: %w", err)
		}
		cfg.Backends = append(cfg.Backends, spec)
	}
	return cfg, nil
}

// total is the campaign-wide task count. Call on a defaulted config.
func (cc CampaignConfig) total() int { return len(cc.Logics) * cc.Iterations }

// ShardTaskCount returns the number of tasks this config's process
// classifies: the whole campaign when unsharded, this shard's
// allotment otherwise.
func (cc CampaignConfig) ShardTaskCount() int {
	return len(cc.withDefaults().includeIDs())
}

// includeIDs lists the global task ids this shard classifies, in
// ascending order: id % Shards == Shard. Call on a defaulted config.
func (cc CampaignConfig) includeIDs() []int {
	total := cc.total()
	if cc.Shards <= 1 {
		ids := make([]int, total)
		for i := range ids {
			ids[i] = i
		}
		return ids
	}
	var ids []int
	for id := cc.Shard; id < total; id += cc.Shards {
		ids = append(ids, id)
	}
	return ids
}

// backendNames lists the configured backends' labels in order.
func (cc CampaignConfig) backendNames() []string {
	names := make([]string, len(cc.Backends))
	for i, bc := range cc.Backends {
		names[i] = bc.name()
	}
	return names
}

// savedSeed serializes one bug ancestor. The witness model of sat seeds
// is intentionally dropped: it is consumed during fusion (which never
// re-runs for an already-recorded bug), not by anything downstream of
// classification.
type savedSeed struct {
	Script string `json:"script"`
	Status int    `json:"status"`
}

// savedBug serializes one deduplicated finding in recording order.
// Enum-valued fields are stored as their integer representations and
// range-checked on load.
type savedBug struct {
	Defect     string       `json:"defect"`
	Kind       string       `json:"kind"`
	Logic      string       `json:"logic"`
	Oracle     int          `json:"oracle"`
	Observed   int          `json:"observed"`
	FusionMode int          `json:"fusion_mode"`
	Rules      []string     `json:"rules,omitempty"`
	Script     string       `json:"script"`
	Seeds      [2]savedSeed `json:"seeds"`
	Tasks      []int        `json:"tasks"`
}

func savedBugOf(b Bug) savedBug {
	sb := savedBug{
		Defect:     string(b.Defect),
		Kind:       string(b.Kind),
		Logic:      string(b.Logic),
		Oracle:     int(b.Oracle),
		Observed:   int(b.Observed),
		FusionMode: int(b.Mode),
		Rules:      append([]string(nil), b.Rules...),
		Script:     smtlib.Print(b.Script),
		Tasks:      append([]int(nil), b.Tasks...),
	}
	for i, a := range b.Ancestors {
		sb.Seeds[i] = savedSeed{Script: smtlib.Print(a.Script), Status: int(a.Status)}
	}
	return sb
}

func bugFromSaved(sb savedBug) (Bug, error) {
	if sb.Defect == "" {
		return Bug{}, fmt.Errorf("bug with empty defect")
	}
	if sb.Oracle < int(core.StatusSat) || sb.Oracle > int(core.StatusUnknown) {
		return Bug{}, fmt.Errorf("bug %s: oracle %d out of range", sb.Defect, sb.Oracle)
	}
	if sb.Observed < int(solver.ResUnknown) || sb.Observed > int(solver.ResTimeout) {
		return Bug{}, fmt.Errorf("bug %s: observed verdict %d out of range", sb.Defect, sb.Observed)
	}
	if sb.FusionMode < int(core.ModeSatConj) || sb.FusionMode > int(core.ModeMixedUnsatConj) {
		return Bug{}, fmt.Errorf("bug %s: fusion mode %d out of range", sb.Defect, sb.FusionMode)
	}
	if len(sb.Tasks) == 0 {
		return Bug{}, fmt.Errorf("bug %s: no trigger tasks", sb.Defect)
	}
	script, err := smtlib.ParseScript(sb.Script)
	if err != nil {
		return Bug{}, fmt.Errorf("bug %s: script: %v", sb.Defect, err)
	}
	b := Bug{
		Defect:   solver.Defect(sb.Defect),
		Kind:     bugdb.BugType(sb.Kind),
		Logic:    gen.Logic(sb.Logic),
		Oracle:   core.Status(sb.Oracle),
		Observed: solver.Result(sb.Observed),
		Mode:     core.Mode(sb.FusionMode),
		Rules:    append([]string(nil), sb.Rules...),
		Script:   script,
		Tasks:    append([]int(nil), sb.Tasks...),
	}
	for i, s := range sb.Seeds {
		if s.Status != int(core.StatusSat) && s.Status != int(core.StatusUnsat) {
			return Bug{}, fmt.Errorf("bug %s: seed %d status %d out of range", sb.Defect, i, s.Status)
		}
		sc, err := smtlib.ParseScript(s.Script)
		if err != nil {
			return Bug{}, fmt.Errorf("bug %s: seed %d: %v", sb.Defect, i, err)
		}
		b.Ancestors[i] = &core.Seed{Script: sc, Status: core.Status(s.Status)}
	}
	return b, nil
}

// Fingerprint returns a canonical serialization of everything the
// campaign observed: the funnel counts, the findings (scripts in
// printed form, triggers in task order), the backend reports and
// findings, and the artifact bundle keys. Two Results describe the
// same campaign outcome iff their fingerprints are byte-identical;
// the determinism suites and the CLI compare resumed and sharded runs
// against uninterrupted references with it. (Plain DeepEqual on
// Result is too strong a comparison across process boundaries: a
// restored Bug's script is re-parsed from its printed form, which is
// textually canonical but not pointer-identical.)
func (r *Result) Fingerprint() []byte {
	s := savedState{
		Tests:                  r.Tests,
		Unknowns:               r.Unknowns,
		Duplicates:             r.Duplicates,
		ReferenceDisagreements: r.ReferenceDisagreements,
		InvalidInputs:          r.InvalidInputs,
		Timeouts:               r.Timeouts,
		Quarantined:            r.Quarantined,
		OracleVotes:            r.OracleVotes,
		OracleConsensus:        r.OracleConsensus,
		OracleAbstained:        r.OracleAbstained,
		SutOutvoted:            r.SutOutvoted,
		MetamorphicPairs:       r.MetamorphicPairs,
		MetamorphicSkips:       r.MetamorphicSkips,
		SutViolations:          r.SutViolations,
		Backends:               r.Backends,
		BackendFindings:        r.BackendFindings,
	}
	for _, b := range r.Bugs {
		s.Bugs = append(s.Bugs, savedBugOf(b))
	}
	for _, p := range r.Artifacts {
		// The bundle key alone: merged artifacts live under a different
		// parent directory than any shard's, by design.
		s.Artifacts = append(s.Artifacts, artifactRef{Key: filepath.Base(p)})
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		// savedState is plain data; Marshal cannot fail on it.
		panic(err)
	}
	return append(data, '\n')
}

// breakerState serializes one backend's circuit-breaker position, so a
// resumed campaign does not grant a failing binary a fresh allowance.
type breakerState struct {
	Streak int  `json:"streak,omitempty"`
	Open   bool `json:"open,omitempty"`
}

// savedState is the complete classification state at a frontier: the
// Result counters, the findings with their trigger tasks (the dedup
// map is reconstructible from them), the backend triage and breaker
// state, and the artifact refs.
type savedState struct {
	Tests                  int `json:"tests"`
	Unknowns               int `json:"unknowns,omitempty"`
	Duplicates             int `json:"duplicates,omitempty"`
	ReferenceDisagreements int `json:"reference_disagreements,omitempty"`
	InvalidInputs          int `json:"invalid_inputs,omitempty"`
	Timeouts               int `json:"timeouts,omitempty"`
	Quarantined            int `json:"quarantined,omitempty"`

	// Consensus-oracle tallies, mirroring the Result fields. omitempty
	// keeps known-policy documents byte-identical to pre-consensus ones.
	OracleVotes      int `json:"oracle_votes,omitempty"`
	OracleConsensus  int `json:"oracle_consensus,omitempty"`
	OracleAbstained  int `json:"oracle_abstained,omitempty"`
	SutOutvoted      int `json:"sut_outvoted,omitempty"`
	MetamorphicPairs int `json:"metamorphic_pairs,omitempty"`
	MetamorphicSkips int `json:"metamorphic_skips,omitempty"`
	SutViolations    int `json:"sut_violations,omitempty"`

	Bugs            []savedBug       `json:"bugs,omitempty"`
	Backends        []BackendReport  `json:"backends,omitempty"`
	BackendFindings []BackendFinding `json:"backend_findings,omitempty"`
	Breakers        []breakerState   `json:"breakers,omitempty"`
	Artifacts       []artifactRef    `json:"artifacts,omitempty"`
}

// captureState serializes the classification state. Bugs must still be
// in recording order (captureState is called before finish sorts them).
func captureState(cfg Campaign, st *runState) savedState {
	res := st.res
	s := savedState{
		Tests:                  res.Tests,
		Unknowns:               res.Unknowns,
		Duplicates:             res.Duplicates,
		ReferenceDisagreements: res.ReferenceDisagreements,
		InvalidInputs:          res.InvalidInputs,
		Timeouts:               res.Timeouts,
		Quarantined:            res.Quarantined,
		OracleVotes:            res.OracleVotes,
		OracleConsensus:        res.OracleConsensus,
		OracleAbstained:        res.OracleAbstained,
		SutOutvoted:            res.SutOutvoted,
		MetamorphicPairs:       res.MetamorphicPairs,
		MetamorphicSkips:       res.MetamorphicSkips,
		SutViolations:          res.SutViolations,
		Backends:               append([]BackendReport(nil), res.Backends...),
		BackendFindings:        append([]BackendFinding(nil), res.BackendFindings...),
	}
	for _, b := range res.Bugs {
		s.Bugs = append(s.Bugs, savedBugOf(b))
	}
	for _, spec := range cfg.Backends {
		streak, open := spec.Health.State()
		s.Breakers = append(s.Breakers, breakerState{Streak: streak, Open: open})
	}
	if st.aw != nil {
		s.Artifacts = append([]artifactRef(nil), st.aw.refs...)
	}
	return s
}

// restoreState rebuilds the runtime classification state from a
// checkpoint, including the dedup maps and the breaker state of the
// freshly built backend specs.
func restoreState(cfg Campaign, s savedState) (*runState, error) {
	st := newRunState(cfg)
	res := st.res
	res.Tests = s.Tests
	res.Unknowns = s.Unknowns
	res.Duplicates = s.Duplicates
	res.ReferenceDisagreements = s.ReferenceDisagreements
	res.InvalidInputs = s.InvalidInputs
	res.Timeouts = s.Timeouts
	res.Quarantined = s.Quarantined
	res.OracleVotes = s.OracleVotes
	res.OracleConsensus = s.OracleConsensus
	res.OracleAbstained = s.OracleAbstained
	res.SutOutvoted = s.SutOutvoted
	res.MetamorphicPairs = s.MetamorphicPairs
	res.MetamorphicSkips = s.MetamorphicSkips
	res.SutViolations = s.SutViolations
	for i, sb := range s.Bugs {
		b, err := bugFromSaved(sb)
		if err != nil {
			return nil, err
		}
		st.found[b.Defect] = i
		res.Bugs = append(res.Bugs, b)
	}
	if len(s.Backends) != len(cfg.Backends) {
		return nil, fmt.Errorf("state carries %d backend reports for %d configured backends", len(s.Backends), len(cfg.Backends))
	}
	res.Backends = append(res.Backends[:0], s.Backends...)
	res.BackendFindings = append([]BackendFinding(nil), s.BackendFindings...)
	nameIdx := map[string]int{"sut": -1}
	for i, spec := range cfg.Backends {
		nameIdx[spec.Name] = i
	}
	for _, f := range res.BackendFindings {
		i, ok := nameIdx[f.Backend]
		if !ok {
			return nil, fmt.Errorf("backend finding names unknown backend %q", f.Backend)
		}
		st.bt.seen[findingKey(i, f)] = true
	}
	if len(s.Breakers) != 0 && len(s.Breakers) != len(cfg.Backends) {
		return nil, fmt.Errorf("state carries %d breaker entries for %d configured backends", len(s.Breakers), len(cfg.Backends))
	}
	for i, br := range s.Breakers {
		cfg.Backends[i].Health.Restore(br.Streak, br.Open)
	}
	if st.aw != nil {
		st.aw.restore(s.Artifacts)
	} else if len(s.Artifacts) > 0 {
		return nil, fmt.Errorf("state carries %d artifact refs but the config has no artifact dir", len(s.Artifacts))
	}
	return st, nil
}

// validateState cross-checks a saved state against its config and
// frontier; done is the number of classified tasks. Every structural
// invariant the classification stage maintains is re-checked here, so
// a tampered document fails closed instead of resuming into impossible
// state.
func validateState(cc CampaignConfig, s savedState, done int) error {
	d := cc.withDefaults()
	include := d.includeIDs()
	if done < 0 || done > len(include) {
		return fmt.Errorf("frontier %d outside [0,%d]", done, len(include))
	}
	classified := make([]bool, d.total())
	for _, id := range include[:done] {
		classified[id] = true
	}
	for _, n := range []struct {
		name string
		v    int
	}{
		{"tests", s.Tests}, {"unknowns", s.Unknowns}, {"duplicates", s.Duplicates},
		{"reference_disagreements", s.ReferenceDisagreements},
		{"invalid_inputs", s.InvalidInputs}, {"timeouts", s.Timeouts},
		{"quarantined", s.Quarantined},
		{"oracle_votes", s.OracleVotes}, {"oracle_consensus", s.OracleConsensus},
		{"oracle_abstained", s.OracleAbstained}, {"sut_outvoted", s.SutOutvoted},
		{"metamorphic_pairs", s.MetamorphicPairs},
		{"metamorphic_skips", s.MetamorphicSkips},
		{"sut_violations", s.SutViolations},
	} {
		if n.v < 0 {
			return fmt.Errorf("negative %s count %d", n.name, n.v)
		}
	}
	if s.Tests+s.InvalidInputs+s.Quarantined > done {
		return fmt.Errorf("counts (%d tests + %d invalid + %d quarantined) exceed frontier %d",
			s.Tests, s.InvalidInputs, s.Quarantined, done)
	}
	if s.OracleConsensus+s.OracleAbstained > s.Tests {
		return fmt.Errorf("majority votes (%d consensus + %d abstained) exceed %d tests",
			s.OracleConsensus, s.OracleAbstained, s.Tests)
	}
	if s.MetamorphicPairs+s.MetamorphicSkips > s.Tests {
		return fmt.Errorf("metamorphic pairs (%d + %d skips) exceed %d tests",
			s.MetamorphicPairs, s.MetamorphicSkips, s.Tests)
	}
	logicOK := map[string]bool{}
	for _, l := range d.Logics {
		logicOK[l] = true
	}
	dupes := 0
	seenDefect := map[string]bool{}
	lastFirst := -1
	for i, sb := range s.Bugs {
		if _, err := bugFromSaved(sb); err != nil {
			return fmt.Errorf("bugs[%d]: %v", i, err)
		}
		if seenDefect[sb.Defect] {
			return fmt.Errorf("bugs[%d]: duplicate defect %q", i, sb.Defect)
		}
		seenDefect[sb.Defect] = true
		if !logicOK[sb.Logic] {
			return fmt.Errorf("bugs[%d]: logic %q not in campaign", i, sb.Logic)
		}
		prev := -1
		for _, t := range sb.Tasks {
			if t < 0 || t >= len(classified) || !classified[t] {
				return fmt.Errorf("bugs[%d]: trigger task %d not classified at frontier %d", i, t, done)
			}
			if t <= prev {
				return fmt.Errorf("bugs[%d]: trigger tasks not strictly ascending", i)
			}
			prev = t
		}
		if sb.Tasks[0] <= lastFirst {
			return fmt.Errorf("bugs[%d]: not in recording order", i)
		}
		lastFirst = sb.Tasks[0]
		dupes += len(sb.Tasks) - 1
	}
	if dupes != s.Duplicates {
		return fmt.Errorf("duplicates %d disagree with trigger tasks (%d)", s.Duplicates, dupes)
	}
	names := d.backendNames()
	if len(s.Backends) != len(names) {
		return fmt.Errorf("%d backend reports for %d configured backends", len(s.Backends), len(names))
	}
	// The SUT's pseudo-voter name is always a valid finding attribution
	// under the consensus policies.
	nameOK := map[string]bool{"sut": true}
	for i, rep := range s.Backends {
		if rep.Name != names[i] {
			return fmt.Errorf("backends[%d]: report for %q, config has %q", i, rep.Name, names[i])
		}
		nameOK[rep.Name] = true
	}
	if len(s.Breakers) != 0 && len(s.Breakers) != len(names) {
		return fmt.Errorf("%d breaker entries for %d configured backends", len(s.Breakers), len(names))
	}
	for i, f := range s.BackendFindings {
		if !nameOK[f.Backend] {
			return fmt.Errorf("backend_findings[%d]: unknown backend %q", i, f.Backend)
		}
		if f.Task < 0 || f.Task >= len(classified) || !classified[f.Task] {
			return fmt.Errorf("backend_findings[%d]: task %d not classified at frontier %d", i, f.Task, done)
		}
	}
	for i, r := range s.Artifacts {
		if d.ArtifactDir == "" {
			return fmt.Errorf("artifacts[%d]: ref without an artifact dir in the config", i)
		}
		if r.Key == "" {
			return fmt.Errorf("artifacts[%d]: empty key", i)
		}
		if r.Task < 0 || r.Task >= len(classified) || !classified[r.Task] {
			return fmt.Errorf("artifacts[%d]: task %d not classified at frontier %d", i, r.Task, done)
		}
	}
	return nil
}

// Checkpoint is a paused campaign: its identity (Config), its frontier
// (Done tasks classified, in this shard's ascending task order), the
// complete classification state at that frontier, the telemetry
// snapshot, and the accumulated JSONL trace bytes. Serialize with
// EncodeCheckpoint; continue with Resume.
type Checkpoint struct {
	Config CampaignConfig `json:"config"`
	// Done is the classification frontier: the number of this shard's
	// task ids (ascending) already classified, cumulative across legs.
	Done      int                `json:"done"`
	State     savedState         `json:"state"`
	Telemetry telemetry.Snapshot `json:"telemetry"`
	// Trace accumulates the JSONL trace of all completed legs, so a
	// chain of pauses still yields a whole-shard trace in the final
	// envelope even though each process only appends new records to its
	// own writer.
	Trace []byte `json:"trace,omitempty"`
}

func (cp *Checkpoint) validate() error {
	if err := cp.Config.Validate(); err != nil {
		return err
	}
	if err := validateState(cp.Config, cp.State, cp.Done); err != nil {
		return fmt.Errorf("harness: checkpoint: %v", err)
	}
	return nil
}

// sealed is the outer document of checkpoints and envelopes: a kind
// discriminator, a schema version, and an integrity checksum over the
// payload bytes. Unknown fields anywhere fail the decode.
type sealed struct {
	Kind     string          `json:"kind"`
	Schema   int             `json:"schema"`
	Checksum string          `json:"checksum"`
	Payload  json.RawMessage `json:"payload"`
}

// payloadChecksum hashes the compact form of the payload JSON:
// MarshalIndent reflows embedded raw messages, so the checksum must be
// insensitive to inter-token whitespace (and only to that).
func payloadChecksum(b []byte) (string, error) {
	var compact bytes.Buffer
	if err := json.Compact(&compact, b); err != nil {
		return "", err
	}
	h := fnv.New64a()
	h.Write(compact.Bytes())
	return fmt.Sprintf("fnv64a:%016x", h.Sum64()), nil
}

func sealDoc(kind string, schema int, payload any) ([]byte, error) {
	data, err := json.Marshal(payload)
	if err != nil {
		return nil, err
	}
	sum, err := payloadChecksum(data)
	if err != nil {
		return nil, err
	}
	out, err := json.MarshalIndent(sealed{
		Kind:     kind,
		Schema:   schema,
		Checksum: sum,
		Payload:  data,
	}, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// openDoc verifies the outer document and returns the payload bytes.
func openDoc(data []byte, kind string, schema int) (json.RawMessage, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s sealed
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("harness: %s: %v", kind, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("harness: %s: trailing data after document", kind)
	}
	if s.Kind != kind {
		return nil, fmt.Errorf("harness: expected a %s document, got kind %q", kind, s.Kind)
	}
	if s.Schema != schema {
		return nil, fmt.Errorf("harness: %s: unsupported schema %d (this build reads schema %d)", kind, s.Schema, schema)
	}
	got, err := payloadChecksum(s.Payload)
	if err != nil {
		return nil, fmt.Errorf("harness: %s: payload: %v", kind, err)
	}
	if got != s.Checksum {
		return nil, fmt.Errorf("harness: %s: payload checksum mismatch: document says %s, payload hashes to %s", kind, s.Checksum, got)
	}
	return s.Payload, nil
}

func decodeStrict(payload json.RawMessage, v any, kind string) error {
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("harness: %s payload: %v", kind, err)
	}
	if dec.More() {
		return fmt.Errorf("harness: %s payload: trailing data", kind)
	}
	return nil
}

// EncodeCheckpoint serializes a checkpoint as a versioned, checksummed
// JSON document. The checkpoint is validated first, so an impossible
// state is caught at the producer, not the consumer.
func EncodeCheckpoint(cp *Checkpoint) ([]byte, error) {
	if cp == nil {
		return nil, fmt.Errorf("harness: nil checkpoint")
	}
	if err := cp.validate(); err != nil {
		return nil, err
	}
	return sealDoc(kindCheckpoint, CheckpointSchema, cp)
}

// DecodeCheckpoint parses and fully validates a checkpoint document.
// Any corruption — framing, schema skew, checksum mismatch, unknown
// fields, or a state that violates the classification invariants —
// fails with a diagnostic; a checkpoint that decodes is safe to Resume.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	payload, err := openDoc(data, kindCheckpoint, CheckpointSchema)
	if err != nil {
		return nil, err
	}
	var cp Checkpoint
	if err := decodeStrict(payload, &cp, kindCheckpoint); err != nil {
		return nil, err
	}
	if err := cp.validate(); err != nil {
		return nil, err
	}
	return &cp, nil
}

// RunOptions carries the per-process knobs that are NOT part of a
// campaign's identity: they may differ between the legs of a paused
// campaign, or between shards, without affecting results, metrics, or
// trace bytes.
type RunOptions struct {
	// Threads overrides the config's worker count for this leg (0 =
	// use the config's). Results are invariant to it either way.
	Threads int
	// Telemetry, when non-nil, receives the campaign's aggregated
	// metrics. On resume the checkpoint's snapshot is merged in first,
	// so the final snapshot equals an uninterrupted run's.
	Telemetry *telemetry.Tracker
	// Trace, when non-nil, receives this leg's JSONL trace records —
	// only the new ones, so a resuming process can append to the file
	// the paused process was writing. Checkpoints and envelopes carry
	// the accumulated byte stream separately.
	Trace io.Writer
	// StopAfter, when positive, pauses the campaign once that many more
	// tasks have been classified.
	StopAfter int
	// Stop is polled after every classified task; returning true pauses
	// the campaign at that frontier.
	Stop func() bool
	// Progress observes (classified, shard total) after every
	// classified task, called from the classification goroutine — the
	// single owner of the telemetry tracker, so a Progress callback may
	// snapshot it safely.
	Progress func(done, total int)
}

// Outcome is the result of one Start or Resume leg.
type Outcome struct {
	// Result holds the findings: the complete campaign result, or the
	// partial state at the pause frontier.
	Result *Result
	// Paused reports whether the leg stopped at a checkpoint instead of
	// completing.
	Paused bool
	// Checkpoint is set when Paused: continue the campaign by passing
	// it to Resume, in this process or any other.
	Checkpoint *Checkpoint
	// Envelope is set when the leg completed: the shard's foldable
	// result. Merge combines the K shards of one campaign; an unsharded
	// campaign's envelope merges alone.
	Envelope *Envelope
	// Telemetry is the metrics snapshot at the frontier, including
	// counts carried from pre-pause legs even when no tracker was
	// supplied this leg.
	Telemetry telemetry.Snapshot
}

// Start runs a campaign (or one shard of it) from task zero.
func Start(cc CampaignConfig, opt RunOptions) (*Outcome, error) {
	return runConfig(cc, opt, nil)
}

// Resume continues a paused campaign from its checkpoint. The resumed
// run — whatever its thread count, and however many times it pauses
// again — produces results, metrics, and a (concatenated) trace
// byte-identical to an uninterrupted run of the same config.
func Resume(cp *Checkpoint, opt RunOptions) (*Outcome, error) {
	if cp == nil {
		return nil, fmt.Errorf("harness: nil checkpoint")
	}
	if err := cp.validate(); err != nil {
		return nil, err
	}
	return runConfig(cp.Config, opt, cp)
}

func runConfig(cc CampaignConfig, opt RunOptions, cp *Checkpoint) (*Outcome, error) {
	if err := cc.Validate(); err != nil {
		return nil, err
	}
	dcc := cc.withDefaults()
	cfg, err := dcc.campaign()
	if err != nil {
		return nil, err
	}
	if opt.Threads > 0 {
		cfg.Threads = opt.Threads
	}
	cfg = cfg.withDefaults()
	if err := validateCampaign(cfg); err != nil {
		return nil, err
	}

	include := dcc.includeIDs()
	var st *runState
	var carried telemetry.Snapshot
	var traceAcc bytes.Buffer
	if cp != nil {
		st, err = restoreState(cfg, cp.State)
		if err != nil {
			return nil, fmt.Errorf("harness: checkpoint: %v", err)
		}
		st.done = cp.Done
		include = include[cp.Done:]
		carried = cp.Telemetry
		if opt.Telemetry == nil && (len(carried.Counters) > 0 || len(carried.Histograms) > 0) {
			// The paused campaign was recording metrics; keep them whole
			// across a leg whose caller forgot to attach a tracker, the
			// same way the trace accumulator keeps the trace whole.
			opt.Telemetry = telemetry.NewTracker()
		}
		opt.Telemetry.Merge(carried)
		traceAcc.Write(cp.Trace)
	} else {
		st = newRunState(cfg)
	}
	cfg.Telemetry = opt.Telemetry

	// Tracing is armed when the caller wants live records OR when the
	// checkpoint already carries trace bytes (the envelope of a traced
	// campaign must stay whole across pauses, even through a leg whose
	// caller did not attach a writer).
	if opt.Trace != nil {
		cfg.Trace = io.MultiWriter(opt.Trace, &traceAcc)
	} else if traceAcc.Len() > 0 {
		cfg.Trace = &traceAcc
	}

	ctl := runControls{
		stopAfter:   opt.StopAfter,
		stop:        opt.Stop,
		progress:    opt.Progress,
		suppressVet: cp != nil || dcc.Shard != 0,
	}
	paused, err := runLeg(cfg, include, st, ctl)
	if err != nil {
		return nil, err
	}

	snap := carried
	if opt.Telemetry != nil {
		snap = opt.Telemetry.Snapshot()
	}
	finishBackends(st.res, cfg)
	state := captureState(cfg, st)
	traceBytes := append([]byte(nil), traceAcc.Bytes()...)

	out := &Outcome{Telemetry: snap}
	if paused {
		out.Paused = true
		out.Checkpoint = &Checkpoint{
			Config:    cc,
			Done:      st.done,
			State:     state,
			Telemetry: snap,
			Trace:     traceBytes,
		}
	} else {
		out.Envelope = &Envelope{
			Config:    cc,
			Tasks:     st.done,
			State:     state,
			Telemetry: snap,
			Trace:     traceBytes,
		}
	}
	res, err := finish(cfg, st)
	if err != nil {
		return nil, err
	}
	out.Result = res
	return out, nil
}
