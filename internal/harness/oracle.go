package harness

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/smtlib"
)

// ValidateModel is the model-validation oracle: a sat verdict is only
// as trustworthy as its witness, so the reported model is evaluated
// against every assert of the script the solver was actually given.
// This oracle is strictly stronger than verdict comparison — the
// solver's own certification runs against its *rewritten* asserts, and
// model-finalization bugs after certification are invisible to every
// verdict-based check.
//
// Quantified asserts are skipped: evaluating them needs search, not
// evaluation, and the generators only quantify over closed shapes whose
// ground part is covered by the remaining asserts. The empty model is
// legitimate for scripts without declarations; a nil model under a sat
// verdict is itself a finding.
func ValidateModel(sc *smtlib.Script, m eval.Model) (bool, string) {
	if m == nil {
		return false, "sat verdict with no model"
	}
	for i, a := range sc.Asserts() {
		if ast.HasQuantifier(a) {
			continue
		}
		v, err := eval.Bool(a, m)
		if err != nil {
			return false, fmt.Sprintf("assert[%d]: %v", i, err)
		}
		if !v {
			return false, fmt.Sprintf("assert[%d]: evaluates to false under the model", i)
		}
	}
	return true, ""
}
