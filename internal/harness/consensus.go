package harness

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/bugdb"
	"repro/internal/core"
	"repro/internal/mutate"
	"repro/internal/smtlib"
	"repro/internal/solver"
	"repro/internal/telemetry"
)

// Consensus-oracle funnel counters. Like the yy_backend_* family they
// aggregate over all voters and are incremented only by the in-order
// classification stage, so the totals are bit-identical for any thread
// count. Every counter is per-occurrence (re-triggers included), so a
// K-shard merge reproduces them by plain summation.
var (
	coVotes     = telemetry.NewCounter("yy_oracle_votes_total", "definite verdicts cast by consensus voters on unknown-status tasks")
	coConsensus = telemetry.NewCounter("yy_oracle_consensus_total", "unknown-status tasks where the majority policy reached a consensus")
	coAbstained = telemetry.NewCounter("yy_oracle_abstained_total", "unknown-status tasks where the majority policy abstained (quorum unmet or tie)")
	coOutvoted  = telemetry.NewCounter("yy_oracle_outvoted_total", "definite verdicts outvoted by a majority consensus, SUT included")
	coPairs     = telemetry.NewCounter("yy_oracle_pairs_total", "metamorphic variant pairs derived and solved")
	coPairSkips = telemetry.NewCounter("yy_oracle_pair_skips_total", "unknown-status tasks with no relation-preserving variant")
	coViolation = telemetry.NewCounter("yy_oracle_violations_total", "metamorphic pair-relation violations observed, SUT included")
)

// voter is one participant in a consensus vote: the solver under test
// (idx -1, pseudo-name "sut") or a cross-check backend, with its
// classified verdict for the task plus the post-mortem fields a
// finding would carry.
type voter struct {
	idx      int // backend index; -1 for the SUT
	name     string
	verdict  string // classified verdict label, as traced
	definite bool
	vote     core.Status // valid only when definite
	reason   string
	exitCode int
	stderr   string
	retries  int
}

// sutStatus classifies the SUT's run as a consensus vote: a definite
// verdict, or an abstention label ("crash", "timeout", "unknown").
func sutStatus(run RunResult) (label string, vote core.Status, definite bool) {
	if run.Crashed {
		return "crash", 0, false
	}
	switch run.Result {
	case solver.ResSat:
		return "sat", core.StatusSat, true
	case solver.ResUnsat:
		return "unsat", core.StatusUnsat, true
	default:
		return run.Result.String(), 0, false
	}
}

// backendStatus classifies a backend output as a consensus vote.
func backendStatus(v backend.Verdict) (vote core.Status, definite bool) {
	switch v {
	case backend.Sat:
		return core.StatusSat, true
	case backend.Unsat:
		return core.StatusUnsat, true
	default:
		return 0, false
	}
}

// voters assembles the task's vote vector in canonical order: the SUT
// first, then the backends in configuration order. Every voter appears
// — abstainers included — so the manifest records the full vector.
func voters(cfg Campaign, out *taskOutcome) []voter {
	vs := make([]voter, 0, 1+len(out.backendRuns))
	label, vote, def := sutStatus(out.run)
	reason := out.run.Reason
	if out.run.Crashed {
		reason = out.run.CrashMsg
	}
	vs = append(vs, voter{idx: -1, name: "sut", verdict: label,
		definite: def, vote: vote, reason: reason, exitCode: -1})
	for i, o := range out.backendRuns {
		vote, def := backendStatus(o.Verdict)
		vs = append(vs, voter{idx: i, name: cfg.Backends[i].Name,
			verdict: o.Verdict.String(), definite: def, vote: vote,
			reason: o.Reason, exitCode: o.ExitCode, stderr: o.Stderr,
			retries: o.Retries})
	}
	return vs
}

// voteVector renders the full vote vector for the reproducer manifest.
func voteVector(vs []voter) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.name + "=" + v.verdict
	}
	return out
}

// variantVector renders the variant solve's verdict vector (SUT first,
// then backends) for metamorphic finding manifests.
func variantVector(cfg Campaign, out *taskOutcome) []string {
	label, _, _ := sutStatus(out.variantRun)
	vec := make([]string, 0, 1+len(out.variantBackends))
	vec = append(vec, "sut="+label)
	for i, o := range out.variantBackends {
		vec = append(vec, cfg.Backends[i].Name+"="+o.Verdict.String())
	}
	return vec
}

// classifyConsensus applies the configured consensus policies to one
// unknown-status task. It runs after classify/classifyBackends in the
// in-order classification stage — known-status tasks (and the known
// policy) never reach the body, so the legacy funnel is untouched.
func classifyConsensus(res *Result, cfg Campaign, aw *artifactWriter, bt *backendTriage, out *taskOutcome) {
	if !out.tested || out.oracle() != core.StatusUnknown {
		return
	}
	if cfg.Oracle == OracleMajority || cfg.Oracle == OracleAuto {
		classifyMajority(res, cfg, aw, bt, out)
	}
	if cfg.Oracle == OracleMetamorphic || cfg.Oracle == OracleAuto {
		classifyMetamorphic(res, cfg, aw, bt, out)
	}
}

// classifyMajority folds all voters' definite verdicts into a
// consensus and attributes a finding to each outvoted voter. A vote
// with fewer than Quorum definite verdicts — or a tie — abstains: an
// abstention is a statement about the vote, not about any solver, so
// it produces no finding.
func classifyMajority(res *Result, cfg Campaign, aw *artifactWriter, bt *backendTriage, out *taskOutcome) {
	vs := voters(cfg, out)
	sat, unsat := 0, 0
	for _, v := range vs {
		if !v.definite {
			continue
		}
		res.OracleVotes++
		if v.vote == core.StatusSat {
			sat++
		} else {
			unsat++
		}
	}
	if sat+unsat < cfg.Quorum || sat == unsat {
		res.OracleAbstained++
		out.consensus = "abstained"
		return
	}
	consensus, winners, losers := core.StatusSat, sat, unsat
	if unsat > sat {
		consensus, winners, losers = core.StatusUnsat, unsat, sat
	}
	res.OracleConsensus++
	out.consensus = consensus.String()
	logic := cfg.Logics[out.id/cfg.Iterations]
	for _, v := range vs {
		if !v.definite || v.vote == consensus {
			continue
		}
		if v.idx < 0 {
			res.SutOutvoted++
		} else {
			res.Backends[v.idx].Outvoted++
		}
		key := bkKey{backendIdx: v.idx, kind: bugdb.MajorityDisagreement,
			oracle: out.consensus, observed: v.verdict}
		if bt.seen[key] {
			continue
		}
		bt.seen[key] = true
		f := BackendFinding{
			Backend:  v.name,
			Kind:     bugdb.MajorityDisagreement,
			Logic:    string(logic),
			Oracle:   out.consensus,
			Observed: v.verdict,
			Reason:   fmt.Sprintf("voted %s, outvoted %d-%d under quorum %d", v.verdict, winners, losers, cfg.Quorum),
			ExitCode: v.exitCode,
			Stderr:   v.stderr,
			Retries:  v.retries,
			Task:     out.id,
		}
		var defect solver.Defect
		if v.idx < 0 {
			// The SUT lost the vote: triage the bundle to the catalogued
			// defect the run fired, like a known-status soundness finding.
			if d, ok := primaryDefect(out.run.DefectsFired, bugdb.Soundness); ok {
				defect = d
				f.Defect = string(d)
			}
		}
		res.BackendFindings = append(res.BackendFindings, f)
		if aw != nil {
			m := manifestFor(cfg, *out, "backend-"+string(f.Kind), defect)
			m.Backend = f.Backend
			if v.idx >= 0 {
				m.BackendArgv = cfg.Backends[v.idx].Argv
				m.BackendExit = v.exitCode
				m.BackendStderr = v.stderr
				m.BackendRetries = v.retries
			}
			m.Observed = f.Observed
			m.Reason = f.Reason
			m.Oracle = out.consensus
			m.OraclePolicy = string(cfg.Oracle)
			m.Quorum = cfg.Quorum
			m.Votes = voteVector(vs)
			m.Consensus = out.consensus
			aw.write(m, out.ancestors, out.testScript(), out.id)
		}
	}
}

// relationViolated reports whether a definite (orig, variant) verdict
// pair contradicts the derivation relation.
func relationViolated(rel mutate.Relation, orig, variant core.Status) bool {
	switch rel {
	case mutate.RelEquivalent:
		return orig != variant
	case mutate.RelWeakened:
		// original ⇒ variant: a sat original forces a sat variant.
		return orig == core.StatusSat && variant == core.StatusUnsat
	default: // RelStrengthened
		// variant ⇒ original: a sat variant forces a sat original.
		return variant == core.StatusSat && orig == core.StatusUnsat
	}
}

// classifyMetamorphic checks every voter's verdict pair against the
// variant's derivation relation. Each voter is compared only against
// itself — solver-vs-solver discrepancies are the majority policy's
// business — so a violation implicates exactly one solver with no
// reference solver in the loop.
func classifyMetamorphic(res *Result, cfg Campaign, aw *artifactWriter, bt *backendTriage, out *taskOutcome) {
	if out.variantSkip {
		res.MetamorphicSkips++
		return
	}
	if out.variant == nil {
		return
	}
	res.MetamorphicPairs++
	rel := out.variant.Rel
	logic := cfg.Logics[out.id/cfg.Iterations]

	record := func(idx int, name, origV, varV, reason string, exitCode int, stderr string, retries int) {
		if idx < 0 {
			res.SutViolations++
		} else {
			res.Backends[idx].Violations++
		}
		pair := origV + "/" + varV
		key := bkKey{backendIdx: idx, kind: bugdb.MetamorphicViolation,
			oracle: rel.String(), observed: pair}
		if bt.seen[key] {
			return
		}
		bt.seen[key] = true
		f := BackendFinding{
			Backend:  name,
			Kind:     bugdb.MetamorphicViolation,
			Logic:    string(logic),
			Oracle:   rel.String(),
			Observed: pair,
			Reason:   reason,
			ExitCode: exitCode,
			Stderr:   stderr,
			Retries:  retries,
			Task:     out.id,
		}
		var defect solver.Defect
		if idx < 0 {
			fired := append(append([]solver.Defect(nil), out.run.DefectsFired...), out.variantRun.DefectsFired...)
			if d, ok := primaryDefect(fired, bugdb.Soundness); ok {
				defect = d
				f.Defect = string(d)
			}
		}
		res.BackendFindings = append(res.BackendFindings, f)
		if aw != nil {
			m := manifestFor(cfg, *out, "backend-"+string(f.Kind), defect)
			m.Backend = f.Backend
			if idx >= 0 {
				m.BackendArgv = cfg.Backends[idx].Argv
				m.BackendExit = exitCode
				m.BackendStderr = stderr
				m.BackendRetries = retries
			}
			m.Observed = f.Observed
			m.Reason = f.Reason
			m.Oracle = rel.String()
			m.OraclePolicy = string(cfg.Oracle)
			m.MetaRelation = rel.String()
			m.MetaRules = out.variant.Rules
			m.VariantVerdicts = variantVector(cfg, out)
			aw.writeExtra(m, out.ancestors, out.testScript(), out.id,
				map[string]string{"variant.smt2": smtlib.Print(out.variant.Script)})
		}
	}

	// The SUT checked against itself.
	oLabel, oVote, oDef := sutStatus(out.run)
	vLabel, vVote, vDef := sutStatus(out.variantRun)
	if oDef && vDef && relationViolated(rel, oVote, vVote) {
		reason := fmt.Sprintf("verdict pair %s/%s violates %s relation", oLabel, vLabel, rel)
		record(-1, "sut", oLabel, vLabel, reason, -1, "", 0)
	}
	// Each backend checked against itself. The variant run can carry
	// fewer outputs than the primary (breaker opened between the two
	// solves); such pairs are incomplete and cannot violate.
	for i, o := range out.backendRuns {
		if i >= len(out.variantBackends) {
			break
		}
		vo := out.variantBackends[i]
		oVote, oDef := backendStatus(o.Verdict)
		vVote, vDef := backendStatus(vo.Verdict)
		if !oDef || !vDef || !relationViolated(rel, oVote, vVote) {
			continue
		}
		reason := fmt.Sprintf("verdict pair %s/%s violates %s relation", o.Verdict.String(), vo.Verdict.String(), rel)
		record(i, cfg.Backends[i].Name, o.Verdict.String(), vo.Verdict.String(),
			reason, vo.ExitCode, vo.Stderr, o.Retries+vo.Retries)
	}
}
