package harness

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/bugdb"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/gen"
	"repro/internal/solver"
)

// This file regenerates every table and figure of the paper's
// evaluation section. Each ExperimentX function returns structured
// data; the RenderX helpers print rows shaped like the paper's.

// ---------------------------------------------------------------------
// Figure 7 — seed-formula counts per benchmark.

// Fig7Row is one benchmark row of Figure 7.
type Fig7Row struct {
	Benchmark string
	Unsat     int
	Sat       int
}

// fig7Scale holds the paper's counts divided by a fixed factor so the
// generated corpora have the same per-logic proportions.
var fig7PaperCounts = []struct {
	logic      gen.Logic
	unsat, sat int
}{
	{gen.LIA, 203, 139},
	{gen.LRA, 1316, 714},
	{gen.NRA, 3798, 0},
	{gen.QFLIA, 1191, 1318},
	{gen.QFLRA, 384, 522},
	{gen.QFNRA, 4660, 4751},
	{gen.QFSLIA, 5492, 22657},
	{gen.QFS, 6390, 12561},
	{gen.StringFuzz, 4903, 4098},
}

// ExperimentFig7 generates the scaled seed corpora and returns the
// counts (validating that every seed generates).
func ExperimentFig7(scale int) ([]Fig7Row, error) {
	if scale <= 0 {
		scale = 100
	}
	var rows []Fig7Row
	for _, c := range fig7PaperCounts {
		g, err := gen.New(c.logic, logicSeed(1234, c.logic))
		if err != nil {
			return nil, err
		}
		nUnsat := c.unsat / scale
		nSat := c.sat / scale
		for i := 0; i < nUnsat; i++ {
			if g.Unsat() == nil {
				return nil, fmt.Errorf("fig7: %s unsat generation failed", c.logic)
			}
		}
		for i := 0; i < nSat; i++ {
			if g.Sat() == nil {
				return nil, fmt.Errorf("fig7: %s sat generation failed", c.logic)
			}
		}
		rows = append(rows, Fig7Row{Benchmark: string(c.logic), Unsat: nUnsat, Sat: nSat})
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// Figure 8 — bug counts from the main campaign.

// Fig8 aggregates the campaign findings the way Figures 8a–8c do.
type Fig8 struct {
	Z3   *Result
	CVC4 *Result
}

// CampaignBudget scales the main campaign.
type CampaignBudget struct {
	Iterations int
	SeedPool   int
	Seed       int64
	Threads    int
}

// ExperimentFig8 runs the main campaign against both trunk SUTs.
func ExperimentFig8(b CampaignBudget) (*Fig8, error) {
	if b.Iterations == 0 {
		b.Iterations = 250
	}
	if b.SeedPool == 0 {
		b.SeedPool = 20
	}
	z3, err := Run(Campaign{SUT: bugdb.Z3Sim, Iterations: b.Iterations, SeedPool: b.SeedPool, Seed: b.Seed + 1, Threads: b.Threads})
	if err != nil {
		return nil, err
	}
	cvc4, err := Run(Campaign{SUT: bugdb.CVC4Sim, Iterations: b.Iterations, SeedPool: b.SeedPool, Seed: b.Seed + 2, Threads: b.Threads})
	if err != nil {
		return nil, err
	}
	return &Fig8{Z3: z3, CVC4: cvc4}, nil
}

// StatusCounts is a Figure 8a row set for one SUT.
type StatusCounts struct {
	Reported, Confirmed, Fixed, Duplicate, WontFix int
}

// StatusOf maps a campaign result to the paper's report-status
// categories: every deduplicated finding is a confirmed report, extra
// triggers are duplicates, and fix status comes from the catalogue
// (defects carried to trunk unfixed are "confirmed, not yet fixed").
func StatusOf(r *Result) StatusCounts {
	out := StatusCounts{
		Confirmed: len(r.Bugs),
		Duplicate: r.Duplicates,
	}
	for _, b := range r.Bugs {
		if e, ok := bugdb.Find(b.Defect); ok && e.Label != "wontfix" {
			out.Fixed++
		}
	}
	out.Reported = out.Confirmed + out.Duplicate
	return out
}

// TypeCounts is a Figure 8b row set.
type TypeCounts map[bugdb.BugType]int

// TypesOf tabulates confirmed bugs by type.
func TypesOf(r *Result) TypeCounts {
	out := TypeCounts{}
	for _, b := range r.Bugs {
		out[b.Kind]++
	}
	return out
}

// LogicCounts is a Figure 8c row set, keyed by the catalogue's logic
// tags.
type LogicCounts map[string]int

// LogicsOf tabulates confirmed bugs by the logic the fused formula was
// generated in.
func LogicsOf(r *Result) LogicCounts {
	out := LogicCounts{}
	for _, b := range r.Bugs {
		out[string(b.Logic)]++
	}
	return out
}

// ---------------------------------------------------------------------
// Figure 9 — historic soundness bugs per year (survey data) plus the
// fraction found by the campaign.

// Fig9Row is one year bar.
type Fig9Row struct {
	Year  int
	Count int
}

// ExperimentFig9 returns the survey bars for one SUT.
func ExperimentFig9(s bugdb.SUT) []Fig9Row {
	var rows []Fig9Row
	for year, n := range bugdb.HistoricSoundnessPerYear[s] {
		rows = append(rows, Fig9Row{Year: year, Count: n})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Year < rows[j].Year })
	return rows
}

// ---------------------------------------------------------------------
// Figure 10 — found soundness bugs affecting each release.

// Fig10Row is one release bar.
type Fig10Row struct {
	Release string
	Count   int
}

// ExperimentFig10 counts, per release, the campaign-found soundness
// defects that affect it.
func ExperimentFig10(s bugdb.SUT, r *Result) []Fig10Row {
	var rows []Fig10Row
	for _, rel := range bugdb.Releases(s) {
		n := 0
		for _, b := range r.Bugs {
			if b.Kind != bugdb.Soundness {
				continue
			}
			if e, ok := bugdb.Find(b.Defect); ok && e.SUT == s && bugdb.Affects(b.Defect, rel) {
				n++
			}
		}
		rows = append(rows, Fig10Row{Release: rel, Count: n})
	}
	return rows
}

// ---------------------------------------------------------------------
// Figures 11 and 12 — coverage experiments.

// CoverageCell is one l/f/b triple.
type CoverageCell struct {
	Line, Function, Branch float64
}

func cellOf(rep coverage.Report) CoverageCell {
	return CoverageCell{
		Line:     rep.Lines().Percent(),
		Function: rep.Functions().Percent(),
		Branch:   rep.Branches().Percent(),
	}
}

// Fig11Row is one (logic, status) row: Benchmark vs YinYang coverage
// for both SUTs.
type Fig11Row struct {
	Logic     gen.Logic
	Sat       bool
	Z3Bench   CoverageCell
	Z3YinYang CoverageCell
	C4Bench   CoverageCell
	C4YinYang CoverageCell
}

// CoverageBudget scales the coverage experiment.
type CoverageBudget struct {
	Seeds  int // per logic/status corpus size
	Fused  int // fused formulas on top for the YinYang arm
	Seed   int64
	Logics []gen.Logic
}

func (b CoverageBudget) withDefaults() CoverageBudget {
	if b.Seeds == 0 {
		b.Seeds = 20
	}
	if b.Fused == 0 {
		b.Fused = 40
	}
	if len(b.Logics) == 0 {
		b.Logics = gen.AllLogics
	}
	return b
}

// ExperimentFig11 measures Benchmark (seeds only) vs YinYang (seeds
// then fused formulas) probe coverage per logic and status.
func ExperimentFig11(b CoverageBudget) ([]Fig11Row, error) {
	b = b.withDefaults()
	var rows []Fig11Row
	for _, logic := range b.Logics {
		for _, satStatus := range []bool{true, false} {
			row := Fig11Row{Logic: logic, Sat: satStatus}
			for i, sutName := range bugdb.SUTs {
				bench, yy, err := coverageArms(sutName, logic, satStatus, b, false)
				if err != nil {
					return nil, err
				}
				if i == 0 {
					row.Z3Bench, row.Z3YinYang = bench, yy
				} else {
					row.C4Bench, row.C4YinYang = bench, yy
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// coverageArms runs the seed corpus and then the fusion (or concat)
// round on instrumented SUTs, returning (benchmark, second-arm) cells.
func coverageArms(sutName bugdb.SUT, logic gen.Logic, satStatus bool, b CoverageBudget, concat bool) (CoverageCell, CoverageCell, error) {
	status := core.StatusUnsat
	if satStatus {
		status = core.StatusSat
	}
	tracker := coverage.NewTracker()
	sut, err := bugdb.NewSolver(sutName, "trunk", tracker)
	if err != nil {
		return CoverageCell{}, CoverageCell{}, err
	}
	g, err := gen.New(logic, logicSeed(b.Seed, logic))
	if err != nil {
		return CoverageCell{}, CoverageCell{}, err
	}
	var seeds []*core.Seed
	for i := 0; i < b.Seeds; i++ {
		seeds = append(seeds, g.Generate(status))
	}
	for _, s := range seeds {
		RunSolver(sut, s.Script)
	}
	bench := cellOf(tracker.Report())

	rng := rand.New(rand.NewSource(b.Seed + 99))
	for i := 0; i < b.Fused; i++ {
		s1 := seeds[rng.Intn(len(seeds))]
		s2 := seeds[rng.Intn(len(seeds))]
		var fused *core.Fused
		var ferr error
		if concat {
			fused, ferr = core.Concat(s1, s2, rng)
		} else {
			fused, ferr = core.Fuse(s1, s2, rng, core.Options{})
		}
		if ferr != nil {
			continue
		}
		RunSolver(sut, fused.Script)
	}
	return bench, cellOf(tracker.Report()), nil
}

// Fig12Row is the per-SUT average over logics for one arm.
type Fig12Row struct {
	SUT        bugdb.SUT
	Benchmark  CoverageCell
	ConcatFuzz CoverageCell
	YinYang    CoverageCell
}

// ExperimentFig12 compares Benchmark, ConcatFuzz, and YinYang coverage
// averaged over all logics.
func ExperimentFig12(b CoverageBudget) ([]Fig12Row, error) {
	b = b.withDefaults()
	var rows []Fig12Row
	for _, sutName := range bugdb.SUTs {
		var sumBench, sumConcat, sumYY CoverageCell
		n := 0
		for _, logic := range b.Logics {
			for _, satStatus := range []bool{true, false} {
				bench, yy, err := coverageArms(sutName, logic, satStatus, b, false)
				if err != nil {
					return nil, err
				}
				_, concatCell, err := coverageArms(sutName, logic, satStatus, b, true)
				if err != nil {
					return nil, err
				}
				sumBench = addCell(sumBench, bench)
				sumConcat = addCell(sumConcat, concatCell)
				sumYY = addCell(sumYY, yy)
				n++
			}
		}
		rows = append(rows, Fig12Row{
			SUT:        sutName,
			Benchmark:  divCell(sumBench, n),
			ConcatFuzz: divCell(sumConcat, n),
			YinYang:    divCell(sumYY, n),
		})
	}
	return rows, nil
}

func addCell(a, b CoverageCell) CoverageCell {
	return CoverageCell{a.Line + b.Line, a.Function + b.Function, a.Branch + b.Branch}
}

func divCell(a CoverageCell, n int) CoverageCell {
	if n == 0 {
		return a
	}
	f := float64(n)
	return CoverageCell{a.Line / f, a.Function / f, a.Branch / f}
}

// ---------------------------------------------------------------------
// RQ4 — can ConcatFuzz retrigger YinYang's bugs?

// RQ4Result reports the retrigger experiment.
type RQ4Result struct {
	Bugs        int
	Retriggered int
}

// ExperimentRQ4 takes the bugs of a YinYang campaign and replays
// ConcatFuzz on each bug's ancestor seeds, counting how many bugs
// concatenation alone retriggers.
func ExperimentRQ4(s bugdb.SUT, bugs []Bug, attempts int, seed int64) (RQ4Result, error) {
	if attempts == 0 {
		attempts = 10
	}
	sut := bugdb.NewTrunkSolver(s, nil)
	rng := rand.New(rand.NewSource(seed))
	out := RQ4Result{Bugs: len(bugs)}
	for _, b := range bugs {
		hit := false
		for a := 0; a < attempts && !hit; a++ {
			fused, err := core.Concat(b.Ancestors[0], b.Ancestors[1], rng)
			if err != nil {
				continue
			}
			run := RunSolver(sut, fused.Script)
			switch b.Kind {
			case bugdb.Crash:
				hit = run.Crashed && fires(run.DefectsFired, b.Defect)
			case bugdb.Soundness:
				// Only a definite verdict can contradict the oracle;
				// unknown and fuel-exhausted runs carry none.
				wrong := (run.Result == solver.ResSat || run.Result == solver.ResUnsat) &&
					(run.Result == solver.ResSat) != (fused.Oracle == core.StatusSat)
				hit = wrong && fires(run.DefectsFired, b.Defect)
			case bugdb.InvalidModel:
				valid, _ := ValidateModel(fused.Script, run.Model)
				hit = run.Result == solver.ResSat && !valid &&
					fires(run.DefectsFired, b.Defect)
			default:
				hit = (run.Result == solver.ResUnknown || run.Result == solver.ResTimeout) &&
					fires(run.DefectsFired, b.Defect)
			}
		}
		if hit {
			out.Retriggered++
		}
	}
	return out, nil
}

func fires(fired []solver.Defect, d solver.Defect) bool {
	for _, f := range fired {
		if f == d {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md section 5).

// AblationRow is one configuration's bug yield.
type AblationRow struct {
	Name string
	Bugs int
}

// ExperimentAblationFusionFns compares fusion-function families.
func ExperimentAblationFusionFns(budget CampaignBudget) ([]AblationRow, error) {
	configs := []struct {
		name  string
		table []core.FusionFn
	}{
		{"additive-only", core.AdditiveTable},
		{"multiplicative-only", core.MultiplicativeTable},
		{"string-only", core.StringTable},
		{"full-table", core.DefaultTable},
	}
	var rows []AblationRow
	for _, c := range configs {
		res, err := Run(Campaign{
			SUT:        bugdb.Z3Sim,
			Iterations: budget.Iterations,
			SeedPool:   budget.SeedPool,
			Seed:       budget.Seed,
			Threads:    budget.Threads,
			Fusion:     core.Options{Table: c.table},
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{Name: c.name, Bugs: len(res.Bugs)})
	}
	return rows, nil
}

// ExperimentAblationSynth compares the hand-written Figure 6 table
// against automatically synthesized fusion functions (the paper's
// future-work item) and the combination of both.
func ExperimentAblationSynth(budget CampaignBudget) ([]AblationRow, error) {
	synth := core.SynthesizeTable(rand.New(rand.NewSource(budget.Seed+17)), 4)
	combined := append(append([]core.FusionFn{}, core.DefaultTable...), synth...)
	configs := []struct {
		name  string
		table []core.FusionFn
	}{
		{"figure6-table", core.DefaultTable},
		{"synthesized-only", synth},
		{"figure6+synthesized", combined},
	}
	var rows []AblationRow
	for _, c := range configs {
		res, err := Run(Campaign{
			SUT:        bugdb.Z3Sim,
			Iterations: budget.Iterations,
			SeedPool:   budget.SeedPool,
			Seed:       budget.Seed,
			Threads:    budget.Threads,
			Fusion:     core.Options{Table: c.table},
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{Name: c.name, Bugs: len(res.Bugs)})
	}
	return rows, nil
}

// ExperimentAblationOccProb compares inversion-replacement
// probabilities.
func ExperimentAblationOccProb(budget CampaignBudget) ([]AblationRow, error) {
	var rows []AblationRow
	for _, p := range []float64{1e-9, 0.5, 0.999999} {
		res, err := Run(Campaign{
			SUT:        bugdb.Z3Sim,
			Iterations: budget.Iterations,
			SeedPool:   budget.SeedPool,
			Seed:       budget.Seed,
			Threads:    budget.Threads,
			Fusion:     core.Options{ReplaceProb: p},
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{Name: fmt.Sprintf("replace-prob=%.1f", p), Bugs: len(res.Bugs)})
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// Renderers.

// RenderFig7 prints the Figure 7 table.
func RenderFig7(rows []Fig7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %8s %8s\n", "Benchmark", "#UNSAT", "#SAT", "Total")
	tu, ts := 0, 0
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %8d %8d %8d\n", r.Benchmark, r.Unsat, r.Sat, r.Unsat+r.Sat)
		tu += r.Unsat
		ts += r.Sat
	}
	fmt.Fprintf(&b, "%-12s %8d %8d %8d\n", "Total", tu, ts, tu+ts)
	return b.String()
}

// RenderFig8 prints the Figure 8a/8b/8c tables.
func RenderFig8(f *Fig8) string {
	var b strings.Builder
	sa, sc := StatusOf(f.Z3), StatusOf(f.CVC4)
	b.WriteString("(a) Status          z3sim  cvc4sim  Total\n")
	fmt.Fprintf(&b, "    Reported     %6d %8d %6d\n", sa.Reported, sc.Reported, sa.Reported+sc.Reported)
	fmt.Fprintf(&b, "    Confirmed    %6d %8d %6d\n", sa.Confirmed, sc.Confirmed, sa.Confirmed+sc.Confirmed)
	fmt.Fprintf(&b, "    Fixed        %6d %8d %6d\n", sa.Fixed, sc.Fixed, sa.Fixed+sc.Fixed)
	fmt.Fprintf(&b, "    Duplicate    %6d %8d %6d\n", sa.Duplicate, sc.Duplicate, sa.Duplicate+sc.Duplicate)

	ta, tc := TypesOf(f.Z3), TypesOf(f.CVC4)
	b.WriteString("(b) Type            z3sim  cvc4sim  Total\n")
	for _, ty := range []bugdb.BugType{bugdb.Soundness, bugdb.InvalidModel, bugdb.Crash, bugdb.Performance, bugdb.UnknownType} {
		fmt.Fprintf(&b, "    %-12s %6d %8d %6d\n", ty, ta[ty], tc[ty], ta[ty]+tc[ty])
	}

	la, lc := LogicsOf(f.Z3), LogicsOf(f.CVC4)
	b.WriteString("(c) Logic           z3sim  cvc4sim  Total\n")
	logics := map[string]bool{}
	for l := range la {
		logics[l] = true
	}
	for l := range lc {
		logics[l] = true
	}
	var names []string
	for l := range logics {
		names = append(names, l)
	}
	sort.Strings(names)
	for _, l := range names {
		fmt.Fprintf(&b, "    %-12s %6d %8d %6d\n", l, la[l], lc[l], la[l]+lc[l])
	}
	return b.String()
}

// RenderFig9 prints one SUT's Figure 9 bars.
func RenderFig9(s bugdb.SUT, rows []Fig9Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Historic soundness bugs per year (%s):\n", s)
	for _, r := range rows {
		fmt.Fprintf(&b, "  %d: %3d %s\n", r.Year, r.Count, strings.Repeat("#", r.Count))
	}
	return b.String()
}

// RenderFig10 prints one SUT's Figure 10 bars.
func RenderFig10(s bugdb.SUT, rows []Fig10Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Found soundness bugs affecting releases of %s:\n", s)
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-7s %3d %s\n", r.Release, r.Count, strings.Repeat("#", r.Count))
	}
	return b.String()
}

// RenderFig11 prints the coverage table.
func RenderFig11(rows []Fig11Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-6s | %-23s | %-23s\n", "Logic", "Status", "z3sim l/f/b (B → Y)", "cvc4sim l/f/b (B → Y)")
	for _, r := range rows {
		status := "UNSAT"
		if r.Sat {
			status = "SAT"
		}
		fmt.Fprintf(&b, "%-12s %-6s | %s | %s\n",
			r.Logic, status,
			arrowCell(r.Z3Bench, r.Z3YinYang),
			arrowCell(r.C4Bench, r.C4YinYang))
	}
	return b.String()
}

func arrowCell(a, b CoverageCell) string {
	return fmt.Sprintf("%4.1f/%4.1f/%4.1f→%4.1f/%4.1f/%4.1f",
		a.Line, a.Function, a.Branch, b.Line, b.Function, b.Branch)
}

// RenderFig12 prints the averaged comparison.
func RenderFig12(rows []Fig12Row) string {
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%s (line/function/branch %%):\n", r.SUT)
		fmt.Fprintf(&b, "  Benchmark  %5.1f %5.1f %5.1f\n", r.Benchmark.Line, r.Benchmark.Function, r.Benchmark.Branch)
		fmt.Fprintf(&b, "  ConcatFuzz %5.1f %5.1f %5.1f\n", r.ConcatFuzz.Line, r.ConcatFuzz.Function, r.ConcatFuzz.Branch)
		fmt.Fprintf(&b, "  YinYang    %5.1f %5.1f %5.1f\n", r.YinYang.Line, r.YinYang.Function, r.YinYang.Branch)
	}
	return b.String()
}
