// Sharding: a campaign's task space splits across K independent
// processes, each classifying the global task ids congruent to its
// shard index mod K. Every per-task quantity (verdict, fuel delta,
// artifacts, trace record) is computed identically to the unsharded
// run because task RNG derives from (campaign seed, logic, iteration)
// alone and warm state is reconstructed per family; only the
// *cross-task* folds — bug dedup, duplicate counts, backend triage,
// funnel counters, trace finding flags — see a shard-local view.
// Merge re-folds those from the envelopes' trigger-task lists, so the
// merged Result, metrics, and trace are byte-identical to a
// single-process run of the same config.
package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/bugdb"
	"repro/internal/telemetry"
)

// Envelope is one completed shard (or a whole unsharded campaign): the
// config it ran, the per-shard classification state, telemetry
// snapshot, and JSONL trace bytes, in a form Merge can fold. Produced
// by Start/Resume on completion; serialized with EncodeEnvelope.
type Envelope struct {
	Config CampaignConfig `json:"config"`
	// Tasks is the number of task ids this shard classified — always
	// the shard's full allotment, since envelopes only exist for
	// completed runs (a partial run yields a Checkpoint instead).
	Tasks     int                `json:"tasks"`
	State     savedState         `json:"state"`
	Telemetry telemetry.Snapshot `json:"telemetry"`
	Trace     []byte             `json:"trace,omitempty"`
}

func (e *Envelope) validate() error {
	if err := e.Config.Validate(); err != nil {
		return err
	}
	d := e.Config.withDefaults()
	if want := len(d.includeIDs()); e.Tasks != want {
		return fmt.Errorf("harness: envelope: %d tasks classified, shard %d/%d owns %d (envelopes are complete runs)",
			e.Tasks, d.Shard, d.Shards, want)
	}
	if err := validateState(e.Config, e.State, e.Tasks); err != nil {
		return fmt.Errorf("harness: envelope: %v", err)
	}
	return nil
}

// EncodeEnvelope serializes a shard envelope as a versioned,
// checksummed JSON document.
func EncodeEnvelope(e *Envelope) ([]byte, error) {
	if e == nil {
		return nil, fmt.Errorf("harness: nil envelope")
	}
	if err := e.validate(); err != nil {
		return nil, err
	}
	return sealDoc(kindEnvelope, CheckpointSchema, e)
}

// DecodeEnvelope parses and fully validates an envelope document,
// failing closed on any corruption, version skew, or state that
// violates the classification invariants.
func DecodeEnvelope(data []byte) (*Envelope, error) {
	payload, err := openDoc(data, kindEnvelope, CheckpointSchema)
	if err != nil {
		return nil, err
	}
	var e Envelope
	if err := decodeStrict(payload, &e, kindEnvelope); err != nil {
		return nil, err
	}
	if err := e.validate(); err != nil {
		return nil, err
	}
	return &e, nil
}

// Merged is the fold of one campaign's shard envelopes: a Result,
// telemetry snapshot, and JSONL trace byte-identical to what a
// single-process run of the same config would have produced.
type Merged struct {
	Result    *Result
	Telemetry telemetry.Snapshot
	Trace     []byte
}

// identityJSON is a config's campaign identity: the defaulted config
// with the fields that legitimately vary across shard processes
// (shard coordinates, worker count, artifact directory) zeroed out.
func identityJSON(cc CampaignConfig) ([]byte, error) {
	d := cc.withDefaults()
	d.Shard = 0
	d.Threads = 0
	d.ArtifactDir = ""
	return json.Marshal(d)
}

// Merge folds the K shard envelopes of one campaign. artifactDir, when
// non-empty, receives a copy of each merged finding's reproducer
// bundle (an unsharded campaign writes exactly those bundles); when
// empty, Result.Artifacts points at the bundles in the shards' own
// artifact directories.
func Merge(envs []*Envelope, artifactDir string) (*Merged, error) {
	if len(envs) == 0 {
		return nil, fmt.Errorf("harness: merge of zero envelopes")
	}
	for i, e := range envs {
		if e == nil {
			return nil, fmt.Errorf("harness: merge: envelope %d is nil", i)
		}
		if err := e.validate(); err != nil {
			return nil, fmt.Errorf("harness: merge: envelope %d: %w", i, err)
		}
	}

	// The envelopes must be the K shards of one campaign: identical
	// identity, shard indices covering 0..K-1 exactly once.
	wantID, err := identityJSON(envs[0].Config)
	if err != nil {
		return nil, err
	}
	shards := envs[0].Config.withDefaults().Shards
	if len(envs) != shards {
		return nil, fmt.Errorf("harness: merge: %d envelopes for a %d-shard campaign", len(envs), shards)
	}
	byShard := make([]*Envelope, shards)
	for i, e := range envs {
		id, err := identityJSON(e.Config)
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(id, wantID) {
			return nil, fmt.Errorf("harness: merge: envelope %d belongs to a different campaign", i)
		}
		s := e.Config.withDefaults().Shard
		if byShard[s] != nil {
			return nil, fmt.Errorf("harness: merge: two envelopes for shard %d", s)
		}
		byShard[s] = e
	}

	d := envs[0].Config.withDefaults()
	res := &Result{}
	for _, e := range byShard {
		res.Tests += e.State.Tests
		res.Unknowns += e.State.Unknowns
		res.ReferenceDisagreements += e.State.ReferenceDisagreements
		res.InvalidInputs += e.State.InvalidInputs
		res.Timeouts += e.State.Timeouts
		res.Quarantined += e.State.Quarantined
		// Consensus tallies are per-occurrence (never deduped), so plain
		// summation reproduces the single-run values exactly.
		res.OracleVotes += e.State.OracleVotes
		res.OracleConsensus += e.State.OracleConsensus
		res.OracleAbstained += e.State.OracleAbstained
		res.SutOutvoted += e.State.SutOutvoted
		res.MetamorphicPairs += e.State.MetamorphicPairs
		res.MetamorphicSkips += e.State.MetamorphicSkips
		res.SutViolations += e.State.SutViolations
	}

	bugs, duplicates, err := mergeBugs(byShard)
	if err != nil {
		return nil, err
	}
	res.Bugs = bugs
	res.Duplicates = duplicates

	if err := mergeBackends(res, d, byShard); err != nil {
		return nil, err
	}
	if err := mergeArtifacts(res, byShard, artifactDir); err != nil {
		return nil, err
	}

	snap := mergeTelemetry(byShard, res)
	trace, err := mergeTraces(byShard, res)
	if err != nil {
		return nil, err
	}
	return &Merged{Result: res, Telemetry: snap, Trace: trace}, nil
}

// mergeBugs re-folds the per-shard dedup: the campaign-wide recording
// trigger of a defect is its globally earliest trigger task, every
// other trigger (including each shard's own recording trigger, except
// the winner's) is a duplicate. The winning shard's Bug carries the
// canonical script/seeds — they were derived from that exact task, so
// they match what the single-process run recorded.
func mergeBugs(byShard []*Envelope) ([]Bug, int, error) {
	type acc struct {
		winner savedBug
		tasks  []int
	}
	byDefect := map[string]*acc{}
	var order []string
	for _, e := range byShard {
		for _, sb := range e.State.Bugs {
			a := byDefect[sb.Defect]
			if a == nil {
				a = &acc{winner: sb}
				byDefect[sb.Defect] = a
				order = append(order, sb.Defect)
			} else if sb.Tasks[0] < a.winner.Tasks[0] {
				a.winner = sb
			}
			a.tasks = append(a.tasks, sb.Tasks...)
		}
	}
	var bugs []Bug
	duplicates := 0
	for _, defect := range order {
		a := byDefect[defect]
		sort.Ints(a.tasks)
		sb := a.winner
		sb.Tasks = a.tasks
		b, err := bugFromSaved(sb)
		if err != nil {
			return nil, 0, fmt.Errorf("harness: merge: %v", err)
		}
		bugs = append(bugs, b)
		duplicates += len(a.tasks) - 1
	}
	sortBugs(bugs)
	return bugs, duplicates, nil
}

// mergeBackends sums the per-backend report tallies and re-folds the
// finding dedup the same way mergeBugs does: per dedup key, the
// observation with the globally earliest task wins, and the merged
// findings are ordered as classification would have emitted them.
func mergeBackends(res *Result, d CampaignConfig, byShard []*Envelope) error {
	names := d.backendNames()
	nameIdx := map[string]int{"sut": -1}
	for i, n := range names {
		nameIdx[n] = i
	}
	res.Backends = make([]BackendReport, len(names))
	for _, e := range byShard {
		for i, rep := range e.State.Backends {
			dst := &res.Backends[i]
			dst.Name = rep.Name
			dst.Hermetic = rep.Hermetic
			dst.Checks += rep.Checks
			dst.Skipped += rep.Skipped
			dst.Sat += rep.Sat
			dst.Unsat += rep.Unsat
			dst.Unknowns += rep.Unknowns
			dst.Timeouts += rep.Timeouts
			dst.Crashes += rep.Crashes
			dst.Garbled += rep.Garbled
			dst.Faults += rep.Faults
			dst.Retries += rep.Retries
			dst.Disagreements += rep.Disagreements
			dst.Outvoted += rep.Outvoted
			dst.Violations += rep.Violations
			dst.Quarantined = dst.Quarantined || rep.Quarantined
		}
	}
	// Two passes. First the globally earliest trigger task per dedup
	// key; then the survivors, collected in per-shard envelope order and
	// stable-sorted by task alone. All of one task's findings live in a
	// single shard's envelope, already in classification's per-task
	// emission order (known-status by backend index, then majority, then
	// metamorphic — an order no single sort key reproduces), so the
	// stable sort interleaves tasks without disturbing it.
	best := map[bkKey]int{}
	for _, e := range byShard {
		for _, f := range e.State.BackendFindings {
			key := findingKey(nameIdx[f.Backend], f) // backend validated by envelope decode
			if t, ok := best[key]; !ok || f.Task < t {
				best[key] = f.Task
			}
		}
	}
	for _, e := range byShard {
		for _, f := range e.State.BackendFindings {
			if best[findingKey(nameIdx[f.Backend], f)] == f.Task {
				res.BackendFindings = append(res.BackendFindings, f)
			}
		}
	}
	sort.SliceStable(res.BackendFindings, func(i, j int) bool {
		return res.BackendFindings[i].Task < res.BackendFindings[j].Task
	})
	return nil
}

// findingKey rebuilds the classification dedup key from a recorded
// finding: the oracle participates only for the disagreement-shaped
// kinds (a hang or garble is the same failure whatever the expected
// status, but an outvoted verdict or pair violation is a distinct
// observation per reference it contradicts).
func findingKey(backendIdx int, f BackendFinding) bkKey {
	key := bkKey{backendIdx: backendIdx, kind: f.Kind, observed: f.Observed}
	if oracleKeyed(f.Kind) {
		key.oracle = f.Oracle
	}
	return key
}

// oracleKeyed lists the finding kinds whose dedup key includes the
// contradicted reference.
func oracleKeyed(kind bugdb.BugType) bool {
	return kind == bugdb.Disagreement || kind == bugdb.MajorityDisagreement || kind == bugdb.MetamorphicViolation
}

// mergeArtifacts re-folds the bundle dedup. A shard writes a bundle at
// its locally-first trigger of a finding, but the unsharded run writes
// one bundle per finding, at its globally-first trigger — so a ref
// survives the merge only when its task is the merged finding's
// recording trigger. The surviving refs, in task order, are exactly
// the single-run bundle list. When dstDir is set, each surviving
// bundle is copied there from its shard's artifact directory.
func mergeArtifacts(res *Result, byShard []*Envelope, dstDir string) error {
	bugTask := map[string]int{}
	for _, b := range res.Bugs {
		bugTask[string(b.Defect)] = b.Tasks[0]
	}
	type fkey struct{ backend, kind, oracle, observed string }
	findingTask := map[fkey]int{}
	for _, f := range res.BackendFindings {
		k := fkey{backend: f.Backend, kind: string(f.Kind), observed: f.Observed}
		if oracleKeyed(f.Kind) {
			k.oracle = f.Oracle
		}
		findingTask[k] = f.Task
	}
	keep := func(r artifactRef) bool {
		switch {
		case strings.HasPrefix(r.BugType, "backend-"):
			k := fkey{backend: r.Backend, kind: strings.TrimPrefix(r.BugType, "backend-"), observed: r.Observed}
			if oracleKeyed(bugdb.BugType(k.kind)) {
				k.oracle = r.Oracle
			}
			t, ok := findingTask[k]
			return ok && t == r.Task
		case r.Defect != "":
			t, ok := bugTask[r.Defect]
			return ok && t == r.Task
		default:
			// Quarantine bundles are task-local (and only exist under a
			// wall-clock watchdog, where bit-identity is already
			// forfeit): the per-key dedup below is the whole fold.
			return true
		}
	}

	type ref struct {
		artifactRef
		srcDir string
	}
	var all []ref
	for _, e := range byShard {
		dir := e.Config.withDefaults().ArtifactDir
		for _, r := range e.State.Artifacts {
			all = append(all, ref{artifactRef: r, srcDir: dir})
		}
	}
	// Stable sort by task: each task's refs live in exactly one shard's
	// list, already in within-task write order, so stability preserves
	// the single-run order for multi-artifact tasks.
	sort.SliceStable(all, func(i, j int) bool { return all[i].Task < all[j].Task })
	written := map[string]bool{}
	for _, r := range all {
		if written[r.Key] || !keep(r.artifactRef) {
			continue
		}
		written[r.Key] = true
		src := filepath.Join(r.srcDir, r.Key)
		if dstDir == "" {
			res.Artifacts = append(res.Artifacts, src)
			continue
		}
		dst := filepath.Join(dstDir, r.Key)
		if err := copyBundle(src, dst); err != nil {
			return fmt.Errorf("harness: merge: artifact %s: %w", r.Key, err)
		}
		res.Artifacts = append(res.Artifacts, dst)
	}
	return nil
}

func copyBundle(src, dst string) error {
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, ent.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, ent.Name()), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// mergeTelemetry sums the shard snapshots, then overwrites the three
// dedup-dependent counters with the merged values: per-shard findings
// over-count duplicates that cross shard boundaries, and the funnel
// invariant (counter totals == Result counts) must hold for the merged
// pair exactly as it does for a single run.
func mergeTelemetry(byShard []*Envelope, res *Result) telemetry.Snapshot {
	var snap telemetry.Snapshot
	any := false
	for _, e := range byShard {
		if len(e.Telemetry.Counters) > 0 || len(e.Telemetry.Histograms) > 0 {
			any = true
		}
		snap.Accumulate(e.Telemetry)
	}
	if !any {
		return telemetry.Snapshot{}
	}
	fix := func(name string, v int) {
		if v == 0 {
			delete(snap.Counters, name)
			return
		}
		if snap.Counters == nil {
			snap.Counters = map[string]int64{}
		}
		snap.Counters[name] = int64(v)
	}
	fix("yy_funnel_findings_total", len(res.Bugs))
	fix("yy_funnel_duplicates_total", res.Duplicates)
	fix("yy_backend_findings_total", len(res.BackendFindings))
	return snap
}

// mergeTraces interleaves the shard traces into global task order and
// rewrites the two dedup-dependent flags per record — finding (this
// task recorded the bug) and duplicate (it re-triggered one) — from
// the merged trigger lists. Everything else in a record is task-local
// and already identical to the single-run record, so re-marshaling
// yields byte-identical JSONL.
func mergeTraces(byShard []*Envelope, res *Result) ([]byte, error) {
	finding := map[int]bool{}
	duplicate := map[int]bool{}
	for _, b := range res.Bugs {
		finding[b.Tasks[0]] = true
		for _, t := range b.Tasks[1:] {
			duplicate[t] = true
		}
	}
	var recs []TraceRecord
	traced := false
	for i, e := range byShard {
		if len(e.Trace) == 0 {
			continue
		}
		traced = true
		rs, err := DecodeTrace(bytes.NewReader(e.Trace))
		if err != nil {
			return nil, fmt.Errorf("harness: merge: shard %d trace: %w", i, err)
		}
		recs = append(recs, rs...)
	}
	if !traced {
		return nil, nil
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Task < recs[j].Task })
	var buf bytes.Buffer
	for i := range recs {
		recs[i].Finding = finding[recs[i].Task]
		recs[i].Duplicate = duplicate[recs[i].Task]
		data, err := json.Marshal(&recs[i])
		if err != nil {
			return nil, err
		}
		buf.Write(data)
		buf.WriteByte('\n')
	}
	return buf.Bytes(), nil
}
