package harness

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/bugdb"
	"repro/internal/gen"
	"repro/internal/telemetry"
)

// The campaign-level fault matrix builds the fakesolver fixture once
// per test binary (never checked in).
var (
	fakesolverOnce sync.Once
	fakesolverBin  string
	fakesolverErr  error
)

func fakesolver(t *testing.T) string {
	t.Helper()
	fakesolverOnce.Do(func() {
		dir, err := os.MkdirTemp("", "fakesolver-harness")
		if err != nil {
			fakesolverErr = err
			return
		}
		fakesolverBin = filepath.Join(dir, "fakesolver")
		out, err := exec.Command("go", "build", "-o", fakesolverBin, "repro/internal/backend/fakesolver").CombinedOutput()
		if err != nil {
			fakesolverErr = err
			fakesolverBin = string(out)
		}
	})
	if fakesolverErr != nil {
		t.Fatalf("building fakesolver: %v\n%s", fakesolverErr, fakesolverBin)
	}
	return fakesolverBin
}

// smallCampaign is the shared shape of the process-backend tests: tiny,
// single logic, single thread, so every external invocation is cheap
// and the classification order is trivially deterministic.
func smallCampaign() Campaign {
	return Campaign{
		SUT:        bugdb.Z3Sim,
		Logics:     []gen.Logic{gen.QFLIA},
		Iterations: 6,
		SeedPool:   4,
		Seed:       9,
		Threads:    1,
	}
}

// TestCampaignHermeticCrossCheck runs the differential oracle with a
// buggy hermetic backend: the backend is the same defect-laden trunk
// z3sim as the SUT, so wherever the campaign observes a soundness bug,
// the backend's verdict contradicts the known-status oracle and must
// surface as a disagreement finding — without ever entering Bugs.
func TestCampaignHermeticCrossCheck(t *testing.T) {
	cfg := Campaign{
		SUT:        bugdb.Z3Sim,
		Iterations: shortIters(80),
		SeedPool:   12,
		Seed:       7,
		Threads:    4,
		Backends:   []backend.Spec{SimBackendSpec(bugdb.Z3Sim, "trunk", 0)},
		Telemetry:  telemetry.NewTracker(),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Backends) != 1 {
		t.Fatalf("want 1 backend report, got %d", len(res.Backends))
	}
	rep := res.Backends[0]
	if rep.Name != "z3sim@trunk" || !rep.Hermetic {
		t.Errorf("report identity wrong: %+v", rep)
	}
	if rep.Quarantined {
		t.Error("hermetic backend has no breaker yet reports quarantined")
	}
	if res.Degraded() {
		t.Error("campaign degraded with only hermetic backends")
	}
	// Every tested task is cross-checked; nothing is ever skipped
	// (hermetic backends carry no breaker).
	if rep.Checks != res.Tests || rep.Skipped != 0 {
		t.Errorf("checks=%d skipped=%d, want checks=%d skipped=0", rep.Checks, rep.Skipped, res.Tests)
	}
	soundness := 0
	for _, b := range res.Bugs {
		if b.Kind == bugdb.Soundness {
			soundness++
		}
	}
	if soundness > 0 && rep.Disagreements == 0 {
		t.Error("SUT soundness bugs found but the identically-buggy backend never disagreed with the oracle")
	}
	for _, f := range res.BackendFindings {
		if f.Backend != "z3sim@trunk" {
			t.Errorf("finding names backend %q", f.Backend)
		}
		if f.Kind == bugdb.Disagreement && f.Observed == f.Oracle {
			t.Errorf("disagreement finding with agreeing verdicts: %+v", f)
		}
	}
	// The aggregate funnel counters must mirror the per-backend report.
	snap := cfg.Telemetry.Snapshot()
	if got := snap.Counter("yy_backend_checks_total"); got != int64(rep.Checks) {
		t.Errorf("yy_backend_checks_total=%d, report says %d", got, rep.Checks)
	}
	if got := snap.Counter("yy_backend_disagreements_total"); got != int64(rep.Disagreements) {
		t.Errorf("yy_backend_disagreements_total=%d, report says %d", got, rep.Disagreements)
	}
	t.Logf("checks=%d disagreements=%d findings=%d (soundness bugs=%d)",
		rep.Checks, rep.Disagreements, len(res.BackendFindings), soundness)
}

// TestCampaignProcessBackendHang pins the watchdog↔backend interplay:
// a hung external solver yields per-task timeout verdicts and a
// reproducer bundle, while the campaign's own quarantine count stays
// zero — a backend failure is never an internal fault of ours.
func TestCampaignProcessBackendHang(t *testing.T) {
	dir := t.TempDir()
	cfg := smallCampaign()
	cfg.ArtifactDir = dir
	cfg.Backends = []backend.Spec{backend.ProcessSpec(backend.ProcessConfig{
		Name: "hangy", Path: fakesolver(t), Args: []string{"-mode", "hang"},
		Timeout: 200 * time.Millisecond, Retries: -1,
		BreakerThreshold: 1000, // keep the breaker out of this test
		Sleep:            func(time.Duration) {},
	})}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Backends[0]
	if rep.Timeouts == 0 || rep.Timeouts != rep.Checks {
		t.Fatalf("hung backend: timeouts=%d checks=%d, want all checks timing out", rep.Timeouts, rep.Checks)
	}
	if res.Quarantined != 0 {
		t.Errorf("backend timeouts quarantined %d tasks; they must not", res.Quarantined)
	}
	if res.Degraded() || rep.Quarantined {
		t.Error("breaker opened despite threshold 1000")
	}
	var bundle string
	for _, f := range res.BackendFindings {
		if f.Kind != bugdb.Performance || f.Backend != "hangy" {
			t.Errorf("unexpected finding %+v", f)
		}
	}
	if len(res.BackendFindings) == 0 {
		t.Fatal("no timeout finding recorded")
	}
	for _, p := range res.Artifacts {
		m, err := ReadManifest(p)
		if err != nil {
			t.Fatal(err)
		}
		if m.Backend == "hangy" {
			bundle = p
			if m.BugType != "backend-performance" {
				t.Errorf("bundle bug_type %q, want backend-performance", m.BugType)
			}
			if len(m.BackendArgv) == 0 || m.BackendArgv[0] != fakesolverBin {
				t.Errorf("bundle backend_argv %v does not record the command line", m.BackendArgv)
			}
			if m.Observed != "timeout" {
				t.Errorf("bundle observed %q, want timeout", m.Observed)
			}
		}
	}
	if bundle == "" {
		t.Fatal("no backend bundle written")
	}
	// Replay must regenerate the fused test and name the backend, even
	// though it never re-invokes the (possibly absent) binary.
	rr, err := Replay(bundle)
	if err != nil {
		t.Fatal(err)
	}
	if !rr.FusedMatches || !rr.ResultMatches {
		t.Errorf("replay of backend bundle: %+v", rr)
	}
	if rr.Backend != "hangy" {
		t.Errorf("replay names backend %q, want hangy", rr.Backend)
	}
}

// TestCampaignBackendCrashCapture checks that a crashing external
// solver surfaces as crash findings with exit status and stderr, and
// that the circuit breaker then quarantines it: later checks are
// skipped, the campaign completes, and the result reports degraded
// mode.
func TestCampaignBackendCrashesThenBreakerDegrades(t *testing.T) {
	cfg := smallCampaign()
	cfg.Backends = []backend.Spec{backend.ProcessSpec(backend.ProcessConfig{
		Name: "crashy", Path: fakesolver(t),
		Args:    []string{"-mode", "crash", "-exit", "139", "-stderr", "ASSERTION VIOLATION"},
		Timeout: 5 * time.Second, Retries: -1, BreakerThreshold: 2,
		Sleep: func(time.Duration) {},
	})}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Backends[0]
	if rep.Crashes != 2 {
		t.Errorf("crashes=%d, want exactly the breaker threshold 2", rep.Crashes)
	}
	if rep.Skipped == 0 {
		t.Error("no checks skipped after the breaker opened")
	}
	if rep.Checks+rep.Skipped != res.Tests {
		t.Errorf("checks=%d skipped=%d tests=%d: every tested task must be accounted for",
			rep.Checks, rep.Skipped, res.Tests)
	}
	if !rep.Quarantined || !res.Degraded() {
		t.Error("persistently crashing backend not reported as quarantined/degraded")
	}
	found := false
	for _, f := range res.BackendFindings {
		if f.Kind == bugdb.Crash {
			found = true
			if f.ExitCode != 139 {
				t.Errorf("crash finding exit code %d, want 139", f.ExitCode)
			}
			if !strings.Contains(f.Stderr, "ASSERTION VIOLATION") {
				t.Errorf("crash finding stderr %q missing the captured message", f.Stderr)
			}
		}
	}
	if !found {
		t.Error("no crash finding recorded")
	}
}

// TestCampaignBackendFlakeRetried checks the retry path end to end: a
// backend that fails transiently on its first invocation is healed by
// the retry loop, the campaign sees only parsed verdicts, and the
// consumed retries surface in the report.
func TestCampaignBackendFlakeRetried(t *testing.T) {
	state := filepath.Join(t.TempDir(), "count")
	cfg := smallCampaign()
	cfg.Backends = []backend.Spec{backend.ProcessSpec(backend.ProcessConfig{
		Name: "flaky", Path: fakesolver(t),
		Args:    []string{"-mode", "flake", "-failures", "1", "-then", "unknown", "-state", state},
		Timeout: 5 * time.Second, Retries: 3,
		Sleep: func(time.Duration) {},
	})}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Backends[0]
	if rep.Retries != 1 {
		t.Errorf("retries=%d, want exactly 1 (single transient failure)", rep.Retries)
	}
	if rep.Crashes != 0 || rep.Garbled != 0 {
		t.Errorf("transient flake leaked into hard-failure tallies: %+v", rep)
	}
	if rep.Unknowns != rep.Checks {
		t.Errorf("unknowns=%d checks=%d, want every check answering unknown", rep.Unknowns, rep.Checks)
	}
	if len(res.BackendFindings) != 0 {
		t.Errorf("healed flake produced findings: %+v", res.BackendFindings)
	}
	if res.Degraded() {
		t.Error("healed flake degraded the campaign")
	}
}

// TestCampaignBackendGarbledFinding checks that unparseable output is
// contained as a garbled finding, not a crash or a campaign error.
func TestCampaignBackendGarbledFinding(t *testing.T) {
	cfg := smallCampaign()
	cfg.Backends = []backend.Spec{backend.ProcessSpec(backend.ProcessConfig{
		Name: "garbler", Path: fakesolver(t), Args: []string{"-mode", "garble"},
		Timeout: 5 * time.Second, Retries: -1, BreakerThreshold: 1000,
		Sleep: func(time.Duration) {},
	})}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Backends[0]
	if rep.Garbled != rep.Checks || rep.Checks == 0 {
		t.Fatalf("garbled=%d checks=%d, want every check garbled", rep.Garbled, rep.Checks)
	}
	if len(res.BackendFindings) != 1 || res.BackendFindings[0].Kind != bugdb.Garbled {
		t.Fatalf("want one deduplicated garbled finding, got %+v", res.BackendFindings)
	}
}

// TestCampaignBackendValidation checks the configuration guards.
func TestCampaignBackendValidation(t *testing.T) {
	cfg := smallCampaign()
	cfg.Backends = []backend.Spec{
		SimBackendSpec(bugdb.Z3Sim, "trunk", 0),
		SimBackendSpec(bugdb.Z3Sim, "trunk", 0),
	}
	if _, err := Run(cfg); err == nil {
		t.Error("duplicate backend names accepted")
	}
	cfg.Backends = []backend.Spec{{Name: ""}}
	if _, err := Run(cfg); err == nil {
		t.Error("empty backend name accepted")
	}
}
