package harness

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/backend"
	"repro/internal/bugdb"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/smtlib"
	"repro/internal/solver"
	"repro/internal/telemetry"
)

// shortIters scales a campaign's iteration count down under -short —
// the race-detector CI run. Data races surface from the parallel
// shard/merge structure, which is unchanged; iteration volume only
// buys bug-finding power, which the full run still verifies.
func shortIters(full int) int {
	if testing.Short() {
		return full / 5
	}
	return full
}

func TestRunSolverCrashCapture(t *testing.T) {
	src := `
(set-logic QF_NRA)
(declare-fun a () Real)
(assert (> (/ (+ a 1.0) (+ a 1.0)) 0.0))
(check-sat)
`
	sc, err := smtlib.ParseScript(src)
	if err != nil {
		t.Fatal(err)
	}
	buggy := solver.New(solver.Config{Defects: map[solver.Defect]bool{solver.DefCrashSelfDivision: true}})
	run := RunSolver(buggy, sc)
	if !run.Crashed {
		t.Fatalf("crash not captured: %+v", run)
	}
	if len(run.DefectsFired) == 0 || run.DefectsFired[0] != solver.DefCrashSelfDivision {
		t.Errorf("crash site not recorded: %v", run.DefectsFired)
	}
	// Reference does not crash.
	run = RunSolver(solver.NewReference(), sc)
	if run.Crashed {
		t.Errorf("reference crashed: %v", run.CrashMsg)
	}
}

func TestReferenceCampaignFindsNothing(t *testing.T) {
	// Against a defect-free release... there is none in the catalogue,
	// so run the reference solver directly through the loop by using a
	// campaign against cvc4sim 1.5 but with logics where its defects
	// cannot fire (pure linear real arithmetic).
	res, err := Run(Campaign{
		SUT:        bugdb.CVC4Sim,
		Release:    "1.5",
		Logics:     []gen.Logic{gen.LRA},
		Iterations: 60,
		SeedPool:   10,
		Seed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReferenceDisagreements != 0 {
		t.Fatalf("reference disagreements: %d", res.ReferenceDisagreements)
	}
	for _, b := range res.Bugs {
		e, _ := bugdb.Find(b.Defect)
		t.Logf("found %s (%s, %s)", b.Defect, e.Type, b.Logic)
	}
}

func TestCampaignFindsSeededBugs(t *testing.T) {
	res, err := Run(Campaign{
		SUT:        bugdb.Z3Sim,
		Iterations: shortIters(80),
		SeedPool:   12,
		Seed:       7,
		Threads:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReferenceDisagreements != 0 {
		t.Fatalf("oracle mismatches without defect: %d — the reference solver is unsound", res.ReferenceDisagreements)
	}
	if len(res.Bugs) == 0 && !testing.Short() {
		t.Fatal("campaign found no bugs in the trunk z3sim")
	}
	t.Logf("tests=%d unknowns=%d bugs=%d dups=%d", res.Tests, res.Unknowns, len(res.Bugs), res.Duplicates)
	for _, b := range res.Bugs {
		t.Logf("  %s kind=%s logic=%s oracle=%v observed=%v", b.Defect, b.Kind, b.Logic, b.Oracle, b.Observed)
	}
}

func TestCampaignCVC4Sim(t *testing.T) {
	res, err := Run(Campaign{
		SUT:        bugdb.CVC4Sim,
		Iterations: shortIters(80),
		SeedPool:   12,
		Seed:       11,
		Threads:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReferenceDisagreements != 0 {
		t.Fatalf("reference disagreements: %d", res.ReferenceDisagreements)
	}
	t.Logf("cvc4sim: tests=%d bugs=%d", res.Tests, len(res.Bugs))
	for _, b := range res.Bugs {
		t.Logf("  %s kind=%s logic=%s", b.Defect, b.Kind, b.Logic)
	}
}

func TestConcatFuzzFindsFewer(t *testing.T) {
	base := Campaign{SUT: bugdb.Z3Sim, Iterations: shortIters(40), SeedPool: 10, Seed: 3, Threads: 4}
	full, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	concat := base
	concat.ConcatOnly = true
	co, err := Run(concat)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("yinyang=%d concatfuzz=%d", len(full.Bugs), len(co.Bugs))
	if len(co.Bugs) > len(full.Bugs) && !testing.Short() {
		t.Errorf("ConcatFuzz found more bugs (%d) than YinYang (%d)", len(co.Bugs), len(full.Bugs))
	}
	if co.ReferenceDisagreements != 0 {
		t.Fatalf("concat reference disagreements: %d", co.ReferenceDisagreements)
	}
}

func TestParallelMatchesMergeInvariants(t *testing.T) {
	res, err := Run(Campaign{
		SUT:        bugdb.Z3Sim,
		Logics:     []gen.Logic{gen.QFS, gen.QFNRA},
		Iterations: shortIters(80),
		SeedPool:   10,
		Seed:       5,
		Threads:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReferenceDisagreements != 0 {
		t.Fatalf("reference disagreements: %d", res.ReferenceDisagreements)
	}
	seen := map[solver.Defect]bool{}
	for _, b := range res.Bugs {
		if seen[b.Defect] {
			t.Errorf("duplicate defect %s after merge", b.Defect)
		}
		seen[b.Defect] = true
	}
}

func TestOldReleaseFindsSubset(t *testing.T) {
	trunk, err := Run(Campaign{SUT: bugdb.Z3Sim, Iterations: shortIters(50), SeedPool: 10, Seed: 13, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	old, err := Run(Campaign{SUT: bugdb.Z3Sim, Release: "4.5.0", Iterations: shortIters(50), SeedPool: 10, Seed: 13, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Every defect found in 4.5.0 must be one that affects 4.5.0.
	for _, b := range old.Bugs {
		if !bugdb.Affects(b.Defect, "4.5.0") {
			t.Errorf("bug %s found in 4.5.0 but not catalogued for it", b.Defect)
		}
	}
	t.Logf("trunk=%d old=%d", len(trunk.Bugs), len(old.Bugs))
}

func TestBugAncestorsRecorded(t *testing.T) {
	res, err := Run(Campaign{SUT: bugdb.Z3Sim, Iterations: shortIters(50), SeedPool: 10, Seed: 21, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range res.Bugs {
		if b.Ancestors[0] == nil || b.Ancestors[1] == nil || b.Script == nil {
			t.Errorf("bug %s missing ancestors or script", b.Defect)
		}
		if b.Oracle == core.StatusSat && b.Observed == solver.ResSat && b.Kind == bugdb.Soundness {
			t.Errorf("bug %s: agreeing result marked soundness", b.Defect)
		}
	}
}

// TestThreadCountInvariance checks the work-stealing engine's central
// guarantee: a campaign's findings are bit-identical for any Threads
// value — parallelism is a pure speedup, not a different experiment.
// The guarantee covers every campaign mode: fusion, mutation, and the
// interleaved combination — and must survive hermetic cross-check
// backends, whose reports, findings, and trace fields are part of the
// invariant surface.
func TestThreadCountInvariance(t *testing.T) {
	for _, mode := range []CampaignMode{ModeFusion, ModeMutate, ModeBoth} {
		t.Run(string(mode), func(t *testing.T) {
			base := Campaign{
				SUT:        bugdb.Z3Sim,
				Logics:     []gen.Logic{gen.QFLIA, gen.QFS},
				Iterations: shortIters(60),
				SeedPool:   8,
				Seed:       42,
				Mode:       mode,
				Backends:   []backend.Spec{SimBackendSpec(bugdb.CVC4Sim, "1.5", 0)},
			}
			threadCounts := []int{1, 2, 4}
			results := make([]*Result, len(threadCounts))
			metrics := make([]telemetry.Snapshot, len(threadCounts))
			traces := make([]*bytes.Buffer, len(threadCounts))
			for i, threads := range threadCounts {
				cfg := base
				cfg.Threads = threads
				cfg.Telemetry = telemetry.NewTracker()
				traces[i] = &bytes.Buffer{}
				cfg.Trace = traces[i]
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				results[i] = res
				metrics[i] = cfg.Telemetry.Snapshot()
			}
			ref := results[0]
			if ref.Tests == 0 {
				t.Fatal("campaign ran no tests")
			}
			// Family batching must actually reuse warm state — a zero hit
			// count would mean the batcher groups nothing and the perf win
			// silently evaporated — and the reuse counters must be part of
			// the invariant snapshot like every other counter.
			if hits := metrics[0].Counter("yy_warm_eval_hits_total"); hits == 0 {
				t.Error("family batching produced no warm eval-cache hits")
			}
			if hits := metrics[0].Counter("yy_rewrite_memo_hits_total"); hits == 0 {
				t.Error("family batching produced no rewrite-memo hits")
			}
			for i, threads := range threadCounts[1:] {
				r := results[i+1]
				if summary(r) != summary(ref) {
					t.Errorf("Threads=%d counts differ from Threads=1: %+v vs %+v",
						threads, summary(r), summary(ref))
				}
				if !reflect.DeepEqual(metrics[i+1], metrics[0]) {
					t.Errorf("Threads=%d telemetry snapshot differs from Threads=1:\n%+v\nvs\n%+v",
						threads, metrics[i+1], metrics[0])
				}
				if !bytes.Equal(traces[i+1].Bytes(), traces[0].Bytes()) {
					t.Errorf("Threads=%d JSONL trace differs from Threads=1", threads)
				}
				if !reflect.DeepEqual(r.Backends, ref.Backends) {
					t.Errorf("Threads=%d backend reports differ from Threads=1:\n%+v\nvs\n%+v",
						threads, r.Backends, ref.Backends)
				}
				if !reflect.DeepEqual(r.BackendFindings, ref.BackendFindings) {
					t.Errorf("Threads=%d backend findings differ from Threads=1:\n%+v\nvs\n%+v",
						threads, r.BackendFindings, ref.BackendFindings)
				}
				if len(r.Bugs) != len(ref.Bugs) {
					t.Fatalf("Threads=%d found %d bugs, Threads=1 found %d",
						threads, len(r.Bugs), len(ref.Bugs))
				}
				for j := range r.Bugs {
					a, b := r.Bugs[j], ref.Bugs[j]
					if a.Defect != b.Defect || a.Kind != b.Kind || a.Logic != b.Logic ||
						a.Oracle != b.Oracle || a.Observed != b.Observed || a.Mode != b.Mode {
						t.Errorf("Threads=%d bug %d differs: %+v vs %+v", threads, j, a.Defect, b.Defect)
					}
					if a.Script.Text() != b.Script.Text() {
						t.Errorf("Threads=%d bug %s triggering script differs", threads, a.Defect)
					}
					if len(a.Rules) != len(b.Rules) {
						t.Errorf("Threads=%d bug %s rule lists differ: %v vs %v",
							threads, a.Defect, a.Rules, b.Rules)
						continue
					}
					for k := range a.Rules {
						if a.Rules[k] != b.Rules[k] {
							t.Errorf("Threads=%d bug %s rule lists differ: %v vs %v",
								threads, a.Defect, a.Rules, b.Rules)
							break
						}
					}
				}
			}

			// The invariance must also survive a checkpoint cut: pausing
			// at an arbitrary frontier and resuming — with a different
			// worker count — is the same experiment as running straight
			// through. Cut positions are chosen adversarially: inside a
			// warm-state seed family (the resumed leg must warm-replay
			// the in-family prefix it did not classify) and flanking a
			// backend cross-check finding's recording task (the resumed
			// leg must restore finding dedup and breaker state rather
			// than re-record or re-count).
			cc := CampaignConfig{
				SUT:        string(bugdb.Z3Sim),
				Logics:     []string{string(gen.QFLIA), string(gen.QFS)},
				Iterations: shortIters(60),
				SeedPool:   8,
				Seed:       42,
				Mode:       string(mode),
				Backends:   []BackendConfig{{Sim: &SimBackendConfig{SUT: string(bugdb.CVC4Sim), Release: "1.5"}}},
			}
			refTr := telemetry.NewTracker()
			var refTrace bytes.Buffer
			refOut, err := Start(cc, RunOptions{Telemetry: refTr, Trace: &refTrace})
			if err != nil {
				t.Fatal(err)
			}
			// The config-driven path must be the same experiment as the
			// Campaign-driven path exercised above.
			if summary(refOut.Result) != summary(ref) {
				t.Errorf("Start(config) counts differ from Run(campaign): %+v vs %+v",
					summary(refOut.Result), summary(ref))
			}
			if !bytes.Equal(refTrace.Bytes(), traces[0].Bytes()) {
				t.Error("Start(config) trace differs from Run(campaign)")
			}

			d := cc.withDefaults()
			camp, err := d.campaign()
			if err != nil {
				t.Fatal(err)
			}
			var stops []int
			for _, fam := range buildFamilies(camp.withDefaults(), d.total()) {
				if len(fam) >= 2 {
					stops = append(stops, fam[0]+1) // cuts this family
					break
				}
			}
			for _, f := range refOut.Result.BackendFindings {
				stops = append(stops, f.Task, f.Task+1)
				break
			}
			if len(stops) == 0 {
				t.Fatal("no adversarial cut positions found")
			}
			legThreads := []int{4, 1, 2}
			for i, stop := range stops {
				if stop <= 0 || stop >= d.total() {
					continue
				}
				tr1 := telemetry.NewTracker()
				var tb1 bytes.Buffer
				out1, err := Start(cc, RunOptions{
					Telemetry: tr1, Trace: &tb1,
					Threads: legThreads[i%len(legThreads)], StopAfter: stop,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !out1.Paused || out1.Checkpoint == nil {
					t.Fatalf("stop=%d did not pause", stop)
				}
				data, err := EncodeCheckpoint(out1.Checkpoint)
				if err != nil {
					t.Fatalf("stop=%d encode: %v", stop, err)
				}
				cp, err := DecodeCheckpoint(data)
				if err != nil {
					t.Fatalf("stop=%d decode: %v", stop, err)
				}
				tr2 := telemetry.NewTracker()
				var tb2 bytes.Buffer
				out2, err := Resume(cp, RunOptions{
					Telemetry: tr2, Trace: &tb2,
					Threads: legThreads[(i+1)%len(legThreads)],
				})
				if err != nil {
					t.Fatalf("stop=%d resume: %v", stop, err)
				}
				if out2.Paused {
					t.Fatalf("stop=%d resumed leg paused", stop)
				}
				if !bytes.Equal(out2.Result.Fingerprint(), refOut.Result.Fingerprint()) {
					t.Errorf("stop=%d resumed result diverged from uninterrupted run", stop)
				}
				if !reflect.DeepEqual(out2.Telemetry, refOut.Telemetry) {
					t.Errorf("stop=%d resumed telemetry diverged from uninterrupted run", stop)
				}
				legs := append(append([]byte(nil), tb1.Bytes()...), tb2.Bytes()...)
				if !bytes.Equal(legs, refTrace.Bytes()) {
					t.Errorf("stop=%d concatenated leg traces diverged from uninterrupted trace", stop)
				}
			}
		})
	}
}

func summary(r *Result) [7]int {
	return [7]int{r.Tests, r.Unknowns, r.Duplicates, r.ReferenceDisagreements,
		r.InvalidInputs, r.Timeouts, r.Quarantined}
}

// TestExactIterationCount checks that parallel mode runs exactly
// Iterations tests per logic (an earlier version rounded shards up, so
// Threads=4, Iterations=10 silently ran 12). Tests + InvalidInputs +
// skipped pairs must equal the requested total.
func TestExactIterationCount(t *testing.T) {
	res, err := Run(Campaign{
		SUT:        bugdb.Z3Sim,
		Logics:     []gen.Logic{gen.QFLIA},
		Iterations: 10,
		SeedPool:   4,
		Seed:       7,
		Threads:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tests > 10 {
		t.Errorf("ran %d tests, want at most the requested 10", res.Tests)
	}
	if res.Tests+res.InvalidInputs > 10 {
		t.Errorf("tests+invalid = %d exceeds requested 10", res.Tests+res.InvalidInputs)
	}
	if res.Tests == 0 {
		t.Errorf("no tests ran")
	}
}
