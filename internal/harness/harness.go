// Package harness implements YinYang's testing loop (the paper's
// Algorithm 1) and the full experiment suite: seed-pool management,
// fusion or concatenation of random seed pairs, running a solver under
// test with crash capture and resource classification, triaging
// findings into deduplicated bugs, and parallel campaign execution.
package harness

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/analysis"
	"repro/internal/bugdb"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/smtlib"
	"repro/internal/solver"
)

// RunResult is one solver-under-test invocation with crash capture.
type RunResult struct {
	Result       solver.Result
	Reason       string
	Crashed      bool
	CrashMsg     string
	DefectsFired []solver.Defect
}

// RunSolver invokes the solver on a script, recovering crash-defect
// panics the way the paper's harness observes solver segfaults.
func RunSolver(s *solver.Solver, sc *smtlib.Script) (out RunResult) {
	defer func() {
		if r := recover(); r != nil {
			out.Crashed = true
			if ce, ok := r.(*solver.CrashError); ok {
				out.CrashMsg = ce.Error()
				out.DefectsFired = append(out.DefectsFired, ce.Site)
			} else {
				out.CrashMsg = fmt.Sprint(r)
			}
		}
	}()
	res := s.SolveScript(sc)
	return RunResult{
		Result:       res.Result,
		Reason:       res.Reason,
		DefectsFired: res.DefectsFired,
	}
}

// Bug is one deduplicated finding.
type Bug struct {
	Defect   solver.Defect
	Kind     bugdb.BugType
	Logic    gen.Logic
	Oracle   core.Status
	Observed solver.Result
	Script   *smtlib.Script
	// Ancestors are the two seeds whose fusion triggered the bug
	// (used by the RQ4 retrigger experiment).
	Ancestors [2]*core.Seed
	// Mode is the fusion mode that triggered the bug.
	Mode core.Mode
}

// Campaign configures one fuzzing run (Algorithm 1 plus seed-pool
// construction).
type Campaign struct {
	SUT     bugdb.SUT
	Release string // "" = trunk
	Logics  []gen.Logic
	// Iterations is the number of fused tests per logic.
	Iterations int
	// SeedPool is the number of sat and unsat seeds per logic pool.
	SeedPool int
	Seed     int64
	Threads  int // ≤ 1 = single-threaded
	// ConcatOnly switches to the ConcatFuzz baseline (RQ4).
	ConcatOnly bool
	// Fusion tunes the fusion engine.
	Fusion core.Options
}

func (c Campaign) withDefaults() Campaign {
	if c.Release == "" {
		c.Release = "trunk"
	}
	if len(c.Logics) == 0 {
		c.Logics = gen.AllLogics
	}
	if c.Iterations == 0 {
		c.Iterations = 200
	}
	if c.SeedPool == 0 {
		c.SeedPool = 20
	}
	if c.Threads == 0 {
		c.Threads = 1
	}
	return c
}

// Result is the outcome of a campaign.
type Result struct {
	Tests      int
	Unknowns   int
	Bugs       []Bug // deduplicated by defect site
	Duplicates int   // additional triggers of already-found defects
	// ReferenceDisagreements counts oracle mismatches with no defect
	// fired — these would indicate a bug in the reference solver itself
	// and must be zero.
	ReferenceDisagreements int
	// InvalidInputs counts fused scripts rejected by the static
	// verification gate (internal/analysis) — generator or fusion
	// defects triaged separately from solver verdicts.
	InvalidInputs int
}

// BugByDefect returns the bug for a defect, if found.
func (r *Result) BugByDefect(d solver.Defect) (Bug, bool) {
	for _, b := range r.Bugs {
		if b.Defect == d {
			return b, true
		}
	}
	return Bug{}, false
}

// Run executes the campaign.
func Run(cfg Campaign) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Threads <= 1 {
		return runShard(cfg, cfg.Seed)
	}
	// Parallel mode: shard iterations across workers with distinct
	// deterministic streams, then merge.
	shardCfg := cfg
	shardCfg.Iterations = (cfg.Iterations + cfg.Threads - 1) / cfg.Threads
	results := make([]*Result, cfg.Threads)
	errs := make([]error, cfg.Threads)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w], errs[w] = runShard(shardCfg, cfg.Seed+int64(w)*7919)
		}(w)
	}
	wg.Wait()
	merged := &Result{}
	seen := map[solver.Defect]bool{}
	for w := 0; w < cfg.Threads; w++ {
		if errs[w] != nil {
			return nil, errs[w]
		}
		r := results[w]
		merged.Tests += r.Tests
		merged.Unknowns += r.Unknowns
		merged.Duplicates += r.Duplicates
		merged.ReferenceDisagreements += r.ReferenceDisagreements
		merged.InvalidInputs += r.InvalidInputs
		for _, b := range r.Bugs {
			if seen[b.Defect] {
				merged.Duplicates++
				continue
			}
			seen[b.Defect] = true
			merged.Bugs = append(merged.Bugs, b)
		}
	}
	sortBugs(merged.Bugs)
	return merged, nil
}

func runShard(cfg Campaign, seed int64) (*Result, error) {
	rng := rand.New(rand.NewSource(seed))
	sut, err := bugdb.NewSolver(cfg.SUT, cfg.Release, nil)
	if err != nil {
		return nil, err
	}

	res := &Result{}
	found := map[solver.Defect]bool{}

	for _, logic := range cfg.Logics {
		g, err := gen.New(logic, seed^int64(len(logic))*104729)
		if err != nil {
			return nil, err
		}
		pool := buildPool(g, cfg.SeedPool, sut)
		for iter := 0; iter < cfg.Iterations; iter++ {
			oracle := core.StatusSat
			if rng.Intn(2) == 1 {
				oracle = core.StatusUnsat
			}
			s1, s2 := pool.pick(oracle, rng), pool.pick(oracle, rng)
			var fused *core.Fused
			if cfg.ConcatOnly {
				fused, err = core.Concat(s1, s2, rng)
			} else {
				fused, err = core.Fuse(s1, s2, rng, cfg.Fusion)
			}
			if err != nil {
				var ge *analysis.GateError
				if errors.As(err, &ge) {
					res.InvalidInputs++
				}
				continue // no fusable pair: skip this pair
			}
			res.Tests++
			run := RunSolver(sut, fused.Script)
			classify(res, found, cfg, logic, fused, [2]*core.Seed{s1, s2}, run)
		}
	}
	sortBugs(res.Bugs)
	return res, nil
}

// classify implements the incorrects/crashes bookkeeping of
// Algorithm 1, extended with performance-defect observation and
// duplicate triage by defect site.
func classify(res *Result, found map[solver.Defect]bool, cfg Campaign, logic gen.Logic, fused *core.Fused, ancestors [2]*core.Seed, run RunResult) {
	record := func(kind bugdb.BugType) {
		primary, ok := primaryDefect(run.DefectsFired, kind)
		if !ok {
			res.ReferenceDisagreements++
			return
		}
		if found[primary] {
			res.Duplicates++
			return
		}
		found[primary] = true
		res.Bugs = append(res.Bugs, Bug{
			Defect:    primary,
			Kind:      kind,
			Logic:     logic,
			Oracle:    fused.Oracle,
			Observed:  run.Result,
			Script:    fused.Script,
			Ancestors: ancestors,
			Mode:      fused.Mode,
		})
	}

	switch {
	case run.Crashed:
		record(bugdb.Crash)
	case run.Result == solver.ResUnknown:
		res.Unknowns++
		// A performance defect firing on the way to unknown is the
		// paper's "performance bug" observation.
		if _, ok := primaryDefect(run.DefectsFired, bugdb.Performance); ok {
			record(bugdb.Performance)
		}
	case (run.Result == solver.ResSat) != (fused.Oracle == core.StatusSat):
		record(bugdb.Soundness)
	}
}

// primaryDefect picks the fired defect matching the observed bug kind
// (triaging the report to its root cause, like the paper's interaction
// with the solver developers).
func primaryDefect(fired []solver.Defect, kind bugdb.BugType) (solver.Defect, bool) {
	var fallback solver.Defect
	haveFallback := false
	for _, d := range fired {
		e, ok := bugdb.Find(d)
		if !ok {
			continue
		}
		if e.Type == kind {
			return d, true
		}
		if !haveFallback {
			fallback, haveFallback = d, true
		}
	}
	// A soundness observation can be rooted in any wrong-transformation
	// defect even if catalogued under another logic; crashes must match
	// a crash site.
	if kind == bugdb.Soundness && haveFallback {
		return fallback, true
	}
	return "", false
}

func sortBugs(bugs []Bug) {
	sort.Slice(bugs, func(i, j int) bool { return bugs[i].Defect < bugs[j].Defect })
}

// pool holds per-status seed lists.
type seedPool struct {
	sat   []*core.Seed
	unsat []*core.Seed
}

// buildPool generates the seed corpus. Mirroring the paper's setup —
// the SMT-LIB benchmarks "are unlikely to trigger bugs in Z3 and CVC4
// since they have already been run on them" — seeds on which the solver
// under test misbehaves (wrong result or crash) are discarded and
// regenerated, so every finding requires combining seeds.
func buildPool(g *gen.Generator, n int, sut *solver.Solver) *seedPool {
	p := &seedPool{}
	vetted := func(status core.Status) *core.Seed {
		for try := 0; try < 10; try++ {
			s := g.Generate(status)
			if sut == nil {
				return s
			}
			run := RunSolver(sut, s.Script)
			if run.Crashed {
				continue
			}
			if run.Result != solver.ResUnknown &&
				(run.Result == solver.ResSat) != (status == core.StatusSat) {
				continue
			}
			return s
		}
		return g.Generate(status)
	}
	for i := 0; i < n; i++ {
		p.sat = append(p.sat, vetted(core.StatusSat))
		p.unsat = append(p.unsat, vetted(core.StatusUnsat))
	}
	return p
}

func (p *seedPool) pick(status core.Status, rng *rand.Rand) *core.Seed {
	if status == core.StatusSat {
		return p.sat[rng.Intn(len(p.sat))]
	}
	return p.unsat[rng.Intn(len(p.unsat))]
}
