// Package harness implements YinYang's testing loop (the paper's
// Algorithm 1) and the full experiment suite: seed-pool management,
// fusion or concatenation of random seed pairs, running a solver under
// test with crash capture and resource classification, triaging
// findings into deduplicated bugs, and parallel campaign execution.
package harness

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/backend"
	"repro/internal/bugdb"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/mutate"
	"repro/internal/smtlib"
	"repro/internal/solver"
	"repro/internal/telemetry"
	"repro/internal/watchdog"
)

// RunResult is one solver-under-test invocation with crash capture.
type RunResult struct {
	Result solver.Result
	// Model is the solver's reported witness when Result is sat; the
	// model-validation oracle evaluates it against the input script.
	Model        eval.Model
	Reason       string
	Crashed      bool
	CrashMsg     string
	DefectsFired []solver.Defect
	// InternalFault marks a panic that was NOT a simulated solver crash
	// (*solver.CrashError): our own solver implementation failing. Such
	// runs must never count toward the crash-bug totals — they are our
	// bug, not the SUT's — so the harness quarantines the input instead.
	InternalFault bool
	FaultMsg      string
	FaultStack    string
}

// RunSolver invokes the solver on a script, recovering crash-defect
// panics the way the paper's harness observes solver segfaults. Any
// other panic is the testing tool itself failing; it is captured with
// its stack and reported as an internal fault, not a finding.
func RunSolver(s *solver.Solver, sc *smtlib.Script) (out RunResult) {
	defer func() {
		if r := recover(); r != nil {
			if ce, ok := r.(*solver.CrashError); ok {
				out.Crashed = true
				out.CrashMsg = ce.Error()
				out.DefectsFired = append(out.DefectsFired, ce.Site)
			} else {
				out.InternalFault = true
				out.FaultMsg = fmt.Sprint(r)
				out.FaultStack = string(debug.Stack())
			}
		}
	}()
	res := s.SolveScript(sc)
	return RunResult{
		Result:       res.Result,
		Model:        res.Model,
		Reason:       res.Reason,
		DefectsFired: res.DefectsFired,
	}
}

// Bug is one deduplicated finding.
type Bug struct {
	Defect   solver.Defect
	Kind     bugdb.BugType
	Logic    gen.Logic
	Oracle   core.Status
	Observed solver.Result
	Script   *smtlib.Script
	// Ancestors are the two seeds whose fusion triggered the bug
	// (used by the RQ4 retrigger experiment). Mutation findings carry
	// their single ancestor in both slots.
	Ancestors [2]*core.Seed
	// Mode is the fusion mode that triggered the bug (fusion tasks only).
	Mode core.Mode
	// Rules lists the applied mutation rules (mutation tasks only).
	Rules []string
	// Tasks lists every global task id that triggered this defect, in
	// classification order: Tasks[0] is the recording trigger, the rest
	// are the re-triggers counted in Result.Duplicates. Checkpoints and
	// shard merging rely on these to reconstruct dedup state exactly.
	Tasks []int
}

// CampaignMode selects how a campaign derives test cases from seeds.
type CampaignMode string

const (
	// ModeFusion runs the paper's semantic-fusion pipeline (default).
	ModeFusion CampaignMode = "fusion"
	// ModeMutate runs type-aware operator mutation of single seeds.
	ModeMutate CampaignMode = "mutate"
	// ModeBoth interleaves fusion (even iterations) and mutation (odd
	// iterations) within each logic's task stream.
	ModeBoth CampaignMode = "both"
	// ModeWild mutates single seeds with the polarity constraint
	// removed: the derived test's satisfiability is unknown by
	// construction, so the known-status oracle abstains and only the
	// consensus policies (majority, metamorphic) can judge it.
	ModeWild CampaignMode = "wild"
)

// OraclePolicy selects how tested tasks are judged. The known-status
// oracle always applies where it can; the consensus policies add
// coverage for tasks whose ground truth no generator constructed
// (oracle "unknown" — wild mutants), where the known-status oracle
// abstains.
type OraclePolicy string

const (
	// OracleKnown judges only against constructed ground truth
	// (default). Unknown-status tasks pass through unjudged.
	OracleKnown OraclePolicy = "known"
	// OracleMajority folds all definite verdicts per unknown-status
	// task — the SUT's and every backend's — and attributes a
	// MajorityDisagreement finding to each outvoted voter, subject to
	// Campaign.Quorum.
	OracleMajority OraclePolicy = "majority"
	// OracleMetamorphic derives a variant with a known sat/unsat-
	// preserving relation for each unknown-status task and flags any
	// solver whose verdict pair violates the relation against itself.
	OracleMetamorphic OraclePolicy = "metamorphic"
	// OracleAuto runs both consensus policies on unknown-status tasks.
	OracleAuto OraclePolicy = "auto"
)

// Campaign configures one fuzzing run (Algorithm 1 plus seed-pool
// construction).
type Campaign struct {
	SUT     bugdb.SUT
	Release string // "" = trunk
	Logics  []gen.Logic
	// Iterations is the number of fused tests per logic.
	Iterations int
	// SeedPool is the number of sat and unsat seeds per logic pool.
	SeedPool int
	Seed     int64
	Threads  int // ≤ 1 = single-threaded
	// Mode selects the test-derivation strategy: fusion (default),
	// mutate, both (interleaved by iteration parity), or wild
	// (unknown-status mutation for the consensus oracles).
	Mode CampaignMode
	// Oracle selects the verdict-judging policy: known (default),
	// majority, metamorphic, or auto. The consensus policies act only
	// on unknown-status tasks; known-status classification is
	// unaffected by the choice.
	Oracle OraclePolicy
	// Quorum is the minimum number of definite votes (SUT plus
	// backends) the majority policy needs before calling a consensus;
	// with fewer votes, or a tie, the task is counted abstained. 0
	// defaults to 2.
	Quorum int
	// DisableModelCheck turns off the model-validation oracle, which
	// otherwise evaluates every sat model against the input script.
	DisableModelCheck bool
	// ConcatOnly switches to the ConcatFuzz baseline (RQ4).
	ConcatOnly bool
	// Fusion tunes the fusion engine.
	Fusion core.Options
	// Fuel bounds every solver invocation by a deterministic step count
	// (see solver.Limits.Fuel): 0 uses the solver default, a positive
	// value overrides it, and a negative value disables the meter.
	Fuel int64
	// WallTimeout, when positive, arms the wall-clock watchdog backstop
	// around each fused solve. A run cut off by the watchdog is
	// quarantined, never classified — and because wall-clock is
	// scheduling-dependent, campaigns with a watchdog armed forfeit the
	// bit-identical thread-count invariance that fuel preserves.
	WallTimeout time.Duration
	// ArtifactDir, when set, persists every finding (and quarantined
	// input) as a replayable reproducer bundle under this directory.
	ArtifactDir string
	// InjectDefects adds defects beyond the release's own catalogue
	// entries (fault-injection testing of the harness itself).
	InjectDefects []solver.Defect
	// Backends configures cross-check solvers run on every tested
	// script in addition to the SUT: each backend's verdict is compared
	// against the known-status oracle, layering a differential oracle
	// over the campaign. Hermetic (in-process) backends preserve the
	// thread-count invariance; external process backends — supervised,
	// retried, and circuit-broken by internal/backend — forfeit it the
	// same way WallTimeout does, and a persistently failing binary
	// degrades the campaign (its checks are skipped) instead of
	// stalling it.
	Backends []backend.Spec
	// Telemetry, when non-nil, receives the campaign's aggregated
	// metrics: engine step counters merged per task plus the funnel
	// counters. All writes happen in the in-order classification stage,
	// so the final snapshot is bit-identical for any Threads value.
	Telemetry *telemetry.Tracker
	// Trace, when non-nil, receives one JSONL TraceRecord per task,
	// emitted in task order (again thread-count-invariant).
	Trace io.Writer
}

func (c Campaign) withDefaults() Campaign {
	if c.Release == "" {
		c.Release = "trunk"
	}
	if len(c.Logics) == 0 {
		c.Logics = gen.AllLogics
	}
	if c.Iterations == 0 {
		c.Iterations = 200
	}
	if c.SeedPool == 0 {
		c.SeedPool = 20
	}
	// Clamp, don't just default: a negative thread count would size the
	// worker arrays with make([]T, c.Threads) and panic.
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.Mode == "" {
		c.Mode = ModeFusion
	}
	if c.Oracle == "" {
		c.Oracle = OracleKnown
	}
	if c.Quorum == 0 {
		c.Quorum = 2
	}
	return c
}

// Result is the outcome of a campaign.
type Result struct {
	Tests      int
	Unknowns   int
	Bugs       []Bug // deduplicated by defect site
	Duplicates int   // additional triggers of already-found defects
	// ReferenceDisagreements counts oracle mismatches with no defect
	// fired — these would indicate a bug in the reference solver itself
	// and must be zero.
	ReferenceDisagreements int
	// InvalidInputs counts fused scripts rejected by the static
	// verification gate (internal/analysis) — generator or fusion
	// defects triaged separately from solver verdicts.
	InvalidInputs int
	// Timeouts counts solves halted by fuel exhaustion. Those caused by
	// a performance defect also surface as Performance bugs; the rest
	// are genuinely hard instances.
	Timeouts int
	// Quarantined counts inputs withdrawn from classification: internal
	// faults of our own solver, and runs cut off by the wall-clock
	// watchdog. They never count as findings.
	Quarantined int
	// Artifacts lists reproducer bundle directories written this
	// campaign (empty unless Campaign.ArtifactDir is set).
	Artifacts []string
	// Backends holds one health summary per configured cross-check
	// backend, in Campaign.Backends order.
	Backends []BackendReport
	// BackendFindings lists the deduplicated cross-check observations:
	// verdict disagreements, contained backend failures, and consensus-
	// oracle findings. They are kept apart from Bugs — they implicate a
	// specific solver (a backend, or the SUT as the "sut" pseudo-voter),
	// not only a catalogued defect of the SUT.
	BackendFindings []BackendFinding

	// Majority-policy tallies (unknown-status tasks only). OracleVotes
	// sums the definite votes cast; each judged task counts once under
	// either OracleConsensus or OracleAbstained; SutOutvoted counts the
	// SUT's outvoted verdicts, re-triggers included (the per-backend
	// analogue lives in BackendReport.Outvoted).
	OracleVotes     int
	OracleConsensus int
	OracleAbstained int
	SutOutvoted     int
	// Metamorphic-policy tallies. MetamorphicPairs counts tasks with a
	// derived variant pair; MetamorphicSkips counts unknown-status tasks
	// where no relation-preserving variant could be derived;
	// SutViolations counts the SUT's pair-relation violations,
	// re-triggers included (per-backend: BackendReport.Violations).
	MetamorphicPairs int
	MetamorphicSkips int
	SutViolations    int
}

// BugByDefect returns the bug for a defect, if found.
func (r *Result) BugByDefect(d solver.Defect) (Bug, bool) {
	for _, b := range r.Bugs {
		if b.Defect == d {
			return b, true
		}
	}
	return Bug{}, false
}

// Deterministic seed derivation. Every random stream in a campaign is
// keyed by (campaign seed, logic-name hash, role, index) through a
// splitmix-style finalizer, so pool contents and per-task streams are
// functions of the configuration alone — never of scheduling, thread
// count, or execution order. Hashing the logic *name* (rather than its
// length, as an earlier version did) keeps equal-length logics such as
// QF_LIA/QF_LRA/QF_NRA on distinct streams.
const (
	seedDomainPool uint64 = 0x706f6f6c // "pool"
	seedDomainTask uint64 = 0x7461736b // "task"
	seedDomainMeta uint64 = 0x6d657461 // "meta" — metamorphic variant derivation
)

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func hashName(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// logicSeed derives the base stream for a logic within a campaign.
func logicSeed(seed int64, logic gen.Logic) int64 {
	return int64(mix64(uint64(seed) ^ hashName(string(logic))))
}

// poolSeed keys the generator for one corpus slot (a sat or unsat seed
// position), so vetting can run on any worker in any order.
func poolSeed(seed int64, logic gen.Logic, slot int, status core.Status) int64 {
	h := uint64(seed) ^ hashName(string(logic)) ^ seedDomainPool
	idx := uint64(slot) << 1
	if status == core.StatusUnsat {
		idx |= 1
	}
	return int64(mix64(mix64(h) + idx*0x9e3779b97f4a7c15))
}

// taskSeed keys the RNG of one fusion+solve task.
func taskSeed(seed int64, logic gen.Logic, iter int) int64 {
	h := uint64(seed) ^ hashName(string(logic)) ^ seedDomainTask
	return int64(mix64(mix64(h) + uint64(iter)*0x9e3779b97f4a7c15))
}

// metaSeed keys the RNG of a task's metamorphic variant derivation — a
// separate domain, so arming the metamorphic policy never perturbs the
// task's own stream (the primary test stays byte-identical to a
// known-policy run of the same configuration).
func metaSeed(seed int64, logic gen.Logic, iter int) int64 {
	h := uint64(seed) ^ hashName(string(logic)) ^ seedDomainMeta
	return int64(mix64(mix64(h) + uint64(iter)*0x9e3779b97f4a7c15))
}

// isMutationTask reports whether a task derives by (single-seed)
// mutation rather than fusion — a pure function of (Mode, iter), shared
// by the family scheduler and the task runner.
func isMutationTask(mode CampaignMode, iter int) bool {
	return mode == ModeMutate || mode == ModeWild || (mode == ModeBoth && iter%2 == 1)
}

// familyKey identifies the seed family of a task: two tasks are in the
// same family exactly when they derive their tests from the same
// seed(s) of the same logic. The scheduler batches a family onto one
// worker so the solver's warm caches carry shared seed structure from
// one variant to the next.
type familyKey struct {
	logicIdx int
	mutation bool
	oracle   core.Status
	s1, s2   int // pool pick indices; s2 is -1 for mutation tasks
}

// familyOf computes a task's family key by replaying the prefix of its
// RNG stream that selects the oracle and the seed-pool indices. The
// replay recreates the task RNG from its seed and discards it, so the
// task's own stream — rebuilt from the same seed in runTaskInner — is
// untouched: per-task RNG coordinates are exactly those of the
// unbatched scheduler, draw for draw.
func familyOf(cfg Campaign, id int) familyKey {
	logicIdx, iter := id/cfg.Iterations, id%cfg.Iterations
	rng := rand.New(rand.NewSource(taskSeed(cfg.Seed, cfg.Logics[logicIdx], iter)))
	k := familyKey{logicIdx: logicIdx, oracle: core.StatusSat, s2: -1}
	if rng.Intn(2) == 1 {
		k.oracle = core.StatusUnsat
	}
	k.mutation = isMutationTask(cfg.Mode, iter)
	// Mirror seedPool.pick's draws: one Intn(SeedPool) per picked seed.
	k.s1 = rng.Intn(cfg.SeedPool)
	if !k.mutation {
		k.s2 = rng.Intn(cfg.SeedPool)
	}
	return k
}

// buildFamilies groups the task ids [0, total) into per-seed families.
// Ids stay in ascending order inside each family, and families are
// ordered by their first task id, so the schedule is a pure function of
// the campaign configuration — never of thread count or timing.
func buildFamilies(cfg Campaign, total int) [][]int {
	index := map[familyKey]int{}
	var fams [][]int
	for id := 0; id < total; id++ {
		k := familyOf(cfg, id)
		fi, ok := index[k]
		if !ok {
			fi = len(fams)
			index[k] = fi
			fams = append(fams, nil)
		}
		fams[fi] = append(fams[fi], id)
	}
	return fams
}

// taskOutcome is the raw result of one fusion+solve task, produced by
// any worker and classified later in deterministic task order.
type taskOutcome struct {
	id      int
	invalid bool // test derivation rejected by the static gate
	tested  bool // a test script was produced and solved
	// Exactly one of fused/mutant is set on a tested outcome.
	fused     *core.Fused
	mutant    *mutate.Mutant
	ancestors [2]*core.Seed
	run       RunResult
	// wallTimeout marks a run cut off by the wall-clock watchdog; the
	// worker's solver instance is tainted and must be replaced.
	wallTimeout bool
	// delta holds the task's engine-counter increments (empty on a
	// wall-timeout: the abandoned goroutine still owns that tracker).
	delta telemetry.Snapshot
	// backendRuns holds the cross-check outputs, one per configured
	// backend (nil when the task was not tested, was quarantined, or
	// the campaign has no backends).
	backendRuns []backend.Output
	// Metamorphic-policy fields (unknown-status tasks under the
	// metamorphic or auto policy only). variantSkip marks a task where
	// no relation-preserving variant could be derived; otherwise
	// variant/variantRun/variantBackends mirror the primary triple.
	variant         *mutate.Variant
	variantRun      RunResult
	variantBackends []backend.Output
	variantSkip     bool
	// consensus is the majority policy's per-task annotation ("sat",
	// "unsat", or "abstained"), written by the classification stage and
	// read by the trace recorder.
	consensus string
}

// quarantined reports whether the task is withdrawn from all
// classification: a watchdog cut-off or an internal fault of our own
// solver on either the primary or the variant solve.
func (o *taskOutcome) quarantined() bool {
	return o.wallTimeout || o.run.InternalFault || o.variantRun.InternalFault
}

// testScript is the script that was handed to the solver under test.
func (o *taskOutcome) testScript() *smtlib.Script {
	if o.mutant != nil {
		return o.mutant.Script
	}
	return o.fused.Script
}

// oracle is the expected verdict of the test script.
func (o *taskOutcome) oracle() core.Status {
	if o.mutant != nil {
		return o.mutant.Oracle
	}
	return o.fused.Oracle
}

// makeSUT builds one solver-under-test instance for a campaign worker:
// the release's catalogued defects plus any injected ones, under the
// campaign's fuel limit, recording step counters into tr (nil = none).
func makeSUT(cfg Campaign, tr *telemetry.Tracker) (*solver.Solver, error) {
	defects, err := bugdb.DefectsIn(cfg.SUT, cfg.Release)
	if err != nil {
		return nil, err
	}
	for _, d := range cfg.InjectDefects {
		defects[d] = true
	}
	lim := solver.DefaultLimits()
	if cfg.Fuel > 0 {
		lim.Fuel = cfg.Fuel
	} else if cfg.Fuel < 0 {
		lim.Fuel = 0 // unlimited
	}
	return solver.New(solver.Config{Defects: defects, Limits: lim, Telemetry: tr}), nil
}

// Run executes the campaign as a shared-corpus, work-stealing pipeline:
//
//  1. The seed corpus is built once per logic, with solver vetting of
//     the slots spread across the worker pool. Each slot has its own
//     generator stream, so the corpus is identical however the vetting
//     work is scheduled.
//  2. Fusion+solve tasks — exactly Iterations per logic — are drawn
//     from a shared queue by workers. Each task seeds its RNG from
//     (campaign seed, logic, iteration), so its test is a pure function
//     of the configuration.
//  3. Outcomes are classified sequentially in task order, making bug
//     dedup and duplicate counting order-independent.
//
// Consequently a campaign's findings are bit-identical for any Threads
// value: parallelism is a pure speedup, not a different experiment.
func Run(cfg Campaign) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := validateCampaign(cfg); err != nil {
		return nil, err
	}
	total := len(cfg.Logics) * cfg.Iterations
	include := make([]int, total)
	for i := range include {
		include[i] = i
	}
	st := newRunState(cfg)
	if _, err := runLeg(cfg, include, st, runControls{}); err != nil {
		return nil, err
	}
	return finish(cfg, st)
}

// validateCampaign rejects configurations Run cannot execute. cfg must
// already carry its defaults.
func validateCampaign(cfg Campaign) error {
	switch cfg.Mode {
	case ModeFusion, ModeMutate, ModeBoth, ModeWild:
	default:
		return fmt.Errorf("harness: unknown campaign mode %q", cfg.Mode)
	}
	if cfg.ConcatOnly && cfg.Mode != ModeFusion {
		return fmt.Errorf("harness: ConcatOnly requires fusion mode, got %q", cfg.Mode)
	}
	switch cfg.Oracle {
	case OracleKnown, OracleMajority, OracleMetamorphic, OracleAuto:
	default:
		return fmt.Errorf("harness: unknown oracle policy %q", cfg.Oracle)
	}
	if cfg.Quorum < 0 {
		return fmt.Errorf("harness: negative quorum %d", cfg.Quorum)
	}
	return validateBackends(cfg.Backends)
}

// runControls tunes one exec leg of a campaign: pause triggers and
// observation hooks. The zero value runs the leg to completion.
type runControls struct {
	// stopAfter, when positive, pauses the leg once that many more
	// tasks have been classified.
	stopAfter int
	// stop is polled after every classified task; returning true pauses
	// the leg at that frontier.
	stop func() bool
	// progress observes (classified so far, campaign total) after every
	// classified task, called from the classification goroutine. When
	// set, the trace writer is flushed first, so a live reader observes
	// every record up to the reported position.
	progress func(done, total int)
	// suppressVet drops the corpus-vetting telemetry: resume legs and
	// non-zero shards rebuild the corpus (it is a pure function of the
	// configuration), but only the first leg of shard 0 may count it —
	// otherwise the merged funnel would double-count seed generation.
	suppressVet bool
}

// runState is the campaign state that survives a pause: everything the
// in-order classification stage has folded so far. Bugs stay in
// recording order until finish sorts them, so a checkpoint taken at any
// frontier serializes the exact dedup state.
type runState struct {
	res   *Result
	found map[solver.Defect]int // defect → index into res.Bugs
	bt    *backendTriage
	aw    *artifactWriter
	// done counts classified tasks, cumulative across resume legs.
	done int
}

func newRunState(cfg Campaign) *runState {
	res := &Result{}
	res.Backends = make([]BackendReport, len(cfg.Backends))
	for i, spec := range cfg.Backends {
		res.Backends[i] = BackendReport{Name: spec.Name, Hermetic: spec.Hermetic}
	}
	st := &runState{
		res:   res,
		found: map[solver.Defect]int{},
		bt:    &backendTriage{seen: map[bkKey]bool{}},
	}
	if cfg.ArtifactDir != "" {
		st.aw = newArtifactWriter(cfg.ArtifactDir)
	}
	return st
}

// finish finalizes a completed (or paused, for its partial Result)
// campaign: sorts the findings, fills breaker states, and surfaces the
// first artifact-write error.
func finish(cfg Campaign, st *runState) (*Result, error) {
	res := st.res
	sortBugs(res.Bugs)
	finishBackends(res, cfg)
	if st.aw != nil {
		if st.aw.err != nil {
			return nil, fmt.Errorf("harness: writing artifacts: %w", st.aw.err)
		}
		res.Artifacts = st.aw.paths
	}
	return res, nil
}

// runLeg runs one leg of a campaign: the tasks listed in include
// (strictly ascending global ids) are executed and classified in that
// order into st. Tasks outside include that precede an included task
// within its family are warm-replayed — run and discarded — so every
// included task sees exactly the warm-cache state (and hence telemetry
// deltas) it would have seen in an uninterrupted single-process run.
// Returns true when a control paused the leg before include was
// exhausted.
func runLeg(cfg Campaign, include []int, st *runState, ctl runControls) (bool, error) {
	rec := &recorder{tr: cfg.Telemetry, suppressVet: ctl.suppressVet}
	if cfg.Trace != nil {
		rec.jw = telemetry.NewJSONLWriter(cfg.Trace)
	}

	// One solver instance per worker: instances are deterministic per
	// Solve call but not safe for concurrent use. Each worker likewise
	// owns its telemetry tracker; per-task deltas are folded into the
	// campaign tracker by the in-order classification stage.
	suts := make([]*solver.Solver, cfg.Threads)
	trackers := make([]*telemetry.Tracker, cfg.Threads)
	for w := range suts {
		if rec.active() {
			trackers[w] = telemetry.NewTracker()
		}
		sut, err := makeSUT(cfg, trackers[w])
		if err != nil {
			return false, err
		}
		suts[w] = sut
	}

	// Cross-check backends follow the same per-worker instance model as
	// SUTs: instances are not required to be concurrency-safe, but all
	// instances of one external backend share its Spec's Health, so the
	// circuit breaker counts the backend's global failure streak.
	workerBackends := make([][]backend.Backend, cfg.Threads)
	for w := range workerBackends {
		for _, spec := range cfg.Backends {
			b, err := spec.New()
			if err != nil {
				return false, fmt.Errorf("harness: backend %q: %w", spec.Name, err)
			}
			workerBackends[w] = append(workerBackends[w], b)
		}
	}

	pools, err := buildCorpus(cfg, suts, trackers, rec)
	if err != nil {
		return false, err
	}

	// Tasks are dispatched as per-seed families: all variants of one
	// seed (pair) run on the same worker, in ascending task order, with
	// the solver's warm caches reset at each family boundary. Verdicts
	// and models are unaffected (the caches are semantically
	// transparent); what batching buys is cross-variant cache reuse,
	// and what the reset buys is thread-invariance — each task's
	// telemetry delta is a function of its in-family predecessors only,
	// never of which worker ran the family or what ran there before.
	//
	// emit marks the included ids. Families are always computed over
	// the full task space, trimmed to their last included member: the
	// untrimmed prefix is the warm-replay work that reconstructs the
	// in-family cache state an included task depends on. Workers read
	// emit concurrently; it is immutable once built.
	total := len(cfg.Logics) * cfg.Iterations
	emit := make([]bool, total)
	for _, id := range include {
		emit[id] = true
	}
	var jobs [][]int
	for _, fam := range buildFamilies(cfg, total) {
		last := -1
		for i, id := range fam {
			if emit[id] {
				last = i
			}
		}
		if last >= 0 {
			jobs = append(jobs, fam[:last+1])
		}
	}

	taskCh := make(chan []int, cfg.Threads)
	outCh := make(chan taskOutcome, cfg.Threads)
	quit := make(chan struct{})

	var wg sync.WaitGroup
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(sut *solver.Solver, bks []backend.Backend, tr *telemetry.Tracker) {
			defer wg.Done()
			// Replayed (non-emitted) tasks drive only the warm-state
			// backends: hermetic adapters own per-instance caches whose
			// state the replay must reconstruct, while external process
			// backends carry no warm state (and cost real solver time),
			// so a resumed campaign never re-invokes them for
			// already-classified work.
			var warmBks []backend.Backend
			for _, b := range bks {
				if _, ok := b.(backend.Resetter); ok {
					warmBks = append(warmBks, b)
				}
			}
			for fam := range taskCh {
				sut.ResetWarm()
				// Hermetic backends carry the same warm-cache contract as
				// the SUT: reset at family boundaries, so their verdict
				// stream is a function of the family alone.
				for _, b := range bks {
					if r, ok := b.(backend.Resetter); ok {
						r.ResetWarm()
					}
				}
				for _, id := range fam {
					runBks := bks
					if !emit[id] {
						runBks = warmBks
					}
					out := runTask(cfg, pools, sut, runBks, tr, id)
					if out.wallTimeout {
						// The watchdog abandoned a solve mid-flight: that
						// solver instance may hold inconsistent state, so
						// replace it — together with its tracker, which the
						// abandoned goroutine may still be writing. makeSUT
						// cannot fail here — the same arguments succeeded
						// when the pool was built.
						if tr != nil {
							tr = telemetry.NewTracker()
						}
						if fresh, err := makeSUT(cfg, tr); err == nil {
							sut = fresh
						}
					}
					if emit[id] {
						outCh <- out
					}
				}
			}
		}(suts[w], workerBackends[w], trackers[w])
	}
	go func() {
		defer func() {
			close(taskCh)
			wg.Wait()
			close(outCh)
		}()
		for _, fam := range jobs {
			select {
			case taskCh <- fam:
			case <-quit:
				return
			}
		}
	}()

	// In-order classification: outcomes arrive in completion order but
	// are applied in task order, buffering only the out-of-order window.
	// After a pause triggers, the feeder is stopped and the channel
	// drained; outcomes past the frontier are discarded — resume re-runs
	// them deterministically.
	totalInclude := st.done + len(include)
	idx := 0
	budget := ctl.stopAfter
	paused := false
	quitClosed := false
	stopFeeding := func() {
		if !quitClosed {
			close(quit)
			quitClosed = true
		}
	}
	pending := map[int]taskOutcome{}
	for out := range outCh {
		if paused {
			continue
		}
		pending[out.id] = out
		for idx < len(include) {
			cur, ok := pending[include[idx]]
			if !ok {
				break
			}
			delete(pending, include[idx])
			idx++
			prev := countsOf(st.res)
			applyOutcome(st.res, st.found, cfg, st.aw, st.bt, &cur)
			rec.task(cfg, cur, prev, st.res)
			st.done++
			if ctl.progress != nil {
				rec.flush()
				ctl.progress(st.done, totalInclude)
			}
			if budget > 0 {
				budget--
				if budget == 0 {
					paused = true
				}
			}
			if !paused && ctl.stop != nil && ctl.stop() {
				paused = true
			}
			if paused {
				stopFeeding()
				break
			}
		}
	}
	if idx == len(include) {
		// The pause trigger fired on the last task: nothing remains, so
		// the leg completed after all.
		paused = false
	}
	if err := rec.jw.Close(); err != nil {
		return false, fmt.Errorf("harness: writing trace: %w", err)
	}
	return paused, nil
}

// runTask executes one derive+solve task — fusion of a seed pair or
// mutation of a single seed, depending on the campaign mode. Everything
// random in the task flows from its own deterministic RNG, and the mode
// of an iteration is a pure function of (Mode, iter), so campaigns stay
// bit-identical for any thread count.
func runTask(cfg Campaign, pools []*seedPool, sut *solver.Solver, bks []backend.Backend, tr *telemetry.Tracker, id int) taskOutcome {
	before := tr.Snapshot()
	out := runTaskInner(cfg, pools, sut, bks, id)
	if !out.wallTimeout {
		// On a wall-timeout the abandoned goroutine may still be writing
		// tr, so the tracker is surrendered with it instead of read.
		out.delta = tr.Snapshot().Diff(before)
	}
	return out
}

func runTaskInner(cfg Campaign, pools []*seedPool, sut *solver.Solver, bks []backend.Backend, id int) taskOutcome {
	logicIdx, iter := id/cfg.Iterations, id%cfg.Iterations
	logic := cfg.Logics[logicIdx]
	rng := rand.New(rand.NewSource(taskSeed(cfg.Seed, logic, iter)))
	oracle := core.StatusSat
	if rng.Intn(2) == 1 {
		oracle = core.StatusUnsat
	}
	pool := pools[logicIdx]
	out := taskOutcome{id: id}
	if isMutationTask(cfg.Mode, iter) {
		s1 := pool.pick(oracle, rng)
		var mut *mutate.Mutant
		var err error
		if cfg.Mode == ModeWild {
			// Wild mutation leaves the polarity-soundness envelope: the
			// oracle coin and pool pick above replay identically, but the
			// derived test's ground truth is unknown by construction.
			mut, err = mutate.Wild(s1, rng, mutate.Options{})
		} else {
			mut, err = mutate.Mutate(s1, rng, mutate.Options{})
		}
		if err != nil {
			// A seed with no applicable mutation site is a skip, not a
			// defect; a lost witness or gate rejection is a mutation-engine
			// failure triaged like an invalid fusion.
			var ge *analysis.GateError
			invalid := errors.As(err, &ge) || errors.Is(err, mutate.ErrWitnessLost)
			return taskOutcome{id: id, invalid: invalid}
		}
		out.mutant = mut
		out.ancestors = [2]*core.Seed{s1, s1}
	} else {
		s1, s2 := pool.pick(oracle, rng), pool.pick(oracle, rng)
		var fused *core.Fused
		var err error
		if cfg.ConcatOnly {
			fused, err = core.Concat(s1, s2, rng)
		} else {
			fused, err = core.Fuse(s1, s2, rng, cfg.Fusion)
		}
		if err != nil {
			var ge *analysis.GateError
			return taskOutcome{id: id, invalid: errors.As(err, &ge)}
		}
		out.fused = fused
		out.ancestors = [2]*core.Seed{s1, s2}
	}
	out.tested = true
	script := out.testScript()
	if cfg.WallTimeout > 0 {
		completed := watchdog.Run(cfg.WallTimeout, func() {
			out.run = RunSolver(sut, script)
		})
		if !completed {
			// The solve is still executing in the abandoned goroutine,
			// which owns out.run; build the quarantine report from the
			// untouched fields only.
			return taskOutcome{id: id, tested: true, fused: out.fused,
				mutant: out.mutant, ancestors: out.ancestors, wallTimeout: true}
		}
	} else {
		out.run = RunSolver(sut, script)
	}
	// Cross-check backends run after a completed SUT solve, on the
	// worker, so external solver latency overlaps across workers. A
	// quarantined task (internal fault) is withdrawn from all oracles,
	// the differential one included. Process backends enforce their own
	// deadline; the watchdog never wraps them.
	if !out.run.InternalFault {
		out.backendRuns = runBackends(bks, script)
	}
	// Metamorphic leg: an unknown-status test has no ground truth to
	// check against, so derive a relation-preserving variant and solve it
	// on the same worker. The variant's randomness comes from its own
	// seed domain — reordering or disabling the policy never perturbs
	// the primary task stream.
	if (cfg.Oracle == OracleMetamorphic || cfg.Oracle == OracleAuto) &&
		out.oracle() == core.StatusUnknown && !out.run.InternalFault {
		vrng := rand.New(rand.NewSource(metaSeed(cfg.Seed, logic, iter)))
		v, err := mutate.DeriveVariant(script, vrng, mutate.Options{})
		if err != nil {
			// No relation-preserving site (or the gate rejected the
			// variant): the pair is skipped, never charged as a finding.
			out.variantSkip = true
			return out
		}
		out.variant = v
		if cfg.WallTimeout > 0 {
			completed := watchdog.Run(cfg.WallTimeout, func() {
				out.variantRun = RunSolver(sut, v.Script)
			})
			if !completed {
				// Same taint rule as the primary solve: the abandoned
				// goroutine owns out.variantRun, so rebuild the outcome
				// from the untouched fields.
				return taskOutcome{id: id, tested: true, fused: out.fused,
					mutant: out.mutant, ancestors: out.ancestors, wallTimeout: true}
			}
		} else {
			out.variantRun = RunSolver(sut, v.Script)
		}
		if !out.variantRun.InternalFault {
			out.variantBackends = runBackends(bks, v.Script)
		}
	}
	return out
}

func applyOutcome(res *Result, found map[solver.Defect]int, cfg Campaign, aw *artifactWriter, bt *backendTriage, out *taskOutcome) {
	if out.invalid {
		res.InvalidInputs++
		return
	}
	if !out.tested {
		return // no fusable pair: skip
	}
	// Quarantine before classification: a watchdog cut-off or an
	// internal fault of our own solver — on either the primary or the
	// metamorphic-variant solve — is never a finding. The campaign
	// continues; the offending input is preserved for debugging.
	if out.quarantined() {
		res.Quarantined++
		if aw != nil {
			m := manifestFor(cfg, *out, "quarantine", "")
			switch {
			case out.wallTimeout:
				m.Observed = "wall-timeout"
				m.Reason = "wall-clock watchdog expired"
			case out.run.InternalFault:
				m.Observed = "internal-fault"
				m.FaultMsg = out.run.FaultMsg
				m.FaultStack = out.run.FaultStack
			default:
				m.Observed = "internal-fault"
				m.FaultMsg = out.variantRun.FaultMsg
				m.FaultStack = out.variantRun.FaultStack
			}
			aw.write(m, out.ancestors, out.testScript(), out.id)
		}
		return
	}
	res.Tests++
	classify(res, found, cfg, aw, *out)
	classifyBackends(res, cfg, aw, bt, *out)
	classifyConsensus(res, cfg, aw, bt, out)
}

// manifestFor assembles the replay coordinates of one task outcome.
func manifestFor(cfg Campaign, out taskOutcome, bugType string, defect solver.Defect) Manifest {
	logicIdx, iter := out.id/cfg.Iterations, out.id%cfg.Iterations
	fired := make([]string, 0, len(out.run.DefectsFired))
	for _, d := range out.run.DefectsFired {
		fired = append(fired, string(d))
	}
	m := Manifest{
		Schema:       ManifestSchema,
		SUT:          string(cfg.SUT),
		Release:      cfg.Release,
		BugType:      bugType,
		Defect:       string(defect),
		Oracle:       "",
		Observed:     out.run.Result.String(),
		Reason:       out.run.Reason,
		DefectsFired: fired,
		CampaignSeed: cfg.Seed,
		Logic:        string(cfg.Logics[logicIdx]),
		Iteration:    iter,
		Iterations:   cfg.Iterations,
		SeedPool:     cfg.SeedPool,
		ConcatOnly:   cfg.ConcatOnly,
		Fuel:         cfg.Fuel,
		CampaignMode: string(cfg.Mode),
	}
	for _, d := range cfg.InjectDefects {
		m.InjectDefects = append(m.InjectDefects, string(d))
	}
	if out.fused != nil {
		m.Oracle = out.fused.Oracle.String()
		m.Mode = out.fused.Mode.String()
	}
	if out.mutant != nil {
		m.Oracle = out.mutant.Oracle.String()
		m.Mode = "mutation"
		m.MutationRules = out.mutant.Rules
	}
	if out.run.Crashed {
		m.Observed = "crash"
		m.Reason = out.run.CrashMsg
	}
	return m
}

// classify implements the incorrects/crashes bookkeeping of
// Algorithm 1, extended with performance-defect observation, timeout
// triage, and duplicate triage by defect site.
func classify(res *Result, found map[solver.Defect]int, cfg Campaign, aw *artifactWriter, out taskOutcome) {
	logic := cfg.Logics[out.id/cfg.Iterations]
	ancestors, run := out.ancestors, out.run
	script, oracle := out.testScript(), out.oracle()
	record := func(kind bugdb.BugType) {
		primary, ok := primaryDefect(run.DefectsFired, kind)
		if !ok {
			res.ReferenceDisagreements++
			return
		}
		if i, ok := found[primary]; ok {
			res.Duplicates++
			res.Bugs[i].Tasks = append(res.Bugs[i].Tasks, out.id)
			return
		}
		found[primary] = len(res.Bugs)
		b := Bug{
			Defect:    primary,
			Kind:      kind,
			Logic:     logic,
			Oracle:    oracle,
			Observed:  run.Result,
			Script:    script,
			Ancestors: ancestors,
			Tasks:     []int{out.id},
		}
		if out.mutant != nil {
			b.Rules = out.mutant.Rules
		} else {
			b.Mode = out.fused.Mode
		}
		res.Bugs = append(res.Bugs, b)
		if aw != nil {
			aw.write(manifestFor(cfg, out, string(kind), primary), ancestors, script, out.id)
		}
	}

	switch {
	case run.Crashed:
		record(bugdb.Crash)
	case run.Result == solver.ResTimeout:
		// Fuel exhaustion. With a performance defect fired this is the
		// paper's performance-bug observation; otherwise the instance
		// was genuinely hard and only the timeout is counted. This case
		// must precede the oracle-mismatch check: a timeout carries no
		// verdict, so it can never be a soundness observation.
		res.Timeouts++
		if _, ok := primaryDefect(run.DefectsFired, bugdb.Performance); ok {
			record(bugdb.Performance)
		}
	case run.Result == solver.ResUnknown:
		res.Unknowns++
		// A performance defect firing on the way to unknown is still
		// the paper's "performance bug" observation; this path is taken
		// when the campaign runs with the fuel meter disabled, where
		// draining is a no-op and no timeout verdict exists.
		if _, ok := primaryDefect(run.DefectsFired, bugdb.Performance); ok {
			record(bugdb.Performance)
		}
	case verdictContradicts(run.Result, oracle):
		record(bugdb.Soundness)
	case run.Result == solver.ResSat && !cfg.DisableModelCheck:
		// The verdict agrees with the oracle, but the reported witness
		// must still satisfy the formula: this is the only oracle that
		// can see post-certification model corruption.
		if ok, reason := ValidateModel(script, run.Model); !ok {
			out.run.Reason = reason // surfaced in the reproducer manifest
			record(bugdb.InvalidModel)
		}
	}
}

// verdictContradicts reports whether a SUT verdict refutes the ground
// truth. Only a definite verdict on a definite oracle can contradict:
// an unknown-status test (wild mutation) has nothing to refute, so it
// abstains rather than being treated as implicitly unsat. The earlier
// predicate `(res == ResSat) != (oracle == StatusSat)` collapsed
// StatusUnknown into the unsat arm and charged every sat verdict on an
// unknown-status input as a soundness bug.
func verdictContradicts(res solver.Result, oracle core.Status) bool {
	switch oracle {
	case core.StatusSat:
		return res == solver.ResUnsat
	case core.StatusUnsat:
		return res == solver.ResSat
	default:
		return false
	}
}

// primaryDefect picks the fired defect matching the observed bug kind
// (triaging the report to its root cause, like the paper's interaction
// with the solver developers).
func primaryDefect(fired []solver.Defect, kind bugdb.BugType) (solver.Defect, bool) {
	var fallback solver.Defect
	haveFallback := false
	for _, d := range fired {
		e, ok := bugdb.Find(d)
		if !ok {
			continue
		}
		if e.Type == kind {
			return d, true
		}
		// Model-corruption sites run after the verdict is fixed, so they
		// can never root an observation of any other kind.
		if !haveFallback && e.Type != bugdb.InvalidModel {
			fallback, haveFallback = d, true
		}
	}
	// A soundness observation can be rooted in any wrong-transformation
	// defect even if catalogued under another logic, and so can an
	// invalid model: the solver certifies its model against the
	// *rewritten* asserts, so a wrong rewrite yields a witness of the
	// wrong formula. Crashes must match a crash site.
	if (kind == bugdb.Soundness || kind == bugdb.InvalidModel) && haveFallback {
		return fallback, true
	}
	return "", false
}

func sortBugs(bugs []Bug) {
	sort.Slice(bugs, func(i, j int) bool { return bugs[i].Defect < bugs[j].Defect })
}

// pool holds per-status seed lists.
type seedPool struct {
	sat   []*core.Seed
	unsat []*core.Seed
}

// buildCorpus generates the shared seed corpus, one pool per logic,
// exactly once per campaign. Mirroring the paper's setup — the SMT-LIB
// benchmarks "are unlikely to trigger bugs in Z3 and CVC4 since they
// have already been run on them" — seeds on which the solver under test
// misbehaves (wrong result or crash) are discarded and regenerated, so
// every finding requires combining seeds.
//
// Vetting (the expensive part: up to 10 solver runs per slot) is spread
// across the worker pool. Each slot owns a generator stream keyed by
// (campaign seed, logic, slot, status), so the resulting corpus does
// not depend on which worker vets which slot.
func buildCorpus(cfg Campaign, suts []*solver.Solver, trackers []*telemetry.Tracker, rec *recorder) ([]*seedPool, error) {
	pools := make([]*seedPool, len(cfg.Logics))
	for i := range pools {
		pools[i] = &seedPool{
			sat:   make([]*core.Seed, cfg.SeedPool),
			unsat: make([]*core.Seed, cfg.SeedPool),
		}
	}

	// Job j addresses one slot: (logic, slot index, sat/unsat).
	perLogic := cfg.SeedPool * 2
	total := len(cfg.Logics) * perLogic
	jobs := make(chan int, len(suts))
	errs := make([]error, len(suts))
	// Per-job vetting telemetry, merged into the campaign tracker in
	// job order after the barrier. Each entry is written by exactly one
	// job (like the pool slots), so no locking is needed and the merge
	// order is independent of scheduling.
	tries := make([]int, total)
	deltas := make([]telemetry.Snapshot, total)
	var wg sync.WaitGroup
	for w := range suts {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sut := suts[w]
			var tr *telemetry.Tracker
			if trackers != nil {
				tr = trackers[w]
			}
			for j := range jobs {
				logicIdx := j / perLogic
				rest := j % perLogic
				slot := rest >> 1
				status := core.StatusSat
				if rest&1 == 1 {
					status = core.StatusUnsat
				}
				// Fresh warm state per slot: a slot's vetting telemetry
				// must depend on the slot alone, not on which worker
				// happened to vet (or solve) something else first.
				sut.ResetWarm()
				before := tr.Snapshot()
				s, n, err := vetSlot(cfg, cfg.Logics[logicIdx], slot, status, sut)
				tries[j] = n
				deltas[j] = tr.Snapshot().Diff(before)
				if err != nil {
					if errs[w] == nil {
						errs[w] = err
					}
					continue
				}
				// Each slot is written by exactly one job: no locking.
				if status == core.StatusSat {
					pools[logicIdx].sat[slot] = s
				} else {
					pools[logicIdx].unsat[slot] = s
				}
			}
		}(w)
	}
	for j := 0; j < total; j++ {
		jobs <- j
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if rec != nil {
		rec.vetted(tries, deltas)
	}
	return pools, nil
}

// vetSlot generates one vetted seed from the slot's own stream. The
// second result is the number of generation attempts consumed.
func vetSlot(cfg Campaign, logic gen.Logic, slot int, status core.Status, sut *solver.Solver) (*core.Seed, int, error) {
	g, err := gen.New(logic, poolSeed(cfg.Seed, logic, slot, status))
	if err != nil {
		return nil, 0, err
	}
	for try := 0; try < 10; try++ {
		s := g.Generate(status)
		if sut == nil {
			return s, try + 1, nil
		}
		run := RunSolver(sut, s.Script)
		// Discard seeds the SUT already misbehaves on — crashes, wrong
		// verdicts, fuel exhaustion, or faults in our own solver — so
		// every campaign finding requires combining seeds.
		if run.Crashed || run.InternalFault || run.Result == solver.ResTimeout {
			continue
		}
		if run.Result != solver.ResUnknown &&
			(run.Result == solver.ResSat) != (status == core.StatusSat) {
			continue
		}
		return s, try + 1, nil
	}
	return g.Generate(status), 11, nil
}

func (p *seedPool) pick(status core.Status, rng *rand.Rand) *core.Seed {
	if status == core.StatusSat {
		return p.sat[rng.Intn(len(p.sat))]
	}
	return p.unsat[rng.Intn(len(p.unsat))]
}
