package harness

import (
	"bytes"
	"testing"

	"repro/internal/bugdb"
	"repro/internal/gen"
	"repro/internal/telemetry"
)

// TestThreadsClampNegative: a negative Threads value used to reach
// make([]*solver.Solver, cfg.Threads) and panic; it must clamp to 1
// like zero does.
func TestThreadsClampNegative(t *testing.T) {
	for _, threads := range []int{-1, -8, 0} {
		res, err := Run(Campaign{
			SUT:        bugdb.Z3Sim,
			Logics:     []gen.Logic{gen.QFLIA},
			Iterations: 3,
			SeedPool:   2,
			Seed:       5,
			Threads:    threads,
		})
		if err != nil {
			t.Fatalf("Threads=%d: %v", threads, err)
		}
		if res.Tests+res.InvalidInputs == 0 {
			t.Errorf("Threads=%d ran nothing", threads)
		}
	}
}

// runTraced runs one small campaign with telemetry and trace armed.
func runTraced(t *testing.T, threads int) (*Result, telemetry.Snapshot, []TraceRecord, []byte) {
	t.Helper()
	tr := telemetry.NewTracker()
	var buf bytes.Buffer
	res, err := Run(Campaign{
		SUT:        bugdb.Z3Sim,
		Logics:     []gen.Logic{gen.QFLIA, gen.QFS},
		Iterations: shortIters(40),
		SeedPool:   6,
		Seed:       99,
		Threads:    threads,
		Mode:       ModeBoth,
		Telemetry:  tr,
		Trace:      &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), buf.Bytes()...)
	recs, err := DecodeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return res, tr.Snapshot(), recs, raw
}

// TestFunnelMatchesResultCounts: the funnel counters are computed by
// differencing the Result before and after each classification, so
// their totals must equal the Result's counts exactly — at any thread
// count.
func TestFunnelMatchesResultCounts(t *testing.T) {
	for _, threads := range []int{1, 4} {
		res, snap, recs, _ := runTraced(t, threads)
		if res.Tests == 0 {
			t.Fatal("campaign ran no tests")
		}
		checks := []struct {
			name string
			want int
		}{
			{"yy_funnel_solved_total", res.Tests},
			{"yy_funnel_unknowns_total", res.Unknowns},
			{"yy_funnel_timeouts_total", res.Timeouts},
			{"yy_funnel_quarantined_total", res.Quarantined},
			{"yy_funnel_invalid_total", res.InvalidInputs},
			{"yy_funnel_duplicates_total", res.Duplicates},
			{"yy_funnel_findings_total", len(res.Bugs)},
			{"yy_funnel_reference_disagreements_total", res.ReferenceDisagreements},
		}
		for _, c := range checks {
			if got := snap.Counter(c.name); got != int64(c.want) {
				t.Errorf("threads=%d %s = %d, want %d", threads, c.name, got, c.want)
			}
		}
		// Funnel conservation: every task ends in exactly one of the
		// derived/invalid/skipped stages, and every derived test is
		// either solved or quarantined.
		total := int64(len(recs))
		derived := snap.Counter("yy_funnel_derived_total")
		if derived+snap.Counter("yy_funnel_invalid_total")+snap.Counter("yy_funnel_skipped_total") != total {
			t.Errorf("threads=%d funnel stages do not partition %d tasks: %+v", threads, total, snap.Counters)
		}
		if derived != snap.Counter("yy_funnel_solved_total")+snap.Counter("yy_funnel_quarantined_total") {
			t.Errorf("threads=%d derived ≠ solved+quarantined: %+v", threads, snap.Counters)
		}
		// The engine counters must have registered real work.
		if snap.Counter("yy_solves_total") == 0 || snap.Counter(
			"yy_solve_fuel_spent_total") == 0 {
			t.Errorf("threads=%d no solver telemetry recorded: %+v", threads, snap.Counters)
		}
	}
}

// TestTraceRoundTrip: the JSONL trace decodes back into one record per
// task, in task order, carrying the campaign's RNG coordinates, and the
// emitted bytes are identical for 1 and 4 threads.
func TestTraceRoundTrip(t *testing.T) {
	res1, _, recs1, raw1 := runTraced(t, 1)
	_, _, _, raw4 := runTraced(t, 4)

	if !bytes.Equal(raw1, raw4) {
		t.Error("trace bytes differ between 1 and 4 threads")
	}
	wantTasks := 2 * shortIters(40) // two logics
	if len(recs1) != wantTasks {
		t.Fatalf("trace has %d records, want %d", len(recs1), wantTasks)
	}
	tested, findings := 0, 0
	for i, rec := range recs1 {
		if rec.Task != i {
			t.Fatalf("record %d out of order: task %d", i, rec.Task)
		}
		if rec.CampaignSeed != 99 || rec.SUT != string(bugdb.Z3Sim) {
			t.Errorf("record %d carries wrong campaign coordinates: %+v", i, rec)
		}
		if rec.Iteration != i%shortIters(40) {
			t.Errorf("record %d iteration = %d", i, rec.Iteration)
		}
		switch rec.Status {
		case "tested":
			tested++
			if rec.Observed == "" || rec.Oracle == "" {
				t.Errorf("tested record %d missing verdicts: %+v", i, rec)
			}
		case "invalid", "skipped", "quarantined":
		default:
			t.Errorf("record %d has unknown status %q", i, rec.Status)
		}
		if rec.Finding {
			findings++
		}
	}
	if tested != res1.Tests {
		t.Errorf("%d tested records, result counts %d tests", tested, res1.Tests)
	}
	if findings != len(res1.Bugs) {
		t.Errorf("%d finding records, result has %d bugs", findings, len(res1.Bugs))
	}
}
