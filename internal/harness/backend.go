package harness

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/bugdb"
	"repro/internal/core"
	"repro/internal/smtlib"
	"repro/internal/solver"
	"repro/internal/telemetry"
)

// Backend cross-check funnel counters. These aggregate over every
// configured backend (per-name registration would collide across
// campaigns — counter names are global); the per-backend breakdown
// lives in Result.Backends. All increments happen in the in-order
// classification stage, so totals for hermetic backends are
// bit-identical for any thread count.
var (
	cbChecks   = telemetry.NewCounter("yy_backend_checks_total", "cross-check backend invocations performed")
	cbSkipped  = telemetry.NewCounter("yy_backend_skipped_total", "cross-checks skipped because the backend was quarantined")
	cbTimeouts = telemetry.NewCounter("yy_backend_timeouts_total", "backend checks cut off by the wall-clock deadline or fuel meter")
	cbCrashes  = telemetry.NewCounter("yy_backend_crashes_total", "backend checks that died (nonzero exit, signal, spawn failure)")
	cbGarbled  = telemetry.NewCounter("yy_backend_garbled_total", "backend checks that completed with no parseable verdict")
	cbFaults   = telemetry.NewCounter("yy_backend_faults_total", "in-process backend adapters that panicked (our bug, not the solver's)")
	cbRetries  = telemetry.NewCounter("yy_backend_retries_total", "transient-failure retries consumed by backend checks")
	cbDisagree = telemetry.NewCounter("yy_backend_disagreements_total", "backend verdicts contradicting the known-status oracle")
	cbFindings = telemetry.NewCounter("yy_backend_findings_total", "deduplicated backend findings recorded")
)

// SimBackendSpec wraps a simulated solver release as a hermetic
// cross-check backend: deterministic, in-process, preserving the
// campaign's bit-identical thread-count invariance (its only
// "failures" are deterministic fuel timeouts, so it carries no
// circuit breaker). fuel follows Campaign.Fuel semantics: 0 default,
// >0 override, <0 unlimited. inject adds defects beyond the release's
// catalogued set — consensus tests use it to script a dissenter.
func SimBackendSpec(s bugdb.SUT, release string, fuel int64, inject ...solver.Defect) backend.Spec {
	if release == "" {
		release = "trunk"
	}
	name := string(s) + "@" + release
	return backend.Spec{
		Name:     name,
		Hermetic: true,
		New: func() (backend.Backend, error) {
			defects, err := bugdb.DefectsIn(s, release)
			if err != nil {
				return nil, err
			}
			for _, d := range inject {
				defects[d] = true
			}
			lim := solver.DefaultLimits()
			if fuel > 0 {
				lim.Fuel = fuel
			} else if fuel < 0 {
				lim.Fuel = 0
			}
			return backend.NewSim(name, solver.New(solver.Config{Defects: defects, Limits: lim})), nil
		},
	}
}

// BackendReport is one backend's per-campaign health summary: how many
// checks ran, how they classified, and whether the circuit breaker
// quarantined the backend (degraded mode).
type BackendReport struct {
	Name     string
	Hermetic bool
	// Checks counts performed invocations; Skipped counts tasks whose
	// check was suppressed by an open circuit breaker.
	Checks  int
	Skipped int
	// Verdict tallies over the performed checks.
	Sat      int
	Unsat    int
	Unknowns int
	Timeouts int
	Crashes  int
	Garbled  int
	Faults   int
	// Retries sums the transient-failure retries consumed.
	Retries int
	// Disagreements counts definite verdicts contradicting the
	// known-status oracle (including re-triggers of deduplicated
	// findings).
	Disagreements int
	// Outvoted counts this backend's definite verdicts outvoted by the
	// majority policy's consensus; Violations counts its metamorphic
	// pair violations. Both include re-triggers of deduplicated
	// findings. omitempty keeps known-policy checkpoints, fingerprints,
	// and the pre-consensus fuzz corpus byte-identical.
	Outvoted   int `json:"Outvoted,omitempty"`
	Violations int `json:"Violations,omitempty"`
	// Quarantined reports the breaker state at campaign end.
	Quarantined bool
}

// BackendFinding is one deduplicated cross-check observation: a
// disagreement with the known-status oracle, or a contained failure of
// the backend itself (timeout, crash, garbled output). Backend findings
// are reported separately from Result.Bugs — they implicate the
// backend solver (or the cross-check harness), not a catalogued defect
// of the solver under test.
type BackendFinding struct {
	// Backend names the implicated voter; the pseudo-name "sut" marks a
	// consensus finding attributed to the solver under test itself.
	Backend string
	Kind    bugdb.BugType // Disagreement, Crash, Garbled, Performance (timeout), MajorityDisagreement, or MetamorphicViolation
	Logic   string
	// Oracle is the reference the observation contradicts: the known
	// status for Disagreement, the consensus verdict for
	// MajorityDisagreement, the pair relation for MetamorphicViolation.
	// Observed is the backend's classified verdict (for metamorphic
	// findings, the "orig/variant" verdict pair).
	Oracle   string
	Observed string
	Reason   string
	// Defect names the catalogued defect fired on a consensus finding
	// attributed to the SUT ("" otherwise). omitempty keeps the
	// pre-consensus fuzz corpus decodable unchanged.
	Defect string `json:"Defect,omitempty"`
	// ExitCode and Stderr carry the process post-mortem for external
	// backends (-1/"" for in-process adapters).
	ExitCode int
	Stderr   string
	Retries  int
	Task     int // global task index, for trace correlation
}

// bkKey dedups backend findings: one bundle per (backend, kind,
// observed-vs-oracle shape); re-triggers only bump the report tallies.
type bkKey struct {
	backendIdx int
	kind       bugdb.BugType
	oracle     string
	observed   string
}

// backendTriage is the in-order classification state for backend
// cross-checks (created once per Run when backends are configured).
type backendTriage struct {
	seen map[bkKey]bool
}

// runBackends performs the cross-checks for one task. Called on the
// worker, off the classification path, so external solver latency
// overlaps across workers like SUT solves do.
func runBackends(bks []backend.Backend, sc *smtlib.Script) []backend.Output {
	if len(bks) == 0 {
		return nil
	}
	outs := make([]backend.Output, len(bks))
	for i, b := range bks {
		outs[i] = b.Check(sc)
	}
	return outs
}

// classifyBackends folds one task's backend outputs into the result:
// report tallies, deduplicated findings, and reproducer bundles. It
// runs in the in-order classification stage, so finding order and
// artifact contents are deterministic for hermetic backends.
func classifyBackends(res *Result, cfg Campaign, aw *artifactWriter, bt *backendTriage, out taskOutcome) {
	oracle := out.oracle()
	logic := cfg.Logics[out.id/cfg.Iterations]
	for i, o := range out.backendRuns {
		rep := &res.Backends[i]
		kind, skipped := tallyBackend(rep, o)
		if skipped {
			continue
		}
		if o.Verdict.Definite() && backendContradicts(o.Verdict, oracle) {
			rep.Disagreements++
			kind = bugdb.Disagreement
		}
		if kind == "" {
			continue
		}
		key := bkKey{backendIdx: i, kind: kind, observed: o.Verdict.String()}
		if kind == bugdb.Disagreement {
			// Only disagreements dedup per oracle: sat-claimed-unsat and
			// unsat-claimed-sat are distinct observations, while a hang or
			// garble is the same failure whatever the expected status.
			key.oracle = oracle.String()
		}
		if bt.seen[key] {
			continue
		}
		bt.seen[key] = true
		f := BackendFinding{
			Backend:  cfg.Backends[i].Name,
			Kind:     kind,
			Logic:    string(logic),
			Oracle:   oracle.String(),
			Observed: o.Verdict.String(),
			Reason:   o.Reason,
			ExitCode: o.ExitCode,
			Stderr:   o.Stderr,
			Retries:  o.Retries,
			Task:     out.id,
		}
		res.BackendFindings = append(res.BackendFindings, f)
		if aw != nil {
			m := manifestFor(cfg, out, "backend-"+string(kind), "")
			m.Backend = f.Backend
			m.BackendArgv = cfg.Backends[i].Argv
			m.BackendExit = o.ExitCode
			m.BackendStderr = o.Stderr
			m.BackendRetries = o.Retries
			m.Observed = f.Observed
			m.Reason = f.Reason
			aw.write(m, out.ancestors, out.testScript(), out.id)
		}
	}
	// Metamorphic-variant solves consume the same backend budget as
	// primary checks, so their verdicts are tallied into the reports.
	// They NEVER produce findings here: a variant script has no known
	// status for the differential oracle to check against — violations
	// of the pair relation are classifyConsensus's business.
	for i, o := range out.variantBackends {
		tallyBackend(&res.Backends[i], o)
	}
}

// tallyBackend folds one backend output into its report tallies and
// returns the contained-failure kind it classifies as ("" for parsed
// verdicts) plus whether the check was suppressed by an open breaker.
func tallyBackend(rep *BackendReport, o backend.Output) (kind bugdb.BugType, skipped bool) {
	if o.Verdict == backend.Quarantined {
		rep.Skipped++
		return "", true
	}
	rep.Checks++
	rep.Retries += o.Retries
	switch o.Verdict {
	case backend.Sat:
		rep.Sat++
	case backend.Unsat:
		rep.Unsat++
	case backend.Unknown:
		rep.Unknowns++
	case backend.Timeout:
		rep.Timeouts++
		kind = bugdb.Performance
	case backend.Crash:
		rep.Crashes++
		kind = bugdb.Crash
	case backend.Garbled:
		rep.Garbled++
		kind = bugdb.Garbled
	case backend.Fault:
		rep.Faults++ // our adapter's bug: tallied, never a finding
	}
	return kind, false
}

// backendContradicts reports whether a backend verdict refutes the
// ground truth. Mirrors verdictContradicts: only a definite verdict on
// a definite oracle contradicts — an unknown-status test abstains. The
// earlier predicate `(v == Sat) != (oracle == StatusSat)` collapsed
// StatusUnknown into the unsat arm, charging every sat backend verdict
// on an unknown-status input as a disagreement.
func backendContradicts(v backend.Verdict, oracle core.Status) bool {
	switch oracle {
	case core.StatusSat:
		return v == backend.Unsat
	case core.StatusUnsat:
		return v == backend.Sat
	default:
		return false
	}
}

// finishBackends fills the end-of-campaign breaker states into the
// per-backend reports.
func finishBackends(res *Result, cfg Campaign) {
	for i := range res.Backends {
		res.Backends[i].Quarantined = cfg.Backends[i].Health.Quarantined()
	}
}

// Degraded reports whether any backend ended the campaign quarantined:
// the campaign completed, but with that backend's cross-checks
// suppressed from the first breaker opening onward.
func (r *Result) Degraded() bool {
	for _, rep := range r.Backends {
		if rep.Quarantined {
			return true
		}
	}
	return false
}

// validateBackends rejects configurations the classification stage
// cannot disambiguate.
func validateBackends(specs []backend.Spec) error {
	names := map[string]bool{}
	for _, s := range specs {
		if s.Name == "" {
			return fmt.Errorf("harness: backend with empty name")
		}
		if s.Name == "sut" {
			// Reserved: the consensus policies use "sut" as the
			// pseudo-voter name for the solver under test.
			return fmt.Errorf("harness: backend name %q is reserved", s.Name)
		}
		if names[s.Name] {
			return fmt.Errorf("harness: duplicate backend name %q", s.Name)
		}
		names[s.Name] = true
		if s.New == nil {
			return fmt.Errorf("harness: backend %q has no constructor", s.Name)
		}
	}
	return nil
}
