package harness

import (
	"strings"
	"testing"

	"repro/internal/bugdb"
	"repro/internal/gen"
)

func TestExperimentFig7(t *testing.T) {
	rows, err := ExperimentFig7(400)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Proportions mirror the paper: QF_SLIA SAT is the largest corpus,
	// NRA has no SAT seeds.
	byName := map[string]Fig7Row{}
	for _, r := range rows {
		byName[r.Benchmark] = r
	}
	if byName["NRA"].Sat != 0 {
		t.Error("NRA should have no sat seeds (paper Figure 7)")
	}
	if byName["QF_SLIA"].Sat < byName["QF_S"].Sat {
		t.Error("QF_SLIA sat corpus should dominate QF_S")
	}
	out := RenderFig7(rows)
	if !strings.Contains(out, "Total") {
		t.Error("render missing total row")
	}
}

func TestExperimentFig9And10(t *testing.T) {
	rows := ExperimentFig9(bugdb.Z3Sim)
	if len(rows) != 5 || rows[0].Year != 2015 || rows[len(rows)-1].Year != 2019 {
		t.Fatalf("fig9 rows = %+v", rows)
	}
	if rows[len(rows)-1].Count != 63 {
		t.Errorf("2019 = %d want 63", rows[len(rows)-1].Count)
	}
	// Fig10 with a synthetic result: counts must be monotone toward
	// trunk because defects affect suffixes of the release train.
	res := &Result{}
	for _, e := range bugdb.ForSUT(bugdb.Z3Sim) {
		if e.Type == bugdb.Soundness {
			res.Bugs = append(res.Bugs, Bug{Defect: e.ID, Kind: bugdb.Soundness, Logic: gen.Logic(e.Logic)})
		}
	}
	f10 := ExperimentFig10(bugdb.Z3Sim, res)
	prev := -1
	for _, r := range f10 {
		if r.Count < prev {
			t.Errorf("fig10 not monotone: %+v", f10)
		}
		prev = r.Count
	}
	if f10[len(f10)-1].Release != "trunk" || f10[len(f10)-1].Count == 0 {
		t.Errorf("trunk row wrong: %+v", f10[len(f10)-1])
	}
	if f10[0].Count == 0 {
		t.Error("oldest release should be affected by at least one long-latent defect")
	}
}

func TestExperimentFig11CoverageMonotone(t *testing.T) {
	rows, err := ExperimentFig11(CoverageBudget{
		Seeds: 6, Fused: 10, Seed: 3,
		Logics: []gen.Logic{gen.QFNRA, gen.QFS},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// YinYang coverage can never be below the benchmark arm: the
		// tracker accumulates.
		for _, pair := range [][2]CoverageCell{
			{r.Z3Bench, r.Z3YinYang}, {r.C4Bench, r.C4YinYang},
		} {
			if pair[1].Line < pair[0].Line || pair[1].Function < pair[0].Function || pair[1].Branch < pair[0].Branch {
				t.Errorf("coverage decreased: %+v", r)
			}
		}
	}
	if out := RenderFig11(rows); !strings.Contains(out, "QF_NRA") {
		t.Error("render missing logic")
	}
}

func TestExperimentFig12Ordering(t *testing.T) {
	rows, err := ExperimentFig12(CoverageBudget{
		Seeds: 6, Fused: 12, Seed: 5,
		Logics: []gen.Logic{gen.QFNRA},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.YinYang.Branch < r.Benchmark.Branch {
			t.Errorf("%s: YinYang branch coverage below benchmark", r.SUT)
		}
		if r.ConcatFuzz.Branch < r.Benchmark.Branch {
			t.Errorf("%s: ConcatFuzz branch coverage below benchmark", r.SUT)
		}
	}
	if out := RenderFig12(rows); !strings.Contains(out, "YinYang") {
		t.Error("render incomplete")
	}
}

func TestStatusAndTypeTabulation(t *testing.T) {
	res := &Result{
		Bugs: []Bug{
			{Defect: "rw-str-to-int-empty", Kind: bugdb.Soundness, Logic: gen.QFS},
			{Defect: "cr-self-division", Kind: bugdb.Crash, Logic: gen.QFNRA},
		},
		Duplicates: 3,
	}
	st := StatusOf(res)
	if st.Confirmed != 2 || st.Duplicate != 3 || st.Reported != 5 {
		t.Errorf("status = %+v", st)
	}
	ty := TypesOf(res)
	if ty[bugdb.Soundness] != 1 || ty[bugdb.Crash] != 1 {
		t.Errorf("types = %+v", ty)
	}
	lg := LogicsOf(res)
	if lg["QF_S"] != 1 || lg["QF_NRA"] != 1 {
		t.Errorf("logics = %+v", lg)
	}
}

func TestExperimentRQ4Empty(t *testing.T) {
	out, err := ExperimentRQ4(bugdb.Z3Sim, nil, 3, 1)
	if err != nil || out.Bugs != 0 || out.Retriggered != 0 {
		t.Errorf("rq4 empty: %+v %v", out, err)
	}
}
