package harness

import (
	"testing"

	"repro/internal/bugdb"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/solver"
)

func defectList(r *Result) []solver.Defect {
	var out []solver.Defect
	for _, b := range r.Bugs {
		out = append(out, b.Defect)
	}
	return out
}

// TestModelValidationOracleFindsInjected injects the model-corruption
// defect family: sites that run after the solver has certified its
// model, so the verdict is correct, the internal certificate is
// correct, and only the harness-side model-validation oracle can see
// the damage. The same campaign with the oracle disabled must find
// nothing — demonstrating these defects are invisible to every
// verdict-based check.
func TestModelValidationOracleFindsInjected(t *testing.T) {
	injected := []solver.Defect{
		solver.DefModelStaleSimplex,
		solver.DefModelStrLenTruncate,
	}
	base := Campaign{
		SUT:           bugdb.CVC4Sim,
		Release:       "1.5",
		Logics:        []gen.Logic{gen.QFLIA, gen.QFS},
		Iterations:    shortIters(60),
		SeedPool:      8,
		Seed:          19,
		Threads:       2,
		InjectDefects: injected,
	}
	res, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReferenceDisagreements != 0 {
		t.Fatalf("reference disagreements: %d", res.ReferenceDisagreements)
	}
	for _, d := range injected {
		b, ok := res.BugByDefect(d)
		if !ok {
			t.Errorf("model-validation oracle missed injected %s (found %v)", d, defectList(res))
			continue
		}
		if b.Kind != bugdb.InvalidModel {
			t.Errorf("%s classified as %s, want %s", d, b.Kind, bugdb.InvalidModel)
		}
		if b.Observed != solver.ResSat || b.Oracle != core.StatusSat {
			t.Errorf("%s: invalid-model finding with observed=%v oracle=%v, want agreeing sat", d, b.Observed, b.Oracle)
		}
	}

	// The control arm: identical campaign, oracle off. The md sites
	// still fire on every sat model, but nothing may be reported.
	off := base
	off.DisableModelCheck = true
	ctl, err := Run(off)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range injected {
		if _, ok := ctl.BugByDefect(d); ok {
			t.Errorf("%s found without the model-validation oracle — it is not a model-only defect", d)
		}
	}
	for _, b := range ctl.Bugs {
		if b.Kind == bugdb.InvalidModel {
			t.Errorf("invalid-model finding %s with the oracle disabled", b.Defect)
		}
	}
}

// TestReferenceModelValidationClean is the negative oracle: every sat
// model the clean reference solver produces over the full generator
// corpus must validate against its script, and a campaign against a
// defect-free release/logic slice must yield zero invalid-model
// findings. A failure here means either the reference solver's model
// construction or the evaluator disagrees with itself — our bug, not
// a finding.
func TestReferenceModelValidationClean(t *testing.T) {
	ref := solver.NewReference()
	perLogic := 12
	if testing.Short() {
		perLogic = 4
	}
	validated := 0
	for _, logic := range gen.AllLogics {
		for i := 0; i < perLogic; i++ {
			g, err := gen.New(logic, int64(500+i))
			if err != nil {
				t.Fatal(err)
			}
			for _, status := range []core.Status{core.StatusSat, core.StatusUnsat} {
				s := g.Generate(status)
				run := RunSolver(ref, s.Script)
				if run.InternalFault {
					t.Fatalf("%s seed %d: internal fault: %s", logic, i, run.FaultMsg)
				}
				if run.Result != solver.ResSat {
					continue
				}
				if ok, reason := ValidateModel(s.Script, run.Model); !ok {
					t.Errorf("%s seed %d: reference model invalid: %s\n%s",
						logic, i, reason, s.Script.Text())
				}
				validated++
			}
		}
	}
	if validated == 0 {
		t.Fatal("no sat model was validated across the corpus")
	}

	// Through the campaign loop too: armed oracle, defect-free slice.
	res, err := Run(Campaign{
		SUT:        bugdb.CVC4Sim,
		Release:    "1.5",
		Logics:     []gen.Logic{gen.LRA},
		Iterations: shortIters(60),
		SeedPool:   8,
		Seed:       23,
		Threads:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReferenceDisagreements != 0 {
		t.Fatalf("reference disagreements with model oracle armed: %d", res.ReferenceDisagreements)
	}
	for _, b := range res.Bugs {
		if b.Kind == bugdb.InvalidModel {
			t.Errorf("invalid-model finding %s on a defect-free slice", b.Defect)
		}
	}
}

// TestMutationCampaignFindsGuardCollapse: rw-le-guard-collapse drops a
// distinct guard sitting next to a non-strict bound — a conjunction
// shape that plain fusion never builds but the mutation engine's
// lt-guard/gt-guard equivalences do (x² < 0 becomes x² ≤ 0 ∧ x² ≠ 0,
// and collapsing the guard flips the verdict to sat). The mutation
// campaign must reproduce this catalogued defect; the fusion campaign
// on the same coordinates must miss it.
func TestMutationCampaignFindsGuardCollapse(t *testing.T) {
	base := Campaign{
		SUT:        bugdb.Z3Sim,
		Logics:     []gen.Logic{gen.QFNRA},
		Iterations: shortIters(150),
		SeedPool:   8,
		Seed:       31,
		Threads:    2,
		Mode:       ModeMutate,
	}
	res, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReferenceDisagreements != 0 {
		t.Fatalf("mutation campaign reference disagreements: %d", res.ReferenceDisagreements)
	}
	b, ok := res.BugByDefect(solver.DefLeGuardCollapse)
	if !ok {
		t.Fatalf("mutation campaign missed %s (found %v, tests=%d)",
			solver.DefLeGuardCollapse, defectList(res), res.Tests)
	}
	if b.Kind != bugdb.Soundness {
		t.Errorf("guard collapse classified as %s, want %s", b.Kind, bugdb.Soundness)
	}
	if len(b.Rules) == 0 {
		t.Error("mutation finding carries no applied rules")
	}

	fusion := base
	fusion.Mode = ModeFusion
	ctl, err := Run(fusion)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ctl.BugByDefect(solver.DefLeGuardCollapse); ok {
		t.Errorf("fusion campaign unexpectedly built the guard-collapse shape")
	}
}
