package service

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/harness"
	"repro/internal/telemetry"
)

// API surface (all campaign payloads are JSON):
//
//	POST /api/v1/campaigns                   submit   → 201 {id}
//	GET  /api/v1/campaigns                   list     → 200 [info]
//	GET  /api/v1/campaigns/{id}              inspect  → 200 info
//	POST /api/v1/campaigns/{id}/pause        pause    → 202 info (409 unless running)
//	POST /api/v1/campaigns/{id}/resume       resume   → 202 info (409 unless paused)
//	GET  /api/v1/campaigns/{id}/checkpoint   download → 200 sealed checkpoint document
//	GET  /api/v1/campaigns/{id}/envelope     download → 200 sealed envelope document
//	GET  /api/v1/campaigns/{id}/trace        stream   → 200 JSONL (the records so far)
//	GET  /api/v1/campaigns/{id}/metrics      scrape   → 200 Prometheus text (this job)
//	GET  /metrics                            scrape   → 200 Prometheus text (all jobs)
//
// Errors are {"error": "..."} with 400 (malformed request), 404
// (unknown job / artifact not available), 409 (lifecycle conflict), or
// 405 via the mux for wrong methods.

// Handler returns the server's HTTP interface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/campaigns", s.handleList)
	mux.HandleFunc("GET /api/v1/campaigns/{id}", s.withJob(s.handleInspect))
	mux.HandleFunc("POST /api/v1/campaigns/{id}/pause", s.withJob(s.handlePause))
	mux.HandleFunc("POST /api/v1/campaigns/{id}/resume", s.withJob(s.handleResume))
	mux.HandleFunc("GET /api/v1/campaigns/{id}/checkpoint", s.withJob(s.handleCheckpoint))
	mux.HandleFunc("GET /api/v1/campaigns/{id}/envelope", s.withJob(s.handleEnvelope))
	mux.HandleFunc("GET /api/v1/campaigns/{id}/trace", s.withJob(s.handleTrace))
	mux.HandleFunc("GET /api/v1/campaigns/{id}/metrics", s.withJob(s.handleJobMetrics))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// Info is a job's inspect payload.
type Info struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Done/Total are the classification frontier over this campaign's
	// (shard's) task allotment.
	Done    int     `json:"done"`
	Total   int     `json:"total"`
	Summary Summary `json:"summary"`
	Error   string  `json:"error,omitempty"`
	// Submitted/Updated are RFC 3339 operator timestamps.
	Submitted string                 `json:"submitted"`
	Updated   string                 `json:"updated"`
	Config    harness.CampaignConfig `json:"config"`
}

func (j *Job) info() Info {
	j.mu.Lock()
	defer j.mu.Unlock()
	total := j.total
	if total == 0 {
		// Before the first Progress callback, derive the allotment from
		// the config so clients see a stable denominator.
		total = j.config.ShardTaskCount()
	}
	return Info{
		ID:        j.id,
		State:     j.state,
		Done:      j.done,
		Total:     total,
		Summary:   j.summary,
		Error:     j.errMsg,
		Submitted: j.submitted.UTC().Format("2006-01-02T15:04:05Z"),
		Updated:   j.updated.UTC().Format("2006-01-02T15:04:05Z"),
		Config:    j.config,
	}
}

type submitRequest struct {
	Config harness.CampaignConfig `json:"config"`
	// Threads overrides the config's worker count (results are
	// invariant to it).
	Threads int `json:"threads,omitempty"`
	// StopAfter, when positive, pauses the campaign after that many
	// classified tasks.
	StopAfter int `json:"stop_after,omitempty"`
}

type resumeRequest struct {
	Threads   int `json:"threads,omitempty"`
	StopAfter int `json:"stop_after,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// decodeBody strictly parses a JSON request body; an empty body decodes
// the zero value when allowEmpty is set (pause/resume take no options).
func decodeBody(r *http.Request, v any, allowEmpty bool) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 10<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if allowEmpty && err.Error() == "EOF" {
			return nil
		}
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON body")
	}
	return nil
}

func (s *Server) withJob(h func(http.ResponseWriter, *http.Request, *Job)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		j := s.job(id)
		if j == nil {
			writeError(w, http.StatusNotFound, "no campaign %q", id)
			return
		}
		h(w, r, j)
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := decodeBody(r, &req, false); err != nil {
		writeError(w, http.StatusBadRequest, "parsing submit request: %v", err)
		return
	}
	j, err := s.Submit(req.Config, req.Threads, req.StopAfter)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, j.info())
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	infos := []Info{}
	for _, id := range s.jobIDs() {
		if j := s.job(id); j != nil {
			infos = append(infos, j.info())
		}
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleInspect(w http.ResponseWriter, _ *http.Request, j *Job) {
	writeJSON(w, http.StatusOK, j.info())
}

func (s *Server) handlePause(w http.ResponseWriter, r *http.Request, j *Job) {
	if err := decodeBody(r, &struct{}{}, true); err != nil {
		writeError(w, http.StatusBadRequest, "parsing pause request: %v", err)
		return
	}
	if err := s.Pause(j); err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.info())
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request, j *Job) {
	var req resumeRequest
	if err := decodeBody(r, &req, true); err != nil {
		writeError(w, http.StatusBadRequest, "parsing resume request: %v", err)
		return
	}
	if err := s.Resume(j, req.Threads, req.StopAfter); err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.info())
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, _ *http.Request, j *Job) {
	j.mu.Lock()
	state, cp := j.state, j.checkpoint
	j.mu.Unlock()
	switch {
	case state == StateRunning || state == StatePausing:
		writeError(w, http.StatusConflict, "job %s is %s; a checkpoint exists once it pauses", j.id, state)
		return
	case cp == nil:
		writeError(w, http.StatusNotFound, "job %s has no checkpoint (state %s)", j.id, state)
		return
	}
	data, err := harness.EncodeCheckpoint(cp)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding checkpoint: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data) //nolint:errcheck
}

func (s *Server) handleEnvelope(w http.ResponseWriter, _ *http.Request, j *Job) {
	j.mu.Lock()
	state, env := j.state, j.envelope
	j.mu.Unlock()
	if env == nil {
		writeError(w, http.StatusNotFound, "job %s has no envelope (state %s); envelopes exist for completed campaigns", j.id, state)
		return
	}
	data, err := harness.EncodeEnvelope(env)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding envelope: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data) //nolint:errcheck
}

func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request, j *Job) {
	j.mu.Lock()
	data := append([]byte(nil), j.trace.Bytes()...)
	j.mu.Unlock()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Write(data) //nolint:errcheck
}

func (s *Server) handleJobMetrics(w http.ResponseWriter, _ *http.Request, j *Job) {
	j.mu.Lock()
	snap := j.telemetry
	j.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	telemetry.WritePrometheus(w, snap) //nolint:errcheck
}

// handleMetrics serves the fleet view: every job's latest snapshot
// summed. Job snapshots are only replaced (never mutated) after
// publication, so accumulating copies here is race-free.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var total telemetry.Snapshot
	for _, id := range s.jobIDs() {
		j := s.job(id)
		if j == nil {
			continue
		}
		j.mu.Lock()
		snap := j.telemetry
		j.mu.Unlock()
		total.Accumulate(snap)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	telemetry.WritePrometheus(w, total) //nolint:errcheck
}
