package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/harness"
)

// smallConfig is the suite's stock campaign: one logic, a cross-check
// backend, small enough that a full run takes well under a second.
func smallConfig() harness.CampaignConfig {
	return harness.CampaignConfig{
		SUT:        "z3sim",
		Logics:     []string{"QF_LIA"},
		Iterations: 8,
		SeedPool:   3,
		Seed:       11,
		Backends:   []harness.BackendConfig{{Sim: &harness.SimBackendConfig{SUT: "cvc4sim"}}},
	}
}

// bigConfig is large enough that a pause requested right after submit
// always lands before the campaign completes.
func bigConfig() harness.CampaignConfig {
	cc := smallConfig()
	cc.Logics = []string{"QF_LIA", "QF_S"}
	cc.Iterations = 100
	return cc
}

func newTestServer(t *testing.T, spool string) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(spool)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func request(t *testing.T, method, url string, body []byte) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func submit(t *testing.T, ts *httptest.Server, req submitRequest) Info {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	code, data := request(t, http.MethodPost, ts.URL+"/api/v1/campaigns", body)
	if code != http.StatusCreated {
		t.Fatalf("submit: %d %s", code, data)
	}
	var info Info
	if err := json.Unmarshal(data, &info); err != nil {
		t.Fatal(err)
	}
	return info
}

// waitState polls inspect until the job reaches want (failing fast if
// it lands in failed instead).
func waitState(t *testing.T, ts *httptest.Server, id, want string) Info {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, data := request(t, http.MethodGet, ts.URL+"/api/v1/campaigns/"+id, nil)
		if code != http.StatusOK {
			t.Fatalf("inspect %s: %d %s", id, code, data)
		}
		var info Info
		if err := json.Unmarshal(data, &info); err != nil {
			t.Fatal(err)
		}
		if info.State == want {
			return info
		}
		if info.State == StateFailed && want != StateFailed {
			t.Fatalf("job %s failed: %s", id, info.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s waiting for %s", id, info.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestLifecycleByteIdentity walks the full control-plane lifecycle —
// submit with a task budget, park paused, download the checkpoint,
// resume with a different worker count, inspect to completion — and
// holds the service to the harness's determinism bar: the envelope of
// the paused-and-resumed job must be byte-identical to that of a job
// that ran straight through, and the streamed trace must equal the
// envelope's.
func TestLifecycleByteIdentity(t *testing.T) {
	_, ts := newTestServer(t, "")

	cut := submit(t, ts, submitRequest{Config: smallConfig(), StopAfter: 2})
	info := waitState(t, ts, cut.ID, StatePaused)
	if info.Done != 2 {
		t.Fatalf("paused at frontier %d, budget was 2", info.Done)
	}
	if info.Total != smallConfig().ShardTaskCount() {
		t.Fatalf("total %d, want %d", info.Total, smallConfig().ShardTaskCount())
	}

	code, cpData := request(t, http.MethodGet, ts.URL+"/api/v1/campaigns/"+cut.ID+"/checkpoint", nil)
	if code != http.StatusOK {
		t.Fatalf("checkpoint: %d %s", code, cpData)
	}
	cp, err := harness.DecodeCheckpoint(cpData)
	if err != nil {
		t.Fatalf("served checkpoint does not decode: %v", err)
	}
	if cp.Done != 2 {
		t.Fatalf("served checkpoint frontier %d", cp.Done)
	}

	code, data := request(t, http.MethodPost, ts.URL+"/api/v1/campaigns/"+cut.ID+"/resume", []byte(`{"threads": 3}`))
	if code != http.StatusAccepted {
		t.Fatalf("resume: %d %s", code, data)
	}
	waitState(t, ts, cut.ID, StateDone)

	straight := submit(t, ts, submitRequest{Config: smallConfig()})
	waitState(t, ts, straight.ID, StateDone)

	var envs [2][]byte
	var traces [2][]byte
	for i, id := range []string{cut.ID, straight.ID} {
		code, env := request(t, http.MethodGet, ts.URL+"/api/v1/campaigns/"+id+"/envelope", nil)
		if code != http.StatusOK {
			t.Fatalf("envelope %s: %d %s", id, code, env)
		}
		if _, err := harness.DecodeEnvelope(env); err != nil {
			t.Fatalf("served envelope does not decode: %v", err)
		}
		envs[i] = env
		code, tr := request(t, http.MethodGet, ts.URL+"/api/v1/campaigns/"+id+"/trace", nil)
		if code != http.StatusOK {
			t.Fatalf("trace %s: %d", id, code)
		}
		traces[i] = tr
	}
	if !bytes.Equal(envs[0], envs[1]) {
		t.Error("paused-and-resumed envelope differs from straight-run envelope")
	}
	if !bytes.Equal(traces[0], traces[1]) {
		t.Error("paused-and-resumed trace differs from straight-run trace")
	}
	env, err := harness.DecodeEnvelope(envs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(traces[0], env.Trace) {
		t.Error("streamed trace differs from the envelope's accumulated trace")
	}
	for _, line := range bytes.Split(bytes.TrimSuffix(traces[0], []byte("\n")), []byte("\n")) {
		if !json.Valid(line) {
			t.Fatalf("trace stream line is not JSON: %q", line)
		}
	}

	// Metrics: the per-job scrape and the fleet scrape both expose the
	// funnel sentinel with a live value.
	for _, path := range []string{"/api/v1/campaigns/" + cut.ID + "/metrics", "/metrics"} {
		code, prom := request(t, http.MethodGet, ts.URL+path, nil)
		if code != http.StatusOK {
			t.Fatalf("%s: %d", path, code)
		}
		sentinel := false
		for _, line := range strings.Split(string(prom), "\n") {
			if strings.HasPrefix(line, "yy_funnel_solved_total ") && !strings.HasPrefix(line, "yy_funnel_solved_total 0") {
				sentinel = true
			}
		}
		if !sentinel {
			t.Errorf("%s: no live yy_funnel_solved_total sentinel in:\n%s", path, prom)
		}
	}
}

// TestAsyncPauseCut submits a long campaign with no budget, pauses it
// mid-flight at whatever frontier the race happens to pick, resumes,
// and still demands byte-identity with a straight run — the cut
// position is arbitrary, the result must not be.
func TestAsyncPauseCut(t *testing.T) {
	_, ts := newTestServer(t, "")

	cut := submit(t, ts, submitRequest{Config: bigConfig(), Threads: 2})
	code, data := request(t, http.MethodPost, ts.URL+"/api/v1/campaigns/"+cut.ID+"/pause", nil)
	if code != http.StatusAccepted {
		t.Fatalf("pause: %d %s", code, data)
	}
	info := waitState(t, ts, cut.ID, StatePaused)
	if info.Done <= 0 || info.Done >= info.Total {
		t.Fatalf("pause landed at frontier %d of %d", info.Done, info.Total)
	}
	code, data = request(t, http.MethodPost, ts.URL+"/api/v1/campaigns/"+cut.ID+"/resume", nil)
	if code != http.StatusAccepted {
		t.Fatalf("resume: %d %s", code, data)
	}
	waitState(t, ts, cut.ID, StateDone)

	straight := submit(t, ts, submitRequest{Config: bigConfig(), Threads: 2})
	waitState(t, ts, straight.ID, StateDone)

	_, cutEnv := request(t, http.MethodGet, ts.URL+"/api/v1/campaigns/"+cut.ID+"/envelope", nil)
	_, refEnv := request(t, http.MethodGet, ts.URL+"/api/v1/campaigns/"+straight.ID+"/envelope", nil)
	if !bytes.Equal(cutEnv, refEnv) {
		t.Errorf("envelope after async pause at frontier %d differs from straight run", info.Done)
	}
}

// TestHTTPErrors exercises the API's failure surface: malformed and
// unknown-field bodies, invalid configs, unknown ids, lifecycle
// conflicts, and wrong methods.
func TestHTTPErrors(t *testing.T) {
	_, ts := newTestServer(t, "")

	// A parked job for lifecycle-conflict probes.
	parked := submit(t, ts, submitRequest{Config: smallConfig(), StopAfter: 1})
	waitState(t, ts, parked.ID, StatePaused)
	// A completed job: no checkpoint, resume conflicts.
	done := submit(t, ts, submitRequest{Config: smallConfig()})
	waitState(t, ts, done.ID, StateDone)

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"malformed submit", "POST", "/api/v1/campaigns", `{"config": `, http.StatusBadRequest},
		{"unknown submit field", "POST", "/api/v1/campaigns", `{"config": {"sut": "z3sim"}, "frobnicator": 1}`, http.StatusBadRequest},
		{"trailing submit data", "POST", "/api/v1/campaigns", `{"config": {"sut": "z3sim"}} {}`, http.StatusBadRequest},
		{"invalid config", "POST", "/api/v1/campaigns", `{"config": {"sut": "no-such-solver"}}`, http.StatusBadRequest},
		{"bad shard coordinates", "POST", "/api/v1/campaigns", `{"config": {"sut": "z3sim", "shard": 5, "shards": 2}}`, http.StatusBadRequest},
		{"inspect unknown id", "GET", "/api/v1/campaigns/c999", "", http.StatusNotFound},
		{"pause unknown id", "POST", "/api/v1/campaigns/c999/pause", "", http.StatusNotFound},
		{"resume unknown id", "POST", "/api/v1/campaigns/c999/resume", "", http.StatusNotFound},
		{"checkpoint unknown id", "GET", "/api/v1/campaigns/c999/checkpoint", "", http.StatusNotFound},
		{"trace unknown id", "GET", "/api/v1/campaigns/c999/trace", "", http.StatusNotFound},
		{"pause a paused job", "POST", "/api/v1/campaigns/" + parked.ID + "/pause", "", http.StatusConflict},
		{"pause a done job", "POST", "/api/v1/campaigns/" + done.ID + "/pause", "", http.StatusConflict},
		{"resume a done job", "POST", "/api/v1/campaigns/" + done.ID + "/resume", "", http.StatusConflict},
		{"malformed resume body", "POST", "/api/v1/campaigns/" + parked.ID + "/resume", `{"threads": `, http.StatusBadRequest},
		{"checkpoint of done job", "GET", "/api/v1/campaigns/" + done.ID + "/checkpoint", "", http.StatusNotFound},
		{"envelope of paused job", "GET", "/api/v1/campaigns/" + parked.ID + "/envelope", "", http.StatusNotFound},
		{"wrong method on pause", "GET", "/api/v1/campaigns/" + parked.ID + "/pause", "", http.StatusMethodNotAllowed},
		{"wrong method on list", "DELETE", "/api/v1/campaigns", "", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body []byte
			if tc.body != "" {
				body = []byte(tc.body)
			}
			code, data := request(t, tc.method, ts.URL+tc.path, body)
			if code != tc.want {
				t.Errorf("%s %s: got %d, want %d (%s)", tc.method, tc.path, code, tc.want, data)
			}
			if tc.want != http.StatusMethodNotAllowed && !json.Valid(data) {
				t.Errorf("error body is not JSON: %q", data)
			}
		})
	}

	// The paused job must still be resumable after all that probing.
	code, data := request(t, http.MethodPost, ts.URL+"/api/v1/campaigns/"+parked.ID+"/resume", nil)
	if code != http.StatusAccepted {
		t.Fatalf("resume after error probes: %d %s", code, data)
	}
	waitState(t, ts, parked.ID, StateDone)
}

// TestConcurrentClients hammers every read endpoint from many
// goroutines while jobs run, pause, and resume underneath — the race
// detector (ci runs this suite with -race) is the assertion.
func TestConcurrentClients(t *testing.T) {
	_, ts := newTestServer(t, "")

	job := submit(t, ts, submitRequest{Config: bigConfig(), Threads: 2})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	paths := []string{
		"/api/v1/campaigns",
		"/api/v1/campaigns/" + job.ID,
		"/api/v1/campaigns/" + job.ID + "/trace",
		"/api/v1/campaigns/" + job.ID + "/metrics",
		"/metrics",
	}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + paths[(i+n)%len(paths)])
				if err != nil {
					t.Errorf("client %d: %v", i, err)
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
			}
		}(i)
	}
	// Pause and resume mid-hammer for lifecycle churn.
	request(t, http.MethodPost, ts.URL+"/api/v1/campaigns/"+job.ID+"/pause", nil)
	waitState(t, ts, job.ID, StatePaused)
	request(t, http.MethodPost, ts.URL+"/api/v1/campaigns/"+job.ID+"/resume", nil)
	waitState(t, ts, job.ID, StateDone)
	close(stop)
	wg.Wait()
}

// TestNoGoroutineLeaks runs a full lifecycle and shuts the server
// down; every runner goroutine must park.
func TestNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()

	srv, err := New("")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	j := submit(t, ts, submitRequest{Config: smallConfig(), StopAfter: 3})
	waitState(t, ts, j.ID, StatePaused)
	request(t, http.MethodPost, ts.URL+"/api/v1/campaigns/"+j.ID+"/resume", nil)
	waitState(t, ts, j.ID, StateDone)
	// And one still running when Close lands: Close must pause it and
	// wait for its runner.
	submit(t, ts, submitRequest{Config: bigConfig()})
	ts.Close()
	srv.Close()
	http.DefaultClient.CloseIdleConnections()

	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSpoolDurability pauses a job, discards the server, and reloads
// the spool in a fresh one: the job must come back paused at the same
// frontier with its trace intact, resume, and produce an envelope
// byte-identical to a straight run — and the envelope must survive a
// second reload.
func TestSpoolDurability(t *testing.T) {
	spool := t.TempDir()

	srv1, err := New(spool)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	j := submit(t, ts1, submitRequest{Config: smallConfig(), StopAfter: 2})
	paused := waitState(t, ts1, j.ID, StatePaused)
	_, traceBefore := request(t, http.MethodGet, ts1.URL+"/api/v1/campaigns/"+j.ID+"/trace", nil)
	ts1.Close()
	srv1.Close()

	srv2, err := New(spool)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer func() {
		ts2.Close()
		srv2.Close()
	}()
	info := waitState(t, ts2, j.ID, StatePaused)
	if info.Done != paused.Done {
		t.Fatalf("reloaded frontier %d, was %d", info.Done, paused.Done)
	}
	_, traceAfter := request(t, http.MethodGet, ts2.URL+"/api/v1/campaigns/"+j.ID+"/trace", nil)
	if !bytes.Equal(traceBefore, traceAfter) {
		t.Error("trace not preserved across reload")
	}
	code, data := request(t, http.MethodPost, ts2.URL+"/api/v1/campaigns/"+j.ID+"/resume", []byte(`{"threads": 2}`))
	if code != http.StatusAccepted {
		t.Fatalf("resume reloaded job: %d %s", code, data)
	}
	waitState(t, ts2, j.ID, StateDone)
	_, env := request(t, http.MethodGet, ts2.URL+"/api/v1/campaigns/"+j.ID+"/envelope", nil)

	_, tsRef := newTestServer(t, "")
	ref := submit(t, tsRef, submitRequest{Config: smallConfig()})
	waitState(t, tsRef, ref.ID, StateDone)
	_, refEnv := request(t, http.MethodGet, tsRef.URL+"/api/v1/campaigns/"+ref.ID+"/envelope", nil)
	if !bytes.Equal(env, refEnv) {
		t.Error("envelope of spool-reloaded job differs from straight run")
	}

	// Third server: the done job reloads with its envelope.
	srv3, err := New(spool)
	if err != nil {
		t.Fatal(err)
	}
	ts3 := httptest.NewServer(srv3.Handler())
	defer func() {
		ts3.Close()
		srv3.Close()
	}()
	waitState(t, ts3, j.ID, StateDone)
	_, env3 := request(t, http.MethodGet, ts3.URL+"/api/v1/campaigns/"+j.ID+"/envelope", nil)
	if !bytes.Equal(env, env3) {
		t.Error("envelope changed across reload")
	}
}

// TestSpoolFailClosed covers the reload paths that must not run: a job
// that was mid-leg when the process died (no checkpoint to continue
// from) and a paused job whose checkpoint document rotted on disk.
// Both reload as failed with a diagnostic — visible, never re-run.
func TestSpoolFailClosed(t *testing.T) {
	writeJob := func(t *testing.T, spool, id, state string, extra map[string][]byte) {
		t.Helper()
		dir := filepath.Join(spool, id)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		cfg, err := json.Marshal(smallConfig())
		if err != nil {
			t.Fatal(err)
		}
		st, err := json.Marshal(jobStatus{State: state, Submitted: "2026-08-08T00:00:00Z", Updated: "2026-08-08T00:00:00Z"})
		if err != nil {
			t.Fatal(err)
		}
		files := map[string][]byte{"config.json": cfg, "status.json": st}
		for name, data := range extra {
			files[name] = data
		}
		for name, data := range files {
			if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}

	t.Run("interrupted mid-leg", func(t *testing.T) {
		spool := t.TempDir()
		writeJob(t, spool, "c1", StateRunning, nil)
		_, ts := newTestServer(t, spool)
		info := waitState(t, ts, "c1", StateFailed)
		if !strings.Contains(info.Error, "interrupted") {
			t.Errorf("diagnostic %q does not say the job was interrupted", info.Error)
		}
		code, _ := request(t, http.MethodPost, ts.URL+"/api/v1/campaigns/c1/resume", nil)
		if code != http.StatusConflict {
			t.Errorf("resume of interrupted job: %d, want 409", code)
		}
	})
	t.Run("rotten checkpoint", func(t *testing.T) {
		spool := t.TempDir()
		writeJob(t, spool, "c1", StatePaused, map[string][]byte{"checkpoint.json": []byte("not a checkpoint")})
		_, ts := newTestServer(t, spool)
		info := waitState(t, ts, "c1", StateFailed)
		if !strings.Contains(info.Error, "checkpoint.json unusable") {
			t.Errorf("diagnostic %q does not name the rotten checkpoint", info.Error)
		}
	})
	t.Run("id numbering resumes past reloaded jobs", func(t *testing.T) {
		spool := t.TempDir()
		writeJob(t, spool, "c7", StateRunning, nil)
		_, ts := newTestServer(t, spool)
		info := submit(t, ts, submitRequest{Config: smallConfig(), StopAfter: 1})
		if info.ID != "c8" {
			t.Errorf("new job id %s, want c8", info.ID)
		}
		waitState(t, ts, info.ID, StatePaused)
	})
}

// TestListOrder checks listings stay in submission order and cover
// every job.
func TestListOrder(t *testing.T) {
	_, ts := newTestServer(t, "")
	var want []string
	for i := 0; i < 3; i++ {
		info := submit(t, ts, submitRequest{Config: smallConfig(), StopAfter: 1})
		want = append(want, info.ID)
	}
	code, data := request(t, http.MethodGet, ts.URL+"/api/v1/campaigns", nil)
	if code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	var infos []Info
	if err := json.Unmarshal(data, &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(want) {
		t.Fatalf("list has %d jobs, want %d", len(infos), len(want))
	}
	for i, info := range infos {
		if info.ID != want[i] {
			t.Errorf("list[%d] = %s, want %s", i, info.ID, want[i])
		}
	}
	for _, id := range want {
		waitState(t, ts, id, StatePaused)
	}
}
