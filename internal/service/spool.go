package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"time"

	"repro/internal/harness"
)

// Spool layout (when the server is created with a spool directory):
//
//	<spool>/<id>/config.json       the submitted CampaignConfig
//	<spool>/<id>/status.json       state machine position + summary
//	<spool>/<id>/checkpoint.json   sealed checkpoint (paused jobs)
//	<spool>/<id>/envelope.json     sealed envelope (done jobs)
//
// On restart the server reloads every job: paused jobs resume exactly
// where they left off (the checkpoint document is the durable source
// of truth — the reloaded job is indistinguishable from one paused in
// this process), done/failed jobs reload for inspection, and jobs that
// were mid-leg when the process died are marked failed ("interrupted")
// rather than silently re-run: without a checkpoint there is no
// frontier to continue from, and re-running from zero would double the
// already-persisted trace.

// jobStatus is the status.json payload.
type jobStatus struct {
	State     string  `json:"state"`
	Error     string  `json:"error,omitempty"`
	Done      int     `json:"done"`
	Summary   Summary `json:"summary"`
	Submitted string  `json:"submitted"`
	Updated   string  `json:"updated"`
}

// New creates a server. spool of "" keeps jobs in memory only;
// otherwise jobs persist under the directory and reload on restart.
// Every spooled job is retained forever; use NewWithRetention to cap
// the terminal-job history.
func New(spool string) (*Server, error) {
	return NewWithRetention(spool, 0)
}

// NewWithRetention creates a server whose spool keeps at most retain
// terminal (done or failed) jobs — older terminal jobs are garbage-
// collected from disk and from the listing as new ones land. retain 0
// keeps everything. Jobs that are running, pausing, or paused are
// never collected, whatever their age: a paused job's checkpoint is
// the only copy of its frontier.
func NewWithRetention(spool string, retain int) (*Server, error) {
	s := &Server{jobs: map[string]*Job{}, spool: spool, retain: retain}
	if spool == "" {
		return s, nil
	}
	if err := os.MkdirAll(spool, 0o755); err != nil {
		return nil, fmt.Errorf("service: creating spool: %w", err)
	}
	if err := s.reload(); err != nil {
		return nil, err
	}
	// Reload marks mid-leg casualties failed, which can push the
	// terminal count over the cap — collect before serving.
	s.gc()
	return s, nil
}

// gc enforces the retention policy: when retain > 0, only the newest
// retain terminal jobs (by submission order) keep their spool
// directories. Non-terminal jobs do not count against the cap and are
// never deleted.
func (s *Server) gc() {
	if s.spool == "" || s.retain <= 0 {
		return
	}
	s.mu.Lock()
	var terminal []string
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		st := j.state
		j.mu.Unlock()
		if st == StateDone || st == StateFailed {
			terminal = append(terminal, id)
		}
	}
	var evict []string
	if n := len(terminal) - s.retain; n > 0 {
		evict = terminal[:n]
	}
	if len(evict) > 0 {
		evicted := map[string]bool{}
		for _, id := range evict {
			evicted[id] = true
			delete(s.jobs, id)
		}
		keep := s.order[:0]
		for _, id := range s.order {
			if !evicted[id] {
				keep = append(keep, id)
			}
		}
		s.order = keep
	}
	s.mu.Unlock()
	for _, id := range evict {
		// Best-effort: a directory that survives a failed remove is
		// re-collected at the next gc or reload.
		os.RemoveAll(filepath.Join(s.spool, id))
	}
}

func (s *Server) jobDir(j *Job) string {
	if s.spool == "" {
		return ""
	}
	return filepath.Join(s.spool, j.id)
}

func (s *Server) persistConfig(j *Job) {
	dir := s.jobDir(j)
	if dir == "" {
		return
	}
	j.mu.Lock()
	data, err := json.MarshalIndent(j.config, "", "  ")
	j.mu.Unlock()
	if err == nil {
		err = os.MkdirAll(dir, 0o755)
	}
	if err == nil {
		err = writeFileAtomic(filepath.Join(dir, "config.json"), append(data, '\n'))
	}
	if err != nil {
		s.spoolFailed(j, fmt.Errorf("persisting config: %w", err))
	}
}

func (s *Server) persistStatus(j *Job) {
	dir := s.jobDir(j)
	if dir == "" {
		return
	}
	j.mu.Lock()
	st := jobStatus{
		State:     j.state,
		Error:     j.errMsg,
		Done:      j.done,
		Summary:   j.summary,
		Submitted: j.submitted.UTC().Format(time.RFC3339),
		Updated:   j.updated.UTC().Format(time.RFC3339),
	}
	j.mu.Unlock()
	data, err := json.MarshalIndent(st, "", "  ")
	if err == nil {
		j.spoolMu.Lock()
		err = writeFileAtomic(filepath.Join(dir, "status.json"), append(data, '\n'))
		j.spoolMu.Unlock()
	}
	if err != nil {
		s.spoolFailed(j, fmt.Errorf("persisting status: %w", err))
	}
}

// persistOutcome lands a finished leg: the checkpoint or envelope
// document first, the status flip last, so a crash between the two
// re-marks the job with its old state and a newer artifact — never a
// state claiming an artifact that is not on disk.
func (s *Server) persistOutcome(j *Job) {
	dir := s.jobDir(j)
	if dir == "" {
		return
	}
	j.mu.Lock()
	state, cp, env := j.state, j.checkpoint, j.envelope
	j.mu.Unlock()
	var err error
	switch state {
	case StatePaused:
		var data []byte
		if data, err = harness.EncodeCheckpoint(cp); err == nil {
			err = writeFileAtomic(filepath.Join(dir, "checkpoint.json"), data)
		}
	case StateDone:
		var data []byte
		if data, err = harness.EncodeEnvelope(env); err == nil {
			err = writeFileAtomic(filepath.Join(dir, "envelope.json"), data)
		}
		if err == nil {
			// The checkpoint of a completed campaign is stale state.
			if rmErr := os.Remove(filepath.Join(dir, "checkpoint.json")); rmErr != nil && !os.IsNotExist(rmErr) {
				err = rmErr
			}
		}
	}
	if err != nil {
		s.spoolFailed(j, fmt.Errorf("persisting outcome: %w", err))
		return
	}
	s.persistStatus(j)
	if state == StateDone || state == StateFailed {
		s.gc()
	}
}

// spoolFailed marks a job failed because its durable record could not
// be written: an unpersistable job must not pretend to be durable.
func (s *Server) spoolFailed(j *Job, err error) {
	j.mu.Lock()
	j.state = StateFailed
	j.errMsg = err.Error()
	j.touch()
	j.mu.Unlock()
	s.persistStatus(j) // best-effort; the spool may still be broken
	s.gc()
}

func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

var jobDirName = regexp.MustCompile(`^c([0-9]+)$`)

// reload restores the spooled jobs at startup.
func (s *Server) reload() error {
	entries, err := os.ReadDir(s.spool)
	if err != nil {
		return fmt.Errorf("service: reading spool: %w", err)
	}
	type slot struct {
		n  int
		id string
	}
	var slots []slot
	for _, ent := range entries {
		m := jobDirName.FindStringSubmatch(ent.Name())
		if !ent.IsDir() || m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		slots = append(slots, slot{n: n, id: ent.Name()})
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i].n < slots[j].n })
	for _, sl := range slots {
		j, err := s.reloadJob(sl.id)
		if err != nil {
			return fmt.Errorf("service: reloading job %s: %w", sl.id, err)
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		if sl.n > s.nextID {
			s.nextID = sl.n
		}
	}
	return nil
}

func (s *Server) reloadJob(id string) (*Job, error) {
	dir := filepath.Join(s.spool, id)
	j := &Job{id: id}

	data, err := os.ReadFile(filepath.Join(dir, "config.json"))
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(data, &j.config); err != nil {
		return nil, fmt.Errorf("config.json: %v", err)
	}
	if err := j.config.Validate(); err != nil {
		return nil, fmt.Errorf("config.json: %v", err)
	}

	var st jobStatus
	data, err = os.ReadFile(filepath.Join(dir, "status.json"))
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("status.json: %v", err)
	}
	j.state = st.State
	j.errMsg = st.Error
	j.done = st.Done
	j.summary = st.Summary
	if t, err := time.Parse(time.RFC3339, st.Submitted); err == nil {
		j.submitted = t
	}
	if t, err := time.Parse(time.RFC3339, st.Updated); err == nil {
		j.updated = t
	}

	switch st.State {
	case StatePaused:
		data, err := os.ReadFile(filepath.Join(dir, "checkpoint.json"))
		if err != nil {
			return nil, err
		}
		cp, err := harness.DecodeCheckpoint(data)
		if err != nil {
			// Fail closed, but keep the job visible so the operator sees
			// why it cannot resume.
			j.state = StateFailed
			j.errMsg = fmt.Sprintf("checkpoint.json unusable: %v", err)
			return j, nil
		}
		j.checkpoint = cp
		j.done = cp.Done
		j.telemetry = cp.Telemetry
		j.trace.Write(cp.Trace)
	case StateDone:
		data, err := os.ReadFile(filepath.Join(dir, "envelope.json"))
		if err != nil {
			return nil, err
		}
		env, err := harness.DecodeEnvelope(data)
		if err != nil {
			j.state = StateFailed
			j.errMsg = fmt.Sprintf("envelope.json unusable: %v", err)
			return j, nil
		}
		j.envelope = env
		j.done = env.Tasks
		j.telemetry = env.Telemetry
		j.trace.Write(env.Trace)
	case StateRunning, StatePausing:
		// The process died mid-leg: no checkpoint was written, so there
		// is no frontier to continue from.
		j.state = StateFailed
		j.errMsg = "interrupted: the server terminated while this campaign was running"
	case StateFailed:
		// Reloads as-is.
	default:
		return nil, fmt.Errorf("status.json: unknown state %q", st.State)
	}
	return j, nil
}
