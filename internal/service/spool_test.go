package service

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// retentionServer builds a server with a terminal-job cap plus an HTTP
// front end, mirroring newTestServer.
func retentionServer(t *testing.T, spool string, retain int) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := NewWithRetention(spool, retain)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// seedSpoolJob handwrites a job directory, simulating state left by an
// earlier server process.
func seedSpoolJob(t *testing.T, spool, id, state string) {
	t.Helper()
	dir := filepath.Join(spool, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	cfg, err := json.Marshal(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	st, err := json.Marshal(jobStatus{State: state, Submitted: "2026-08-08T00:00:00Z", Updated: "2026-08-08T00:00:00Z"})
	if err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{"config.json": cfg, "status.json": st} {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func spooled(t *testing.T, spool, id string) bool {
	t.Helper()
	_, err := os.Stat(filepath.Join(spool, id))
	if err != nil && !os.IsNotExist(err) {
		t.Fatal(err)
	}
	return err == nil
}

// TestSpoolRetention drives the terminal-job cap end to end: completed
// jobs age out oldest-first once the cap is exceeded, jobs that reload
// as failed (interrupted mid-leg) count against the cap, and paused
// jobs are never collected no matter how old they are — a paused job's
// checkpoint is the only copy of its frontier.
func TestSpoolRetention(t *testing.T) {
	spool := t.TempDir()
	// A job interrupted mid-leg by a previous process: reloads as
	// failed, i.e. terminal, so it competes with the cap from the start.
	seedSpoolJob(t, spool, "c1", StateRunning)

	srv, ts := retentionServer(t, spool, 2)
	if info := waitState(t, ts, "c1", StateFailed); info.Error == "" {
		t.Error("interrupted job reloaded without a diagnostic")
	}

	// A paused job, submitted before the churn below, so it is the
	// oldest non-terminal job when collection happens.
	pausedJob := submit(t, ts, submitRequest{Config: bigConfig(), StopAfter: 2})
	waitState(t, ts, pausedJob.ID, StatePaused)

	// Two completions fill the cap alongside the failed c1...
	first := submit(t, ts, submitRequest{Config: smallConfig()})
	waitState(t, ts, first.ID, StateDone)
	srv.Wait() // gc runs on the runner goroutine after the status flip
	if !spooled(t, spool, "c1") {
		t.Fatal("cap not yet exceeded but a job was collected")
	}

	// ...so the next one evicts the oldest terminal job (c1), and the
	// one after that evicts the next (first). The paused job, older
	// than both, stays.
	second := submit(t, ts, submitRequest{Config: smallConfig()})
	waitState(t, ts, second.ID, StateDone)
	srv.Wait()
	if spooled(t, spool, "c1") {
		t.Error("oldest terminal job not collected from disk")
	}
	third := submit(t, ts, submitRequest{Config: smallConfig()})
	waitState(t, ts, third.ID, StateDone)
	srv.Wait()
	if spooled(t, spool, first.ID) {
		t.Error("second-oldest terminal job not collected from disk")
	}
	if !spooled(t, spool, pausedJob.ID) {
		t.Fatal("paused job collected; its checkpoint is gone")
	}
	want := []string{pausedJob.ID, second.ID, third.ID}
	if got := srv.jobIDs(); !reflect.DeepEqual(got, want) {
		t.Errorf("listing after collection: %v, want %v", got, want)
	}

	// A tighter cap on restart collects down to it immediately, still
	// sparing the paused job.
	ts.Close()
	srv.Close()
	srv2, err := NewWithRetention(spool, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if spooled(t, spool, second.ID) {
		t.Error("restart with a tighter cap kept an over-cap terminal job")
	}
	if !spooled(t, spool, third.ID) || !spooled(t, spool, pausedJob.ID) {
		t.Error("restart collected jobs inside the cap")
	}
	if got, want := srv2.jobIDs(), []string{pausedJob.ID, third.ID}; !reflect.DeepEqual(got, want) {
		t.Errorf("listing after restart: %v, want %v", got, want)
	}

	// The surviving paused job still resumes: retention never touched
	// its checkpoint.
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	code, data := request(t, "POST", ts2.URL+"/api/v1/campaigns/"+pausedJob.ID+"/resume", []byte(`{}`))
	if code != 202 {
		t.Fatalf("resume of retained paused job: %d %s", code, data)
	}
	srv2.Wait()
	// Completing made it terminal — and the oldest terminal job, so
	// under the cap of 1 it is collected right after it lands.
	if got, want := srv2.jobIDs(), []string{third.ID}; !reflect.DeepEqual(got, want) {
		t.Errorf("listing after resumed job completed: %v, want %v", got, want)
	}
	if spooled(t, spool, pausedJob.ID) {
		t.Error("completed job not collected under the cap")
	}
}

// TestSpoolRetentionDisabled: retain 0 (the New default) keeps every
// terminal job.
func TestSpoolRetentionDisabled(t *testing.T) {
	spool := t.TempDir()
	srv, ts := newTestServer(t, spool)
	var ids []string
	for i := 0; i < 3; i++ {
		j := submit(t, ts, submitRequest{Config: smallConfig()})
		waitState(t, ts, j.ID, StateDone)
		ids = append(ids, j.ID)
	}
	srv.Wait()
	for _, id := range ids {
		if !spooled(t, spool, id) {
			t.Errorf("job %s collected with retention disabled", id)
		}
	}
}
