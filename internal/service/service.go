// Package service is the campaign control plane: a resident HTTP/JSON
// server that runs yinyang campaigns as durable jobs. Clients submit a
// CampaignConfig, watch progress, pause the campaign into a checkpoint,
// resume it (in this process or, by downloading the checkpoint, any
// other), stream the JSONL trace, and scrape Prometheus metrics — all
// without disturbing the determinism contract: the service only ever
// drives campaigns through harness.Start/Resume, so a job that was
// paused and resumed five times reports byte-identical results to one
// that ran straight through.
package service

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"repro/internal/harness"
	"repro/internal/telemetry"
)

// Job states. Transitions: running → pausing → paused → running … →
// done, with failed terminal from anywhere. A job submitted with a
// stop_after budget parks itself in paused without passing through
// pausing.
const (
	StateRunning = "running"
	StatePausing = "pausing"
	StatePaused  = "paused"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Summary is the count block of a job's inspect payload, mirroring the
// harness Result scalars (partial while paused, final when done).
type Summary struct {
	Tests                  int  `json:"tests"`
	Unknowns               int  `json:"unknowns"`
	Timeouts               int  `json:"timeouts"`
	Bugs                   int  `json:"bugs"`
	Duplicates             int  `json:"duplicates"`
	InvalidInputs          int  `json:"invalid_inputs"`
	Quarantined            int  `json:"quarantined"`
	ReferenceDisagreements int  `json:"reference_disagreements"`
	BackendFindings        int  `json:"backend_findings"`
	Degraded               bool `json:"degraded"`
}

func summaryOf(r *harness.Result) Summary {
	return Summary{
		Tests:                  r.Tests,
		Unknowns:               r.Unknowns,
		Timeouts:               r.Timeouts,
		Bugs:                   len(r.Bugs),
		Duplicates:             r.Duplicates,
		InvalidInputs:          r.InvalidInputs,
		Quarantined:            r.Quarantined,
		ReferenceDisagreements: r.ReferenceDisagreements,
		BackendFindings:        len(r.BackendFindings),
		Degraded:               r.Degraded(),
	}
}

// Job is one campaign under service management. All fields are guarded
// by mu except id (immutable) and stop (atomic); the runner goroutine
// is the only writer of the heavyweight fields (checkpoint, envelope,
// trace) but readers on request goroutines take the lock too.
type Job struct {
	id string

	mu         sync.Mutex
	config     harness.CampaignConfig
	state      string
	errMsg     string
	done       int
	total      int
	summary    Summary
	telemetry  telemetry.Snapshot
	checkpoint *harness.Checkpoint
	envelope   *harness.Envelope
	trace      bytes.Buffer // accumulated JSONL, all legs
	// submitted/updated are operator-facing timestamps; nothing in the
	// campaign pipeline reads them.
	submitted time.Time
	updated   time.Time

	stop stopFlag
	// spoolMu serializes status.json rewrites (a pause request races
	// the runner's own completion persist; both snapshot the state
	// under mu, so last-writer-wins is correct — as long as writes do
	// not interleave inside the file).
	spoolMu sync.Mutex
}

// stopFlag is the pause request latch, polled by the harness after
// every classified task.
type stopFlag struct {
	mu  sync.Mutex
	set bool
}

func (f *stopFlag) request() { f.mu.Lock(); f.set = true; f.mu.Unlock() }
func (f *stopFlag) clear()   { f.mu.Lock(); f.set = false; f.mu.Unlock() }
func (f *stopFlag) stopped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.set
}

// legTrace adapts the job's accumulating trace buffer to the harness's
// per-leg trace writer: the harness emits each leg's new records, the
// buffer holds the whole campaign's.
type legTrace struct{ j *Job }

func (t legTrace) Write(p []byte) (int, error) {
	t.j.mu.Lock()
	defer t.j.mu.Unlock()
	return t.j.trace.Write(p)
}

// Server manages campaign jobs. Create with New, mount as an
// http.Handler, Close before discarding (Close pauses running jobs and
// waits for their runner goroutines).
type Server struct {
	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order, for stable listings
	nextID int
	spool  string
	// retain caps how many terminal (done/failed) jobs keep their spool
	// directories; 0 keeps everything. Non-terminal jobs are never
	// collected — see gc.
	retain int

	wg sync.WaitGroup
}

// jobIDs returns the ids in submission order.
func (s *Server) jobIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...)
}

func (s *Server) job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Submit registers a campaign and starts running it. stopAfter > 0
// pauses the job after that many classified tasks (a task budget, so
// operators can run campaigns in bounded slices).
func (s *Server) Submit(cc harness.CampaignConfig, threads, stopAfter int) (*Job, error) {
	if err := cc.Validate(); err != nil {
		return nil, err
	}
	if threads > 0 {
		cc.Threads = threads
	}
	s.mu.Lock()
	s.nextID++
	j := &Job{
		id:     fmt.Sprintf("c%d", s.nextID),
		config: cc,
		state:  StateRunning,
		//golint:allow wall-clock — operator-facing job metadata timestamps; nothing in the campaign pipeline branches on them
		submitted: time.Now(),
	}
	j.updated = j.submitted
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()
	s.persistConfig(j)
	s.persistStatus(j)
	s.launch(j, nil, 0, stopAfter)
	return j, nil
}

// Pause requests that a running job checkpoint at the next classified
// task. The transition to paused is asynchronous; poll the job state
// or fetch the checkpoint (which conflicts until the leg has parked).
func (s *Server) Pause(j *Job) error {
	j.mu.Lock()
	if j.state != StateRunning {
		state := j.state
		j.mu.Unlock()
		return fmt.Errorf("job %s is %s, only running jobs pause", j.id, state)
	}
	j.state = StatePausing
	j.touch()
	j.mu.Unlock()
	j.stop.request()
	s.persistStatus(j)
	return nil
}

// Resume continues a paused job from its checkpoint, optionally with a
// different worker count and a fresh task budget.
func (s *Server) Resume(j *Job, threads, stopAfter int) error {
	j.mu.Lock()
	if j.state != StatePaused {
		defer j.mu.Unlock()
		return fmt.Errorf("job %s is %s, only paused jobs resume", j.id, j.state)
	}
	cp := j.checkpoint
	if cp == nil {
		defer j.mu.Unlock()
		return fmt.Errorf("job %s has no checkpoint to resume from", j.id)
	}
	j.state = StateRunning
	j.touch()
	j.stop.clear()
	j.mu.Unlock()
	s.persistStatus(j)
	s.launch(j, cp, threads, stopAfter)
	return nil
}

// launch starts one leg of the job on a runner goroutine.
func (s *Server) launch(j *Job, cp *harness.Checkpoint, threads, stopAfter int) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		tr := telemetry.NewTracker()
		opt := harness.RunOptions{
			Telemetry: tr,
			Trace:     legTrace{j},
			Threads:   threads,
			StopAfter: stopAfter,
			Stop:      j.stop.stopped,
			Progress: func(done, total int) {
				// Runs on the classification goroutine — the tracker's
				// single owner — so snapshotting here is race-free.
				snap := tr.Snapshot()
				j.mu.Lock()
				j.done, j.total = done, total
				j.telemetry = snap
				j.mu.Unlock()
			},
		}
		var out *harness.Outcome
		var err error
		if cp != nil {
			out, err = harness.Resume(cp, opt)
		} else {
			out, err = harness.Start(j.config, opt)
		}
		j.mu.Lock()
		j.touch()
		switch {
		case err != nil:
			j.state = StateFailed
			j.errMsg = err.Error()
		case out.Paused:
			j.state = StatePaused
			j.checkpoint = out.Checkpoint
			j.done = out.Checkpoint.Done
			j.telemetry = out.Telemetry
			j.summary = summaryOf(out.Result)
		default:
			j.state = StateDone
			j.checkpoint = nil
			j.envelope = out.Envelope
			j.done = out.Envelope.Tasks
			j.telemetry = out.Telemetry
			j.summary = summaryOf(out.Result)
		}
		j.mu.Unlock()
		s.persistOutcome(j)
	}()
}

// touch refreshes the operator-facing update timestamp; callers hold
// j.mu.
func (j *Job) touch() {
	//golint:allow wall-clock — operator-facing job metadata timestamps; nothing in the campaign pipeline branches on them
	j.updated = time.Now()
}

// Close pauses every running job and waits for all runner goroutines;
// the server must not be used afterwards. Spooled jobs will reload as
// paused (mid-leg checkpoints land before Close returns).
func (s *Server) Close() {
	s.mu.Lock()
	for _, j := range s.jobs {
		j.stop.request()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Wait blocks until every runner goroutine has parked (jobs done,
// paused, or failed) without requesting any pause. Test helper and
// shutdown aid; new submissions during Wait extend it.
func (s *Server) Wait() { s.wg.Wait() }
