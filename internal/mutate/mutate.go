// Package mutate implements type-aware operator mutation of seed
// formulas — the second test-generation pipeline next to semantic
// fusion, after "On the Unusual Effectiveness of Type-Aware Operator
// Mutations for Testing SMT Solvers" (Winterer, Zhang, Su).
//
// Every mutation preserves the seed's recorded satisfiability, so a
// mutant inherits its ancestor's oracle. Soundness rests on polarity:
//
//   - An equivalence rewrite ((< a b) ↔ (<= a b) ∧ (distinct a b),
//     (>= a b) ↔ (<= b a), (distinct a b) ↔ ¬(= a b), …) is valid at
//     any position under any oracle.
//   - A weakening (original ⇒ mutant: < to ≤, and to or, prefixof to
//     contains, …) applied at a positive position weakens the whole
//     formula, so a sat seed stays sat; applied at a negative position
//     it strengthens the formula, so an unsat seed stays unsat.
//   - A strengthening (mutant ⇒ original: ≤ to <, or to and, …) is the
//     mirror image: negative positions on sat seeds, positive positions
//     on unsat seeds.
//   - Positions of unknown monotonicity (below xor, bool equality,
//     distinct, or an ite condition) take only equivalence rewrites.
//
// Belt and braces, the engine re-evaluates a sat seed's witness against
// the mutant and runs the static analysis gate, so a rule bug surfaces
// as a structured error rather than a bogus campaign finding.
package mutate

import (
	"errors"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/smtlib"
)

// ErrNoMutationSite is returned when no rule applies anywhere in the
// seed (the mutation analogue of core.ErrNoFusablePair).
var ErrNoMutationSite = errors.New("mutate: no applicable mutation site")

// ErrWitnessLost marks a mutation-engine bug: a supposedly
// sat-preserving mutation invalidated the seed's witness.
var ErrWitnessLost = errors.New("mutate: sat witness no longer satisfies the mutant")

// Options tunes the engine.
type Options struct {
	// MaxMutations bounds the mutations stacked onto one seed; each
	// mutant applies 1..MaxMutations rules. 0 means the default of 2.
	MaxMutations int
}

// Mutant is one mutation result: the mutated script, its inherited
// oracle, and the applied rule names in application order.
type Mutant struct {
	Script *smtlib.Script
	Seed   *core.Seed
	Oracle core.Status
	Rules  []string
}

// Kind classifies a rule's logical direction.
type Kind int8

const (
	// Equivalence rewrites are logically neutral: valid anywhere.
	Equivalence Kind = iota
	// Weaken rules satisfy original ⇒ mutant at the rewritten node.
	Weaken
	// Strengthen rules satisfy mutant ⇒ original at the rewritten node.
	Strengthen
)

// Rule is one operator mutation, keyed by the operator and argument
// sorts its Match accepts.
type Rule struct {
	Name  string
	Kind  Kind
	Match func(*ast.App) bool
	Apply func(*ast.App) ast.Term
}

func isOp(op ast.Op, arity int) func(*ast.App) bool {
	return func(a *ast.App) bool { return a.Op == op && len(a.Args) == arity }
}

func isOpMin(op ast.Op, min int) func(*ast.App) bool {
	return func(a *ast.App) bool { return a.Op == op && len(a.Args) >= min }
}

// numericEq matches a binary equality over Int or Real arguments (the
// only sorts where = weakens to ≤).
func numericEq(a *ast.App) bool {
	if a.Op != ast.OpEq || len(a.Args) != 2 {
		return false
	}
	s := a.Args[0].Sort()
	return s == ast.SortInt || s == ast.SortReal
}

// Rules is the type-aware rule table, in the deterministic order site
// collection enumerates it. The comparison rules need no extra sort
// checks: <, ≤, >, ≥ only type over numeric arguments, and the string
// rules only over strings — the operator is the type key.
var Rules = []Rule{
	// Weakenings (original ⇒ mutant).
	{"lt-to-le", Weaken, isOp(ast.OpLt, 2), func(a *ast.App) ast.Term { return ast.Le(a.Args[0], a.Args[1]) }},
	{"gt-to-ge", Weaken, isOp(ast.OpGt, 2), func(a *ast.App) ast.Term { return ast.Ge(a.Args[0], a.Args[1]) }},
	{"and-to-or", Weaken, isOpMin(ast.OpAnd, 2), func(a *ast.App) ast.Term { return ast.Or(a.Args...) }},
	{"eq-to-le", Weaken, numericEq, func(a *ast.App) ast.Term { return ast.Le(a.Args[0], a.Args[1]) }},
	{"prefixof-to-contains", Weaken, isOp(ast.OpStrPrefixOf, 2),
		func(a *ast.App) ast.Term { return ast.MustApp(ast.OpStrContains, a.Args[1], a.Args[0]) }},
	{"suffixof-to-contains", Weaken, isOp(ast.OpStrSuffixOf, 2),
		func(a *ast.App) ast.Term { return ast.MustApp(ast.OpStrContains, a.Args[1], a.Args[0]) }},
	{"strlt-to-strle", Weaken, isOp(ast.OpStrLtOp, 2),
		func(a *ast.App) ast.Term { return ast.MustApp(ast.OpStrLeOp, a.Args[0], a.Args[1]) }},

	// Strengthenings (mutant ⇒ original).
	{"le-to-lt", Strengthen, isOp(ast.OpLe, 2), func(a *ast.App) ast.Term { return ast.Lt(a.Args[0], a.Args[1]) }},
	{"ge-to-gt", Strengthen, isOp(ast.OpGe, 2), func(a *ast.App) ast.Term { return ast.Gt(a.Args[0], a.Args[1]) }},
	{"or-to-and", Strengthen, isOpMin(ast.OpOr, 2), func(a *ast.App) ast.Term { return ast.And(a.Args...) }},
	{"le-to-eq", Strengthen, isOp(ast.OpLe, 2), func(a *ast.App) ast.Term { return ast.Eq(a.Args[0], a.Args[1]) }},
	{"contains-to-prefixof", Strengthen, isOp(ast.OpStrContains, 2),
		func(a *ast.App) ast.Term { return ast.MustApp(ast.OpStrPrefixOf, a.Args[1], a.Args[0]) }},
	{"strle-to-strlt", Strengthen, isOp(ast.OpStrLeOp, 2),
		func(a *ast.App) ast.Term { return ast.MustApp(ast.OpStrLtOp, a.Args[0], a.Args[1]) }},

	// Equivalences.
	{"lt-guard", Equivalence, isOp(ast.OpLt, 2), func(a *ast.App) ast.Term {
		return ast.And(ast.Le(a.Args[0], a.Args[1]), ast.MustApp(ast.OpDistinct, a.Args[0], a.Args[1]))
	}},
	{"gt-guard", Equivalence, isOp(ast.OpGt, 2), func(a *ast.App) ast.Term {
		return ast.And(ast.Ge(a.Args[0], a.Args[1]), ast.MustApp(ast.OpDistinct, a.Args[0], a.Args[1]))
	}},
	{"le-split", Equivalence, isOp(ast.OpLe, 2), func(a *ast.App) ast.Term {
		return ast.Or(ast.Lt(a.Args[0], a.Args[1]), ast.Eq(a.Args[0], a.Args[1]))
	}},
	{"ge-flip", Equivalence, isOp(ast.OpGe, 2), func(a *ast.App) ast.Term { return ast.Le(a.Args[1], a.Args[0]) }},
	{"gt-flip", Equivalence, isOp(ast.OpGt, 2), func(a *ast.App) ast.Term { return ast.Lt(a.Args[1], a.Args[0]) }},
	{"distinct-to-noteq", Equivalence, isOp(ast.OpDistinct, 2),
		func(a *ast.App) ast.Term { return ast.Not(ast.Eq(a.Args[0], a.Args[1])) }},
	{"noteq-to-distinct", Equivalence, func(a *ast.App) bool {
		if a.Op != ast.OpNot {
			return false
		}
		eq, ok := a.Args[0].(*ast.App)
		return ok && eq.Op == ast.OpEq && len(eq.Args) == 2
	}, func(a *ast.App) ast.Term {
		eq := a.Args[0].(*ast.App)
		return ast.MustApp(ast.OpDistinct, eq.Args[0], eq.Args[1])
	}},
}

// applicable reports whether a rule of the given kind may fire at a
// position of the given polarity under the seed's status.
func applicable(kind Kind, pol int8, status core.Status) bool {
	switch kind {
	case Equivalence:
		return true
	case Weaken:
		return (pol == +1 && status == core.StatusSat) ||
			(pol == -1 && status == core.StatusUnsat)
	default: // Strengthen
		return (pol == +1 && status == core.StatusUnsat) ||
			(pol == -1 && status == core.StatusSat)
	}
}

// site addresses one applicable (node, rule) pair: the assert index,
// the node's pre-order position within that assert, the rule, and the
// position's polarity at collection time.
type site struct {
	assert int
	node   int
	rule   int
	pol    int8
}

// collectWith enumerates every (node, rule) pair admitted by keep over
// the asserts, walking each assert pre-order with polarity tracking.
// Node numbering counts every term node (in the same order rebuild
// revisits them), so a site survives as a stable coordinate. Every
// caller shares this one enumeration order: the admission predicate
// only filters, so tightening or loosening it never perturbs the
// coordinates (or the RNG stream shape) of the sites that remain.
func collectWith(asserts []ast.Term, keep func(Kind, int8) bool) []site {
	var sites []site
	for ai, a := range asserts {
		n := 0
		walkPolarity(a, +1, func(app *ast.App, pol int8) {
			// n has not been advanced past this node yet, so it is the
			// node's own pre-order index.
			for ri, r := range Rules {
				if r.Match(app) && keep(r.Kind, pol) {
					sites = append(sites, site{assert: ai, node: n, rule: ri, pol: pol})
				}
			}
		}, &n)
	}
	return sites
}

// collect enumerates every status-preserving site over the asserts.
func collect(asserts []ast.Term, status core.Status) []site {
	return collectWith(asserts, func(kind Kind, pol int8) bool {
		return applicable(kind, pol, status)
	})
}

// walkPolarity visits every node of t pre-order. visit runs on App
// nodes with the position's polarity: +1 positive, -1 negative, 0
// unknown monotonicity. The counter increments for every node (Apps,
// literals, variables, quantifiers alike) so collect and rebuild agree
// on coordinates.
func walkPolarity(t ast.Term, pol int8, visit func(*ast.App, int8), n *int) {
	switch node := t.(type) {
	case *ast.App:
		visit(node, pol)
		*n++
		for i, arg := range node.Args {
			walkPolarity(arg, childPolarity(node, i, pol), visit, n)
		}
	case *ast.Quant:
		*n++
		walkPolarity(node.Body, pol, visit, n)
	default:
		*n++
	}
}

// childPolarity gives the polarity of argument i of app when app sits
// at polarity pol.
func childPolarity(app *ast.App, i int, pol int8) int8 {
	switch app.Op {
	case ast.OpAnd, ast.OpOr:
		return pol
	case ast.OpNot:
		return -pol
	case ast.OpImplies:
		if i == len(app.Args)-1 {
			return pol
		}
		return -pol
	case ast.OpIte:
		if i == 0 {
			return 0 // the condition selects; not monotone
		}
		if app.Sort() == ast.SortBool {
			return pol // boolean ite is monotone in both branches
		}
		return 0
	default:
		// Below any other operator (equalities, xor, arithmetic,
		// strings) monotonicity is unknown.
		return 0
	}
}

// rebuild returns the assert with the node at pre-order position
// target replaced by rule.Apply. The replaced node's subtree is not
// revisited; untouched subtrees are returned as-is (interning keeps
// them shared).
func rebuild(t ast.Term, target int, rule Rule, n *int) ast.Term {
	idx := *n
	*n++
	switch node := t.(type) {
	case *ast.App:
		if idx == target {
			return rule.Apply(node)
		}
		changed := false
		args := make([]ast.Term, len(node.Args))
		for i, arg := range node.Args {
			args[i] = rebuild(arg, target, rule, n)
			if args[i] != arg {
				changed = true
			}
		}
		if !changed {
			return node
		}
		return ast.MustApp(node.Op, args...)
	case *ast.Quant:
		body := rebuild(node.Body, target, rule, n)
		if body == node.Body {
			return node
		}
		return ast.MustQuant(node.Forall, node.Bound, body)
	default:
		return t
	}
}

// Mutate derives one mutant from a seed, applying 1..MaxMutations
// rules chosen by the task's RNG. The mutant inherits the seed's
// status as its oracle. Returns ErrNoMutationSite when nothing
// applies, ErrWitnessLost or a *analysis.GateError when a supposedly
// verdict-preserving mutation fails its safety checks.
func Mutate(seed *core.Seed, rng *rand.Rand, opts Options) (*Mutant, error) {
	maxMut := opts.MaxMutations
	if maxMut <= 0 {
		maxMut = 2
	}
	asserts := append([]ast.Term(nil), seed.Script.Asserts()...)
	k := 1 + rng.Intn(maxMut)
	var applied []string
	for round := 0; round < k; round++ {
		sites := collect(asserts, seed.Status)
		if len(sites) == 0 {
			break
		}
		c := sites[rng.Intn(len(sites))]
		n := 0
		asserts[c.assert] = rebuild(asserts[c.assert], c.node, Rules[c.rule], &n)
		applied = append(applied, Rules[c.rule].Name)
	}
	if len(applied) == 0 {
		return nil, ErrNoMutationSite
	}
	script := smtlib.NewScript(seed.Script.Logic(), seed.Script.Declarations(), asserts)
	if seed.Status == core.StatusSat && seed.Witness != nil {
		for _, a := range asserts {
			if ast.HasQuantifier(a) {
				continue
			}
			ok, err := eval.Bool(a, seed.Witness)
			if err != nil || !ok {
				return nil, ErrWitnessLost
			}
		}
	}
	if err := analysis.Gate(script, nil); err != nil {
		return nil, err
	}
	return &Mutant{Script: script, Seed: seed, Oracle: seed.Status, Rules: applied}, nil
}

// Wild derives a mutant with no oracle: every (node, rule) match is a
// candidate site regardless of polarity or the seed's status, so the
// result's satisfiability is unknown by construction. This is the
// unknown-status input source for the consensus oracles — the mutant
// deliberately leaves the polarity-soundness envelope, and with it the
// known-status oracle. No witness check applies (there is no status to
// preserve); the static analysis gate still runs so wild mutants stay
// well-formed campaign inputs.
func Wild(seed *core.Seed, rng *rand.Rand, opts Options) (*Mutant, error) {
	maxMut := opts.MaxMutations
	if maxMut <= 0 {
		maxMut = 2
	}
	asserts := append([]ast.Term(nil), seed.Script.Asserts()...)
	k := 1 + rng.Intn(maxMut)
	var applied []string
	for round := 0; round < k; round++ {
		sites := collectWith(asserts, func(Kind, int8) bool { return true })
		if len(sites) == 0 {
			break
		}
		c := sites[rng.Intn(len(sites))]
		n := 0
		asserts[c.assert] = rebuild(asserts[c.assert], c.node, Rules[c.rule], &n)
		applied = append(applied, Rules[c.rule].Name)
	}
	if len(applied) == 0 {
		return nil, ErrNoMutationSite
	}
	script := smtlib.NewScript(seed.Script.Logic(), seed.Script.Declarations(), asserts)
	if err := analysis.Gate(script, nil); err != nil {
		return nil, err
	}
	return &Mutant{Script: script, Seed: seed, Oracle: core.StatusUnknown, Rules: applied}, nil
}

// Relation classifies how a metamorphic variant relates to its
// original. The relation is known by construction even when the
// original's satisfiability is not — which is exactly what makes the
// pair an oracle for unknown-status inputs.
type Relation int8

const (
	// RelEquivalent: original ⇔ variant; any verdict disagreement
	// between the two is a violation.
	RelEquivalent Relation = iota
	// RelWeakened: original ⇒ variant, so a sat original forces a sat
	// variant (sat-preserving).
	RelWeakened
	// RelStrengthened: variant ⇒ original, so a sat variant forces a
	// sat original — equivalently an unsat original forces an unsat
	// variant (unsat-preserving).
	RelStrengthened
)

func (r Relation) String() string {
	switch r {
	case RelEquivalent:
		return "equivalent"
	case RelWeakened:
		return "weakened"
	default:
		return "strengthened"
	}
}

// Variant is one metamorphic derivation: the rewritten script, its
// relation to the original, and the applied rule names in order.
type Variant struct {
	Script *smtlib.Script
	Rel    Relation
	Rules  []string
}

// stepRelation gives the original→variant relation of applying a rule
// of the given kind at a position of the given polarity. ok is false
// at positions of unknown monotonicity, where only equivalences have a
// defined relation.
func stepRelation(kind Kind, pol int8) (rel Relation, ok bool) {
	switch kind {
	case Equivalence:
		return RelEquivalent, true
	case Weaken:
		switch pol {
		case +1:
			return RelWeakened, true
		case -1:
			return RelStrengthened, true
		}
	default: // Strengthen
		switch pol {
		case +1:
			return RelStrengthened, true
		case -1:
			return RelWeakened, true
		}
	}
	return RelEquivalent, false
}

// DeriveVariant builds a metamorphic counterpart of script: a variant
// whose satisfiability relation to the original is known by
// construction. Directional steps compose only with equivalences or
// steps of the same direction (weakened∘strengthened has no defined
// relation), so the first directional rewrite fixes the pair's
// direction. Returns ErrNoMutationSite when no relation-preserving
// rewrite applies anywhere.
func DeriveVariant(script *smtlib.Script, rng *rand.Rand, opts Options) (*Variant, error) {
	maxMut := opts.MaxMutations
	if maxMut <= 0 {
		maxMut = 2
	}
	asserts := append([]ast.Term(nil), script.Asserts()...)
	k := 1 + rng.Intn(maxMut)
	rel := RelEquivalent
	var applied []string
	for round := 0; round < k; round++ {
		sites := collectWith(asserts, func(kind Kind, pol int8) bool {
			r, ok := stepRelation(kind, pol)
			return ok && (r == RelEquivalent || rel == RelEquivalent || r == rel)
		})
		if len(sites) == 0 {
			break
		}
		c := sites[rng.Intn(len(sites))]
		n := 0
		asserts[c.assert] = rebuild(asserts[c.assert], c.node, Rules[c.rule], &n)
		applied = append(applied, Rules[c.rule].Name)
		if r, _ := stepRelation(Rules[c.rule].Kind, c.pol); r != RelEquivalent {
			rel = r
		}
	}
	if len(applied) == 0 {
		return nil, ErrNoMutationSite
	}
	v := smtlib.NewScript(script.Logic(), script.Declarations(), asserts)
	if err := analysis.Gate(v, nil); err != nil {
		return nil, err
	}
	return &Variant{Script: v, Rel: rel, Rules: applied}, nil
}
