package mutate

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/solver"
)

// ruleNames collects the names of applicable rules at any site.
func ruleNames(sites []site) map[string]bool {
	out := map[string]bool{}
	for _, s := range sites {
		out[Rules[s.rule].Name] = true
	}
	return out
}

// TestCollectPolarity pins the polarity logic on hand-built shapes: a
// weakening may fire at positive positions of sat seeds and negative
// positions of unsat seeds, never the reverse, and only equivalences
// fire at unknown-monotonicity positions such as an ite condition.
func TestCollectPolarity(t *testing.T) {
	x := ast.NewVar("x", ast.SortInt)
	b := ast.NewVar("b", ast.SortBool)
	lt := ast.Lt(x, ast.Int(5))

	cases := []struct {
		name   string
		term   ast.Term
		status core.Status
		want   []string
		forbid []string
	}{
		{"positive sat takes weakenings", lt, core.StatusSat,
			[]string{"lt-to-le", "lt-guard"}, []string{}},
		{"positive unsat refuses weakenings", lt, core.StatusUnsat,
			[]string{"lt-guard"}, []string{"lt-to-le"}},
		{"negated sat refuses weakenings", ast.Not(lt), core.StatusSat,
			[]string{"lt-guard"}, []string{"lt-to-le"}},
		{"negated unsat takes weakenings", ast.Not(lt), core.StatusUnsat,
			[]string{"lt-to-le", "lt-guard"}, []string{}},
		{"ite condition takes only equivalences", ast.Ite(lt, b, ast.Not(b)), core.StatusSat,
			[]string{"lt-guard"}, []string{"lt-to-le"}},
		{"implies antecedent flips", ast.MustApp(ast.OpImplies, lt, b), core.StatusUnsat,
			[]string{"lt-to-le"}, []string{}},
		{"strengthening needs the matching side", ast.Le(x, ast.Int(5)), core.StatusUnsat,
			[]string{"le-to-lt", "le-split"}, []string{}},
		{"strengthening refused on sat side", ast.Le(x, ast.Int(5)), core.StatusSat,
			[]string{"le-split"}, []string{"le-to-lt", "le-to-eq"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			names := ruleNames(collect([]ast.Term{tc.term}, tc.status))
			for _, w := range tc.want {
				if !names[w] {
					t.Errorf("rule %s not collected (got %v)", w, names)
				}
			}
			for _, f := range tc.forbid {
				if names[f] {
					t.Errorf("rule %s collected but unsound here (got %v)", f, names)
				}
			}
		})
	}
}

// TestMutantsPreserveVerdict is the engine's soundness check at scale:
// over the whole generator corpus, every mutant on which the reference
// solver reaches a definite verdict must agree with the inherited
// oracle. Witness re-checking and the static gate run inside Mutate,
// so any internal safety failure surfaces as a hard error here.
func TestMutantsPreserveVerdict(t *testing.T) {
	ref := solver.NewReference()
	checked := 0
	perLogic := 10
	if testing.Short() {
		perLogic = 3
	}
	for _, logic := range gen.AllLogics {
		for i := 0; i < perLogic; i++ {
			g, err := gen.New(logic, int64(1000+i))
			if err != nil {
				t.Fatal(err)
			}
			for _, status := range []core.Status{core.StatusSat, core.StatusUnsat} {
				seed := g.Generate(status)
				rng := rand.New(rand.NewSource(int64(i)*31 + 7))
				mut, err := Mutate(seed, rng, Options{})
				if errors.Is(err, ErrNoMutationSite) {
					continue
				}
				if err != nil {
					t.Fatalf("%s %v seed %d: %v", logic, status, i, err)
				}
				out := ref.SolveScript(mut.Script)
				wrong := (out.Result == solver.ResSat && status == core.StatusUnsat) ||
					(out.Result == solver.ResUnsat && status == core.StatusSat)
				if wrong {
					t.Errorf("%s %v seed %d: reference says %v after rules %v\n%s",
						logic, status, i, out.Result, mut.Rules, mut.Script.Text())
				}
				checked++
			}
		}
	}
	if checked < 2*perLogic {
		t.Fatalf("only %d mutants exercised across the corpus", checked)
	}
}

// TestMutateDeterministic: the mutant is a pure function of (seed,
// RNG stream) — byte-identical scripts and rule lists on replay.
func TestMutateDeterministic(t *testing.T) {
	g, err := gen.New(gen.QFLIA, 99)
	if err != nil {
		t.Fatal(err)
	}
	seed := g.Sat()
	run := func() *Mutant {
		m, err := Mutate(seed, rand.New(rand.NewSource(5)), Options{})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if a.Script.Text() != b.Script.Text() {
		t.Fatalf("same coordinates, different mutants:\n%s\nvs\n%s", a.Script.Text(), b.Script.Text())
	}
	if len(a.Rules) != len(b.Rules) {
		t.Fatalf("rule lists differ: %v vs %v", a.Rules, b.Rules)
	}
	for i := range a.Rules {
		if a.Rules[i] != b.Rules[i] {
			t.Fatalf("rule lists differ: %v vs %v", a.Rules, b.Rules)
		}
	}
}

// TestMutantOracleInherited: mutants carry their ancestor's status and
// at least one applied rule.
func TestMutantOracleInherited(t *testing.T) {
	g, err := gen.New(gen.QFS, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, status := range []core.Status{core.StatusSat, core.StatusUnsat} {
		seed := g.Generate(status)
		mut, err := Mutate(seed, rand.New(rand.NewSource(1)), Options{MaxMutations: 1})
		if errors.Is(err, ErrNoMutationSite) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if mut.Oracle != status {
			t.Errorf("mutant oracle %v, seed status %v", mut.Oracle, status)
		}
		if len(mut.Rules) == 0 {
			t.Error("mutant without applied rules")
		}
	}
}
