package eval

import (
	"math/big"
	"strings"

	"repro/internal/ast"
	"repro/internal/regex"
)

// Term evaluates t under model m. Evaluation is total on well-sorted
// terms over bound variables: any failure is a structured *Error (see
// error.go) carrying the offending subterm and its path — never a
// panic, even on ill-sorted terms forged through ast.UncheckedApp or
// on models disagreeing with the term's sorts.
func Term(t ast.Term, m Model) (Value, error) {
	switch n := t.(type) {
	case *ast.Var:
		v, ok := m[n.Name]
		if !ok {
			return nil, newErr(ErrUnbound, n, "%s has no model entry", n.Name)
		}
		if v.Sort() != n.VSort {
			return nil, newErr(ErrSortMismatch, n, "model value for %s has sort %v, want %v", n.Name, v.Sort(), n.VSort)
		}
		return v, nil
	case *ast.BoolLit:
		return BoolV(n.V), nil
	case *ast.IntLit:
		return IntV{V: n.V}, nil
	case *ast.RealLit:
		return RealV{V: n.V}, nil
	case *ast.StrLit:
		return StrV(n.V), nil
	case *ast.Quant:
		return nil, newErr(ErrQuantifier, n, "quantified subterm")
	case *ast.App:
		return app(n, m)
	default:
		return nil, newErr(ErrUnsupported, t, "unknown term type %T", t)
	}
}

// Bool evaluates a boolean term, unwrapping the result.
func Bool(t ast.Term, m Model) (bool, error) {
	v, err := Term(t, m)
	if err != nil {
		return false, err
	}
	b, ok := v.(BoolV)
	if !ok {
		return false, newErr(ErrSortMismatch, t, "expected Bool, got %v", v.Sort())
	}
	return bool(b), nil
}

func app(n *ast.App, m Model) (Value, error) {
	// Short-circuiting boolean operators evaluate lazily so that models
	// need not define values along pruned branches.
	switch n.Op {
	case ast.OpAnd:
		for i, a := range n.Args {
			b, err := Bool(a, m)
			if err != nil {
				return nil, at(err, i)
			}
			if !b {
				return BoolV(false), nil
			}
		}
		return BoolV(true), nil
	case ast.OpOr:
		for i, a := range n.Args {
			b, err := Bool(a, m)
			if err != nil {
				return nil, at(err, i)
			}
			if b {
				return BoolV(true), nil
			}
		}
		return BoolV(false), nil
	case ast.OpImplies:
		// Right-associative: (=> a b c) = (=> a (=> b c)).
		for i := 0; i < len(n.Args)-1; i++ {
			b, err := Bool(n.Args[i], m)
			if err != nil {
				return nil, at(err, i)
			}
			if !b {
				return BoolV(true), nil
			}
		}
		last := len(n.Args) - 1
		v, err := Term(n.Args[last], m)
		if err != nil {
			return nil, at(err, last)
		}
		return v, nil
	case ast.OpIte:
		c, err := Bool(n.Args[0], m)
		if err != nil {
			return nil, at(err, 0)
		}
		branch := 2
		if c {
			branch = 1
		}
		v, err := Term(n.Args[branch], m)
		if err != nil {
			return nil, at(err, branch)
		}
		return v, nil
	case ast.OpStrInRe:
		s, err := Term(n.Args[0], m)
		if err != nil {
			return nil, at(err, 0)
		}
		sv, ok := s.(StrV)
		if !ok {
			return nil, at(newErr(ErrSortMismatch, n.Args[0], "str.in_re subject has sort %v, want String", s.Sort()), 0)
		}
		re, err := evalRegex(n.Args[1], m)
		if err != nil {
			return nil, at(err, 1)
		}
		return BoolV(regex.Match(re, string(sv))), nil
	}

	args := make([]Value, len(n.Args))
	for i, a := range n.Args {
		v, err := Term(a, m)
		if err != nil {
			return nil, at(err, i)
		}
		args[i] = v
	}
	return applyOp(n, args)
}

func applyOp(n *ast.App, args []Value) (Value, error) {
	switch n.Op {
	case ast.OpNot:
		b, err := argBool(n, args, 0)
		if err != nil {
			return nil, err
		}
		return BoolV(!b), nil
	case ast.OpXor:
		out := false
		for i := range args {
			b, err := argBool(n, args, i)
			if err != nil {
				return nil, err
			}
			out = out != b
		}
		return BoolV(out), nil
	case ast.OpEq:
		for i := 1; i < len(args); i++ {
			if !Equal(args[0], args[i]) {
				return BoolV(false), nil
			}
		}
		return BoolV(true), nil
	case ast.OpDistinct:
		for i := 0; i < len(args); i++ {
			for j := i + 1; j < len(args); j++ {
				if Equal(args[i], args[j]) {
					return BoolV(false), nil
				}
			}
		}
		return BoolV(true), nil

	case ast.OpAdd, ast.OpSub, ast.OpMul, ast.OpNeg, ast.OpRealDiv,
		ast.OpIntDiv, ast.OpMod, ast.OpAbs:
		return arith(n, args)
	case ast.OpLe, ast.OpLt, ast.OpGe, ast.OpGt:
		return compareChain(n, args)
	case ast.OpToReal:
		v, err := argInt(n, args, 0)
		if err != nil {
			return nil, err
		}
		return RealV{V: new(big.Rat).SetInt(v.V)}, nil
	case ast.OpToInt:
		v, err := argReal(n, args, 0)
		if err != nil {
			return nil, err
		}
		return RealFloor(v), nil
	case ast.OpIsInt:
		v, err := argReal(n, args, 0)
		if err != nil {
			return nil, err
		}
		return BoolV(v.V.IsInt()), nil

	default:
		return stringOp(n, args)
	}
}

// RealFloor returns floor(v) as an integer value.
func RealFloor(v RealV) IntV {
	q := new(big.Int)
	rem := new(big.Int)
	q.QuoRem(v.V.Num(), v.V.Denom(), rem)
	if rem.Sign() < 0 {
		q.Sub(q, big.NewInt(1))
	}
	return IntV{V: q}
}

func arith(n *ast.App, args []Value) (Value, error) {
	switch args[0].(type) {
	case IntV:
		return intArith(n, args)
	case RealV:
		return realArith(n, args)
	default:
		return nil, at(newErr(ErrSortMismatch, n.Args[0], "%v argument 0 has sort %v, want Int or Real", n.Op, args[0].Sort()), 0)
	}
}

func intArith(n *ast.App, args []Value) (Value, error) {
	get := func(i int) (*big.Int, error) {
		v, err := argInt(n, args, i)
		if err != nil {
			return nil, err
		}
		return v.V, nil
	}
	first, err := get(0)
	if err != nil {
		return nil, err
	}
	out := new(big.Int).Set(first)
	switch n.Op {
	case ast.OpAdd, ast.OpSub, ast.OpMul, ast.OpIntDiv:
		for i := 1; i < len(args); i++ {
			v, err := get(i)
			if err != nil {
				return nil, err
			}
			switch n.Op {
			case ast.OpAdd:
				out.Add(out, v)
			case ast.OpSub:
				out.Sub(out, v)
			case ast.OpMul:
				out.Mul(out, v)
			case ast.OpIntDiv:
				out = euclideanDiv(out, v)
			}
		}
	case ast.OpNeg:
		out.Neg(out)
	case ast.OpAbs:
		out.Abs(out)
	case ast.OpMod:
		v, err := get(1)
		if err != nil {
			return nil, err
		}
		return IntV{V: euclideanMod(out, v)}, nil
	default:
		return nil, newErr(ErrUnsupported, n, "operator %v on Int arguments", n.Op)
	}
	return IntV{V: out}, nil
}

// euclideanDiv implements SMT-LIB (div m n): the unique q with
// m = n·q + r and 0 ≤ r < |n|. Division by zero yields 0 (this
// package's fixed interpretation of the underspecified case).
func euclideanDiv(m, n *big.Int) *big.Int {
	if n.Sign() == 0 {
		return big.NewInt(0)
	}
	q := new(big.Int)
	r := new(big.Int)
	q.QuoRem(m, n, r)
	if r.Sign() < 0 {
		if n.Sign() > 0 {
			q.Sub(q, big.NewInt(1))
		} else {
			q.Add(q, big.NewInt(1))
		}
	}
	return q
}

// euclideanMod implements SMT-LIB (mod m n) with 0 ≤ r < |n|.
// Modulo by zero yields m (the fixed interpretation).
func euclideanMod(m, n *big.Int) *big.Int {
	if n.Sign() == 0 {
		return new(big.Int).Set(m)
	}
	r := new(big.Int).Mod(m, new(big.Int).Abs(n))
	return r
}

func realArith(n *ast.App, args []Value) (Value, error) {
	get := func(i int) (*big.Rat, error) {
		v, err := argReal(n, args, i)
		if err != nil {
			return nil, err
		}
		return v.V, nil
	}
	first, err := get(0)
	if err != nil {
		return nil, err
	}
	out := new(big.Rat).Set(first)
	switch n.Op {
	case ast.OpAdd, ast.OpSub, ast.OpMul, ast.OpRealDiv:
		for i := 1; i < len(args); i++ {
			v, err := get(i)
			if err != nil {
				return nil, err
			}
			switch n.Op {
			case ast.OpAdd:
				out.Add(out, v)
			case ast.OpSub:
				out.Sub(out, v)
			case ast.OpMul:
				out.Mul(out, v)
			case ast.OpRealDiv:
				if v.Sign() == 0 {
					// Fixed interpretation: x/0 = 0.
					out.SetInt64(0)
				} else {
					out.Quo(out, v)
				}
			}
		}
	case ast.OpNeg:
		out.Neg(out)
	default:
		return nil, newErr(ErrUnsupported, n, "operator %v on Real arguments", n.Op)
	}
	return RealV{V: out}, nil
}

func compareChain(n *ast.App, args []Value) (Value, error) {
	_, isInt := args[0].(IntV)
	_, isReal := args[0].(RealV)
	if !isInt && !isReal {
		return nil, at(newErr(ErrSortMismatch, n.Args[0], "%v argument 0 has sort %v, want Int or Real", n.Op, args[0].Sort()), 0)
	}
	cmp := func(i int) (int, error) {
		if isInt {
			a, err := argInt(n, args, i)
			if err != nil {
				return 0, err
			}
			b, err := argInt(n, args, i+1)
			if err != nil {
				return 0, err
			}
			return a.V.Cmp(b.V), nil
		}
		a, err := argReal(n, args, i)
		if err != nil {
			return 0, err
		}
		b, err := argReal(n, args, i+1)
		if err != nil {
			return 0, err
		}
		return a.V.Cmp(b.V), nil
	}
	for i := 0; i+1 < len(args); i++ {
		c, err := cmp(i)
		if err != nil {
			return nil, err
		}
		ok := false
		switch n.Op {
		case ast.OpLe:
			ok = c <= 0
		case ast.OpLt:
			ok = c < 0
		case ast.OpGe:
			ok = c >= 0
		case ast.OpGt:
			ok = c > 0
		}
		if !ok {
			return BoolV(false), nil
		}
	}
	return BoolV(true), nil
}

func stringOp(n *ast.App, args []Value) (Value, error) {
	str := func(i int) (string, error) { return argStr(n, args, i) }
	intAt := func(i int) (*big.Int, error) {
		v, err := argInt(n, args, i)
		if err != nil {
			return nil, err
		}
		return v.V, nil
	}
	// str2 evaluates the common two-string-argument prelude.
	str2 := func() (string, string, error) {
		a, err := str(0)
		if err != nil {
			return "", "", err
		}
		b, err := str(1)
		return a, b, err
	}
	switch n.Op {
	case ast.OpStrConcat:
		var b strings.Builder
		for i := range args {
			s, err := str(i)
			if err != nil {
				return nil, err
			}
			b.WriteString(s)
		}
		return StrV(b.String()), nil
	case ast.OpStrLen:
		s, err := str(0)
		if err != nil {
			return nil, err
		}
		return IntV{V: big.NewInt(int64(len(s)))}, nil
	case ast.OpStrAt:
		s, err := str(0)
		if err != nil {
			return nil, err
		}
		i, err := intAt(1)
		if err != nil {
			return nil, err
		}
		return StrV(strAt(s, i)), nil
	case ast.OpStrSubstr:
		s, err := str(0)
		if err != nil {
			return nil, err
		}
		i, err := intAt(1)
		if err != nil {
			return nil, err
		}
		ln, err := intAt(2)
		if err != nil {
			return nil, err
		}
		return StrV(strSubstr(s, i, ln)), nil
	case ast.OpStrIndexOf:
		s, t, err := str2()
		if err != nil {
			return nil, err
		}
		from, err := intAt(2)
		if err != nil {
			return nil, err
		}
		return IntV{V: strIndexOf(s, t, from)}, nil
	case ast.OpStrReplace, ast.OpStrReplaceAll:
		s, t, err := str2()
		if err != nil {
			return nil, err
		}
		u, err := str(2)
		if err != nil {
			return nil, err
		}
		if n.Op == ast.OpStrReplace {
			return StrV(strReplace(s, t, u)), nil
		}
		return StrV(strReplaceAll(s, t, u)), nil
	case ast.OpStrPrefixOf:
		s, t, err := str2()
		if err != nil {
			return nil, err
		}
		return BoolV(strings.HasPrefix(t, s)), nil
	case ast.OpStrSuffixOf:
		s, t, err := str2()
		if err != nil {
			return nil, err
		}
		return BoolV(strings.HasSuffix(t, s)), nil
	case ast.OpStrContains:
		s, t, err := str2()
		if err != nil {
			return nil, err
		}
		return BoolV(strings.Contains(s, t)), nil
	case ast.OpStrToInt:
		s, err := str(0)
		if err != nil {
			return nil, err
		}
		return IntV{V: StrToInt(s)}, nil
	case ast.OpStrFromInt:
		v, err := intAt(0)
		if err != nil {
			return nil, err
		}
		return StrV(StrFromInt(v)), nil
	case ast.OpStrLtOp:
		s, t, err := str2()
		if err != nil {
			return nil, err
		}
		return BoolV(s < t), nil
	case ast.OpStrLeOp:
		s, t, err := str2()
		if err != nil {
			return nil, err
		}
		return BoolV(s <= t), nil
	default:
		return nil, newErr(ErrUnsupported, n, "operator %v", n.Op)
	}
}

func strAt(s string, i *big.Int) string {
	if !i.IsInt64() {
		return ""
	}
	idx := i.Int64()
	if idx < 0 || idx >= int64(len(s)) {
		return ""
	}
	return s[idx : idx+1]
}

func strSubstr(s string, i, n *big.Int) string {
	if !i.IsInt64() || i.Sign() < 0 || i.Int64() >= int64(len(s)) || n.Sign() <= 0 {
		return ""
	}
	start := i.Int64()
	length := int64(len(s)) - start
	if n.IsInt64() && n.Int64() < length {
		length = n.Int64()
	}
	return s[start : start+length]
}

func strIndexOf(s, t string, from *big.Int) *big.Int {
	if !from.IsInt64() {
		return big.NewInt(-1)
	}
	i := from.Int64()
	if i < 0 || i > int64(len(s)) {
		return big.NewInt(-1)
	}
	idx := strings.Index(s[i:], t)
	if idx < 0 {
		return big.NewInt(-1)
	}
	return big.NewInt(i + int64(idx))
}

func strReplace(s, t, u string) string {
	if t == "" {
		// SMT-LIB: replacing the empty string prepends u.
		return u + s
	}
	idx := strings.Index(s, t)
	if idx < 0 {
		return s
	}
	return s[:idx] + u + s[idx+len(t):]
}

func strReplaceAll(s, t, u string) string {
	if t == "" {
		return u + s
	}
	return strings.ReplaceAll(s, t, u)
}

// StrToInt implements SMT-LIB str.to_int: the denoted non-negative
// decimal numeral, or -1 if s is not a (non-empty) digit sequence.
func StrToInt(s string) *big.Int {
	if s == "" {
		return big.NewInt(-1)
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return big.NewInt(-1)
		}
	}
	v, _ := new(big.Int).SetString(s, 10)
	return v
}

// StrFromInt implements SMT-LIB str.from_int: the decimal numeral for
// non-negative n, "" otherwise.
func StrFromInt(n *big.Int) string {
	if n.Sign() < 0 {
		return ""
	}
	return n.String()
}

// evalRegex evaluates a RegLan term whose string leaves may mention
// model variables (e.g. (str.to_re x)).
func evalRegex(t ast.Term, m Model) (regex.Regex, error) {
	app, ok := t.(*ast.App)
	if !ok {
		return nil, newErr(ErrUnsupported, t, "non-application RegLan term %T", t)
	}
	// strArg evaluates a String-sorted argument of the regex leaf.
	strArg := func(i int) (string, error) {
		v, err := Term(app.Args[i], m)
		if err != nil {
			return "", at(err, i)
		}
		sv, ok := v.(StrV)
		if !ok {
			return "", at(newErr(ErrSortMismatch, app.Args[i], "%v argument %d has sort %v, want String", app.Op, i, v.Sort()), i)
		}
		return string(sv), nil
	}
	switch app.Op {
	case ast.OpStrToRe:
		s, err := strArg(0)
		if err != nil {
			return nil, err
		}
		return regex.Lit(s), nil
	case ast.OpReRange:
		l, err := strArg(0)
		if err != nil {
			return nil, err
		}
		h, err := strArg(1)
		if err != nil {
			return nil, err
		}
		if len(l) != 1 || len(h) != 1 {
			return regex.None(), nil
		}
		return regex.Range(l[0], h[0]), nil
	}
	subs := make([]regex.Regex, len(app.Args))
	for i, a := range app.Args {
		if a.Sort() != ast.SortRegLan {
			return nil, at(newErr(ErrSortMismatch, a, "%v argument %d has sort %v, want RegLan", app.Op, i, a.Sort()), i)
		}
		s, err := evalRegex(a, m)
		if err != nil {
			return nil, at(err, i)
		}
		subs[i] = s
	}
	switch app.Op {
	case ast.OpReStar:
		return regex.Star(subs[0]), nil
	case ast.OpRePlus:
		return regex.Plus(subs[0]), nil
	case ast.OpReOpt:
		return regex.Opt(subs[0]), nil
	case ast.OpReUnion:
		return regex.Union(subs...), nil
	case ast.OpReInter:
		return regex.Inter(subs...), nil
	case ast.OpReConcat:
		return regex.Concat(subs...), nil
	case ast.OpReComp:
		return regex.Comp(subs[0]), nil
	case ast.OpReDiff:
		return regex.Diff(subs[0], subs[1]), nil
	case ast.OpReAllChar:
		return regex.AnyChar(), nil
	case ast.OpReAll:
		return regex.All(), nil
	case ast.OpReNone:
		return regex.None(), nil
	default:
		return nil, newErr(ErrUnsupported, app, "RegLan operator %v", app.Op)
	}
}
