package eval

import (
	"errors"
	"fmt"
	"math/big"
	"strings"

	"repro/internal/ast"
	"repro/internal/regex"
)

// ErrQuantifier is returned when a term contains a quantifier:
// evaluation over unbounded domains is not decidable by enumeration, so
// callers must treat quantified formulas separately.
var ErrQuantifier = errors.New("eval: cannot evaluate quantified term")

// ErrUnbound is wrapped when a free variable has no model entry.
var ErrUnbound = errors.New("eval: unbound variable")

// Term evaluates t under model m.
func Term(t ast.Term, m Model) (Value, error) {
	switch n := t.(type) {
	case *ast.Var:
		v, ok := m[n.Name]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrUnbound, n.Name)
		}
		if v.Sort() != n.VSort {
			return nil, fmt.Errorf("eval: model value for %s has sort %v, want %v", n.Name, v.Sort(), n.VSort)
		}
		return v, nil
	case *ast.BoolLit:
		return BoolV(n.V), nil
	case *ast.IntLit:
		return IntV{V: n.V}, nil
	case *ast.RealLit:
		return RealV{V: n.V}, nil
	case *ast.StrLit:
		return StrV(n.V), nil
	case *ast.Quant:
		return nil, ErrQuantifier
	case *ast.App:
		return app(n, m)
	default:
		return nil, fmt.Errorf("eval: unknown term %T", t)
	}
}

// Bool evaluates a boolean term, unwrapping the result.
func Bool(t ast.Term, m Model) (bool, error) {
	v, err := Term(t, m)
	if err != nil {
		return false, err
	}
	b, ok := v.(BoolV)
	if !ok {
		return false, fmt.Errorf("eval: expected Bool, got %v", v.Sort())
	}
	return bool(b), nil
}

func app(n *ast.App, m Model) (Value, error) {
	// Short-circuiting boolean operators evaluate lazily so that models
	// need not define values along pruned branches.
	switch n.Op {
	case ast.OpAnd:
		for _, a := range n.Args {
			b, err := Bool(a, m)
			if err != nil {
				return nil, err
			}
			if !b {
				return BoolV(false), nil
			}
		}
		return BoolV(true), nil
	case ast.OpOr:
		for _, a := range n.Args {
			b, err := Bool(a, m)
			if err != nil {
				return nil, err
			}
			if b {
				return BoolV(true), nil
			}
		}
		return BoolV(false), nil
	case ast.OpImplies:
		// Right-associative: (=> a b c) = (=> a (=> b c)).
		for i := 0; i < len(n.Args)-1; i++ {
			b, err := Bool(n.Args[i], m)
			if err != nil {
				return nil, err
			}
			if !b {
				return BoolV(true), nil
			}
		}
		return Term(n.Args[len(n.Args)-1], m)
	case ast.OpIte:
		c, err := Bool(n.Args[0], m)
		if err != nil {
			return nil, err
		}
		if c {
			return Term(n.Args[1], m)
		}
		return Term(n.Args[2], m)
	case ast.OpStrInRe:
		s, err := Term(n.Args[0], m)
		if err != nil {
			return nil, err
		}
		re, err := evalRegex(n.Args[1], m)
		if err != nil {
			return nil, err
		}
		return BoolV(regex.Match(re, string(s.(StrV)))), nil
	}

	args := make([]Value, len(n.Args))
	for i, a := range n.Args {
		v, err := Term(a, m)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return applyOp(n.Op, args)
}

func applyOp(op ast.Op, args []Value) (Value, error) {
	switch op {
	case ast.OpNot:
		return BoolV(!bool(args[0].(BoolV))), nil
	case ast.OpXor:
		out := false
		for _, a := range args {
			out = out != bool(a.(BoolV))
		}
		return BoolV(out), nil
	case ast.OpEq:
		for i := 1; i < len(args); i++ {
			if !Equal(args[0], args[i]) {
				return BoolV(false), nil
			}
		}
		return BoolV(true), nil
	case ast.OpDistinct:
		for i := 0; i < len(args); i++ {
			for j := i + 1; j < len(args); j++ {
				if Equal(args[i], args[j]) {
					return BoolV(false), nil
				}
			}
		}
		return BoolV(true), nil

	case ast.OpAdd, ast.OpSub, ast.OpMul, ast.OpNeg, ast.OpRealDiv,
		ast.OpIntDiv, ast.OpMod, ast.OpAbs:
		return arith(op, args)
	case ast.OpLe, ast.OpLt, ast.OpGe, ast.OpGt:
		return compareChain(op, args)
	case ast.OpToReal:
		return RealV{V: new(big.Rat).SetInt(args[0].(IntV).V)}, nil
	case ast.OpToInt:
		return RealFloor(args[0].(RealV)), nil
	case ast.OpIsInt:
		return BoolV(args[0].(RealV).V.IsInt()), nil

	default:
		return stringOp(op, args)
	}
}

// RealFloor returns floor(v) as an integer value.
func RealFloor(v RealV) IntV {
	q := new(big.Int)
	rem := new(big.Int)
	q.QuoRem(v.V.Num(), v.V.Denom(), rem)
	if rem.Sign() < 0 {
		q.Sub(q, big.NewInt(1))
	}
	return IntV{V: q}
}

func arith(op ast.Op, args []Value) (Value, error) {
	if _, isInt := args[0].(IntV); isInt {
		return intArith(op, args)
	}
	return realArith(op, args)
}

func intArith(op ast.Op, args []Value) (Value, error) {
	get := func(i int) *big.Int { return args[i].(IntV).V }
	out := new(big.Int)
	switch op {
	case ast.OpAdd:
		out.Set(get(0))
		for i := 1; i < len(args); i++ {
			out.Add(out, get(i))
		}
	case ast.OpSub:
		out.Set(get(0))
		for i := 1; i < len(args); i++ {
			out.Sub(out, get(i))
		}
	case ast.OpMul:
		out.Set(get(0))
		for i := 1; i < len(args); i++ {
			out.Mul(out, get(i))
		}
	case ast.OpNeg:
		out.Neg(get(0))
	case ast.OpAbs:
		out.Abs(get(0))
	case ast.OpIntDiv:
		out.Set(get(0))
		for i := 1; i < len(args); i++ {
			out = euclideanDiv(out, get(i))
		}
	case ast.OpMod:
		return IntV{V: euclideanMod(get(0), get(1))}, nil
	default:
		return nil, fmt.Errorf("eval: bad int op %v", op)
	}
	return IntV{V: out}, nil
}

// euclideanDiv implements SMT-LIB (div m n): the unique q with
// m = n·q + r and 0 ≤ r < |n|. Division by zero yields 0 (this
// package's fixed interpretation of the underspecified case).
func euclideanDiv(m, n *big.Int) *big.Int {
	if n.Sign() == 0 {
		return big.NewInt(0)
	}
	q := new(big.Int)
	r := new(big.Int)
	q.QuoRem(m, n, r)
	if r.Sign() < 0 {
		if n.Sign() > 0 {
			q.Sub(q, big.NewInt(1))
		} else {
			q.Add(q, big.NewInt(1))
		}
	}
	return q
}

// euclideanMod implements SMT-LIB (mod m n) with 0 ≤ r < |n|.
// Modulo by zero yields m (the fixed interpretation).
func euclideanMod(m, n *big.Int) *big.Int {
	if n.Sign() == 0 {
		return new(big.Int).Set(m)
	}
	r := new(big.Int).Mod(m, new(big.Int).Abs(n))
	return r
}

func realArith(op ast.Op, args []Value) (Value, error) {
	get := func(i int) *big.Rat { return args[i].(RealV).V }
	out := new(big.Rat)
	switch op {
	case ast.OpAdd:
		out.Set(get(0))
		for i := 1; i < len(args); i++ {
			out.Add(out, get(i))
		}
	case ast.OpSub:
		out.Set(get(0))
		for i := 1; i < len(args); i++ {
			out.Sub(out, get(i))
		}
	case ast.OpMul:
		out.Set(get(0))
		for i := 1; i < len(args); i++ {
			out.Mul(out, get(i))
		}
	case ast.OpNeg:
		out.Neg(get(0))
	case ast.OpRealDiv:
		out.Set(get(0))
		for i := 1; i < len(args); i++ {
			d := get(i)
			if d.Sign() == 0 {
				// Fixed interpretation: x/0 = 0.
				out.SetInt64(0)
			} else {
				out.Quo(out, d)
			}
		}
	default:
		return nil, fmt.Errorf("eval: bad real op %v", op)
	}
	return RealV{V: out}, nil
}

func compareChain(op ast.Op, args []Value) (Value, error) {
	cmp := func(a, b Value) int {
		if x, ok := a.(IntV); ok {
			return x.V.Cmp(b.(IntV).V)
		}
		return a.(RealV).V.Cmp(b.(RealV).V)
	}
	for i := 0; i+1 < len(args); i++ {
		c := cmp(args[i], args[i+1])
		ok := false
		switch op {
		case ast.OpLe:
			ok = c <= 0
		case ast.OpLt:
			ok = c < 0
		case ast.OpGe:
			ok = c >= 0
		case ast.OpGt:
			ok = c > 0
		}
		if !ok {
			return BoolV(false), nil
		}
	}
	return BoolV(true), nil
}

func stringOp(op ast.Op, args []Value) (Value, error) {
	str := func(i int) string { return string(args[i].(StrV)) }
	intArg := func(i int) *big.Int { return args[i].(IntV).V }
	switch op {
	case ast.OpStrConcat:
		var b strings.Builder
		for i := range args {
			b.WriteString(str(i))
		}
		return StrV(b.String()), nil
	case ast.OpStrLen:
		return IntV{V: big.NewInt(int64(len(str(0))))}, nil
	case ast.OpStrAt:
		return StrV(strAt(str(0), intArg(1))), nil
	case ast.OpStrSubstr:
		return StrV(strSubstr(str(0), intArg(1), intArg(2))), nil
	case ast.OpStrIndexOf:
		return IntV{V: strIndexOf(str(0), str(1), intArg(2))}, nil
	case ast.OpStrReplace:
		return StrV(strReplace(str(0), str(1), str(2))), nil
	case ast.OpStrReplaceAll:
		return StrV(strReplaceAll(str(0), str(1), str(2))), nil
	case ast.OpStrPrefixOf:
		return BoolV(strings.HasPrefix(str(1), str(0))), nil
	case ast.OpStrSuffixOf:
		return BoolV(strings.HasSuffix(str(1), str(0))), nil
	case ast.OpStrContains:
		return BoolV(strings.Contains(str(0), str(1))), nil
	case ast.OpStrToInt:
		return IntV{V: StrToInt(str(0))}, nil
	case ast.OpStrFromInt:
		return StrV(StrFromInt(intArg(0))), nil
	case ast.OpStrLtOp:
		return BoolV(str(0) < str(1)), nil
	case ast.OpStrLeOp:
		return BoolV(str(0) <= str(1)), nil
	default:
		return nil, fmt.Errorf("eval: unsupported operator %v", op)
	}
}

func strAt(s string, i *big.Int) string {
	if !i.IsInt64() {
		return ""
	}
	idx := i.Int64()
	if idx < 0 || idx >= int64(len(s)) {
		return ""
	}
	return s[idx : idx+1]
}

func strSubstr(s string, i, n *big.Int) string {
	if !i.IsInt64() || i.Sign() < 0 || i.Int64() >= int64(len(s)) || n.Sign() <= 0 {
		return ""
	}
	start := i.Int64()
	length := int64(len(s)) - start
	if n.IsInt64() && n.Int64() < length {
		length = n.Int64()
	}
	return s[start : start+length]
}

func strIndexOf(s, t string, from *big.Int) *big.Int {
	if !from.IsInt64() {
		return big.NewInt(-1)
	}
	i := from.Int64()
	if i < 0 || i > int64(len(s)) {
		return big.NewInt(-1)
	}
	idx := strings.Index(s[i:], t)
	if idx < 0 {
		return big.NewInt(-1)
	}
	return big.NewInt(i + int64(idx))
}

func strReplace(s, t, u string) string {
	if t == "" {
		// SMT-LIB: replacing the empty string prepends u.
		return u + s
	}
	idx := strings.Index(s, t)
	if idx < 0 {
		return s
	}
	return s[:idx] + u + s[idx+len(t):]
}

func strReplaceAll(s, t, u string) string {
	if t == "" {
		return u + s
	}
	return strings.ReplaceAll(s, t, u)
}

// StrToInt implements SMT-LIB str.to_int: the denoted non-negative
// decimal numeral, or -1 if s is not a (non-empty) digit sequence.
func StrToInt(s string) *big.Int {
	if s == "" {
		return big.NewInt(-1)
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return big.NewInt(-1)
		}
	}
	v, _ := new(big.Int).SetString(s, 10)
	return v
}

// StrFromInt implements SMT-LIB str.from_int: the decimal numeral for
// non-negative n, "" otherwise.
func StrFromInt(n *big.Int) string {
	if n.Sign() < 0 {
		return ""
	}
	return n.String()
}

// evalRegex evaluates a RegLan term whose string leaves may mention
// model variables (e.g. (str.to_re x)).
func evalRegex(t ast.Term, m Model) (regex.Regex, error) {
	app, ok := t.(*ast.App)
	if !ok {
		return nil, fmt.Errorf("eval: non-application RegLan term")
	}
	switch app.Op {
	case ast.OpStrToRe:
		v, err := Term(app.Args[0], m)
		if err != nil {
			return nil, err
		}
		return regex.Lit(string(v.(StrV))), nil
	case ast.OpReRange:
		lo, err := Term(app.Args[0], m)
		if err != nil {
			return nil, err
		}
		hi, err := Term(app.Args[1], m)
		if err != nil {
			return nil, err
		}
		l, h := string(lo.(StrV)), string(hi.(StrV))
		if len(l) != 1 || len(h) != 1 {
			return regex.None(), nil
		}
		return regex.Range(l[0], h[0]), nil
	}
	subs := make([]regex.Regex, len(app.Args))
	for i, a := range app.Args {
		if a.Sort() != ast.SortRegLan {
			return nil, fmt.Errorf("eval: unexpected %v argument to %v", a.Sort(), app.Op)
		}
		s, err := evalRegex(a, m)
		if err != nil {
			return nil, err
		}
		subs[i] = s
	}
	switch app.Op {
	case ast.OpReStar:
		return regex.Star(subs[0]), nil
	case ast.OpRePlus:
		return regex.Plus(subs[0]), nil
	case ast.OpReOpt:
		return regex.Opt(subs[0]), nil
	case ast.OpReUnion:
		return regex.Union(subs...), nil
	case ast.OpReInter:
		return regex.Inter(subs...), nil
	case ast.OpReConcat:
		return regex.Concat(subs...), nil
	case ast.OpReComp:
		return regex.Comp(subs[0]), nil
	case ast.OpReDiff:
		return regex.Diff(subs[0], subs[1]), nil
	case ast.OpReAllChar:
		return regex.AnyChar(), nil
	case ast.OpReAll:
		return regex.All(), nil
	case ast.OpReNone:
		return regex.None(), nil
	default:
		return nil, fmt.Errorf("eval: unsupported RegLan operator %v", app.Op)
	}
}
